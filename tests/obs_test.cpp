// Tests for the observability subsystem: metrics registry semantics,
// deterministic shard merging under varying thread counts, Chrome
// trace-event JSON validity, and per-epoch JSONL round-trips.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/jsonl.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace eprons::obs {
namespace {

// ---------------------------------------------------------------------------
// Counter / gauge semantics

TEST(Counter, AccumulatesAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Counter, MergesAcrossThreads) {
  Counter c;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < 1000; ++i) c.add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), 8000u);
}

TEST(Gauge, LastWriteWins) {
  Gauge g;
  EXPECT_EQ(g.value(), 0.0);
  g.set(3.5);
  g.set(-2.0);
  EXPECT_EQ(g.value(), -2.0);
  g.reset();
  EXPECT_EQ(g.value(), 0.0);
}

// ---------------------------------------------------------------------------
// Histogram semantics

TEST(Histogram, BucketBoundaries) {
  // Bucket 0 holds everything below 1.0 (including negatives/NaN); bucket b
  // holds [2^(b-1), 2^b).
  EXPECT_EQ(Histogram::bucket_index(0.0), 0u);
  EXPECT_EQ(Histogram::bucket_index(0.99), 0u);
  EXPECT_EQ(Histogram::bucket_index(-5.0), 0u);
  EXPECT_EQ(Histogram::bucket_index(std::nan("")), 0u);
  EXPECT_EQ(Histogram::bucket_index(1.0), 1u);
  EXPECT_EQ(Histogram::bucket_index(1.99), 1u);
  EXPECT_EQ(Histogram::bucket_index(2.0), 2u);
  EXPECT_EQ(Histogram::bucket_index(5.0), 3u);
  for (std::size_t b = 1; b + 1 < Histogram::kBuckets; ++b) {
    EXPECT_EQ(Histogram::bucket_index(Histogram::bucket_lower(b)), b);
  }
}

TEST(Histogram, SnapshotTracksCountMinMax) {
  Histogram h;
  h.observe(5.0);
  h.observe(100.0);
  h.observe(0.25);
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 3u);
  EXPECT_EQ(snap.min, 0.25);
  EXPECT_EQ(snap.max, 100.0);
  EXPECT_EQ(snap.buckets[0], 1u);
  EXPECT_EQ(snap.buckets[Histogram::bucket_index(5.0)], 1u);
  EXPECT_EQ(snap.buckets[Histogram::bucket_index(100.0)], 1u);
}

TEST(Histogram, QuantileOfSingleValueIsThatValue) {
  // The quantile is the bucket's upper bound clamped to [min, max], so a
  // one-observation histogram reports the observation at every quantile.
  Histogram h;
  h.observe(5.0);
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.quantile(0.0), 5.0);
  EXPECT_EQ(snap.quantile(0.5), 5.0);
  EXPECT_EQ(snap.quantile(1.0), 5.0);
}

TEST(Histogram, QuantileIsMonotone) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.observe(static_cast<double>(i));
  const HistogramSnapshot snap = h.snapshot();
  double prev = 0.0;
  for (double q : {0.1, 0.5, 0.9, 0.95, 0.99, 1.0}) {
    const double v = snap.quantile(q);
    EXPECT_GE(v, prev);
    prev = v;
  }
  EXPECT_LE(snap.quantile(1.0), snap.max);
  EXPECT_GE(snap.quantile(0.0), 0.0);
}

TEST(Histogram, PercentilesMatchPerQuantileScans) {
  // percentiles() resolves all three nearest ranks in one cumulative
  // bucket pass; it must agree exactly with three separate quantile()
  // calls, which share the nearest-rank definition.
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.observe(static_cast<double>(i));
  const HistogramSnapshot snap = h.snapshot();
  const Percentiles p = snap.percentiles();
  EXPECT_EQ(p.p50, snap.quantile(0.50));
  EXPECT_EQ(p.p95, snap.quantile(0.95));
  EXPECT_EQ(p.p99, snap.quantile(0.99));
  EXPECT_LE(p.p50, p.p95);
  EXPECT_LE(p.p95, p.p99);
  EXPECT_LE(p.p99, snap.max);
}

TEST(Histogram, PercentilesOfSingleValueAreThatValue) {
  Histogram h;
  h.observe(42.0);
  const Percentiles p = h.snapshot().percentiles();
  EXPECT_EQ(p.p50, 42.0);
  EXPECT_EQ(p.p95, 42.0);
  EXPECT_EQ(p.p99, 42.0);
}

TEST(Histogram, PercentilesOfEmptyHistogramAreZero) {
  const Percentiles p = Histogram().snapshot().percentiles();
  EXPECT_EQ(p.p50, 0.0);
  EXPECT_EQ(p.p95, 0.0);
  EXPECT_EQ(p.p99, 0.0);
}

TEST(Histogram, ResetClears) {
  Histogram h;
  h.observe(7.0);
  h.reset();
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.quantile(0.5), 0.0);
}

// ---------------------------------------------------------------------------
// Registry semantics

TEST(MetricsRegistry, SameNameSameMetric) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x.calls");
  Counter& b = reg.counter("x.calls");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(b.value(), 3u);
}

TEST(MetricsRegistry, ResetKeepsReferencesValid) {
  MetricsRegistry reg;
  Counter& c = reg.counter("x.calls");
  Gauge& g = reg.gauge("x.level");
  c.add(5);
  g.set(2.0);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0.0);
  c.add(1);  // cached reference still works after reset
  EXPECT_EQ(reg.snapshot().counters.at("x.calls"), 1u);
}

TEST(MetricsRegistry, SnapshotIsNameSorted) {
  MetricsRegistry reg;
  reg.counter("zeta").add(1);
  reg.counter("alpha").add(2);
  reg.counter("mid").add(3);
  const MetricsSnapshot snap = reg.snapshot();
  std::vector<std::string> names;
  for (const auto& [name, value] : snap.counters) names.push_back(name);
  const std::vector<std::string> expected = {"alpha", "mid", "zeta"};
  EXPECT_EQ(names, expected);
}

// ---------------------------------------------------------------------------
// Determinism: the acceptance criterion. The same logical workload must
// produce a bit-identical JSON snapshot for any worker count.

std::string run_sharded_workload(int threads) {
  MetricsRegistry reg;
  Counter& items = reg.counter("work.items");
  Counter& big = reg.counter("work.big_items");
  Histogram& values = reg.histogram("work.value");
  ThreadPool pool(threads);
  parallel_for(&pool, 997, [&](std::size_t i) {
    items.add();
    if (i % 7 == 0) big.add(i);
    // A fixed per-index value: which *shard* records it varies with the
    // schedule, but the merged bucket counts cannot.
    values.observe(static_cast<double>((i * 37) % 1024));
  });
  reg.gauge("work.last").set(42.0);  // serial code: deterministic
  std::ostringstream os;
  reg.snapshot().write_json(os);
  return os.str();
}

TEST(MetricsDeterminism, SnapshotBitIdenticalAcrossThreadCounts) {
  const std::string serial = run_sharded_workload(1);
  EXPECT_EQ(run_sharded_workload(4), serial);
  EXPECT_EQ(run_sharded_workload(16), serial);
  // Sanity: the snapshot actually contains the workload's totals.
  EXPECT_NE(serial.find("\"work.items\": 997"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Tracer

// Scans JSON structure: balanced {} / [] outside of strings.
bool json_balanced(const std::string& text) {
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (char ch : text) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (ch == '\\') {
        escaped = true;
      } else if (ch == '"') {
        in_string = false;
      }
      continue;
    }
    switch (ch) {
      case '"': in_string = true; break;
      case '{':
      case '[': ++depth; break;
      case '}':
      case ']':
        if (--depth < 0) return false;
        break;
      default: break;
    }
  }
  return depth == 0 && !in_string;
}

TEST(Tracer, DisabledRecordsNothing) {
  Tracer tracer;
  {
    ScopedSpan span(tracer, "noop", "test");
  }
  EXPECT_EQ(tracer.num_events(), 0u);
}

TEST(Tracer, EmitsValidCompleteEvents) {
  Tracer tracer;
  tracer.set_enabled(true);
  {
    ScopedSpan outer(tracer, "outer", "test", "k", 3.0);
    ScopedSpan inner(tracer, "inner", "test");
  }
  ThreadPool pool(4);
  parallel_for(&pool, 8, [&](std::size_t i) {
    ScopedSpan span(tracer, "shard", "test", "shard",
                    static_cast<double>(i));
  });
  EXPECT_EQ(tracer.num_events(), 10u);

  std::ostringstream os;
  tracer.write_json(os);
  const std::string json = os.str();
  EXPECT_TRUE(json_balanced(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"outer\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"shard\""), std::string::npos);
  EXPECT_NE(json.find("\"k\": 3"), std::string::npos);
}

TEST(Tracer, ClearDropsEventsAndBuffersRebind) {
  Tracer tracer;
  tracer.set_enabled(true);
  { ScopedSpan span(tracer, "before", "test"); }
  EXPECT_EQ(tracer.num_events(), 1u);
  tracer.clear();
  EXPECT_EQ(tracer.num_events(), 0u);
  // The thread-local buffer cache must re-register after clear(), not
  // append into a dropped buffer.
  { ScopedSpan span(tracer, "after", "test"); }
  EXPECT_EQ(tracer.num_events(), 1u);
  std::ostringstream os;
  tracer.write_json(os);
  EXPECT_EQ(os.str().find("before"), std::string::npos);
  EXPECT_NE(os.str().find("after"), std::string::npos);
}

TEST(Tracer, TwoInstancesDoNotShareBuffers) {
  Tracer a;
  Tracer b;
  a.set_enabled(true);
  b.set_enabled(true);
  { ScopedSpan span(a, "span_a", "test"); }
  { ScopedSpan span(b, "span_b", "test"); }
  EXPECT_EQ(a.num_events(), 1u);
  EXPECT_EQ(b.num_events(), 1u);
}

// ---------------------------------------------------------------------------
// Epoch JSONL

double parse_field(const std::string& line, const std::string& key) {
  const std::string tag = "\"" + key + "\": ";
  const std::size_t at = line.find(tag);
  EXPECT_NE(at, std::string::npos) << key << " missing in " << line;
  return std::stod(line.substr(at + tag.size()));
}

TEST(EpochJsonl, RoundTripsEveryField) {
  EpochRecord r;
  r.source = "epoch_controller";
  r.epoch = 7;
  r.chosen_k = 2.5;
  r.feasible = true;
  r.wanted_switches = 12;
  r.actual_switches = 14;
  r.predicted_total_w = 3381.25;
  r.realized_network_w = 504.0;
  r.prediction_ratio = 1.31;
  r.slack_total_p95_us = 4200.5;
  r.slack_total_p99_us = 6100.0;
  r.server_budget_us = 25799.5;
  r.utilization = 0.3;

  const std::string line = to_jsonl(r);
  EXPECT_EQ(line.back(), '\n');
  EXPECT_TRUE(json_balanced(line));
  EXPECT_NE(line.find("\"source\": \"epoch_controller\""), std::string::npos);
  EXPECT_NE(line.find("\"feasible\": true"), std::string::npos);
  EXPECT_EQ(parse_field(line, "epoch"), 7.0);
  EXPECT_EQ(parse_field(line, "chosen_k"), 2.5);
  EXPECT_EQ(parse_field(line, "wanted_switches"), 12.0);
  EXPECT_EQ(parse_field(line, "actual_switches"), 14.0);
  EXPECT_EQ(parse_field(line, "predicted_total_w"), 3381.25);
  EXPECT_EQ(parse_field(line, "realized_network_w"), 504.0);
  EXPECT_EQ(parse_field(line, "prediction_ratio"), 1.31);
  EXPECT_EQ(parse_field(line, "slack_total_p95_us"), 4200.5);
  EXPECT_EQ(parse_field(line, "slack_total_p99_us"), 6100.0);
  EXPECT_EQ(parse_field(line, "server_budget_us"), 25799.5);
  EXPECT_EQ(parse_field(line, "utilization"), 0.3);
}

TEST(EpochJsonl, WriterStreamsOneLinePerRecord) {
  std::ostringstream os;
  JsonlWriter writer(&os);
  EpochRecord r;
  for (int i = 0; i < 3; ++i) {
    r.epoch = i;
    writer.write(r);
  }
  EXPECT_EQ(writer.records_written(), 3u);
  const std::string text = os.str();
  std::size_t lines = 0;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    EXPECT_TRUE(json_balanced(line)) << line;
    EXPECT_EQ(parse_field(line, "epoch"), static_cast<double>(lines));
    ++lines;
  }
  EXPECT_EQ(lines, 3u);
}

}  // namespace
}  // namespace eprons::obs
