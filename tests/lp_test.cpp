// Unit tests for the LP/MILP solver substrate (src/lp).
//
// The simplex underpins the paper's consolidation model (eqs. (2)-(9));
// these tests pin it against hand-solved LPs, degenerate/unbounded cases,
// and randomized feasibility property checks.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "lp/branch_and_bound.h"
#include "lp/model.h"
#include "lp/simplex.h"
#include "util/rng.h"

namespace eprons::lp {
namespace {

TEST(Simplex, SolvesTextbookMaximize) {
  // max 3x + 5y  s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  -> (2, 6), z = 36.
  Model m(Sense::Maximize);
  const int x = m.add_variable("x", 0, kInfinity, 3.0);
  const int y = m.add_variable("y", 0, kInfinity, 5.0);
  m.add_row("r1", RowType::LessEqual, 4, {{x, 1.0}});
  m.add_row("r2", RowType::LessEqual, 12, {{y, 2.0}});
  m.add_row("r3", RowType::LessEqual, 18, {{x, 3.0}, {y, 2.0}});

  const Solution s = SimplexSolver().solve(m);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_NEAR(s.x[static_cast<std::size_t>(x)], 2.0, 1e-8);
  EXPECT_NEAR(s.x[static_cast<std::size_t>(y)], 6.0, 1e-8);
  EXPECT_NEAR(s.objective, 36.0, 1e-8);
}

TEST(Simplex, SolvesMinimizeWithGreaterEqual) {
  // min 2x + 3y  s.t. x + y >= 10, x >= 2, y >= 3  -> y=3? check:
  // cost favors x (2 < 3), so x = 7, y = 3, z = 14 + 9 = 23.
  Model m(Sense::Minimize);
  const int x = m.add_variable("x", 2, kInfinity, 2.0);
  const int y = m.add_variable("y", 3, kInfinity, 3.0);
  m.add_row("cover", RowType::GreaterEqual, 10, {{x, 1.0}, {y, 1.0}});
  const Solution s = SimplexSolver().solve(m);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_NEAR(s.x[static_cast<std::size_t>(x)], 7.0, 1e-8);
  EXPECT_NEAR(s.x[static_cast<std::size_t>(y)], 3.0, 1e-8);
  EXPECT_NEAR(s.objective, 23.0, 1e-8);
}

TEST(Simplex, HandlesEqualityRows) {
  // min x + y  s.t. x + 2y = 8, x - y = 2  -> x = 4, y = 2.
  Model m(Sense::Minimize);
  const int x = m.add_variable("x", 0, kInfinity, 1.0);
  const int y = m.add_variable("y", 0, kInfinity, 1.0);
  m.add_row("e1", RowType::Equal, 8, {{x, 1.0}, {y, 2.0}});
  m.add_row("e2", RowType::Equal, 2, {{x, 1.0}, {y, -1.0}});
  const Solution s = SimplexSolver().solve(m);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_NEAR(s.x[static_cast<std::size_t>(x)], 4.0, 1e-8);
  EXPECT_NEAR(s.x[static_cast<std::size_t>(y)], 2.0, 1e-8);
}

TEST(Simplex, DetectsInfeasible) {
  Model m(Sense::Minimize);
  const int x = m.add_variable("x", 0, kInfinity, 1.0);
  m.add_row("a", RowType::LessEqual, 1, {{x, 1.0}});
  m.add_row("b", RowType::GreaterEqual, 2, {{x, 1.0}});
  EXPECT_EQ(SimplexSolver().solve(m).status, SolveStatus::Infeasible);
}

TEST(Simplex, DetectsUnbounded) {
  Model m(Sense::Maximize);
  const int x = m.add_variable("x", 0, kInfinity, 1.0);
  const int y = m.add_variable("y", 0, kInfinity, 0.0);
  m.add_row("r", RowType::GreaterEqual, 1, {{x, 1.0}, {y, 1.0}});
  EXPECT_EQ(SimplexSolver().solve(m).status, SolveStatus::Unbounded);
}

TEST(Simplex, RespectsUpperBounds) {
  Model m(Sense::Maximize);
  m.add_variable("x", 0, 3.0, 1.0);
  const Solution s = SimplexSolver().solve(m);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_NEAR(s.x[0], 3.0, 1e-9);
}

TEST(Simplex, HandlesFreeVariables) {
  // min x  s.t. x >= -5 via a row (x itself declared free).
  Model m(Sense::Minimize);
  const int x = m.add_variable("x", -kInfinity, kInfinity, 1.0);
  m.add_row("lb", RowType::GreaterEqual, -5, {{x, 1.0}});
  const Solution s = SimplexSolver().solve(m);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_NEAR(s.x[0], -5.0, 1e-8);
}

TEST(Simplex, ObjectiveOffsetIncluded) {
  Model m(Sense::Minimize);
  m.add_variable("x", 1.0, 1.0, 2.0);
  m.set_objective_offset(100.0);
  const Solution s = SimplexSolver().solve(m);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_NEAR(s.objective, 102.0, 1e-9);
}

TEST(Simplex, DegenerateProblemTerminates) {
  // Classic degeneracy: multiple rows binding at the origin.
  Model m(Sense::Maximize);
  const int x = m.add_variable("x", 0, kInfinity, 0.75);
  const int y = m.add_variable("y", 0, kInfinity, -150.0);
  const int z = m.add_variable("z", 0, kInfinity, 0.02);
  const int w = m.add_variable("w", 0, kInfinity, -6.0);
  m.add_row("r1", RowType::LessEqual, 0,
            {{x, 0.25}, {y, -60.0}, {z, -0.04}, {w, 9.0}});
  m.add_row("r2", RowType::LessEqual, 0,
            {{x, 0.5}, {y, -90.0}, {z, -0.02}, {w, 3.0}});
  m.add_row("r3", RowType::LessEqual, 1, {{z, 1.0}});
  const Solution s = SimplexSolver().solve(m);
  ASSERT_EQ(s.status, SolveStatus::Optimal);  // Beale's example: z* = 0.05
  EXPECT_NEAR(s.objective, 0.05, 1e-6);
}

TEST(Simplex, RandomFeasibleProblemsReturnFeasiblePoints) {
  Rng rng(21);
  for (int trial = 0; trial < 30; ++trial) {
    Model m(Sense::Minimize);
    const int n = 6;
    for (int v = 0; v < n; ++v) {
      m.add_variable("v", 0.0, rng.uniform(1.0, 10.0), rng.uniform(-2.0, 2.0));
    }
    // Random <= rows with nonnegative coefficients are always feasible at 0.
    for (int r = 0; r < 5; ++r) {
      std::vector<RowEntry> entries;
      for (int v = 0; v < n; ++v) {
        entries.push_back({v, rng.uniform(0.0, 1.0)});
      }
      m.add_row("r", RowType::LessEqual, rng.uniform(1.0, 20.0),
                std::move(entries));
    }
    const Solution s = SimplexSolver().solve(m);
    ASSERT_EQ(s.status, SolveStatus::Optimal) << "trial " << trial;
    EXPECT_TRUE(m.is_feasible(s.x, 1e-6)) << "trial " << trial;
  }
}

// ---- MILP ----

TEST(Milp, SolvesKnapsack) {
  // max 10a + 13b + 7c  s.t. 3a + 4b + 2c <= 6, binaries.
  // Best: a + c (weight 5, value 17) vs b + c (6, 20) -> b + c.
  Model m(Sense::Maximize);
  const int a = m.add_binary("a", 10);
  const int b = m.add_binary("b", 13);
  const int c = m.add_binary("c", 7);
  m.add_row("w", RowType::LessEqual, 6, {{a, 3.0}, {b, 4.0}, {c, 2.0}});
  const Solution s = MilpSolver().solve(m);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_NEAR(s.objective, 20.0, 1e-6);
  EXPECT_NEAR(s.x[static_cast<std::size_t>(b)], 1.0, 1e-6);
  EXPECT_NEAR(s.x[static_cast<std::size_t>(c)], 1.0, 1e-6);
}

TEST(Milp, IntegerRounding) {
  // max x  s.t. 2x <= 7, x integer -> 3.
  Model m(Sense::Maximize);
  const int x = m.add_variable("x", 0, kInfinity, 1.0, /*is_integer=*/true);
  m.add_row("r", RowType::LessEqual, 7, {{x, 2.0}});
  const Solution s = MilpSolver().solve(m);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_NEAR(s.x[0], 3.0, 1e-9);
}

TEST(Milp, MixedIntegerContinuous) {
  // min 5y + x  s.t. x >= 2.5 - 10y, x >= 0, y binary.
  // y=0 -> x=2.5 cost 2.5; y=1 -> x=0 cost 5. Optimal 2.5.
  Model m(Sense::Minimize);
  const int x = m.add_variable("x", 0, kInfinity, 1.0);
  const int y = m.add_binary("y", 5.0);
  m.add_row("r", RowType::GreaterEqual, 2.5, {{x, 1.0}, {y, 10.0}});
  const Solution s = MilpSolver().solve(m);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_NEAR(s.objective, 2.5, 1e-6);
  EXPECT_NEAR(s.x[static_cast<std::size_t>(y)], 0.0, 1e-9);
}

TEST(Milp, InfeasibleIntegerProblem) {
  // 0.4 <= x <= 0.6, x integer: LP feasible, no integer point.
  Model m(Sense::Minimize);
  m.add_variable("x", 0.4, 0.6, 1.0, /*is_integer=*/true);
  const Solution s = MilpSolver().solve(m);
  EXPECT_EQ(s.status, SolveStatus::Infeasible);
}

TEST(Milp, PureLpPassesThrough) {
  Model m(Sense::Minimize);
  const int x = m.add_variable("x", 1.5, 4.0, 1.0);
  (void)x;
  const Solution s = MilpSolver().solve(m);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_NEAR(s.x[0], 1.5, 1e-9);
}

TEST(Milp, SetCoverSmall) {
  // Cover 4 elements with 3 sets; optimal cover = sets {0, 2} cost 2+3=5
  // vs set 1 alone cannot cover. Check exact optimum.
  Model m(Sense::Minimize);
  const int s0 = m.add_binary("s0", 2.0);  // covers e0, e1
  const int s1 = m.add_binary("s1", 4.0);  // covers e1, e2, e3
  const int s2 = m.add_binary("s2", 3.0);  // covers e2, e3
  m.add_row("e0", RowType::GreaterEqual, 1, {{s0, 1.0}});
  m.add_row("e1", RowType::GreaterEqual, 1, {{s0, 1.0}, {s1, 1.0}});
  m.add_row("e2", RowType::GreaterEqual, 1, {{s1, 1.0}, {s2, 1.0}});
  m.add_row("e3", RowType::GreaterEqual, 1, {{s1, 1.0}, {s2, 1.0}});
  const Solution s = MilpSolver().solve(m);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_NEAR(s.objective, 5.0, 1e-6);
}

TEST(Milp, RandomProblemsMatchBruteForce) {
  Rng rng(23);
  for (int trial = 0; trial < 20; ++trial) {
    Model m(Sense::Maximize);
    const int n = 8;
    std::vector<double> value(n), weight(n);
    for (int v = 0; v < n; ++v) {
      value[static_cast<std::size_t>(v)] = rng.uniform(1.0, 10.0);
      weight[static_cast<std::size_t>(v)] = rng.uniform(1.0, 5.0);
      m.add_binary("b", value[static_cast<std::size_t>(v)]);
    }
    std::vector<RowEntry> entries;
    for (int v = 0; v < n; ++v) entries.push_back({v, weight[static_cast<std::size_t>(v)]});
    const double cap = rng.uniform(5.0, 15.0);
    m.add_row("w", RowType::LessEqual, cap, std::move(entries));

    const Solution s = MilpSolver().solve(m);
    ASSERT_EQ(s.status, SolveStatus::Optimal) << "trial " << trial;

    // Brute force over all 2^8 subsets.
    double best = 0.0;
    for (int mask = 0; mask < (1 << n); ++mask) {
      double w = 0.0, val = 0.0;
      for (int v = 0; v < n; ++v) {
        if (mask & (1 << v)) {
          w += weight[static_cast<std::size_t>(v)];
          val += value[static_cast<std::size_t>(v)];
        }
      }
      if (w <= cap + 1e-9) best = std::max(best, val);
    }
    EXPECT_NEAR(s.objective, best, 1e-6) << "trial " << trial;
  }
}

TEST(Milp, NodeLimitReturnsIncumbentStatus) {
  // A problem big enough to need branching, with a tiny node budget.
  Model m(Sense::Maximize);
  Rng rng(29);
  std::vector<RowEntry> entries;
  for (int v = 0; v < 20; ++v) {
    m.add_binary("b", rng.uniform(1.0, 10.0));
    entries.push_back({v, rng.uniform(1.0, 5.0)});
  }
  m.add_row("w", RowType::LessEqual, 20.0, std::move(entries));
  MilpOptions opt;
  opt.max_nodes = 5;
  const Solution s = MilpSolver(opt).solve(m);
  // Either it got lucky and proved optimality in <=5 nodes, or it reports
  // an incumbent / node-limit status. It must not claim optimal falsely
  // with unexplored nodes; we can only check the status is sane.
  EXPECT_TRUE(s.status == SolveStatus::Optimal ||
              s.status == SolveStatus::FeasibleIncumbent ||
              s.status == SolveStatus::NodeLimit);
  if (s.ok()) {
    EXPECT_TRUE(m.is_feasible(s.x, 1e-6));
  }
}

TEST(Model, WritesLpFormat) {
  Model m(Sense::Minimize);
  const int x = m.add_variable("x", 0, 4.0, 2.0);
  const int y = m.add_binary("y", -1.0);
  m.add_row("cap", RowType::LessEqual, 7, {{x, 3.0}, {y, -1.0}});
  std::ostringstream os;
  m.write_lp(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("Minimize"), std::string::npos);
  EXPECT_NE(text.find("cap:"), std::string::npos);
  EXPECT_NE(text.find("+ 3 x"), std::string::npos);
  EXPECT_NE(text.find("<= 7"), std::string::npos);
  EXPECT_NE(text.find("General"), std::string::npos);
  EXPECT_NE(text.find("End"), std::string::npos);
}

TEST(Model, WriteLpHandlesFreeAndUnboundedVars) {
  Model m(Sense::Maximize);
  m.add_variable("free", -kInfinity, kInfinity, 1.0);
  std::ostringstream os;
  m.write_lp(os);
  EXPECT_NE(os.str().find("-inf <= free <= +inf"), std::string::npos);
}

}  // namespace
}  // namespace eprons::lp
