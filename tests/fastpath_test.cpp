// Differential tests for the planner's fast paths (ISSUE 6 tentpole).
//
// The cold K sweep has three optimized subsystems — batched antithetic
// Monte-Carlo slack estimation, per-frequency CCDF tables, and the memoized
// PathCatalog — each with a retained reference implementation selectable
// per PlanRequest. The contract: every knob combination, at every thread
// count, returns a byte-identical JointPlan. These tests pin that contract
// across seeds 1/42/99 and threads 1/4/8, and additionally pin the two
// low-level parities it rests on (vectorized block logs == scalar logs;
// prepared-hop pair sampler == per-sample reference walk).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "consolidate/greedy_consolidator.h"
#include "core/joint_optimizer.h"
#include "dvfs/synthetic_workload.h"
#include "net/path_latency.h"
#include "stats/fast_log.h"

namespace eprons {
namespace {

ServiceModel fastpath_model() {
  Rng rng(31);
  SyntheticWorkloadConfig config;
  config.samples = 20000;
  config.bins = 256;
  return make_search_service_model(config, rng);
}

// Byte-identity: every field that feeds a decision or a report. Doubles are
// compared with ==, not a tolerance — the fast paths reproduce the
// reference arithmetic bit for bit or they are wrong.
void expect_plans_identical(const JointPlan& a, const JointPlan& b,
                            const std::string& label) {
  EXPECT_EQ(a.feasible, b.feasible) << label;
  EXPECT_EQ(a.k, b.k) << label;
  EXPECT_EQ(a.placement.switch_on, b.placement.switch_on) << label;
  EXPECT_EQ(a.placement.link_on, b.placement.link_on) << label;
  EXPECT_EQ(a.placement.flow_paths, b.placement.flow_paths) << label;
  EXPECT_EQ(a.placement.active_switches, b.placement.active_switches)
      << label;
  EXPECT_EQ(a.placement.network_power, b.placement.network_power) << label;
  EXPECT_EQ(a.request_flow, b.request_flow) << label;
  EXPECT_EQ(a.reply_flow, b.reply_flow) << label;
  EXPECT_EQ(a.slack.request_mean, b.slack.request_mean) << label;
  EXPECT_EQ(a.slack.request_p95, b.slack.request_p95) << label;
  EXPECT_EQ(a.slack.total_mean, b.slack.total_mean) << label;
  EXPECT_EQ(a.slack.total_p95, b.slack.total_p95) << label;
  EXPECT_EQ(a.slack.total_p99, b.slack.total_p99) << label;
  EXPECT_EQ(a.server.frequency, b.server.frequency) << label;
  EXPECT_EQ(a.server.busy_fraction, b.server.busy_fraction) << label;
  EXPECT_EQ(a.server.server_power, b.server.server_power) << label;
  EXPECT_EQ(a.server.budget_infeasible, b.server.budget_infeasible) << label;
  EXPECT_EQ(a.effective_server_budget, b.effective_server_budget) << label;
  EXPECT_EQ(a.network_power, b.network_power) << label;
  EXPECT_EQ(a.total_power, b.total_power) << label;
}

TEST(FastPath, ReferenceKnobsByteIdenticalAcrossSeedsAndThreads) {
  const FatTree topo(4);
  const ServiceModel model = fastpath_model();
  const ServerPowerModel power;
  for (const std::uint64_t seed : {1ull, 42ull, 99ull}) {
    for (const int threads : {1, 4, 8}) {
      JointOptimizerConfig config;
      config.slack.samples_per_pair = 150;
      config.slack.seed = seed;
      config.runtime.threads = threads;
      const JointOptimizer optimizer(&topo, &model, &power, config);

      Rng rng(seed);
      const FlowSet background =
          make_background_flows(FlowGenConfig{}, 6, 0.2, 0.1, rng);
      PlanRequest fast;
      fast.background = &background;
      fast.utilization = 0.3;
      const JointPlan fast_plan = optimizer.optimize(fast);
      ASSERT_TRUE(fast_plan.feasible);

      // Each knob alone, then all three together (the full reference
      // pipeline).
      for (const int mask : {1, 2, 4, 7}) {
        PlanRequest reference = fast;
        reference.use_reference_slack = (mask & 1) != 0;
        reference.use_reference_dvfs = (mask & 2) != 0;
        reference.use_reference_enumeration = (mask & 4) != 0;
        const JointPlan reference_plan = optimizer.optimize(reference);
        expect_plans_identical(
            fast_plan, reference_plan,
            "seed=" + std::to_string(seed) +
                " threads=" + std::to_string(threads) +
                " knobs=" + std::to_string(mask));
      }
    }
  }
}

TEST(FastPath, ThreadCountNeverChangesThePlan) {
  // The worker count is an execution detail; seed and shard count are the
  // only sampling inputs. threads=1 vs 4 vs 8 must agree bit for bit.
  const FatTree topo(4);
  const ServiceModel model = fastpath_model();
  const ServerPowerModel power;
  Rng rng(7);
  const FlowSet background =
      make_background_flows(FlowGenConfig{}, 8, 0.25, 0.1, rng);

  JointPlan serial_plan;
  for (const int threads : {1, 4, 8}) {
    JointOptimizerConfig config;
    config.slack.samples_per_pair = 150;
    config.runtime.threads = threads;
    const JointOptimizer optimizer(&topo, &model, &power, config);
    PlanRequest request;
    request.background = &background;
    request.utilization = 0.3;
    const JointPlan plan = optimizer.optimize(request);
    if (threads == 1) {
      serial_plan = plan;
    } else {
      expect_plans_identical(serial_plan, plan,
                             "threads=" + std::to_string(threads));
    }
  }
}

TEST(FastPath, BlockLogBitIdenticalToScalarLog) {
  // The slack estimator's vectorized block logs must match the scalar
  // fast_log lane for lane — SIMD lanes run the same IEEE op sequence.
  Rng rng(12345);
  std::vector<double> x(1024);
  for (double& v : x) {
    do {
      v = rng.uniform();
    } while (v == 0.0);
  }

  std::vector<double> block(x);
  fast_log_block(block.data(), block.data(), block.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_EQ(block[i], fast_log(x[i])) << "i=" << i << " x=" << x[i];
  }

  std::vector<double> even(x);
  std::vector<double> odd(x.size());
  fast_log_block_antithetic(even.data(), even.data(), odd.data(), x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_EQ(even[i], fast_log(x[i])) << "i=" << i;
    EXPECT_EQ(odd[i], fast_log(1.0 - x[i])) << "i=" << i;
  }

  // And fast_log itself must agree with libm to within 1 ulp (it is the
  // fdlibm algorithm; measured max relative error is 2.2e-16).
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double exact = std::log(x[i]);
    EXPECT_NEAR(fast_log(x[i]), exact, std::abs(exact) * 4.5e-16 + 1e-300)
        << "x=" << x[i];
  }
}

TEST(FastPath, PreparedPairSamplerMatchesReferenceWalk) {
  // sample_prepared_pair (prepared-hop constants) and sample_pair (per-draw
  // re-derivation) must consume the RNG identically and return identical
  // bits — the core parity behind use_reference_slack.
  const FatTree topo(4);
  FlowSet flows;
  const FlowId req = flows.add(0, 15, 10.0, FlowClass::LatencySensitive);
  const FlowId rep = flows.add(15, 0, 40.0, FlowClass::LatencySensitive);
  const GreedyConsolidator greedy(&topo);
  const auto placement = greedy.consolidate(flows, ConsolidationConfig{});
  ASSERT_TRUE(placement.feasible);

  LinkUtilization load(&topo.graph());
  load.add_path_load(placement.flow_paths[static_cast<std::size_t>(req)],
                     500.0);
  const PathLatencyEstimator estimator(&load, LinkLatencyModel{});

  for (const FlowId flow : {req, rep}) {
    const Path& path = placement.flow_paths[static_cast<std::size_t>(flow)];
    std::vector<PreparedHop> hops;
    estimator.prepare(path, &hops);

    Rng fast_rng(99);
    Rng reference_rng(99);
    for (int draw = 0; draw < 256; ++draw) {
      SimTime fast_even, fast_odd, reference_even, reference_odd;
      estimator.sample_prepared_pair(hops, fast_rng, &fast_even, &fast_odd);
      estimator.sample_pair(path, reference_rng, &reference_even,
                            &reference_odd);
      ASSERT_EQ(fast_even, reference_even) << "draw=" << draw;
      ASSERT_EQ(fast_odd, reference_odd) << "draw=" << draw;
    }
  }
}

TEST(FastPath, BatchEstimateMatchesSingleShot) {
  // estimate_many(queries)[i] must be bit-identical to estimate(queries[i])
  // — the batch seam adds parallelism, never different numbers.
  const FatTree topo(4);
  Rng rng(5);
  FlowSet flows;
  std::vector<FlowId> request_flows;
  std::vector<FlowId> reply_flows;
  for (int host = 1; host <= 4; ++host) {
    request_flows.push_back(
        flows.add(0, host, 10.0, FlowClass::LatencySensitive));
    reply_flows.push_back(
        flows.add(host, 0, 20.0, FlowClass::LatencySensitive));
  }
  const GreedyConsolidator greedy(&topo);
  const auto placement = greedy.consolidate(flows, ConsolidationConfig{});
  ASSERT_TRUE(placement.feasible);
  const LinkUtilization load = placement.offered_load(topo.graph(), flows);

  SlackEstimatorConfig config;
  config.samples_per_pair = 200;
  const SlackEstimator estimator(config);
  SlackEstimator::Query query;
  query.placement = &placement;
  query.offered_load = &load;
  query.request_flows = &request_flows;
  query.reply_flows = &reply_flows;

  const std::vector<SlackEstimate> batch =
      estimator.estimate_many({query, query});
  const SlackEstimate single = estimator.estimate(query);
  for (const SlackEstimate& est : batch) {
    EXPECT_EQ(est.request_mean, single.request_mean);
    EXPECT_EQ(est.request_p95, single.request_p95);
    EXPECT_EQ(est.total_mean, single.total_mean);
    EXPECT_EQ(est.total_p95, single.total_p95);
    EXPECT_EQ(est.total_p99, single.total_p99);
  }
}

}  // namespace
}  // namespace eprons
