// Tests for the energy & SLA attribution ledger: the bit-exact
// component-sum invariant of obs/attribution.h across seeds and thread
// counts, the core/attribution.h builders (per-layer network power,
// linger accounting, miss charging), and the planner's PlanExplain
// records (candidate coverage, reject reasons, path tags, and a golden
// serialization the JSONL consumers can rely on).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/attribution.h"
#include "core/joint_optimizer.h"
#include "dvfs/synthetic_workload.h"
#include "obs/attribution.h"

namespace eprons {
namespace {

ServiceModel test_model(std::uint64_t seed = 31) {
  Rng rng(seed);
  SyntheticWorkloadConfig config;
  config.samples = 20000;
  config.bins = 256;
  return make_search_service_model(config, rng);
}

JointOptimizerConfig ledger_config(std::uint64_t seed, int threads) {
  JointOptimizerConfig config;
  config.slack.samples_per_pair = 150;
  config.slack.seed = seed;
  config.runtime.threads = threads;
  return config;
}

void expect_ledger_sums_exact(const obs::AttributionRecord& rec) {
  // Exact float equality on purpose: the producers define their headline
  // totals as these fixed-order sums, so == must hold bit-for-bit.
  const obs::PowerAttribution& p = rec.power;
  EXPECT_EQ(p.network_total_w, ((p.edge_w + p.agg_w) + p.core_w) + p.link_w);
  EXPECT_EQ(p.server_total_w,
            (p.server_idle_w + p.server_dynamic_w) + p.server_dvfs_residual_w);
  EXPECT_EQ(p.total_w, p.network_total_w + p.server_total_w);
}

TEST(AttributionLedger, SumsBitIdenticallyAcrossSeedsAndThreads) {
  // The acceptance contract: for any seed and any --threads, the per-layer
  // and per-component breakdowns sum *byte-identically* to the plan's
  // headline totals, and the serialized JSONL line is identical too.
  const FatTree topo(4);
  const ServiceModel model = test_model();
  const ServerPowerModel power;
  for (const std::uint64_t seed : {1ull, 42ull, 99ull}) {
    Rng rng(seed);
    const FlowSet background =
        make_background_flows(FlowGenConfig{}, 6, 0.25, 0.1, rng);
    std::string baseline;
    for (const int threads : {1, 4, 8}) {
      const JointOptimizerConfig config = ledger_config(seed, threads);
      const JointOptimizer optimizer(&topo, &model, &power, config);
      obs::PlanExplainRecord explain;
      PlanRequest request;
      request.background = &background;
      request.utilization = 0.3;
      request.explain = &explain;
      const JointPlan plan = optimizer.optimize(request);

      const obs::AttributionRecord rec =
          make_plan_attribution(config, plan, "test", 0);
      expect_ledger_sums_exact(rec);
      EXPECT_EQ(rec.power.network_total_w, plan.network_power);
      EXPECT_EQ(rec.power.server_total_w, plan.server_power_w);
      EXPECT_EQ(rec.power.total_w, plan.total_power);

      const std::string lines = to_jsonl(rec) + to_jsonl(explain);
      if (baseline.empty()) {
        baseline = lines;
      } else {
        EXPECT_EQ(lines, baseline)
            << "ledger bytes diverged at seed=" << seed
            << " threads=" << threads;
      }
    }
  }
}

TEST(AttributionLedger, LayeredNetworkPowerPartitionsActiveSwitches) {
  const FatTree topo(4);
  const ServiceModel model = test_model();
  const ServerPowerModel power;
  const JointOptimizerConfig config = ledger_config(7, 1);
  const JointOptimizer optimizer(&topo, &model, &power, config);
  Rng rng(7);
  const FlowSet background =
      make_background_flows(FlowGenConfig{}, 6, 0.2, 0.0, rng);
  PlanRequest request;
  request.background = &background;
  request.utilization = 0.3;
  const JointPlan plan = optimizer.optimize(request);
  ASSERT_TRUE(plan.feasible);

  const LayeredNetworkPower net = layered_network_power(
      topo.graph(), plan.placement.switch_on, config.consolidation.switch_power);
  EXPECT_EQ(net.edge_switches + net.agg_switches + net.core_switches,
            plan.placement.active_switches);
  EXPECT_EQ(net.active_switches, plan.placement.active_switches);
  EXPECT_EQ(net.total_w, ((net.edge_w + net.agg_w) + net.core_w));
  // The placement's own per-layer fields agree with a recount of its mask.
  EXPECT_EQ(net.edge_switches, plan.placement.edge_switches);
  EXPECT_EQ(net.agg_switches, plan.placement.agg_switches);
  EXPECT_EQ(net.core_switches, plan.placement.core_switches);
}

TEST(AttributionLedger, LayeredPowerToleratesShortMasksAtScale) {
  // Regression for the k=16 path: a mask shorter than the node table
  // (e.g. a pod-local sub-result before the hierarchical stitch resizes
  // it) must count only the prefix it covers, never read past its end.
  const FatTree topo(16);
  const Graph& g = topo.graph();
  std::vector<bool> on(static_cast<std::size_t>(g.num_nodes()), true);
  const LayeredNetworkPower full = layered_network_power(g, on, 36.0);
  EXPECT_EQ(full.active_switches, topo.num_switches());
  EXPECT_EQ(full.total_w, topo.num_switches() * 36.0);
  on.resize(on.size() / 2);
  const LayeredNetworkPower half = layered_network_power(g, on, 36.0);
  EXPECT_LT(half.active_switches, full.active_switches);
  EXPECT_EQ(half.total_w, ((half.edge_w + half.agg_w) + half.core_w));
  EXPECT_EQ(layered_network_power(g, {}, 36.0).active_switches, 0);
}

TEST(AttributionLedger, LingerChargedToTransitionPolicy) {
  const FatTree topo(4);
  const ServiceModel model = test_model();
  const ServerPowerModel power;
  const JointOptimizerConfig config = ledger_config(11, 1);
  const JointOptimizer optimizer(&topo, &model, &power, config);
  Rng rng(11);
  const FlowSet background =
      make_background_flows(FlowGenConfig{}, 4, 0.1, 0.0, rng);
  PlanRequest request;
  request.background = &background;
  request.utilization = 0.3;
  const JointPlan plan = optimizer.optimize(request);
  ASSERT_TRUE(plan.feasible);

  // The transition policy holds one switch the plan did not ask for.
  const std::vector<bool>& wanted = plan.placement.switch_on;
  std::vector<bool> actual = wanted;
  int extra = -1;
  for (const Node& n : topo.graph().nodes()) {
    const auto i = static_cast<std::size_t>(n.id);
    if (is_switch_type(n.type) && i < actual.size() && !actual[i]) {
      actual[i] = true;
      extra = n.id;
      break;
    }
  }
  ASSERT_GE(extra, 0) << "plan already powers every switch";

  const obs::AttributionRecord rec = make_epoch_attribution(
      topo.graph(), config, plan, actual, wanted, "test", 3);
  expect_ledger_sums_exact(rec);
  EXPECT_EQ(rec.power.linger_switches, 1);
  EXPECT_EQ(rec.power.linger_overhead_w, config.consolidation.switch_power);
  // The realized mask carries one more switch than the plan asked for.
  EXPECT_EQ(rec.power.edge_switches + rec.power.agg_switches +
                rec.power.core_switches,
            plan.placement.active_switches + 1);
  EXPECT_EQ(rec.power.network_total_w,
            layered_network_power(topo.graph(), actual,
                                  config.consolidation.switch_power)
                .total_w);
  // Feasible epoch: no layer is charged for a miss.
  EXPECT_EQ(rec.latency.miss_charged_to, "");
  EXPECT_EQ(rec.latency.constraint_us, config.latency_constraint);
}

TEST(PlanExplain, ColdPathNamesEveryCandidateAndReason) {
  const FatTree topo(4);
  const ServiceModel model = test_model();
  const ServerPowerModel power;
  const JointOptimizerConfig config = ledger_config(42, 1);
  const JointOptimizer optimizer(&topo, &model, &power, config);
  Rng rng(42);
  const FlowSet background =
      make_background_flows(FlowGenConfig{}, 6, 0.25, 0.1, rng);
  obs::PlanExplainRecord explain;
  PlanRequest request;
  request.background = &background;
  request.utilization = 0.3;
  request.explain = &explain;
  const JointPlan plan = optimizer.optimize(request);

  EXPECT_EQ(explain.path, "cold");
  EXPECT_EQ(explain.chosen_k, plan.k);
  EXPECT_EQ(explain.feasible, plan.feasible);
  EXPECT_EQ(explain.chosen_total_w, plan.total_power);
  EXPECT_EQ(explain.consolidation_on_w, plan.network_power);
  // Consolidation never costs more than the everything-on baseline.
  EXPECT_GE(explain.consolidation_off_w, explain.consolidation_on_w);

  std::size_t expected = 0;
  for (double k = config.k_min; k <= config.k_max + 1e-9; k += config.k_step) {
    ++expected;
  }
  ASSERT_EQ(explain.candidates.size(), expected);
  bool saw_chosen = false;
  for (const obs::PlanCandidateExplain& c : explain.candidates) {
    if (c.feasible) {
      EXPECT_TRUE(c.reject_reason.empty())
          << "feasible K=" << c.k << " carries '" << c.reject_reason << "'";
    } else {
      EXPECT_TRUE(c.reject_reason == "budget_exhausted" ||
                  c.reject_reason == "placement_infeasible" ||
                  c.reject_reason == "dvfs_infeasible")
          << "rejected K=" << c.k << " reason '" << c.reject_reason << "'";
    }
    if (plan.feasible && c.k == plan.k) {
      saw_chosen = true;
      EXPECT_TRUE(c.feasible);
      EXPECT_EQ(c.total_w, plan.total_power);
      EXPECT_EQ(c.network_w, plan.network_power);
      EXPECT_EQ(c.server_w, plan.server_power_w);
      EXPECT_EQ(c.active_switches, plan.placement.active_switches);
    }
  }
  EXPECT_EQ(saw_chosen, plan.feasible);
}

TEST(PlanExplain, CacheHitAndWarmPathsAreTagged) {
  const FatTree topo(4);
  const ServiceModel model = test_model();
  const ServerPowerModel power;
  JointOptimizerConfig config = ledger_config(42, 1);
  config.incremental.enabled = true;
  const JointOptimizer optimizer(&topo, &model, &power, config);
  Rng rng(42);
  const FlowSet background =
      make_background_flows(FlowGenConfig{}, 6, 0.25, 0.1, rng);

  obs::PlanExplainRecord cold;
  PlanRequest request;
  request.background = &background;
  request.utilization = 0.3;
  request.explain = &cold;
  const JointPlan plan = optimizer.optimize(request);
  ASSERT_TRUE(plan.feasible);
  EXPECT_EQ(cold.path, "cold");

  // Same demand + previous plan: served straight from the plan cache.
  obs::PlanExplainRecord hit;
  request.previous = &plan;
  request.explain = &hit;
  const JointPlan cached = optimizer.optimize(request);
  EXPECT_EQ(hit.path, "cache_hit");
  ASSERT_EQ(hit.candidates.size(), 1u);
  EXPECT_TRUE(hit.candidates[0].from_cache);
  EXPECT_EQ(hit.chosen_k, cached.k);
  EXPECT_EQ(hit.chosen_total_w, cached.total_power);

  // New utilization misses the cache but keeps the previous K warm.
  obs::PlanExplainRecord warm;
  request.utilization = 0.35;
  request.explain = &warm;
  const JointPlan replanned = optimizer.optimize(request);
  if (replanned.feasible && warm.path == "warm") {
    ASSERT_EQ(warm.candidates.size(), 1u);
    EXPECT_FALSE(warm.candidates[0].from_cache);
    EXPECT_EQ(warm.chosen_k, plan.k);
  } else {
    // Warm re-evaluation fell back; the cold sweep must explain itself.
    EXPECT_EQ(warm.path, "cold");
    EXPECT_GT(warm.candidates.size(), 1u);
  }
}

TEST(PlanExplain, GoldenRecordSerialization) {
  // A consumer-facing golden: field order, names, and %.17g number
  // formatting are a contract with tools/eprons_report.py and any other
  // JSONL reader. Dyadic values print exactly.
  obs::PlanExplainRecord record;
  record.source = "golden";
  record.epoch = 7;
  record.path = "cold";
  record.chosen_k = 2.0;
  record.feasible = true;
  record.chosen_total_w = 1007.5;
  record.consolidation_on_w = 468.0;
  record.consolidation_off_w = 720.0;
  obs::PlanCandidateExplain rejected;
  rejected.k = 1.0;
  rejected.feasible = false;
  rejected.reject_reason = "dvfs_infeasible";
  rejected.total_w = 1130.25;
  rejected.network_w = 396.0;
  rejected.server_w = 734.25;
  rejected.violation_probability = 1.0;
  rejected.slack_p95_us = 9289.5;
  rejected.server_budget_us = 20710.5;
  rejected.active_switches = 11;
  obs::PlanCandidateExplain chosen;
  chosen.k = 2.0;
  chosen.feasible = true;
  chosen.total_w = 1007.5;
  chosen.network_w = 468.0;
  chosen.server_w = 539.5;
  chosen.violation_probability = 0.046875;
  chosen.slack_p95_us = 5286.625;
  chosen.server_budget_us = 24213.375;
  chosen.active_switches = 13;
  record.candidates = {rejected, chosen};

  EXPECT_EQ(
      to_jsonl(record),
      "{\"source\": \"plan_explain\", \"producer\": \"golden\", "
      "\"epoch\": 7, \"path\": \"cold\", \"chosen_k\": 2, "
      "\"feasible\": true, \"chosen_total_w\": 1007.5, "
      "\"consolidation_on_w\": 468, \"consolidation_off_w\": 720, "
      "\"candidates\": [{\"k\": 1, \"feasible\": false, "
      "\"from_cache\": false, \"reject_reason\": \"dvfs_infeasible\", "
      "\"total_w\": 1130.25, \"network_w\": 396, \"server_w\": 734.25, "
      "\"violation_probability\": 1, \"slack_p95_us\": 9289.5, "
      "\"server_budget_us\": 20710.5, \"active_switches\": 11}, "
      "{\"k\": 2, \"feasible\": true, \"from_cache\": false, "
      "\"reject_reason\": \"\", \"total_w\": 1007.5, \"network_w\": 468, "
      "\"server_w\": 539.5, \"violation_probability\": 0.046875, "
      "\"slack_p95_us\": 5286.625, \"server_budget_us\": 24213.375, "
      "\"active_switches\": 13}]}\n");
}

TEST(PlanExplain, GoldenAttributionSerialization) {
  obs::AttributionRecord record;
  record.source = "golden";
  record.epoch = 2;
  record.chosen_k = 3.0;
  record.feasible = true;
  record.power.edge_w = 288.0;
  record.power.agg_w = 144.0;
  record.power.core_w = 36.0;
  record.power.network_total_w = 468.0;
  record.power.linger_overhead_w = 36.0;
  record.power.edge_switches = 8;
  record.power.agg_switches = 4;
  record.power.core_switches = 1;
  record.power.linger_switches = 1;
  record.power.server_idle_w = 416.0;
  record.power.server_dynamic_w = 340.25;
  record.power.server_dvfs_residual_w = -195.5;
  record.power.server_total_w = 560.75;
  record.power.hosts = 16;
  record.power.total_w = 1028.75;
  record.latency.constraint_us = 30000.0;
  record.latency.network_p95_us = 5286.5;
  record.latency.network_p99_us = 7309.5;
  record.latency.request_p95_us = 2643.25;
  record.latency.server_budget_us = 24713.5;

  EXPECT_EQ(
      to_jsonl(record),
      "{\"source\": \"attribution\", \"producer\": \"golden\", "
      "\"epoch\": 2, \"chosen_k\": 3, \"feasible\": true, "
      "\"edge_w\": 288, \"agg_w\": 144, \"core_w\": 36, \"link_w\": 0, "
      "\"network_total_w\": 468, \"linger_overhead_w\": 36, "
      "\"edge_switches\": 8, \"agg_switches\": 4, \"core_switches\": 1, "
      "\"active_links\": 0, \"linger_switches\": 1, "
      "\"server_idle_w\": 416, \"server_dynamic_w\": 340.25, "
      "\"server_dvfs_residual_w\": -195.5, \"server_total_w\": 560.75, "
      "\"hosts\": 16, \"total_w\": 1028.75, \"constraint_us\": 30000, "
      "\"network_p95_us\": 5286.5, \"network_p99_us\": 7309.5, "
      "\"request_p95_us\": 2643.25, \"server_budget_us\": 24713.5, "
      "\"miss_charged_to\": \"\"}\n");
}

TEST(PlanExplain, RejectNamesCoverEveryEnumerator) {
  EXPECT_STREQ(plan_reject_name(PlanReject::None), "");
  EXPECT_STREQ(plan_reject_name(PlanReject::BudgetExhausted),
               "budget_exhausted");
  EXPECT_STREQ(plan_reject_name(PlanReject::PlacementInfeasible),
               "placement_infeasible");
  EXPECT_STREQ(plan_reject_name(PlanReject::DvfsInfeasible),
               "dvfs_infeasible");
}

}  // namespace
}  // namespace eprons
