// Unit + property tests for src/net: the Fig. 1 utilization-latency knee,
// directed link load accounting, and path latency composition.
#include <gtest/gtest.h>

#include "net/link_latency.h"
#include "net/link_utilization.h"
#include "net/path_latency.h"
#include "topo/fattree.h"
#include "util/rng.h"

namespace eprons {
namespace {

TEST(LinkLatency, PacketServiceTime) {
  LinkLatencyConfig config;  // 1 Gbps, 1500 B
  const LinkLatencyModel model(config);
  EXPECT_NEAR(model.packet_service_time(), 12.0, 1e-9);  // 12000 bits / 1000 Mbps
}

TEST(LinkLatency, FlatAtLowUtilization) {
  const LinkLatencyModel model;
  // The paper's observation: moving from light to medium utilization barely
  // changes latency.
  const SimTime l20 = model.mean_latency(0.20);
  const SimTime l50 = model.mean_latency(0.50);
  EXPECT_LT((l50 - l20) / l20, 0.5);
}

TEST(LinkLatency, KneeBeyondHighUtilization) {
  const LinkLatencyModel model;
  // Past the knee, latency explodes by orders of magnitude (139 us -> ~12 ms
  // in Fig. 1).
  const SimTime low = model.mean_latency(0.20);
  const SimTime saturated = model.mean_latency(0.999);
  EXPECT_GT(saturated / low, 50.0);
}

TEST(LinkLatency, MonotoneInUtilization) {
  const LinkLatencyModel model;
  SimTime prev = 0.0;
  for (double u = 0.0; u <= 1.0; u += 0.01) {
    const SimTime l = model.mean_latency(u);
    EXPECT_GE(l, prev - 1e-12) << "u=" << u;
    prev = l;
  }
}

TEST(LinkLatency, BufferCapsLatency) {
  const LinkLatencyModel model;
  EXPECT_LE(model.mean_latency(1.0), model.max_latency());
  EXPECT_NEAR(model.max_latency(),
              model.config().base_latency_us + 12.0 * 1000.0, 1e-9);
}

TEST(LinkLatency, SamplesBoundedAndMeanConsistent) {
  const LinkLatencyModel model;
  Rng rng(41);
  double total = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const SimTime s = model.sample_latency(0.5, rng);
    EXPECT_GE(s, model.config().base_latency_us);
    EXPECT_LE(s, model.max_latency() + 1e-9);
    total += s;
  }
  EXPECT_NEAR(total / n, model.mean_latency(0.5), 1.0);
}

TEST(LinkLatency, RejectsBadConfig) {
  LinkLatencyConfig bad;
  bad.capacity_mbps = 0.0;
  EXPECT_THROW(LinkLatencyModel{bad}, std::invalid_argument);
}

// Property sweep: sampling never under-runs base latency at any utilization.
class LinkLatencySample : public ::testing::TestWithParam<double> {};

TEST_P(LinkLatencySample, AlwaysAtLeastBase) {
  const LinkLatencyModel model;
  Rng rng(43);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_GE(model.sample_latency(GetParam(), rng),
              model.config().base_latency_us);
  }
}

INSTANTIATE_TEST_SUITE_P(Utilizations, LinkLatencySample,
                         ::testing::Values(0.0, 0.2, 0.5, 0.8, 0.95, 1.0,
                                           1.5));

TEST(LinkUtilization, DirectedAccounting) {
  const FatTree ft(4);
  LinkUtilization load(&ft.graph());
  const Path path = ft.all_paths(0, 1)[0];  // h0 -> e -> h1
  load.add_path_load(path, 500.0);
  EXPECT_DOUBLE_EQ(load.directed_load(path[0], path[1]), 500.0);
  // Reverse direction untouched.
  EXPECT_DOUBLE_EQ(load.directed_load(path[1], path[0]), 0.0);
  EXPECT_DOUBLE_EQ(load.directed_utilization(path[0], path[1]), 0.5);
}

TEST(LinkUtilization, RemoveRestoresZero) {
  const FatTree ft(4);
  LinkUtilization load(&ft.graph());
  const Path path = ft.all_paths(0, 15)[0];
  load.add_path_load(path, 100.0);
  load.remove_path_load(path, 100.0);
  EXPECT_DOUBLE_EQ(load.max_utilization(), 0.0);
  EXPECT_EQ(load.active_directed_links(), 0);
}

TEST(LinkUtilization, MaxPathUtilization) {
  const FatTree ft(4);
  LinkUtilization load(&ft.graph());
  const Path a = ft.all_paths(0, 15)[0];
  load.add_path_load(a, 900.0);
  EXPECT_DOUBLE_EQ(load.max_path_utilization(a), 0.9);
  // A disjoint path should be clean.
  const Path b = ft.all_paths(2, 3)[0];
  EXPECT_DOUBLE_EQ(load.max_path_utilization(b), 0.0);
}

TEST(LinkUtilization, AccumulatesMultipleFlows) {
  const FatTree ft(4);
  LinkUtilization load(&ft.graph());
  const Path path = ft.all_paths(0, 1)[0];
  load.add_path_load(path, 300.0);
  load.add_path_load(path, 200.0);
  EXPECT_DOUBLE_EQ(load.directed_load(path[0], path[1]), 500.0);
}

TEST(LinkUtilization, ThrowsOnNonAdjacent) {
  const FatTree ft(4);
  LinkUtilization load(&ft.graph());
  EXPECT_THROW(load.directed_load(ft.host(0), ft.host(1)),
               std::invalid_argument);
}

TEST(PathLatency, SumsPerHopMeans) {
  const FatTree ft(4);
  LinkUtilization load(&ft.graph());
  const LinkLatencyModel link_model;
  PathLatencyEstimator est(&load, link_model);
  const Path path = ft.all_paths(0, 15)[0];  // 6 hops
  const SimTime idle = est.mean_latency(path);
  EXPECT_NEAR(idle, 6.0 * link_model.mean_latency(0.0), 1e-9);
}

TEST(PathLatency, HotPathSlowerThanColdPath) {
  const FatTree ft(4);
  LinkUtilization load(&ft.graph());
  const auto paths = ft.all_paths(0, 15);
  load.add_path_load(paths[0], 940.0);
  PathLatencyEstimator est(&load, LinkLatencyModel{});
  EXPECT_GT(est.mean_latency(paths[0]), est.mean_latency(paths[3]));
}

TEST(PathLatency, SamplesBoundedByMax) {
  const FatTree ft(4);
  LinkUtilization load(&ft.graph());
  PathLatencyEstimator est(&load, LinkLatencyModel{});
  const Path path = ft.all_paths(0, 2)[0];
  Rng rng(47);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LE(est.sample_latency(path, rng), est.max_latency(path) + 1e-9);
  }
}

}  // namespace
}  // namespace eprons
