// Unit tests for src/util: RNG determinism and distributions, string
// helpers, CLI parsing, table rendering.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <sstream>

#include <atomic>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "util/cli.h"
#include "util/log.h"
#include "util/rng.h"
#include "util/strings.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "util/types.h"

namespace eprons {
namespace {

TEST(Types, WorkTimeConversionRoundTrips) {
  const Work w = 2.5e6;  // 2.5 Mcycles
  const Freq f = 2.0;    // GHz
  const SimTime t = work_to_time(w, f);
  EXPECT_DOUBLE_EQ(t, 1250.0);  // 2.5e6 cycles at 2000 cycles/us
  EXPECT_DOUBLE_EQ(time_to_work(t, f), w);
}

TEST(Types, UnitHelpers) {
  EXPECT_DOUBLE_EQ(ms(30.0), 30000.0);
  EXPECT_DOUBLE_EQ(sec(2.0), 2e6);
  EXPECT_DOUBLE_EQ(to_ms(5000.0), 5.0);
}

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(7);
  Rng child = parent.split();
  // Child and parent streams must not coincide.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.next() == child.next()) ++same;
  }
  EXPECT_LT(same, 2);
  // Splitting twice from the same original seed is deterministic.
  Rng parent2(7);
  Rng child2 = parent2.split();
  Rng child_ref = Rng(7).split();
  EXPECT_EQ(child2.next(), child_ref.next());
}

TEST(Rng, UniformInRange) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_int(2, 5);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 5);
    saw_lo |= (v == 2);
    saw_hi |= (v == 5);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ExponentialMeanApproximatelyCorrect) {
  Rng rng(11);
  double total = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) total += rng.exponential(3.0);
  EXPECT_NEAR(total / n, 3.0, 0.05);
}

TEST(Rng, NormalMomentsApproximatelyCorrect) {
  Rng rng(13);
  double total = 0.0, sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(5.0, 2.0);
    total += x;
    sq += x * x;
  }
  const double mean = total / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.1);
}

TEST(Rng, PoissonMeanMatchesSmallAndLarge) {
  Rng rng(17);
  for (const double mean : {2.0, 80.0}) {
    double total = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) total += static_cast<double>(rng.poisson(mean));
    EXPECT_NEAR(total / n, mean, mean * 0.05) << "mean=" << mean;
  }
}

TEST(Rng, BoundedParetoStaysInBounds) {
  Rng rng(19);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.bounded_pareto(1.3, 1.0, 50.0);
    EXPECT_GE(x, 1.0);
    EXPECT_LE(x, 50.0 + 1e-9);
  }
}

TEST(Strings, SplitPreservesEmptyFields) {
  const auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(Strings, TrimRemovesWhitespace) {
  EXPECT_EQ(trim("  x y\t\n"), "x y");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(Strings, ParseDoubleRejectsTrailingGarbage) {
  double v = 0.0;
  EXPECT_TRUE(parse_double("3.5", v));
  EXPECT_DOUBLE_EQ(v, 3.5);
  EXPECT_TRUE(parse_double(" 42 ", v));
  EXPECT_FALSE(parse_double("3.5x", v));
  EXPECT_FALSE(parse_double("", v));
}

TEST(Strings, ParseIntBasics) {
  long long v = 0;
  EXPECT_TRUE(parse_int("-17", v));
  EXPECT_EQ(v, -17);
  EXPECT_FALSE(parse_int("1.5", v));
}

TEST(Strings, StrFormat) {
  EXPECT_EQ(strformat("k=%d u=%.2f", 3, 0.5), "k=3 u=0.50");
}

TEST(Cli, ParsesAllFlagForms) {
  const char* argv[] = {"prog", "--util=0.3", "--k=4", "--csv", "pos1"};
  Cli cli(5, argv);
  EXPECT_DOUBLE_EQ(cli.get_double("util", 0.0), 0.3);
  EXPECT_EQ(cli.get_int("k", 0), 4);
  EXPECT_TRUE(cli.has_flag("csv"));
  EXPECT_FALSE(cli.has_flag("absent"));
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "pos1");
}

TEST(Cli, FallbacksAndUnused) {
  const char* argv[] = {"prog", "--typo=1"};
  Cli cli(2, argv);
  EXPECT_EQ(cli.get_int("nodes", 16), 16);
  const auto unused = cli.unused();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

TEST(Table, PrintsAlignedAndCsv) {
  Table t({"name", "value"});
  t.add_row({std::string("alpha"), 1.5});
  t.add_row({std::string("b"), 22.0});
  std::ostringstream pretty, csv;
  t.print(pretty);
  t.print_csv(csv);
  EXPECT_NE(pretty.str().find("alpha"), std::string::npos);
  EXPECT_NE(csv.str().find("alpha,1.500"), std::string::npos);
}

TEST(Table, CsvQuotesSpecialFields) {
  Table t({"x"});
  t.add_row({std::string("a,b")});
  std::ostringstream csv;
  t.print_csv(csv);
  EXPECT_NE(csv.str().find("\"a,b\""), std::string::npos);
}

TEST(Table, IntegerCellsPrintWithoutDecimals) {
  Table t({"n"});
  t.add_row({static_cast<long long>(42)});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_NE(os.str().find("42\n"), std::string::npos);
}

TEST(ThreadPool, ParallelForVisitsEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> visits(1000);
  parallel_for(&pool, visits.size(),
               [&](std::size_t i) { visits[i].fetch_add(1); });
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ThreadPool, ParallelForZeroItemsIsANoOp) {
  ThreadPool pool(4);
  bool touched = false;
  parallel_for(&pool, 0, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ThreadPool, NullPoolRunsSerially) {
  std::vector<int> order;
  parallel_for(nullptr, 5,
               [&](std::size_t i) { order.push_back(static_cast<int>(i)); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, ExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(parallel_for(&pool, 100,
                            [&](std::size_t i) {
                              if (i == 57) throw std::runtime_error("boom");
                            }),
               std::runtime_error);
  // The pool must still be usable after a failed batch.
  std::atomic<int> count{0};
  parallel_for(&pool, 10, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, OneThreadMatchesManyThreads) {
  // The determinism contract: per-index results never depend on the
  // worker count, only on the index.
  auto run = [](int threads) {
    ThreadPool pool(threads);
    std::vector<double> out(512);
    parallel_for(&pool, out.size(), [&](std::size_t i) {
      Rng rng(1000 + i);
      out[i] = rng.uniform() + rng.exponential(2.0);
    });
    return out;
  };
  const std::vector<double> serial = run(1);
  EXPECT_EQ(serial, run(2));
  EXPECT_EQ(serial, run(8));
}

TEST(ThreadPool, NestedParallelForCompletes) {
  // An inner parallel_for issued from a pool worker must not deadlock:
  // the caller drains its own batch.
  ThreadPool pool(2);
  std::atomic<int> total{0};
  parallel_for(&pool, 4, [&](std::size_t) {
    parallel_for(&pool, 8, [&](std::size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 32);
}

TEST(Cli, RuntimeFromCliParsesThreadCounts) {
  const char* pinned[] = {"prog", "--threads=3"};
  EXPECT_EQ(runtime_from_cli(Cli(2, pinned)).threads, 3);
  const char* absent[] = {"prog"};
  EXPECT_EQ(runtime_from_cli(Cli(1, absent)).threads, 1);
  const char* bare[] = {"prog", "--threads"};
  EXPECT_GE(runtime_from_cli(Cli(2, bare)).threads, 1);
}

TEST(Cli, TableFormatFromCliPrefersJson) {
  const char* both[] = {"prog", "--csv", "--json"};
  EXPECT_EQ(table_format_from_cli(Cli(3, both)), TableFormat::kJson);
  const char* csv[] = {"prog", "--csv"};
  EXPECT_EQ(table_format_from_cli(Cli(2, csv)), TableFormat::kCsv);
  const char* none[] = {"prog"};
  EXPECT_EQ(table_format_from_cli(Cli(1, none)), TableFormat::kPretty);
}

TEST(Table, JsonEmitsOneObjectPerRow) {
  Table t({"name", "value"});
  t.add_row({std::string("a\"b"), 1.5});
  t.add_row({static_cast<long long>(7), 2.0});
  std::ostringstream os;
  t.print(os, TableFormat::kJson);
  const std::string json = os.str();
  EXPECT_NE(json.find("{\"name\": \"a\\\"b\", \"value\": 1.5}"),
            std::string::npos);
  EXPECT_NE(json.find("{\"name\": 7, \"value\": 2}"), std::string::npos);
}

TEST(Table, DividerSpansFullRowWidth) {
  Table t({"name", "value"});
  t.add_row({std::string("alpha"), 1.5});
  std::ostringstream os;
  t.print(os);
  std::istringstream lines(os.str());
  std::string header, divider;
  ASSERT_TRUE(std::getline(lines, header));
  ASSERT_TRUE(std::getline(lines, divider));
  EXPECT_EQ(divider.size(), header.size());
  EXPECT_EQ(divider.find_first_not_of('-'), std::string::npos);
}

TEST(Strings, JsonEscapeHandlesSpecials) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape("a\bb\fc"), "a\\bb\\fc");
  EXPECT_EQ(json_escape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(Strings, JsonEscapeCoversEveryControlCharacter) {
  // Every byte below 0x20 must leave the output as a valid JSON escape —
  // either a two-char shorthand or a \u00xx sequence — never raw.
  for (int c = 0; c < 0x20; ++c) {
    const std::string escaped =
        json_escape(std::string_view(reinterpret_cast<const char*>(&c), 1));
    ASSERT_GE(escaped.size(), 2u) << "byte " << c;
    EXPECT_EQ(escaped[0], '\\') << "byte " << c;
    for (char ch : escaped) {
      EXPECT_GE(static_cast<unsigned char>(ch), 0x20u) << "byte " << c;
    }
  }
}

TEST(Strings, JsonNumberEmitsNullForNonFinite) {
  // JSON has no NaN/Inf tokens; `null` is the only universally parseable
  // stand-in. The old quoted "nan"/"inf" strings broke numeric consumers.
  EXPECT_EQ(json_number(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(json_number(-std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(json_number(std::nan("")), "null");
  EXPECT_EQ(json_number(-std::nan("")), "null");
}

TEST(Strings, JsonNumberRoundTripsFiniteValues) {
  EXPECT_EQ(json_number(1.5), "1.5");
  EXPECT_EQ(json_number(0.0), "0");
  // %.17g must reproduce the exact bit pattern through strtod for every
  // finite double, including negatives, subnormals, and extremes.
  const double cases[] = {
      -1.5,
      -0.0,
      1.0 / 3.0,
      -12345.678901234567,
      std::numeric_limits<double>::min(),          // smallest normal
      std::numeric_limits<double>::denorm_min(),   // smallest subnormal
      -std::numeric_limits<double>::denorm_min(),
      std::numeric_limits<double>::max(),
      -std::numeric_limits<double>::max(),
      4.9406564584124654e-318,                     // mid-range subnormal
  };
  for (double value : cases) {
    const std::string text = json_number(value);
    double parsed = 0.0;
    ASSERT_TRUE(parse_double(text, parsed)) << text;
    EXPECT_EQ(std::memcmp(&parsed, &value, sizeof(double)), 0)
        << text << " parsed back as different bits";
  }
}

TEST(Log, ParseLogLevelAcceptsAllSpellings) {
  LogLevel level = LogLevel::Warn;
  EXPECT_TRUE(parse_log_level("debug", level));
  EXPECT_EQ(level, LogLevel::Debug);
  EXPECT_TRUE(parse_log_level("INFO", level));
  EXPECT_EQ(level, LogLevel::Info);
  EXPECT_TRUE(parse_log_level("Warning", level));
  EXPECT_EQ(level, LogLevel::Warn);
  EXPECT_TRUE(parse_log_level("error", level));
  EXPECT_EQ(level, LogLevel::Error);
  EXPECT_TRUE(parse_log_level("off", level));
  EXPECT_EQ(level, LogLevel::Off);
  EXPECT_FALSE(parse_log_level("verbose", level));
  EXPECT_EQ(level, LogLevel::Off);  // untouched on failure
}

TEST(Cli, RuntimeFromCliParsesTelemetrySinks) {
  const char* argv[] = {"prog", "--metrics-out=m.json", "--trace-out=t.json",
                        "--epoch-log=e.jsonl"};
  const RuntimeConfig runtime = runtime_from_cli(Cli(4, argv));
  EXPECT_EQ(runtime.metrics_out, "m.json");
  EXPECT_EQ(runtime.trace_out, "t.json");
  EXPECT_EQ(runtime.epoch_log_out, "e.jsonl");
  const char* none[] = {"prog"};
  const RuntimeConfig empty = runtime_from_cli(Cli(1, none));
  EXPECT_TRUE(empty.metrics_out.empty());
  EXPECT_TRUE(empty.trace_out.empty());
  EXPECT_TRUE(empty.epoch_log_out.empty());
}

}  // namespace
}  // namespace eprons
