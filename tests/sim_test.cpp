// Tests for src/sim: event queue ordering, DVFS-aware server mechanics,
// and end-to-end cluster integration properties.
#include <gtest/gtest.h>

#include "dvfs/synthetic_workload.h"
#include "sim/event_queue.h"
#include "sim/search_cluster.h"
#include "sim/server.h"
#include "topo/aggregation.h"

namespace eprons {
namespace {

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue events;
  std::vector<int> order;
  events.schedule(30.0, [&] { order.push_back(3); });
  events.schedule(10.0, [&] { order.push_back(1); });
  events.schedule(20.0, [&] { order.push_back(2); });
  events.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(events.now(), 30.0);
}

TEST(EventQueue, EqualTimesFifoBySchedulingOrder) {
  EventQueue events;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    events.schedule(7.0, [&order, i] { order.push_back(i); });
  }
  events.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, PastTimesClampToNow) {
  EventQueue events;
  events.schedule(10.0, [] {});
  events.step();
  bool fired = false;
  events.schedule(5.0, [&] { fired = true; });  // in the past
  events.step();
  EXPECT_TRUE(fired);
  EXPECT_DOUBLE_EQ(events.now(), 10.0);
}

TEST(EventQueue, RunUntilStopsAndAdvancesClock) {
  EventQueue events;
  int fired = 0;
  events.schedule(10.0, [&] { ++fired; });
  events.schedule(50.0, [&] { ++fired; });
  events.run_until(20.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(events.now(), 20.0);
  EXPECT_EQ(events.pending(), 1u);
}

TEST(EventQueue, EventsCanScheduleEvents) {
  EventQueue events;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 5) events.schedule_in(10.0, chain);
  };
  events.schedule(0.0, chain);
  events.run_all();
  EXPECT_EQ(count, 5);
  EXPECT_DOUBLE_EQ(events.now(), 40.0);
}

ServiceModel sim_model(std::uint64_t seed = 21) {
  Rng rng(seed);
  SyntheticWorkloadConfig config;
  config.samples = 20000;
  config.bins = 256;
  return make_search_service_model(config, rng);
}

ServerRequest request_with(Work work, SimTime deadline) {
  ServerRequest r;
  r.work = work;
  r.meta.deadline_server = deadline;
  r.meta.deadline_with_slack = deadline;
  return r;
}

TEST(SimServer, ServesAtMaxFrequencyExactly) {
  EventQueue events;
  const ServiceModel model = sim_model();
  const ServerPowerModel power;
  std::vector<ServerCompletion> completions;
  SimServer server(
      &events, &model, &power,
      [](const ServiceModel* m) { return std::make_unique<MaxFreqPolicy>(m); },
      [&](const ServerCompletion& c) { completions.push_back(c); });

  const Work w = 2.7e6;  // exactly 1 ms at 2.7 GHz (with mu folded in)
  server.submit(request_with(w, ms(100.0)));
  events.run_all();
  ASSERT_EQ(completions.size(), 1u);
  EXPECT_NEAR(completions[0].completed_at, model.service_time(w, 2.7), 1e-6);
}

TEST(SimServer, LeastLoadedDispatchSpreadsRequests) {
  EventQueue events;
  const ServiceModel model = sim_model();
  const ServerPowerModel power;  // 12 cores
  int done = 0;
  SimServer server(
      &events, &model, &power,
      [](const ServiceModel* m) { return std::make_unique<MaxFreqPolicy>(m); },
      [&](const ServerCompletion&) { ++done; });
  // 12 simultaneous requests must land one per core.
  for (int i = 0; i < 12; ++i) server.submit(request_with(1e6, ms(100.0)));
  for (int c = 0; c < 12; ++c) EXPECT_EQ(server.queue_length(c), 1u);
  events.run_all();
  EXPECT_EQ(done, 12);
}

TEST(SimServer, QueuedRequestsServeInOrder) {
  EventQueue events;
  const ServiceModel model = sim_model();
  ServerPowerConfig pc;
  pc.num_cores = 1;  // force queueing
  const ServerPowerModel power(pc);
  std::vector<RequestId> completed;
  SimServer server(
      &events, &model, &power,
      [](const ServiceModel* m) { return std::make_unique<MaxFreqPolicy>(m); },
      [&](const ServerCompletion& c) { completed.push_back(c.request.meta.id); });
  for (int i = 0; i < 3; ++i) {
    ServerRequest r = request_with(1e6, ms(100.0));
    r.meta.id = i;
    server.submit(r);
  }
  events.run_all();
  EXPECT_EQ(completed, (std::vector<RequestId>{0, 1, 2}));
}

TEST(SimServer, EdfPolicyReordersWaitingRequests) {
  EventQueue events;
  const ServiceModel model = sim_model();
  ServerPowerConfig pc;
  pc.num_cores = 1;
  const ServerPowerModel power(pc);
  std::vector<RequestId> completed;
  SimServer server(
      &events, &model, &power,
      [](const ServiceModel* m) {
        return std::make_unique<EpronsServerPolicy>(m);
      },
      [&](const ServerCompletion& c) { completed.push_back(c.request.meta.id); });
  // Head (id 0) is in service; ids 1..3 wait with inverted deadlines.
  for (int i = 0; i < 4; ++i) {
    ServerRequest r = request_with(4e6, ms(100.0 - 20.0 * i));
    r.meta.id = i;
    r.meta.deadline_with_slack = ms(100.0 - 20.0 * i);
    server.submit(r);
  }
  events.run_all();
  ASSERT_EQ(completed.size(), 4u);
  EXPECT_EQ(completed[0], 0);  // in-service head cannot be preempted
  // Waiting requests drain earliest-deadline-first: 3 (40ms), 2 (60), 1 (80).
  EXPECT_EQ(completed[1], 3);
  EXPECT_EQ(completed[2], 2);
  EXPECT_EQ(completed[3], 1);
}

TEST(SimServer, EnergyAccountingMatchesBusyTime) {
  EventQueue events;
  const ServiceModel model = sim_model();
  ServerPowerConfig pc;
  pc.num_cores = 1;
  const ServerPowerModel power(pc);
  SimServer server(
      &events, &model, &power,
      [](const ServiceModel* m) { return std::make_unique<MaxFreqPolicy>(m); },
      nullptr);
  const Work w = 5.4e6;
  server.submit(request_with(w, ms(100.0)));
  events.run_all();
  const SimTime busy = model.service_time(w, 2.7);
  server.sync_energy(events.now());
  EXPECT_NEAR(server.total_cpu_energy(),
              busy * power.core_power(true, 2.7), 1.0);
  EXPECT_NEAR(server.average_core_utilization(), 1.0, 1e-6);
}

TEST(SimServer, ArrivalMidServiceReschedulesConsistently) {
  // A second arrival mid-service must not lose or duplicate completions,
  // even though the frequency changes at the arrival instant.
  EventQueue events;
  const ServiceModel model = sim_model();
  ServerPowerConfig pc;
  pc.num_cores = 1;
  const ServerPowerModel power(pc);
  int done = 0;
  SimServer server(
      &events, &model, &power,
      [](const ServiceModel* m) {
        return std::make_unique<RubikPolicy>(m);
      },
      [&](const ServerCompletion&) { ++done; });
  ServerRequest first = request_with(10e6, ms(25.0));
  first.meta.deadline_with_slack = ms(25.0);
  server.submit(first);
  events.schedule(ms(1.0), [&] {
    ServerRequest second = request_with(10e6, ms(26.0));
    second.meta.arrival = events.now();
    second.meta.deadline_server = events.now() + ms(25.0);
    second.meta.deadline_with_slack = second.meta.deadline_server;
    server.submit(second);
  });
  events.run_all();
  EXPECT_EQ(done, 2);
  EXPECT_EQ(server.total_queued(), 0u);
}

// ---- Cluster integration ----

ScenarioConfig fast_scenario(const std::string& policy, double util) {
  ScenarioConfig config;
  config.cluster.policy = policy;
  config.cluster.target_utilization = util;
  config.cluster.warmup = sec(0.5);
  config.cluster.duration = sec(3.0);
  config.cluster.feedback_warmup = sec(60.0);
  config.cluster.seed = 42;
  return config;
}

TEST(SearchCluster, UtilizationTracksTarget) {
  const FatTree topo(4);
  const ServiceModel model = sim_model();
  const ServerPowerModel power;
  Rng rng(9);
  const FlowSet background =
      make_background_flows(FlowGenConfig{}, 8, 0.1, 0.1, rng);
  const AggregationPolicies policies(&topo);
  const auto subnet = policies.policy(0).switch_on;
  const auto result = run_search_scenario(topo, model, power, background,
                                          fast_scenario("max", 0.3), &subnet);
  EXPECT_NEAR(result.metrics.measured_core_utilization, 0.3, 0.05);
  EXPECT_GT(result.metrics.queries_completed, 100u);
}

TEST(SearchCluster, StatisticalPolicySavesPowerVsMax) {
  const FatTree topo(4);
  const ServiceModel model = sim_model();
  const ServerPowerModel power;
  Rng rng(9);
  const FlowSet background =
      make_background_flows(FlowGenConfig{}, 8, 0.1, 0.1, rng);
  const AggregationPolicies policies(&topo);
  const auto subnet = policies.policy(0).switch_on;
  const auto max_run = run_search_scenario(topo, model, power, background,
                                           fast_scenario("max", 0.3), &subnet);
  const auto eprons_run = run_search_scenario(
      topo, model, power, background, fast_scenario("eprons", 0.3), &subnet);
  EXPECT_LT(eprons_run.metrics.avg_cpu_power_per_server,
            max_run.metrics.avg_cpu_power_per_server * 0.85);
  // And the SLA holds at roughly the target miss budget.
  EXPECT_LT(eprons_run.metrics.subquery_miss_rate, 0.08);
}

TEST(SearchCluster, SubqueryTailRespectsConstraintShape) {
  const FatTree topo(4);
  const ServiceModel model = sim_model();
  const ServerPowerModel power;
  Rng rng(9);
  const FlowSet background =
      make_background_flows(FlowGenConfig{}, 8, 0.1, 0.1, rng);
  const AggregationPolicies policies(&topo);
  const auto subnet = policies.policy(0).switch_on;
  const auto run = run_search_scenario(topo, model, power, background,
                                       fast_scenario("eprons", 0.3), &subnet);
  // EPRONS pushes completions toward the deadline but not far past it.
  EXPECT_LT(run.metrics.subquery_latency.p95, ms(32.0));
  EXPECT_GT(run.metrics.subquery_latency.p95, ms(10.0));
}

TEST(SearchCluster, DeterministicForFixedSeed) {
  const FatTree topo(4);
  const ServiceModel model = sim_model();
  const ServerPowerModel power;
  Rng rng(9);
  const FlowSet background =
      make_background_flows(FlowGenConfig{}, 8, 0.1, 0.1, rng);
  const auto a = run_search_scenario(topo, model, power, background,
                                     fast_scenario("rubik", 0.2));
  const auto b = run_search_scenario(topo, model, power, background,
                                     fast_scenario("rubik", 0.2));
  EXPECT_DOUBLE_EQ(a.metrics.avg_cpu_power_per_server,
                   b.metrics.avg_cpu_power_per_server);
  EXPECT_EQ(a.metrics.queries_completed, b.metrics.queries_completed);
  EXPECT_DOUBLE_EQ(a.metrics.subquery_latency.p95,
                   b.metrics.subquery_latency.p95);
}

TEST(SearchCluster, PinnedSubnetReportsItsFullPower) {
  const FatTree topo(4);
  const ServiceModel model = sim_model();
  const ServerPowerModel power;
  Rng rng(9);
  const FlowSet background =
      make_background_flows(FlowGenConfig{}, 4, 0.05, 0.1, rng);
  const AggregationPolicies policies(&topo);
  const auto agg2 = policies.policy(2).switch_on;
  const auto run = run_search_scenario(topo, model, power, background,
                                       fast_scenario("max", 0.1), &agg2);
  // 14 switches at 36 W each, regardless of how few the routing used.
  EXPECT_DOUBLE_EQ(run.metrics.network_power, 14 * 36.0);
}

TEST(SearchCluster, FreeConsolidationPaysOnlyActiveSwitches) {
  const FatTree topo(4);
  const ServiceModel model = sim_model();
  const ServerPowerModel power;
  Rng rng(9);
  const FlowSet background =
      make_background_flows(FlowGenConfig{}, 4, 0.05, 0.1, rng);
  const auto run = run_search_scenario(topo, model, power, background,
                                       fast_scenario("max", 0.1));
  EXPECT_DOUBLE_EQ(run.metrics.network_power,
                   run.placement.active_switches * 36.0);
  EXPECT_LT(run.placement.active_switches, 20);
}

TEST(SearchCluster, HigherAggregationRaisesNetworkTail) {
  const FatTree topo(4);
  const ServiceModel model = sim_model();
  const ServerPowerModel power;
  Rng rng(9);
  const FlowSet background =
      make_background_flows(FlowGenConfig{}, 12, 0.3, 0.1, rng);
  const AggregationPolicies policies(&topo);
  const auto agg0 = policies.policy(0).switch_on;
  const auto agg3 = policies.policy(3).switch_on;
  const auto run0 = run_search_scenario(topo, model, power, background,
                                        fast_scenario("max", 0.3), &agg0);
  const auto run3 = run_search_scenario(topo, model, power, background,
                                        fast_scenario("max", 0.3), &agg3);
  EXPECT_GT(run3.metrics.network_latency.p95,
            run0.metrics.network_latency.p95);
}

TEST(Metrics, SummarizeEmptyAndFilled) {
  PercentileEstimator estimator;
  LatencyStats empty = summarize(estimator);
  EXPECT_EQ(empty.count, 0u);
  for (int i = 1; i <= 100; ++i) estimator.add(i);
  const LatencyStats stats = summarize(estimator);
  EXPECT_EQ(stats.count, 100u);
  EXPECT_DOUBLE_EQ(stats.p95, 95.0);
  EXPECT_DOUBLE_EQ(stats.max, 100.0);
}

}  // namespace
}  // namespace eprons
