// Tests for src/core and src/trace: slack estimation, the analytical server
// power predictor, the joint K optimizer (including the paper's
// "turning on switches can lower total power" behavior), and diurnal
// trace generation / replay plumbing.
#include <gtest/gtest.h>

#include <cmath>

#include "core/epoch_controller.h"
#include "core/joint_optimizer.h"
#include "core/server_power_predictor.h"
#include "core/slack_estimator.h"
#include "core/trace_replay.h"
#include "dvfs/synthetic_workload.h"
#include "fault/fault_injector.h"
#include "obs/telemetry.h"
#include "trace/diurnal.h"

namespace eprons {
namespace {

ServiceModel core_model(std::uint64_t seed = 31) {
  Rng rng(seed);
  SyntheticWorkloadConfig config;
  config.samples = 20000;
  config.bins = 256;
  return make_search_service_model(config, rng);
}

TEST(Diurnal, ShapePeaksAtConfiguredMinute) {
  DiurnalTraceConfig config;
  EXPECT_NEAR(diurnal_shape(config, config.peak_minute), 1.0, 1e-12);
  EXPECT_NEAR(diurnal_shape(config, config.peak_minute + 720), 0.0, 1e-12);
}

TEST(Diurnal, TraceBoundsRespected) {
  DiurnalTraceConfig config;
  const auto trace = make_diurnal_trace(config);
  ASSERT_EQ(trace.size(), 1440u);
  for (const TracePoint& p : trace) {
    EXPECT_GE(p.search_load, 0.0);
    EXPECT_LE(p.search_load, 1.0);
    EXPECT_GE(p.background_util, 0.0);
    EXPECT_LE(p.background_util, 1.0);
  }
}

TEST(Diurnal, PeakToTroughRatioMatchesFig14) {
  DiurnalTraceConfig config;
  config.noise = 0.0;
  const auto trace = make_diurnal_trace(config);
  double lo = 1.0, hi = 0.0;
  for (const TracePoint& p : trace) {
    lo = std::min(lo, p.search_load);
    hi = std::max(hi, p.search_load);
  }
  EXPECT_NEAR(lo, config.search_trough, 1e-9);
  EXPECT_NEAR(hi, config.search_peak, 1e-3);
}

TEST(Diurnal, DeterministicForSeed) {
  DiurnalTraceConfig config;
  const auto a = make_diurnal_trace(config);
  const auto b = make_diurnal_trace(config);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].search_load, b[i].search_load);
  }
}

TEST(SlackEstimator, LoadedPathSlowerThanIdle) {
  const FatTree topo(4);
  FlowSet flows;
  const FlowId req = flows.add(0, 15, 10.0, FlowClass::LatencySensitive);
  const FlowId rep = flows.add(15, 0, 40.0, FlowClass::LatencySensitive);
  const GreedyConsolidator greedy(&topo);
  ConsolidationConfig config;
  const auto placement = greedy.consolidate(flows, config);
  ASSERT_TRUE(placement.feasible);

  // Idle network.
  LinkUtilization idle(&topo.graph());
  const SlackEstimate idle_est = estimate_network_slack(
      topo.graph(), placement, idle, {req}, {rep}, SlackEstimatorConfig{});

  // Same paths with a hot elephant on them.
  LinkUtilization hot(&topo.graph());
  hot.add_path_load(placement.flow_paths[static_cast<std::size_t>(req)], 940.0);
  hot.add_path_load(placement.flow_paths[static_cast<std::size_t>(rep)], 940.0);
  const SlackEstimate hot_est = estimate_network_slack(
      topo.graph(), placement, hot, {req}, {rep}, SlackEstimatorConfig{});

  EXPECT_GT(hot_est.total_p95, idle_est.total_p95);
  EXPECT_GT(idle_est.total_p95, 0.0);
  EXPECT_GE(idle_est.total_p95, idle_est.total_mean);
}

TEST(SlackEstimator, UnroutedFlowsSkippedGracefully) {
  const FatTree topo(4);
  ConsolidationResult placement;  // nothing routed
  LinkUtilization load(&topo.graph());
  const SlackEstimate est = estimate_network_slack(
      topo.graph(), placement, load, {0}, {1}, SlackEstimatorConfig{});
  EXPECT_DOUBLE_EQ(est.total_p95, 0.0);
}

TEST(ServerPowerPredictor, MorePowerAtHigherUtilization) {
  const ServiceModel model = core_model();
  const ServerPowerModel power;
  const ServerPowerPredictor predictor(&model, &power);
  const auto lo = predictor.predict(0.1, ms(25.0));
  const auto hi = predictor.predict(0.5, ms(25.0));
  EXPECT_GT(hi.server_power, lo.server_power);
}

TEST(ServerPowerPredictor, TighterBudgetCostsMorePower) {
  const ServiceModel model = core_model();
  const ServerPowerModel power;
  const ServerPowerPredictor predictor(&model, &power);
  const auto tight = predictor.predict(0.3, ms(14.0));
  const auto loose = predictor.predict(0.3, ms(40.0));
  EXPECT_GE(tight.frequency, loose.frequency);
  EXPECT_GE(tight.server_power, loose.server_power - 1e-9);
}

TEST(ServerPowerPredictor, ImpossibleBudgetFlagged) {
  const ServiceModel model = core_model();
  const ServerPowerModel power;
  const ServerPowerPredictor predictor(&model, &power);
  const auto result = predictor.predict(0.3, 10.0);  // 10 us budget
  EXPECT_TRUE(result.budget_infeasible);
  EXPECT_DOUBLE_EQ(result.frequency, 2.7);
}

TEST(ServerPowerPredictor, BoundedByPeakAndIdle) {
  const ServiceModel model = core_model();
  const ServerPowerModel power;
  const ServerPowerPredictor predictor(&model, &power);
  for (double u : {0.05, 0.2, 0.4, 0.6}) {
    const auto p = predictor.predict(u, ms(25.0));
    EXPECT_GE(p.server_power, power.idle_power() - 1e-9);
    EXPECT_LE(p.server_power, power.peak_power() + 1e-9);
  }
}

JointOptimizerConfig fast_joint_config() {
  JointOptimizerConfig config;
  config.slack.samples_per_pair = 150;
  return config;
}

JointPlan optimize_plan(const JointOptimizer& optimizer,
                        const FlowSet& background, double utilization) {
  PlanRequest request;
  request.background = &background;
  request.utilization = utilization;
  return optimizer.optimize(request);
}

TEST(JointOptimizer, PrefersSmallSubnetWhenTrafficIsLight) {
  const FatTree topo(4);
  const ServiceModel model = core_model();
  const ServerPowerModel power;
  const JointOptimizer optimizer(&topo, &model, &power, fast_joint_config());
  Rng rng(13);
  const FlowSet background =
      make_background_flows(FlowGenConfig{}, 4, 0.01, 0.0, rng);
  const JointPlan plan = optimize_plan(optimizer, background, 0.1);
  ASSERT_TRUE(plan.feasible);
  // Light traffic: no reason to light up the whole fabric.
  EXPECT_LT(plan.placement.active_switches, 20);
}

TEST(JointOptimizer, HeavierBackgroundActivatesMoreSwitches) {
  const FatTree topo(4);
  const ServiceModel model = core_model();
  const ServerPowerModel power;
  const JointOptimizer optimizer(&topo, &model, &power, fast_joint_config());
  Rng rng(13);
  const FlowSet light =
      make_background_flows(FlowGenConfig{}, 4, 0.01, 0.0, rng);
  Rng rng2(13);
  const FlowSet heavy =
      make_background_flows(FlowGenConfig{}, 12, 0.45, 0.0, rng2);
  const JointPlan light_plan = optimize_plan(optimizer, light, 0.3);
  const JointPlan heavy_plan = optimize_plan(optimizer, heavy, 0.3);
  EXPECT_GE(heavy_plan.placement.active_switches,
            light_plan.placement.active_switches);
}

TEST(JointOptimizer, PlanForKMonotoneSwitchCount) {
  const FatTree topo(4);
  const ServiceModel model = core_model();
  const ServerPowerModel power;
  const JointOptimizer optimizer(&topo, &model, &power, fast_joint_config());
  Rng rng(17);
  const FlowSet background =
      make_background_flows(FlowGenConfig{}, 8, 0.2, 0.0, rng);
  int prev = 0;
  for (double k = 1.0; k <= 4.0; k += 1.0) {
    const JointPlan plan = optimizer.plan_for_k(background, 0.3, k);
    if (!plan.placement.feasible) continue;
    EXPECT_GE(plan.placement.active_switches, prev) << "K=" << k;
    prev = plan.placement.active_switches;
  }
}

TEST(JointOptimizer, LargerKBuysNetworkSlack) {
  const FatTree topo(4);
  const ServiceModel model = core_model();
  const ServerPowerModel power;
  const JointOptimizer optimizer(&topo, &model, &power, fast_joint_config());
  Rng rng(19);
  const FlowSet background =
      make_background_flows(FlowGenConfig{}, 10, 0.35, 0.0, rng);
  const JointPlan k1 = optimizer.plan_for_k(background, 0.3, 1.0);
  const JointPlan k4 = optimizer.plan_for_k(background, 0.3, 4.0);
  if (k1.placement.feasible && k4.placement.feasible) {
    EXPECT_LE(k4.slack.total_p95, k1.slack.total_p95 * 1.25);
    EXPECT_GE(k4.effective_server_budget,
              k1.effective_server_budget - ms(1.0));
  }
}

TEST(JointOptimizer, TotalPowerIncludesServersAndNetwork) {
  const FatTree topo(4);
  const ServiceModel model = core_model();
  const ServerPowerModel power;
  const JointOptimizer optimizer(&topo, &model, &power, fast_joint_config());
  Rng rng(23);
  const FlowSet background =
      make_background_flows(FlowGenConfig{}, 4, 0.1, 0.0, rng);
  const JointPlan plan = optimize_plan(optimizer, background, 0.3);
  ASSERT_TRUE(plan.feasible);
  EXPECT_NEAR(plan.total_power,
              plan.network_power + 16 * plan.server.server_power, 1e-6);
  EXPECT_GT(plan.network_power, 0.0);
}

TEST(JointOptimizer, TelemetryMatchesReturnedPlan) {
  // The metrics the K search records must agree with the JointPlan it
  // returns: one k_candidate per candidate K, the chosen_k/chosen_total_w
  // gauges set from the serial reduction, and candidate classifications
  // that partition the candidate count.
  const FatTree topo(4);
  const ServiceModel model = core_model();
  const ServerPowerModel power;
  const JointOptimizerConfig config = fast_joint_config();
  const JointOptimizer optimizer(&topo, &model, &power, config);
  Rng rng(23);
  const FlowSet background =
      make_background_flows(FlowGenConfig{}, 4, 0.1, 0.0, rng);

  const obs::MetricsSnapshot before = obs::metrics().snapshot();
  auto counter_at = [](const obs::MetricsSnapshot& snap,
                       const std::string& name) -> std::uint64_t {
    const auto it = snap.counters.find(name);
    return it == snap.counters.end() ? 0u : it->second;
  };

  const JointPlan plan = optimize_plan(optimizer, background, 0.3);
  const obs::MetricsSnapshot after = obs::metrics().snapshot();

  std::uint64_t expected_candidates = 0;
  for (double k = config.k_min; k <= config.k_max + 1e-9; k += config.k_step) {
    ++expected_candidates;
  }
  const std::uint64_t candidates =
      counter_at(after, "planner.k_candidates") -
      counter_at(before, "planner.k_candidates");
  EXPECT_EQ(candidates, expected_candidates);
  EXPECT_EQ(counter_at(after, "planner.searches") -
                counter_at(before, "planner.searches"),
            1u);
  // Feasible + infeasible classifications partition the candidates.
  const std::uint64_t classified =
      (counter_at(after, "planner.k_feasible") -
       counter_at(before, "planner.k_feasible")) +
      (counter_at(after, "planner.k_infeasible_placement") -
       counter_at(before, "planner.k_infeasible_placement")) +
      (counter_at(after, "planner.k_infeasible_budget") -
       counter_at(before, "planner.k_infeasible_budget"));
  EXPECT_EQ(classified, candidates);
  // Gauges are set in the serial reduction from the winning plan.
  EXPECT_EQ(after.gauges.at("planner.chosen_k"), plan.k);
  EXPECT_EQ(after.gauges.at("planner.chosen_total_w"), plan.total_power);
}

TEST(JointOptimizer, ParallelSearchMatchesSerialExactly) {
  // The tentpole determinism contract: optimize() with runtime.threads=N
  // must return a plan bit-identical to the serial search, for any seed.
  const FatTree topo(4);
  const ServiceModel model = core_model();
  const ServerPowerModel power;
  for (const std::uint64_t seed : {1ull, 42ull, 99ull}) {
    Rng rng(seed);
    const FlowSet background =
        make_background_flows(FlowGenConfig{}, 6, 0.25, 0.1, rng);

    JointOptimizerConfig serial_config = fast_joint_config();
    serial_config.slack.seed = seed;
    const JointOptimizer serial(&topo, &model, &power, serial_config);
    const JointPlan a = optimize_plan(serial, background, 0.3);

    JointOptimizerConfig parallel_config = serial_config;
    parallel_config.runtime.threads = 4;
    const JointOptimizer parallel(&topo, &model, &power, parallel_config);
    const JointPlan b = optimize_plan(parallel, background, 0.3);

    EXPECT_EQ(a.feasible, b.feasible);
    EXPECT_EQ(a.k, b.k);
    EXPECT_EQ(a.placement.switch_on, b.placement.switch_on);
    EXPECT_EQ(a.placement.flow_paths, b.placement.flow_paths);
    EXPECT_EQ(a.placement.active_switches, b.placement.active_switches);
    EXPECT_EQ(a.slack.request_p95, b.slack.request_p95);
    EXPECT_EQ(a.slack.total_p95, b.slack.total_p95);
    EXPECT_EQ(a.slack.total_p99, b.slack.total_p99);
    EXPECT_EQ(a.slack.request_mean, b.slack.request_mean);
    EXPECT_EQ(a.effective_server_budget, b.effective_server_budget);
    EXPECT_EQ(a.network_power, b.network_power);
    EXPECT_EQ(a.server.server_power, b.server.server_power);
    EXPECT_EQ(a.total_power, b.total_power);
  }
}

TEST(JointOptimizer, InjectedConsolidatorIsUsed) {
  const FatTree topo(4);
  const ServiceModel model = core_model();
  const ServerPowerModel power;
  const GreedyConsolidator greedy;
  const JointOptimizer optimizer(&topo, &model, &power, fast_joint_config(),
                                 &greedy);
  EXPECT_STREQ(optimizer.consolidator().name(), "greedy");
  Rng rng(5);
  const FlowSet background =
      make_background_flows(FlowGenConfig{}, 4, 0.1, 0.0, rng);
  const JointPlan plan = optimize_plan(optimizer, background, 0.2);
  EXPECT_GT(plan.placement.active_switches, 0);
}

TEST(TraceReplay, SchemeNames) {
  EXPECT_STREQ(scheme_name(Scheme::NoPowerManagement), "no-power-management");
  EXPECT_STREQ(scheme_name(Scheme::Eprons), "eprons");
}

TEST(EpochController, InvariantsHoldUnderFailureStorm) {
  // Property test: whatever a dense fault storm does to the fabric, every
  // epoch report keeps the controller's core invariants — lingering
  // backups mean actual >= wanted switches, the scale factor never drops
  // below 1, predicted power stays finite, and the active mask is never
  // disconnected while a connected surviving subnet exists.
  const FatTree topo(4);
  const Graph& g = topo.graph();
  const ServiceModel model = core_model();
  const ServerPowerModel power;
  EpochControllerConfig config;
  config.joint.slack.samples_per_pair = 60;
  config.samples_per_epoch = 40;
  config.transition.linger_epochs = 1;
  EpochController controller(&topo, &model, &power, config);

  FaultInjectorConfig faults;
  faults.mtbf = sec(40.0);  // storm: many overlapping outages
  faults.mttr = sec(120.0);
  faults.horizon = 6 * sec(600.0);
  faults.seed = 3;
  const FaultSchedule schedule = generate_fault_schedule(g, faults);
  ASSERT_GT(schedule.events.size(), 20u);
  FaultCursor cursor(&g, &schedule.timeline);

  FlowGenConfig gen;
  gen.exclude_host = 0;
  Rng flows_rng(5);
  const FlowSet background =
      make_background_flows(gen, 6, 0.2, 0.1, flows_rng);
  const std::vector<NodeId> hosts = g.hosts();
  const std::vector<NodeId> targets(hosts.begin() + 1, hosts.end());
  const std::vector<bool> all_on(g.num_nodes(), true);

  Rng rng(17);
  for (int e = 0; e < 6; ++e) {
    const EpochReport report = controller.run_epoch(background, 0.25, rng);
    EXPECT_GE(report.actual_switches, report.wanted_switches) << "epoch " << e;
    EXPECT_GE(report.chosen_k, 1.0) << "epoch " << e;
    EXPECT_TRUE(std::isfinite(report.predicted_total)) << "epoch " << e;
    if (g.connected(hosts[0], targets, all_on, &cursor.overlay())) {
      EXPECT_TRUE(g.connected(hosts[0], targets, controller.current_mask(),
                              &cursor.overlay()))
          << "epoch " << e << ": active mask disconnected";
    }

    const SimTime epoch_end = (e + 1) * sec(600.0);
    while (!cursor.exhausted() && cursor.next_time() <= epoch_end) {
      cursor.advance_to(cursor.next_time());
      const RecoveryReport r = controller.on_failure(cursor.overlay());
      if (r.replanned) EXPECT_GE(r.chosen_k, 1.0) << "epoch " << e;
      EXPECT_GE(r.time_to_replan, 0.0);
      EXPECT_GE(r.emergency_boots, 0);
      EXPECT_TRUE(std::isfinite(r.estimated_outage_violations));
      EXPECT_GE(r.estimated_outage_violations, 0.0);
      if (r.connected) {
        EXPECT_TRUE(g.connected(hosts[0], targets, controller.current_mask(),
                                &cursor.overlay()))
            << "epoch " << e << ": recovery left hosts disconnected";
      }
    }
  }
}

}  // namespace
}  // namespace eprons
