// Unit tests for src/power: DVFS curve calibration, server power, switch
// power, and the core energy meter.
#include <gtest/gtest.h>

#include "power/freq_power_curve.h"
#include "power/server_power.h"
#include "power/switch_power.h"

namespace eprons {
namespace {

TEST(FreqPowerCurve, MatchesPaperCalibrationPoints) {
  const auto curve = FreqPowerCurve::xeon_e5_2697v2();
  EXPECT_NEAR(curve.active_power(1.2), 1.4, 1e-9);
  EXPECT_NEAR(curve.active_power(2.7), 4.4, 1e-9);
}

TEST(FreqPowerCurve, MonotoneIncreasing) {
  const auto curve = FreqPowerCurve::xeon_e5_2697v2();
  double prev = 0.0;
  for (Freq f : curve.frequency_grid()) {
    const Power p = curve.active_power(f);
    EXPECT_GT(p, prev);
    prev = p;
  }
}

TEST(FreqPowerCurve, GridHas16PointsAt100MHz) {
  const auto grid = FreqPowerCurve::xeon_e5_2697v2().frequency_grid(0.1);
  EXPECT_EQ(grid.size(), 16u);  // 1.2, 1.3, ..., 2.7
  EXPECT_DOUBLE_EQ(grid.front(), 1.2);
  EXPECT_DOUBLE_EQ(grid.back(), 2.7);
}

TEST(FreqPowerCurve, ClampsOutOfRangeQueries) {
  const auto curve = FreqPowerCurve::xeon_e5_2697v2();
  EXPECT_DOUBLE_EQ(curve.active_power(0.5), curve.active_power(1.2));
  EXPECT_DOUBLE_EQ(curve.active_power(9.9), curve.active_power(2.7));
}

TEST(FreqPowerCurve, RejectsBadCalibration) {
  EXPECT_THROW(FreqPowerCurve(2.0, 1.0, 1.0, 2.0), std::invalid_argument);
  EXPECT_THROW(FreqPowerCurve(1.0, 3.0, 2.0, 2.0), std::invalid_argument);
}

TEST(ServerPower, PeakAndIdle) {
  const ServerPowerModel model;  // paper defaults: 12 cores, 20 W static
  // Peak: 20 + 12 * 4.4 = 72.8 W.
  EXPECT_NEAR(model.peak_power(), 72.8, 1e-9);
  // Idle: 20 + 12 * 0.5 = 26 W.
  EXPECT_NEAR(model.idle_power(), 26.0, 1e-9);
}

TEST(ServerPower, ActiveCoreCountScalesPower) {
  const ServerPowerModel model;
  const Power p6 = model.server_power(6, 2.0);
  const Power p12 = model.server_power(12, 2.0);
  EXPECT_GT(p12, p6);
  // Difference is exactly 6 * (active - idle) core power.
  const Power delta = model.core_power(true, 2.0) - model.core_power(false, 0);
  EXPECT_NEAR(p12 - p6, 6 * delta, 1e-9);
}

TEST(ServerPower, ClampsCoreCounts) {
  const ServerPowerModel model;
  EXPECT_DOUBLE_EQ(model.server_power(-3, 2.0), model.server_power(0, 2.0));
  EXPECT_DOUBLE_EQ(model.server_power(99, 2.0), model.server_power(12, 2.0));
}

TEST(CoreEnergyMeter, IntegratesAcrossFrequencyChanges) {
  const ServerPowerModel model;
  CoreEnergyMeter meter(&model);
  meter.set_state(0.0, /*active=*/true, 2.7);
  meter.set_state(100.0, /*active=*/true, 1.2);   // 100us at 4.4 W
  meter.set_state(300.0, /*active=*/false, 0.0);  // 200us at 1.4 W
  meter.advance(400.0);                           // 100us idle at 0.5 W
  const Energy expect = 100.0 * 4.4 + 200.0 * 1.4 + 100.0 * 0.5;
  EXPECT_NEAR(meter.energy(), expect, 1e-6);
  EXPECT_NEAR(meter.busy_time(), 300.0, 1e-9);
  EXPECT_NEAR(meter.average_power(), expect / 400.0, 1e-9);
}

TEST(CoreEnergyMeter, IgnoresTimeBeforeFirstState) {
  const ServerPowerModel model;
  CoreEnergyMeter meter(&model);
  meter.set_state(500.0, true, 2.0);
  meter.advance(600.0);
  EXPECT_NEAR(meter.total_time(), 100.0, 1e-9);
}

TEST(CoreEnergyMeter, NonMonotoneAdvanceIsNoOp) {
  const ServerPowerModel model;
  CoreEnergyMeter meter(&model);
  meter.set_state(0.0, true, 2.0);
  meter.advance(100.0);
  const Energy e = meter.energy();
  meter.advance(50.0);  // going backwards must not change anything
  EXPECT_DOUBLE_EQ(meter.energy(), e);
}

TEST(SwitchPower, Fig8HpeCalibration) {
  const auto model = SwitchPowerModel::hpe_e3800();
  EXPECT_NEAR(model.switch_power(true, 0.0, 4), 97.5, 1e-9);
  // Utilization 0 -> 100% adds only 0.59 W (the paper's key observation).
  EXPECT_NEAR(model.switch_power(true, 1.0, 4) -
                  model.switch_power(true, 0.0, 4),
              0.59, 1e-9);
}

TEST(SwitchPower, Reference4PortModel) {
  const auto model = SwitchPowerModel::reference_4port();
  EXPECT_DOUBLE_EQ(model.switch_power(true, 0.5, 4), 36.0);
  EXPECT_DOUBLE_EQ(model.switch_power(false, 0.5, 4), 0.0);
}

TEST(SwitchPower, UtilizationClamped) {
  const auto model = SwitchPowerModel::hpe_e3800();
  EXPECT_DOUBLE_EQ(model.switch_power(true, 2.0, 4),
                   model.switch_power(true, 1.0, 4));
  EXPECT_DOUBLE_EQ(model.switch_power(true, -1.0, 4),
                   model.switch_power(true, 0.0, 4));
}

}  // namespace
}  // namespace eprons
