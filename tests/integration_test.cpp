// Cross-module integration and property tests: the headline joint result,
// MILP capacity invariants under K, and end-to-end determinism of the
// whole stack including the epoch controller.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>

#include "consolidate/hierarchical_consolidator.h"
#include "consolidate/milp_consolidator.h"
#include "core/epoch_controller.h"
#include "core/trace_replay.h"
#include "dvfs/synthetic_workload.h"
#include "sim/search_cluster.h"
#include "topo/aggregation.h"
#include "topo/leaf_spine.h"

namespace eprons {
namespace {

ServiceModel shared_model() {
  Rng rng(41);
  SyntheticWorkloadConfig config;
  config.samples = 20000;
  config.bins = 256;
  return make_search_service_model(config, rng);
}

TEST(Integration, HeadlineJointSavingsAtLowLoad) {
  // The paper's headline: at low load, joint optimization saves a large
  // fraction of total power vs no power management while keeping the SLA.
  const FatTree topo(4);
  const ServiceModel model = shared_model();
  const ServerPowerModel power;
  FlowGenConfig gen;
  gen.exclude_host = 0;
  Rng rng(3);
  const FlowSet background = make_background_flows(gen, 6, 0.1, 0.1, rng);

  const AggregationPolicies policies(&topo);
  const auto full = policies.policy(0).switch_on;

  ScenarioConfig base;
  base.cluster.policy = "max";
  base.cluster.target_utilization = 0.1;
  base.cluster.duration = sec(4.0);
  base.cluster.warmup = sec(0.5);
  const auto no_pm = run_search_scenario(topo, model, power, background,
                                         base, &full);

  const JointOptimizer optimizer(&topo, &model, &power);
  PlanRequest plan_request;
  plan_request.background = &background;
  plan_request.utilization = 0.1;
  const JointPlan plan = optimizer.optimize(plan_request);
  ASSERT_TRUE(plan.feasible);
  ScenarioConfig joint = base;
  joint.cluster.policy = "eprons";
  const auto eprons = run_search_scenario(topo, model, power, background,
                                          joint, &plan.placement.switch_on);

  const double saving = 1.0 - eprons.metrics.total_system_power /
                                  no_pm.metrics.total_system_power;
  // The paper reports up to 31.25% at low load; anything >15% here keeps
  // the claim's spirit (absolute figure depends on the static-power share).
  EXPECT_GT(saving, 0.15);
  EXPECT_LT(eprons.metrics.subquery_miss_rate, 0.08);
}

class MilpCapacityInvariant : public ::testing::TestWithParam<double> {};

TEST_P(MilpCapacityInvariant, FabricArcsRespectScaledReservations) {
  // For every K: the exact MILP's placement keeps scaled reservations on
  // fabric (switch-switch) arcs within capacity - margin.
  const double k = GetParam();
  const FatTree ft(4);
  FlowSet flows;
  flows.add(0, 12, 700.0, FlowClass::LatencyTolerant);
  flows.add(1, 13, 40.0, FlowClass::LatencySensitive);
  flows.add(2, 14, 40.0, FlowClass::LatencySensitive);
  flows.add(5, 9, 300.0, FlowClass::LatencyTolerant);
  ConsolidationConfig config;
  config.scale_factor_k = k;
  const auto result = MilpConsolidator(&ft).consolidate(flows, config);
  ASSERT_TRUE(result.feasible) << "K=" << k;

  LinkUtilization reserved(&ft.graph());
  for (std::size_t i = 0; i < flows.size(); ++i) {
    reserved.add_path_load(result.flow_paths[i], flows[i].scaled_demand(k));
  }
  const Graph& g = ft.graph();
  for (const Link& l : g.links()) {
    if (!g.is_switch(l.a) || !g.is_switch(l.b)) continue;  // fabric only
    for (auto [from, to] : {std::pair{l.a, l.b}, std::pair{l.b, l.a}}) {
      EXPECT_LE(reserved.directed_load(from, to),
                l.capacity - config.safety_margin + 1e-6)
          << "K=" << k << " arc " << g.node(from).name << "->"
          << g.node(to).name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(ScaleFactors, MilpCapacityInvariant,
                         ::testing::Values(1.0, 2.0, 3.0, 4.0));

TEST(Integration, LeafSpineClusterSimulationRuns) {
  // The whole DES stack on a non-fat-tree topology.
  const LeafSpine topo(4, 4, 4);
  const ServiceModel model = shared_model();
  const ServerPowerModel power;
  FlowGenConfig gen;
  gen.num_hosts = topo.num_hosts();
  gen.hosts_per_edge = topo.hosts_per_access_switch();
  gen.exclude_host = 0;
  Rng rng(7);
  const FlowSet background = make_background_flows(gen, 3, 0.2, 0.1, rng);

  ScenarioConfig scenario;
  scenario.cluster.policy = "eprons";
  scenario.cluster.target_utilization = 0.2;
  scenario.cluster.duration = sec(3.0);
  scenario.cluster.warmup = sec(0.5);
  const auto result =
      run_search_scenario(topo, model, power, background, scenario);
  EXPECT_GT(result.metrics.queries_completed, 50u);
  EXPECT_GT(result.metrics.avg_cpu_power_per_server, 0.0);
  EXPECT_LT(result.metrics.subquery_miss_rate, 0.15);
}

TEST(Integration, EpochControllerDeterministic) {
  const FatTree topo(4);
  const ServiceModel model = shared_model();
  const ServerPowerModel power;
  auto run_once = [&]() {
    EpochControllerConfig config;
    config.joint.slack.samples_per_pair = 60;
    config.samples_per_epoch = 40;
    EpochController controller(&topo, &model, &power, config);
    FlowGenConfig gen;
    gen.exclude_host = 0;
    Rng flows_rng(5);
    const FlowSet background =
        make_background_flows(gen, 6, 0.25, 0.1, flows_rng);
    Rng rng(17);
    std::vector<double> ks;
    for (int e = 0; e < 3; ++e) {
      ks.push_back(controller.run_epoch(background, 0.3, rng).chosen_k);
    }
    return ks;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Integration, ScaleSmokeK16HierarchicalEpochPlan) {
  // k=16 (1024 hosts, 320 switches) end-to-end: the joint optimizer with
  // the hierarchical consolidator plans a full epoch within the
  // integration budget, and the plan fingerprint is byte-identical for
  // 1/4/8 worker threads. The fingerprint is printed so CI can gate on
  // cross-thread (and cross-run) drift.
  const FatTree topo(16);
  const ServiceModel model = shared_model();
  const ServerPowerModel power;
  FlowGenConfig gen;
  gen.num_hosts = topo.num_hosts();
  gen.hosts_per_edge = topo.hosts_per_access_switch();
  gen.exclude_host = 0;
  Rng rng(13);
  const FlowSet background = make_background_flows(gen, 48, 0.2, 0.1, rng);

  std::uint64_t serial_fp = 0;
  for (const int threads : {1, 4, 8}) {
    JointOptimizerConfig config;
    config.slack.samples_per_pair = 60;
    config.k_max = 2.0;  // narrow sweep: the smoke gates scale, not K
    config.runtime.threads = threads;
    // Every query fans out to all 1023 leaves; the default 10/20 Mbps
    // per-leaf demands would put 20+ Gbps of reply fan-in on the
    // aggregator's 1 Gbps host link. Hold the *aggregate* query load at a
    // feasible level by shrinking the per-leaf demand with the fan-out,
    // and scale the latency budget with it: the round-trip p95 is taken
    // over 1023 leaf legs (vs 15 at k=4), so the modeled tail is
    // structurally larger at this scale.
    config.query_request_demand = 0.2;
    config.query_reply_demand = 0.4;
    config.latency_constraint = ms(120.0);
    const HierarchicalConsolidator hier(nullptr, {threads});
    const JointOptimizer optimizer(&topo, &model, &power, config, &hier);
    PlanRequest request;
    request.background = &background;
    request.utilization = 0.2;
    const JointPlan plan = optimizer.optimize(request);
    ASSERT_TRUE(plan.feasible) << "threads " << threads;
    const std::uint64_t fp = placement_fingerprint(plan.placement);
    if (threads == 1) {
      serial_fp = fp;
      std::printf("k16-plan-fingerprint: %016llx\n",
                  static_cast<unsigned long long>(fp));
    } else {
      EXPECT_EQ(fp, serial_fp) << "threads " << threads;
    }
  }
}

TEST(Integration, PolicyOrderingHoldsAtHighLoad) {
  // The Fig. 12 ordering as an executable regression: at 50% utilization
  // on the full topology, eprons <= rubik+ + noise <= rubik + noise < max.
  const FatTree topo(4);
  const ServiceModel model = shared_model();
  const ServerPowerModel power;
  FlowGenConfig gen;
  gen.exclude_host = 0;
  Rng rng(23);
  const FlowSet background = make_background_flows(gen, 6, 0.2, 0.1, rng);
  const AggregationPolicies policies(&topo);
  const auto full = policies.policy(0).switch_on;

  auto cpu = [&](const char* policy) {
    ScenarioConfig scenario;
    scenario.cluster.policy = policy;
    scenario.cluster.target_utilization = 0.5;
    scenario.cluster.duration = sec(5.0);
    scenario.cluster.warmup = sec(0.5);
    return run_search_scenario(topo, model, power, background, scenario,
                               &full)
        .metrics.avg_cpu_power_per_server;
  };
  const double p_max = cpu("max");
  const double p_rubik = cpu("rubik");
  const double p_eprons = cpu("eprons");
  EXPECT_LT(p_rubik, p_max * 0.85);
  EXPECT_LE(p_eprons, p_rubik * 1.02);  // at worst within noise of rubik
}

// Whole-day trace replays (moved out of core_test so `ctest -L unit`
// stays fast; these each replay 1440 minutes of the diurnal trace).
TraceReplayConfig fast_replay_config() {
  TraceReplayConfig config;
  config.calibration_shapes = {0.0, 1.0};
  config.scenario.cluster.warmup = sec(0.3);
  config.scenario.cluster.duration = sec(1.5);
  config.scenario.cluster.feedback_warmup = sec(40.0);
  config.joint.slack.samples_per_pair = 100;
  return config;
}

TEST(TraceReplay, NoPmSeriesCoversWholeDay) {
  const FatTree topo(4);
  const ServiceModel model = shared_model();
  const ServerPowerModel power;
  const TraceReplay replay(&topo, &model, &power, fast_replay_config());
  const ReplayResult result = replay.replay(Scheme::NoPowerManagement);
  EXPECT_EQ(result.series.size(), 1440u);
  EXPECT_GT(result.average_total_power, 0.0);
  // No-PM network power is the full fabric at all times.
  for (const MinutePower& m : result.series) {
    EXPECT_DOUBLE_EQ(m.network_power, 20 * 36.0);
  }
}

TEST(TraceReplay, EpronsSavesVsNoPm) {
  const FatTree topo(4);
  const ServiceModel model = shared_model();
  const ServerPowerModel power;
  const TraceReplay replay(&topo, &model, &power, fast_replay_config());
  const ReplayResult base = replay.replay(Scheme::NoPowerManagement);
  const ReplayResult eprons = replay.replay(Scheme::Eprons);
  const auto savings = TraceReplay::savings(base, eprons);
  EXPECT_GT(savings.total_pct, 5.0);
  EXPECT_GT(savings.network_pct, 0.0);
  EXPECT_GE(savings.peak_total_pct, savings.total_pct);
}

}  // namespace
}  // namespace eprons
