// Tests for src/consolidate: the Fig. 2 scenario end-to-end on the exact
// MILP, greedy-vs-MILP agreement, the arc LP lower bound, and edge cases.
#include <gtest/gtest.h>

#include "consolidate/arc_lp.h"
#include "consolidate/greedy_consolidator.h"
#include "consolidate/milp_consolidator.h"
#include "util/rng.h"

namespace eprons {
namespace {

// The Fig. 2 flow mix: one 900 Mbps latency-tolerant elephant plus two
// 20 Mbps latency-sensitive flows on a 4-ary fat-tree with 1 Gbps links and
// a 50 Mbps safety margin. Endpoints chosen in different pods so paths
// traverse the core (as drawn in the figure).
FlowSet fig2_flows() {
  FlowSet flows;
  flows.add(0, 12, 900.0, FlowClass::LatencyTolerant);   // red elephant
  flows.add(1, 13, 20.0, FlowClass::LatencySensitive);   // green
  flows.add(2, 14, 20.0, FlowClass::LatencySensitive);   // blue
  return flows;
}

ConsolidationConfig fig2_config(double k) {
  ConsolidationConfig config;
  config.scale_factor_k = k;
  config.safety_margin = 50.0;
  config.switch_power = 36.0;
  return config;
}

TEST(MilpConsolidator, Fig2AtK1SharesPath) {
  const FatTree ft(4);
  const MilpConsolidator milp(&ft);
  const auto result = milp.consolidate(fig2_flows(), fig2_config(1.0));
  ASSERT_TRUE(result.feasible);
  // 900 + 20 + 20 = 940 <= 950: all three flows share one agg/core spine.
  // Hosts 0,1 sit under edge e0_0 and host 2 under e0_1 (likewise pod 3),
  // so the minimal subnet is 4 edge + 2 agg + 1 core = 7 switches.
  EXPECT_EQ(result.active_switches, 7);
}

TEST(MilpConsolidator, Fig2AtK2SplitsOneFlow) {
  const FatTree ft(4);
  const MilpConsolidator milp(&ft);
  const auto result = milp.consolidate(fig2_flows(), fig2_config(2.0));
  ASSERT_TRUE(result.feasible);
  // 900 + 40 + 40 = 980 > 950: at least one latency-sensitive flow must
  // move to a second path, activating more switches.
  EXPECT_GT(result.active_switches, 7);
  // Verify capacity respected: no directed arc carries more than 950 of
  // *scaled* demand.
  LinkUtilization scaled(&ft.graph());
  const FlowSet flows = fig2_flows();
  for (std::size_t i = 0; i < flows.size(); ++i) {
    scaled.add_path_load(result.flow_paths[i], flows[i].scaled_demand(2.0));
  }
  EXPECT_LE(scaled.max_utilization(), 0.95 + 1e-9);
}

TEST(MilpConsolidator, Fig2ActiveSwitchesMonotoneInK) {
  const FatTree ft(4);
  const MilpConsolidator milp(&ft);
  int prev = 0;
  for (double k = 1.0; k <= 3.0; k += 1.0) {
    const auto result = milp.consolidate(fig2_flows(), fig2_config(k));
    ASSERT_TRUE(result.feasible) << "K=" << k;
    EXPECT_GE(result.active_switches, prev) << "K=" << k;
    prev = result.active_switches;
  }
}

TEST(MilpConsolidator, EmptyFlowSetTurnsEverythingOff) {
  const FatTree ft(4);
  const MilpConsolidator milp(&ft);
  const auto result = milp.consolidate(FlowSet{}, fig2_config(1.0));
  ASSERT_TRUE(result.feasible);
  EXPECT_EQ(result.active_switches, 0);
  EXPECT_DOUBLE_EQ(result.network_power, 0.0);
}

TEST(MilpConsolidator, InfeasibleWhenDemandExceedsAllCuts) {
  const FatTree ft(4);
  FlowSet flows;
  // Host 0 has a single 1 Gbps uplink; 2 x 600 Mbps from host 0 can never fit.
  flows.add(0, 5, 600.0, FlowClass::LatencyTolerant);
  flows.add(0, 9, 600.0, FlowClass::LatencyTolerant);
  const MilpConsolidator milp(&ft);
  const auto result = milp.consolidate(flows, fig2_config(1.0));
  EXPECT_FALSE(result.feasible);
}

TEST(MilpConsolidator, PathsConnectEndpoints) {
  const FatTree ft(4);
  const MilpConsolidator milp(&ft);
  const FlowSet flows = fig2_flows();
  const auto result = milp.consolidate(flows, fig2_config(2.0));
  ASSERT_TRUE(result.feasible);
  for (std::size_t i = 0; i < flows.size(); ++i) {
    ASSERT_GE(result.flow_paths[i].size(), 2u);
    EXPECT_EQ(result.flow_paths[i].front(), ft.host(flows[i].src_host));
    EXPECT_EQ(result.flow_paths[i].back(), ft.host(flows[i].dst_host));
  }
}

TEST(MilpConsolidator, ZeroDemandFlowStillGetsAPoweredPath) {
  const FatTree ft(4);
  FlowSet flows;
  flows.add(0, 15, 0.0, FlowClass::LatencySensitive);
  const MilpConsolidator milp(&ft);
  const auto result = milp.consolidate(flows, fig2_config(1.0));
  ASSERT_TRUE(result.feasible);
  ASSERT_GE(result.flow_paths[0].size(), 2u);
  // Its whole path must be marked on.
  for (NodeId n : result.flow_paths[0]) {
    EXPECT_TRUE(result.switch_on[static_cast<std::size_t>(n)]);
  }
}

TEST(GreedyConsolidator, Fig2MatchesMilpSwitchCountAtK1) {
  const FatTree ft(4);
  const GreedyConsolidator greedy(&ft);
  const auto result = greedy.consolidate(fig2_flows(), fig2_config(1.0));
  ASSERT_TRUE(result.feasible);
  EXPECT_EQ(result.active_switches, 7);
}

TEST(GreedyConsolidator, NeverBeatsMilp) {
  // Property: on random feasible instances the greedy objective is >= MILP.
  const FatTree ft(4);
  const MilpConsolidator milp(&ft);
  const GreedyConsolidator greedy(&ft);
  Rng rng(53);
  int compared = 0;
  for (int trial = 0; trial < 8; ++trial) {
    FlowSet flows;
    const int n = 4 + static_cast<int>(rng.uniform_int(0, 3));
    for (int i = 0; i < n; ++i) {
      const int src = static_cast<int>(rng.uniform_int(0, 15));
      int dst = src;
      while (dst == src) dst = static_cast<int>(rng.uniform_int(0, 15));
      flows.add(src, dst, rng.uniform(50.0, 400.0),
                rng.bernoulli(0.5) ? FlowClass::LatencySensitive
                                   : FlowClass::LatencyTolerant);
    }
    const auto config = fig2_config(1.0);
    const auto exact = milp.consolidate(flows, config);
    const auto heur = greedy.consolidate(flows, config);
    if (!exact.feasible || !heur.feasible) continue;
    EXPECT_GE(heur.active_switches, exact.active_switches) << "trial " << trial;
    ++compared;
  }
  EXPECT_GT(compared, 0);
}

TEST(GreedyConsolidator, RespectsCapacityWhenFeasible) {
  const FatTree ft(4);
  const GreedyConsolidator greedy(&ft);
  Rng rng(59);
  FlowSet flows;
  for (int i = 0; i < 12; ++i) {
    const int src = static_cast<int>(rng.uniform_int(0, 15));
    int dst = src;
    while (dst == src) dst = static_cast<int>(rng.uniform_int(0, 15));
    flows.add(src, dst, rng.uniform(10.0, 200.0), FlowClass::LatencyTolerant);
  }
  const auto config = fig2_config(1.0);
  const auto result = greedy.consolidate(flows, config);
  ASSERT_TRUE(result.feasible);
  LinkUtilization load(&ft.graph());
  for (std::size_t i = 0; i < flows.size(); ++i) {
    load.add_path_load(result.flow_paths[i], flows[i].demand);
  }
  EXPECT_LE(load.max_utilization(), 0.95 + 1e-9);
}

TEST(GreedyConsolidator, OverflowReportedWhenImpossible) {
  const FatTree ft(4);
  const GreedyConsolidator greedy(&ft);
  FlowSet flows;
  flows.add(0, 5, 600.0, FlowClass::LatencyTolerant);
  flows.add(0, 9, 600.0, FlowClass::LatencyTolerant);
  const auto result = greedy.consolidate(flows, fig2_config(1.0));
  EXPECT_FALSE(result.feasible);
  EXPECT_TRUE(greedy.last_overloaded());
  // Best-effort still produced usable paths for the simulator.
  EXPECT_GE(result.flow_paths[0].size(), 2u);
  EXPECT_GE(result.flow_paths[1].size(), 2u);
}

TEST(GreedyConsolidator, StrictModeGivesUp) {
  const FatTree ft(4);
  GreedyConsolidatorOptions options;
  options.best_effort_overflow = false;
  const GreedyConsolidator greedy(&ft, options);
  FlowSet flows;
  flows.add(0, 5, 600.0, FlowClass::LatencyTolerant);
  flows.add(0, 9, 600.0, FlowClass::LatencyTolerant);
  const auto result = greedy.consolidate(flows, fig2_config(1.0));
  EXPECT_FALSE(result.feasible);
  EXPECT_TRUE(result.flow_paths[0].empty());
}

TEST(ArcLp, LowerBoundsMilp) {
  const FatTree ft(4);
  const ArcLpRelaxation relax(&ft);
  const MilpConsolidator milp(&ft);
  const auto config = fig2_config(2.0);
  const FlowSet flows = fig2_flows();
  const auto bound = relax.solve(flows, config);
  ASSERT_EQ(bound.status, lp::SolveStatus::Optimal);
  const auto exact = milp.consolidate(flows, config);
  ASSERT_TRUE(exact.feasible);
  EXPECT_LE(bound.network_power_bound, exact.network_power + 1e-6);
  EXPECT_GT(bound.network_power_bound, 0.0);
}

TEST(ArcLp, InfeasibleDetected) {
  const FatTree ft(4);
  const ArcLpRelaxation relax(&ft);
  FlowSet flows;
  flows.add(0, 5, 600.0, FlowClass::LatencyTolerant);
  flows.add(0, 9, 600.0, FlowClass::LatencyTolerant);
  const auto bound = relax.solve(flows, fig2_config(1.0));
  EXPECT_EQ(bound.status, lp::SolveStatus::Infeasible);
}

// Differential harness: on seeded random instances — healthy and degraded
// (one agg + one core switch disallowed, one fabric link blocked, the shape
// the fault-recovery path feeds the consolidators) — greedy and MILP must
// both produce capacity-respecting, connected placements, with the greedy
// objective within a bounded factor of the exact optimum.
struct DifferentialStats {
  int compared = 0;
  double worst_ratio = 1.0;
};

void check_placement_valid(const Graph& g, const FlowSet& flows,
                           const ConsolidationConfig& config,
                           const ConsolidationResult& result,
                           const char* tag) {
  LinkUtilization scaled(&g);
  for (std::size_t i = 0; i < flows.size(); ++i) {
    const Path& path = result.flow_paths[i];
    ASSERT_GE(path.size(), 2u) << tag << " flow " << i;
    // Connected: consecutive hops are adjacent, all switches powered,
    // none disallowed, no hop over a blocked link.
    for (std::size_t h = 0; h + 1 < path.size(); ++h) {
      const LinkId link = g.find_link(path[h], path[h + 1]);
      ASSERT_NE(link, kInvalidLink) << tag << " flow " << i << " hop " << h;
      if (!config.blocked_links.empty()) {
        EXPECT_FALSE(config.blocked_links[static_cast<std::size_t>(link)])
            << tag << " flow " << i << " crosses blocked link " << link;
      }
    }
    for (const NodeId n : path) {
      if (!g.is_switch(n)) continue;
      EXPECT_TRUE(result.switch_on[static_cast<std::size_t>(n)])
          << tag << " flow " << i << " uses powered-off switch " << n;
      if (!config.allowed_switches.empty()) {
        EXPECT_TRUE(config.allowed_switches[static_cast<std::size_t>(n)])
            << tag << " flow " << i << " uses disallowed switch " << n;
      }
    }
    scaled.add_path_load(path, flows[i].scaled_demand(config.scale_factor_k));
  }
  EXPECT_LE(scaled.max_utilization(), 0.95 + 1e-9) << tag;
}

DifferentialStats run_differential(bool degraded, int trials) {
  const FatTree ft(4);
  const Graph& g = ft.graph();
  const MilpConsolidator milp(&ft);
  const GreedyConsolidator greedy(&ft);
  DifferentialStats stats;
  Rng rng(degraded ? 211 : 101);
  for (int trial = 0; trial < trials; ++trial) {
    FlowSet flows;
    const int n = 3 + static_cast<int>(rng.uniform_int(0, 2));
    for (int i = 0; i < n; ++i) {
      const int src = static_cast<int>(rng.uniform_int(0, 15));
      int dst = src;
      while (dst == src) dst = static_cast<int>(rng.uniform_int(0, 15));
      flows.add(src, dst, rng.uniform(20.0, 250.0),
                rng.bernoulli(0.5) ? FlowClass::LatencySensitive
                                   : FlowClass::LatencyTolerant);
    }
    ConsolidationConfig config = fig2_config(1.0);
    if (degraded) {
      // Knock out one aggregation switch, one core switch, and one fabric
      // link — chosen per-trial, like a FailureOverlay would report.
      std::vector<NodeId> aggs, cores;
      for (const Node& node : g.nodes()) {
        if (node.type == NodeType::AggSwitch) aggs.push_back(node.id);
        if (node.type == NodeType::CoreSwitch) cores.push_back(node.id);
      }
      config.allowed_switches.assign(g.num_nodes(), true);
      const NodeId dead_agg = aggs[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(aggs.size()) - 1))];
      const NodeId dead_core = cores[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(cores.size()) - 1))];
      config.allowed_switches[static_cast<std::size_t>(dead_agg)] = false;
      config.allowed_switches[static_cast<std::size_t>(dead_core)] = false;
      config.blocked_links.assign(g.num_links(), false);
      std::vector<LinkId> fabric;
      for (const Link& l : g.links()) {
        if (g.is_switch(l.a) && g.is_switch(l.b)) fabric.push_back(l.id);
      }
      config.blocked_links[static_cast<std::size_t>(
          fabric[static_cast<std::size_t>(rng.uniform_int(
              0, static_cast<int>(fabric.size()) - 1))])] = true;
    }

    const auto exact = milp.consolidate(flows, config);
    const auto heur = greedy.consolidate(flows, config);
    // Feasibility must agree in the easy direction: if the exact solver
    // found nothing, the heuristic cannot claim success on valid paths.
    if (!exact.feasible || !heur.feasible) continue;
    check_placement_valid(g, flows, config, exact, "milp");
    check_placement_valid(g, flows, config, heur, "greedy");
    EXPECT_GE(heur.network_power, exact.network_power - 1e-9)
        << "trial " << trial;
    EXPECT_GT(exact.network_power, 0.0) << "trial " << trial;
    if (exact.network_power <= 0.0) continue;
    const double ratio = heur.network_power / exact.network_power;
    EXPECT_LE(ratio, 2.0) << "trial " << trial << " greedy "
                          << heur.network_power << " W vs milp "
                          << exact.network_power << " W";
    stats.worst_ratio = std::max(stats.worst_ratio, ratio);
    ++stats.compared;
  }
  return stats;
}

// 50 seeded scenarios split across the two regimes (the healthy MILP
// instances dominate the runtime; the degraded ones prune fast).
TEST(Differential, GreedyWithinBoundedFactorOfMilpHealthy) {
  const DifferentialStats stats = run_differential(/*degraded=*/false, 25);
  // Random instances are occasionally infeasible; most must compare.
  EXPECT_GE(stats.compared, 17);
}

TEST(Differential, GreedyWithinBoundedFactorOfMilpDegraded) {
  const DifferentialStats stats = run_differential(/*degraded=*/true, 25);
  EXPECT_GE(stats.compared, 12);
}

TEST(ConsolidationResult, OfferedLoadUsesUnscaledDemand) {
  const FatTree ft(4);
  const GreedyConsolidator greedy(&ft);
  FlowSet flows;
  flows.add(0, 15, 100.0, FlowClass::LatencySensitive);
  const auto config = fig2_config(3.0);  // reserve 300, carry 100
  const auto result = greedy.consolidate(flows, config);
  ASSERT_TRUE(result.feasible);
  const LinkUtilization load = result.offered_load(ft.graph(), flows);
  EXPECT_NEAR(load.max_utilization(), 0.1, 1e-9);
}

}  // namespace
}  // namespace eprons
