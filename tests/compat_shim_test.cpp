// Compatibility coverage for the deprecated JointOptimizer::optimize()
// overloads. The shims forward to optimize(const PlanRequest&) and must
// return byte-identical plans until they are removed; this file is the one
// translation unit allowed to call them without a deprecation warning.
#include <gtest/gtest.h>

#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

#include "core/joint_optimizer.h"
#include "dvfs/synthetic_workload.h"

namespace eprons {
namespace {

TEST(CompatShims, DeprecatedOverloadsMatchPlanRequest) {
  const FatTree topo(4);
  Rng model_rng(31);
  SyntheticWorkloadConfig workload;
  workload.samples = 20000;
  workload.bins = 256;
  const ServiceModel model = make_search_service_model(workload, model_rng);
  const ServerPowerModel power;
  JointOptimizerConfig config;
  config.slack.samples_per_pair = 150;
  const JointOptimizer optimizer(&topo, &model, &power, config);

  Rng rng(13);
  const FlowSet background =
      make_background_flows(FlowGenConfig{}, 6, 0.2, 0.1, rng);

  PlanRequest request;
  request.background = &background;
  request.utilization = 0.3;
  const JointPlan expected = optimizer.optimize(request);

  // Shim 1: (background, utilization).
  const JointPlan two_arg = optimizer.optimize(background, 0.3);
  EXPECT_EQ(expected.k, two_arg.k);
  EXPECT_EQ(expected.total_power, two_arg.total_power);
  EXPECT_EQ(expected.placement.switch_on, two_arg.placement.switch_on);

  // Shim 2: (background, utilization, constraints) — empty constraints
  // behave exactly like none.
  const JointPlan three_arg =
      optimizer.optimize(background, 0.3, PlanConstraints{});
  EXPECT_EQ(expected.k, three_arg.k);
  EXPECT_EQ(expected.total_power, three_arg.total_power);
  EXPECT_EQ(expected.placement.switch_on, three_arg.placement.switch_on);

  // Shim 3: (background, utilization, constraints, previous) — a null
  // previous plan keeps the cold sweep.
  const JointPlan four_arg =
      optimizer.optimize(background, 0.3, PlanConstraints{}, nullptr);
  EXPECT_EQ(expected.k, four_arg.k);
  EXPECT_EQ(expected.total_power, four_arg.total_power);
  EXPECT_EQ(expected.placement.switch_on, four_arg.placement.switch_on);

  // A real constraint must flow through the shim too: restrict placement
  // to the full fabric minus nothing (all switches allowed) and expect the
  // unconstrained plan back.
  PlanConstraints all_allowed;
  all_allowed.allowed_switches.assign(topo.graph().num_nodes(), true);
  PlanRequest constrained_request = request;
  constrained_request.constraints = all_allowed;
  const JointPlan constrained_expected =
      optimizer.optimize(constrained_request);
  const JointPlan constrained_shim =
      optimizer.optimize(background, 0.3, all_allowed);
  EXPECT_EQ(constrained_expected.k, constrained_shim.k);
  EXPECT_EQ(constrained_expected.total_power, constrained_shim.total_power);
  EXPECT_EQ(constrained_expected.placement.switch_on,
            constrained_shim.placement.switch_on);
}

}  // namespace
}  // namespace eprons
