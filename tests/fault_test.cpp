// Tests for the fault-injection stack: seed-determinism of the generated
// schedule, FailureOverlay semantics (counted failures, implied incident
// links, exact repair), the epoch controller's emergency re-plan, and the
// DES fault replay. Everything here must be bit-identical run-to-run and
// across --threads values — that is the module's core contract.
#include <gtest/gtest.h>

#include "core/epoch_controller.h"
#include "dvfs/synthetic_workload.h"
#include "fault/fault_injector.h"
#include "sim/search_cluster.h"
#include "topo/aggregation.h"
#include "topo/fattree.h"

namespace eprons {
namespace {

ServiceModel fault_model() {
  Rng rng(31);
  SyntheticWorkloadConfig config;
  config.samples = 20000;
  config.bins = 256;
  return make_search_service_model(config, rng);
}

bool same_event(const FaultEvent& a, const FaultEvent& b) {
  return a.time == b.time && a.repair == b.repair && a.type == b.type &&
         a.node == b.node && a.link == b.link;
}

bool same_transition(const FaultTransition& a, const FaultTransition& b) {
  return a.time == b.time && a.up == b.up && a.type == b.type &&
         a.node == b.node && a.link == b.link;
}

NodeId first_switch_of(const Graph& graph, NodeType type) {
  for (const Node& n : graph.nodes()) {
    if (n.type == type) return n.id;
  }
  return kInvalidNode;
}

TEST(FaultInjector, SameSeedSameSchedule) {
  const FatTree topo(4);
  FaultInjectorConfig config;
  config.mtbf = sec(120.0);
  config.horizon = sec(3600.0);
  config.seed = 42;
  const FaultSchedule a = generate_fault_schedule(topo.graph(), config);
  const FaultSchedule b = generate_fault_schedule(topo.graph(), config);
  ASSERT_FALSE(a.events.empty());
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_TRUE(same_event(a.events[i], b.events[i])) << "event " << i;
  }
  ASSERT_EQ(a.timeline.size(), b.timeline.size());
  for (std::size_t i = 0; i < a.timeline.size(); ++i) {
    EXPECT_TRUE(same_transition(a.timeline[i], b.timeline[i])) << "tr " << i;
  }
}

TEST(FaultInjector, DifferentSeedDifferentSchedule) {
  const FatTree topo(4);
  FaultInjectorConfig config;
  config.mtbf = sec(120.0);
  config.horizon = sec(3600.0);
  config.seed = 1;
  const FaultSchedule a = generate_fault_schedule(topo.graph(), config);
  config.seed = 2;
  const FaultSchedule b = generate_fault_schedule(topo.graph(), config);
  ASSERT_FALSE(a.events.empty());
  ASSERT_FALSE(b.events.empty());
  bool differs = a.events.size() != b.events.size();
  for (std::size_t i = 0; !differs && i < a.events.size(); ++i) {
    differs = !same_event(a.events[i], b.events[i]);
  }
  EXPECT_TRUE(differs);
}

TEST(FaultInjector, ScheduleWellFormed) {
  const FatTree topo(4);
  const Graph& g = topo.graph();
  FaultInjectorConfig config;
  config.mtbf = sec(60.0);
  config.horizon = sec(3600.0);
  const FaultSchedule s = generate_fault_schedule(g, config);
  ASSERT_FALSE(s.events.empty());
  for (const FaultEvent& e : s.events) {
    EXPECT_GE(e.time, 0.0);
    EXPECT_LT(e.time, config.horizon);
    EXPECT_GT(e.repair, e.time);
    if (e.type == FaultType::SwitchCrash) {
      ASSERT_NE(e.node, kInvalidNode);
      EXPECT_TRUE(g.is_switch(e.node));
      // spare_edge_switches (default): hosts are single-homed, so the
      // edge tier is never a victim.
      EXPECT_NE(g.node(e.node).type, NodeType::EdgeSwitch);
    } else {
      ASSERT_NE(e.link, kInvalidLink);
      EXPECT_LT(static_cast<std::size_t>(e.link), g.num_links());
    }
  }
  // Timeline is sorted and balanced: every failure has a matching repair.
  int open = 0;
  for (std::size_t i = 0; i < s.timeline.size(); ++i) {
    if (i > 0) EXPECT_GE(s.timeline[i].time, s.timeline[i - 1].time);
    open += s.timeline[i].up ? -1 : 1;
  }
  EXPECT_EQ(open, 0);
}

TEST(FailureOverlay, FailedSwitchTakesIncidentLinksDown) {
  const FatTree topo(4);
  const Graph& g = topo.graph();
  const NodeId agg = first_switch_of(g, NodeType::AggSwitch);
  ASSERT_NE(agg, kInvalidNode);

  FailureOverlay overlay(&g);
  overlay.fail_node(agg);
  EXPECT_TRUE(overlay.node_failed(agg));
  for (const LinkId l : g.links_of(agg)) {
    EXPECT_TRUE(overlay.link_down(l));
    // The links themselves did not fail — the node took them down.
    EXPECT_FALSE(overlay.link_failed(l));
  }
  EXPECT_EQ(overlay.down_links(), static_cast<int>(g.links_of(agg).size()));

  overlay.repair_node(agg);
  EXPECT_FALSE(overlay.any_failed());
  for (const LinkId l : g.links_of(agg)) EXPECT_FALSE(overlay.link_down(l));
}

TEST(FailureOverlay, OverlappingFailuresCompose) {
  const FatTree topo(4);
  const Graph& g = topo.graph();
  const LinkId link = 0;
  FailureOverlay overlay(&g);
  overlay.fail_link(link);
  overlay.fail_link(link);  // a second, overlapping outage
  EXPECT_TRUE(overlay.link_failed(link));
  overlay.repair_link(link);
  // One repair clears one outage; the element stays down.
  EXPECT_TRUE(overlay.link_failed(link));
  overlay.repair_link(link);
  EXPECT_FALSE(overlay.link_failed(link));
  EXPECT_FALSE(overlay.any_failed());
}

TEST(FailureOverlay, BlocksPathsCrossingFailures) {
  const FatTree topo(4);
  const Graph& g = topo.graph();
  const auto paths = topo.all_paths(0, 15);
  ASSERT_FALSE(paths.empty());
  const Path& path = paths.front();
  ASSERT_GE(path.size(), 3u);

  FailureOverlay overlay(&g);
  EXPECT_FALSE(overlay.blocks(path));
  overlay.fail_node(path[1]);  // first switch on the path
  EXPECT_TRUE(overlay.blocks(path));
  overlay.repair_node(path[1]);
  EXPECT_FALSE(overlay.blocks(path));

  const LinkId hop = g.find_link(path[0], path[1]);
  ASSERT_NE(hop, kInvalidLink);
  overlay.fail_link(hop);
  EXPECT_TRUE(overlay.blocks(path));
}

TEST(FaultCursor, FullReplayRestoresPristineState) {
  // Repair restores exactly the prior capacity: after every transition in
  // the schedule has been applied — including overlapping outages of the
  // same element — no node or link is left failed.
  const FatTree topo(4);
  FaultInjectorConfig config;
  config.mtbf = sec(30.0);  // dense: plenty of overlap
  config.mttr = sec(300.0);
  config.horizon = sec(3600.0);
  const FaultSchedule s = generate_fault_schedule(topo.graph(), config);
  ASSERT_GT(s.events.size(), 10u);

  FaultCursor cursor(&topo.graph(), &s.timeline);
  int fired = 0;
  bool saw_failure = false;
  while (!cursor.exhausted()) {
    fired += cursor.advance_to(cursor.next_time());
    saw_failure = saw_failure || cursor.overlay().any_failed();
  }
  EXPECT_EQ(fired, static_cast<int>(s.timeline.size()));
  EXPECT_TRUE(saw_failure);
  EXPECT_FALSE(cursor.overlay().any_failed());
  const std::vector<bool> down = cursor.overlay().down_link_mask();
  for (std::size_t i = 0; i < down.size(); ++i) {
    EXPECT_FALSE(down[i]) << "link " << i << " left down after full replay";
  }
}

class FaultRecovery : public ::testing::Test {
 protected:
  FaultRecovery() : model_(fault_model()) {}

  EpochControllerConfig controller_config(int threads = 1) const {
    EpochControllerConfig config;
    config.joint.slack.samples_per_pair = 60;
    config.samples_per_epoch = 40;
    config.runtime.threads = threads;
    return config;
  }

  FlowSet background(double util = 0.2) const {
    FlowGenConfig gen;
    gen.exclude_host = 0;
    Rng rng(5);
    return make_background_flows(gen, 6, util, 0.1, rng);
  }

  bool hosts_connected(const std::vector<bool>& switch_on,
                       const FailureOverlay* overlay) const {
    const Graph& g = topo_.graph();
    const std::vector<NodeId> hosts = g.hosts();
    const std::vector<NodeId> targets(hosts.begin() + 1, hosts.end());
    return g.connected(hosts[0], targets, switch_on, overlay);
  }

  const FatTree topo_{4};
  const ServiceModel model_;
  const ServerPowerModel power_;
};

TEST_F(FaultRecovery, ReplanKeepsSurvivingSubnetConnected) {
  EpochController controller(&topo_, &model_, &power_, controller_config());
  Rng rng(17);
  const FlowSet flows = background();
  ASSERT_TRUE(controller.run_epoch(flows, 0.3, rng).feasible);

  // Crash one aggregation and one core switch: survivable in a 4-ary
  // fat tree, but likely on the consolidated subnet.
  FailureOverlay overlay(&topo_.graph());
  overlay.fail_node(first_switch_of(topo_.graph(), NodeType::AggSwitch));
  overlay.fail_node(first_switch_of(topo_.graph(), NodeType::CoreSwitch));

  const RecoveryReport report = controller.on_failure(overlay);
  EXPECT_TRUE(report.connected);
  EXPECT_TRUE(controller.faults_active());
  EXPECT_GE(report.time_to_replan, sec(2.0));
  // The active mask must route around the failures.
  EXPECT_TRUE(hosts_connected(controller.current_mask(), &overlay));

  // The next epoch plans on the surviving subnet and stays connected too.
  const EpochReport epoch = controller.run_epoch(flows, 0.3, rng);
  EXPECT_TRUE(hosts_connected(controller.current_mask(), &overlay));
  EXPECT_GE(epoch.actual_switches, epoch.wanted_switches);

  controller.clear_faults();
  EXPECT_FALSE(controller.faults_active());
}

TEST_F(FaultRecovery, ReportsDisconnectedWhenNoSubnetExists) {
  EpochController controller(&topo_, &model_, &power_, controller_config());
  Rng rng(17);
  ASSERT_TRUE(controller.run_epoch(background(), 0.3, rng).feasible);

  // Crash every core switch: pods can no longer reach each other, so no
  // connected surviving subnet exists.
  FailureOverlay overlay(&topo_.graph());
  for (const Node& n : topo_.graph().nodes()) {
    if (n.type == NodeType::CoreSwitch) overlay.fail_node(n.id);
  }
  const RecoveryReport report = controller.on_failure(overlay);
  EXPECT_FALSE(report.connected);
  EXPECT_FALSE(hosts_connected(controller.current_mask(), &overlay));
}

TEST_F(FaultRecovery, EmptyOverlayClearsFaultState) {
  EpochController controller(&topo_, &model_, &power_, controller_config());
  Rng rng(17);
  ASSERT_TRUE(controller.run_epoch(background(), 0.3, rng).feasible);

  FailureOverlay overlay(&topo_.graph());
  overlay.fail_node(first_switch_of(topo_.graph(), NodeType::CoreSwitch));
  controller.on_failure(overlay);
  ASSERT_TRUE(controller.faults_active());

  overlay.repair_node(first_switch_of(topo_.graph(), NodeType::CoreSwitch));
  const RecoveryReport repaired = controller.on_failure(overlay);
  EXPECT_TRUE(repaired.connected);
  EXPECT_FALSE(controller.faults_active());
}

TEST_F(FaultRecovery, RecoveryIdenticalAcrossThreadCounts) {
  // The whole fault path is modeled, never wall-clock: a 4-thread planner
  // must produce the bit-identical recovery as the serial one.
  auto run = [&](int threads) {
    EpochController controller(&topo_, &model_, &power_,
                               controller_config(threads));
    Rng rng(17);
    const FlowSet flows = background();
    controller.run_epoch(flows, 0.3, rng);
    FailureOverlay overlay(&topo_.graph());
    overlay.fail_node(first_switch_of(topo_.graph(), NodeType::AggSwitch));
    overlay.fail_node(first_switch_of(topo_.graph(), NodeType::CoreSwitch));
    const RecoveryReport r = controller.on_failure(overlay);
    return std::make_tuple(r.connected, r.replanned, r.hot_recovery,
                           r.chosen_k, r.k_bumped, r.woken_backups,
                           r.emergency_boots, r.flows_rerouted,
                           r.affected_query_flows, r.time_to_replan,
                           r.estimated_outage_violations, r.actual_switches,
                           r.network_power, controller.current_mask());
  };
  const auto serial = run(1);
  EXPECT_EQ(serial, run(4));
  EXPECT_EQ(serial, run(16));
}

TEST(FaultSim, DesFaultReplayDeterministicAndObservable) {
  // The DES consumes the same timeline the controller does: flows crossing
  // failed elements are rerouted or dropped, counted in ClusterMetrics,
  // and the whole run is bit-identical when repeated.
  const FatTree topo(4);
  const ServiceModel model = fault_model();
  const ServerPowerModel power;
  FlowGenConfig gen;
  gen.exclude_host = 0;
  Rng rng(3);
  const FlowSet background = make_background_flows(gen, 6, 0.1, 0.1, rng);

  FaultInjectorConfig faults;
  faults.mtbf = sec(0.4);  // dense faults inside a short DES run
  faults.mttr = sec(0.5);
  faults.horizon = sec(3.0);
  faults.seed = 11;
  const FaultSchedule schedule =
      generate_fault_schedule(topo.graph(), faults);
  ASSERT_FALSE(schedule.timeline.empty());

  ScenarioConfig scenario;
  scenario.cluster.policy = "max";
  scenario.cluster.target_utilization = 0.15;
  scenario.cluster.warmup = sec(0.5);
  scenario.cluster.duration = sec(3.0);
  scenario.fault_timeline = &schedule.timeline;

  const auto a = run_search_scenario(topo, model, power, background, scenario);
  const auto b = run_search_scenario(topo, model, power, background, scenario);
  ASSERT_TRUE(a.placement_feasible);
  EXPECT_EQ(a.metrics.queries_completed, b.metrics.queries_completed);
  EXPECT_EQ(a.metrics.flows_rerouted, b.metrics.flows_rerouted);
  EXPECT_EQ(a.metrics.subqueries_dropped, b.metrics.subqueries_dropped);
  EXPECT_EQ(a.metrics.outage_sla_misses, b.metrics.outage_sla_misses);
  EXPECT_DOUBLE_EQ(a.metrics.query_latency.p95, b.metrics.query_latency.p95);
  EXPECT_DOUBLE_EQ(a.metrics.subquery_miss_rate, b.metrics.subquery_miss_rate);

  // With this fault density the run must have noticed the outages.
  EXPECT_GT(a.metrics.flows_rerouted + a.metrics.subqueries_dropped, 0u);

  // Healthy control: no fault accounting, and no drop-induced misses.
  ScenarioConfig healthy = scenario;
  healthy.fault_timeline = nullptr;
  const auto h = run_search_scenario(topo, model, power, background, healthy);
  EXPECT_EQ(h.metrics.flows_rerouted, 0u);
  EXPECT_EQ(h.metrics.subqueries_dropped, 0u);
  EXPECT_EQ(h.metrics.outage_sla_misses, 0u);
  EXPECT_LE(h.metrics.subquery_miss_rate, a.metrics.subquery_miss_rate + 0.02);
}

}  // namespace
}  // namespace eprons
