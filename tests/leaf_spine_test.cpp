// Tests for the leaf-spine topology and topology-independence of the
// consolidation stack (paper section IV-B).
#include <gtest/gtest.h>

#include <set>

#include "consolidate/greedy_consolidator.h"
#include "consolidate/milp_consolidator.h"
#include "topo/leaf_spine.h"

namespace eprons {
namespace {

TEST(LeafSpine, Dimensions) {
  const LeafSpine ls(4, 4, 4);
  EXPECT_EQ(ls.num_hosts(), 16);
  EXPECT_EQ(ls.num_switches(), 8);
  EXPECT_EQ(ls.graph().num_nodes(), 24u);
  // Links: 16 host-leaf + 4x4 leaf-spine.
  EXPECT_EQ(ls.graph().num_links(), 32u);
  EXPECT_EQ(ls.hosts_per_access_switch(), 4);
}

TEST(LeafSpine, RejectsBadShape) {
  EXPECT_THROW(LeafSpine(1, 2, 2), std::invalid_argument);
  EXPECT_THROW(LeafSpine(2, 0, 2), std::invalid_argument);
}

TEST(LeafSpine, PathCounts) {
  const LeafSpine ls(4, 3, 2);
  // Same leaf: one 2-hop path.
  EXPECT_EQ(ls.all_paths(0, 1).size(), 1u);
  // Different leaves: one path per spine.
  EXPECT_EQ(ls.all_paths(0, 7).size(), 3u);
}

TEST(LeafSpine, PathsValidAndLoopFree) {
  const LeafSpine ls(4, 4, 4);
  for (int dst = 1; dst < 16; dst += 3) {
    for (const Path& p : ls.all_paths(0, dst)) {
      EXPECT_EQ(p.front(), ls.host(0));
      EXPECT_EQ(p.back(), ls.host(dst));
      EXPECT_NO_THROW(ls.graph().path_links(p));
      const std::set<NodeId> unique(p.begin(), p.end());
      EXPECT_EQ(unique.size(), p.size());
    }
  }
}

TEST(LeafSpine, ActivePathsFilter) {
  const LeafSpine ls(2, 4, 2);
  std::vector<bool> mask(ls.graph().num_nodes(), true);
  mask[static_cast<std::size_t>(ls.spine(0))] = false;
  mask[static_cast<std::size_t>(ls.spine(1))] = false;
  EXPECT_EQ(ls.active_paths(0, 2, mask).size(), 2u);
}

TEST(LeafSpine, GreedyConsolidationRunsUnchanged) {
  const LeafSpine ls(4, 4, 4);
  FlowSet flows;
  flows.add(0, 12, 400.0, FlowClass::LatencyTolerant);
  flows.add(1, 13, 20.0, FlowClass::LatencySensitive);
  flows.add(5, 9, 300.0, FlowClass::LatencyTolerant);
  const GreedyConsolidator greedy(&ls);
  ConsolidationConfig config;
  const auto result = greedy.consolidate(flows, config);
  ASSERT_TRUE(result.feasible);
  // Minimal subnet: 4 leaves involved (0,1 share leaf0; 12,13 leaf3; 5
  // leaf1; 9 leaf2) + 1 spine.
  EXPECT_EQ(result.active_switches, 5);
}

TEST(LeafSpine, MilpMatchesGreedyOnSmallInstance) {
  const LeafSpine ls(4, 2, 2);  // 8 hosts
  FlowSet flows;
  flows.add(0, 7, 500.0, FlowClass::LatencyTolerant);
  flows.add(2, 5, 100.0, FlowClass::LatencySensitive);
  ConsolidationConfig config;
  config.scale_factor_k = 2.0;
  const auto exact = MilpConsolidator(&ls).consolidate(flows, config);
  const auto heur = GreedyConsolidator(&ls).consolidate(flows, config);
  ASSERT_TRUE(exact.feasible);
  ASSERT_TRUE(heur.feasible);
  EXPECT_LE(exact.active_switches, heur.active_switches);
}

TEST(LeafSpine, LargerKSpreadsOverSpines) {
  const LeafSpine ls(4, 4, 4);
  FlowSet flows;
  flows.add(0, 15, 800.0, FlowClass::LatencyTolerant);
  flows.add(1, 14, 100.0, FlowClass::LatencySensitive);
  const GreedyConsolidator greedy(&ls);
  ConsolidationConfig low, high;
  low.scale_factor_k = 1.0;
  high.scale_factor_k = 3.0;
  const auto at_low = greedy.consolidate(flows, low);
  const auto at_high = greedy.consolidate(flows, high);
  ASSERT_TRUE(at_low.feasible);
  ASSERT_TRUE(at_high.feasible);
  // At K=1 both flows fit one spine; at K=3 the sensitive flow (300
  // reserved vs 150 headroom next to the elephant) needs a second spine.
  EXPECT_EQ(at_low.active_switches, 3);
  EXPECT_GT(at_high.active_switches, 3);
}

}  // namespace
}  // namespace eprons
