// Tests for src/dvfs: the service/work model, equivalent-queue convolution
// cache, and all five policies (EPRONS-Server, Rubik, Rubik+, TimeTrader,
// MaxFreq) — including the paper's core claims: average-VP selects a
// frequency no higher than max-VP, and EPRONS-Server's choice still meets
// the average miss budget.
#include <gtest/gtest.h>

#include <cmath>

#include "dvfs/equivalent_queue.h"
#include "dvfs/policies.h"
#include "dvfs/synthetic_workload.h"
#include "util/rng.h"

namespace eprons {
namespace {

ServiceModel test_model(double mean_ms = 8.0, std::uint64_t seed = 11) {
  Rng rng(seed);
  SyntheticWorkloadConfig config;
  config.mean_service_ms = mean_ms;
  config.samples = 20000;
  config.bins = 256;
  return make_search_service_model(config, rng);
}

TEST(ServiceModel, ServiceTimeScalesWithFrequency) {
  const ServiceModel model = test_model();
  const Work w = 10.0e6;  // 10 Mcycles
  const SimTime fast = model.service_time(w, 2.7);
  const SimTime slow = model.service_time(w, 1.2);
  EXPECT_GT(slow, fast);
  // With mu = 0.15, slowdown is less than the pure frequency ratio.
  EXPECT_LT(slow / fast, 2.7 / 1.2);
  EXPECT_GT(slow / fast, 1.0);
}

TEST(ServiceModel, WorkCapacityInvertsServiceTime) {
  const ServiceModel model = test_model();
  for (Freq f : {1.2, 1.8, 2.7}) {
    const Work w = 5.0e6;
    const SimTime t = model.service_time(w, f);
    EXPECT_NEAR(model.work_capacity(t, f), w, w * 1e-9) << "f=" << f;
  }
}

TEST(ServiceModel, MeanServiceMatchesConfiguredMean) {
  const ServiceModel model = test_model(8.0);
  // At f_max the synthetic distribution was built for ~8 ms mean (the
  // Pareto tail raises it a little above the log-normal body's mean).
  EXPECT_NEAR(model.mean_service_time(2.7), ms(8.0), ms(1.6));
}

TEST(ServiceModel, FrequencyGridMatchesPaper) {
  const ServiceModel model = test_model();
  const auto& grid = model.frequency_grid();
  EXPECT_EQ(grid.size(), 16u);
  EXPECT_DOUBLE_EQ(grid.front(), 1.2);
  EXPECT_DOUBLE_EQ(grid.back(), 2.7);
}

TEST(ServiceModel, ViolationProbabilityMonotoneInFrequency) {
  const ServiceModel model = test_model();
  const auto& work = model.work();
  double prev = 1.1;
  for (Freq f : model.frequency_grid()) {
    const double vp = model.violation_probability(work, 0.0, ms(10.0), f);
    EXPECT_LE(vp, prev + 1e-12);
    prev = vp;
  }
}

TEST(ServiceModel, PastDeadlineIsCertainViolation) {
  const ServiceModel model = test_model();
  EXPECT_DOUBLE_EQ(
      model.violation_probability(model.work(), 100.0, 50.0, 2.7), 1.0);
}

TEST(ServiceModel, FreshConvolutionMeansScale) {
  const ServiceModel model = test_model();
  const double m1 = model.fresh_convolution(1).mean();
  const double m3 = model.fresh_convolution(3).mean();
  EXPECT_NEAR(m3, 3.0 * m1, 3.0 * m1 * 0.01);
}

TEST(ServiceModel, RejectsBadConfig) {
  Rng rng(1);
  SyntheticWorkloadConfig wl;
  wl.samples = 1000;
  ServiceModelConfig bad = wl.service;
  bad.freq_independent_fraction = 1.0;
  EXPECT_THROW(
      ServiceModel(make_search_work_distribution(wl, rng), bad),
      std::invalid_argument);
}

TEST(EquivalentQueue, FreshUsesSharedCache) {
  const ServiceModel model = test_model();
  const EquivalentQueue q(&model, 3, /*in_service_done=*/0.0);
  EXPECT_EQ(&q.at(0), &model.fresh_convolution(1));
  EXPECT_EQ(&q.at(2), &model.fresh_convolution(3));
}

TEST(EquivalentQueue, ResidualShrinksHeadDistribution) {
  const ServiceModel model = test_model();
  const Work done = model.work().mean();
  const EquivalentQueue q(&model, 2, done);
  // The head's remaining-work mean is less than a fresh request's.
  EXPECT_LT(q.at(0).mean(), model.work().mean());
  // And the second request's equivalent still includes one fresh request.
  EXPECT_GT(q.at(1).mean(), q.at(0).mean());
}

TEST(EquivalentQueue, ThrowsOnEmptyOrOutOfRange) {
  const ServiceModel model = test_model();
  EXPECT_THROW(EquivalentQueue(&model, 0, 0.0), std::invalid_argument);
  const EquivalentQueue q(&model, 2, 0.0);
  EXPECT_THROW(q.at(2), std::out_of_range);
}

QueuedRequest make_request(RequestId id, SimTime arrival, SimTime server_dl,
                           SimTime slack_dl) {
  QueuedRequest r;
  r.id = id;
  r.arrival = arrival;
  r.deadline_server = server_dl;
  r.deadline_with_slack = slack_dl;
  return r;
}

TEST(Policies, MaxFreqAlwaysMax) {
  const ServiceModel model = test_model();
  MaxFreqPolicy policy(&model);
  const QueuedRequest r = make_request(1, 0.0, ms(25.0), ms(27.0));
  EXPECT_DOUBLE_EQ(
      policy.select_frequency(0.0, std::span<const QueuedRequest>(&r, 1), 0.0),
      2.7);
}

TEST(Policies, RubikMeetsPerRequestVp) {
  const ServiceModel model = test_model();
  RubikPolicy policy(&model);
  const QueuedRequest r = make_request(1, 0.0, ms(25.0), ms(27.0));
  const Freq f =
      policy.select_frequency(0.0, std::span<const QueuedRequest>(&r, 1), 0.0);
  EXPECT_LE(model.violation_probability(model.fresh_convolution(1), 0.0,
                                        ms(25.0), f),
            0.05 + 1e-12);
  // And one grid step lower would violate (minimality), unless already at
  // the grid bottom.
  if (f > 1.2 + 1e-9) {
    EXPECT_GT(model.violation_probability(model.fresh_convolution(1), 0.0,
                                          ms(25.0), f - 0.1),
              0.05);
  }
}

TEST(Policies, RubikIgnoresSlackRubikPlusUsesIt) {
  const ServiceModel model = test_model();
  RubikPolicy rubik(&model);
  RubikPlusPolicy rubik_plus(&model);
  // Tight server deadline, generous slack: Rubik must run faster.
  const QueuedRequest r = make_request(1, 0.0, ms(12.0), ms(20.0));
  const Freq f_rubik = rubik.select_frequency(
      0.0, std::span<const QueuedRequest>(&r, 1), 0.0);
  const Freq f_plus = rubik_plus.select_frequency(
      0.0, std::span<const QueuedRequest>(&r, 1), 0.0);
  EXPECT_GE(f_rubik, f_plus);
  EXPECT_GT(f_rubik, f_plus - 1e-12);  // strictly greater in this setup
}

TEST(Policies, EpronsNeverExceedsRubikPlusFrequency) {
  // The paper's Fig. 4 claim: the average-VP frequency f_new is at most
  // the max-VP frequency f2. Property-checked over random queues.
  const ServiceModel model = test_model();
  RubikPlusPolicy rubik_plus(&model);
  EpronsServerPolicy eprons(&model);
  Rng rng(77);
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<QueuedRequest> queue;
    const int n = 1 + static_cast<int>(rng.uniform_int(0, 3));
    SimTime arrival = 0.0;
    for (int i = 0; i < n; ++i) {
      const SimTime deadline = rng.uniform(ms(15.0), ms(40.0));
      queue.push_back(make_request(i, arrival, deadline, deadline));
      arrival += rng.uniform(0.0, ms(2.0));
    }
    const Freq f_plus = rubik_plus.select_frequency(
        0.0, std::span<const QueuedRequest>(queue.data(), queue.size()), 0.0);
    const Freq f_eprons = eprons.select_frequency(
        0.0, std::span<const QueuedRequest>(queue.data(), queue.size()), 0.0);
    EXPECT_LE(f_eprons, f_plus + 1e-12) << "trial " << trial;
  }
}

TEST(Policies, EpronsMeetsAverageVpBudget) {
  const ServiceModel model = test_model();
  EpronsServerPolicy eprons(&model);
  std::vector<QueuedRequest> queue = {
      make_request(1, 0.0, ms(25.0), ms(27.0)),
      make_request(2, ms(1.0), ms(32.0), ms(36.0)),
      make_request(3, ms(2.0), ms(40.0), ms(48.0)),
  };
  const std::span<const QueuedRequest> view(queue.data(), queue.size());
  const Freq f = eprons.select_frequency(0.0, view, 0.0);
  ASSERT_LT(f, 2.7) << "queue should be feasible below f_max";
  EXPECT_LE(eprons.average_vp(0.0, view, 0.0, f), 0.05 + 1e-12);
  if (f > 1.2 + 1e-9) {
    EXPECT_GT(eprons.average_vp(0.0, view, 0.0, f - 0.1), 0.05);
  }
}

TEST(Policies, EpronsAllowsIndividualViolationsAboveBudget) {
  // The defining behavior (Fig. 4): with one tight and one loose request,
  // the chosen frequency may give the tight request VP > 5% as long as the
  // average holds.
  const ServiceModel model = test_model();
  EpronsServerPolicy eprons(&model);
  std::vector<QueuedRequest> queue = {
      make_request(1, 0.0, ms(14.0), ms(14.0)),   // tight
      make_request(2, 0.0, ms(60.0), ms(60.0)),   // very loose
  };
  const std::span<const QueuedRequest> view(queue.data(), queue.size());
  const Freq f = eprons.select_frequency(0.0, view, 0.0);
  const double vp_tight = model.violation_probability(
      model.fresh_convolution(1), 0.0, ms(14.0), f);
  const double avg = eprons.average_vp(0.0, view, 0.0, f);
  EXPECT_LE(avg, 0.05 + 1e-12);
  // Rubik+ would have run fast enough for the tight one alone.
  RubikPlusPolicy rubik_plus(&model);
  const Freq f_plus = rubik_plus.select_frequency(0.0, view, 0.0);
  EXPECT_LE(f, f_plus);
  (void)vp_tight;  // informational; the average bound is the contract
}

TEST(Policies, EpronsRequestsEdfReorder) {
  const ServiceModel model = test_model();
  EpronsServerPolicy eprons(&model);
  RubikPolicy rubik(&model);
  EXPECT_TRUE(eprons.reorder_edf());
  EXPECT_FALSE(rubik.reorder_edf());
}

TEST(Policies, ImpossibleDeadlineFallsBackToMaxFrequency) {
  const ServiceModel model = test_model();
  EpronsServerPolicy eprons(&model);
  const QueuedRequest r = make_request(1, 0.0, 1.0, 1.0);  // 1 us deadline
  EXPECT_DOUBLE_EQ(eprons.select_frequency(
                       0.0, std::span<const QueuedRequest>(&r, 1), 0.0),
                   2.7);
}

TEST(Policies, TimeTraderStartsAtMaxAndDecays) {
  const ServiceModel model = test_model();
  TimeTraderPolicy policy(&model);
  EXPECT_DOUBLE_EQ(policy.current_frequency(), 2.7);
  // Feed comfortable latencies over many periods: frequency must decay.
  SimTime now = 0.0;
  for (int i = 0; i < 200; ++i) {
    now += sec(0.5);
    policy.on_request_complete(now, ms(10.0), ms(30.0));
  }
  EXPECT_LT(policy.current_frequency(), 2.7);
}

TEST(Policies, TimeTraderClimbsOnMisses) {
  const ServiceModel model = test_model();
  TimeTraderPolicy policy(&model);
  SimTime now = 0.0;
  for (int i = 0; i < 100; ++i) {
    now += sec(0.5);
    policy.on_request_complete(now, ms(10.0), ms(30.0));
  }
  const Freq low = policy.current_frequency();
  for (int i = 0; i < 100; ++i) {
    now += sec(0.5);
    policy.on_request_complete(now, ms(35.0), ms(30.0));
  }
  EXPECT_GT(policy.current_frequency(), low);
}

TEST(Policies, TimeTraderRespectsAdjustPeriod) {
  const ServiceModel model = test_model();
  TimeTraderPolicy policy(&model);
  // Many completions within one period: at most one adjustment.
  for (int i = 0; i < 50; ++i) {
    policy.on_request_complete(ms(1.0 * i), ms(5.0), ms(30.0));
  }
  EXPECT_GE(policy.current_frequency(), 2.7 - 0.1 - 1e-12);
}

TEST(Policies, FactoryProducesAllNames) {
  const ServiceModel model = test_model();
  for (const char* name :
       {"max", "rubik", "rubik+", "eprons", "timetrader", "eprons-noedf",
        "eprons-noslack", "eprons-maxvp"}) {
    const auto policy = make_policy(name, &model);
    ASSERT_NE(policy, nullptr) << name;
  }
  EXPECT_THROW(make_policy("bogus", &model), std::invalid_argument);
}

TEST(Policies, EpronsMaxVpVariantMatchesRubikPlus) {
  // Internal consistency: disabling the average-VP rule must reproduce the
  // Rubik+ frequency choice exactly (same deadlines, same max-VP rule).
  const ServiceModel model = test_model();
  EpronsFeatures features;
  features.average_vp = false;
  EpronsServerPolicy ablated(&model, {}, features);
  RubikPlusPolicy rubik_plus(&model);
  Rng rng(123);
  for (int trial = 0; trial < 25; ++trial) {
    std::vector<QueuedRequest> queue;
    const int n = 1 + static_cast<int>(rng.uniform_int(0, 3));
    for (int i = 0; i < n; ++i) {
      const SimTime deadline = rng.uniform(ms(15.0), ms(45.0));
      queue.push_back(make_request(i, 0.0, deadline - ms(2.0), deadline));
    }
    const std::span<const QueuedRequest> view(queue.data(), queue.size());
    EXPECT_DOUBLE_EQ(ablated.select_frequency(0.0, view, 0.0),
                     rubik_plus.select_frequency(0.0, view, 0.0))
        << "trial " << trial;
  }
}

TEST(Policies, EpronsNoSlackUsesServerDeadline) {
  const ServiceModel model = test_model();
  EpronsFeatures features;
  features.use_network_slack = false;
  EpronsServerPolicy no_slack(&model, {}, features);
  EpronsServerPolicy with_slack(&model);
  // Tight server deadline, generous slack: the no-slack variant must run
  // at least as fast.
  const QueuedRequest r = make_request(1, 0.0, ms(14.0), ms(25.0));
  const std::span<const QueuedRequest> view(&r, 1);
  EXPECT_GE(no_slack.select_frequency(0.0, view, 0.0),
            with_slack.select_frequency(0.0, view, 0.0));
}

TEST(Policies, TimeTraderEcnCongestionRaisesFrequency) {
  // Under ECN congestion TimeTrader's effective target shrinks by the
  // network budget, so the same observed latencies stop justifying a
  // step-down (the paper's "overly conservative" behavior).
  const ServiceModel model = test_model();
  TimeTraderPolicy relaxed(&model);
  TimeTraderPolicy congested(&model);
  congested.on_network_congestion(true);
  EXPECT_TRUE(congested.network_congested());
  SimTime now = 0.0;
  for (int i = 0; i < 200; ++i) {
    now += sec(0.5);
    // Latency sits between the congested target (25 ms) and the relaxed
    // 0.9*30 = 27 ms threshold: relaxed steps down, congested does not.
    relaxed.on_request_complete(now, ms(26.0), ms(30.0));
    congested.on_request_complete(now, ms(26.0), ms(30.0));
  }
  EXPECT_LT(relaxed.current_frequency(), congested.current_frequency());
  EXPECT_DOUBLE_EQ(congested.current_frequency(), 2.7);
}

TEST(LowestFeasibleFrequency, BinarySearchMatchesLinearScan) {
  const ServiceModel model = test_model();
  const auto& grid = model.frequency_grid();
  Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    // Random monotone predicate: feasible above a random threshold.
    const double threshold = rng.uniform(1.0, 3.0);
    auto feasible = [&](Freq f) { return f >= threshold; };
    const Freq got = lowest_feasible_frequency(grid, feasible);
    Freq expect = grid.back();
    for (Freq f : grid) {
      if (feasible(f)) {
        expect = f;
        break;
      }
    }
    EXPECT_DOUBLE_EQ(got, expect) << "threshold " << threshold;
  }
}

// Parameterized sweep: with a single queued request, Rubik and
// EPRONS-Server agree exactly (average == max for n = 1).
class SingleRequestAgreement : public ::testing::TestWithParam<double> {};

TEST_P(SingleRequestAgreement, EpronsEqualsRubikPlus) {
  const ServiceModel model = test_model();
  RubikPlusPolicy rubik_plus(&model);
  EpronsServerPolicy eprons(&model);
  const SimTime deadline = ms(GetParam());
  const QueuedRequest r = make_request(1, 0.0, deadline, deadline);
  const std::span<const QueuedRequest> view(&r, 1);
  EXPECT_DOUBLE_EQ(rubik_plus.select_frequency(0.0, view, 0.0),
                   eprons.select_frequency(0.0, view, 0.0));
}

INSTANTIATE_TEST_SUITE_P(Deadlines, SingleRequestAgreement,
                         ::testing::Values(12.0, 16.0, 20.0, 25.0, 30.0,
                                           40.0));

TEST(SyntheticWorkload, ServiceTimesInRange) {
  Rng rng(3);
  SyntheticWorkloadConfig config;
  for (int i = 0; i < 10000; ++i) {
    const double t = sample_service_time_ms(config, rng);
    EXPECT_GT(t, 0.0);
    EXPECT_LE(t, config.tail_span * config.mean_service_ms + 1e-9);
  }
}

TEST(SyntheticWorkload, HeavyTailPresent) {
  Rng rng(5);
  SyntheticWorkloadConfig config;
  const DiscreteDistribution work = make_search_work_distribution(config, rng);
  // p99 service time well above the mean (heavy tail).
  const double p99 = work.quantile(0.99);
  EXPECT_GT(p99, 1.8 * work.mean());
}

}  // namespace
}  // namespace eprons
