// Unit + property tests for src/stats: FFT, convolution, discretized
// distributions (the violation-probability substrate), percentiles.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "stats/distribution.h"
#include "stats/fft.h"
#include "stats/percentile.h"
#include "util/rng.h"

namespace eprons {
namespace {

TEST(Fft, NextPow2) {
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(1025), 2048u);
}

TEST(Fft, ForwardInverseRoundTrip) {
  Rng rng(1);
  std::vector<std::complex<double>> data(64);
  std::vector<std::complex<double>> orig(64);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
    orig[i] = data[i];
  }
  fft(data, false);
  fft(data, true);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(data[i].real(), orig[i].real(), 1e-10);
    EXPECT_NEAR(data[i].imag(), orig[i].imag(), 1e-10);
  }
}

TEST(Fft, KnownTransformOfImpulse) {
  std::vector<std::complex<double>> data(8, {0.0, 0.0});
  data[0] = {1.0, 0.0};
  fft(data, false);
  for (const auto& x : data) {
    EXPECT_NEAR(x.real(), 1.0, 1e-12);
    EXPECT_NEAR(x.imag(), 0.0, 1e-12);
  }
}

TEST(Convolve, MatchesDirectSmall) {
  const std::vector<double> a{1, 2, 3};
  const std::vector<double> b{4, 5};
  const auto out = convolve(a, b);
  const std::vector<double> expect{4, 13, 22, 15};
  ASSERT_EQ(out.size(), expect.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_NEAR(out[i], expect[i], 1e-9);
  }
}

TEST(Convolve, FftPathMatchesDirectLarge) {
  Rng rng(2);
  std::vector<double> a(300), b(200);
  for (double& x : a) x = rng.uniform();
  for (double& x : b) x = rng.uniform();
  const auto fast = convolve(a, b);  // large enough to take the FFT path
  const auto slow = convolve_direct(a, b);
  ASSERT_EQ(fast.size(), slow.size());
  for (std::size_t i = 0; i < fast.size(); ++i) {
    EXPECT_NEAR(fast[i], slow[i], 1e-7);
  }
}

TEST(Convolve, EmptyInputGivesEmpty) {
  EXPECT_TRUE(convolve({}, {1.0}).empty());
  EXPECT_TRUE(convolve({1.0}, {}).empty());
}

// ---- DiscreteDistribution ----

DiscreteDistribution make_uniform(double offset, double step, std::size_t n) {
  return DiscreteDistribution(offset, step,
                              std::vector<double>(n, 1.0 / double(n)));
}

TEST(Distribution, NormalizesMass) {
  DiscreteDistribution d(0.0, 1.0, {2.0, 2.0, 4.0});
  EXPECT_NEAR(d.pmf()[0], 0.25, 1e-12);
  EXPECT_NEAR(d.pmf()[2], 0.5, 1e-12);
}

TEST(Distribution, RejectsBadInput) {
  EXPECT_THROW(DiscreteDistribution(0.0, 0.0, {1.0}), std::invalid_argument);
  EXPECT_THROW(DiscreteDistribution(0.0, 1.0, {0.0, 0.0}),
               std::invalid_argument);
}

TEST(Distribution, MeanAndVarianceOfPointMass) {
  const auto d = DiscreteDistribution::point_mass(7.0, 1.0);
  EXPECT_DOUBLE_EQ(d.mean(), 7.0);
  EXPECT_DOUBLE_EQ(d.variance(), 0.0);
}

TEST(Distribution, CdfCcdfComplement) {
  const auto d = make_uniform(0.0, 1.0, 10);
  for (double x = -1.0; x < 11.0; x += 0.37) {
    EXPECT_NEAR(d.cdf(x) + d.ccdf(x), 1.0, 1e-12);
  }
  EXPECT_DOUBLE_EQ(d.cdf(-0.5), 0.0);
  EXPECT_DOUBLE_EQ(d.cdf(9.5), 1.0);
}

TEST(Distribution, CdfMonotone) {
  Rng rng(3);
  std::vector<double> pmf(50);
  for (double& p : pmf) p = rng.uniform();
  DiscreteDistribution d(5.0, 0.25, std::move(pmf));
  double prev = -1.0;
  for (double x = 4.0; x < 20.0; x += 0.05) {
    const double c = d.cdf(x);
    EXPECT_GE(c, prev - 1e-12);
    prev = c;
  }
}

TEST(Distribution, QuantileInverseOfCdf) {
  const auto d = make_uniform(0.0, 1.0, 100);
  const double q95 = d.quantile(0.95);
  EXPECT_NEAR(d.cdf(q95), 0.95, 0.02);
}

TEST(Distribution, ConvolutionMeansAdd) {
  const auto a = make_uniform(10.0, 1.0, 20);
  const auto b = make_uniform(5.0, 1.0, 8);
  const auto c = a.convolve(b);
  EXPECT_NEAR(c.mean(), a.mean() + b.mean(), 1e-9);
  EXPECT_NEAR(c.variance(), a.variance() + b.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(c.min_value(), 15.0);
}

TEST(Distribution, ConvolutionMassSumsToOne) {
  const auto a = make_uniform(0.0, 2.0, 33);
  const auto c = a.convolve(a).convolve(a);
  const double total =
      std::accumulate(c.pmf().begin(), c.pmf().end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Distribution, ConvolveRejectsMismatchedSteps) {
  const auto a = make_uniform(0.0, 1.0, 4);
  const auto b = make_uniform(0.0, 2.0, 4);
  EXPECT_THROW(a.convolve(b), std::invalid_argument);
}

TEST(Distribution, ConditionalRemainingShiftsSupport) {
  const auto d = make_uniform(0.0, 1.0, 10);  // values 0..9
  const auto r = d.conditional_remaining(4.0);
  // Remaining values are {1..5} with equal mass (bins 5..9 shifted by 4).
  EXPECT_NEAR(r.min_value(), 1.0, 1e-9);
  EXPECT_NEAR(r.max_value(), 5.0, 1e-9);
  EXPECT_NEAR(r.mean(), 3.0, 1e-9);
}

TEST(Distribution, ConditionalRemainingPastSupportIsZero) {
  const auto d = make_uniform(0.0, 1.0, 10);
  const auto r = d.conditional_remaining(100.0);
  EXPECT_DOUBLE_EQ(r.mean(), 0.0);
}

TEST(Distribution, ConditionalRemainingBeforeSupportIsShift) {
  const auto d = make_uniform(10.0, 1.0, 5);
  const auto r = d.conditional_remaining(2.0);
  EXPECT_NEAR(r.mean(), d.mean() - 2.0, 1e-9);
}

TEST(Distribution, FromSamplesRecoversMoments) {
  Rng rng(4);
  std::vector<double> samples;
  samples.reserve(100000);
  for (int i = 0; i < 100000; ++i) samples.push_back(rng.lognormal(1.0, 0.4));
  const auto d = DiscreteDistribution::from_samples(samples, 200);
  const double expect_mean = std::exp(1.0 + 0.4 * 0.4 / 2.0);
  EXPECT_NEAR(d.mean(), expect_mean, expect_mean * 0.02);
}

TEST(Distribution, TruncatedDropsNegligibleTails) {
  std::vector<double> pmf(100, 0.0);
  pmf[50] = 1.0;
  pmf[0] = 1e-15;
  pmf[99] = 1e-15;
  DiscreteDistribution d(0.0, 1.0, std::move(pmf));
  const auto t = d.truncated(1e-9);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_DOUBLE_EQ(t.min_value(), 50.0);
}

TEST(Distribution, SampleStaysOnSupportAndMatchesMean) {
  const auto d = make_uniform(10.0, 0.5, 40);  // values 10 .. 29.5
  Rng rng(5);
  double total = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double s = d.sample(rng);
    EXPECT_GE(s, 10.0 - 0.25 - 1e-9);
    EXPECT_LE(s, 29.5 + 0.25 + 1e-9);
    total += s;
  }
  EXPECT_NEAR(total / n, d.mean(), 0.05);
}

// Property sweep: CCDF evaluated through equation (1) style lookups is
// monotone non-increasing in frequency for any deadline.
class DistributionVpProperty : public ::testing::TestWithParam<double> {};

TEST_P(DistributionVpProperty, CcdfMonotoneInFrequency) {
  Rng rng(6);
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) samples.push_back(rng.lognormal(14.0, 0.5));
  const auto work = DiscreteDistribution::from_samples(samples, 256);
  const double deadline_us = GetParam();
  double prev = 2.0;
  for (double f = 1.2; f <= 2.7 + 1e-9; f += 0.1) {
    const double vp = work.ccdf(f * 1000.0 * deadline_us);
    EXPECT_LE(vp, prev + 1e-12) << "f=" << f;
    prev = vp;
  }
}

INSTANTIATE_TEST_SUITE_P(Deadlines, DistributionVpProperty,
                         ::testing::Values(500.0, 1000.0, 2000.0, 5000.0,
                                           10000.0));

// ---- Percentiles ----

TEST(Percentile, NearestRankConvention) {
  PercentileEstimator p;
  for (int i = 1; i <= 100; ++i) p.add(i);
  EXPECT_DOUBLE_EQ(p.quantile(0.95), 95.0);
  EXPECT_DOUBLE_EQ(p.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(p.quantile(1.0), 100.0);
  EXPECT_DOUBLE_EQ(p.mean(), 50.5);
}

TEST(Percentile, EmptyReturnsZero) {
  PercentileEstimator p;
  EXPECT_DOUBLE_EQ(p.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(p.mean(), 0.0);
}

TEST(Percentile, InterleavedAddAndQuery) {
  PercentileEstimator p;
  p.add(5.0);
  EXPECT_DOUBLE_EQ(p.quantile(0.5), 5.0);
  p.add(1.0);
  p.add(9.0);
  EXPECT_DOUBLE_EQ(p.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(p.max(), 9.0);
  EXPECT_DOUBLE_EQ(p.min(), 1.0);
}

TEST(WindowedPercentile, ForgetsOldSamples) {
  WindowedPercentile w(10);
  for (int i = 0; i < 10; ++i) w.add(1000.0);
  for (int i = 0; i < 10; ++i) w.add(1.0);
  EXPECT_DOUBLE_EQ(w.quantile(0.99), 1.0);
}

TEST(OnlineStats, MatchesClosedForm) {
  OnlineStats s;
  for (int i = 1; i <= 5; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 2.5);  // sample variance of 1..5
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(OnlineStats, MergeEqualsSinglePass) {
  Rng rng(7);
  OnlineStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(2.0, 3.0);
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
}

}  // namespace
}  // namespace eprons
