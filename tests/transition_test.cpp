// Tests for consolidation transition modeling (src/consolidate/transition)
// and the epoch controller (src/core/epoch_controller).
#include <gtest/gtest.h>

#include "consolidate/transition.h"
#include "core/epoch_controller.h"
#include "dvfs/synthetic_workload.h"
#include "topo/aggregation.h"
#include "topo/fattree.h"

namespace eprons {
namespace {

TEST(Transition, DiffCountsBootAndOff) {
  const FatTree ft(4);
  const AggregationPolicies policies(&ft);
  const auto agg0 = policies.policy(0).switch_on;  // 20 on
  const auto agg2 = policies.policy(2).switch_on;  // 14 on
  TransitionConfig config;

  const TransitionStats shrink =
      plan_transition(ft.graph(), agg0, agg2, config);
  EXPECT_EQ(shrink.switches_to_boot, 0);
  EXPECT_EQ(shrink.switches_to_off, 6);
  // Pure shutdowns have no boot window.
  EXPECT_DOUBLE_EQ(shrink.unavailable_window, 0.0);
  EXPECT_DOUBLE_EQ(shrink.overhead_energy, 0.0);

  const TransitionStats grow = plan_transition(ft.graph(), agg2, agg0, config);
  EXPECT_EQ(grow.switches_to_boot, 6);
  EXPECT_EQ(grow.switches_to_off, 0);
  EXPECT_DOUBLE_EQ(grow.unavailable_window, sec(72.52));
  EXPECT_NEAR(grow.overhead_energy, sec(72.52) * 6 * 36.0, 1e-3);
}

TEST(Transition, NoChangeNoOverhead) {
  const FatTree ft(4);
  const AggregationPolicies policies(&ft);
  const auto mask = policies.policy(1).switch_on;
  const auto stats = plan_transition(ft.graph(), mask, mask, {});
  EXPECT_EQ(stats.switches_to_boot, 0);
  EXPECT_EQ(stats.switches_to_off, 0);
  EXPECT_DOUBLE_EQ(stats.overhead_energy, 0.0);
}

TEST(TransitionController, LingerKeepsSwitchesOn) {
  const FatTree ft(4);
  const AggregationPolicies policies(&ft);
  TransitionConfig config;
  config.linger_epochs = 1;
  TransitionController controller(&ft.graph(), config);

  const auto agg0 = policies.policy(0).switch_on;
  const auto agg3 = policies.policy(3).switch_on;
  controller.step(agg0);
  EXPECT_EQ(count_active_switches(ft.graph(), controller.current_mask()), 20);
  // Shrink request: lingering keeps the extra switches one more epoch.
  controller.step(agg3);
  EXPECT_EQ(count_active_switches(ft.graph(), controller.current_mask()), 20);
  controller.step(agg3);
  EXPECT_EQ(count_active_switches(ft.graph(), controller.current_mask()), 13);
  EXPECT_GT(controller.lingering_energy(), 0.0);
}

TEST(TransitionController, NoLingerShutsDownImmediately) {
  const FatTree ft(4);
  const AggregationPolicies policies(&ft);
  TransitionConfig config;
  config.linger_epochs = 0;
  TransitionController controller(&ft.graph(), config);
  controller.step(policies.policy(0).switch_on);
  controller.step(policies.policy(3).switch_on);
  EXPECT_EQ(count_active_switches(ft.graph(), controller.current_mask()), 13);
}

TEST(TransitionController, FirstEpochIsNotABoot) {
  const FatTree ft(4);
  const AggregationPolicies policies(&ft);
  TransitionController controller(&ft.graph(), {});
  controller.step(policies.policy(0).switch_on);
  EXPECT_EQ(controller.total_boots(), 0);
  // Growing later does count.
  controller.step(policies.policy(3).switch_on);
  controller.step(policies.policy(3).switch_on);
  controller.step(policies.policy(0).switch_on);
  EXPECT_GT(controller.total_boots(), 0);
}

TEST(EpochController, RunsFullLoopAndPredictsConservatively) {
  const FatTree ft(4);
  Rng wl_rng(5);
  SyntheticWorkloadConfig wl;
  wl.samples = 20000;
  wl.bins = 256;
  const ServiceModel model = make_search_service_model(wl, wl_rng);
  const ServerPowerModel power;

  EpochControllerConfig config;
  config.joint.slack.samples_per_pair = 80;
  config.samples_per_epoch = 50;
  EpochController controller(&ft, &model, &power, config);

  FlowGenConfig gen;
  gen.exclude_host = 0;
  Rng rng(9);
  const FlowSet background = make_background_flows(gen, 6, 0.2, 0.0, rng);

  const EpochReport first = controller.run_epoch(background, 0.3, rng);
  EXPECT_EQ(first.epoch, 0);
  EXPECT_TRUE(first.feasible);
  // The 90th-percentile predictor over log-normal noise over-reserves.
  EXPECT_GT(first.prediction_ratio, 1.0);
  EXPECT_LT(first.prediction_ratio, 2.0);
  EXPECT_GT(first.actual_switches, 0);
  EXPECT_GT(first.network_power, 0.0);

  // A second identical epoch should not need any boots.
  const EpochReport second = controller.run_epoch(background, 0.3, rng);
  EXPECT_EQ(second.epoch, 1);
  EXPECT_EQ(second.transition.switches_to_boot, 0);
}

TEST(EpochController, LoadGrowthTriggersBoots) {
  const FatTree ft(4);
  Rng wl_rng(5);
  SyntheticWorkloadConfig wl;
  wl.samples = 20000;
  wl.bins = 256;
  const ServiceModel model = make_search_service_model(wl, wl_rng);
  const ServerPowerModel power;

  EpochControllerConfig config;
  config.joint.slack.samples_per_pair = 80;
  config.samples_per_epoch = 50;
  EpochController controller(&ft, &model, &power, config);

  FlowGenConfig gen;
  gen.exclude_host = 0;
  Rng rng(13);
  const FlowSet light = make_background_flows(gen, 4, 0.05, 0.0, rng);
  Rng rng2(13);
  const FlowSet heavy = make_background_flows(gen, 6, 0.45, 0.0, rng2);

  const EpochReport lo = controller.run_epoch(light, 0.1, rng);
  const EpochReport hi = controller.run_epoch(heavy, 0.5, rng);
  EXPECT_GE(hi.wanted_switches, lo.wanted_switches);
}

}  // namespace
}  // namespace eprons
