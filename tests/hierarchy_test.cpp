// Differential and property battery for the hierarchical pod-decomposed
// consolidator (src/consolidate/hierarchical_consolidator.h).
//
// The solver is trusted only as far as this file proves it:
//   * differential vs the flat greedy and the exact MILP on k=4/k=8 across
//     seeded random instances (healthy, degraded, warm-started);
//   * byte-identical plans for --threads 1/4/8 (placement_fingerprint plus
//     deep equality);
//   * seeded property fuzzing at k=4..16 over adversarial scenario shapes
//     (pod-skewed demand, zero-demand pods, single-flow pods, saturating
//     bursts) asserting the placement invariants: every flow routed within
//     scaled capacity, the attribution exact-sum invariant, and no
//     powered-off switch carrying traffic;
//   * SLA satisfaction through the joint optimizer with the hierarchical
//     consolidator selected.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "consolidate/hierarchical_consolidator.h"
#include "consolidate/milp_consolidator.h"
#include "core/scenario.h"
#include "util/rng.h"

namespace eprons {
namespace {

ConsolidationConfig base_config(double k) {
  ConsolidationConfig config;
  config.scale_factor_k = k;
  config.safety_margin = 50.0;
  config.switch_power = 36.0;
  return config;
}

FlowSet random_flows(const FatTree& ft, Rng& rng, int count, double lo,
                     double hi, double sensitive_prob = 0.5) {
  const int hosts = ft.num_hosts();
  FlowSet flows;
  for (int i = 0; i < count; ++i) {
    const int src = static_cast<int>(rng.uniform_int(0, hosts - 1));
    int dst = src;
    while (dst == src) dst = static_cast<int>(rng.uniform_int(0, hosts - 1));
    flows.add(src, dst, rng.uniform(lo, hi),
              rng.bernoulli(sensitive_prob) ? FlowClass::LatencySensitive
                                            : FlowClass::LatencyTolerant);
  }
  return flows;
}

/// The shared placement invariants: every flow routed host-to-host over
/// adjacent, powered, allowed switches; no blocked link crossed; every
/// traversed link marked on (so no powered-off element carries traffic);
/// and per-directed-arc reservations within capacity - margin, charged
/// exactly as the packer charges them (host-adjacent hops unscaled,
/// fabric hops K-scaled).
void check_placement_valid(const FatTree& ft, const FlowSet& flows,
                           const ConsolidationConfig& config,
                           const ConsolidationResult& result,
                           const char* tag) {
  const Graph& g = ft.graph();
  std::vector<double> arc_load(static_cast<std::size_t>(g.num_links()) * 2,
                               0.0);
  for (std::size_t i = 0; i < flows.size(); ++i) {
    const Path& path = result.flow_paths[i];
    ASSERT_GE(path.size(), 2u) << tag << " flow " << i;
    EXPECT_EQ(path.front(), ft.host(flows[i].src_host)) << tag << " flow " << i;
    EXPECT_EQ(path.back(), ft.host(flows[i].dst_host)) << tag << " flow " << i;
    for (std::size_t h = 0; h + 1 < path.size(); ++h) {
      const LinkId link = g.find_link(path[h], path[h + 1]);
      ASSERT_NE(link, kInvalidLink) << tag << " flow " << i << " hop " << h;
      EXPECT_TRUE(result.link_on[static_cast<std::size_t>(link)])
          << tag << " flow " << i << " rides powered-off link " << link;
      if (!config.blocked_links.empty()) {
        EXPECT_FALSE(config.blocked_links[static_cast<std::size_t>(link)])
            << tag << " flow " << i << " crosses blocked link " << link;
      }
      const bool forward = g.link(link).a == path[h];
      const bool host_adjacent =
          !g.is_switch(path[h]) || !g.is_switch(path[h + 1]);
      arc_load[static_cast<std::size_t>(link) * 2 + (forward ? 0u : 1u)] +=
          host_adjacent ? flows[i].demand
                        : flows[i].scaled_demand(config.scale_factor_k);
    }
    for (const NodeId n : path) {
      if (!g.is_switch(n)) continue;
      EXPECT_TRUE(result.switch_on[static_cast<std::size_t>(n)])
          << tag << " flow " << i << " uses powered-off switch " << n;
      if (!config.allowed_switches.empty()) {
        EXPECT_TRUE(config.allowed_switches[static_cast<std::size_t>(n)])
            << tag << " flow " << i << " uses disallowed switch " << n;
      }
    }
  }
  for (const Link& l : g.links()) {
    const double usable = std::max(0.0, l.capacity - config.safety_margin);
    for (unsigned d = 0; d < 2; ++d) {
      EXPECT_LE(arc_load[static_cast<std::size_t>(l.id) * 2 + d],
                usable + 1e-9)
          << tag << " link " << l.id << " dir " << d;
    }
  }
}

/// The attribution contract: the headline network power IS the fixed-order
/// sum of the per-layer components, and each component is its count times
/// the configured per-switch power — bit-exact, no tolerance.
void check_attribution_exact(const ConsolidationConfig& config,
                             const ConsolidationResult& result,
                             const char* tag) {
  EXPECT_EQ(result.edge_power_w, result.edge_switches * config.switch_power)
      << tag;
  EXPECT_EQ(result.agg_power_w, result.agg_switches * config.switch_power)
      << tag;
  EXPECT_EQ(result.core_power_w, result.core_switches * config.switch_power)
      << tag;
  EXPECT_EQ(result.link_power_w, result.active_links * config.link_power)
      << tag;
  EXPECT_EQ(result.network_power,
            ((result.edge_power_w + result.agg_power_w) +
             result.core_power_w) +
                result.link_power_w)
      << tag;
  EXPECT_EQ(result.active_switches, result.edge_switches +
                                        result.agg_switches +
                                        result.core_switches)
      << tag;
}

/// Deep equality of two placements (stronger than fingerprint equality;
/// the fingerprint is additionally compared because CI diffs on it).
void expect_identical(const ConsolidationResult& a,
                      const ConsolidationResult& b, const char* tag) {
  EXPECT_EQ(a.feasible, b.feasible) << tag;
  EXPECT_EQ(a.switch_on, b.switch_on) << tag;
  EXPECT_EQ(a.link_on, b.link_on) << tag;
  EXPECT_EQ(a.flow_paths, b.flow_paths) << tag;
  EXPECT_EQ(a.network_power, b.network_power) << tag;
  EXPECT_EQ(placement_fingerprint(a), placement_fingerprint(b)) << tag;
}

// ---------------------------------------------------------------------------
// Differential: hierarchical vs flat greedy and vs exact MILP.

struct DiffStats {
  int trials = 0;
  int both_feasible = 0;
  double worst_vs_flat = 1.0;
};

DiffStats run_greedy_differential(int k_ary, int trials, int flows_per_trial,
                                  std::uint64_t seed, bool degraded) {
  const FatTree ft(k_ary);
  const Graph& g = ft.graph();
  const GreedyConsolidator flat(&ft);
  const HierarchicalConsolidator hier;
  DiffStats stats;
  Rng rng(seed);
  for (int trial = 0; trial < trials; ++trial) {
    const FlowSet flows = random_flows(ft, rng, flows_per_trial, 20.0, 220.0);
    ConsolidationConfig config = base_config(trial % 2 == 0 ? 1.0 : 2.0);
    if (degraded) {
      // One dead aggregation switch, one dead core, one blocked fabric
      // link per trial — the shape the fault-recovery path produces.
      std::vector<NodeId> aggs, cores;
      for (const Node& node : g.nodes()) {
        if (node.type == NodeType::AggSwitch) aggs.push_back(node.id);
        if (node.type == NodeType::CoreSwitch) cores.push_back(node.id);
      }
      config.allowed_switches.assign(g.num_nodes(), true);
      config.allowed_switches[static_cast<std::size_t>(
          aggs[static_cast<std::size_t>(rng.uniform_int(
              0, static_cast<int>(aggs.size()) - 1))])] = false;
      config.allowed_switches[static_cast<std::size_t>(
          cores[static_cast<std::size_t>(rng.uniform_int(
              0, static_cast<int>(cores.size()) - 1))])] = false;
      std::vector<LinkId> fabric;
      for (const Link& l : g.links()) {
        if (g.is_switch(l.a) && g.is_switch(l.b)) fabric.push_back(l.id);
      }
      config.blocked_links.assign(g.num_links(), false);
      config.blocked_links[static_cast<std::size_t>(
          fabric[static_cast<std::size_t>(rng.uniform_int(
              0, static_cast<int>(fabric.size()) - 1))])] = true;
    }

    const ConsolidationResult flat_result = flat.consolidate(ft, flows, config);
    const ConsolidationResult hier_result = hier.consolidate(ft, flows, config);
    ++stats.trials;
    check_attribution_exact(config, hier_result, "hier");
    if (hier_result.feasible) {
      check_placement_valid(ft, flows, config, hier_result, "hier");
    }
    if (!flat_result.feasible || !hier_result.feasible) continue;
    check_placement_valid(ft, flows, config, flat_result, "flat");
    ++stats.both_feasible;
    EXPECT_GT(flat_result.network_power, 0.0);
    if (flat_result.network_power <= 0.0) continue;
    const double ratio = hier_result.network_power / flat_result.network_power;
    // Bounded power gap: the decomposition may light a few extra switches
    // (pods pack blind to inter-pod traffic) but must stay in the same
    // ballpark as the flat heuristic — and can also beat it.
    EXPECT_LE(ratio, 1.6) << "seed " << seed << " trial " << trial
                          << " hier " << hier_result.network_power
                          << " W vs flat " << flat_result.network_power
                          << " W";
    stats.worst_vs_flat = std::max(stats.worst_vs_flat, ratio);
  }
  return stats;
}

TEST(HierarchyDifferential, MatchesFlatGreedyK4AcrossSeeds) {
  // >= 20 distinct seeds, healthy instances.
  int compared = 0;
  for (std::uint64_t seed = 1; seed <= 21; ++seed) {
    const DiffStats stats =
        run_greedy_differential(4, 3, 6, seed, /*degraded=*/false);
    compared += stats.both_feasible;
  }
  EXPECT_GE(compared, 40);
}

TEST(HierarchyDifferential, MatchesFlatGreedyK8AcrossSeeds) {
  int compared = 0;
  for (std::uint64_t seed = 100; seed < 120; ++seed) {
    const DiffStats stats =
        run_greedy_differential(8, 2, 24, seed, /*degraded=*/false);
    compared += stats.both_feasible;
  }
  EXPECT_GE(compared, 30);
}

TEST(HierarchyDifferential, BlockedLinksAndDeadSwitchesK4) {
  int compared = 0;
  for (std::uint64_t seed = 300; seed < 320; ++seed) {
    const DiffStats stats =
        run_greedy_differential(4, 2, 5, seed, /*degraded=*/true);
    compared += stats.both_feasible;
  }
  EXPECT_GE(compared, 20);
}

TEST(HierarchyDifferential, BlockedLinksAndDeadSwitchesK8) {
  int compared = 0;
  for (std::uint64_t seed = 400; seed < 410; ++seed) {
    const DiffStats stats =
        run_greedy_differential(8, 1, 20, seed, /*degraded=*/true);
    compared += stats.both_feasible;
  }
  EXPECT_GE(compared, 7);
}

TEST(HierarchyDifferential, NeverBeatsExactMilpK4) {
  // The MILP optimum lower-bounds any feasible placement, hierarchical
  // included; and the hierarchical plan must stay within a bounded factor
  // of it.
  const FatTree ft(4);
  const MilpConsolidator milp(&ft);
  const HierarchicalConsolidator hier;
  int compared = 0;
  Rng rng(777);
  for (int trial = 0; trial < 20; ++trial) {
    const FlowSet flows = random_flows(ft, rng, 5, 30.0, 250.0);
    const ConsolidationConfig config = base_config(1.0);
    const ConsolidationResult exact = milp.consolidate(ft, flows, config);
    const ConsolidationResult hr = hier.consolidate(ft, flows, config);
    if (!exact.feasible || !hr.feasible) continue;
    check_placement_valid(ft, flows, config, hr, "hier");
    EXPECT_GE(hr.network_power, exact.network_power - 1e-9)
        << "trial " << trial;
    EXPECT_LE(hr.network_power, exact.network_power * 2.5 + 1e-9)
        << "trial " << trial;
    ++compared;
  }
  EXPECT_GE(compared, 14);
}

TEST(HierarchyDifferential, MilpInnerSolvesPodsExactly) {
  // The decomposition composes any inner Consolidator: with the MILP
  // inside, each pod and the core instance are solved exactly.
  const FatTree ft(4);
  const MilpConsolidator milp(&ft);
  const HierarchicalConsolidator hier(&milp);
  Rng rng(99);
  int compared = 0;
  for (int trial = 0; trial < 6; ++trial) {
    const FlowSet flows = random_flows(ft, rng, 5, 30.0, 200.0);
    const ConsolidationConfig config = base_config(1.0);
    const ConsolidationResult flat_exact = milp.consolidate(ft, flows, config);
    const ConsolidationResult hr = hier.consolidate(ft, flows, config);
    if (!flat_exact.feasible || !hr.feasible) continue;
    check_placement_valid(ft, flows, config, hr, "hier-milp");
    EXPECT_GE(hr.network_power, flat_exact.network_power - 1e-9);
    ++compared;
  }
  EXPECT_GE(compared, 4);
}

// ---------------------------------------------------------------------------
// Thread-count determinism: byte-identical plans for --threads 1/4/8.

TEST(HierarchyDeterminism, ByteIdenticalAcrossThreads148) {
  for (const int k_ary : {4, 8}) {
    const FatTree ft(k_ary);
    const HierarchicalConsolidator serial;
    const HierarchicalConsolidator four(nullptr, {4});
    const HierarchicalConsolidator eight(nullptr, {8});
    for (const std::uint64_t seed : {1ull, 42ull, 99ull}) {
      Rng rng(seed);
      const FlowSet flows =
          random_flows(ft, rng, k_ary == 4 ? 8 : 32, 20.0, 200.0);
      const ConsolidationConfig config = base_config(2.0);
      const ConsolidationResult r1 = serial.consolidate(ft, flows, config);
      const ConsolidationResult r4 = four.consolidate(ft, flows, config);
      const ConsolidationResult r8 = eight.consolidate(ft, flows, config);
      expect_identical(r1, r4, "threads 1 vs 4");
      expect_identical(r1, r8, "threads 1 vs 8");
    }
  }
}

TEST(HierarchyDeterminism, WarmStartByteIdenticalAcrossThreads) {
  const FatTree ft(8);
  const HierarchicalConsolidator serial;
  const HierarchicalConsolidator eight(nullptr, {8});
  Rng rng(4242);
  const FlowSet previous_flows = random_flows(ft, rng, 24, 20.0, 180.0);
  const ConsolidationConfig config = base_config(1.0);
  const ConsolidationResult previous =
      serial.consolidate(ft, previous_flows, config);
  ASSERT_TRUE(previous.feasible);

  // Jitter ~10% of demands (same endpoints, so every bucket is stable).
  FlowSet next;
  for (std::size_t i = 0; i < previous_flows.size(); ++i) {
    const Flow& f = previous_flows[i];
    const double demand = i % 10 == 0 ? f.demand * 1.1 : f.demand;
    next.add(f.src_host, f.dst_host, demand, f.cls);
  }
  WarmStartHint warm;
  warm.previous_flows = &previous_flows;
  warm.previous = &previous;
  const ConsolidationResult w1 =
      serial.consolidate_incremental(ft, next, config, &warm);
  const ConsolidationResult w8 =
      eight.consolidate_incremental(ft, next, config, &warm);
  expect_identical(w1, w8, "warm threads 1 vs 8");
  ASSERT_TRUE(w1.feasible);
  check_placement_valid(ft, next, config, w1, "warm");
  check_attribution_exact(config, w1, "warm");
}

// ---------------------------------------------------------------------------
// Warm start semantics.

TEST(HierarchyWarmStart, StablePartitionKeepsPathsAndConstraints) {
  const FatTree ft(4);
  const HierarchicalConsolidator hier;
  Rng rng(31);
  const FlowSet previous_flows = random_flows(ft, rng, 8, 20.0, 150.0);
  const ConsolidationConfig config = base_config(1.0);
  const ConsolidationResult previous =
      hier.consolidate(ft, previous_flows, config);
  ASSERT_TRUE(previous.feasible);

  FlowSet next;
  for (std::size_t i = 0; i < previous_flows.size(); ++i) {
    const Flow& f = previous_flows[i];
    next.add(f.src_host, f.dst_host, f.demand * (i == 0 ? 1.05 : 1.0), f.cls);
  }
  WarmStartHint warm;
  warm.previous_flows = &previous_flows;
  warm.previous = &previous;
  const ConsolidationResult warmed =
      hier.consolidate_incremental(ft, next, config, &warm);
  ASSERT_TRUE(warmed.feasible);
  EXPECT_TRUE(warmed.warm_started);
  check_placement_valid(ft, next, config, warmed, "warm");
  check_attribution_exact(config, warmed, "warm");
  // A 5% wiggle on one flow re-routes nothing.
  EXPECT_EQ(warmed.flow_paths, previous.flow_paths);
}

TEST(HierarchyWarmStart, BucketChangeFallsBackToColdSolve) {
  const FatTree ft(4);
  const HierarchicalConsolidator hier;
  Rng rng(37);
  const FlowSet previous_flows = random_flows(ft, rng, 6, 20.0, 150.0);
  const ConsolidationConfig config = base_config(1.0);
  const ConsolidationResult previous =
      hier.consolidate(ft, previous_flows, config);
  ASSERT_TRUE(previous.feasible);

  // Retarget flow 0 into a different pod: its bucket changes, so the
  // decomposed warm start must be abandoned for a cold decomposed solve.
  FlowSet next;
  for (std::size_t i = 0; i < previous_flows.size(); ++i) {
    const Flow& f = previous_flows[i];
    int dst = f.dst_host;
    if (i == 0) {
      dst = (f.dst_host + ft.hosts_per_pod()) % ft.num_hosts();
      if (dst == f.src_host) dst = (dst + 1) % ft.num_hosts();
    }
    next.add(f.src_host, dst, f.demand, f.cls);
  }
  WarmStartHint warm;
  warm.previous_flows = &previous_flows;
  warm.previous = &previous;
  const ConsolidationResult warmed =
      hier.consolidate_incremental(ft, next, config, &warm);
  const ConsolidationResult cold = hier.consolidate(ft, next, config);
  EXPECT_FALSE(warmed.warm_started);
  expect_identical(warmed, cold, "bucket-change fallback vs cold");
}

// ---------------------------------------------------------------------------
// Property/fuzz battery at k = 4..16.

/// Seeded adversarial scenario generator. Shapes:
///   0 — pod-skewed: ~70% of flows inside one hot pod;
///   1 — zero-demand pods: flows only between two pods, others silent
///       (plus one zero-demand control flow);
///   2 — single-flow pods: exactly one intra-pod flow per pod;
///   3 — saturating burst: a few elephants near capacity plus mice.
FlowSet fuzz_scenario(const FatTree& ft, int shape, Rng& rng) {
  const int hosts = ft.num_hosts();
  const int per_pod = ft.hosts_per_pod();
  FlowSet flows;
  switch (shape % 4) {
    case 0: {
      const int hot = static_cast<int>(
          rng.uniform_int(0, ft.num_pods() - 1));
      const int n = 6 + static_cast<int>(rng.uniform_int(0, 6));
      for (int i = 0; i < n; ++i) {
        if (rng.bernoulli(0.7)) {
          const int src = hot * per_pod +
                          static_cast<int>(rng.uniform_int(0, per_pod - 1));
          int dst = src;
          while (dst == src) {
            dst = hot * per_pod +
                  static_cast<int>(rng.uniform_int(0, per_pod - 1));
          }
          flows.add(src, dst, rng.uniform(20.0, 300.0),
                    FlowClass::LatencySensitive);
        } else {
          const int src = static_cast<int>(rng.uniform_int(0, hosts - 1));
          int dst = src;
          while (dst == src) {
            dst = static_cast<int>(rng.uniform_int(0, hosts - 1));
          }
          flows.add(src, dst, rng.uniform(20.0, 200.0),
                    FlowClass::LatencyTolerant);
        }
      }
      break;
    }
    case 1: {
      const int pod_a = 0;
      const int pod_b = ft.num_pods() - 1;
      for (int i = 0; i < 5; ++i) {
        const int src = pod_a * per_pod +
                        static_cast<int>(rng.uniform_int(0, per_pod - 1));
        const int dst = pod_b * per_pod +
                        static_cast<int>(rng.uniform_int(0, per_pod - 1));
        flows.add(src, dst, rng.uniform(30.0, 250.0),
                  FlowClass::LatencyTolerant);
      }
      flows.add(0, per_pod - 1 > 0 ? 1 : per_pod, 0.0,
                FlowClass::LatencySensitive);
      break;
    }
    case 2: {
      for (int pod = 0; pod < ft.num_pods(); ++pod) {
        const int src = pod * per_pod;
        const int dst = pod * per_pod + (per_pod > 1 ? 1 : 0);
        if (src == dst) continue;
        flows.add(src, dst, rng.uniform(10.0, 400.0),
                  FlowClass::LatencySensitive);
      }
      break;
    }
    default: {
      for (int i = 0; i < 3; ++i) {
        const int src = static_cast<int>(rng.uniform_int(0, hosts - 1));
        int dst = src;
        while (dst == src) {
          dst = static_cast<int>(rng.uniform_int(0, hosts - 1));
        }
        flows.add(src, dst, rng.uniform(800.0, 930.0),
                  FlowClass::LatencyTolerant);
      }
      for (int i = 0; i < 8; ++i) {
        const int src = static_cast<int>(rng.uniform_int(0, hosts - 1));
        int dst = src;
        while (dst == src) {
          dst = static_cast<int>(rng.uniform_int(0, hosts - 1));
        }
        flows.add(src, dst, rng.uniform(1.0, 30.0),
                  FlowClass::LatencySensitive);
      }
      break;
    }
  }
  return flows;
}

class HierarchyProperty : public ::testing::TestWithParam<int> {};

TEST_P(HierarchyProperty, InvariantsHoldOnFuzzedScenarios) {
  const int k_ary = GetParam();
  const FatTree ft(k_ary);
  const HierarchicalConsolidator hier(nullptr, {4});
  const int rounds = k_ary >= 16 ? 4 : 12;
  Rng rng(static_cast<std::uint64_t>(1000 + k_ary));
  for (int round = 0; round < rounds; ++round) {
    for (int shape = 0; shape < 4; ++shape) {
      const FlowSet flows = fuzz_scenario(ft, shape, rng);
      const ConsolidationConfig config =
          base_config(round % 2 == 0 ? 1.0 : 2.0);
      const ConsolidationResult result = hier.consolidate(ft, flows, config);
      check_attribution_exact(config, result, "fuzz");
      if (!result.feasible) continue;  // saturating bursts may overflow
      check_placement_valid(ft, flows, config, result, "fuzz");
      // No powered-off element carries traffic, and nothing outside the
      // union of assigned paths plus hosts is powered: every on switch
      // must appear on some path.
      std::vector<bool> used(ft.graph().num_nodes(), false);
      for (const Path& path : result.flow_paths) {
        for (NodeId n : path) used[static_cast<std::size_t>(n)] = true;
      }
      for (const Node& n : ft.graph().nodes()) {
        if (!is_switch_type(n.type)) continue;
        const auto i = static_cast<std::size_t>(n.id);
        if (result.switch_on[i]) {
          EXPECT_TRUE(used[i]) << "switch " << n.name
                               << " is on but carries no flow";
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(KSweep, HierarchyProperty,
                         ::testing::Values(4, 6, 8, 16));

// ---------------------------------------------------------------------------
// Fallbacks and integration.

TEST(Hierarchy, NonFatTreeDelegatesToInner) {
  const LeafSpine topo(4, 4, 4);
  const GreedyConsolidator flat;
  const HierarchicalConsolidator hier(&flat);
  FlowSet flows;
  flows.add(0, 9, 120.0, FlowClass::LatencySensitive);
  flows.add(3, 12, 300.0, FlowClass::LatencyTolerant);
  const ConsolidationConfig config = base_config(2.0);
  expect_identical(hier.consolidate(topo, flows, config),
                   flat.consolidate(topo, flows, config),
                   "leaf-spine delegation");
}

TEST(Hierarchy, EmptyFlowSetTurnsFabricOff) {
  const FatTree ft(8);
  const HierarchicalConsolidator hier;
  const ConsolidationResult result =
      hier.consolidate(ft, FlowSet{}, base_config(1.0));
  EXPECT_TRUE(result.feasible);
  EXPECT_EQ(result.active_switches, 0);
  EXPECT_EQ(result.network_power, 0.0);
}

TEST(Hierarchy, JointOptimizerMeetsSlaWithHierarchicalPlacement) {
  // End-to-end: the joint optimizer with the hierarchical consolidator
  // selected must produce a latency-feasible plan whose totals obey the
  // attribution sum contract.
  const Scenario scn = ScenarioBuilder().seed(1).fat_tree(4).build();
  Rng rng(11);
  const FlowSet background =
      make_background_flows(scn.flow_gen(), 6, 0.2, 0.1, rng);
  JointOptimizerConfig config;
  config.slack.samples_per_pair = 80;
  const HierarchicalConsolidator hier;
  const JointOptimizer optimizer = scn.optimizer(config, &hier);
  PlanRequest request;
  request.background = &background;
  request.utilization = 0.2;
  const JointPlan plan = optimizer.optimize(request);
  ASSERT_TRUE(plan.feasible);
  EXPECT_LE(plan.slack.total_p95, config.latency_constraint);
  EXPECT_EQ(plan.network_power, plan.placement.network_power);
  EXPECT_EQ(plan.total_power, plan.network_power + plan.server_power_w);
  ConsolidationConfig placed = optimizer.config().consolidation;
  placed.scale_factor_k = plan.k;
  check_placement_valid(*scn.fat_tree(), plan.flows, placed, plan.placement,
                        "joint");
}

TEST(Hierarchy, EpochControllerRunsWithSelectableConsolidator) {
  const Scenario scn = ScenarioBuilder().seed(5).fat_tree(4).build();
  const HierarchicalConsolidator hier;
  EpochControllerConfig config;
  config.joint.slack.samples_per_pair = 60;
  config.samples_per_epoch = 40;
  config.consolidator = &hier;
  EpochController controller = scn.epoch_controller(config);
  Rng flows_rng(5);
  const FlowSet background =
      make_background_flows(scn.flow_gen(), 6, 0.25, 0.1, flows_rng);
  Rng rng(17);
  const EpochReport report = controller.run_epoch(background, 0.3, rng);
  EXPECT_TRUE(report.feasible);
  EXPECT_GT(report.network_power, 0.0);
}

}  // namespace
}  // namespace eprons
