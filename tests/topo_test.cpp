// Unit tests for src/topo: graph primitives, fat-tree construction, path
// enumeration, and the Fig. 9 aggregation policies.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <utility>

#include "topo/aggregation.h"
#include "topo/fattree.h"
#include "topo/graph.h"
#include "topo/path_catalog.h"

namespace eprons {
namespace {

TEST(Graph, AddAndQuery) {
  Graph g;
  const NodeId a = g.add_node(NodeType::Host, 0, 0, "a");
  const NodeId b = g.add_node(NodeType::EdgeSwitch, 0, 0, "b");
  const LinkId l = g.add_link(a, b, 1000.0);
  EXPECT_EQ(g.num_nodes(), 2u);
  EXPECT_EQ(g.num_links(), 1u);
  EXPECT_EQ(g.other_end(l, a), b);
  EXPECT_EQ(g.other_end(l, b), a);
  EXPECT_EQ(g.find_link(a, b), l);
  EXPECT_EQ(g.find_link(b, a), l);
  EXPECT_FALSE(g.is_switch(a));
  EXPECT_TRUE(g.is_switch(b));
}

TEST(Graph, RejectsBadLinks) {
  Graph g;
  const NodeId a = g.add_node(NodeType::Host, 0, 0, "a");
  const NodeId b = g.add_node(NodeType::Host, 0, 1, "b");
  EXPECT_THROW(g.add_link(a, a, 1.0), std::invalid_argument);
  EXPECT_THROW(g.add_link(a, b, 0.0), std::invalid_argument);
  g.add_link(a, b, 1.0);
  EXPECT_THROW(g.add_link(b, a, 1.0), std::invalid_argument);  // duplicate
}

TEST(Graph, PathLinksValidatesAdjacency) {
  Graph g;
  const NodeId a = g.add_node(NodeType::Host, 0, 0, "a");
  const NodeId b = g.add_node(NodeType::EdgeSwitch, 0, 0, "b");
  const NodeId c = g.add_node(NodeType::Host, 0, 1, "c");
  g.add_link(a, b, 1.0);
  g.add_link(b, c, 1.0);
  const auto links = g.path_links({a, b, c});
  EXPECT_EQ(links.size(), 2u);
  EXPECT_THROW(g.path_links({a, c}), std::invalid_argument);
}

TEST(FatTree, K4Dimensions) {
  const FatTree ft(4);
  EXPECT_EQ(ft.num_hosts(), 16);
  EXPECT_EQ(ft.num_core(), 4);
  EXPECT_EQ(ft.num_agg(), 8);
  EXPECT_EQ(ft.num_edge(), 8);
  EXPECT_EQ(ft.num_switches(), 20);
  EXPECT_EQ(ft.graph().num_nodes(), 36u);  // 16 hosts + 20 switches
  // Links: 16 host-edge + 16 edge-agg (4 per pod * 4 pods) + 16 agg-core.
  EXPECT_EQ(ft.graph().num_links(), 48u);
}

TEST(FatTree, K8Dimensions) {
  const FatTree ft(8);
  EXPECT_EQ(ft.num_hosts(), 128);
  EXPECT_EQ(ft.num_core(), 16);
  EXPECT_EQ(ft.num_switches(), 16 + 32 + 32);
}

TEST(FatTree, K16Dimensions) {
  // The hierarchical consolidator's target scale: no dense hosts^2
  // structure anywhere in the topology layer may be hit building it.
  const FatTree ft(16);
  EXPECT_EQ(ft.num_hosts(), 1024);
  EXPECT_EQ(ft.num_core(), 64);
  EXPECT_EQ(ft.num_agg(), 128);
  EXPECT_EQ(ft.num_edge(), 128);
  EXPECT_EQ(ft.num_pods(), 16);
  EXPECT_EQ(ft.hosts_per_pod(), 64);
  // 1024 host-edge + 1024 edge-agg + 1024 agg-core links.
  EXPECT_EQ(ft.graph().num_links(), 3072u);
}

TEST(FatTree, PodOfHostMatchesNodeMetadata) {
  // Regression: pod_of_host used a wrong divisor (k/4 instead of
  // (k/2)^2), mis-bucketing every host for every k. The node's own pod
  // annotation is ground truth.
  for (const int k : {4, 6, 8, 16}) {
    const FatTree ft(k);
    EXPECT_EQ(ft.hosts_per_pod() * ft.num_pods(), ft.num_hosts()) << k;
    for (int h = 0; h < ft.num_hosts(); ++h) {
      EXPECT_EQ(ft.pod_of_host(h), ft.graph().node(ft.host(h)).pod)
          << "k=" << k << " host " << h;
    }
  }
}

TEST(FatTree, PodSwitchMaskCoversExactlyThePodsEdgeAndAgg) {
  for (const int k : {4, 8}) {
    const FatTree ft(k);
    const Graph& g = ft.graph();
    for (int pod = 0; pod < ft.num_pods(); ++pod) {
      const std::vector<bool> mask = ft.pod_switch_mask(pod);
      ASSERT_EQ(mask.size(), static_cast<std::size_t>(g.num_nodes()));
      for (const Node& n : g.nodes()) {
        const bool expected =
            (n.type == NodeType::EdgeSwitch || n.type == NodeType::AggSwitch) &&
            n.pod == pod;
        EXPECT_EQ(mask[static_cast<std::size_t>(n.id)], expected)
            << "k=" << k << " pod " << pod << " node " << n.name;
      }
    }
  }
}

TEST(PathCatalog, SparseStorageMatchesAllPathsAtK16) {
  // The catalog's sparse shards must return exactly the all_paths list —
  // same order, same annotations — at the scale the dense layout could
  // not reach (1024 hosts would be 1M dense slots).
  const FatTree ft(16);
  const Graph& g = ft.graph();
  const PathCatalog catalog(&ft);
  // Same edge, same pod, cross pod; plus the last pair in the machine.
  const std::pair<int, int> pairs[] = {
      {0, 1}, {0, 9}, {0, 1023}, {517, 201}, {1023, 0}};
  for (const auto& [src, dst] : pairs) {
    const auto& cached = catalog.pair(src, dst);
    const auto reference = ft.all_paths(src, dst);
    ASSERT_EQ(cached.size(), reference.size()) << src << "->" << dst;
    for (std::size_t p = 0; p < cached.size(); ++p) {
      EXPECT_EQ(cached[p].nodes, reference[p]) << src << "->" << dst;
      ASSERT_EQ(cached[p].arc_slots.size(), reference[p].size() - 1);
      for (std::size_t h = 0; h + 1 < reference[p].size(); ++h) {
        const LinkId link = g.find_link(reference[p][h], reference[p][h + 1]);
        const bool forward = g.link(link).a == reference[p][h];
        EXPECT_EQ(cached[p].links[h], link);
        EXPECT_EQ(cached[p].arc_slots[h],
                  static_cast<std::uint32_t>(link) * 2 + (forward ? 0u : 1u));
        EXPECT_EQ(cached[p].host_adjacent[h] != 0,
                  !g.is_switch(reference[p][h]) ||
                      !g.is_switch(reference[p][h + 1]));
      }
    }
    // Second lookup hits the memoized entry and must be the same object.
    EXPECT_EQ(&catalog.pair(src, dst), &cached);
  }
}

TEST(FatTree, RejectsOddK) {
  EXPECT_THROW(FatTree(3), std::invalid_argument);
  EXPECT_THROW(FatTree(0), std::invalid_argument);
}

TEST(FatTree, NodeDegrees) {
  const FatTree ft(4);
  const Graph& g = ft.graph();
  for (const Node& n : g.nodes()) {
    const auto degree = g.links_of(n.id).size();
    switch (n.type) {
      case NodeType::Host: EXPECT_EQ(degree, 1u); break;
      case NodeType::EdgeSwitch: EXPECT_EQ(degree, 4u); break;  // 2 hosts+2 agg
      case NodeType::AggSwitch: EXPECT_EQ(degree, 4u); break;   // 2 edge+2 core
      case NodeType::CoreSwitch: EXPECT_EQ(degree, 4u); break;  // 1 agg per pod
    }
  }
}

TEST(FatTree, CoreWiringRowConvention) {
  // core(row, col) must connect to agg `row` of every pod.
  const FatTree ft(4);
  const Graph& g = ft.graph();
  for (int row = 0; row < 2; ++row) {
    for (int col = 0; col < 2; ++col) {
      for (int pod = 0; pod < 4; ++pod) {
        EXPECT_NE(g.find_link(ft.core(row, col), ft.agg(pod, row)),
                  kInvalidLink);
        EXPECT_EQ(g.find_link(ft.core(row, col), ft.agg(pod, 1 - row)),
                  kInvalidLink);
      }
    }
  }
}

TEST(FatTree, PathCounts) {
  const FatTree ft(4);
  // Same edge switch (hosts 0 and 1): one 2-hop path.
  EXPECT_EQ(ft.all_paths(0, 1).size(), 1u);
  // Same pod, different edge (hosts 0 and 2): k/2 = 2 paths.
  EXPECT_EQ(ft.all_paths(0, 2).size(), 2u);
  // Different pods (hosts 0 and 15): (k/2)^2 = 4 paths.
  EXPECT_EQ(ft.all_paths(0, 15).size(), 4u);
}

TEST(FatTree, PathsAreValidAndLoopFree) {
  const FatTree ft(4);
  const Graph& g = ft.graph();
  for (int dst = 1; dst < 16; ++dst) {
    for (const Path& p : ft.all_paths(0, dst)) {
      EXPECT_EQ(p.front(), ft.host(0));
      EXPECT_EQ(p.back(), ft.host(dst));
      EXPECT_NO_THROW(g.path_links(p));  // adjacency holds hop by hop
      const std::set<NodeId> unique(p.begin(), p.end());
      EXPECT_EQ(unique.size(), p.size());  // loop-free
    }
  }
}

TEST(FatTree, RejectsSelfPath) {
  const FatTree ft(4);
  EXPECT_THROW(ft.all_paths(3, 3), std::invalid_argument);
}

TEST(FatTree, ActivePathsFilterBySwitchMask) {
  const FatTree ft(4);
  std::vector<bool> all_on(ft.graph().num_nodes(), true);
  EXPECT_EQ(ft.active_paths(0, 15, all_on).size(), 4u);
  // Turn off core row 1: only paths through row 0 cores remain.
  std::vector<bool> mask = all_on;
  mask[static_cast<std::size_t>(ft.core(1, 0))] = false;
  mask[static_cast<std::size_t>(ft.core(1, 1))] = false;
  EXPECT_EQ(ft.active_paths(0, 15, mask).size(), 2u);
}

TEST(Aggregation, ActiveSwitchCountsMatchDesign) {
  const FatTree ft(4);
  const AggregationPolicies policies(&ft);
  EXPECT_EQ(policies.max_level(), 3);
  const std::vector<int> expect = {20, 18, 14, 13};
  for (int level = 0; level <= 3; ++level) {
    EXPECT_EQ(policies.policy(level).active_switches, expect[static_cast<std::size_t>(level)])
        << "level " << level;
  }
}

TEST(Aggregation, MonotoneShrinking) {
  const FatTree ft(4);
  const AggregationPolicies policies(&ft);
  // Every switch on at level L+1 is also on at level L.
  for (int level = 0; level < policies.max_level(); ++level) {
    const auto a = policies.policy(level).switch_on;
    const auto b = policies.policy(level + 1).switch_on;
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (b[i]) {
        EXPECT_TRUE(a[i]) << "node " << i << " level " << level;
      }
    }
  }
}

TEST(Aggregation, AllLevelsKeepHostsConnected) {
  const FatTree ft(4);
  const AggregationPolicies policies(&ft);
  const auto hosts = ft.graph().hosts();
  for (int level = 0; level <= policies.max_level(); ++level) {
    const auto policy = policies.policy(level);
    EXPECT_TRUE(ft.graph().connected(hosts[0], hosts, policy.switch_on))
        << "level " << level;
  }
}

TEST(Aggregation, EdgeSwitchesNeverTurnOff) {
  const FatTree ft(4);
  const AggregationPolicies policies(&ft);
  for (int level = 0; level <= policies.max_level(); ++level) {
    const auto policy = policies.policy(level);
    for (int pod = 0; pod < 4; ++pod) {
      for (int e = 0; e < 2; ++e) {
        EXPECT_TRUE(policy.switch_on[static_cast<std::size_t>(ft.edge(pod, e))]);
      }
    }
  }
}

TEST(Aggregation, OutOfRangeThrows) {
  const FatTree ft(4);
  const AggregationPolicies policies(&ft);
  EXPECT_THROW(policies.policy(-1), std::out_of_range);
  EXPECT_THROW(policies.policy(4), std::out_of_range);
}

TEST(Aggregation, LargerFatTreeHasMoreLevels) {
  const FatTree ft(8);
  const AggregationPolicies policies(&ft);
  EXPECT_EQ(policies.max_level(), 7);
  const auto hosts = ft.graph().hosts();
  for (int level = 0; level <= policies.max_level(); ++level) {
    const auto policy = policies.policy(level);
    EXPECT_TRUE(ft.graph().connected(hosts[0], hosts, policy.switch_on))
        << "level " << level;
  }
  // Minimal level for k=8: 1 core + 8 agg (1 per pod) + 32 edge = 41.
  EXPECT_EQ(policies.policy(7).active_switches, 41);
}

}  // namespace
}  // namespace eprons
