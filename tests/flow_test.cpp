// Unit tests for src/flow: flow sets, scaled demand, generators, and the
// 90th-percentile demand predictor.
#include <gtest/gtest.h>

#include "flow/demand_predictor.h"
#include "flow/flow.h"
#include "util/rng.h"

namespace eprons {
namespace {

TEST(Flow, ScaledDemandOnlyInflatesLatencySensitive) {
  Flow sensitive{0, 0, 1, 20.0, FlowClass::LatencySensitive};
  Flow tolerant{1, 0, 1, 900.0, FlowClass::LatencyTolerant};
  EXPECT_DOUBLE_EQ(sensitive.scaled_demand(3.0), 60.0);
  EXPECT_DOUBLE_EQ(tolerant.scaled_demand(3.0), 900.0);
}

TEST(FlowSet, AddAndTotals) {
  FlowSet flows;
  flows.add(0, 1, 100.0, FlowClass::LatencyTolerant);
  flows.add(1, 2, 20.0, FlowClass::LatencySensitive);
  EXPECT_EQ(flows.size(), 2u);
  EXPECT_DOUBLE_EQ(flows.total_demand(1.0), 120.0);
  EXPECT_DOUBLE_EQ(flows.total_demand(2.0), 140.0);
  EXPECT_EQ(flows.count(FlowClass::LatencySensitive), 1u);
}

TEST(FlowSet, RejectsBadFlows) {
  FlowSet flows;
  EXPECT_THROW(flows.add(3, 3, 1.0, FlowClass::LatencyTolerant),
               std::invalid_argument);
  EXPECT_THROW(flows.add(0, 1, -1.0, FlowClass::LatencyTolerant),
               std::invalid_argument);
}

TEST(FlowGen, BackgroundFlowsRespectConfig) {
  Rng rng(31);
  FlowGenConfig config;
  const FlowSet flows = make_background_flows(config, 10, 0.2, 0.1, rng);
  EXPECT_EQ(flows.size(), 10u);
  for (const Flow& f : flows.flows()) {
    EXPECT_EQ(f.cls, FlowClass::LatencyTolerant);
    EXPECT_NE(f.src_host, f.dst_host);
    EXPECT_GE(f.src_host, 0);
    EXPECT_LT(f.src_host, 16);
    EXPECT_GE(f.demand, 0.2 * 1000.0 * 0.9 - 1e-9);
    EXPECT_LE(f.demand, 0.2 * 1000.0 * 1.1 + 1e-9);
  }
}

TEST(FlowGen, QueryFlowsFormPartitionAggregatePattern) {
  FlowSet flows;
  add_query_flows(flows, /*aggregator=*/3, /*num_hosts=*/16, 5.0, 20.0);
  // 15 ISNs, a request and a reply each.
  EXPECT_EQ(flows.size(), 30u);
  EXPECT_EQ(flows.count(FlowClass::LatencySensitive), 30u);
  int requests = 0, replies = 0;
  for (const Flow& f : flows.flows()) {
    if (f.src_host == 3) {
      ++requests;
      EXPECT_DOUBLE_EQ(f.demand, 5.0);
    }
    if (f.dst_host == 3) {
      ++replies;
      EXPECT_DOUBLE_EQ(f.demand, 20.0);
    }
  }
  EXPECT_EQ(requests, 15);
  EXPECT_EQ(replies, 15);
}

TEST(DemandPredictor, PredictsConfiguredPercentile) {
  DemandPredictor predictor;  // default 90th percentile
  for (int i = 1; i <= 100; ++i) {
    predictor.add_sample(7, static_cast<double>(i));
  }
  EXPECT_DOUBLE_EQ(predictor.predict(7), 90.0);
}

TEST(DemandPredictor, UnknownFlowPredictsZero) {
  DemandPredictor predictor;
  EXPECT_DOUBLE_EQ(predictor.predict(99), 0.0);
}

TEST(DemandPredictor, WindowEvictsOldEpoch) {
  DemandPredictorConfig config;
  config.window = 10;
  DemandPredictor predictor(config);
  for (int i = 0; i < 10; ++i) predictor.add_sample(1, 1000.0);
  for (int i = 0; i < 10; ++i) predictor.add_sample(1, 5.0);
  EXPECT_DOUBLE_EQ(predictor.predict(1), 5.0);
  EXPECT_EQ(predictor.sample_count(1), 10u);
}

TEST(DemandPredictor, ForgetDropsState) {
  DemandPredictor predictor;
  predictor.add_sample(2, 100.0);
  predictor.forget(2);
  EXPECT_DOUBLE_EQ(predictor.predict(2), 0.0);
  EXPECT_EQ(predictor.sample_count(2), 0u);
}

TEST(DemandPredictor, TracksFlowsIndependently) {
  DemandPredictor predictor;
  predictor.add_sample(1, 10.0);
  predictor.add_sample(2, 99.0);
  EXPECT_DOUBLE_EQ(predictor.predict(1), 10.0);
  EXPECT_DOUBLE_EQ(predictor.predict(2), 99.0);
}

}  // namespace
}  // namespace eprons
