// Tests for the incremental planning layer: demand diffing
// (flow/demand_delta.h), warm-started consolidation (greedy + MILP), the
// branch-and-bound incumbent seeding, the PlanCache, and the joint
// optimizer's warm short-circuit — including the differential guarantee
// that incremental plans match cold plans across seeded churn scenarios.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "consolidate/greedy_consolidator.h"
#include "consolidate/milp_consolidator.h"
#include "core/joint_optimizer.h"
#include "core/plan_cache.h"
#include "dvfs/synthetic_workload.h"
#include "flow/demand_delta.h"
#include "lp/branch_and_bound.h"
#include "net/link_utilization.h"
#include "util/rng.h"

namespace eprons {
namespace {

// ---------------------------------------------------------------------------
// DemandDelta

FlowSet three_flows() {
  FlowSet flows;
  flows.add(0, 12, 900.0, FlowClass::LatencyTolerant);
  flows.add(1, 13, 20.0, FlowClass::LatencySensitive);
  flows.add(2, 14, 20.0, FlowClass::LatencySensitive);
  return flows;
}

TEST(DemandDelta, IdenticalSetsHaveEqualFingerprintsAndEmptyDelta) {
  const FlowSet a = three_flows();
  const FlowSet b = three_flows();
  EXPECT_EQ(demand_fingerprint(a), demand_fingerprint(b));
  const DemandDelta delta = diff_demands(a, b);
  EXPECT_TRUE(delta.identical());
  EXPECT_EQ(delta.unchanged, 3);
  EXPECT_DOUBLE_EQ(delta.churn_fraction(b.size()), 0.0);
}

TEST(DemandDelta, ResizeChangesFingerprintAndMarksResized) {
  const FlowSet a = three_flows();
  FlowSet b;
  b.add(0, 12, 900.0, FlowClass::LatencyTolerant);
  b.add(1, 13, 25.0, FlowClass::LatencySensitive);  // resized
  b.add(2, 14, 20.0, FlowClass::LatencySensitive);
  EXPECT_NE(demand_fingerprint(a), demand_fingerprint(b));
  const DemandDelta delta = diff_demands(a, b);
  EXPECT_FALSE(delta.identical());
  ASSERT_EQ(delta.resized.size(), 1u);
  EXPECT_EQ(delta.resized[0], 1);
  EXPECT_TRUE(delta.added.empty());
  EXPECT_TRUE(delta.removed.empty());
  EXPECT_EQ(delta.unchanged, 2);
}

TEST(DemandDelta, AppendedFlowIsAddedTruncatedTailIsRemoved) {
  const FlowSet a = three_flows();
  FlowSet grown = three_flows();
  grown.add(3, 15, 40.0, FlowClass::LatencyTolerant);
  const DemandDelta growth = diff_demands(a, grown);
  ASSERT_EQ(growth.added.size(), 1u);
  EXPECT_EQ(growth.added[0], 3);
  EXPECT_TRUE(growth.removed.empty());

  const DemandDelta shrink = diff_demands(grown, a);
  ASSERT_EQ(shrink.removed.size(), 1u);
  EXPECT_EQ(shrink.removed[0], 3);
  EXPECT_TRUE(shrink.added.empty());
}

TEST(DemandDelta, EndpointMismatchCountsAsRemovedPlusAdded) {
  const FlowSet a = three_flows();
  FlowSet b;
  b.add(0, 12, 900.0, FlowClass::LatencyTolerant);
  b.add(5, 9, 20.0, FlowClass::LatencySensitive);  // different endpoints
  b.add(2, 14, 20.0, FlowClass::LatencySensitive);
  const DemandDelta delta = diff_demands(a, b);
  ASSERT_EQ(delta.added.size(), 1u);
  ASSERT_EQ(delta.removed.size(), 1u);
  EXPECT_EQ(delta.added[0], 1);
  EXPECT_EQ(delta.removed[0], 1);
}

// ---------------------------------------------------------------------------
// Warm-started greedy consolidation: differential against the cold pack.

ConsolidationConfig churn_config(double k) {
  ConsolidationConfig config;
  config.scale_factor_k = k;
  return config;
}

/// Random placeable flow mix on the 4-ary fat-tree: a handful of moderate
/// tolerant flows plus latency-sensitive mice.
FlowSet random_flows(Rng& rng) {
  FlowSet flows;
  const int n = static_cast<int>(rng.uniform_int(3, 8));
  for (int i = 0; i < n; ++i) {
    const int src = static_cast<int>(rng.uniform_int(0, 15));
    int dst = static_cast<int>(rng.uniform_int(0, 15));
    if (dst == src) dst = (dst + 1) % 16;
    const bool sensitive = rng.bernoulli(0.5);
    const double demand = sensitive ? rng.uniform(5.0, 40.0)
                                    : rng.uniform(50.0, 400.0);
    flows.add(src, dst, demand,
              sensitive ? FlowClass::LatencySensitive
                        : FlowClass::LatencyTolerant);
  }
  return flows;
}

/// Gentle epoch churn: resize ~20% of flows by up to +/-5%.
FlowSet churned(const FlowSet& base, Rng& rng) {
  FlowSet out;
  for (std::size_t i = 0; i < base.size(); ++i) {
    const Flow& f = base[i];
    double demand = f.demand;
    if (rng.bernoulli(0.2)) demand *= rng.uniform(0.95, 1.05);
    out.add(f.src_host, f.dst_host, demand, f.cls);
  }
  return out;
}

/// Asserts `result` routes every flow within capacity minus the margin.
void expect_valid_placement(const FatTree& ft, const FlowSet& flows,
                            const ConsolidationConfig& config,
                            const ConsolidationResult& result) {
  ASSERT_EQ(result.flow_paths.size(), flows.size());
  LinkUtilization scaled(&ft.graph());
  for (std::size_t i = 0; i < flows.size(); ++i) {
    ASSERT_FALSE(result.flow_paths[i].empty()) << "flow " << i << " unrouted";
    scaled.add_path_load(result.flow_paths[i],
                         flows[i].scaled_demand(config.scale_factor_k));
  }
  // Host access links are charged unscaled demand by the packer, so only
  // assert the fabric-level invariant loosely: nothing exceeds capacity.
  EXPECT_LE(scaled.max_utilization(), 1.0 + 1e-9);
}

TEST(GreedyWarmStart, MatchesColdAcrossFiftySeededChurnScenarios) {
  const FatTree ft(4);
  const GreedyConsolidator greedy(&ft);
  const ConsolidationConfig config = churn_config(2.0);

  int warm_packs = 0;
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    Rng rng(seed);
    const FlowSet previous_flows = random_flows(rng);
    const ConsolidationResult previous =
        greedy.consolidate(ft, previous_flows, config);
    if (!previous.feasible) continue;  // unplaceable draw; skip

    const FlowSet next_flows = churned(previous_flows, rng);
    const ConsolidationResult cold = greedy.consolidate(ft, next_flows,
                                                        config);

    WarmStartHint hint;
    hint.previous_flows = &previous_flows;
    hint.previous = &previous;
    hint.max_extra_switches = 2;
    const ConsolidationResult warm =
        greedy.consolidate_incremental(ft, next_flows, config, &hint);

    // The differential contract: identical feasibility, and when feasible
    // the warm pack stays within the regression bound of the previous
    // plan and routes everything within capacity.
    EXPECT_EQ(warm.feasible, cold.feasible) << "seed " << seed;
    if (!warm.feasible) continue;
    expect_valid_placement(ft, next_flows, config, warm);
    if (warm.warm_started) {
      ++warm_packs;
      EXPECT_LE(warm.active_switches,
                previous.active_switches + hint.max_extra_switches)
          << "seed " << seed;
      // Resize-only churn keeps every previous path inheritable, so the
      // warm pack must not cost more switches than the cold pack plus the
      // bound (cold re-derives the previous routing).
      EXPECT_LE(warm.network_power,
                cold.network_power +
                    hint.max_extra_switches * config.switch_power)
          << "seed " << seed;
    } else {
      // Fallback path must be byte-equivalent to the cold pack.
      EXPECT_EQ(warm.network_power, cold.network_power) << "seed " << seed;
      EXPECT_EQ(warm.flow_paths, cold.flow_paths) << "seed " << seed;
    }
  }
  // The scenarios are gentle: the warm path must actually engage.
  EXPECT_GT(warm_packs, 25);
}

TEST(GreedyWarmStart, ResizeOnlyChurnKeepsThePreviousRouting) {
  const FatTree ft(4);
  const GreedyConsolidator greedy(&ft);
  const ConsolidationConfig config = churn_config(2.0);
  const FlowSet previous_flows = three_flows();
  const ConsolidationResult previous =
      greedy.consolidate(ft, previous_flows, config);
  ASSERT_TRUE(previous.feasible);

  FlowSet next;
  next.add(0, 12, 900.0, FlowClass::LatencyTolerant);
  next.add(1, 13, 20.2, FlowClass::LatencySensitive);  // +1%
  next.add(2, 14, 20.0, FlowClass::LatencySensitive);

  WarmStartHint hint;
  hint.previous_flows = &previous_flows;
  hint.previous = &previous;
  const ConsolidationResult warm =
      greedy.consolidate_incremental(ft, next, config, &hint);
  ASSERT_TRUE(warm.feasible);
  EXPECT_TRUE(warm.warm_started);
  EXPECT_EQ(warm.flow_paths, previous.flow_paths);
  EXPECT_EQ(warm.active_switches, previous.active_switches);
}

TEST(GreedyWarmStart, UnusableHintDegradesToCold) {
  const FatTree ft(4);
  const GreedyConsolidator greedy(&ft);
  const ConsolidationConfig config = churn_config(1.0);
  const FlowSet flows = three_flows();
  const ConsolidationResult cold = greedy.consolidate(ft, flows, config);

  const ConsolidationResult null_hint =
      greedy.consolidate_incremental(ft, flows, config, nullptr);
  EXPECT_FALSE(null_hint.warm_started);
  EXPECT_EQ(null_hint.flow_paths, cold.flow_paths);

  WarmStartHint misaligned;  // previous paths not index-aligned
  FlowSet other = three_flows();
  ConsolidationResult empty_previous;
  misaligned.previous_flows = &other;
  misaligned.previous = &empty_previous;
  EXPECT_FALSE(misaligned.usable());
  const ConsolidationResult fallback =
      greedy.consolidate_incremental(ft, flows, config, &misaligned);
  EXPECT_FALSE(fallback.warm_started);
  EXPECT_EQ(fallback.flow_paths, cold.flow_paths);
}

TEST(GreedyWarmStart, RegressionBoundForcesFullRepack) {
  const FatTree ft(4);
  const GreedyConsolidator greedy(&ft);
  const ConsolidationConfig config = churn_config(1.0);

  // Previous epoch: two mice sharing the left spine.
  FlowSet previous_flows;
  previous_flows.add(0, 12, 20.0, FlowClass::LatencySensitive);
  previous_flows.add(1, 13, 20.0, FlowClass::LatencySensitive);
  const ConsolidationResult previous =
      greedy.consolidate(ft, previous_flows, config);
  ASSERT_TRUE(previous.feasible);

  // Next epoch: four new elephants join — far beyond what a 0-extra-switch
  // incremental pack can absorb without regressing.
  FlowSet next = previous_flows;
  next.add(4, 8, 900.0, FlowClass::LatencyTolerant);
  next.add(5, 9, 900.0, FlowClass::LatencyTolerant);
  next.add(6, 10, 900.0, FlowClass::LatencyTolerant);
  next.add(7, 11, 900.0, FlowClass::LatencyTolerant);

  WarmStartHint hint;
  hint.previous_flows = &previous_flows;
  hint.previous = &previous;
  hint.max_extra_switches = 0;
  const ConsolidationResult warm =
      greedy.consolidate_incremental(ft, next, config, &hint);
  const ConsolidationResult cold = greedy.consolidate(ft, next, config);
  // The bound rejected the incremental pack; the result is the cold pack.
  EXPECT_FALSE(warm.warm_started);
  EXPECT_EQ(warm.feasible, cold.feasible);
  EXPECT_EQ(warm.flow_paths, cold.flow_paths);
}

// ---------------------------------------------------------------------------
// MILP warm start: the exact solver's optimum must never change.

TEST(MilpWarmStart, MatchesColdObjectiveAcrossFiftySeededChurnScenarios) {
  const FatTree ft(4);
  const MilpConsolidator milp(&ft);
  const ConsolidationConfig config = churn_config(2.0);

  int seeded = 0;
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    Rng rng(seed ^ 0xabcdef);
    FlowSet previous_flows;
    // Small instances keep 50 exact solves fast.
    const int n = static_cast<int>(rng.uniform_int(2, 4));
    for (int i = 0; i < n; ++i) {
      const int src = static_cast<int>(rng.uniform_int(0, 15));
      int dst = static_cast<int>(rng.uniform_int(0, 15));
      if (dst == src) dst = (dst + 1) % 16;
      previous_flows.add(src, dst, rng.uniform(10.0, 300.0),
                         rng.bernoulli(0.5) ? FlowClass::LatencySensitive
                                            : FlowClass::LatencyTolerant);
    }
    const ConsolidationResult previous =
        milp.consolidate(ft, previous_flows, config);
    if (!previous.feasible) continue;

    const FlowSet next_flows = churned(previous_flows, rng);
    const ConsolidationResult cold = milp.consolidate(ft, next_flows, config);

    WarmStartHint hint;
    hint.previous_flows = &previous_flows;
    hint.previous = &previous;
    const ConsolidationResult warm =
        milp.consolidate_incremental(ft, next_flows, config, &hint);

    EXPECT_EQ(warm.feasible, cold.feasible) << "seed " << seed;
    if (cold.feasible) {
      // Warm-starting seeds the incumbent; the model is unchanged, so the
      // proven optimum (network power) is identical.
      EXPECT_NEAR(warm.network_power, cold.network_power, 1e-6)
          << "seed " << seed;
    }
    if (warm.warm_started) ++seeded;
  }
  EXPECT_GT(seeded, 25);
}

TEST(MilpSolver, WarmHintSeedsIncumbentAndPreservesOptimum) {
  // min x + 2y  s.t.  x + y >= 1, binaries.
  lp::Model model(lp::Sense::Minimize);
  const int x = model.add_binary("x", 1.0);
  const int y = model.add_binary("y", 2.0);
  model.add_row("cover", lp::RowType::GreaterEqual, 1.0,
                {{x, 1.0}, {y, 1.0}});

  const lp::MilpSolver solver;
  const lp::Solution cold = solver.solve(model);
  ASSERT_TRUE(cold.ok());
  EXPECT_NEAR(cold.objective, 1.0, 1e-9);
  EXPECT_FALSE(solver.last_warm_start_used());

  const std::vector<double> feasible_hint = {0.0, 1.0};  // objective 2
  const lp::Solution warm = solver.solve(model, &feasible_hint);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(solver.last_warm_start_used());
  EXPECT_NEAR(warm.objective, 1.0, 1e-9);  // optimum, not the hint

  const std::vector<double> infeasible_hint = {0.0, 0.0};  // violates cover
  const lp::Solution rejected = solver.solve(model, &infeasible_hint);
  ASSERT_TRUE(rejected.ok());
  EXPECT_FALSE(solver.last_warm_start_used());
  EXPECT_NEAR(rejected.objective, 1.0, 1e-9);
}

TEST(MilpSolver, IsFeasibleAssignmentChecksBoundsIntegralityAndRows) {
  lp::Model model(lp::Sense::Minimize);
  const int x = model.add_binary("x", 1.0);
  const int y = model.add_binary("y", 1.0);
  model.add_row("cover", lp::RowType::GreaterEqual, 1.0,
                {{x, 1.0}, {y, 1.0}});
  EXPECT_TRUE(lp::is_feasible_assignment(model, {1.0, 0.0}, 1e-6));
  EXPECT_FALSE(lp::is_feasible_assignment(model, {0.0, 0.0}, 1e-6));  // row
  EXPECT_FALSE(lp::is_feasible_assignment(model, {0.5, 1.0}, 1e-6));  // int
  EXPECT_FALSE(lp::is_feasible_assignment(model, {1.0}, 1e-6));  // size
}

// ---------------------------------------------------------------------------
// PlanCache

JointPlan tagged_plan(double power) {
  JointPlan plan;
  plan.feasible = true;
  plan.total_power = power;
  return plan;
}

TEST(PlanCache, HitsOnIdenticalFingerprintMissesOnAnyKeyChange) {
  PlanCache cache(8);
  const FlowSet flows = three_flows();
  const std::uint64_t demand_fp = demand_fingerprint(flows);
  const std::uint64_t unconstrained = fingerprint_constraints({}, {}, 0.0);
  const PlanCacheKey key =
      make_plan_cache_key(demand_fp, unconstrained, 2.0, 0.3);
  cache.insert(key, tagged_plan(100.0));

  JointPlan out;
  ASSERT_TRUE(cache.find(key, &out));
  EXPECT_DOUBLE_EQ(out.total_power, 100.0);

  // Identical flows re-fingerprint to the same key.
  const PlanCacheKey same = make_plan_cache_key(
      demand_fingerprint(three_flows()), unconstrained, 2.0, 0.3);
  EXPECT_TRUE(cache.find(same, &out));

  // Any key component change misses: demands, constraints, K, utilization.
  FlowSet resized = three_flows();
  resized.add(3, 15, 1.0, FlowClass::LatencyTolerant);
  EXPECT_FALSE(cache.find(
      make_plan_cache_key(demand_fingerprint(resized), unconstrained, 2.0,
                          0.3),
      &out));
  const std::uint64_t constrained = fingerprint_constraints(
      std::vector<bool>(36, true), {}, 0.0);
  EXPECT_NE(constrained, unconstrained);
  EXPECT_FALSE(
      cache.find(make_plan_cache_key(demand_fp, constrained, 2.0, 0.3),
                 &out));
  EXPECT_FALSE(
      cache.find(make_plan_cache_key(demand_fp, unconstrained, 2.5, 0.3),
                 &out));
  EXPECT_FALSE(
      cache.find(make_plan_cache_key(demand_fp, unconstrained, 2.0, 0.31),
                 &out));
}

TEST(PlanCache, EvictsOldestInsertionFirst) {
  PlanCache cache(2);
  const auto key = [](double k) {
    return make_plan_cache_key(1, 2, k, 0.5);
  };
  cache.insert(key(1.0), tagged_plan(1.0));
  cache.insert(key(2.0), tagged_plan(2.0));
  cache.insert(key(3.0), tagged_plan(3.0));  // evicts key(1.0)
  EXPECT_EQ(cache.size(), 2u);
  JointPlan out;
  EXPECT_FALSE(cache.find(key(1.0), &out));
  EXPECT_TRUE(cache.find(key(2.0), &out));
  EXPECT_TRUE(cache.find(key(3.0), &out));
  // Deterministic: a second identical sequence evicts identically.
  PlanCache replay(2);
  replay.insert(key(1.0), tagged_plan(1.0));
  replay.insert(key(2.0), tagged_plan(2.0));
  replay.insert(key(3.0), tagged_plan(3.0));
  EXPECT_FALSE(replay.find(key(1.0), &out));
  EXPECT_TRUE(replay.find(key(2.0), &out));
}

TEST(PlanCache, DuplicateInsertKeepsFirstAndZeroCapacityDisables) {
  PlanCache cache(4);
  const PlanCacheKey key = make_plan_cache_key(7, 7, 1.0, 0.1);
  cache.insert(key, tagged_plan(10.0));
  cache.insert(key, tagged_plan(99.0));
  EXPECT_EQ(cache.size(), 1u);
  JointPlan out;
  ASSERT_TRUE(cache.find(key, &out));
  EXPECT_DOUBLE_EQ(out.total_power, 10.0);

  PlanCache disabled(0);
  disabled.insert(key, tagged_plan(1.0));
  EXPECT_EQ(disabled.size(), 0u);
  EXPECT_FALSE(disabled.find(key, &out));
}

// ---------------------------------------------------------------------------
// JointOptimizer warm short-circuit: incremental == cold, end to end.

ServiceModel incremental_model() {
  Rng rng(31);
  SyntheticWorkloadConfig config;
  config.samples = 20000;
  config.bins = 256;
  return make_search_service_model(config, rng);
}

TEST(JointOptimizerIncremental, WarmPlanMatchesColdPlanOnLowChurnEpochs) {
  const FatTree topo(4);
  const ServiceModel model = incremental_model();
  const ServerPowerModel power;

  JointOptimizerConfig cold_cfg;
  cold_cfg.slack.samples_per_pair = 150;
  JointOptimizerConfig warm_cfg = cold_cfg;
  warm_cfg.incremental.enabled = true;
  const JointOptimizer cold_opt(&topo, &model, &power, cold_cfg);
  const JointOptimizer warm_opt(&topo, &model, &power, warm_cfg);

  FlowSet epoch0;
  epoch0.add(0, 12, 300.0, FlowClass::LatencyTolerant);
  epoch0.add(5, 9, 200.0, FlowClass::LatencyTolerant);
  FlowSet epoch1;
  epoch1.add(0, 12, 303.0, FlowClass::LatencyTolerant);  // +1%
  epoch1.add(5, 9, 200.0, FlowClass::LatencyTolerant);

  PlanRequest request0;
  request0.background = &epoch0;
  request0.utilization = 0.3;
  const JointPlan cold0 = cold_opt.optimize(request0);
  const JointPlan warm0 = warm_opt.optimize(request0);
  ASSERT_TRUE(cold0.feasible);
  EXPECT_EQ(warm0.k, cold0.k);
  EXPECT_DOUBLE_EQ(warm0.total_power, cold0.total_power);

  PlanRequest request1;
  request1.background = &epoch1;
  request1.utilization = 0.3;
  const JointPlan cold1 = cold_opt.optimize(request1);
  request1.previous = &warm0;
  const JointPlan warm1 = warm_opt.optimize(request1);
  ASSERT_TRUE(cold1.feasible);
  ASSERT_TRUE(warm1.feasible);
  EXPECT_EQ(warm1.k, cold1.k);
  EXPECT_DOUBLE_EQ(warm1.total_power, cold1.total_power);
  EXPECT_EQ(warm1.placement.switch_on, cold1.placement.switch_on);
}

TEST(JointOptimizerIncremental, RepeatedDemandsAreServedFromThePlanCache) {
  const FatTree topo(4);
  const ServiceModel model = incremental_model();
  const ServerPowerModel power;
  JointOptimizerConfig cfg;
  cfg.slack.samples_per_pair = 150;
  cfg.incremental.enabled = true;
  const JointOptimizer optimizer(&topo, &model, &power, cfg);

  FlowSet flows;
  flows.add(0, 12, 300.0, FlowClass::LatencyTolerant);

  PlanRequest request;
  request.background = &flows;
  request.utilization = 0.3;
  const JointPlan first = optimizer.optimize(request);
  request.previous = &first;
  const JointPlan again = optimizer.optimize(request);
  EXPECT_EQ(again.k, first.k);
  EXPECT_DOUBLE_EQ(again.total_power, first.total_power);
  EXPECT_EQ(again.placement.switch_on, first.placement.switch_on);
  EXPECT_EQ(again.placement.flow_paths, first.placement.flow_paths);
}

}  // namespace
}  // namespace eprons
