// Open-loop serving layer tests (ctest label `serve`):
//   * arrival generator: seed determinism (byte-identical streams), flash
//     placement determinism, process-composition invariants, and a
//     rate-conservation property (counts match the exact integrated rate
//     within Poisson counting error);
//   * policy layer: factory round-trips, token-bucket and SLA-aware
//     shedding behavior, deadline late-shed;
//   * serving harness: end-to-end run through EpochController re-planning,
//     per-window conservation, policy swap changing outcomes on identical
//     arrivals, and thread-count byte-equality of the serving JSONL log;
//   * golden ServingWindowRecord serialization.
#include <cmath>
#include <sstream>

#include <gtest/gtest.h>

#include "core/scenario.h"
#include "obs/jsonl.h"
#include "serve/arrivals.h"
#include "serve/policies.h"
#include "serve/serving_harness.h"

namespace eprons {
namespace {

ArrivalStreamConfig short_stream(std::uint64_t seed = 11) {
  ArrivalStreamConfig config;
  config.horizon = sec(600.0);
  config.peak_rate_qps = 50.0;
  config.seed = seed;
  config.flash.events_per_hour = 6.0;  // short horizon still sees events
  return config;
}

std::vector<SimTime> drain(ArrivalGenerator& gen) {
  std::vector<SimTime> times;
  for (SimTime t = gen.next(); t != kNoTime; t = gen.next()) {
    times.push_back(t);
  }
  return times;
}

TEST(Arrivals, SameSeedSameStreamBitIdentical) {
  ArrivalGenerator a(short_stream());
  ArrivalGenerator b(short_stream());
  const auto ta = drain(a);
  const auto tb = drain(b);
  ASSERT_EQ(ta.size(), tb.size());
  for (std::size_t i = 0; i < ta.size(); ++i) {
    // Byte-identical doubles, not approximately equal.
    EXPECT_EQ(ta[i], tb[i]) << "arrival " << i;
  }
  EXPECT_GT(ta.size(), 1000u);
}

TEST(Arrivals, DifferentSeedsDiverge) {
  ArrivalGenerator a(short_stream(11));
  ArrivalGenerator b(short_stream(12));
  const auto ta = drain(a);
  const auto tb = drain(b);
  ASSERT_FALSE(ta.empty());
  ASSERT_FALSE(tb.empty());
  EXPECT_TRUE(ta.size() != tb.size() || ta.front() != tb.front());
}

TEST(Arrivals, FlashPlacementDeterministic) {
  ArrivalGenerator a(short_stream());
  ArrivalGenerator b(short_stream());
  ASSERT_EQ(a.flash_events().size(), b.flash_events().size());
  for (std::size_t i = 0; i < a.flash_events().size(); ++i) {
    EXPECT_EQ(a.flash_events()[i].start, b.flash_events()[i].start);
    EXPECT_EQ(a.flash_events()[i].magnitude, b.flash_events()[i].magnitude);
  }
  ASSERT_EQ(a.burst_toggles().size(), b.burst_toggles().size());
  for (std::size_t i = 0; i < a.burst_toggles().size(); ++i) {
    EXPECT_EQ(a.burst_toggles()[i], b.burst_toggles()[i]);
  }
  // Flash events are sorted and inside the horizon; magnitudes respect the
  // bounded-Pareto range.
  const auto& config = a.config();
  SimTime prev = -1.0;
  for (const FlashCrowdEvent& event : a.flash_events()) {
    EXPECT_GE(event.start, prev);
    prev = event.start;
    EXPECT_LT(event.start, config.horizon);
    EXPECT_GE(event.magnitude, config.flash.magnitude_min);
    EXPECT_LE(event.magnitude, config.flash.magnitude_max);
  }
}

TEST(Arrivals, TogglingOneProcessKeepsOthersFixed) {
  // Dedicated Rng::split streams: disabling bursts must not move the flash
  // events (and vice versa).
  ArrivalStreamConfig with = short_stream();
  ArrivalStreamConfig without = short_stream();
  without.burst.enabled = false;
  ArrivalGenerator a(with);
  ArrivalGenerator b(without);
  ASSERT_EQ(a.flash_events().size(), b.flash_events().size());
  for (std::size_t i = 0; i < a.flash_events().size(); ++i) {
    EXPECT_EQ(a.flash_events()[i].start, b.flash_events()[i].start);
    EXPECT_EQ(a.flash_events()[i].magnitude, b.flash_events()[i].magnitude);
  }
  EXPECT_TRUE(b.burst_toggles().empty());
}

TEST(Arrivals, RateCeilingHolds) {
  ArrivalGenerator gen(short_stream());
  for (SimTime t = 0.0; t < gen.config().horizon; t += sec(1.0)) {
    EXPECT_LE(gen.rate_at(t), gen.max_rate() * (1.0 + 1e-12)) << "t=" << t;
  }
}

TEST(Arrivals, ArrivalsAreStrictlyIncreasingWithinHorizon) {
  ArrivalGenerator gen(short_stream());
  const auto times = drain(gen);
  for (std::size_t i = 1; i < times.size(); ++i) {
    EXPECT_GT(times[i], times[i - 1]);
  }
  EXPECT_LT(times.back(), gen.config().horizon);
  EXPECT_EQ(gen.next(), kNoTime);  // exhausted stays exhausted
}

TEST(Arrivals, RateConservationProperty) {
  // Counting property: over seeds, |N - integral(rate)| should look like
  // Poisson noise. Allow 6 sigma per seed — a deterministic bias (e.g. a
  // wrong integral or a broken thinning ceiling) blows through this for
  // every seed at these expectations (~30000).
  for (const std::uint64_t seed : {1ULL, 42ULL, 99ULL, 7ULL}) {
    ArrivalStreamConfig config = short_stream(seed);
    config.peak_rate_qps = 80.0;
    ArrivalGenerator gen(config);
    const double expected = gen.integrated_rate(0.0, config.horizon);
    ASSERT_GT(expected, 1000.0);
    const auto times = drain(gen);
    const double n = static_cast<double>(times.size());
    EXPECT_LE(std::abs(n - expected), 6.0 * std::sqrt(expected))
        << "seed " << seed << ": N=" << n << " expected=" << expected;
  }
}

TEST(Arrivals, IntegratedRateIsAdditive) {
  ArrivalGenerator gen(short_stream());
  const SimTime mid = sec(237.5);
  const double whole = gen.integrated_rate(0.0, gen.config().horizon);
  const double split = gen.integrated_rate(0.0, mid) +
                       gen.integrated_rate(mid, gen.config().horizon);
  EXPECT_NEAR(whole, split, 1e-9 * whole);
}

TEST(Arrivals, FlashEnvelopeShape) {
  FlashCrowdEvent event;
  event.start = 100.0;
  event.ramp = 10.0;
  event.hold = 20.0;
  event.decay = 40.0;
  event.magnitude = 5.0;
  EXPECT_EQ(event.envelope(99.0), 0.0);
  EXPECT_DOUBLE_EQ(event.envelope(105.0), 0.5);   // mid-ramp
  EXPECT_DOUBLE_EQ(event.envelope(120.0), 1.0);   // hold
  EXPECT_DOUBLE_EQ(event.envelope(150.0), 0.5);   // mid-decay
  EXPECT_EQ(event.envelope(170.0), 0.0);          // past end
  EXPECT_DOUBLE_EQ(event.end(), 170.0);
}

TEST(Policies, FactoriesRoundTripAndRejectUnknown) {
  for (const char* name : {"always", "token-bucket", "sla-aware"}) {
    auto policy = make_admission_policy(name);
    EXPECT_STREQ(policy->name(), name);
  }
  for (const char* name : {"never", "deadline"}) {
    auto policy = make_shed_policy(name);
    EXPECT_STREQ(policy->name(), name);
  }
  EXPECT_STREQ(make_routing_hint("static")->name(), "static");
  EXPECT_THROW(make_admission_policy("nope"), std::invalid_argument);
  EXPECT_THROW(make_shed_policy("nope"), std::invalid_argument);
  EXPECT_THROW(make_routing_hint("nope"), std::invalid_argument);
}

TEST(Policies, TokenBucketShedsAboveRate) {
  PolicyConfig config;
  config.bucket_rate_qps = 10.0;
  config.bucket_burst = 5.0;
  config.queue_bound = 0;
  TokenBucketPolicy policy(config);
  AdmissionContext ctx;
  int admitted = 0;
  // 100 arrivals in one second: the bucket holds 5 + refills 10.
  for (int i = 0; i < 100; ++i) {
    ctx.now = i * 1.0e4;  // 10 ms apart
    if (policy.decide(ctx) == AdmissionDecision::Admit) ++admitted;
  }
  EXPECT_GE(admitted, 14);
  EXPECT_LE(admitted, 16);
}

TEST(Policies, TokenBucketQueueBound) {
  PolicyConfig config;
  config.bucket_rate_qps = 1.0e9;  // never rate-limited
  config.queue_bound = 8;
  TokenBucketPolicy policy(config);
  AdmissionContext ctx;
  ctx.now = 1.0;
  ctx.queued = 8;
  EXPECT_EQ(policy.decide(ctx), AdmissionDecision::Shed);
  ctx.queued = 7;
  EXPECT_EQ(policy.decide(ctx), AdmissionDecision::Admit);
}

TEST(Policies, SlaAwareConsultsPlanSlack) {
  PolicyConfig config;
  config.sla_margin = 1.0;
  SlaAwareAdmissionPolicy policy(config);
  PolicySnapshot plan;
  plan.have_plan = true;
  plan.feasible = true;
  plan.effective_server_budget = ms(10.0);
  plan.latency_constraint = ms(30.0);
  AdmissionContext ctx;
  ctx.plan = &plan;
  ctx.sustainable_rate_qps = 1000.0;  // 1 query per ms of capacity
  ctx.inflight = 2;
  ctx.queued = 0;
  // Expected wait 3 ms < 10 ms budget: admit.
  EXPECT_EQ(policy.decide(ctx), AdmissionDecision::Admit);
  ctx.inflight = 30;
  // Expected wait 31 ms > 10 ms budget: shed.
  EXPECT_EQ(policy.decide(ctx), AdmissionDecision::Shed);
  // An infeasible plan halves the margin: 6 in flight (7 ms) now sheds.
  plan.feasible = false;
  ctx.inflight = 6;
  EXPECT_EQ(policy.decide(ctx), AdmissionDecision::Shed);
  plan.feasible = true;
  EXPECT_EQ(policy.decide(ctx), AdmissionDecision::Admit);
}

TEST(Policies, DeadlineShedDropsStaleQueries) {
  PolicyConfig config;
  config.deadline_fraction = 0.5;
  DeadlineShedPolicy policy(config);
  PolicySnapshot plan;
  plan.have_plan = true;
  plan.latency_constraint = ms(30.0);
  ShedContext ctx;
  ctx.plan = &plan;
  ctx.waited = ms(10.0);
  EXPECT_FALSE(policy.should_shed(ctx));
  ctx.waited = ms(16.0);
  EXPECT_TRUE(policy.should_shed(ctx));
}

TEST(Jsonl, ServingWindowGolden) {
  obs::ServingWindowRecord record;
  record.window = 3;
  record.epoch = 1;
  record.window_start_us = 180000000.0;
  record.window_end_us = 240000000.0;
  record.offered_qps = 42.5;
  record.arrivals = 2550;
  record.admitted = 2400;
  record.queued = 120;
  record.shed = 100;
  record.dropped = 50;
  record.late_shed = 7;
  record.completed = 2390;
  record.subqueries = 35850;
  record.sla_misses = 12;
  record.latency_p50_us = 9500.25;
  record.latency_p95_us = 21000.5;
  record.latency_p99_us = 28000.75;
  record.energy_per_admitted_j = 0.125;
  record.transition_penalized = 31;
  EXPECT_EQ(
      obs::to_jsonl(record),
      "{\"source\": \"serving_window\", \"window\": 3, \"epoch\": 1, "
      "\"window_start_us\": 180000000, \"window_end_us\": 240000000, "
      "\"offered_qps\": 42.5, \"arrivals\": 2550, \"admitted\": 2400, "
      "\"queued\": 120, \"shed\": 100, \"dropped\": 50, \"late_shed\": 7, "
      "\"completed\": 2390, \"subqueries\": 35850, \"sla_misses\": 12, "
      "\"latency_p50_us\": 9500.25, "
      "\"latency_p95_us\": 21000.5, \"latency_p99_us\": 28000.75, "
      "\"energy_per_admitted_j\": 0.125, \"transition_penalized\": 31}\n");
}

// ---- Harness fixtures ------------------------------------------------

Scenario serve_scenario(int threads = 0) {
  SyntheticWorkloadConfig workload;
  workload.samples = 20000;
  workload.bins = 256;
  ScenarioBuilder builder;
  builder.seed(1).fat_tree(4).workload(workload);
  if (threads > 0) builder.threads(threads);
  return builder.build();
}

ServingHarnessConfig harness_config(const Scenario& scn,
                                    double peak_qps = 60.0) {
  ServingHarnessConfig config;
  config.arrivals.horizon = sec(240.0);
  config.arrivals.peak_rate_qps = peak_qps;
  config.arrivals.seed = 11;
  config.arrivals.flash.events_per_hour = 15.0;
  config.arrivals.diurnal_start = 9.0 * 3600.0 * 1.0e6;
  config.epoch.transition.epoch_length = sec(80.0);
  config.epoch.joint.slack.samples_per_pair = 100;
  config.flow_gen = scn.flow_gen();
  config.report_window = sec(40.0);
  config.seed = 5;
  return config;
}

TEST(ServingHarness, OpenLoopRunCompletesThroughReplanning) {
  const Scenario scn = serve_scenario();
  ServingHarnessConfig config = harness_config(scn);
  ServingHarness harness(&scn.topology(), &scn.service_model(),
                         &scn.power_model(), config);
  const ServingReport report = harness.run();
  EXPECT_EQ(report.epochs, 3);  // 240 s at 80 s epochs
  EXPECT_EQ(static_cast<int>(report.windows.size()), 6);
  EXPECT_GT(report.arrivals, 1000);
  EXPECT_GT(report.completed, 0);
  EXPECT_GT(report.latency.p99, report.latency.p50);
  EXPECT_GT(report.total_energy_j, 0.0);
  // The SLA object is the per-subquery tail; at moderate load it should be
  // in the same regime as the closed-loop DES (integration bound: 15%).
  EXPECT_GT(report.subqueries_completed, 0);
  EXPECT_LT(static_cast<double>(report.sla_misses) /
                static_cast<double>(report.subqueries_completed),
            0.15);
  // Open loop: arrivals came from the generator, not the completion rate.
  ArrivalGenerator twin(config.arrivals);
  const double expected = twin.integrated_rate(0.0, config.arrivals.horizon);
  EXPECT_LE(std::abs(static_cast<double>(report.arrivals) - expected),
            6.0 * std::sqrt(expected));
}

TEST(ServingHarness, WindowConservationExact) {
  const Scenario scn = serve_scenario();
  ServingHarnessConfig config = harness_config(scn);
  ServingHarness harness(&scn.topology(), &scn.service_model(),
                         &scn.power_model(), config);
  const ServingReport report = harness.run();
  long long arrivals = 0, admitted = 0, shed = 0, dropped = 0;
  for (const auto& window : report.windows) {
    EXPECT_EQ(window.arrivals, window.admitted + window.shed + window.dropped)
        << "window " << window.window;
    EXPECT_LE(window.latency_p50_us, window.latency_p95_us);
    EXPECT_LE(window.latency_p95_us, window.latency_p99_us);
    arrivals += window.arrivals;
    admitted += window.admitted;
    shed += window.shed;
    dropped += window.dropped;
  }
  EXPECT_EQ(arrivals, report.arrivals);
  EXPECT_EQ(admitted, report.admitted);
  EXPECT_EQ(shed, report.shed);
  EXPECT_EQ(dropped, report.dropped);
}

TEST(ServingHarness, PolicySwapChangesOutcomesOnIdenticalArrivals) {
  const Scenario scn = serve_scenario();
  // Genuine overload: the substrate sustains ~1450 qps at f_max; offer
  // well above that with a tight in-flight cap so admission control
  // matters. Shorter horizon keeps the arrival count manageable.
  ServingHarnessConfig base = harness_config(scn, 2500.0);
  base.arrivals.horizon = sec(120.0);
  base.epoch.transition.epoch_length = sec(60.0);
  base.report_window = sec(60.0);
  base.max_inflight = 12;
  base.queue_limit = 24;

  ServingHarnessConfig always = base;
  always.admission = "always";
  ServingHarness h1(&scn.topology(), &scn.service_model(),
                    &scn.power_model(), always);
  const ServingReport r1 = h1.run();

  ServingHarnessConfig bucket = base;
  bucket.admission = "token-bucket";
  bucket.policy.bucket_rate_qps = 50.0;
  bucket.policy.bucket_burst = 20.0;
  ServingHarness h2(&scn.topology(), &scn.service_model(),
                    &scn.power_model(), bucket);
  const ServingReport r2 = h2.run();

  ServingHarnessConfig sla = base;
  sla.admission = "sla-aware";
  ServingHarness h3(&scn.topology(), &scn.service_model(),
                    &scn.power_model(), sla);
  const ServingReport r3 = h3.run();

  // Identical arrival streams (same ArrivalStreamConfig)...
  EXPECT_EQ(r1.arrivals, r2.arrivals);
  EXPECT_EQ(r1.arrivals, r3.arrivals);
  // ...different admission outcomes.
  EXPECT_EQ(r1.shed, 0);  // always-admit never sheds at the door
  EXPECT_GT(r2.shed, 0) << "token bucket must shed under overload";
  EXPECT_GT(r3.shed, 0) << "sla-aware must shed under overload";
  EXPECT_NE(r2.shed, r3.shed);
  // Always-admit pushes the overload into queue drops instead.
  EXPECT_GT(r1.dropped, 0);
}

TEST(ServingHarness, DeadlineShedDropsStaleUnderOverload) {
  const Scenario scn = serve_scenario();
  ServingHarnessConfig config = harness_config(scn, 400.0);
  config.max_inflight = 8;
  config.queue_limit = 64;
  config.shed = "deadline";
  ServingHarness harness(&scn.topology(), &scn.service_model(),
                         &scn.power_model(), config);
  const ServingReport report = harness.run();
  EXPECT_GT(report.late_shed, 0);
}

TEST(ServingHarness, EpochLogByteIdenticalAcrossThreads) {
  std::string logs[2];
  const int threads[2] = {1, 4};
  for (int i = 0; i < 2; ++i) {
    const Scenario scn = serve_scenario(threads[i]);
    std::ostringstream sink_stream;
    obs::JsonlWriter sink(&sink_stream);
    ServingHarnessConfig config = harness_config(scn);
    config.epoch.runtime.threads = threads[i];
    config.sink = &sink;
    ServingHarness harness(&scn.topology(), &scn.service_model(),
                           &scn.power_model(), config);
    (void)harness.run();
    logs[i] = sink_stream.str();
  }
  ASSERT_FALSE(logs[0].empty());
  EXPECT_EQ(logs[0], logs[1])
      << "serving JSONL must be byte-identical for any --threads";
}

TEST(ServingHarness, TransitionPenaltyChargedOnPathChange) {
  const Scenario scn = serve_scenario();
  // Strong diurnal swing across epochs forces K/placement changes; with a
  // huge penalty any straddling query blows the SLA visibly.
  ServingHarnessConfig config = harness_config(scn, 120.0);
  config.reconfig_penalty = ms(50.0);
  ServingHarness harness(&scn.topology(), &scn.service_model(),
                         &scn.power_model(), config);
  const ServingReport report = harness.run();
  long long penalized = 0;
  for (const auto& window : report.windows) {
    penalized += window.transition_penalized;
  }
  EXPECT_EQ(penalized, report.transition_penalized);
  // Not asserted > 0: placements can legitimately be stable across epochs.
}

TEST(SearchClusterBound, OverflowCounterUnderOpenLoopOverload) {
  // Satellite regression: with a bounded pending-query map, overload shows
  // up as queries_overflowed instead of unbounded memory growth.
  const Scenario scn = serve_scenario();
  Rng bg_rng(7);
  const FlowSet background =
      make_background_flows(scn.flow_gen(), 4, 0.1, 0.1, bg_rng);

  ScenarioConfig bounded;
  bounded.cluster.policy = "max";
  bounded.cluster.target_utilization = 3.0;  // far beyond capacity
  bounded.cluster.warmup = sec(0.2);
  bounded.cluster.duration = sec(1.0);
  bounded.cluster.max_inflight_queries = 64;
  const ScenarioResult r1 = scn.run(background, bounded);
  EXPECT_GT(r1.metrics.queries_overflowed, 0u);

  // Default (unbounded) keeps the legacy behavior: no overflows.
  ScenarioConfig unbounded = bounded;
  unbounded.cluster.max_inflight_queries = 0;
  const ScenarioResult r2 = scn.run(background, unbounded);
  EXPECT_EQ(r2.metrics.queries_overflowed, 0u);

  // At sane utilization the bound is never hit and metrics are unaffected.
  ScenarioConfig sane = bounded;
  sane.cluster.target_utilization = 0.3;
  const ScenarioResult r3 = scn.run(background, sane);
  EXPECT_EQ(r3.metrics.queries_overflowed, 0u);
  EXPECT_GT(r3.metrics.queries_completed, 0u);
}

}  // namespace
}  // namespace eprons
