#!/usr/bin/env python3
"""Grid-sweep runner for EPRONS benchmarks.

Runs a bench binary once per point of a parameter grid, capturing the
telemetry artifacts every binary already supports (`--epoch-log`,
`--metrics-out`) into one run directory per point, then (optionally)
feeds all run directories to tools/eprons_report.py for a single
cross-run report with diff tables.

    python3 tools/sweep.py build/bench/bench_fig13_joint_power \
        --out runs/fig13 --fixed duration=0.2 --sweep threads=1,4,8 \
        --sweep seed=1,2,3 --report

`--serve` is a preset for the open-loop serving binaries
(examples/serving_demo, bench/bench_serving_openloop): any axis not
already given via --sweep/--fixed defaults to the serving grid
peak-qps=20,40,80 x admission=always,token-bucket,sla-aware, so

    python3 tools/sweep.py build/examples/serving_demo --serve \
        --out runs/serve --fixed horizon=900 --report

runs the full 9-cell grid and the serving section of the report.

Each run directory `<out>/<flag-v_flag-v...>/` contains:
    epoch.jsonl   the --epoch-log stream (attribution + plan_explain + ...)
    metrics.json  the --metrics-out registry snapshot
    stdout.txt    the bench table output
    meta.json     exact argv, flags, and exit code for reproduction

Grid values are swept in the order given; flags are passed as
`--name=value`. The script exits non-zero if any run fails, but still
runs the remaining grid points first. Stdlib only.
"""
import argparse
import itertools
import json
import subprocess
import sys
from pathlib import Path


def parse_kv(spec, allow_list):
    if "=" not in spec:
        raise SystemExit(f"bad flag spec '{spec}' (want name=value)")
    name, _, value = spec.partition("=")
    values = value.split(",") if allow_list else [value]
    if not name or any(not v for v in values):
        raise SystemExit(f"bad flag spec '{spec}'")
    return name, values


def run_name(point):
    return "_".join(f"{k}-{v}" for k, v in point)


def main():
    parser = argparse.ArgumentParser(
        description="run a bench binary over a parameter grid")
    parser.add_argument("binary", help="bench executable to run")
    parser.add_argument("--out", required=True, help="sweep output directory")
    parser.add_argument("--fixed", action="append", default=[],
                        metavar="NAME=VALUE",
                        help="flag passed to every run (repeatable)")
    parser.add_argument("--sweep", action="append", default=[],
                        metavar="NAME=V1,V2,...",
                        help="flag swept over a comma list (repeatable)")
    parser.add_argument("--serve", action="store_true",
                        help="serving preset: add the default open-loop "
                             "grid (peak-qps x admission) for any axis "
                             "not given explicitly")
    parser.add_argument("--report", action="store_true",
                        help="build a cross-run report (with --check) "
                             "over all runs afterwards")
    parser.add_argument("--timeout", type=float, default=600.0,
                        help="per-run timeout in seconds (default 600)")
    args = parser.parse_args()

    binary = Path(args.binary)
    if not binary.is_file():
        raise SystemExit(f"{binary}: no such binary (build the repo first)")

    fixed = [parse_kv(s, allow_list=False) for s in args.fixed]
    sweep = [parse_kv(s, allow_list=True) for s in args.sweep]
    if args.serve:
        given = {n for n, _ in fixed} | {n for n, _ in sweep}
        for name, values in [
                ("peak-qps", ["20", "40", "80"]),
                ("admission", ["always", "token-bucket", "sla-aware"])]:
            if name not in given:
                sweep.append((name, values))
    grid = [list(zip([n for n, _ in sweep], combo))
            for combo in itertools.product(*[vals for _, vals in sweep])]
    if not grid:
        grid = [[]]

    out_root = Path(args.out)
    out_root.mkdir(parents=True, exist_ok=True)

    failures = 0
    run_dirs = []
    for point in grid:
        name = run_name(point) or "run"
        run_dir = out_root / name
        run_dir.mkdir(parents=True, exist_ok=True)
        cmd = [str(binary)]
        for flag_name, values in fixed:
            cmd.append(f"--{flag_name}={values[0]}")
        for flag_name, value in point:
            cmd.append(f"--{flag_name}={value}")
        cmd.append(f"--epoch-log={run_dir / 'epoch.jsonl'}")
        cmd.append(f"--metrics-out={run_dir / 'metrics.json'}")
        print(f"[sweep] {name}: {' '.join(cmd)}", flush=True)
        try:
            proc = subprocess.run(cmd, capture_output=True, text=True,
                                  timeout=args.timeout)
            exit_code = proc.returncode
            stdout, stderr = proc.stdout, proc.stderr
        except subprocess.TimeoutExpired as err:
            exit_code = -1
            stdout = err.stdout or ""
            stderr = (err.stderr or "") + f"\n[sweep] timeout after "\
                f"{args.timeout}s"
        (run_dir / "stdout.txt").write_text(stdout)
        if stderr:
            (run_dir / "stderr.txt").write_text(stderr)
        meta = {"cmd": cmd, "fixed": dict((n, v[0]) for n, v in fixed),
                "point": dict(point), "exit_code": exit_code}
        (run_dir / "meta.json").write_text(json.dumps(meta, indent=2) + "\n")
        if exit_code != 0:
            failures += 1
            print(f"[sweep] {name}: FAILED (exit {exit_code})",
                  file=sys.stderr, flush=True)
        else:
            run_dirs.append(run_dir)

    print(f"[sweep] {len(grid) - failures}/{len(grid)} runs succeeded; "
          f"artifacts in {out_root}")

    if args.report and run_dirs:
        report_cmd = [sys.executable,
                      str(Path(__file__).resolve().parent /
                          "eprons_report.py"),
                      *[str(d) for d in run_dirs],
                      "--out", str(out_root), "--check"]
        print(f"[sweep] {' '.join(report_cmd)}", flush=True)
        if subprocess.run(report_cmd).returncode != 0:
            failures += 1

    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
