#!/usr/bin/env python3
"""Turn EPRONS run artifacts (epoch JSONL + optional metrics snapshots)
into a markdown/JSON report, and verify the attribution ledger invariants.

A *run* is either a JSONL file produced via `--epoch-log=FILE`, or a run
directory produced by tools/sweep.py (containing `epoch.jsonl` and
optionally `metrics.json` from `--metrics-out`). The JSONL stream mixes
record types distinguished by their "source" field:

  epoch_controller / trace_replay  scalar per-epoch totals (obs/jsonl.h)
  attribution                      per-epoch energy & SLA ledger
  plan_explain                     candidate-K table with reject reasons
  fault_recovery                   emergency re-plan timeline
  serving_window                   open-loop serving report windows (serve/)

The report covers: power breakdown per layer/component (with shares),
latency budget split and p50/p95/p99 from metrics histograms, the
planner's chosen-K/path/reject statistics, the fault-recovery timeline,
and a cross-run diff table when several runs are given.

For serving runs, `--check` also enforces each window's conservation
invariant exactly: arrivals == admitted + shed + dropped (integer
counts, decided at arrival time — late sheds are tracked separately),
plus p50 <= p95 <= p99 ordering and count sanity.

`--check` verifies the ledger's bit-exactness contract (obs/attribution.h):
the C++ producers *define* every headline total as a fixed-order sum of
the components emitted next to it, the %.17g JSON encoding round-trips
doubles exactly, and Python floats are the same IEEE doubles — so the
re-computed sums here must equal the recorded totals *exactly* (`==`, no
epsilon). Any mismatch is a real producer bug, and the script exits 1.

Stdlib only — no pip installs.

    python3 tools/eprons_report.py run.jsonl --out reports/
    python3 tools/eprons_report.py runs/t1 runs/t4 runs/t8 --check
"""
import argparse
import json
import sys
from pathlib import Path


def load_jsonl(path):
    records = []
    with open(path) as fh:
        for line_no, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as err:
                raise SystemExit(f"{path}:{line_no}: invalid JSON: {err}")
    return records


def load_run(path):
    """Returns {'name', 'path', 'records', 'by_source', 'metrics'}."""
    path = Path(path)
    if path.is_dir():
        jsonl = path / "epoch.jsonl"
        if not jsonl.is_file():
            raise SystemExit(f"{path}: no epoch.jsonl in run directory")
        metrics_path = path / "metrics.json"
        name = path.name
    else:
        jsonl = path
        metrics_path = path.with_name("metrics.json")
        name = path.stem
    records = load_jsonl(jsonl)
    by_source = {}
    for r in records:
        by_source.setdefault(r.get("source", "?"), []).append(r)
    metrics = None
    if metrics_path.is_file():
        with open(metrics_path) as fh:
            metrics = json.load(fh)
    return {"name": name, "path": str(jsonl), "records": records,
            "by_source": by_source, "metrics": metrics}


# ---------------------------------------------------------------------------
# Invariant checks (exact float equality — see module docstring).

def check_attribution(rec, where):
    errors = []
    need = ["edge_w", "agg_w", "core_w", "link_w", "network_total_w",
            "server_idle_w", "server_dynamic_w", "server_dvfs_residual_w",
            "server_total_w", "total_w"]
    missing = [f for f in need if rec.get(f) is None]
    if missing:
        return [f"{where}: missing/null fields {missing}"]
    net = ((rec["edge_w"] + rec["agg_w"]) + rec["core_w"]) + rec["link_w"]
    if net != rec["network_total_w"]:
        errors.append(f"{where}: network components sum to {net!r}, total "
                      f"is {rec['network_total_w']!r}")
    srv = (rec["server_idle_w"] + rec["server_dynamic_w"]) \
        + rec["server_dvfs_residual_w"]
    if srv != rec["server_total_w"]:
        errors.append(f"{where}: server components sum to {srv!r}, total "
                      f"is {rec['server_total_w']!r}")
    total = rec["network_total_w"] + rec["server_total_w"]
    if total != rec["total_w"]:
        errors.append(f"{where}: network+server is {total!r}, total_w is "
                      f"{rec['total_w']!r}")
    switches = (rec.get("edge_switches", 0) + rec.get("agg_switches", 0)
                + rec.get("core_switches", 0))
    if rec.get("linger_switches", 0) > switches:
        errors.append(f"{where}: linger_switches exceeds active switches")
    return errors


def check_plan_explain(rec, where):
    errors = []
    if rec.get("chosen_k") is None:
        errors.append(f"{where}: plan_explain without chosen_k")
    candidates = rec.get("candidates", [])
    if not candidates:
        errors.append(f"{where}: plan_explain with empty candidate table")
    for c in candidates:
        if not c.get("feasible") and not c.get("reject_reason"):
            errors.append(f"{where}: rejected candidate K={c.get('k')} "
                          f"carries no reject_reason")
        if c.get("feasible") and c.get("reject_reason"):
            errors.append(f"{where}: feasible candidate K={c.get('k')} "
                          f"carries reject_reason "
                          f"{c.get('reject_reason')!r}")
    if rec.get("path") not in ("cold", "warm", "cache_hit"):
        errors.append(f"{where}: unknown plan path {rec.get('path')!r}")
    return errors


def check_serving_window(rec, where):
    errors = []
    need = ["arrivals", "admitted", "shed", "dropped", "late_shed",
            "completed", "subqueries", "sla_misses"]
    missing = [f for f in need if rec.get(f) is None]
    if missing:
        return [f"{where}: missing/null fields {missing}"]
    # Conservation is exact by construction (arrival-time classification):
    # integer counts, no epsilon.
    total = rec["admitted"] + rec["shed"] + rec["dropped"]
    if total != rec["arrivals"]:
        errors.append(f"{where}: admitted+shed+dropped is {total}, "
                      f"arrivals is {rec['arrivals']}")
    for f in need:
        if rec[f] < 0:
            errors.append(f"{where}: negative count {f}={rec[f]}")
    if rec["sla_misses"] > rec["subqueries"]:
        errors.append(f"{where}: sla_misses {rec['sla_misses']} exceeds "
                      f"subqueries {rec['subqueries']}")
    p50 = rec.get("latency_p50_us") or 0.0
    p95 = rec.get("latency_p95_us") or 0.0
    p99 = rec.get("latency_p99_us") or 0.0
    if not (p50 <= p95 <= p99):
        errors.append(f"{where}: latency percentiles out of order "
                      f"({p50!r}, {p95!r}, {p99!r})")
    if (rec.get("window_end_us") or 0.0) <= (rec.get("window_start_us")
                                             or 0.0):
        errors.append(f"{where}: empty or inverted window span")
    return errors


def check_run(run):
    errors = []
    for i, rec in enumerate(run["by_source"].get("attribution", [])):
        errors += check_attribution(rec, f"{run['path']} attribution[{i}]")
    for i, rec in enumerate(run["by_source"].get("plan_explain", [])):
        errors += check_plan_explain(rec, f"{run['path']} plan_explain[{i}]")
    for i, rec in enumerate(run["by_source"].get("serving_window", [])):
        errors += check_serving_window(
            rec, f"{run['path']} serving_window[{i}]")
    return errors


# ---------------------------------------------------------------------------
# Aggregation helpers.

def mean(values):
    values = list(values)
    return sum(values) / len(values) if values else 0.0


def power_summary(run):
    atts = run["by_source"].get("attribution", [])
    if not atts:
        return None
    fields = ["edge_w", "agg_w", "core_w", "link_w", "network_total_w",
              "linger_overhead_w", "server_idle_w", "server_dynamic_w",
              "server_dvfs_residual_w", "server_total_w", "total_w"]
    out = {f: mean(r.get(f) or 0.0 for r in atts) for f in fields}
    out["epochs"] = len(atts)
    out["feasible_epochs"] = sum(1 for r in atts if r.get("feasible"))
    return out


def latency_summary(run):
    atts = run["by_source"].get("attribution", [])
    out = {}
    if atts:
        out["constraint_us"] = mean(r.get("constraint_us") or 0 for r in atts)
        out["network_p95_us"] = mean(
            r.get("network_p95_us") or 0 for r in atts)
        out["network_p99_us"] = mean(
            r.get("network_p99_us") or 0 for r in atts)
        out["server_budget_us"] = mean(
            r.get("server_budget_us") or 0 for r in atts)
        charged = {}
        for r in atts:
            layer = r.get("miss_charged_to") or ""
            if layer:
                charged[layer] = charged.get(layer, 0) + 1
        out["miss_charged_to"] = charged
    hists = {}
    if run["metrics"]:
        for name, h in (run["metrics"].get("histograms") or {}).items():
            if h.get("count"):
                hists[name] = {k: h.get(k) for k in
                               ("count", "min", "p50", "p95", "p99", "max")}
    out["histograms"] = hists
    return out


def plan_summary(run):
    explains = run["by_source"].get("plan_explain", [])
    if not explains:
        return None
    chosen_k = {}
    paths = {}
    rejects = {}
    candidates = 0
    for r in explains:
        chosen_k[str(r.get("chosen_k"))] = \
            chosen_k.get(str(r.get("chosen_k")), 0) + 1
        paths[r.get("path", "?")] = paths.get(r.get("path", "?"), 0) + 1
        for c in r.get("candidates", []):
            candidates += 1
            reason = c.get("reject_reason") or ""
            if reason:
                rejects[reason] = rejects.get(reason, 0) + 1
    return {"plans": len(explains), "candidates": candidates,
            "chosen_k": chosen_k, "paths": paths, "reject_reasons": rejects}


def serving_summary(run):
    windows = run["by_source"].get("serving_window", [])
    if not windows:
        return None
    total = {f: sum(w.get(f) or 0 for w in windows)
             for f in ("arrivals", "admitted", "queued", "shed", "dropped",
                       "late_shed", "completed", "subqueries", "sla_misses",
                       "transition_penalized")}
    span_us = sum((w.get("window_end_us") or 0.0)
                  - (w.get("window_start_us") or 0.0) for w in windows)
    return {
        "windows": len(windows),
        "span_s": span_us / 1e6,
        **total,
        "offered_qps_mean": mean(w.get("offered_qps") or 0.0
                                 for w in windows),
        "miss_rate": (total["sla_misses"] / total["subqueries"]
                      if total["subqueries"] else 0.0),
        "shed_rate": (total["shed"] / total["arrivals"]
                      if total["arrivals"] else 0.0),
        "latency_p99_us_max": max((w.get("latency_p99_us") or 0.0)
                                  for w in windows),
        "energy_per_admitted_j_mean": mean(
            w.get("energy_per_admitted_j") or 0.0
            for w in windows if w.get("admitted")),
    }


def fault_timeline(run):
    return [
        {k: r.get(k) for k in
         ("epoch", "failed_switches", "failed_links", "hot_recovery",
          "replanned", "chosen_k", "k_bumped", "woken_backups",
          "emergency_boots", "flows_rerouted", "time_to_replan_us",
          "estimated_outage_violations")}
        for r in run["by_source"].get("fault_recovery", [])
    ]


def summarize(run, errors):
    return {
        "name": run["name"],
        "path": run["path"],
        "records": len(run["records"]),
        "sources": {s: len(v) for s, v in sorted(run["by_source"].items())},
        "power": power_summary(run),
        "latency": latency_summary(run),
        "plan": plan_summary(run),
        "serving": serving_summary(run),
        "faults": fault_timeline(run),
        "invariant_errors": errors,
    }


# ---------------------------------------------------------------------------
# Markdown rendering.

def fmt_w(x):
    return f"{x:.2f}"


def md_power_table(summaries):
    rows = [
        ("edge switches", "edge_w"), ("agg switches", "agg_w"),
        ("core switches", "core_w"), ("links", "link_w"),
        ("**network total**", "network_total_w"),
        ("· of which linger overhead", "linger_overhead_w"),
        ("server idle floor", "server_idle_w"),
        ("server dynamic @ f_max", "server_dynamic_w"),
        ("server DVFS residual", "server_dvfs_residual_w"),
        ("**server total**", "server_total_w"),
        ("**total**", "total_w"),
    ]
    header = "| component (mean W/epoch) | " + \
        " | ".join(s["name"] for s in summaries) + " |"
    sep = "|---" * (len(summaries) + 1) + "|"
    lines = [header, sep]
    for label, field in rows:
        cells = []
        for s in summaries:
            p = s["power"]
            cells.append(fmt_w(p[field]) if p else "-")
        lines.append(f"| {label} | " + " | ".join(cells) + " |")
    share = []
    for s in summaries:
        p = s["power"]
        if p and p["total_w"]:
            share.append(f"{100.0 * p['network_total_w'] / p['total_w']:.1f}%")
        else:
            share.append("-")
    lines.append("| network share of total | " + " | ".join(share) + " |")
    return lines


def md_latency(summaries):
    lines = ["| run | constraint us | network p95 us | network p99 us | "
             "server budget us |", "|---|---|---|---|---|"]
    for s in summaries:
        lat = s["latency"]
        if "constraint_us" not in lat:
            continue
        lines.append(
            f"| {s['name']} | {lat['constraint_us']:.0f} | "
            f"{lat['network_p95_us']:.1f} | {lat['network_p99_us']:.1f} | "
            f"{lat['server_budget_us']:.1f} |")
    hist_lines = []
    for s in summaries:
        for name, h in sorted(s["latency"].get("histograms", {}).items()):
            if "latency" in name or "slack" in name or "_us" in name:
                hist_lines.append(
                    f"| {s['name']} | {name} | {h['count']} | "
                    f"{h['p50']:.1f} | {h['p95']:.1f} | {h['p99']:.1f} |")
    if hist_lines:
        lines += ["", "| run | histogram | count | p50 | p95 | p99 |",
                  "|---|---|---|---|---|---|"] + hist_lines
    return lines


def md_plans(summaries):
    lines = []
    for s in summaries:
        plan = s["plan"]
        if not plan:
            continue
        lines.append(f"**{s['name']}** — {plan['plans']} plans, "
                     f"{plan['candidates']} candidates evaluated; paths: "
                     + ", ".join(f"{k}={v}" for k, v in
                                 sorted(plan["paths"].items()))
                     + "; chosen K: "
                     + ", ".join(f"K={k}×{v}" for k, v in
                                 sorted(plan["chosen_k"].items())))
        if plan["reject_reasons"]:
            lines.append("  rejected candidates: " + ", ".join(
                f"{k}×{v}" for k, v in sorted(plan["reject_reasons"].items())))
        lines.append("")
    return lines


def md_serving(summaries):
    rows = []
    for s in summaries:
        sv = s["serving"]
        if not sv:
            continue
        rows.append(
            f"| {s['name']} | {sv['windows']} | {sv['span_s']:.0f} | "
            f"{sv['offered_qps_mean']:.1f} | {sv['arrivals']} | "
            f"{100.0 * sv['admitted'] / sv['arrivals']:.2f}% | "
            f"{100.0 * sv['shed_rate']:.2f}% | "
            f"{sv['dropped'] + sv['late_shed']} | "
            f"{100.0 * sv['miss_rate']:.2f}% | "
            f"{sv['latency_p99_us_max'] / 1000.0:.1f} | "
            f"{sv['energy_per_admitted_j_mean']:.3f} |"
            if sv["arrivals"] else
            f"| {s['name']} | {sv['windows']} | {sv['span_s']:.0f} | "
            f"0.0 | 0 | - | - | 0 | - | 0.0 | 0.000 |")
    if not rows:
        return []
    return ["| run | windows | span s | offered qps | arrivals | admit | "
            "shed | drop | subq miss | worst p99 ms | J/query |",
            "|---|---|---|---|---|---|---|---|---|---|---|"] + rows


def md_faults(summaries):
    lines = []
    for s in summaries:
        if not s["faults"]:
            continue
        lines += [f"**{s['name']}**", "",
                  "| epoch | switches | links | recovery | K | boots | "
                  "rerouted | t_replan us | outage misses |",
                  "|---|---|---|---|---|---|---|---|---|"]
        for f in s["faults"]:
            kind = "hot" if f["hot_recovery"] else (
                "cold" if f["replanned"] else "none")
            lines.append(
                f"| {f['epoch']} | {f['failed_switches']} | "
                f"{f['failed_links']} | {kind} | {f['chosen_k']}"
                f"{' (bumped)' if f['k_bumped'] else ''} | "
                f"{f['emergency_boots']} | {f['flows_rerouted']} | "
                f"{f['time_to_replan_us']:.0f} | "
                f"{f['estimated_outage_violations']:.1f} |")
        lines.append("")
    return lines


def md_diff(summaries):
    base = summaries[0]
    lines = ["| metric | " + " | ".join(s["name"] for s in summaries)
             + " |", "|---" * (len(summaries) + 1) + "|"]
    for label, getter in [
        ("mean total W", lambda s: s["power"] and s["power"]["total_w"]),
        ("mean network W",
         lambda s: s["power"] and s["power"]["network_total_w"]),
        ("mean server W",
         lambda s: s["power"] and s["power"]["server_total_w"]),
        ("feasible epochs",
         lambda s: s["power"] and s["power"]["feasible_epochs"]),
        ("records", lambda s: s["records"]),
    ]:
        cells = []
        base_v = getter(base)
        for s in summaries:
            v = getter(s)
            if v is None:
                cells.append("-")
            elif isinstance(v, float) and isinstance(base_v, float) \
                    and base_v and s is not base:
                cells.append(f"{v:.2f} ({100.0 * (v - base_v) / base_v:+.2f}%)")
            elif isinstance(v, float):
                cells.append(f"{v:.2f}")
            else:
                cells.append(str(v))
        lines.append(f"| {label} | " + " | ".join(cells) + " |")
    return lines


def render_markdown(summaries, check_ran):
    lines = ["# EPRONS run report", ""]
    lines.append(f"Runs: {', '.join(s['name'] for s in summaries)}")
    lines.append("")
    total_errors = sum(len(s["invariant_errors"]) for s in summaries)
    if check_ran or total_errors:
        verdict = "PASS" if total_errors == 0 else f"FAIL ({total_errors})"
        lines += [f"Attribution ledger invariants: **{verdict}** — every "
                  "recorded total re-summed exactly (bit-identical float "
                  "equality) from its components.", ""]
        for s in summaries:
            for err in s["invariant_errors"]:
                lines.append(f"- {err}")
        if total_errors:
            lines.append("")
    lines += ["## Power breakdown", ""]
    lines += md_power_table(summaries)
    lines += ["", "## Latency budget", ""]
    lines += md_latency(summaries)
    plan_lines = md_plans(summaries)
    if plan_lines:
        lines += ["", "## Planner decisions", ""] + plan_lines
    serving_lines = md_serving(summaries)
    if serving_lines:
        lines += ["", "## Serving windows (open-loop)", ""] + serving_lines
    fault_lines = md_faults(summaries)
    if fault_lines:
        lines += ["", "## Fault-recovery timeline", ""] + fault_lines
    if len(summaries) > 1:
        lines += ["", "## Cross-run diff (vs first run)", ""]
        lines += md_diff(summaries)
    lines.append("")
    return "\n".join(lines)


def main():
    parser = argparse.ArgumentParser(
        description="EPRONS epoch-JSONL report generator / invariant checker")
    parser.add_argument("runs", nargs="+",
                        help="JSONL files or sweep.py run directories")
    parser.add_argument("--out", default=None,
                        help="directory for report.md/report.json "
                             "(default: print markdown to stdout)")
    parser.add_argument("--check", action="store_true",
                        help="verify attribution/plan-explain invariants; "
                             "exit 1 on any violation")
    args = parser.parse_args()

    summaries = []
    for path in args.runs:
        run = load_run(path)
        errors = check_run(run)
        summaries.append(summarize(run, errors))

    markdown = render_markdown(summaries, args.check)
    report = {"runs": summaries}
    if args.out:
        out = Path(args.out)
        out.mkdir(parents=True, exist_ok=True)
        (out / "report.md").write_text(markdown)
        (out / "report.json").write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {out / 'report.md'} and {out / 'report.json'}")
    else:
        print(markdown)

    total_errors = sum(len(s["invariant_errors"]) for s in summaries)
    if args.check:
        if total_errors:
            print(f"invariant check FAILED: {total_errors} violations",
                  file=sys.stderr)
            return 1
        atts = sum(s["sources"].get("attribution", 0) for s in summaries)
        plans = sum(s["sources"].get("plan_explain", 0) for s in summaries)
        if atts == 0 or plans == 0:
            print("invariant check FAILED: no attribution/plan_explain "
                  "records found (nothing was verified)", file=sys.stderr)
            return 1
        serving = sum(s["sources"].get("serving_window", 0)
                      for s in summaries)
        print(f"invariant check passed: {atts} attribution and {plans} "
              f"plan_explain records verified bit-exact"
              + (f"; {serving} serving windows conserved exactly"
                 if serving else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main())
