#!/usr/bin/env python3
"""Fail CI when a markdown file contains a broken relative link.

Scans every tracked *.md file (or the paths given as arguments) for inline
links/images `[text](target)` and verifies that relative targets resolve to
an existing file or directory. External links (http/https/mailto),
pure-anchor links (#section), and links inside fenced code blocks are
ignored; a `path#anchor` target is checked for the path part only.

Stdlib only — no pip installs. Exit status: 0 clean, 1 broken links found.

    python3 tools/check_markdown_links.py            # whole repo
    python3 tools/check_markdown_links.py README.md  # specific files
"""
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

# Inline links/images. [text](target "title") — target ends at the first
# space or the closing paren; nested parens don't occur in our targets.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
FENCE_RE = re.compile(r"^\s*(```|~~~)")
SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://")
SKIP_DIRS = {".git", "build", "build-tsan", "related"}


def markdown_files():
    for path in sorted(REPO_ROOT.rglob("*.md")):
        if not any(part in SKIP_DIRS for part in path.parts):
            yield path


def check_file(path: Path):
    broken = []
    in_fence = False
    for lineno, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        if FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in LINK_RE.finditer(line):
            target = match.group(1)
            if target.startswith(SKIP_SCHEMES) or target.startswith("#"):
                continue
            target_path = target.split("#", 1)[0]
            if not target_path:
                continue
            resolved = (path.parent / target_path).resolve()
            if not resolved.exists():
                broken.append((lineno, target))
    return broken


def main(argv):
    paths = [Path(a).resolve() for a in argv[1:]] or list(markdown_files())
    failures = 0
    for path in paths:
        for lineno, target in check_file(path):
            rel = path.relative_to(REPO_ROOT) if path.is_relative_to(REPO_ROOT) else path
            print(f"{rel}:{lineno}: broken link -> {target}")
            failures += 1
    if failures:
        print(f"\n{failures} broken relative link(s)")
        return 1
    print(f"checked {len(paths)} markdown file(s): all relative links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
