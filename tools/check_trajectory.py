#!/usr/bin/env python3
"""CI regression gate against a committed bench trajectory.

Two machine-independent contracts are enforced (wall-clock alone is
hardware noise on shared runners, so it is recorded but never gated):

1. **Ledger fingerprint** — every `--jsonl` file passed (the
   `--epoch-log` streams from runs at different `--threads` values) must
   be byte-identical. The attribution ledger is part of the planner's
   determinism surface; a divergent byte means a thread-count-dependent
   code path leaked into the epoch record.

2. **Within-run speedup** — `--perf` points at the stdout of
   bench_micro_parallel_planner, which measures the fast and reference
   pipelines in the *same* process on the *same* machine. Their ratio is
   machine-independent to first order, so it gates: the measured
   `speedup_vs_reference` must stay within `--max-regression` (default
   15%) of the newest committed trajectory point, and the bench's own
   `identical=yes` fingerprint verdict must be present.

    python3 tools/check_trajectory.py \
        --trajectory bench/trajectories/BENCH_7.json \
        --perf perf.txt --jsonl e1.jsonl e4.jsonl e8.jsonl

Exits 0 when every supplied gate passes, 1 otherwise. Stdlib only.
"""
import argparse
import hashlib
import json
import re
import sys
from pathlib import Path


def sha256_of(path):
    return hashlib.sha256(Path(path).read_bytes()).hexdigest()


def gate_jsonl(paths):
    digests = {p: sha256_of(p) for p in paths}
    for p, d in digests.items():
        print(f"[trajectory] {p}: sha256={d[:16]}")
    if len(set(digests.values())) != 1:
        print("[trajectory] FAIL: epoch-log streams differ across runs "
              "(thread-count-dependent ledger output)", file=sys.stderr)
        return False
    print(f"[trajectory] ledger fingerprint identical across "
          f"{len(paths)} runs")
    return True


def committed_speedup(trajectory):
    points = [p for p in trajectory.get("trajectory", [])
              if "speedup_vs_reference" in p]
    if not points:
        raise SystemExit("[trajectory] committed trajectory has no "
                         "speedup_vs_reference point to gate against")
    return points[-1]["speedup_vs_reference"], points[-1].get("label", "?")


def gate_perf(perf_path, trajectory, max_regression):
    text = Path(perf_path).read_text()
    ok = True
    if not re.search(r"^fingerprint fast=([0-9a-f]{16}) reference=\1 "
                     r"identical=yes$", text, re.M):
        print("[trajectory] FAIL: no matching 'identical=yes' fingerprint "
              "line in perf output", file=sys.stderr)
        ok = False
    m = re.search(r"serial cold sweep: reference ([0-9.]+) ms, "
                  r"fast ([0-9.]+) ms \(([0-9.]+)x\)", text)
    if not m:
        print("[trajectory] FAIL: no 'serial cold sweep' line in perf "
              "output", file=sys.stderr)
        return False
    measured = float(m.group(3))
    committed, label = committed_speedup(trajectory)
    floor = committed * (1.0 - max_regression)
    print(f"[trajectory] fast-vs-reference speedup: measured "
          f"{measured:.2f}x, committed {committed:.2f}x ({label}), "
          f"floor {floor:.2f}x at {max_regression:.0%} tolerance")
    if measured < floor:
        print(f"[trajectory] FAIL: speedup {measured:.2f}x regressed more "
              f"than {max_regression:.0%} below committed "
              f"{committed:.2f}x", file=sys.stderr)
        ok = False
    return ok


def gate_hierarchy(path, max_power_ratio, max_flowpath_ratio):
    """Gates the stdout of bench_ablation_hierarchy.

    Three machine-independent contracts:
      * every `hierarchical t=N` row prints the same placement
        fingerprint (thread-count determinism, within one run);
      * the k=4/k=8 power-gap tables stay under `max_power_ratio`
        (the decomposition's bounded optimality loss);
      * the k=16 cold sweep costs at most `max_flowpath_ratio` times the
        k=4 sweep per flow x candidate-path (the scale contract; raw
        wall-clock across scales only measures that the instance grew).
    """
    text = Path(path).read_text()
    ok = True

    fps = re.findall(r"hierarchical t=\d+\s+[0-9.]+\s+\d+\s+([0-9a-f]{16})",
                     text)
    if len(fps) < 2:
        print("[trajectory] FAIL: fewer than two 'hierarchical t=N' rows "
              "in hierarchy bench output", file=sys.stderr)
        ok = False
    elif len(set(fps)) != 1:
        print(f"[trajectory] FAIL: hierarchical fingerprints differ across "
              f"thread counts: {sorted(set(fps))}", file=sys.stderr)
        ok = False
    else:
        print(f"[trajectory] hierarchical fingerprint {fps[0]} identical "
              f"across {len(fps)} thread counts")

    gap_rows = re.findall(
        r"^(4|8)\s+\d+\s+(\d+)\s+[0-9.]+\s+[0-9.]+\s+[0-9.]+\s+([0-9.]+)\s*$",
        text, re.M)
    if not gap_rows:
        print("[trajectory] FAIL: no power-gap rows in hierarchy bench "
              "output", file=sys.stderr)
        ok = False
    for k_ary, compared, max_ratio in gap_rows:
        ratio = float(max_ratio)
        print(f"[trajectory] k={k_ary} power gap: {compared} instances, "
              f"max hier/flat ratio {ratio:.3f} (gate {max_power_ratio})")
        if int(compared) == 0 or ratio > max_power_ratio:
            print(f"[trajectory] FAIL: k={k_ary} power-gap gate violated",
                  file=sys.stderr)
            ok = False

    m = re.search(r"^k16_vs_k4_per_flowpath_ratio: ([0-9.]+)$", text, re.M)
    if not m:
        print("[trajectory] FAIL: no k16_vs_k4_per_flowpath_ratio line in "
              "hierarchy bench output", file=sys.stderr)
        ok = False
    else:
        ratio = float(m.group(1))
        print(f"[trajectory] k=16 per-flowpath sweep cost: {ratio:.3f}x the "
              f"k=4 sweep (gate {max_flowpath_ratio}x)")
        if ratio > max_flowpath_ratio:
            print(f"[trajectory] FAIL: k=16 per-flowpath cost {ratio:.3f}x "
                  f"exceeds {max_flowpath_ratio}x of the k=4 sweep",
                  file=sys.stderr)
            ok = False
    return ok


def gate_serving(paths, trajectory, max_regression):
    """Gates bench_serving_openloop stdout from >=1 runs (e.g. --threads
    1/4/8).

    Machine-independent contracts:
      * every run prints the same `serving-fingerprint` (the FNV-1a digest
        of all ServingWindowRecord lines) and the same
        `serving_total_arrivals` — the serving determinism surface: the
        arrival stream and the whole windowed report are thread-count
        invariant;
      * `serving_throughput_qps` (modeled completions per modeled second,
        not wall-clock) stays within `max_regression` of the newest
        committed trajectory point.
    """
    runs = []
    ok = True
    for path in paths:
        text = Path(path).read_text()
        fp = re.search(r"^serving-fingerprint: ([0-9a-f]{16})$", text, re.M)
        tp = re.search(r"^serving_throughput_qps: ([0-9.]+)$", text, re.M)
        ar = re.search(r"^serving_total_arrivals: (\d+)$", text, re.M)
        if not (fp and tp and ar):
            print(f"[trajectory] FAIL: {path} is missing serving trailer "
                  f"lines (fingerprint/throughput/arrivals)", file=sys.stderr)
            return False
        runs.append((path, fp.group(1), float(tp.group(1)),
                     int(ar.group(1))))

    fps = {r[1] for r in runs}
    arrivals = {r[3] for r in runs}
    if len(fps) != 1:
        print(f"[trajectory] FAIL: serving fingerprints differ across runs: "
              f"{sorted(fps)}", file=sys.stderr)
        ok = False
    if len(arrivals) != 1:
        print(f"[trajectory] FAIL: serving arrival counts differ across "
              f"runs: {sorted(arrivals)}", file=sys.stderr)
        ok = False
    if next(iter(arrivals)) <= 0:
        print("[trajectory] FAIL: serving run saw no arrivals",
              file=sys.stderr)
        ok = False
    if ok:
        print(f"[trajectory] serving fingerprint {runs[0][1]} and "
              f"{runs[0][3]} arrivals identical across {len(runs)} runs")

    points = [p for p in trajectory.get("trajectory", [])
              if "serving_throughput_qps" in p]
    if not points:
        print("[trajectory] FAIL: committed trajectory has no "
              "serving_throughput_qps point to gate against",
              file=sys.stderr)
        return False
    committed = points[-1]["serving_throughput_qps"]
    label = points[-1].get("label", "?")
    measured = runs[0][2]
    floor = committed * (1.0 - max_regression)
    print(f"[trajectory] serving throughput: measured {measured:.2f} qps, "
          f"committed {committed:.2f} qps ({label}), floor {floor:.2f} qps "
          f"at {max_regression:.0%} tolerance")
    if measured < floor:
        print(f"[trajectory] FAIL: serving throughput {measured:.2f} qps "
              f"regressed more than {max_regression:.0%} below committed "
              f"{committed:.2f} qps", file=sys.stderr)
        ok = False
    return ok


def main():
    parser = argparse.ArgumentParser(
        description="gate CI on the committed bench trajectory")
    parser.add_argument("--trajectory", required=True,
                        help="committed bench/trajectories/BENCH_N.json")
    parser.add_argument("--perf", default=None,
                        help="bench_micro_parallel_planner stdout to gate "
                             "the fast-vs-reference speedup")
    parser.add_argument("--jsonl", nargs="+", default=[],
                        help="epoch-log files that must be byte-identical")
    parser.add_argument("--max-regression", type=float, default=0.15,
                        help="allowed fractional speedup regression "
                             "(default 0.15)")
    parser.add_argument("--hierarchy", default=None,
                        help="bench_ablation_hierarchy stdout to gate the "
                             "cross-thread fingerprint, power gap, and "
                             "k=16 per-flowpath cost")
    parser.add_argument("--max-power-ratio", type=float, default=1.6,
                        help="allowed hier/flat power ratio on k=4/k=8 "
                             "(default 1.6)")
    parser.add_argument("--max-flowpath-ratio", type=float, default=2.0,
                        help="allowed k=16-vs-k=4 per-flowpath sweep cost "
                             "ratio (default 2.0)")
    parser.add_argument("--serving", nargs="+", default=[],
                        help="bench_serving_openloop stdout files (one per "
                             "--threads value) to gate the serving "
                             "fingerprint and modeled throughput")
    args = parser.parse_args()

    with open(args.trajectory) as fh:
        trajectory = json.load(fh)
    if (not args.perf and not args.hierarchy and not args.serving
            and len(args.jsonl) < 2):
        raise SystemExit("[trajectory] nothing to gate: pass --perf, "
                         "--hierarchy, --serving, and/or two or more "
                         "--jsonl files")

    ok = True
    if len(args.jsonl) >= 2:
        ok = gate_jsonl(args.jsonl) and ok
    elif args.jsonl:
        raise SystemExit("[trajectory] --jsonl needs at least two files "
                         "to compare")
    if args.perf:
        ok = gate_perf(args.perf, trajectory, args.max_regression) and ok
    if args.hierarchy:
        ok = gate_hierarchy(args.hierarchy, args.max_power_ratio,
                            args.max_flowpath_ratio) and ok
    if args.serving:
        ok = gate_serving(args.serving, trajectory,
                          args.max_regression) and ok

    if ok:
        print("[trajectory] all gates passed")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
