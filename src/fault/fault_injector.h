// Deterministic, seed-driven fault injection for the consolidated fabric.
//
// EPRONS concentrates traffic on a minimal subnet, which is exactly the
// configuration most fragile to an unplanned switch or link outage. This
// module generates a failure schedule up front — switch crashes, link
// outages, and flaky links that flap several times before settling — from a
// single seed, so every run (and every `--threads` setting) sees the
// bit-identical schedule. The schedule is consumed either by the DES
// (sim/search_cluster reroutes or drops flows mid-run) or by the epoch
// loop (core/epoch_controller's emergency re-plan), both through the same
// FaultCursor → topo::FailureOverlay pipeline.
//
// Determinism contract: generation is serial and draws from three
// Rng::split streams (arrival times, victim selection, repair times) of
// the root seed. Nothing here depends on thread count or wall clock.
#pragma once

#include <vector>

#include "topo/graph.h"
#include "util/rng.h"
#include "util/types.h"

namespace eprons {

enum class FaultType {
  SwitchCrash,  // a switch dies and reboots after a repair delay
  LinkDown,     // a single link outage with one repair
  LinkFlap,     // a flaky link: several short outages in quick succession
};

const char* fault_type_name(FaultType type);

/// One injected fault: the element goes down at `time` and is repaired at
/// `repair`. Exactly one of `node`/`link` is valid, keyed by `type`.
struct FaultEvent {
  SimTime time = 0.0;
  SimTime repair = 0.0;
  FaultType type = FaultType::LinkDown;
  NodeId node = kInvalidNode;
  LinkId link = kInvalidLink;
};

/// A fault schedule flattened into apply-order: `up == false` marks the
/// element failing, `up == true` its repair. Sorted by (time, repairs
/// first, node, link) so a repair and a re-failure at the same instant
/// leave the element failed — and so the order is total and seed-stable.
struct FaultTransition {
  SimTime time = 0.0;
  bool up = false;
  FaultType type = FaultType::LinkDown;
  NodeId node = kInvalidNode;
  LinkId link = kInvalidLink;
};

struct FaultInjectorConfig {
  /// Mean time between fault arrivals across the whole fabric (exponential).
  SimTime mtbf = sec(600.0);
  /// Mean time to repair one outage (exponential).
  SimTime mttr = sec(120.0);
  /// Probability an arrival hits a switch rather than a link.
  double switch_fraction = 0.4;
  /// Probability a link fault is a flap burst instead of one outage.
  double flaky_fraction = 0.25;
  /// Outages per flap burst; each lasts ~ mttr/flap_count with a gap of
  /// the same scale before the next.
  int flap_count = 3;
  /// Hosts are single-homed, so an edge-switch crash is a physical
  /// partition no re-plan can route around; by default crashes only hit
  /// aggregation and core switches, matching the paper's assumption that
  /// the edge tier stays powered (Section IV-B).
  bool spare_edge_switches = true;
  /// Faults arrive in [0, horizon); repairs may land past it.
  SimTime horizon = sec(7200.0);
  std::uint64_t seed = 7;
};

struct FaultSchedule {
  std::vector<FaultEvent> events;           // in arrival order
  std::vector<FaultTransition> timeline;    // flattened, apply-order
};

/// Generates the schedule for `graph` under `config`. Pure function of its
/// arguments; returns an empty schedule when the graph has no eligible
/// victims (e.g. switch_fraction == 1 on an edge-only topology).
FaultSchedule generate_fault_schedule(const Graph& graph,
                                      const FaultInjectorConfig& config);

/// Walks a timeline forward, applying transitions to a FailureOverlay.
/// Replays identically from any consumer: the DES steps it inside the
/// event loop, the epoch controller between polls.
class FaultCursor {
 public:
  FaultCursor(const Graph* graph, const std::vector<FaultTransition>* timeline)
      : overlay_(graph), timeline_(timeline) {}

  /// Applies every transition with time <= t; returns how many fired.
  int advance_to(SimTime t);

  bool exhausted() const { return next_ >= timeline_->size(); }
  /// Time of the next unapplied transition (meaningless when exhausted).
  SimTime next_time() const { return (*timeline_)[next_].time; }

  const FailureOverlay& overlay() const { return overlay_; }

 private:
  FailureOverlay overlay_;
  const std::vector<FaultTransition>* timeline_;
  std::size_t next_ = 0;
};

}  // namespace eprons
