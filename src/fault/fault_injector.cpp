#include "fault/fault_injector.h"

#include <algorithm>
#include <tuple>

#include "obs/telemetry.h"

namespace eprons {

const char* fault_type_name(FaultType type) {
  switch (type) {
    case FaultType::SwitchCrash: return "switch_crash";
    case FaultType::LinkDown: return "link_down";
    case FaultType::LinkFlap: return "link_flap";
  }
  return "?";
}

namespace {

void push_transitions(const FaultEvent& e,
                      std::vector<FaultTransition>& out) {
  out.push_back({e.time, false, e.type, e.node, e.link});
  out.push_back({e.repair, true, e.type, e.node, e.link});
}

}  // namespace

FaultSchedule generate_fault_schedule(const Graph& graph,
                                      const FaultInjectorConfig& config) {
  FaultSchedule schedule;

  std::vector<NodeId> victim_switches;
  for (const Node& n : graph.nodes()) {
    if (!is_switch_type(n.type)) continue;
    if (config.spare_edge_switches && n.type == NodeType::EdgeSwitch) continue;
    victim_switches.push_back(n.id);
  }
  const std::size_t num_links = graph.num_links();

  Rng root(config.seed);
  Rng arrivals = root.split();
  Rng victims = root.split();
  Rng repairs = root.split();

  // Flap bursts split one mean repair time across `flap_count` outages.
  const double flap_scale =
      config.mttr / static_cast<double>(std::max(config.flap_count, 1));

  SimTime t = 0.0;
  while (true) {
    t += arrivals.exponential(config.mtbf);
    if (t >= config.horizon) break;

    const bool hit_switch =
        victims.bernoulli(config.switch_fraction) && !victim_switches.empty();
    if (hit_switch) {
      const NodeId victim = victim_switches[static_cast<std::size_t>(
          victims.uniform_int(0, static_cast<std::int64_t>(
                                     victim_switches.size() - 1)))];
      FaultEvent e;
      e.time = t;
      e.repair = t + repairs.exponential(config.mttr);
      e.type = FaultType::SwitchCrash;
      e.node = victim;
      schedule.events.push_back(e);
      continue;
    }
    if (num_links == 0) continue;  // keep the stream draws above stable

    const LinkId victim = static_cast<LinkId>(
        victims.uniform_int(0, static_cast<std::int64_t>(num_links - 1)));
    if (victims.bernoulli(config.flaky_fraction)) {
      SimTime flap_start = t;
      for (int i = 0; i < std::max(config.flap_count, 1); ++i) {
        FaultEvent e;
        e.time = flap_start;
        e.repair = flap_start + repairs.exponential(flap_scale);
        e.type = FaultType::LinkFlap;
        e.link = victim;
        schedule.events.push_back(e);
        flap_start = e.repair + repairs.exponential(flap_scale);
      }
    } else {
      FaultEvent e;
      e.time = t;
      e.repair = t + repairs.exponential(config.mttr);
      e.type = FaultType::LinkDown;
      e.link = victim;
      schedule.events.push_back(e);
    }
  }

  schedule.timeline.reserve(schedule.events.size() * 2);
  for (const FaultEvent& e : schedule.events) {
    push_transitions(e, schedule.timeline);
  }
  std::sort(schedule.timeline.begin(), schedule.timeline.end(),
            [](const FaultTransition& a, const FaultTransition& b) {
              // Repairs before failures at the same instant: a
              // repair-then-refail collision leaves the element failed.
              return std::make_tuple(a.time, !a.up, a.node, a.link) <
                     std::make_tuple(b.time, !b.up, b.node, b.link);
            });
  return schedule;
}

int FaultCursor::advance_to(SimTime t) {
  static obs::Counter& injected = obs::metrics().counter("fault.injected");
  static obs::Counter& repaired = obs::metrics().counter("fault.repaired");
  int fired = 0;
  while (next_ < timeline_->size() && (*timeline_)[next_].time <= t) {
    const FaultTransition& tr = (*timeline_)[next_];
    if (tr.node != kInvalidNode) {
      tr.up ? overlay_.repair_node(tr.node) : overlay_.fail_node(tr.node);
    } else {
      tr.up ? overlay_.repair_link(tr.link) : overlay_.fail_link(tr.link);
    }
    (tr.up ? repaired : injected).add();
    ++next_;
    ++fired;
  }
  return fired;
}

}  // namespace eprons
