// Dense two-phase primal simplex.
//
// Solves the continuous relaxation of a `Model` (integrality flags are
// ignored here; `MilpSolver` layers branch-and-bound on top). The
// consolidation LPs this library generates are small and dense-ish
// (hundreds of rows/columns for a k=4 fat-tree), so a dense tableau with
// Dantzig pricing plus a Bland anti-cycling fallback is both simple and
// fast enough; the paper itself resorts to a heuristic for large instances.
#pragma once

#include "lp/model.h"

namespace eprons::lp {

struct SimplexOptions {
  /// Hard cap on pivots across both phases.
  int max_iterations = 200000;
  /// Numeric tolerance for reduced costs / feasibility.
  double tol = 1e-9;
  /// Switch from Dantzig to Bland's rule after this many consecutive
  /// degenerate pivots (guards against cycling).
  int degenerate_pivot_threshold = 200;
};

class SimplexSolver {
 public:
  explicit SimplexSolver(SimplexOptions options = {});

  /// Solves min/max c'x subject to the model's rows and bounds, treating
  /// every variable as continuous. On success `Solution::x` has one value
  /// per model variable, in order.
  Solution solve(const Model& model) const;

 private:
  SimplexOptions options_;
};

}  // namespace eprons::lp
