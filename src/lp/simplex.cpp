#include "lp/simplex.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace eprons::lp {

namespace {

// Internal standard-form problem:  min c'y  s.t.  A y = b,  y >= 0,  b >= 0.
// Model variables map onto one column (shifted by a finite lower bound) or
// two columns (free variables split as y+ - y-). Finite upper bounds become
// extra <= rows.
struct StdForm {
  int num_struct = 0;  // structural columns (before slacks/artificials)
  std::vector<double> cost;                // per structural column
  std::vector<std::vector<double>> rows;   // dense coefficients, struct cols
  std::vector<RowType> row_types;
  std::vector<double> rhs;
  // Recovery: for model var v, x_v = shift[v] + y[pos_col[v]] - y[neg_col[v]]
  // (neg_col == -1 unless the variable was free-split).
  std::vector<double> shift;
  std::vector<int> pos_col;
  std::vector<int> neg_col;
};

StdForm build_std_form(const Model& model) {
  StdForm sf;
  const int nv = model.num_variables();
  sf.shift.assign(static_cast<std::size_t>(nv), 0.0);
  sf.pos_col.assign(static_cast<std::size_t>(nv), -1);
  sf.neg_col.assign(static_cast<std::size_t>(nv), -1);

  const double sense_sign = model.sense() == Sense::Minimize ? 1.0 : -1.0;

  // Columns for variables.
  for (int v = 0; v < nv; ++v) {
    const Variable& var = model.variable(v);
    if (var.lower <= -kInfinity / 2) {
      // Free (or lower-unbounded) variable: split.
      sf.pos_col[static_cast<std::size_t>(v)] = sf.num_struct++;
      sf.neg_col[static_cast<std::size_t>(v)] = sf.num_struct++;
      sf.cost.push_back(sense_sign * var.objective);
      sf.cost.push_back(-sense_sign * var.objective);
    } else {
      sf.shift[static_cast<std::size_t>(v)] = var.lower;
      sf.pos_col[static_cast<std::size_t>(v)] = sf.num_struct++;
      sf.cost.push_back(sense_sign * var.objective);
    }
  }

  auto add_row = [&](RowType type, double rhs) {
    sf.rows.emplace_back(static_cast<std::size_t>(sf.num_struct), 0.0);
    sf.row_types.push_back(type);
    sf.rhs.push_back(rhs);
    return sf.rows.size() - 1;
  };
  auto put = [&](std::size_t row, int v, double coeff) {
    std::vector<double>& r = sf.rows[row];
    r[static_cast<std::size_t>(sf.pos_col[static_cast<std::size_t>(v)])] +=
        coeff;
    const int neg = sf.neg_col[static_cast<std::size_t>(v)];
    if (neg >= 0) r[static_cast<std::size_t>(neg)] -= coeff;
  };

  // Model rows, shifted by lower bounds.
  for (int r = 0; r < model.num_rows(); ++r) {
    const Row& row = model.row(r);
    double rhs = row.rhs;
    for (const RowEntry& e : row.entries) {
      rhs -= e.coeff * sf.shift[static_cast<std::size_t>(e.var)];
    }
    const std::size_t idx = add_row(row.type, rhs);
    for (const RowEntry& e : row.entries) put(idx, e.var, e.coeff);
  }

  // Finite upper bounds as rows: y_v <= upper - lower.
  for (int v = 0; v < nv; ++v) {
    const Variable& var = model.variable(v);
    if (var.upper >= kInfinity / 2) continue;
    const double span = var.upper - sf.shift[static_cast<std::size_t>(v)];
    const std::size_t idx = add_row(RowType::LessEqual, span);
    put(idx, v, 1.0);
  }

  // Normalize: rhs >= 0.
  for (std::size_t r = 0; r < sf.rows.size(); ++r) {
    if (sf.rhs[r] >= 0.0) continue;
    sf.rhs[r] = -sf.rhs[r];
    for (double& a : sf.rows[r]) a = -a;
    switch (sf.row_types[r]) {
      case RowType::LessEqual: sf.row_types[r] = RowType::GreaterEqual; break;
      case RowType::GreaterEqual: sf.row_types[r] = RowType::LessEqual; break;
      case RowType::Equal: break;
    }
  }
  return sf;
}

// Dense tableau simplex working state.
class Tableau {
 public:
  Tableau(const StdForm& sf, const SimplexOptions& options)
      : options_(options), m_(sf.rows.size()) {
    // Column layout: [structural | slacks/surplus | artificials].
    num_struct_ = static_cast<std::size_t>(sf.num_struct);
    std::size_t num_slack = 0;
    for (RowType t : sf.row_types) {
      if (t != RowType::Equal) ++num_slack;
    }
    // Artificials: for >= and = rows; also for <= rows the slack serves as
    // the initial basic column (no artificial needed).
    std::size_t num_art = 0;
    for (RowType t : sf.row_types) {
      if (t != RowType::LessEqual) ++num_art;
    }
    n_ = num_struct_ + num_slack + num_art;
    first_art_ = num_struct_ + num_slack;

    a_.assign(m_, std::vector<double>(n_, 0.0));
    b_ = sf.rhs;
    basis_.assign(m_, 0);

    std::size_t slack_at = num_struct_;
    std::size_t art_at = first_art_;
    for (std::size_t r = 0; r < m_; ++r) {
      for (std::size_t c = 0; c < num_struct_; ++c) a_[r][c] = sf.rows[r][c];
      switch (sf.row_types[r]) {
        case RowType::LessEqual:
          a_[r][slack_at] = 1.0;
          basis_[r] = slack_at++;
          break;
        case RowType::GreaterEqual:
          a_[r][slack_at] = -1.0;
          ++slack_at;
          a_[r][art_at] = 1.0;
          basis_[r] = art_at++;
          break;
        case RowType::Equal:
          a_[r][art_at] = 1.0;
          basis_[r] = art_at++;
          break;
      }
    }

    // Full cost vector for phase 2 (zero cost on slacks/artificials).
    cost2_.assign(n_, 0.0);
    for (std::size_t c = 0; c < num_struct_; ++c) cost2_[c] = sf.cost[c];
  }

  /// Runs phase 1 then phase 2. Returns the solve status.
  SolveStatus run() {
    // Phase 1: minimize sum of artificials.
    if (first_art_ < n_) {
      std::vector<double> cost1(n_, 0.0);
      for (std::size_t c = first_art_; c < n_; ++c) cost1[c] = 1.0;
      const SolveStatus st = optimize(cost1, /*forbid_artificials=*/false);
      if (st != SolveStatus::Optimal) return st;  // iteration limit only
      if (objective(cost1) > 1e-7) return SolveStatus::Infeasible;
      drive_out_artificials();
    }
    return optimize(cost2_, /*forbid_artificials=*/true);
  }

  double objective(const std::vector<double>& cost) const {
    double z = 0.0;
    for (std::size_t r = 0; r < m_; ++r) z += cost[basis_[r]] * b_[r];
    return z;
  }

  double phase2_objective() const { return objective(cost2_); }

  /// Value of structural column c in the current basic solution.
  std::vector<double> structural_solution() const {
    std::vector<double> y(num_struct_, 0.0);
    for (std::size_t r = 0; r < m_; ++r) {
      if (basis_[r] < num_struct_) y[basis_[r]] = b_[r];
    }
    return y;
  }

 private:
  // Reduced costs d_j = c_j - c_B' * (B^-1 A_j); tableau columns already
  // hold B^-1 A_j, so this is a dot product down each column.
  std::vector<double> reduced_costs(const std::vector<double>& cost) const {
    std::vector<double> d(cost);
    for (std::size_t r = 0; r < m_; ++r) {
      const double cb = cost[basis_[r]];
      if (cb == 0.0) continue;
      const std::vector<double>& row = a_[r];
      for (std::size_t c = 0; c < n_; ++c) d[c] -= cb * row[c];
    }
    return d;
  }

  SolveStatus optimize(const std::vector<double>& cost,
                       bool forbid_artificials) {
    int degenerate_streak = 0;
    for (int iter = 0; iter < options_.max_iterations; ++iter) {
      const std::vector<double> d = reduced_costs(cost);
      const bool bland = degenerate_streak > options_.degenerate_pivot_threshold;

      // Entering column.
      std::size_t enter = n_;
      double best = -options_.tol;
      const std::size_t limit = forbid_artificials ? first_art_ : n_;
      for (std::size_t c = 0; c < limit; ++c) {
        if (d[c] < best) {
          enter = c;
          if (bland) break;  // first eligible index
          best = d[c];
        } else if (bland && d[c] < -options_.tol) {
          enter = c;
          break;
        }
      }
      if (enter == n_) return SolveStatus::Optimal;

      // Ratio test.
      std::size_t leave = m_;
      double best_ratio = 0.0;
      for (std::size_t r = 0; r < m_; ++r) {
        const double arc = a_[r][enter];
        if (arc <= options_.tol) continue;
        const double ratio = b_[r] / arc;
        if (leave == m_ || ratio < best_ratio - options_.tol ||
            (ratio < best_ratio + options_.tol &&
             basis_[r] < basis_[leave])) {
          leave = r;
          best_ratio = ratio;
        }
      }
      if (leave == m_) return SolveStatus::Unbounded;

      degenerate_streak = best_ratio < options_.tol ? degenerate_streak + 1 : 0;
      pivot(leave, enter);
    }
    return SolveStatus::IterationLimit;
  }

  void pivot(std::size_t row, std::size_t col) {
    const double piv = a_[row][col];
    std::vector<double>& prow = a_[row];
    const double inv = 1.0 / piv;
    for (double& v : prow) v *= inv;
    b_[row] *= inv;
    for (std::size_t r = 0; r < m_; ++r) {
      if (r == row) continue;
      const double factor = a_[r][col];
      if (factor == 0.0) continue;
      std::vector<double>& target = a_[r];
      for (std::size_t c = 0; c < n_; ++c) target[c] -= factor * prow[c];
      target[col] = 0.0;  // pin exact zero against round-off
      b_[r] -= factor * b_[row];
      if (b_[r] < 0.0 && b_[r] > -1e-11) b_[r] = 0.0;
    }
    basis_[row] = col;
  }

  // After phase 1, any artificial still basic sits at zero; pivot it out on
  // a non-artificial column if possible, else the row is redundant and the
  // artificial can safely stay (it is forbidden from re-entering).
  void drive_out_artificials() {
    for (std::size_t r = 0; r < m_; ++r) {
      if (basis_[r] < first_art_) continue;
      for (std::size_t c = 0; c < first_art_; ++c) {
        if (std::abs(a_[r][c]) > 1e-8) {
          pivot(r, c);
          break;
        }
      }
    }
  }

  SimplexOptions options_;
  std::size_t m_;
  std::size_t n_ = 0;
  std::size_t num_struct_ = 0;
  std::size_t first_art_ = 0;
  std::vector<std::vector<double>> a_;
  std::vector<double> b_;
  std::vector<std::size_t> basis_;
  std::vector<double> cost2_;
};

}  // namespace

SimplexSolver::SimplexSolver(SimplexOptions options) : options_(options) {}

Solution SimplexSolver::solve(const Model& model) const {
  Solution sol;
  const StdForm sf = build_std_form(model);
  Tableau tab(sf, options_);
  sol.status = tab.run();
  if (sol.status != SolveStatus::Optimal) return sol;

  const std::vector<double> y = tab.structural_solution();
  sol.x.assign(static_cast<std::size_t>(model.num_variables()), 0.0);
  for (int v = 0; v < model.num_variables(); ++v) {
    const auto vi = static_cast<std::size_t>(v);
    double value = sf.shift[vi] + y[static_cast<std::size_t>(sf.pos_col[vi])];
    if (sf.neg_col[vi] >= 0) {
      value -= y[static_cast<std::size_t>(sf.neg_col[vi])];
    }
    sol.x[vi] = value;
  }
  sol.objective = model.objective_value(sol.x);
  return sol;
}

}  // namespace eprons::lp
