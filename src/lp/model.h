// Linear / mixed-integer program model builder.
//
// The consolidation optimizer (paper section IV-B, eqs. (2)-(9)) is expressed
// against this interface; `SimplexSolver` solves continuous relaxations and
// `MilpSolver` adds branch-and-bound for the binary ON/OFF and path-choice
// variables. The paper used CPLEX; no LP solver is available on this
// platform, so this module is a from-scratch substitute (see DESIGN.md).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace eprons::lp {

enum class Sense { Minimize, Maximize };
enum class RowType { LessEqual, Equal, GreaterEqual };

inline constexpr double kInfinity = 1e30;

struct Variable {
  std::string name;
  double lower = 0.0;
  double upper = kInfinity;
  double objective = 0.0;
  bool is_integer = false;
};

struct RowEntry {
  int var = -1;
  double coeff = 0.0;
};

struct Row {
  std::string name;
  RowType type = RowType::LessEqual;
  double rhs = 0.0;
  std::vector<RowEntry> entries;
};

class Model {
 public:
  explicit Model(Sense sense = Sense::Minimize) : sense_(sense) {}

  Sense sense() const { return sense_; }
  void set_sense(Sense sense) { sense_ = sense; }

  /// Objective constant (e.g. the N * Pserver term in eq. (2)).
  void set_objective_offset(double value) { offset_ = value; }
  double objective_offset() const { return offset_; }

  int add_variable(std::string name, double lower, double upper,
                   double objective, bool is_integer = false);
  /// Convenience: binary 0/1 variable.
  int add_binary(std::string name, double objective);

  int add_row(std::string name, RowType type, double rhs);
  void add_coeff(int row, int var, double coeff);
  /// Adds a complete row in one call.
  int add_row(std::string name, RowType type, double rhs,
              std::vector<RowEntry> entries);

  int num_variables() const { return static_cast<int>(vars_.size()); }
  int num_rows() const { return static_cast<int>(rows_.size()); }
  const Variable& variable(int i) const {
    return vars_[static_cast<std::size_t>(i)];
  }
  Variable& variable(int i) { return vars_[static_cast<std::size_t>(i)]; }
  const Row& row(int i) const { return rows_[static_cast<std::size_t>(i)]; }
  const std::vector<Variable>& variables() const { return vars_; }
  const std::vector<Row>& rows() const { return rows_; }

  /// Evaluates the objective (including offset) at a point.
  double objective_value(const std::vector<double>& x) const;

  /// Checks feasibility of a point against all rows and bounds.
  bool is_feasible(const std::vector<double>& x, double tol = 1e-6) const;

  /// Writes the model in CPLEX LP file format, so instances can be
  /// cross-checked against an external solver (the paper used CPLEX).
  void write_lp(std::ostream& os) const;

 private:
  Sense sense_;
  double offset_ = 0.0;
  std::vector<Variable> vars_;
  std::vector<Row> rows_;
};

enum class SolveStatus {
  Optimal,
  Infeasible,
  Unbounded,
  IterationLimit,
  NodeLimit,
  /// Branch-and-bound stopped early but holds a feasible incumbent.
  FeasibleIncumbent,
};

const char* solve_status_name(SolveStatus status);

struct Solution {
  SolveStatus status = SolveStatus::Infeasible;
  std::vector<double> x;
  double objective = 0.0;

  bool ok() const {
    return status == SolveStatus::Optimal ||
           status == SolveStatus::FeasibleIncumbent;
  }
};

}  // namespace eprons::lp
