#include "lp/model.h"

#include <cmath>
#include <ostream>
#include <stdexcept>

namespace eprons::lp {

const char* solve_status_name(SolveStatus status) {
  switch (status) {
    case SolveStatus::Optimal: return "optimal";
    case SolveStatus::Infeasible: return "infeasible";
    case SolveStatus::Unbounded: return "unbounded";
    case SolveStatus::IterationLimit: return "iteration-limit";
    case SolveStatus::NodeLimit: return "node-limit";
    case SolveStatus::FeasibleIncumbent: return "feasible-incumbent";
  }
  return "?";
}

int Model::add_variable(std::string name, double lower, double upper,
                        double objective, bool is_integer) {
  if (lower > upper) throw std::invalid_argument("variable bounds crossed");
  vars_.push_back(Variable{std::move(name), lower, upper, objective,
                           is_integer});
  return static_cast<int>(vars_.size()) - 1;
}

int Model::add_binary(std::string name, double objective) {
  return add_variable(std::move(name), 0.0, 1.0, objective,
                      /*is_integer=*/true);
}

int Model::add_row(std::string name, RowType type, double rhs) {
  rows_.push_back(Row{std::move(name), type, rhs, {}});
  return static_cast<int>(rows_.size()) - 1;
}

void Model::add_coeff(int row, int var, double coeff) {
  if (row < 0 || row >= num_rows()) throw std::out_of_range("bad row");
  if (var < 0 || var >= num_variables()) throw std::out_of_range("bad var");
  if (coeff == 0.0) return;
  rows_[static_cast<std::size_t>(row)].entries.push_back(RowEntry{var, coeff});
}

int Model::add_row(std::string name, RowType type, double rhs,
                   std::vector<RowEntry> entries) {
  for (const RowEntry& e : entries) {
    if (e.var < 0 || e.var >= num_variables()) {
      throw std::out_of_range("bad var in row");
    }
  }
  rows_.push_back(Row{std::move(name), type, rhs, std::move(entries)});
  return static_cast<int>(rows_.size()) - 1;
}

double Model::objective_value(const std::vector<double>& x) const {
  double value = offset_;
  for (std::size_t i = 0; i < vars_.size(); ++i) {
    value += vars_[i].objective * x[i];
  }
  return value;
}

bool Model::is_feasible(const std::vector<double>& x, double tol) const {
  if (x.size() != vars_.size()) return false;
  for (std::size_t i = 0; i < vars_.size(); ++i) {
    if (x[i] < vars_[i].lower - tol || x[i] > vars_[i].upper + tol) {
      return false;
    }
  }
  for (const Row& row : rows_) {
    double lhs = 0.0;
    for (const RowEntry& e : row.entries) {
      lhs += e.coeff * x[static_cast<std::size_t>(e.var)];
    }
    switch (row.type) {
      case RowType::LessEqual:
        if (lhs > row.rhs + tol) return false;
        break;
      case RowType::Equal:
        if (std::abs(lhs - row.rhs) > tol) return false;
        break;
      case RowType::GreaterEqual:
        if (lhs < row.rhs - tol) return false;
        break;
    }
  }
  return true;
}

void Model::write_lp(std::ostream& os) const {
  auto var_name = [&](int v) {
    const std::string& n = vars_[static_cast<std::size_t>(v)].name;
    return n.empty() ? "x" + std::to_string(v) : n;
  };
  os << (sense_ == Sense::Minimize ? "Minimize" : "Maximize") << "\n obj:";
  bool any = false;
  for (int v = 0; v < num_variables(); ++v) {
    const double c = vars_[static_cast<std::size_t>(v)].objective;
    if (c == 0.0) continue;
    os << (c >= 0 ? " + " : " - ") << std::abs(c) << ' ' << var_name(v);
    any = true;
  }
  if (!any) os << " 0";
  os << "\nSubject To\n";
  for (int r = 0; r < num_rows(); ++r) {
    const Row& row = rows_[static_cast<std::size_t>(r)];
    os << ' ' << (row.name.empty() ? "c" + std::to_string(r) : row.name)
       << ':';
    for (const RowEntry& e : row.entries) {
      os << (e.coeff >= 0 ? " + " : " - ") << std::abs(e.coeff) << ' '
         << var_name(e.var);
    }
    switch (row.type) {
      case RowType::LessEqual: os << " <= "; break;
      case RowType::Equal: os << " = "; break;
      case RowType::GreaterEqual: os << " >= "; break;
    }
    os << row.rhs << "\n";
  }
  os << "Bounds\n";
  for (int v = 0; v < num_variables(); ++v) {
    const Variable& var = vars_[static_cast<std::size_t>(v)];
    os << ' ';
    if (var.lower <= -kInfinity / 2) {
      os << "-inf";
    } else {
      os << var.lower;
    }
    os << " <= " << var_name(v) << " <= ";
    if (var.upper >= kInfinity / 2) {
      os << "+inf";
    } else {
      os << var.upper;
    }
    os << "\n";
  }
  bool has_int = false;
  for (const Variable& var : vars_) has_int |= var.is_integer;
  if (has_int) {
    os << "General\n";
    for (int v = 0; v < num_variables(); ++v) {
      if (vars_[static_cast<std::size_t>(v)].is_integer) {
        os << ' ' << var_name(v) << "\n";
      }
    }
  }
  os << "End\n";
}

}  // namespace eprons::lp
