// Branch-and-bound mixed-integer solver over the simplex relaxation.
//
// The consolidation MILP has binary switch/link ON-OFF variables (Y, X) and
// binary unsplittable-path choices (Z); everything else is continuous.
// Best-bound node selection with most-fractional branching is enough for the
// instance sizes we solve exactly (the paper, like us, falls back to a
// greedy heuristic beyond that — see consolidate/greedy_consolidator.h).
#pragma once

#include "lp/model.h"
#include "lp/simplex.h"

namespace eprons::lp {

struct MilpOptions {
  SimplexOptions simplex;
  /// Max branch-and-bound nodes before giving up (returns incumbent if any).
  int max_nodes = 200000;
  /// Integrality tolerance.
  double int_tol = 1e-6;
  /// Stop when (upper - lower) / max(1, |upper|) falls below this gap.
  double rel_gap = 1e-9;
};

class MilpSolver {
 public:
  explicit MilpSolver(MilpOptions options = {});

  /// Solves the model honoring `Variable::is_integer`. Status is:
  ///   Optimal            — proven optimal integer solution
  ///   FeasibleIncumbent  — node limit hit but an integer solution found
  ///   NodeLimit          — node limit hit with no integer solution
  ///   Infeasible / Unbounded — per the relaxation
  Solution solve(const Model& model) const;

  /// Warm-started solve: `incumbent_hint` (one value per model variable,
  /// e.g. the previous epoch's integer assignment) is validated against
  /// the model's bounds, integrality, and rows; when valid it seeds the
  /// branch-and-bound incumbent, so every node whose relaxation bound
  /// cannot beat the hint is pruned immediately. An invalid or null hint
  /// degrades to the cold solve — warm-starting never changes the
  /// reported objective, only the nodes explored to prove it.
  Solution solve(const Model& model,
                 const std::vector<double>* incumbent_hint) const;

  /// Nodes explored by the most recent solve (diagnostics / benches).
  long long last_node_count() const { return last_nodes_; }

  /// True when the most recent solve() accepted a warm-start incumbent.
  bool last_warm_start_used() const { return last_warm_used_; }

 private:
  MilpOptions options_;
  mutable long long last_nodes_ = 0;
  mutable bool last_warm_used_ = false;
};

/// True when `x` satisfies every bound, integrality requirement, and row
/// of `model` within `tol`. The warm-start validity check, exposed for
/// tests and for callers that construct incumbents by hand.
bool is_feasible_assignment(const Model& model, const std::vector<double>& x,
                            double tol);

}  // namespace eprons::lp
