// Branch-and-bound mixed-integer solver over the simplex relaxation.
//
// The consolidation MILP has binary switch/link ON-OFF variables (Y, X) and
// binary unsplittable-path choices (Z); everything else is continuous.
// Best-bound node selection with most-fractional branching is enough for the
// instance sizes we solve exactly (the paper, like us, falls back to a
// greedy heuristic beyond that — see consolidate/greedy.h).
#pragma once

#include "lp/model.h"
#include "lp/simplex.h"

namespace eprons::lp {

struct MilpOptions {
  SimplexOptions simplex;
  /// Max branch-and-bound nodes before giving up (returns incumbent if any).
  int max_nodes = 200000;
  /// Integrality tolerance.
  double int_tol = 1e-6;
  /// Stop when (upper - lower) / max(1, |upper|) falls below this gap.
  double rel_gap = 1e-9;
};

class MilpSolver {
 public:
  explicit MilpSolver(MilpOptions options = {});

  /// Solves the model honoring `Variable::is_integer`. Status is:
  ///   Optimal            — proven optimal integer solution
  ///   FeasibleIncumbent  — node limit hit but an integer solution found
  ///   NodeLimit          — node limit hit with no integer solution
  ///   Infeasible / Unbounded — per the relaxation
  Solution solve(const Model& model) const;

  /// Nodes explored by the most recent solve (diagnostics / benches).
  long long last_node_count() const { return last_nodes_; }

 private:
  MilpOptions options_;
  mutable long long last_nodes_ = 0;
};

}  // namespace eprons::lp
