#include "lp/branch_and_bound.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <vector>

namespace eprons::lp {

MilpSolver::MilpSolver(MilpOptions options) : options_(options) {}

bool is_feasible_assignment(const Model& model, const std::vector<double>& x,
                            double tol) {
  if (static_cast<int>(x.size()) != model.num_variables()) return false;
  for (int v = 0; v < model.num_variables(); ++v) {
    const Variable& var = model.variable(v);
    const double value = x[static_cast<std::size_t>(v)];
    if (var.is_integer &&
        std::abs(value - std::round(value)) > tol) {
      return false;
    }
  }
  return model.is_feasible(x, tol);
}

Solution MilpSolver::solve(const Model& model) const {
  return solve(model, nullptr);
}

Solution MilpSolver::solve(const Model& model,
                           const std::vector<double>* incumbent_hint) const {
  last_nodes_ = 0;
  last_warm_used_ = false;
  SimplexSolver simplex(options_.simplex);

  // Collect integer variables.
  std::vector<int> int_vars;
  for (int v = 0; v < model.num_variables(); ++v) {
    if (model.variable(v).is_integer) int_vars.push_back(v);
  }

  Solution root = simplex.solve(model);
  if (root.status != SolveStatus::Optimal) return root;
  if (int_vars.empty()) return root;

  const bool minimize = model.sense() == Sense::Minimize;
  auto better = [&](double a, double b) { return minimize ? a < b : a > b; };

  Solution incumbent;
  incumbent.status = SolveStatus::NodeLimit;  // none yet

  // Warm start: a validated hint becomes the initial incumbent, so the
  // search starts with an upper bound and prunes from node one. The
  // branching order is untouched — only subtrees that provably cannot
  // beat the hint are skipped.
  if (incumbent_hint != nullptr &&
      is_feasible_assignment(model, *incumbent_hint, options_.int_tol)) {
    incumbent.x = *incumbent_hint;
    for (int v : int_vars) {
      incumbent.x[static_cast<std::size_t>(v)] =
          std::round(incumbent.x[static_cast<std::size_t>(v)]);
    }
    incumbent.objective = model.objective_value(incumbent.x);
    incumbent.status = SolveStatus::FeasibleIncumbent;
    last_warm_used_ = true;
  }

  // Work copy of the model whose integer-variable bounds we mutate per node.
  Model work = model;

  struct StackNode {
    std::vector<std::array<double, 2>> bounds;  // per int var: {lo, hi}
    double bound;                               // parent relaxation objective
  };
  std::vector<StackNode> stack;
  {
    StackNode start;
    start.bounds.reserve(int_vars.size());
    for (int v : int_vars) {
      start.bounds.push_back(
          {model.variable(v).lower, model.variable(v).upper});
    }
    start.bound = root.objective;
    stack.push_back(std::move(start));
  }

  while (!stack.empty()) {
    if (last_nodes_ >= options_.max_nodes) break;
    ++last_nodes_;

    // Depth-first with best-bound tie-break: take the most recently pushed
    // node (children are pushed better-bound last, popped first).
    StackNode node = std::move(stack.back());
    stack.pop_back();

    // Bound pruning against the incumbent.
    if (incumbent.ok() && !better(node.bound, incumbent.objective) &&
        std::abs(node.bound - incumbent.objective) > options_.rel_gap) {
      continue;
    }

    // Apply bounds and solve the relaxation.
    for (std::size_t i = 0; i < int_vars.size(); ++i) {
      Variable& var = work.variable(int_vars[i]);
      var.lower = node.bounds[i][0];
      var.upper = node.bounds[i][1];
    }
    const Solution relax = simplex.solve(work);
    if (relax.status != SolveStatus::Optimal) continue;  // pruned infeasible
    if (incumbent.ok() && !better(relax.objective, incumbent.objective)) {
      continue;
    }

    // Find the most fractional integer variable.
    std::size_t branch_slot = int_vars.size();
    double worst_frac = options_.int_tol;
    for (std::size_t i = 0; i < int_vars.size(); ++i) {
      const double value = relax.x[static_cast<std::size_t>(int_vars[i])];
      const double frac = std::abs(value - std::round(value));
      if (frac > worst_frac) {
        worst_frac = frac;
        branch_slot = i;
      }
    }

    if (branch_slot == int_vars.size()) {
      // Integral: candidate incumbent (round to kill tolerance dust).
      Solution candidate = relax;
      for (int v : int_vars) {
        candidate.x[static_cast<std::size_t>(v)] =
            std::round(candidate.x[static_cast<std::size_t>(v)]);
      }
      candidate.objective = model.objective_value(candidate.x);
      if (!incumbent.ok() || better(candidate.objective, incumbent.objective)) {
        incumbent = candidate;
        incumbent.status = SolveStatus::FeasibleIncumbent;
      }
      continue;
    }

    // Branch: floor child and ceil child.
    const double value =
        relax.x[static_cast<std::size_t>(int_vars[branch_slot])];
    const double floor_v = std::floor(value);
    const double ceil_v = std::ceil(value);

    StackNode down;
    down.bounds = node.bounds;
    down.bounds[branch_slot][1] = std::min(down.bounds[branch_slot][1], floor_v);
    down.bound = relax.objective;

    StackNode up;
    up.bounds = node.bounds;
    up.bounds[branch_slot][0] = std::max(up.bounds[branch_slot][0], ceil_v);
    up.bound = relax.objective;

    const bool feasible_down = down.bounds[branch_slot][0] <=
                               down.bounds[branch_slot][1] + 1e-12;
    const bool feasible_up =
        up.bounds[branch_slot][0] <= up.bounds[branch_slot][1] + 1e-12;
    // Push the child closer to the fractional value last so DFS explores the
    // "rounding" direction first — finds incumbents quickly.
    const bool prefer_up = (value - floor_v) > 0.5;
    if (prefer_up) {
      if (feasible_down) stack.push_back(std::move(down));
      if (feasible_up) stack.push_back(std::move(up));
    } else {
      if (feasible_up) stack.push_back(std::move(up));
      if (feasible_down) stack.push_back(std::move(down));
    }
  }

  if (incumbent.ok()) {
    // Proven optimal only if the search exhausted every node.
    if (stack.empty() && last_nodes_ < options_.max_nodes) {
      incumbent.status = SolveStatus::Optimal;
    }
    return incumbent;
  }
  if (stack.empty()) {
    Solution none;
    none.status = SolveStatus::Infeasible;
    return none;
  }
  Solution none;
  none.status = SolveStatus::NodeLimit;
  return none;
}

}  // namespace eprons::lp
