#include "net/path_latency.h"

namespace eprons {

PathLatencyEstimator::PathLatencyEstimator(const LinkUtilization* utilization,
                                           LinkLatencyModel model)
    : utilization_(utilization), model_(model) {}

SimTime PathLatencyEstimator::mean_latency(const Path& path) const {
  SimTime total = 0.0;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    total += model_.mean_latency(
        utilization_->directed_utilization(path[i], path[i + 1]),
        utilization_->directed_bursty_utilization(path[i], path[i + 1]));
  }
  return total;
}

SimTime PathLatencyEstimator::sample_latency(const Path& path,
                                             Rng& rng) const {
  SimTime total = 0.0;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    total += model_.sample_latency(
        utilization_->directed_utilization(path[i], path[i + 1]),
        utilization_->directed_bursty_utilization(path[i], path[i + 1]),
        rng);
  }
  return total;
}

SimTime PathLatencyEstimator::max_latency(const Path& path) const {
  if (path.size() < 2) return 0.0;
  return static_cast<double>(path.size() - 1) *
         (model_.max_latency() + model_.config().burst_len_us);
}

}  // namespace eprons
