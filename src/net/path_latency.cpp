#include "net/path_latency.h"

namespace eprons {

PathLatencyEstimator::PathLatencyEstimator(const LinkUtilization* utilization,
                                           LinkLatencyModel model)
    : utilization_(utilization), model_(model) {}

SimTime PathLatencyEstimator::mean_latency(const Path& path) const {
  SimTime total = 0.0;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    total += model_.mean_latency(
        utilization_->directed_utilization(path[i], path[i + 1]),
        utilization_->directed_bursty_utilization(path[i], path[i + 1]));
  }
  return total;
}

SimTime PathLatencyEstimator::sample_latency(const Path& path,
                                             Rng& rng) const {
  SimTime total = 0.0;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    total += model_.sample_latency(
        utilization_->directed_utilization(path[i], path[i + 1]),
        utilization_->directed_bursty_utilization(path[i], path[i + 1]),
        rng);
  }
  return total;
}

void PathLatencyEstimator::prepare(const Path& path,
                                   std::vector<PreparedHop>* out) const {
  out->clear();
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    out->push_back(model_.prepare_hop(
        utilization_->directed_utilization(path[i], path[i + 1]),
        utilization_->directed_bursty_utilization(path[i], path[i + 1])));
  }
}

void PathLatencyEstimator::sample_pair(const Path& path, Rng& rng,
                                       SimTime* even, SimTime* odd) const {
  SimTime total_e = 0.0;
  SimTime total_o = 0.0;
  SimTime hop_e;
  SimTime hop_o;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const PreparedHop hop = model_.prepare_hop(
        utilization_->directed_utilization(path[i], path[i + 1]),
        utilization_->directed_bursty_utilization(path[i], path[i + 1]));
    model_.sample_hop_pair(hop, rng, &hop_e, &hop_o);
    total_e += hop_e;
    total_o += hop_o;
  }
  *even = total_e;
  *odd = total_o;
}

SimTime PathLatencyEstimator::max_latency(const Path& path) const {
  if (path.size() < 2) return 0.0;
  return static_cast<double>(path.size() - 1) *
         (model_.max_latency() + model_.config().burst_len_us);
}

}  // namespace eprons
