#include "net/link_latency.h"

#include <algorithm>
#include <stdexcept>

namespace eprons {

LinkLatencyModel::LinkLatencyModel(LinkLatencyConfig config)
    : config_(config) {
  if (config_.capacity_mbps <= 0.0 || config_.avg_packet_bytes <= 0.0 ||
      config_.buffer_packets < 1.0) {
    throw std::invalid_argument("bad link latency configuration");
  }
}

SimTime LinkLatencyModel::packet_service_time() const {
  // bits / (Mbps) = us exactly: (bytes*8) bits / (capacity Mbit/s)
  return config_.avg_packet_bytes * 8.0 / config_.capacity_mbps;
}

SimTime LinkLatencyModel::sojourn_mean(double utilization) const {
  const SimTime service = packet_service_time();
  const SimTime cap = service * config_.buffer_packets;
  utilization = std::clamp(utilization, 0.0, 1.0);
  if (utilization >= 1.0) return cap;
  const SimTime sojourn = service / (1.0 - utilization);
  return std::min(sojourn, cap);
}

double LinkLatencyModel::burst_intensity(double utilization) const {
  if (utilization <= config_.knee_utilization) return 0.0;
  const double t = (utilization - config_.knee_utilization) /
                   (1.0 - config_.knee_utilization);
  return std::min(t, 1.0);
}

SimTime LinkLatencyModel::mean_latency(double utilization) const {
  utilization = std::clamp(utilization, 0.0, 1.0);
  const SimTime cap = packet_service_time() * config_.buffer_packets;
  const double t = burst_intensity(utilization);
  const double p_burst = config_.burst_coeff * t * t;
  const SimTime burst_mean = p_burst * (t * cap) / 2.0;
  return config_.base_latency_us +
         std::min(cap, sojourn_mean(utilization) + burst_mean);
}

SimTime LinkLatencyModel::mean_latency(double utilization,
                                       double bursty_utilization) const {
  bursty_utilization = std::clamp(bursty_utilization, 0.0, 1.0);
  return mean_latency(utilization) +
         bursty_utilization * config_.burst_len_us / 2.0;
}

SimTime LinkLatencyModel::sample_latency(double utilization, double bursty_utilization,
                                         Rng& rng) const {
  SimTime latency = sample_latency(utilization, rng);
  bursty_utilization = std::clamp(bursty_utilization, 0.0, 1.0);
  if (bursty_utilization > 0.0 && rng.bernoulli(bursty_utilization)) {
    // Collided with an elephant train: wait out its residual.
    latency += rng.uniform(0.0, config_.burst_len_us);
  }
  return latency;
}

SimTime LinkLatencyModel::sample_latency(double utilization, Rng& rng) const {
  utilization = std::clamp(utilization, 0.0, 1.0);
  const SimTime mean = sojourn_mean(utilization);
  const SimTime cap = packet_service_time() * config_.buffer_packets;
  SimTime queueing = rng.exponential(mean);
  const double t = burst_intensity(utilization);
  const double p_burst = config_.burst_coeff * t * t;
  if (p_burst > 0.0 && rng.bernoulli(p_burst)) {
    // Landed behind a standing burst of background packets.
    queueing += rng.uniform(0.0, t * cap);
  }
  return config_.base_latency_us + std::min(queueing, cap);
}

PreparedHop LinkLatencyModel::prepare_hop(double utilization,
                                          double bursty_utilization) const {
  // Mirror sample_latency(utilization, rng) term by term: same clamps,
  // same expression order, so the precomputed doubles are the very values
  // the per-sample path would recompute.
  utilization = std::clamp(utilization, 0.0, 1.0);
  PreparedHop hop;
  hop.sojourn_mean = sojourn_mean(utilization);
  hop.cap = packet_service_time() * config_.buffer_packets;
  const double t = burst_intensity(utilization);
  hop.p_burst = config_.burst_coeff * t * t;
  hop.burst_window = t * hop.cap;
  hop.bursty = std::clamp(bursty_utilization, 0.0, 1.0);
  return hop;
}

SimTime LinkLatencyModel::max_latency() const {
  return config_.base_latency_us +
         packet_service_time() * config_.buffer_packets;
}

}  // namespace eprons
