// Path-level latency sampling: composes per-hop link latency over the hops
// of a routed path, using the current link utilizations.
//
// This is the "latency monitor" input of Fig. 7: each request/reply samples
// its network latency from the links its consolidated path traverses, and
// EPRONS-Server receives the measured slack.
#pragma once

#include "net/link_latency.h"
#include "net/link_utilization.h"
#include "topo/graph.h"
#include "util/rng.h"

namespace eprons {

class PathLatencyEstimator {
 public:
  PathLatencyEstimator(const LinkUtilization* utilization,
                       LinkLatencyModel model);

  const LinkLatencyModel& model() const { return model_; }

  /// Expected latency along `path` (sum of per-hop means).
  SimTime mean_latency(const Path& path) const;

  /// Draws one packet's end-to-end latency along `path`.
  SimTime sample_latency(const Path& path, Rng& rng) const;

  /// Worst possible latency along `path` (all buffers full).
  SimTime max_latency(const Path& path) const;

 private:
  const LinkUtilization* utilization_;
  LinkLatencyModel model_;
};

}  // namespace eprons
