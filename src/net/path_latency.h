// Path-level latency sampling: composes per-hop link latency over the hops
// of a routed path, using the current link utilizations.
//
// This is the "latency monitor" input of Fig. 7: each request/reply samples
// its network latency from the links its consolidated path traverses, and
// EPRONS-Server receives the measured slack.
#pragma once

#include <vector>

#include "net/link_latency.h"
#include "net/link_utilization.h"
#include "topo/graph.h"
#include "util/rng.h"

namespace eprons {

class PathLatencyEstimator {
 public:
  PathLatencyEstimator(const LinkUtilization* utilization,
                       LinkLatencyModel model);

  const LinkLatencyModel& model() const { return model_; }

  /// Expected latency along `path` (sum of per-hop means).
  SimTime mean_latency(const Path& path) const;

  /// Draws one packet's end-to-end latency along `path`.
  SimTime sample_latency(const Path& path, Rng& rng) const;

  /// Precomputes the per-hop sampling constants of `path` into `out`
  /// (cleared first; pass the same scratch vector across calls to reuse
  /// its capacity). The constants depend only on the path and the current
  /// link utilizations — the two directed-utilization lookups per hop that
  /// sample_latency() repeats on every draw happen exactly once here.
  void prepare(const Path& path, std::vector<PreparedHop>* out) const;

  /// Draws one end-to-end latency from prepared hops. Consumes the RNG
  /// stream exactly as sample_latency(path, rng) does, so both samplers
  /// return bit-identical values from equal RNG states (the fast/reference
  /// parity the differential tests assert).
  SimTime sample_prepared(const std::vector<PreparedHop>& hops,
                          Rng& rng) const {
    SimTime total = 0.0;
    for (const PreparedHop& hop : hops) {
      total += model_.sample_prepared(hop, rng);
    }
    return total;
  }

  /// Draws one antithetic PAIR of end-to-end latencies from prepared hops
  /// (see LinkLatencyModel::sample_hop_pair). Both partners accumulate
  /// their hops in path order, so the pair's bits depend only on the RNG
  /// state and the prepared constants — the slack estimator's fast path.
  void sample_prepared_pair(const std::vector<PreparedHop>& hops, Rng& rng,
                            SimTime* even, SimTime* odd) const {
    SimTime total_e = 0.0;
    SimTime total_o = 0.0;
    SimTime hop_e;
    SimTime hop_o;
    for (const PreparedHop& hop : hops) {
      model_.sample_hop_pair(hop, rng, &hop_e, &hop_o);
      total_e += hop_e;
      total_o += hop_o;
    }
    *even = total_e;
    *odd = total_o;
  }

  /// Reference twin of sample_prepared_pair: re-derives each hop's
  /// sampling constants from the live utilization tables on every draw
  /// pair (the pre-PreparedHop per-sample walk). Funnels into the same
  /// sample_hop_pair core, so it consumes the RNG identically and returns
  /// bit-identical pairs — the oracle the differential tests diff against.
  void sample_pair(const Path& path, Rng& rng, SimTime* even,
                   SimTime* odd) const;

  /// Worst possible latency along `path` (all buffers full).
  SimTime max_latency(const Path& path) const;

 private:
  const LinkUtilization* utilization_;
  LinkLatencyModel model_;
};

}  // namespace eprons
