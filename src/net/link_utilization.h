// Per-link load accounting for a routed flow placement.
//
// After consolidation assigns each flow a path, this tracker accumulates the
// offered load on every (directed) link so the latency model can be queried
// per hop. Directions matter: a fat-tree uplink can be hot while its
// downlink is idle. Loads are indexed by (link id, direction) where
// direction 0 means a->b in the underlying undirected link.
#pragma once

#include <vector>

#include "topo/graph.h"
#include "util/types.h"

namespace eprons {

class LinkUtilization {
 public:
  explicit LinkUtilization(const Graph* graph);

  /// Adds `rate` Mbps along the directed hops of `path` (node sequence).
  /// `bursty` marks elephant/background traffic that transmits in
  /// line-rate ON/OFF trains: its average rate counts toward utilization
  /// like any load, but the latency model additionally charges packets
  /// that collide with an ON period (see LinkLatencyModel).
  void add_path_load(const Path& path, Bandwidth rate, bool bursty = false);
  /// Removes load previously added (negative accumulation clamped at 0).
  void remove_path_load(const Path& path, Bandwidth rate, bool bursty = false);
  void clear();

  /// Offered load on the directed link from `from` to `to` (must be
  /// adjacent), Mbps.
  Bandwidth directed_load(NodeId from, NodeId to) const;
  /// Utilization in [0, inf): load / capacity (can exceed 1 if
  /// oversubscribed; latency model clamps).
  double directed_utilization(NodeId from, NodeId to) const;
  /// Utilization contributed by bursty (elephant) flows only; approximates
  /// the fraction of time the link is occupied by a line-rate burst.
  double directed_bursty_utilization(NodeId from, NodeId to) const;

  /// Max directed utilization along a node path.
  double max_path_utilization(const Path& path) const;

  /// Highest directed utilization anywhere.
  double max_utilization() const;
  /// Mean utilization over links with nonzero load.
  double mean_active_utilization() const;
  /// Number of directed links with nonzero load.
  int active_directed_links() const;

  const Graph& graph() const { return *graph_; }

 private:
  std::size_t slot(LinkId link, bool forward) const;
  void accumulate(const Path& path, Bandwidth delta, bool bursty);

  const Graph* graph_;
  std::vector<Bandwidth> load_;         // 2 slots per undirected link
  std::vector<Bandwidth> bursty_load_;  // subset of load_ from elephants
};

}  // namespace eprons
