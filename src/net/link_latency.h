// Flow-level link latency model with the Fig. 1 utilization-latency knee.
//
// The paper measured search-query latency against link utilization on its
// MiniNet platform and observed: flat, microsecond-scale latency at low
// utilization; a sharp "knee" beyond which queueing pushes latency from
// ~139 us to ~12 ms. We reproduce that shape with an M/M/1 sojourn-time
// model, capped by a finite buffer:
//
//   S      = transmission time of an average packet
//   W(rho) = S / (1 - rho)            (mean sojourn)
//   capped at S * buffer_packets      (full buffer)
//
// Per-packet samples are exponential with mean W(rho) (M/M/1 sojourn is
// exponential), truncated at the buffer cap — giving realistic tails for
// the 95th/99th percentile figures.
#pragma once

#include <algorithm>

#include "stats/fast_log.h"
#include "util/rng.h"
#include "util/types.h"

namespace eprons {

/// Per-hop sampling constants, precomputed from a hop's (utilization,
/// bursty utilization) pair. sample_latency() derives all five values
/// afresh on every draw; a PreparedHop hoists that work out of the
/// sampling loop so the slack estimator's Monte-Carlo pays it once per
/// path instead of once per sample. The values are computed by the exact
/// expressions sample_latency() uses, so drawing from a PreparedHop is
/// bit-identical to the per-sample path (see LinkLatencyModel::prepare_hop).
struct PreparedHop {
  /// Mean M/M/1 sojourn at this hop's utilization, us (exponential mean).
  SimTime sojourn_mean = 0.0;
  /// Full-buffer queueing cap, us.
  SimTime cap = 0.0;
  /// Probability of landing behind a standing burst (burst_coeff * t^2).
  double p_burst = 0.0;
  /// Standing-burst delay upper bound t * cap, us.
  SimTime burst_window = 0.0;
  /// Clamped elephant duty cycle (collision probability).
  double bursty = 0.0;
};

struct LinkLatencyConfig {
  Bandwidth capacity_mbps = 1000.0;
  double avg_packet_bytes = 1500.0;
  /// Fixed per-hop cost (propagation + switch pipeline), us. Calibrated so
  /// a 6-hop inter-pod path at low utilization costs ~139 us end to end
  /// (Fig. 1's low-utilization anchor).
  double base_latency_us = 11.0;
  /// Queue capacity in packets; bounds worst-case queueing delay.
  double buffer_packets = 1000.0;
  /// Burst-queue mixture above the knee: elephant background flows send in
  /// line-rate bursts, so once utilization passes `knee_utilization` a
  /// growing fraction of packets land behind a standing queue. With
  /// t = (util - knee) / (1 - knee) clamped to [0,1]:
  ///   P[burst] = burst_coeff * t^2,  burst delay ~ U(0, t * buffer delay).
  /// Below the knee the model is pure M/M/1 sojourn — matching Fig. 1's
  /// flat-then-explosive measured curve and Fig. 10's ms-scale tails after
  /// aggressive consolidation. Set burst_coeff = 0 for pure M/M/1.
  double burst_coeff = 0.5;
  double knee_utilization = 0.70;
  /// Elephant burst collision: background flows transmit in line-rate
  /// trains of ~burst_len_us; a packet sharing the link collides with an
  /// ON period with probability ~ bursty utilization (the duty cycle) and
  /// then waits the residual of the train. This is what makes consolidating
  /// latency-sensitive flows onto elephant links expensive (Fig. 2/10/11)
  /// and what the scale factor K buys relief from.
  double burst_len_us = 3000.0;
};

class LinkLatencyModel {
 public:
  // Implicit on purpose: configs convert to models in aggregate
  // initializers throughout the experiment structs.
  LinkLatencyModel(LinkLatencyConfig config = {});  // NOLINT

  const LinkLatencyConfig& config() const { return config_; }

  /// Transmission time of one average packet on this link, us.
  SimTime packet_service_time() const;

  /// Mean per-hop latency at the given utilization (clamped to [0, ~1)).
  SimTime mean_latency(double utilization) const;

  /// Draws one packet's per-hop latency: base + Exp(mean sojourn), capped
  /// at the full-buffer delay.
  SimTime sample_latency(double utilization, Rng& rng) const;

  /// As above, with an elephant-collision term: `bursty_utilization` is
  /// the duty cycle of line-rate background trains on this link.
  SimTime sample_latency(double utilization, double bursty_utilization,
                         Rng& rng) const;

  /// Precomputes the sampling constants of one hop. Contract:
  /// sample_prepared(prepare_hop(u, b), rng) consumes the same RNG draws
  /// and returns the same bits as sample_latency(u, b, rng).
  PreparedHop prepare_hop(double utilization, double bursty_utilization) const;

  /// Draws one per-hop latency from precomputed constants. Inline: this is
  /// the innermost statement of the planner's Monte-Carlo.
  SimTime sample_prepared(const PreparedHop& hop, Rng& rng) const {
    SimTime queueing = rng.exponential(hop.sojourn_mean);
    if (hop.p_burst > 0.0 && rng.bernoulli(hop.p_burst)) {
      // Landed behind a standing burst of background packets.
      queueing += rng.uniform(0.0, hop.burst_window);
    }
    SimTime latency = config_.base_latency_us + std::min(queueing, hop.cap);
    if (hop.bursty > 0.0 && rng.bernoulli(hop.bursty)) {
      // Collided with an elephant train: wait out its residual.
      latency += rng.uniform(0.0, config_.burst_len_us);
    }
    return latency;
  }

  /// Draws one ANTITHETIC PAIR of per-hop latencies — the slack
  /// estimator's innermost statement. Classic Monte-Carlo variance
  /// reduction: each raw uniform u drives two samples, one through u and
  /// one through 1-u, so a draw pair costs one RNG advance + two log
  /// evaluations instead of two of each; the negative correlation between
  /// partners tightens the mean estimate for free. Burst draws use the
  /// composition trick — conditional on u < p, u/p is itself an exact
  /// U(0,1), so the burst position rides on the branch uniform instead of
  /// consuming another draw. Every sample's marginal distribution is
  /// exactly the per-draw model's (base + min(Exp + burst, cap) +
  /// collision residual); only the pairing is correlated.
  ///
  /// Bit-exactness contract: the reference (per-sample re-derivation) and
  /// fast (prepared) path samplers both funnel into this one function, so
  /// they agree bit for bit by construction. fast_log (not std::log) keeps
  /// the transform's bits owned by this repo, not the host libm.
  void sample_hop_pair(const PreparedHop& hop, Rng& rng, SimTime* even,
                       SimTime* odd) const {
    double u = rng.uniform();
    while (u == 0.0) u = rng.uniform();
    // u in (0,1) and 1-u in (0,1]; fast_log(1) == 0 is a valid Exp draw.
    double log_e;
    double log_o;
    fast_log_pair(u, 1.0 - u, &log_e, &log_o);
    combine_hop_pair(hop, log_e, log_o, rng, even, odd);
  }

  /// The pair core AFTER the exponential logs: turns (log u, log(1-u))
  /// into the antithetic latency pair, drawing the hop's burst and
  /// collision uniforms from `rng` in the fixed order (burst, collision).
  /// Split out so the slack estimator can batch the log evaluations
  /// through fast_log_block and still combine through the exact operation
  /// sequence sample_hop_pair uses — the shared core that makes the fast
  /// and reference samplers bit-identical.
  void combine_hop_pair(const PreparedHop& hop, double log_e, double log_o,
                        Rng& rng, SimTime* even, SimTime* odd) const {
    SimTime queue_e = hop.sojourn_mean * -log_e;
    SimTime queue_o = hop.sojourn_mean * -log_o;
    if (hop.p_burst > 0.0) {
      const double b = rng.uniform();
      if (b < hop.p_burst) {
        // Landed behind a standing burst of background packets.
        queue_e += (b / hop.p_burst) * hop.burst_window;
      }
      const double bo = 1.0 - b;
      if (bo < hop.p_burst) {
        queue_o += (bo / hop.p_burst) * hop.burst_window;
      }
    }
    SimTime lat_e = config_.base_latency_us + std::min(queue_e, hop.cap);
    SimTime lat_o = config_.base_latency_us + std::min(queue_o, hop.cap);
    if (hop.bursty > 0.0) {
      const double t = rng.uniform();
      if (t < hop.bursty) {
        // Collided with an elephant train: wait out its residual.
        lat_e += (t / hop.bursty) * config_.burst_len_us;
      }
      const double to = 1.0 - t;
      if (to < hop.bursty) {
        lat_o += (to / hop.bursty) * config_.burst_len_us;
      }
    }
    *even = lat_e;
    *odd = lat_o;
  }

  /// Mean including the burst-collision expectation (for planning).
  SimTime mean_latency(double utilization, double bursty_utilization) const;

  /// Upper bound of any sample (base + full buffer drain).
  SimTime max_latency() const;

 private:
  /// Mean queueing+transmission sojourn (without base), us.
  SimTime sojourn_mean(double utilization) const;
  /// Burst mixture intensity t in [0,1]; 0 below the knee.
  double burst_intensity(double utilization) const;

  LinkLatencyConfig config_;
};

}  // namespace eprons
