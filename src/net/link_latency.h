// Flow-level link latency model with the Fig. 1 utilization-latency knee.
//
// The paper measured search-query latency against link utilization on its
// MiniNet platform and observed: flat, microsecond-scale latency at low
// utilization; a sharp "knee" beyond which queueing pushes latency from
// ~139 us to ~12 ms. We reproduce that shape with an M/M/1 sojourn-time
// model, capped by a finite buffer:
//
//   S      = transmission time of an average packet
//   W(rho) = S / (1 - rho)            (mean sojourn)
//   capped at S * buffer_packets      (full buffer)
//
// Per-packet samples are exponential with mean W(rho) (M/M/1 sojourn is
// exponential), truncated at the buffer cap — giving realistic tails for
// the 95th/99th percentile figures.
#pragma once

#include "util/rng.h"
#include "util/types.h"

namespace eprons {

struct LinkLatencyConfig {
  Bandwidth capacity_mbps = 1000.0;
  double avg_packet_bytes = 1500.0;
  /// Fixed per-hop cost (propagation + switch pipeline), us. Calibrated so
  /// a 6-hop inter-pod path at low utilization costs ~139 us end to end
  /// (Fig. 1's low-utilization anchor).
  double base_latency_us = 11.0;
  /// Queue capacity in packets; bounds worst-case queueing delay.
  double buffer_packets = 1000.0;
  /// Burst-queue mixture above the knee: elephant background flows send in
  /// line-rate bursts, so once utilization passes `knee_utilization` a
  /// growing fraction of packets land behind a standing queue. With
  /// t = (util - knee) / (1 - knee) clamped to [0,1]:
  ///   P[burst] = burst_coeff * t^2,  burst delay ~ U(0, t * buffer delay).
  /// Below the knee the model is pure M/M/1 sojourn — matching Fig. 1's
  /// flat-then-explosive measured curve and Fig. 10's ms-scale tails after
  /// aggressive consolidation. Set burst_coeff = 0 for pure M/M/1.
  double burst_coeff = 0.5;
  double knee_utilization = 0.70;
  /// Elephant burst collision: background flows transmit in line-rate
  /// trains of ~burst_len_us; a packet sharing the link collides with an
  /// ON period with probability ~ bursty utilization (the duty cycle) and
  /// then waits the residual of the train. This is what makes consolidating
  /// latency-sensitive flows onto elephant links expensive (Fig. 2/10/11)
  /// and what the scale factor K buys relief from.
  double burst_len_us = 3000.0;
};

class LinkLatencyModel {
 public:
  // Implicit on purpose: configs convert to models in aggregate
  // initializers throughout the experiment structs.
  LinkLatencyModel(LinkLatencyConfig config = {});  // NOLINT

  const LinkLatencyConfig& config() const { return config_; }

  /// Transmission time of one average packet on this link, us.
  SimTime packet_service_time() const;

  /// Mean per-hop latency at the given utilization (clamped to [0, ~1)).
  SimTime mean_latency(double utilization) const;

  /// Draws one packet's per-hop latency: base + Exp(mean sojourn), capped
  /// at the full-buffer delay.
  SimTime sample_latency(double utilization, Rng& rng) const;

  /// As above, with an elephant-collision term: `bursty_utilization` is
  /// the duty cycle of line-rate background trains on this link.
  SimTime sample_latency(double utilization, double bursty_utilization,
                         Rng& rng) const;

  /// Mean including the burst-collision expectation (for planning).
  SimTime mean_latency(double utilization, double bursty_utilization) const;

  /// Upper bound of any sample (base + full buffer drain).
  SimTime max_latency() const;

 private:
  /// Mean queueing+transmission sojourn (without base), us.
  SimTime sojourn_mean(double utilization) const;
  /// Burst mixture intensity t in [0,1]; 0 below the knee.
  double burst_intensity(double utilization) const;

  LinkLatencyConfig config_;
};

}  // namespace eprons
