#include "net/link_utilization.h"

#include <algorithm>
#include <stdexcept>

namespace eprons {

LinkUtilization::LinkUtilization(const Graph* graph)
    : graph_(graph),
      load_(graph->num_links() * 2, 0.0),
      bursty_load_(graph->num_links() * 2, 0.0) {}

std::size_t LinkUtilization::slot(LinkId link, bool forward) const {
  return static_cast<std::size_t>(link) * 2 + (forward ? 0 : 1);
}

void LinkUtilization::accumulate(const Path& path, Bandwidth delta,
                                 bool bursty) {
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const NodeId from = path[i];
    const NodeId to = path[i + 1];
    const LinkId lid = graph_->find_link(from, to);
    if (lid == kInvalidLink) {
      throw std::invalid_argument("path hops not adjacent");
    }
    const bool forward = graph_->link(lid).a == from;
    Bandwidth& cell = load_[slot(lid, forward)];
    cell = std::max(0.0, cell + delta);
    if (bursty) {
      Bandwidth& bcell = bursty_load_[slot(lid, forward)];
      bcell = std::max(0.0, bcell + delta);
    }
  }
}

void LinkUtilization::add_path_load(const Path& path, Bandwidth rate,
                                    bool bursty) {
  accumulate(path, rate, bursty);
}

void LinkUtilization::remove_path_load(const Path& path, Bandwidth rate,
                                       bool bursty) {
  accumulate(path, -rate, bursty);
}

void LinkUtilization::clear() {
  std::fill(load_.begin(), load_.end(), 0.0);
  std::fill(bursty_load_.begin(), bursty_load_.end(), 0.0);
}

Bandwidth LinkUtilization::directed_load(NodeId from, NodeId to) const {
  const LinkId lid = graph_->find_link(from, to);
  if (lid == kInvalidLink) throw std::invalid_argument("nodes not adjacent");
  const bool forward = graph_->link(lid).a == from;
  return load_[slot(lid, forward)];
}

double LinkUtilization::directed_utilization(NodeId from, NodeId to) const {
  const LinkId lid = graph_->find_link(from, to);
  if (lid == kInvalidLink) throw std::invalid_argument("nodes not adjacent");
  const bool forward = graph_->link(lid).a == from;
  return load_[slot(lid, forward)] / graph_->link(lid).capacity;
}

double LinkUtilization::directed_bursty_utilization(NodeId from,
                                                    NodeId to) const {
  const LinkId lid = graph_->find_link(from, to);
  if (lid == kInvalidLink) throw std::invalid_argument("nodes not adjacent");
  const bool forward = graph_->link(lid).a == from;
  return bursty_load_[slot(lid, forward)] / graph_->link(lid).capacity;
}

double LinkUtilization::max_path_utilization(const Path& path) const {
  double worst = 0.0;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    worst = std::max(worst, directed_utilization(path[i], path[i + 1]));
  }
  return worst;
}

double LinkUtilization::max_utilization() const {
  double worst = 0.0;
  for (const Link& link : graph_->links()) {
    worst = std::max(worst, load_[slot(link.id, true)] / link.capacity);
    worst = std::max(worst, load_[slot(link.id, false)] / link.capacity);
  }
  return worst;
}

double LinkUtilization::mean_active_utilization() const {
  double total = 0.0;
  int active = 0;
  for (const Link& link : graph_->links()) {
    for (bool fwd : {true, false}) {
      const Bandwidth load = load_[slot(link.id, fwd)];
      if (load > 0.0) {
        total += load / link.capacity;
        ++active;
      }
    }
  }
  return active == 0 ? 0.0 : total / active;
}

int LinkUtilization::active_directed_links() const {
  int active = 0;
  for (const Bandwidth load : load_) {
    if (load > 0.0) ++active;
  }
  return active;
}

}  // namespace eprons
