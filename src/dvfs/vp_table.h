// Per-frequency violation-probability lookup tables for the planner's DVFS
// decisions.
//
// The server power predictor answers "which grid frequency meets the budget
// at the target violation probability?" for every K candidate of every
// epoch. Before this table existed it leaned on ServiceModel's lazily-grown
// convolution cache — per-decision FFT convolutions from a mutable,
// lock-free cache that parallel K sweeps could race on. A VpTable runs all
// the batch convolutions (stats/fft) once, eagerly and serially — work^(*1)
// .. work^(*max_depth) — and caches the per-grid-frequency cycle cost, so a
// planner decision is one CCDF interpolation per probed frequency, and the
// shared table is strictly read-only afterwards.
//
// Bit-exactness contract: violation_probability(d, budget, fi) returns the
// same double as
//   model.violation_probability(model.fresh_convolution(d), 0, budget,
//                               model.frequency_grid()[fi])
// — the cycle cost is cached from the identical expression work_capacity()
// evaluates (the division by it stays a division), and the stored
// distributions are copies of the model's own convolutions.
#pragma once

#include <cstddef>
#include <vector>

#include "dvfs/service_model.h"
#include "util/types.h"

namespace eprons {

class VpTable {
 public:
  /// Precomputes CCDF-backed equivalent-work tables for queue depths
  /// 1..max_depth over `model`'s frequency grid. Runs the model's FFT
  /// convolutions eagerly — which also warms ServiceModel's own cache up
  /// to max_depth, making later fresh_convolution() calls read-only (and
  /// therefore safe from concurrent planner threads). The model must
  /// outlive the table.
  VpTable(const ServiceModel* model, std::size_t max_depth);

  const ServiceModel& model() const { return *model_; }
  /// Deepest precomputed equivalent request (>= 1).
  std::size_t max_depth() const { return equivalents_.size(); }

  /// The precomputed work^(*depth) distribution (depth in [1, max_depth]).
  const DiscreteDistribution& equivalent(std::size_t depth) const {
    return equivalents_[depth - 1];
  }

  /// P[work of `depth` fresh requests > capacity of `budget` us at grid
  /// frequency index `freq_index`]; 1.0 for a non-positive budget.
  double violation_probability(std::size_t depth, SimTime budget,
                               std::size_t freq_index) const {
    if (budget <= 0.0) return 1.0;
    return equivalents_[depth - 1].ccdf(budget / per_cycle_us_[freq_index]);
  }

 private:
  const ServiceModel* model_;
  std::vector<DiscreteDistribution> equivalents_;  // [d-1] = work^(*d)
  std::vector<double> per_cycle_us_;  // per grid frequency, us per cycle
};

}  // namespace eprons
