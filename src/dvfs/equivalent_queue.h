// Equivalent request distributions for a queue snapshot (section III-A/B).
//
// The "equivalent request" R_ie of queued request i is the convolution of
// its own work distribution with those of all requests ahead of it: request
// i can only complete after everything in front finishes. Two cases:
//
//   * departure instant (core just freed): every queued request is fresh,
//     so R_ie = work^(*(i+1)) — served from the ServiceModel's cache at
//     zero convolution cost (the section III-C optimization).
//   * arrival instant (core mid-request, `in_service_done` > 0): queue[0]
//     is replaced by its conditional remaining-work distribution R0e, and
//     R_ie = R0e * work^(*i) — the n convolutions the paper accounts for
//     as scheduling overhead.
//
// The planner never builds one of these: its per-K DVFS decisions go
// through the precomputed per-frequency CCDF tables in dvfs/vp_table.h
// (fresh-case equivalents only — a planning-time prediction sees no
// partially-served request). The DES policies keep using this class; its
// fresh case reads the same ServiceModel cache the VpTable pre-warms.
#pragma once

#include <vector>

#include "dvfs/service_model.h"

namespace eprons {

class EquivalentQueue {
 public:
  /// `queue_len` >= 1. `in_service_done` is work already retired on the
  /// in-service request (0 at departure instants).
  EquivalentQueue(const ServiceModel* model, std::size_t queue_len,
                  Work in_service_done);

  std::size_t size() const { return size_; }

  /// Equivalent work distribution of queued request i (0 = in service).
  const DiscreteDistribution& at(std::size_t i) const;

 private:
  const ServiceModel* model_;
  std::size_t size_;
  bool fresh_;
  std::vector<DiscreteDistribution> owned_;  // populated in the residual case
};

}  // namespace eprons
