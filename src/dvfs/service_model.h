// Statistical request service model shared by all DVFS policies.
//
// A request is an amount of *work* W (CPU cycles) drawn from an empirical
// distribution (the paper measured Xapian over a Wikipedia index; we
// synthesize an equivalent heavy-tailed distribution — see workload/).
// Service time at frequency f follows Rubik's split into frequency-dependent
// and frequency-independent parts (paper footnote 1):
//
//   t(W, f) = (1 - mu) * W / f  +  mu * W / f_max
//
// The violation probability (paper section III-B) of a request whose
// *equivalent* work distribution is We, at deadline D and frequency f, is
//   VP = P[We > work_capacity(D - T_start, f)] = We.ccdf(omega)
// which generalizes eq. (1)'s omega(D) = f * (D - T_start).
//
// The model also caches the "equivalent request" convolutions: the work of
// k back-to-back fresh requests is work^(*k) — computed once per k and
// reused, the optimization described in section III-C.
#pragma once

#include <vector>

#include "stats/distribution.h"
#include "util/types.h"

namespace eprons {

struct ServiceModelConfig {
  /// Fraction of execution insensitive to frequency (memory-bound share).
  double freq_independent_fraction = 0.15;
  Freq f_min = 1.2;
  Freq f_max = 2.7;
  /// DVFS grid step, GHz (100 MHz per the paper).
  double freq_step = 0.1;
  /// Mass below this is trimmed after convolutions to bound PDF growth.
  double truncate_eps = 1e-9;
};

class ServiceModel {
 public:
  ServiceModel(DiscreteDistribution work, ServiceModelConfig config = {});

  const DiscreteDistribution& work() const { return work_; }
  const ServiceModelConfig& config() const { return config_; }
  const std::vector<Freq>& frequency_grid() const { return grid_; }

  /// Service time of `work` cycles at frequency f, us.
  SimTime service_time(Work work, Freq f) const;

  /// Inverse: cycles retired in `duration` at frequency f (the omega(D) of
  /// eq. (1), generalized for the frequency-independent part).
  Work work_capacity(SimTime duration, Freq f) const;

  /// Mean service time at a frequency (for utilization / load sizing).
  SimTime mean_service_time(Freq f) const;

  /// Violation probability of a request with equivalent distribution
  /// `equivalent`, starting at `now` with absolute deadline `deadline`,
  /// processed at frequency f. 1.0 when the deadline already passed.
  double violation_probability(const DiscreteDistribution& equivalent,
                               SimTime now, SimTime deadline, Freq f) const;

  /// Work distribution of `count` fresh queued requests back to back
  /// (count >= 1). Cached; growing the cache is thread-unsafe by design
  /// (one model per core policy in the DES). Shared read-side callers —
  /// the parallel planner — must pre-warm the cache to their deepest depth
  /// first; constructing a VpTable (dvfs/vp_table.h) over the model does
  /// exactly that, after which calls at warmed depths are read-only.
  const DiscreteDistribution& fresh_convolution(std::size_t count) const;

 private:
  DiscreteDistribution work_;
  ServiceModelConfig config_;
  std::vector<Freq> grid_;
  mutable std::vector<DiscreteDistribution> conv_cache_;  // [k-1] = work^(*k)
};

}  // namespace eprons
