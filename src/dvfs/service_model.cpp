#include "dvfs/service_model.h"

#include <cmath>
#include <stdexcept>

namespace eprons {

ServiceModel::ServiceModel(DiscreteDistribution work, ServiceModelConfig config)
    : work_(std::move(work)), config_(config) {
  if (config_.f_min <= 0.0 || config_.f_max <= config_.f_min) {
    throw std::invalid_argument("bad frequency range");
  }
  const double mu = config_.freq_independent_fraction;
  if (mu < 0.0 || mu >= 1.0) {
    throw std::invalid_argument("freq-independent fraction must be in [0,1)");
  }
  const int steps = static_cast<int>(
      std::round((config_.f_max - config_.f_min) / config_.freq_step));
  for (int i = 0; i <= steps; ++i) {
    grid_.push_back(std::min(config_.f_max, config_.f_min + config_.freq_step * i));
  }
  conv_cache_.push_back(work_.truncated(config_.truncate_eps));
}

SimTime ServiceModel::service_time(Work work, Freq f) const {
  const double mu = config_.freq_independent_fraction;
  return (1.0 - mu) * work / (f * kCyclesPerUsPerGHz) +
         mu * work / (config_.f_max * kCyclesPerUsPerGHz);
}

Work ServiceModel::work_capacity(SimTime duration, Freq f) const {
  if (duration <= 0.0) return 0.0;
  const double mu = config_.freq_independent_fraction;
  // Invert t = W * ((1-mu)/f + mu/f_max) / 1000.
  const double per_cycle_us =
      ((1.0 - mu) / f + mu / config_.f_max) / kCyclesPerUsPerGHz;
  return duration / per_cycle_us;
}

SimTime ServiceModel::mean_service_time(Freq f) const {
  return service_time(work_.mean(), f);
}

double ServiceModel::violation_probability(
    const DiscreteDistribution& equivalent, SimTime now, SimTime deadline,
    Freq f) const {
  if (deadline <= now) return 1.0;
  return equivalent.ccdf(work_capacity(deadline - now, f));
}

const DiscreteDistribution& ServiceModel::fresh_convolution(
    std::size_t count) const {
  if (count == 0) throw std::invalid_argument("count must be >= 1");
  while (conv_cache_.size() < count) {
    conv_cache_.push_back(conv_cache_.back()
                              .convolve(work_)
                              .truncated(config_.truncate_eps));
  }
  return conv_cache_[count - 1];
}

}  // namespace eprons
