// Synthetic search-engine work distribution (Xapian/Wikipedia substitute).
//
// The paper measured the service-time distribution of 100K random queries
// against a Xapian index of the English Wikipedia, then drove its simulator
// from that empirical PDF (section V-A). That corpus is not available here,
// so we synthesize a distribution with the same qualitative features of
// search leaf-node service times: a millisecond-scale log-normal body plus
// a bounded heavy (Pareto) tail — the shape reported for web-search leaves
// across the literature the paper builds on ([7], [10], [11], [17]).
// EPRONS-Server and the baselines consume only the discretized PDF, so any
// distribution with this shape exercises the identical code paths (see
// DESIGN.md, substitutions).
#pragma once

#include "dvfs/service_model.h"
#include "stats/distribution.h"
#include "util/rng.h"

namespace eprons {

struct SyntheticWorkloadConfig {
  /// Mean service time at f_max, ms (search leaves run ~1-10 ms; the
  /// paper's requests "usually fall in the millisecond range" and its
  /// 18-40 ms constraint sweep implies several-ms leaf service times).
  double mean_service_ms = 8.0;
  /// Coefficient of variation of the log-normal body.
  double body_cv = 0.45;
  /// Fraction of queries drawn from the heavy tail.
  double tail_fraction = 0.05;
  /// Tail spans [body mean, tail_span * body mean].
  double tail_span = 4.0;
  /// Pareto shape of the tail.
  double tail_alpha = 1.5;
  /// Queries sampled to build the empirical PDF (paper: 100K).
  std::size_t samples = 100000;
  /// Histogram resolution of the discretized PDF.
  std::size_t bins = 512;
  /// Passed through to the ServiceModel.
  ServiceModelConfig service;
};

/// Draws one service time (ms, at f_max) from the synthetic distribution.
double sample_service_time_ms(const SyntheticWorkloadConfig& config, Rng& rng);

/// Builds the empirical *work* (cycles) distribution by sampling
/// `config.samples` queries, mirroring the paper's measure-then-replay flow.
DiscreteDistribution make_search_work_distribution(
    const SyntheticWorkloadConfig& config, Rng& rng);

/// Convenience: full service model over the synthetic distribution.
ServiceModel make_search_service_model(const SyntheticWorkloadConfig& config,
                                       Rng& rng);

}  // namespace eprons
