#include "dvfs/vp_table.h"

#include <stdexcept>

namespace eprons {

VpTable::VpTable(const ServiceModel* model, std::size_t max_depth)
    : model_(model) {
  if (max_depth == 0) {
    throw std::invalid_argument("VpTable max_depth must be >= 1");
  }
  equivalents_.reserve(max_depth);
  for (std::size_t depth = 1; depth <= max_depth; ++depth) {
    // Copies (not pointers into the model's cache): the cache vector may
    // reallocate if someone later asks the model for a deeper convolution.
    equivalents_.push_back(model_->fresh_convolution(depth));
  }
  // The exact per-cycle cost expression from ServiceModel::work_capacity,
  // cached per grid frequency. Keeping the later budget / per_cycle_us as
  // a division (not a reciprocal multiply) preserves bit-equality with the
  // reference path.
  const double mu = model_->config().freq_independent_fraction;
  per_cycle_us_.reserve(model_->frequency_grid().size());
  for (Freq f : model_->frequency_grid()) {
    per_cycle_us_.push_back(
        ((1.0 - mu) / f + mu / model_->config().f_max) / kCyclesPerUsPerGHz);
  }
}

}  // namespace eprons
