#include "dvfs/synthetic_workload.h"

#include <cmath>
#include <stdexcept>
#include <vector>

namespace eprons {

double sample_service_time_ms(const SyntheticWorkloadConfig& config,
                              Rng& rng) {
  const double mean = config.mean_service_ms;
  if (rng.bernoulli(config.tail_fraction)) {
    return rng.bounded_pareto(config.tail_alpha, mean,
                              config.tail_span * mean);
  }
  // Log-normal with the requested mean and CV:
  //   sigma^2 = ln(1 + cv^2),  mu = ln(mean) - sigma^2 / 2.
  // Clamped to the same bound as the tail so the work distribution has
  // bounded support (keeps equivalent-distribution convolutions compact).
  const double sigma2 = std::log(1.0 + config.body_cv * config.body_cv);
  const double mu = std::log(mean) - sigma2 / 2.0;
  return std::min(rng.lognormal(mu, std::sqrt(sigma2)),
                  config.tail_span * mean);
}

DiscreteDistribution make_search_work_distribution(
    const SyntheticWorkloadConfig& config, Rng& rng) {
  if (config.samples == 0) throw std::invalid_argument("samples must be > 0");
  // At f_max the frequency-independent split is irrelevant:
  //   t_us = W / (f_max * 1000)  =>  W = t_us * f_max * 1000.
  const double cycles_per_ms =
      config.service.f_max * kCyclesPerUsPerGHz * 1000.0;
  std::vector<double> work;
  work.reserve(config.samples);
  for (std::size_t i = 0; i < config.samples; ++i) {
    work.push_back(sample_service_time_ms(config, rng) * cycles_per_ms);
  }
  return DiscreteDistribution::from_samples(work, config.bins);
}

ServiceModel make_search_service_model(const SyntheticWorkloadConfig& config,
                                       Rng& rng) {
  return ServiceModel(make_search_work_distribution(config, rng),
                      config.service);
}

}  // namespace eprons
