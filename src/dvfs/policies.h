// The DVFS policies evaluated in the paper (section V-B2, Fig. 12):
//
//   * MaxFreqPolicy      — "no power management": always f_max.
//   * RubikPolicy        — Rubik [10]: per-request statistical model; runs
//     at the *maximum* over queued requests of the minimum frequency that
//     keeps each request's VP within the miss budget. Server budget only.
//   * RubikPlusPolicy    — the paper's network-aware Rubik variant
//     ("Rubik+"): identical selection rule but deadlines include the
//     measured per-request network slack.
//   * EpronsServerPolicy — the paper's contribution: minimum frequency whose
//     *average* VP across all queued requests meets the miss budget, with
//     EDF queue ordering. Uses network slack.
//   * TimeTraderPolicy   — TimeTrader [7]: coarse feedback; every 5 s,
//     compares the observed 95th-percentile latency with the constraint and
//     steps the frequency up or down. Responds sluggishly to bursts —
//     exactly the behavior Fig. 12(a) penalizes.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "dvfs/policy.h"
#include "stats/percentile.h"

namespace eprons {

class MaxFreqPolicy final : public DvfsPolicy {
 public:
  explicit MaxFreqPolicy(const ServiceModel* model) : DvfsPolicy(model) {}
  Freq select_frequency(SimTime now, std::span<const QueuedRequest> queue,
                        Work in_service_done) override;
  std::string name() const override { return "no-power-management"; }
};

struct StatisticalPolicyConfig {
  /// Allowed deadline miss probability: 5% for a 95th-percentile SLA.
  double target_vp = 0.05;
};

/// Ablation switches for EPRONS-Server (bench_ablation_eprons decomposes
/// the contribution of each mechanism). All true = the paper's policy.
struct EpronsFeatures {
  /// Average-VP frequency selection (false = max-VP, i.e. Rubik's rule).
  bool average_vp = true;
  /// Earliest-deadline-first ordering of waiting requests.
  bool edf = true;
  /// Borrow measured network slack (false = server budget only).
  bool use_network_slack = true;
};

class RubikPolicy : public DvfsPolicy {
 public:
  RubikPolicy(const ServiceModel* model, StatisticalPolicyConfig config = {},
              bool use_network_slack = false);

  Freq select_frequency(SimTime now, std::span<const QueuedRequest> queue,
                        Work in_service_done) override;
  std::string name() const override {
    return use_network_slack_ ? "rubik+" : "rubik";
  }

 protected:
  SimTime deadline_of(const QueuedRequest& request) const {
    return use_network_slack_ ? request.deadline_with_slack
                              : request.deadline_server;
  }

  StatisticalPolicyConfig config_;
  bool use_network_slack_;
};

class RubikPlusPolicy final : public RubikPolicy {
 public:
  explicit RubikPlusPolicy(const ServiceModel* model,
                           StatisticalPolicyConfig config = {})
      : RubikPolicy(model, config, /*use_network_slack=*/true) {}
};

class EpronsServerPolicy final : public DvfsPolicy {
 public:
  explicit EpronsServerPolicy(const ServiceModel* model,
                              StatisticalPolicyConfig config = {},
                              EpronsFeatures features = {});

  Freq select_frequency(SimTime now, std::span<const QueuedRequest> queue,
                        Work in_service_done) override;
  bool reorder_edf() const override { return features_.edf; }
  std::string name() const override { return "eprons-server"; }
  const EpronsFeatures& features() const { return features_; }

  /// Average VP across the queue at a given frequency (exposed for tests
  /// and the Fig. 4/5 bench).
  double average_vp(SimTime now, std::span<const QueuedRequest> queue,
                    Work in_service_done, Freq f) const;

 private:
  SimTime deadline_of(const QueuedRequest& request) const {
    return features_.use_network_slack ? request.deadline_with_slack
                                       : request.deadline_server;
  }

  StatisticalPolicyConfig config_;
  EpronsFeatures features_;
};

struct TimeTraderConfig {
  /// Feedback period (5 s in the paper).
  SimTime adjust_period = sec(5.0);
  /// Observed-latency window used for the tail estimate.
  std::size_t window = 2000;
  /// Tail percentile compared against the constraint.
  double percentile = 0.95;
  /// Step down only when the tail is below this fraction of the constraint
  /// (hysteresis against oscillation).
  double slack_threshold = 0.9;
  /// Grid steps to move per adjustment (up is doubled: misses hurt more).
  int step = 1;
  /// Network budget assumed borrowable while ECN reports no congestion;
  /// under congestion the effective latency target shrinks by this much
  /// (TimeTrader then "does not provide any slack to the servers").
  SimTime network_budget = ms(5.0);
};

class TimeTraderPolicy final : public DvfsPolicy {
 public:
  TimeTraderPolicy(const ServiceModel* model, TimeTraderConfig config = {});

  Freq select_frequency(SimTime now, std::span<const QueuedRequest> queue,
                        Work in_service_done) override;
  void on_request_complete(SimTime now, SimTime latency,
                           SimTime constraint) override;
  void on_network_congestion(bool congested) override;
  std::string name() const override { return "timetrader"; }

  Freq current_frequency() const;
  bool network_congested() const { return congested_; }

 private:
  void maybe_adjust(SimTime now);

  TimeTraderConfig config_;
  WindowedPercentile window_;
  SimTime last_adjust_ = 0.0;
  SimTime latest_constraint_ = kNoTime;
  bool congested_ = false;
  std::size_t grid_index_;  // index into model frequency grid
};

/// Shared selection helper: smallest grid frequency satisfying a monotone
/// predicate (true at f_max implies true for all higher frequencies);
/// returns f_max when even it fails. Binary search per section III-C.
Freq lowest_feasible_frequency(const std::vector<Freq>& grid,
                               const std::function<bool(Freq)>& feasible);

/// Factory by name: "max" | "rubik" | "rubik+" | "eprons" | "timetrader",
/// plus the ablation variants "eprons-noedf" (no EDF reordering),
/// "eprons-noslack" (server budget only) and "eprons-maxvp" (max-VP rule,
/// keeping EDF + slack). Throws std::invalid_argument for unknown names.
std::unique_ptr<DvfsPolicy> make_policy(const std::string& name,
                                        const ServiceModel* model,
                                        double target_vp = 0.05);

}  // namespace eprons
