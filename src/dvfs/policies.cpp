#include "dvfs/policies.h"

#include <algorithm>
#include <functional>

#include "dvfs/equivalent_queue.h"

namespace eprons {

Freq lowest_feasible_frequency(const std::vector<Freq>& grid,
                               const std::function<bool(Freq)>& feasible) {
  if (!feasible(grid.back())) return grid.back();
  std::size_t lo = 0;
  std::size_t hi = grid.size() - 1;  // known feasible
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (feasible(grid[mid])) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return grid[lo];
}

Freq MaxFreqPolicy::select_frequency(SimTime, std::span<const QueuedRequest>,
                                     Work) {
  return model_->config().f_max;
}

RubikPolicy::RubikPolicy(const ServiceModel* model,
                         StatisticalPolicyConfig config,
                         bool use_network_slack)
    : DvfsPolicy(model),
      config_(config),
      use_network_slack_(use_network_slack) {}

Freq RubikPolicy::select_frequency(SimTime now,
                                   std::span<const QueuedRequest> queue,
                                   Work in_service_done) {
  const EquivalentQueue equivalents(model_, queue.size(), in_service_done);
  // Feasible(f): every equivalent request meets the per-request miss budget.
  auto feasible = [&](Freq f) {
    for (std::size_t i = 0; i < queue.size(); ++i) {
      const double vp = model_->violation_probability(
          equivalents.at(i), now, deadline_of(queue[i]), f);
      if (vp > config_.target_vp) return false;
    }
    return true;
  };
  return lowest_feasible_frequency(model_->frequency_grid(), feasible);
}

EpronsServerPolicy::EpronsServerPolicy(const ServiceModel* model,
                                       StatisticalPolicyConfig config,
                                       EpronsFeatures features)
    : DvfsPolicy(model), config_(config), features_(features) {}

double EpronsServerPolicy::average_vp(SimTime now,
                                      std::span<const QueuedRequest> queue,
                                      Work in_service_done, Freq f) const {
  const EquivalentQueue equivalents(model_, queue.size(), in_service_done);
  double total = 0.0;
  for (std::size_t i = 0; i < queue.size(); ++i) {
    total += model_->violation_probability(equivalents.at(i), now,
                                           deadline_of(queue[i]), f);
  }
  return total / static_cast<double>(queue.size());
}

Freq EpronsServerPolicy::select_frequency(SimTime now,
                                          std::span<const QueuedRequest> queue,
                                          Work in_service_done) {
  const EquivalentQueue equivalents(model_, queue.size(), in_service_done);
  // Feasible(f): the *average* VP across the queue meets the SLA miss
  // budget (section III-A); individual requests may exceed it. The
  // `average_vp=false` ablation reverts to Rubik's max-VP rule.
  auto feasible = [&](Freq f) {
    if (features_.average_vp) {
      double total = 0.0;
      for (std::size_t i = 0; i < queue.size(); ++i) {
        total += model_->violation_probability(equivalents.at(i), now,
                                               deadline_of(queue[i]), f);
      }
      return total <= config_.target_vp * static_cast<double>(queue.size());
    }
    for (std::size_t i = 0; i < queue.size(); ++i) {
      if (model_->violation_probability(equivalents.at(i), now,
                                        deadline_of(queue[i]), f) >
          config_.target_vp) {
        return false;
      }
    }
    return true;
  };
  return lowest_feasible_frequency(model_->frequency_grid(), feasible);
}

TimeTraderPolicy::TimeTraderPolicy(const ServiceModel* model,
                                   TimeTraderConfig config)
    : DvfsPolicy(model),
      config_(config),
      window_(config.window),
      grid_index_(model->frequency_grid().size() - 1) {}

Freq TimeTraderPolicy::current_frequency() const {
  return model_->frequency_grid()[grid_index_];
}

void TimeTraderPolicy::on_request_complete(SimTime now, SimTime latency,
                                           SimTime constraint) {
  window_.add(latency);
  latest_constraint_ = constraint;
  maybe_adjust(now);
}

void TimeTraderPolicy::on_network_congestion(bool congested) {
  congested_ = congested;
}

void TimeTraderPolicy::maybe_adjust(SimTime now) {
  if (now - last_adjust_ < config_.adjust_period) return;
  last_adjust_ = now;
  if (window_.empty() || latest_constraint_ == kNoTime) return;
  const double tail = window_.quantile(config_.percentile);
  // ECN congestion: stop borrowing the network budget (conservative
  // target), per the paper's description of TimeTrader's behavior.
  const SimTime target =
      congested_ ? latest_constraint_ - config_.network_budget
                 : latest_constraint_;
  const auto max_index = model_->frequency_grid().size() - 1;
  if (tail > target) {
    // Missing the SLA: climb aggressively (twice the down-step).
    grid_index_ = std::min(max_index,
                           grid_index_ + 2 * static_cast<std::size_t>(
                                                 config_.step));
  } else if (tail < config_.slack_threshold * target) {
    const auto down = static_cast<std::size_t>(config_.step);
    grid_index_ = grid_index_ >= down ? grid_index_ - down : 0;
  }
}

Freq TimeTraderPolicy::select_frequency(SimTime now,
                                        std::span<const QueuedRequest>,
                                        Work) {
  maybe_adjust(now);
  return current_frequency();
}

std::unique_ptr<DvfsPolicy> make_policy(const std::string& name,
                                        const ServiceModel* model,
                                        double target_vp) {
  StatisticalPolicyConfig stat;
  stat.target_vp = target_vp;
  if (name == "max") return std::make_unique<MaxFreqPolicy>(model);
  if (name == "rubik") return std::make_unique<RubikPolicy>(model, stat);
  if (name == "rubik+") return std::make_unique<RubikPlusPolicy>(model, stat);
  if (name == "eprons") {
    return std::make_unique<EpronsServerPolicy>(model, stat);
  }
  if (name == "eprons-noedf") {
    EpronsFeatures f;
    f.edf = false;
    return std::make_unique<EpronsServerPolicy>(model, stat, f);
  }
  if (name == "eprons-noslack") {
    EpronsFeatures f;
    f.use_network_slack = false;
    return std::make_unique<EpronsServerPolicy>(model, stat, f);
  }
  if (name == "eprons-maxvp") {
    EpronsFeatures f;
    f.average_vp = false;
    return std::make_unique<EpronsServerPolicy>(model, stat, f);
  }
  if (name == "timetrader") return std::make_unique<TimeTraderPolicy>(model);
  throw std::invalid_argument("unknown DVFS policy: " + name);
}

}  // namespace eprons
