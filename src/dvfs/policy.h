// DVFS policy interface implemented by EPRONS-Server and the baselines.
//
// The simulated server core calls `select_frequency` at every request
// arrival and departure instant (the decision points of section III-B) and
// runs at the returned frequency until the next instant. Policies are
// *statistical*: they see queue occupancy, deadlines, and how much work the
// in-service request has already received, but never a request's actual
// drawn work — exactly the information a real system has.
#pragma once

#include <span>
#include <string>

#include "dvfs/service_model.h"
#include "util/types.h"

namespace eprons {

/// Policy-visible view of one queued request. Index 0 of the queue span is
/// the request currently in service.
struct QueuedRequest {
  RequestId id = 0;
  /// When the request entered this core's queue.
  SimTime arrival = 0.0;
  /// Absolute deadline using the server budget only (Rubik's view).
  SimTime deadline_server = 0.0;
  /// Absolute deadline including measured per-request network slack
  /// (Rubik+ / EPRONS-Server view). >= deadline_server.
  SimTime deadline_with_slack = 0.0;
};

class DvfsPolicy {
 public:
  explicit DvfsPolicy(const ServiceModel* model) : model_(model) {}
  virtual ~DvfsPolicy() = default;
  DvfsPolicy(const DvfsPolicy&) = delete;
  DvfsPolicy& operator=(const DvfsPolicy&) = delete;

  /// Chooses the core frequency given the queue state. `in_service_done`
  /// is the work (cycles) already retired on queue[0]; 0 if the core just
  /// became busy. `queue` is in service order and never empty.
  virtual Freq select_frequency(SimTime now,
                                std::span<const QueuedRequest> queue,
                                Work in_service_done) = 0;

  /// Completion feedback (end-to-end latency vs constraint); only feedback
  /// controllers (TimeTrader) use it.
  virtual void on_request_complete(SimTime now, SimTime latency,
                                   SimTime constraint) {
    (void)now;
    (void)latency;
    (void)constraint;
  }

  /// Network congestion signal (TimeTrader monitors ECN marks / RTOs [7]):
  /// when congested, TimeTrader stops borrowing the network budget and
  /// turns conservative — the paper's section I critique of combining it
  /// with traffic consolidation. Default: ignored.
  virtual void on_network_congestion(bool congested) { (void)congested; }

  /// True if the server should order the queue earliest-deadline-first.
  /// (EPRONS-Server "reorders requests based on their deadlines",
  /// section V-B2; the baselines are FIFO.)
  virtual bool reorder_edf() const { return false; }

  virtual std::string name() const = 0;

  const ServiceModel& model() const { return *model_; }

 protected:
  const ServiceModel* model_;
};

}  // namespace eprons
