#include "dvfs/equivalent_queue.h"

#include <stdexcept>

namespace eprons {

EquivalentQueue::EquivalentQueue(const ServiceModel* model,
                                 std::size_t queue_len, Work in_service_done)
    : model_(model), size_(queue_len), fresh_(in_service_done <= 0.0) {
  if (queue_len == 0) throw std::invalid_argument("empty queue");
  if (fresh_) return;  // serve everything from the shared cache lazily

  const DiscreteDistribution residual =
      model_->work().conditional_remaining(in_service_done);
  owned_.reserve(queue_len);
  owned_.push_back(residual);
  const double eps = model_->config().truncate_eps;
  for (std::size_t i = 1; i < queue_len; ++i) {
    // R_ie = residual * work^(*i); build incrementally with one convolution
    // per queued request (n convolutions total, as in section III-C).
    owned_.push_back(owned_.back().convolve(model_->work()).truncated(eps));
  }
}

const DiscreteDistribution& EquivalentQueue::at(std::size_t i) const {
  if (i >= size_) throw std::out_of_range("equivalent queue index");
  if (fresh_) return model_->fresh_convolution(i + 1);
  return owned_[i];
}

}  // namespace eprons
