#include "core/slack_estimator.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>

#include "obs/telemetry.h"
#include "stats/fast_log.h"

namespace eprons {

namespace {

// Antithetic iterations per draw block. Each block pre-draws its
// exponential uniforms, batch-evaluates their logs (vectorized on the fast
// path), then combines — so this constant is part of the RNG-consumption
// order and therefore of the result definition. 32 iterations keep the
// block's scratch L1-resident for the path lengths we see.
constexpr std::size_t kIterChunk = 32;

// Mean over the buffer's insertion order (shard order, draw order within a
// shard). Runs BEFORE any quantile call below permutes the buffer, so the
// floating-point summation order is pinned.
double insertion_order_mean(const std::vector<double>& v) {
  double sum = 0.0;
  for (double x : v) sum += x;
  return sum / static_cast<double>(v.size());
}

// PercentileEstimator's nearest-rank quantile — rank = ceil(p*n) clamped
// to [1, n], value = rank-th smallest — evaluated with nth_element instead
// of a full sort: O(n) per quantile, and the selected element is the same
// under any partial permutation, so sequential p95-then-p99 calls on one
// buffer are both exact.
std::size_t nearest_rank(std::size_t n, double p) {
  std::size_t rank =
      static_cast<std::size_t>(std::ceil(p * static_cast<double>(n)));
  if (rank == 0) rank = 1;
  if (rank > n) rank = n;
  return rank;
}

double nearest_rank_quantile(std::vector<double>& v, double p) {
  const std::size_t rank = nearest_rank(v.size(), p);
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(rank - 1),
                   v.end());
  return v[rank - 1];
}

// p95 and p99 with one full selection and one tail selection: after the
// p95 nth_element, everything at or past the p95 rank is >= the p95
// value, so the p99 rank — which ranks at or beyond it — can be selected
// inside that small tail instead of re-partitioning the whole buffer. The
// selected values equal a full sort's exactly.
void tail_quantiles(std::vector<double>& v, double* p95, double* p99) {
  const std::size_t r95 = nearest_rank(v.size(), 0.95);
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(r95 - 1),
                   v.end());
  *p95 = v[r95 - 1];
  const std::size_t r99 = nearest_rank(v.size(), 0.99);
  if (r99 == r95) {
    *p99 = v[r95 - 1];
    return;
  }
  std::nth_element(v.begin() + static_cast<std::ptrdiff_t>(r95),
                   v.begin() + static_cast<std::ptrdiff_t>(r99 - 1), v.end());
  *p99 = v[r99 - 1];
}

}  // namespace

SlackEstimator::SlackEstimator(SlackEstimatorConfig config)
    : config_(std::move(config)) {}

SlackEstimate SlackEstimator::estimate(const Query& query, ThreadPool* pool,
                                       bool reference_sampling) const {
  return estimate_many({query}, pool, reference_sampling).front();
}

std::vector<SlackEstimate> SlackEstimator::estimate_many(
    const std::vector<Query>& queries, ThreadPool* pool,
    bool reference_sampling) const {
  std::vector<SlackEstimate> out(queries.size());
  if (queries.empty()) return out;
  const obs::ScopedSpan span(obs::tracer(), "slack_estimate", "planner",
                             "queries", static_cast<double>(queries.size()));
  static obs::Counter& estimate_calls =
      obs::metrics().counter("slack.estimates");
  static obs::Counter& sample_count = obs::metrics().counter("slack.samples");
  estimate_calls.add(static_cast<std::uint64_t>(queries.size()));

  // Routed (request, reply) pairs per query, in flow order; shard s owns
  // every `shards`-th pair starting at s, so the pair->shard mapping is
  // fixed.
  struct QueryPairs {
    std::vector<std::pair<const Path*, const Path*>> pairs;
  };
  std::vector<QueryPairs> routed_pairs(queries.size());
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const Query& query = queries[q];
    const auto routed = [&](FlowId id) -> const Path* {
      if (id < 0 || static_cast<std::size_t>(id) >=
                        query.placement->flow_paths.size()) {
        return nullptr;
      }
      const Path& p = query.placement->flow_paths[static_cast<std::size_t>(id)];
      return p.size() >= 2 ? &p : nullptr;
    };
    auto& pairs = routed_pairs[q].pairs;
    for (std::size_t i = 0; i < query.request_flows->size() &&
                            i < query.reply_flows->size();
         ++i) {
      const Path* req = routed((*query.request_flows)[i]);
      const Path* rep = routed((*query.reply_flows)[i]);
      if (req && rep) pairs.emplace_back(req, rep);
    }
  }

  const std::size_t shards =
      static_cast<std::size_t>(config_.shards < 1 ? 1 : config_.shards);
  // Every shard draws from its own split() stream of the experiment seed,
  // and every query reseeds from scratch (exactly as a standalone
  // estimate), so the streams — and therefore the estimates — are
  // independent of which worker runs which (query, shard) unit.
  std::vector<Rng> shard_rng;
  shard_rng.reserve(shards);
  Rng base(config_.seed);
  for (std::size_t s = 0; s < shards; ++s) shard_rng.push_back(base.split());

  std::unique_ptr<ThreadPool> local_pool;
  if (!pool && config_.runtime.threads > 1) {
    local_pool = std::make_unique<ThreadPool>(config_.runtime.threads);
    pool = local_pool.get();
  }

  // Each query's samples live in one flat buffer, laid out in shard order
  // with per-shard slices precomputed here: shard s owns pairs s, s+shards,
  // ... and writes its (pair, draw)-ordered samples directly into its
  // slice, so the buffer's final order is a pure function of (pairs,
  // shards, samples_per_pair) no matter which worker fills which slice —
  // and the merge below touches no intermediate per-shard vectors.
  const std::size_t samples_per_pair =
      config_.samples_per_pair < 0
          ? 0
          : static_cast<std::size_t>(config_.samples_per_pair);
  struct QueryBuffers {
    std::vector<double> request;
    std::vector<double> total;
    std::vector<std::size_t> shard_offset;  // shards + 1 entries
  };
  std::vector<QueryBuffers> buffers(queries.size());
  for (std::size_t q = 0; q < queries.size(); ++q) {
    QueryBuffers& buf = buffers[q];
    const std::size_t num_pairs = routed_pairs[q].pairs.size();
    buf.shard_offset.resize(shards + 1);
    std::size_t offset = 0;
    for (std::size_t s = 0; s < shards; ++s) {
      buf.shard_offset[s] = offset;
      const std::size_t owned =
          num_pairs > s ? (num_pairs - s + shards - 1) / shards : 0;
      offset += owned * samples_per_pair;
    }
    buf.shard_offset[shards] = offset;
    buf.request.resize(offset);
    buf.total.resize(offset);
  }

  parallel_for(pool, queries.size() * shards, [&](std::size_t task) {
    const std::size_t q = task / shards;
    const std::size_t s = task % shards;
    const auto& pairs = routed_pairs[q].pairs;
    if (pairs.empty() || samples_per_pair == 0) return;
    const obs::ScopedSpan shard_span(obs::tracer(), "slack_shard", "planner",
                                     "shard", static_cast<double>(s));
    Rng rng = shard_rng[s];
    const PathLatencyEstimator estimator(queries[q].offered_load,
                                         config_.link_model);
    const LinkLatencyModel& model = estimator.model();
    double* req_out = buffers[q].request.data() + buffers[q].shard_offset[s];
    double* tot_out = buffers[q].total.data() + buffers[q].shard_offset[s];
    // Per-shard scratch, reused across pairs and blocks. The fast path
    // prepares each pair's hop constants once; the reference path
    // re-derives them from the live utilization tables on every
    // iteration.
    std::vector<PreparedHop> request_hops;
    std::vector<PreparedHop> reply_hops;
    std::vector<double> log_e;
    std::vector<double> log_o;
    // Samples come in antithetic pairs: iteration `it` yields samples 2it
    // (even partner) and 2it+1 (odd partner; an odd samples_per_pair
    // draws the final full pair — fixed RNG consumption — and discards
    // the odd half). Iterations proceed in blocks of kIterChunk: phase 1
    // pre-draws the block's exponential uniforms in (iteration, hop)
    // order — request hops then reply hops — phase 2 batch-evaluates
    // their logs (vectorized fast_log_block on the fast path, scalar
    // fast_log on the reference path: bit-identical), and phase 3
    // combines per hop, drawing the burst/collision uniforms in the same
    // (iteration, hop) order (see LinkLatencyModel::combine_hop_pair).
    const std::size_t iters_total = (samples_per_pair + 1) / 2;
    for (std::size_t i = s; i < pairs.size(); i += shards) {
      const auto& [req, rep] = pairs[i];
      const std::size_t request_len = req->size() - 1;
      const std::size_t reply_len = rep->size() - 1;
      const std::size_t hops = request_len + reply_len;
      if (!reference_sampling) {
        estimator.prepare(*req, &request_hops);
        estimator.prepare(*rep, &reply_hops);
      }
      for (std::size_t it0 = 0; it0 < iters_total; it0 += kIterChunk) {
        const std::size_t block =
            std::min(kIterChunk, iters_total - it0);
        const std::size_t n = block * hops;
        log_e.resize(n);
        for (std::size_t j = 0; j < n; ++j) {
          double u = rng.uniform();
          while (u == 0.0) u = rng.uniform();
          // u in (0,1), 1-u in (0,1]; log(1) == 0 is a valid Exp draw.
          log_e[j] = u;
        }
        if (!reference_sampling) {
          log_o.resize(n);
          fast_log_block_antithetic(log_e.data(), log_e.data(), log_o.data(),
                                    n);
        }
        for (std::size_t j = 0; j < block; ++j) {
          if (reference_sampling) {
            estimator.prepare(*req, &request_hops);
            estimator.prepare(*rep, &reply_hops);
          }
          const double* le = log_e.data() + j * hops;
          const double* lo =
              reference_sampling ? nullptr : log_o.data() + j * hops;
          SimTime req_e = 0.0;
          SimTime req_o = 0.0;
          SimTime rep_e = 0.0;
          SimTime rep_o = 0.0;
          SimTime hop_e;
          SimTime hop_o;
          for (std::size_t h = 0; h < request_len; ++h) {
            double a = le[h];
            double b;
            if (reference_sampling) {
              // le still holds the raw uniform; take the scalar logs (the
              // exact 1.0 - u the fused block pass computes).
              b = fast_log(1.0 - a);
              a = fast_log(a);
            } else {
              b = lo[h];
            }
            model.combine_hop_pair(request_hops[h], a, b, rng, &hop_e,
                                   &hop_o);
            req_e += hop_e;
            req_o += hop_o;
          }
          for (std::size_t h = 0; h < reply_len; ++h) {
            double a = le[request_len + h];
            double b;
            if (reference_sampling) {
              b = fast_log(1.0 - a);
              a = fast_log(a);
            } else {
              b = lo[request_len + h];
            }
            model.combine_hop_pair(reply_hops[h], a, b, rng, &hop_e, &hop_o);
            rep_e += hop_e;
            rep_o += hop_o;
          }
          *req_out++ = req_e;
          *tot_out++ = req_e + rep_e;
          if (2 * (it0 + j) + 1 < samples_per_pair) {
            *req_out++ = req_o;
            *tot_out++ = req_o + rep_o;
          }
        }
      }
    }
    sample_count.add(static_cast<std::uint64_t>(
        buffers[q].shard_offset[s + 1] - buffers[q].shard_offset[s]));
  });

  // Merge in shard order — fixed regardless of execution interleaving.
  // Means run first, over the buffer's insertion order; quantiles then
  // select via nth_element, which permutes the buffers but never changes
  // which value sits at a given rank.
  for (std::size_t q = 0; q < queries.size(); ++q) {
    QueryBuffers& buf = buffers[q];
    if (buf.request.empty()) continue;
    out[q].request_mean = insertion_order_mean(buf.request);
    out[q].total_mean = insertion_order_mean(buf.total);
    out[q].request_p95 = nearest_rank_quantile(buf.request, 0.95);
    tail_quantiles(buf.total, &out[q].total_p95, &out[q].total_p99);
  }
  return out;
}

SlackEstimate estimate_network_slack(const Graph& graph,
                                     const ConsolidationResult& placement,
                                     const LinkUtilization& offered_load,
                                     const std::vector<FlowId>& request_flows,
                                     const std::vector<FlowId>& reply_flows,
                                     const SlackEstimatorConfig& config,
                                     ThreadPool* pool) {
  (void)graph;
  const SlackEstimator estimator(config);
  SlackEstimator::Query query;
  query.placement = &placement;
  query.offered_load = &offered_load;
  query.request_flows = &request_flows;
  query.reply_flows = &reply_flows;
  return estimator.estimate(query, pool);
}

}  // namespace eprons
