#include "core/slack_estimator.h"

#include <memory>
#include <utility>

#include "obs/telemetry.h"
#include "stats/percentile.h"

namespace eprons {

namespace {

struct ShardSamples {
  PercentileEstimator request;
  PercentileEstimator total;
};

}  // namespace

SlackEstimate estimate_network_slack(const Graph& graph,
                                     const ConsolidationResult& placement,
                                     const LinkUtilization& offered_load,
                                     const std::vector<FlowId>& request_flows,
                                     const std::vector<FlowId>& reply_flows,
                                     const SlackEstimatorConfig& config,
                                     ThreadPool* pool) {
  (void)graph;
  const obs::ScopedSpan span(obs::tracer(), "slack_estimate", "planner");
  static obs::Counter& estimate_calls =
      obs::metrics().counter("slack.estimates");
  static obs::Counter& sample_count = obs::metrics().counter("slack.samples");
  estimate_calls.add();

  auto routed = [&](FlowId id) -> const Path* {
    if (id < 0 ||
        static_cast<std::size_t>(id) >= placement.flow_paths.size()) {
      return nullptr;
    }
    const Path& p = placement.flow_paths[static_cast<std::size_t>(id)];
    return p.size() >= 2 ? &p : nullptr;
  };

  // Routed (request, reply) pairs in flow order; shard s owns every
  // `shards`-th pair starting at s, so the pair->shard mapping is fixed.
  std::vector<std::pair<const Path*, const Path*>> pairs;
  for (std::size_t i = 0;
       i < request_flows.size() && i < reply_flows.size(); ++i) {
    const Path* req = routed(request_flows[i]);
    const Path* rep = routed(reply_flows[i]);
    if (req && rep) pairs.emplace_back(req, rep);
  }

  SlackEstimate out;
  if (pairs.empty()) return out;

  const std::size_t shards = static_cast<std::size_t>(
      config.shards < 1 ? 1 : config.shards);
  // Every shard draws from its own split() stream of the experiment seed;
  // the streams (and therefore the estimate) are independent of which
  // worker runs which shard.
  std::vector<Rng> shard_rng;
  shard_rng.reserve(shards);
  Rng base(config.seed);
  for (std::size_t s = 0; s < shards; ++s) shard_rng.push_back(base.split());

  std::unique_ptr<ThreadPool> local_pool;
  if (!pool && config.runtime.threads > 1) {
    local_pool = std::make_unique<ThreadPool>(config.runtime.threads);
    pool = local_pool.get();
  }

  std::vector<ShardSamples> shard_samples(shards);
  parallel_for(pool, shards, [&](std::size_t s) {
    const obs::ScopedSpan shard_span(obs::tracer(), "slack_shard", "planner",
                                     "shard", static_cast<double>(s));
    Rng rng = shard_rng[s];
    const PathLatencyEstimator estimator(&offered_load, config.link_model);
    ShardSamples& samples = shard_samples[s];
    for (std::size_t i = s; i < pairs.size(); i += shards) {
      const auto& [req, rep] = pairs[i];
      for (int n = 0; n < config.samples_per_pair; ++n) {
        const SimTime lreq = estimator.sample_latency(*req, rng);
        const SimTime lrep = estimator.sample_latency(*rep, rng);
        samples.request.add(lreq);
        samples.total.add(lreq + lrep);
      }
    }
    sample_count.add(static_cast<std::uint64_t>(samples.total.samples().size()));
  });

  // Merge in shard order — fixed regardless of execution interleaving.
  PercentileEstimator request_samples;
  PercentileEstimator total_samples;
  for (const ShardSamples& samples : shard_samples) {
    for (double v : samples.request.samples()) request_samples.add(v);
    for (double v : samples.total.samples()) total_samples.add(v);
  }

  if (request_samples.empty()) return out;
  out.request_mean = request_samples.mean();
  out.request_p95 = request_samples.quantile(0.95);
  out.total_mean = total_samples.mean();
  out.total_p95 = total_samples.quantile(0.95);
  out.total_p99 = total_samples.quantile(0.99);
  return out;
}

}  // namespace eprons
