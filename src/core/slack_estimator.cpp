#include "core/slack_estimator.h"

#include "stats/percentile.h"

namespace eprons {

SlackEstimate estimate_network_slack(const Graph& graph,
                                     const ConsolidationResult& placement,
                                     const LinkUtilization& offered_load,
                                     const std::vector<FlowId>& request_flows,
                                     const std::vector<FlowId>& reply_flows,
                                     const SlackEstimatorConfig& config) {
  (void)graph;
  Rng rng(config.seed);
  PathLatencyEstimator estimator(&offered_load, config.link_model);
  PercentileEstimator request_samples;
  PercentileEstimator total_samples;

  auto routed = [&](FlowId id) -> const Path* {
    if (id < 0 ||
        static_cast<std::size_t>(id) >= placement.flow_paths.size()) {
      return nullptr;
    }
    const Path& p = placement.flow_paths[static_cast<std::size_t>(id)];
    return p.size() >= 2 ? &p : nullptr;
  };

  for (std::size_t i = 0;
       i < request_flows.size() && i < reply_flows.size(); ++i) {
    const Path* req = routed(request_flows[i]);
    const Path* rep = routed(reply_flows[i]);
    if (!req || !rep) continue;
    for (int s = 0; s < config.samples_per_pair; ++s) {
      const SimTime lreq = estimator.sample_latency(*req, rng);
      const SimTime lrep = estimator.sample_latency(*rep, rng);
      request_samples.add(lreq);
      total_samples.add(lreq + lrep);
    }
  }

  SlackEstimate out;
  if (request_samples.empty()) return out;
  out.request_mean = request_samples.mean();
  out.request_p95 = request_samples.quantile(0.95);
  out.total_mean = total_samples.mean();
  out.total_p95 = total_samples.quantile(0.95);
  out.total_p99 = total_samples.quantile(0.99);
  return out;
}

}  // namespace eprons
