// 24-hour diurnal trace replay (paper Fig. 15): total system power under
// no-power-management, TimeTrader, and EPRONS.
//
// Replaying 1440 minutes through the full DES would be needlessly slow, so
// we do what the paper itself describes for EPRONS ("we use a portion of
// the application queries to train our model"): calibrate each scheme's
// behavior with full DES runs on a grid of diurnal operating points, then
// interpolate along the trace.
//
// Scheme mapping:
//   * NoPM       — every switch on, every core at f_max.
//   * TimeTrader — every switch on (TimeTrader saves no DCN power; Fig. 15
//     shows its network line flat at no-PM level); server power from DES
//     runs with the "timetrader" policy.
//   * EPRONS     — per-epoch the joint optimizer picks the scale factor K /
//     subnet; server power from DES runs with the "eprons" policy on the
//     optimized placement.
#pragma once

#include <vector>

#include "core/joint_optimizer.h"
#include "sim/search_cluster.h"
#include "trace/diurnal.h"

namespace eprons {

/// The three power-management schemes Fig. 15 compares.
enum class Scheme { NoPowerManagement, TimeTrader, Eprons };
/// Human-readable scheme label ("no-pm", "timetrader", "eprons").
const char* scheme_name(Scheme scheme);

struct TraceReplayConfig {
  DiurnalTraceConfig trace;
  /// Server utilization at 100% search load.
  double peak_utilization = 0.5;
  /// Background elephants in the DCN (demand scales with the trace).
  int background_flows = 6;
  std::uint64_t seed = 5;

  /// Diurnal shape values (0 = trough, 1 = peak) at which the DES
  /// calibrates each scheme; the replay interpolates between them.
  std::vector<double> calibration_shapes = {0.0, 0.25, 0.5, 0.75, 1.0};

  /// Scenario template for the calibration runs.
  ScenarioConfig scenario;
  /// Joint optimizer settings for the EPRONS scheme.
  JointOptimizerConfig joint;
};

/// One full-DES calibration run at a fixed diurnal operating point; the
/// replay linearly interpolates power between neighbouring points.
struct CalibrationPoint {
  double shape = 0.0;  // diurnal shape value in [0, 1]
  double utilization = 0.0;
  double background_util = 0.0;
  Power cpu_power_per_server = 0.0;
  Power network_power = 0.0;
  int active_switches = 0;
  double subquery_miss_rate = 0.0;
  double chosen_k = 1.0;  // EPRONS only
  // EPRONS-only planner details (telemetry; defaults for the baselines).
  bool plan_feasible = true;
  Power predicted_total = 0.0;
  SimTime slack_total_p95 = 0.0;
  SimTime slack_total_p99 = 0.0;
  SimTime server_budget = 0.0;
};

/// Interpolated whole-system power draw for one trace minute.
struct MinutePower {
  int minute = 0;
  Power server_power = 0.0;   // whole cluster
  Power network_power = 0.0;  // whole DCN
  Power total_power = 0.0;
};

/// A scheme's full 24-h replay: calibration grid, per-minute series, and
/// the aggregates Fig. 15 plots.
struct ReplayResult {
  Scheme scheme = Scheme::NoPowerManagement;
  std::vector<CalibrationPoint> calibration;
  std::vector<MinutePower> series;
  Power average_server_power = 0.0;
  Power average_network_power = 0.0;
  Power average_total_power = 0.0;
  Power peak_total_power = 0.0;
  Power min_total_power = 0.0;
};

/// Calibrate-then-interpolate replay of the 24-h diurnal trace (Fig. 15).
class TraceReplay {
 public:
  /// All three models must outlive the replay (not owned).
  TraceReplay(const FatTree* topo, const ServiceModel* service_model,
              const ServerPowerModel* power_model,
              TraceReplayConfig config = {});

  /// Calibrates (full DES at the grid points) and replays the 24-h trace.
  ReplayResult replay(Scheme scheme) const;

  /// Savings of `result` relative to a no-PM baseline result, in percent
  /// of the baseline (Fig. 15(b)'s bars).
  struct Savings {
    double server_pct = 0.0;
    double network_pct = 0.0;
    double total_pct = 0.0;
    /// Highest per-minute total-power saving (the paper's "up to 31.25%").
    double peak_total_pct = 0.0;
  };
  static Savings savings(const ReplayResult& baseline,
                         const ReplayResult& result);

 private:
  CalibrationPoint calibrate_point(Scheme scheme, double shape) const;
  FlowSet background_at(double background_util, Rng& rng) const;

  const FatTree* topo_;
  const ServiceModel* service_model_;
  const ServerPowerModel* power_model_;
  TraceReplayConfig config_;
};

}  // namespace eprons
