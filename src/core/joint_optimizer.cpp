#include "core/joint_optimizer.h"

#include <algorithm>
#include <limits>
#include <vector>

namespace eprons {

JointOptimizer::JointOptimizer(const Topology* topo,
                               const ServiceModel* service_model,
                               const ServerPowerModel* power_model,
                               JointOptimizerConfig config,
                               const Consolidator* consolidator)
    : topo_(topo),
      service_model_(service_model),
      power_model_(power_model),
      config_(std::move(config)),
      consolidator_(consolidator ? consolidator : &default_consolidator_) {
  if (config_.runtime.threads > 1) {
    pool_ = std::make_unique<ThreadPool>(config_.runtime.threads);
  }
}

JointPlan JointOptimizer::plan_for_k(const FlowSet& background,
                                     double utilization, double k) const {
  return plan_impl(background, utilization, k, pool_.get(),
                   /*serial_slack=*/false);
}

JointPlan JointOptimizer::plan_impl(const FlowSet& background,
                                    double utilization, double k,
                                    ThreadPool* slack_pool,
                                    bool serial_slack) const {
  JointPlan plan;
  plan.k = k;

  // Assemble background + query flows (same layout as run_search_scenario).
  for (const Flow& f : background.flows()) {
    plan.flows.add(f.src_host, f.dst_host, f.demand, f.cls);
  }
  const int hosts = topo_->num_hosts();
  plan.request_flow.assign(static_cast<std::size_t>(hosts), kInvalidFlow);
  plan.reply_flow.assign(static_cast<std::size_t>(hosts), kInvalidFlow);
  for (int h = 0; h < hosts; ++h) {
    if (h == config_.aggregator_host) continue;
    plan.request_flow[static_cast<std::size_t>(h)] =
        plan.flows.add(config_.aggregator_host, h,
                       config_.query_request_demand,
                       FlowClass::LatencySensitive);
    plan.reply_flow[static_cast<std::size_t>(h)] =
        plan.flows.add(h, config_.aggregator_host,
                       config_.query_reply_demand,
                       FlowClass::LatencySensitive);
  }

  ConsolidationConfig consolidation = config_.consolidation;
  consolidation.scale_factor_k = k;
  plan.placement = consolidator_->consolidate(*topo_, plan.flows,
                                              consolidation);
  plan.network_power = plan.placement.network_power;

  // A margin-violating placement is never SLA-feasible, but it still has
  // best-effort paths — evaluate them so optimize() can rank fallbacks.
  const bool placement_ok = plan.placement.feasible;

  // Latency model sees actual average query rates, not reservations.
  const double lambda = query_arrival_rate_per_us(
      *service_model_, power_model_->num_cores(), utilization);
  const LinkUtilization load = scenario_offered_load(
      topo_->graph(), plan.placement, plan.flows, plan.request_flow,
      plan.reply_flow, query_stream_rate(lambda, 1000.0),
      query_stream_rate(lambda, 2000.0));
  SlackEstimatorConfig slack_config = config_.slack;
  if (serial_slack) slack_config.runtime.threads = 1;
  plan.slack = estimate_network_slack(topo_->graph(), plan.placement, load,
                                      plan.request_flow, plan.reply_flow,
                                      slack_config, slack_pool);

  // Server budget: the SLA minus what the network actually needs at its
  // 95th percentile round trip.
  plan.effective_server_budget =
      config_.latency_constraint - plan.slack.total_p95;
  if (plan.effective_server_budget <= 0.0) {
    plan.feasible = false;
    plan.total_power = plan.network_power +
                       hosts * power_model_->peak_power();
    return plan;
  }

  const ServerPowerPredictor predictor(service_model_, power_model_,
                                       config_.predictor);
  plan.server = predictor.predict(utilization, plan.effective_server_budget);
  plan.feasible = placement_ok && !plan.server.budget_infeasible;
  plan.total_power =
      plan.network_power + hosts * plan.server.server_power;
  return plan;
}

JointPlan JointOptimizer::optimize(const FlowSet& background,
                                   double utilization) const {
  std::vector<double> candidates;
  for (double k = config_.k_min; k <= config_.k_max + 1e-9;
       k += config_.k_step) {
    candidates.push_back(k);
  }

  // Evaluate every candidate independently (concurrently when a pool
  // exists). While the candidates occupy the pool the slack estimator runs
  // its shards serially within each candidate — shard count, not worker
  // placement, determines the estimates, so this only shapes the schedule.
  const bool parallel_candidates =
      pool_ != nullptr && pool_->num_threads() > 1 && candidates.size() > 1;
  std::vector<JointPlan> plans(candidates.size());
  parallel_for(pool_.get(), candidates.size(), [&](std::size_t i) {
    plans[i] = plan_impl(background, utilization, candidates[i],
                         parallel_candidates ? nullptr : pool_.get(),
                         /*serial_slack=*/parallel_candidates);
  });

  // Deterministic serial reduction in candidate order.
  JointPlan best;
  bool have_best = false;
  JointPlan fallback;
  SimTime fallback_p95 = std::numeric_limits<double>::infinity();
  for (JointPlan& plan : plans) {
    if (plan.feasible) {
      if (!have_best || plan.total_power < best.total_power) {
        best = std::move(plan);
        have_best = true;
      }
    } else if (!plan.flows.empty() && plan.slack.total_p95 > 0.0 &&
               plan.slack.total_p95 < fallback_p95) {
      fallback_p95 = plan.slack.total_p95;
      fallback = std::move(plan);
    }
  }
  if (have_best) return best;
  // Nothing met the SLA: surface the least-bad network (largest K that
  // still placed flows), marked infeasible so callers can alarm.
  return fallback;
}

}  // namespace eprons
