#include "core/joint_optimizer.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <vector>

#include "obs/telemetry.h"
#include "util/log.h"

namespace eprons {

namespace {

// K-search telemetry (see DESIGN.md "Observability"). All counters and
// histograms record logical quantities only, so snapshots are bit-identical
// for any --threads value.
struct PlannerMetrics {
  obs::Counter& candidates = obs::metrics().counter("planner.k_candidates");
  obs::Counter& feasible = obs::metrics().counter("planner.k_feasible");
  obs::Counter& infeasible_placement =
      obs::metrics().counter("planner.k_infeasible_placement");
  obs::Counter& infeasible_budget =
      obs::metrics().counter("planner.k_infeasible_budget");
  obs::Counter& searches = obs::metrics().counter("planner.searches");
  obs::Counter& searches_infeasible =
      obs::metrics().counter("planner.searches_infeasible");
  obs::Counter& warm_accepts = obs::metrics().counter("planner.warm_accepts");
  obs::Counter& warm_fallbacks =
      obs::metrics().counter("planner.warm_fallbacks");
  obs::Counter& cache_returns =
      obs::metrics().counter("planner.cache_returns");
  obs::Gauge& chosen_k = obs::metrics().gauge("planner.chosen_k");
  obs::Gauge& chosen_total_w = obs::metrics().gauge("planner.chosen_total_w");
  obs::Histogram& slack_p95 =
      obs::metrics().histogram("planner.slack_total_p95_us");
  obs::Histogram& plan_total_w =
      obs::metrics().histogram("planner.plan_total_w");

  static PlannerMetrics& get() {
    static PlannerMetrics m;
    return m;
  }
};

}  // namespace

const char* plan_reject_name(PlanReject reason) {
  switch (reason) {
    case PlanReject::None: return "";
    case PlanReject::BudgetExhausted: return "budget_exhausted";
    case PlanReject::PlacementInfeasible: return "placement_infeasible";
    case PlanReject::DvfsInfeasible: return "dvfs_infeasible";
  }
  return "";
}

namespace {

/// One candidate-K table row for the PlanExplain record.
obs::PlanCandidateExplain explain_candidate(const JointPlan& plan,
                                            bool from_cache) {
  obs::PlanCandidateExplain row;
  row.k = plan.k;
  row.feasible = plan.feasible;
  row.from_cache = from_cache;
  row.reject_reason = plan_reject_name(plan.reject);
  row.total_w = plan.total_power;
  row.network_w = plan.network_power;
  row.server_w = plan.server_power_w;
  row.violation_probability = plan.server.achieved_vp;
  row.slack_p95_us = plan.slack.total_p95;
  row.server_budget_us = plan.effective_server_budget;
  row.active_switches = plan.placement.active_switches;
  return row;
}

}  // namespace

// Background + query flows, identical for every K candidate of one
// optimize() call — assembled once and copied into each candidate's plan.
struct JointOptimizer::Assembly {
  FlowSet flows;
  std::vector<FlowId> request_flow;
  std::vector<FlowId> reply_flow;
};

JointOptimizer::JointOptimizer(const Topology* topo,
                               const ServiceModel* service_model,
                               const ServerPowerModel* power_model,
                               JointOptimizerConfig config,
                               const Consolidator* consolidator)
    : topo_(topo),
      service_model_(service_model),
      power_model_(power_model),
      config_(std::move(config)),
      consolidator_(consolidator ? consolidator : &default_consolidator_),
      path_catalog_(topo),
      vp_table_(std::make_unique<VpTable>(
          service_model,
          std::max<std::size_t>(1, config_.predictor.max_queue_depth))),
      plan_cache_(config_.incremental.enabled
                      ? config_.incremental.plan_cache_capacity
                      : 0) {
  if (config_.runtime.threads > 1) {
    pool_ = std::make_unique<ThreadPool>(config_.runtime.threads);
  }
}

JointOptimizer::Assembly JointOptimizer::assemble_flows(
    const FlowSet& background) const {
  Assembly assembly;
  // Same layout as run_search_scenario: background first, then one
  // request/reply flow per non-aggregator host.
  for (const Flow& f : background.flows()) {
    assembly.flows.add(f.src_host, f.dst_host, f.demand, f.cls);
  }
  const int hosts = topo_->num_hosts();
  assembly.request_flow.assign(static_cast<std::size_t>(hosts), kInvalidFlow);
  assembly.reply_flow.assign(static_cast<std::size_t>(hosts), kInvalidFlow);
  for (int h = 0; h < hosts; ++h) {
    if (h == config_.aggregator_host) continue;
    assembly.request_flow[static_cast<std::size_t>(h)] =
        assembly.flows.add(config_.aggregator_host, h,
                           config_.query_request_demand,
                           FlowClass::LatencySensitive);
    assembly.reply_flow[static_cast<std::size_t>(h)] =
        assembly.flows.add(h, config_.aggregator_host,
                           config_.query_reply_demand,
                           FlowClass::LatencySensitive);
  }
  return assembly;
}

void JointOptimizer::consolidate_into(JointPlan& plan,
                                      const Assembly& assembly, double k,
                                      const PlanConstraints* constraints,
                                      const WarmStartHint* warm,
                                      bool reference_enumeration) const {
  plan.k = k;
  plan.flows = assembly.flows;
  plan.request_flow = assembly.request_flow;
  plan.reply_flow = assembly.reply_flow;

  ConsolidationConfig consolidation = config_.consolidation;
  consolidation.scale_factor_k = k;
  // The catalog only memoizes what the consolidator would enumerate anyway
  // (candidate paths in identical order), so wiring it in never changes
  // the placement — reference_enumeration exists to prove that.
  if (reference_enumeration) {
    consolidation.path_catalog = nullptr;
  } else if (consolidation.path_catalog == nullptr) {
    consolidation.path_catalog = &path_catalog_;
  }
  if (constraints) {
    if (!constraints->allowed_switches.empty()) {
      consolidation.allowed_switches = constraints->allowed_switches;
    }
    if (!constraints->blocked_links.empty()) {
      consolidation.blocked_links = constraints->blocked_links;
    }
  }
  plan.placement =
      warm != nullptr
          ? consolidator_->consolidate_incremental(*topo_, plan.flows,
                                                   consolidation, warm)
          : consolidator_->consolidate(*topo_, plan.flows, consolidation);
  plan.network_power = plan.placement.network_power;
}

LinkUtilization JointOptimizer::offered_load_for(const JointPlan& plan,
                                                 double utilization) const {
  // Latency model sees actual average query rates, not reservations.
  const double lambda = query_arrival_rate_per_us(
      *service_model_, power_model_->num_cores(), utilization);
  return scenario_offered_load(topo_->graph(), plan.placement, plan.flows,
                               plan.request_flow, plan.reply_flow,
                               query_stream_rate(lambda, 1000.0),
                               query_stream_rate(lambda, 2000.0));
}

void JointOptimizer::finalize_plan(JointPlan& plan, double utilization,
                                   bool reference_dvfs) const {
  PlannerMetrics& pm = PlannerMetrics::get();
  pm.slack_p95.observe(plan.slack.total_p95);

  // A margin-violating placement is never SLA-feasible, but it still has
  // best-effort paths — evaluate them so optimize() can rank fallbacks.
  const bool placement_ok = plan.placement.feasible;
  const int hosts = topo_->num_hosts();

  // Server budget: the SLA minus what the network actually needs at its
  // 95th percentile round trip.
  plan.effective_server_budget =
      config_.latency_constraint - plan.slack.total_p95;
  if (plan.effective_server_budget <= 0.0) {
    plan.feasible = false;
    plan.reject = PlanReject::BudgetExhausted;
    // Charge the fleet at peak (no budget means no DVFS headroom), but
    // still as a component decomposition so the attribution ledger holds
    // on infeasible epochs too.
    plan.server = peak_power_prediction(*power_model_,
                                        service_model_->config().f_max);
    finalize_power_totals(plan);
    pm.infeasible_budget.add();
    EPRONS_LOG(Debug) << "K=" << plan.k << " rejected: network p95 "
                      << plan.slack.total_p95 << " us consumes the whole "
                      << config_.latency_constraint << " us SLA";
    return;
  }

  {
    const obs::ScopedSpan predict_span(obs::tracer(), "server_power_predict",
                                       "planner", "k", plan.k);
    const ServerPowerPredictor predictor(
        service_model_, power_model_, config_.predictor,
        reference_dvfs ? nullptr : vp_table_.get());
    plan.server = predictor.predict(utilization, plan.effective_server_budget);
  }
  plan.feasible = placement_ok && !plan.server.budget_infeasible;
  finalize_power_totals(plan);
  pm.plan_total_w.observe(plan.total_power);
  if (plan.feasible) {
    plan.reject = PlanReject::None;
    pm.feasible.add();
  } else if (!placement_ok) {
    plan.reject = PlanReject::PlacementInfeasible;
    pm.infeasible_placement.add();
    EPRONS_LOG(Debug) << "K=" << plan.k
                      << " rejected: consolidation violated the safety "
                         "margin or disconnected a pair";
  } else {
    plan.reject = PlanReject::DvfsInfeasible;
    pm.infeasible_budget.add();
    EPRONS_LOG(Debug) << "K=" << plan.k << " rejected: server budget "
                      << plan.effective_server_budget
                      << " us unreachable even at f_max";
  }
}

void JointOptimizer::finalize_power_totals(JointPlan& plan) const {
  const int hosts = topo_->num_hosts();
  plan.server_idle_w = hosts * plan.server.idle_w;
  plan.server_dynamic_w = hosts * plan.server.dynamic_w;
  plan.server_dvfs_residual_w = hosts * plan.server.dvfs_residual_w;
  plan.server_power_w = (plan.server_idle_w + plan.server_dynamic_w) +
                        plan.server_dvfs_residual_w;
  plan.total_power = plan.network_power + plan.server_power_w;
}

void JointOptimizer::explain_header(obs::PlanExplainRecord& explain,
                                    const char* path,
                                    const JointPlan& chosen) const {
  explain.path = path;
  explain.chosen_k = chosen.k;
  explain.feasible = chosen.feasible;
  explain.chosen_total_w = chosen.total_power;
  explain.consolidation_on_w = chosen.network_power;
  // The "consolidation off" baseline: every switch and link powered.
  int switches = 0;
  for (const Node& n : topo_->graph().nodes()) {
    if (is_switch_type(n.type)) ++switches;
  }
  explain.consolidation_off_w =
      switches * config_.consolidation.switch_power +
      static_cast<double>(topo_->graph().num_links()) *
          config_.consolidation.link_power;
  explain.candidates.clear();
}

JointPlan JointOptimizer::plan_impl(const Assembly& assembly,
                                    double utilization, double k,
                                    ThreadPool* slack_pool, bool serial_slack,
                                    const PlanConstraints* constraints,
                                    const WarmStartHint* warm,
                                    const ReferenceKnobs& knobs) const {
  const obs::ScopedSpan span(obs::tracer(), "plan_k", "planner", "k", k);
  PlannerMetrics& pm = PlannerMetrics::get();
  pm.candidates.add();

  JointPlan plan;
  consolidate_into(plan, assembly, k, constraints, warm, knobs.enumeration);

  const LinkUtilization load = offered_load_for(plan, utilization);
  SlackEstimatorConfig slack_config = config_.slack;
  if (serial_slack) slack_config.runtime.threads = 1;
  const SlackEstimator estimator(slack_config);
  SlackEstimator::Query query;
  query.placement = &plan.placement;
  query.offered_load = &load;
  query.request_flows = &plan.request_flow;
  query.reply_flows = &plan.reply_flow;
  plan.slack = estimator.estimate(query, slack_pool, knobs.slack);

  finalize_plan(plan, utilization, knobs.dvfs);
  return plan;
}

JointPlan JointOptimizer::plan_for_k(const FlowSet& background,
                                     double utilization, double k) const {
  const Assembly assembly = assemble_flows(background);
  return plan_impl(assembly, utilization, k, pool_.get(),
                   /*serial_slack=*/false, /*constraints=*/nullptr,
                   /*warm=*/nullptr, ReferenceKnobs{});
}

JointPlan JointOptimizer::optimize(const PlanRequest& request) const {
  if (request.background == nullptr) {
    throw std::invalid_argument(
        "PlanRequest.background must point to the background FlowSet");
  }
  const Assembly assembly = assemble_flows(*request.background);
  if (!config_.incremental.enabled) {
    return cold_search(assembly, request, nullptr);
  }

  PlannerMetrics& pm = PlannerMetrics::get();
  const PlanConstraints& constraints = request.constraints;
  const std::uint64_t demand_fp = demand_fingerprint(*request.background);
  const std::uint64_t constraint_fp = fingerprint_constraints(
      constraints.allowed_switches, constraints.blocked_links,
      constraints.k_min);
  const PlanCacheKey base_key = make_plan_cache_key(
      demand_fp, constraint_fp, 0.0, request.utilization);

  const double k_floor = std::max(config_.k_min, constraints.k_min);
  const JointPlan* previous = request.previous;
  const bool warm_eligible =
      previous != nullptr && previous->feasible &&
      previous->k >= k_floor - 1e-9 && previous->k <= config_.k_max + 1e-9;
  if (warm_eligible) {
    const obs::ScopedSpan span(obs::tracer(), "k_search_warm", "planner",
                               "utilization", request.utilization);
    const PlanCacheKey key = make_plan_cache_key(
        demand_fp, constraint_fp, previous->k, request.utilization);
    JointPlan cached;
    if (plan_cache_.find(key, &cached) && cached.feasible) {
      pm.searches.add();
      pm.cache_returns.add();
      pm.chosen_k.set(cached.k);
      pm.chosen_total_w.set(cached.total_power);
      if (request.explain != nullptr) {
        explain_header(*request.explain, "cache_hit", cached);
        request.explain->candidates.push_back(
            explain_candidate(cached, /*from_cache=*/true));
      }
      EPRONS_LOG(Info) << "k-search (warm): cache hit for K=" << cached.k
                       << " (" << cached.total_power << " W predicted total)";
      return cached;
    }

    const bool constrained = !constraints.allowed_switches.empty() ||
                             !constraints.blocked_links.empty() ||
                             constraints.k_min > 0.0;
    const ReferenceKnobs knobs{request.use_reference_slack,
                               request.use_reference_dvfs,
                               request.use_reference_enumeration};
    WarmStartHint hint;
    hint.previous_flows = &previous->flows;
    hint.previous = &previous->placement;
    hint.max_extra_switches = config_.incremental.max_extra_switches;
    JointPlan plan = plan_impl(assembly, request.utilization, previous->k,
                               pool_.get(), /*serial_slack=*/false,
                               constrained ? &constraints : nullptr, &hint,
                               knobs);
    if (plan.feasible) {
      pm.searches.add();
      pm.warm_accepts.add();
      plan_cache_.insert(key, plan);
      pm.chosen_k.set(plan.k);
      pm.chosen_total_w.set(plan.total_power);
      if (request.explain != nullptr) {
        explain_header(*request.explain, "warm", plan);
        request.explain->candidates.push_back(
            explain_candidate(plan, /*from_cache=*/false));
      }
      EPRONS_LOG(Info) << "k-search (warm): kept K=" << plan.k << " ("
                       << plan.placement.active_switches << " switches, "
                       << plan.total_power << " W predicted total, "
                       << (plan.placement.warm_started ? "incremental"
                                                       : "cold")
                       << " pack); full sweep skipped";
      return plan;
    }
    pm.warm_fallbacks.add();
    EPRONS_LOG(Info) << "k-search (warm): previous K=" << previous->k
                     << " no longer feasible; falling back to the cold "
                        "full sweep";
  }
  return cold_search(assembly, request, &base_key);
}

JointPlan JointOptimizer::cold_search(const Assembly& assembly,
                                      const PlanRequest& request,
                                      const PlanCacheKey* cache_key) const {
  const obs::ScopedSpan span(obs::tracer(), "k_search", "planner",
                             "utilization", request.utilization);
  PlannerMetrics& pm = PlannerMetrics::get();
  pm.searches.add();

  const PlanConstraints& constraints = request.constraints;
  const bool constrained = !constraints.allowed_switches.empty() ||
                           !constraints.blocked_links.empty() ||
                           constraints.k_min > 0.0;
  const double k_floor = std::max(config_.k_min, constraints.k_min);
  std::vector<double> candidates;
  for (double k = k_floor; k <= config_.k_max + 1e-9; k += config_.k_step) {
    candidates.push_back(k);
  }
  if (candidates.empty()) candidates.push_back(config_.k_max);

  // Plan-cache probes happen serially *before* the parallel region, and
  // inserts serially after it (candidate order), so the cache's contents
  // and hit/miss counters never depend on the worker count.
  std::vector<JointPlan> plans(candidates.size());
  std::vector<bool> from_cache(candidates.size(), false);
  if (cache_key != nullptr) {
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      PlanCacheKey key = *cache_key;
      key.k_bits = make_plan_cache_key(0, 0, candidates[i], 0.0).k_bits;
      from_cache[i] = plan_cache_.find(key, &plans[i]);
    }
  }

  const ReferenceKnobs knobs{request.use_reference_slack,
                             request.use_reference_dvfs,
                             request.use_reference_enumeration};
  const bool parallel_candidates =
      pool_ != nullptr && pool_->num_threads() > 1 && candidates.size() > 1;

  if (request.use_reference_slack) {
    // Reference sweep shape: every candidate runs the whole per-candidate
    // pipeline (concurrently when a pool exists). While the candidates
    // occupy the pool the slack estimator runs its shards serially within
    // each candidate — shard count, not worker placement, determines the
    // estimates, so this only shapes the schedule.
    parallel_for(pool_.get(), candidates.size(), [&](std::size_t i) {
      if (from_cache[i]) return;
      plans[i] = plan_impl(assembly, request.utilization, candidates[i],
                           parallel_candidates ? nullptr : pool_.get(),
                           /*serial_slack=*/parallel_candidates,
                           constrained ? &constraints : nullptr,
                           /*warm=*/nullptr, knobs);
    });
  } else {
    // Fast sweep, stage 1: consolidate every candidate (concurrently when
    // a pool exists). Consolidation is cheap next to slack estimation, but
    // keeping it parallel preserves the sweep's scaling on big topologies.
    parallel_for(pool_.get(), candidates.size(), [&](std::size_t i) {
      if (from_cache[i]) return;
      const obs::ScopedSpan k_span(obs::tracer(), "plan_k", "planner", "k",
                                   candidates[i]);
      pm.candidates.add();
      consolidate_into(plans[i], assembly, candidates[i],
                       constrained ? &constraints : nullptr,
                       /*warm=*/nullptr, knobs.enumeration);
    });

    // Stage 2: slack. Identical routings (flow_paths) across the sweep see
    // identical offered load, and the estimate is a pure function of
    // (routing, load, seed) — so estimate once per unique routing and
    // share the result. At moderate load every K often consolidates to the
    // same routing, collapsing the sweep's Monte-Carlo cost to one
    // estimate. Grouping runs serially in candidate order; the batch
    // itself parallelizes over (query, shard) units.
    std::vector<std::size_t> leaders;
    std::vector<std::size_t> group_of(candidates.size(), 0);
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      if (from_cache[i]) continue;
      bool grouped = false;
      for (std::size_t g = 0; g < leaders.size(); ++g) {
        if (plans[leaders[g]].placement.flow_paths ==
            plans[i].placement.flow_paths) {
          group_of[i] = g;
          grouped = true;
          break;
        }
      }
      if (!grouped) {
        group_of[i] = leaders.size();
        leaders.push_back(i);
      }
    }

    std::vector<LinkUtilization> loads;
    loads.reserve(leaders.size());
    for (std::size_t j : leaders) {
      loads.push_back(offered_load_for(plans[j], request.utilization));
    }
    std::vector<SlackEstimator::Query> queries;
    queries.reserve(leaders.size());
    for (std::size_t g = 0; g < leaders.size(); ++g) {
      SlackEstimator::Query query;
      query.placement = &plans[leaders[g]].placement;
      query.offered_load = &loads[g];
      query.request_flows = &plans[leaders[g]].request_flow;
      query.reply_flows = &plans[leaders[g]].reply_flow;
      queries.push_back(query);
    }
    const SlackEstimator estimator(config_.slack);
    const std::vector<SlackEstimate> estimates =
        estimator.estimate_many(queries, pool_.get());

    // Stage 3: budget split, prediction and classification per candidate,
    // serially in candidate order (telemetry order matches the reference).
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      if (from_cache[i]) continue;
      plans[i].slack = estimates[group_of[i]];
      finalize_plan(plans[i], request.utilization, knobs.dvfs);
    }
  }

  if (cache_key != nullptr) {
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      if (from_cache[i]) continue;
      PlanCacheKey key = *cache_key;
      key.k_bits = make_plan_cache_key(0, 0, candidates[i], 0.0).k_bits;
      plan_cache_.insert(key, plans[i]);
    }
  }

  // The candidate-K table must be captured before the reduction below
  // moves plans out of the vector.
  std::vector<obs::PlanCandidateExplain> explain_rows;
  if (request.explain != nullptr) {
    explain_rows.reserve(plans.size());
    for (std::size_t i = 0; i < plans.size(); ++i) {
      explain_rows.push_back(explain_candidate(plans[i], from_cache[i]));
    }
  }

  // Deterministic serial reduction in candidate order.
  JointPlan best;
  bool have_best = false;
  JointPlan fallback;
  SimTime fallback_p95 = std::numeric_limits<double>::infinity();
  for (JointPlan& plan : plans) {
    if (plan.feasible) {
      if (!have_best || plan.total_power < best.total_power) {
        best = std::move(plan);
        have_best = true;
      }
    } else if (!plan.flows.empty() && plan.slack.total_p95 > 0.0 &&
               plan.slack.total_p95 < fallback_p95) {
      fallback_p95 = plan.slack.total_p95;
      fallback = std::move(plan);
    }
  }
  // Telemetry for the serial reduction: gauges are only ever set here (in
  // program order), so they are deterministic for any worker count.
  if (have_best) {
    pm.chosen_k.set(best.k);
    pm.chosen_total_w.set(best.total_power);
    if (request.explain != nullptr) {
      explain_header(*request.explain, "cold", best);
      request.explain->candidates = std::move(explain_rows);
    }
    EPRONS_LOG(Info) << "k-search: chose K=" << best.k << " ("
                     << best.placement.active_switches << " switches, "
                     << best.total_power << " W predicted total, server "
                        "budget "
                     << best.effective_server_budget << " us) among "
                     << candidates.size() << " candidates";
    return best;
  }
  // Nothing met the SLA: surface the least-bad network (largest K that
  // still placed flows), marked infeasible so callers can alarm.
  pm.searches_infeasible.add();
  pm.chosen_k.set(fallback.k);
  pm.chosen_total_w.set(fallback.total_power);
  if (request.explain != nullptr) {
    explain_header(*request.explain, "cold", fallback);
    request.explain->candidates = std::move(explain_rows);
  }
  EPRONS_LOG(Info) << "k-search: no feasible K in [" << config_.k_min << ", "
                   << config_.k_max << "]; falling back to K=" << fallback.k
                   << " (network p95 " << fallback.slack.total_p95
                   << " us, marked infeasible)";
  return fallback;
}

JointPlan JointOptimizer::optimize(const FlowSet& background,
                                   double utilization) const {
  PlanRequest request;
  request.background = &background;
  request.utilization = utilization;
  return optimize(request);
}

JointPlan JointOptimizer::optimize(const FlowSet& background,
                                   double utilization,
                                   const PlanConstraints& constraints) const {
  PlanRequest request;
  request.background = &background;
  request.utilization = utilization;
  request.constraints = constraints;
  return optimize(request);
}

JointPlan JointOptimizer::optimize(const FlowSet& background,
                                   double utilization,
                                   const PlanConstraints& constraints,
                                   const JointPlan* previous) const {
  PlanRequest request;
  request.background = &background;
  request.utilization = utilization;
  request.constraints = constraints;
  request.previous = previous;
  return optimize(request);
}

}  // namespace eprons
