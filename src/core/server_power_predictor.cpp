#include "core/server_power_predictor.h"

#include <algorithm>
#include <cmath>

namespace eprons {

ServerPowerPrediction peak_power_prediction(const ServerPowerModel& model,
                                            Freq f_max) {
  ServerPowerPrediction out;
  out.frequency = f_max;
  out.busy_fraction = 1.0;
  out.achieved_vp = 1.0;
  out.budget_infeasible = true;
  const int cores = model.num_cores();
  const Power core_idle = model.core_power(false, 0.0);
  const Power a_fmax = model.core_power(true, f_max);
  out.idle_w = model.config().static_power + cores * core_idle;
  out.dynamic_w = cores * (a_fmax - core_idle);
  out.dvfs_residual_w = 0.0;
  out.server_power = (out.idle_w + out.dynamic_w) + out.dvfs_residual_w;
  return out;
}

ServerPowerPredictor::ServerPowerPredictor(const ServiceModel* service_model,
                                           const ServerPowerModel* power_model,
                                           ServerPowerPredictorConfig config,
                                           const VpTable* vp_table)
    : service_model_(service_model),
      power_model_(power_model),
      config_(config),
      vp_table_(vp_table) {}

ServerPowerPrediction ServerPowerPredictor::predict(double utilization,
                                                    SimTime budget) const {
  ServerPowerPrediction out;
  utilization = std::clamp(utilization, 0.0, 0.99);

  // Expected queue position of an arriving request on its core: with
  // per-core queues and busy fraction rho the geometric estimate is
  // rho / (1 - rho); +1 for the request itself.
  const double rho = utilization;
  const double depth_est = rho / (1.0 - rho);
  const std::size_t depth = 1 + std::min<std::size_t>(
      config_.max_queue_depth - 1,
      static_cast<std::size_t>(std::lround(depth_est)));

  // Frequency a statistical policy would pick: the equivalent request (the
  // arrival plus everything estimated ahead of it) must meet the budget at
  // the target violation probability. The grid scan stays linear in both
  // branches — the first qualifying frequency must win identically.
  const auto& grid = service_model_->frequency_grid();
  Freq chosen = grid.back();
  bool found = false;
  double achieved_vp = 1.0;
  // Both branches record the violation probability actually achieved at
  // the chosen frequency; the VpTable's bit-exactness contract (see
  // dvfs/vp_table.h) makes the value identical either way.
  if (vp_table_ != nullptr && depth <= vp_table_->max_depth()) {
    for (std::size_t fi = 0; fi < grid.size(); ++fi) {
      const double vp = vp_table_->violation_probability(depth, budget, fi);
      if (vp <= config_.target_vp) {
        chosen = grid[fi];
        found = true;
        achieved_vp = vp;
        break;
      }
    }
  } else {
    const DiscreteDistribution& equivalent =
        service_model_->fresh_convolution(depth);
    for (Freq f : grid) {
      const double vp = service_model_->violation_probability(
          equivalent, 0.0, budget, f);
      if (vp <= config_.target_vp) {
        chosen = f;
        found = true;
        achieved_vp = vp;
        break;
      }
    }
  }
  out.budget_infeasible = !found;
  out.frequency = chosen;
  out.achieved_vp = achieved_vp;

  // Slowdown inflates the busy fraction.
  const SimTime s_fast =
      service_model_->mean_service_time(service_model_->config().f_max);
  const SimTime s_slow = service_model_->mean_service_time(chosen);
  out.busy_fraction = std::min(0.999, utilization * s_slow / s_fast);

  // Component decomposition (obs/attribution.h): the idle floor, the cost
  // of the work at f_max, and the residual from running at the chosen
  // frequency instead. The headline server_power is *defined* as their
  // fixed-order sum so the ledger sums bit-identically to the total.
  const int cores = power_model_->num_cores();
  const Power core_active = power_model_->core_power(true, chosen);
  const Power core_idle = power_model_->core_power(false, 0.0);
  const Power a_fmax =
      power_model_->core_power(true, service_model_->config().f_max);
  out.idle_w = power_model_->config().static_power + cores * core_idle;
  out.dynamic_w = cores * out.busy_fraction * (a_fmax - core_idle);
  out.dvfs_residual_w = cores * out.busy_fraction * (core_active - a_fmax);
  out.server_power = (out.idle_w + out.dynamic_w) + out.dvfs_residual_w;
  return out;
}

}  // namespace eprons
