// One-stop scenario construction for benches, examples, and tests.
//
// Every experiment in this repo needs the same three long-lived models —
// a topology, a service-time model, a server power model — plus the glue
// pointers between them. ScenarioBuilder derives all of them from a single
// seed (deterministically), and the resulting Scenario hands out fully
// wired planners/simulators, replacing the raw three-pointer
// `JointOptimizer(&topo, &service, &power, ...)` wiring that used to be
// copy-pasted across every bench binary and example.
//
//   Scenario scn = ScenarioBuilder().seed(1).fat_tree(4).build();
//   const JointOptimizer opt = scn.optimizer();
//   const ScenarioResult r = scn.run(background, scenario_config, &subnet);
#pragma once

#include <cstdint>
#include <memory>

#include "core/epoch_controller.h"
#include "core/joint_optimizer.h"
#include "core/trace_replay.h"
#include "dvfs/synthetic_workload.h"
#include "sim/search_cluster.h"
#include "topo/fattree.h"
#include "topo/leaf_spine.h"
#include "util/thread_pool.h"

namespace eprons {

class ScenarioBuilder;

/// An immutable, self-owning experiment substrate. Factory methods return
/// components wired to the scenario's models; the Scenario must outlive
/// everything it hands out.
class Scenario {
 public:
  Scenario(Scenario&&) = default;
  Scenario& operator=(Scenario&&) = default;

  const Topology& topology() const { return *topo_; }
  /// Non-null only when the topology is a fat-tree (AggregationPolicies
  /// and TraceReplay are fat-tree specific).
  const FatTree* fat_tree() const { return fat_tree_; }
  const ServiceModel& service_model() const { return *service_; }
  const ServerPowerModel& power_model() const { return *power_; }
  const RuntimeConfig& runtime() const { return runtime_; }
  std::uint64_t seed() const { return seed_; }

  /// Background-flow generator config matched to this topology; the
  /// aggregator host's edge group is excluded so elephants never contend
  /// with the query fan-in on its edge downlink.
  FlowGenConfig flow_gen(int aggregator_host = 0) const;

  /// A joint optimizer on this scenario's models. The scenario's runtime
  /// (thread count) is applied unless the config already asks for
  /// parallelism. Pass a Consolidator to override greedy placement.
  JointOptimizer optimizer(JointOptimizerConfig config = {},
                           const Consolidator* consolidator = nullptr) const;

  /// The measure->predict->optimize->reconfigure loop on this scenario.
  EpochController epoch_controller(EpochControllerConfig config = {}) const;

  /// Diurnal trace replay (fat-tree scenarios only).
  TraceReplay trace_replay(TraceReplayConfig config = {}) const;

  /// Full DES validation run (see run_search_scenario).
  ScenarioResult run(const FlowSet& background, const ScenarioConfig& config,
                     const std::vector<bool>* subnet = nullptr) const;

 private:
  friend class ScenarioBuilder;
  Scenario() = default;

  std::unique_ptr<const Topology> topo_;
  const FatTree* fat_tree_ = nullptr;
  std::unique_ptr<const ServiceModel> service_;
  std::unique_ptr<const ServerPowerModel> power_;
  RuntimeConfig runtime_;
  std::uint64_t seed_ = 1;
};

/// Builds a Scenario from one seed. All setters are optional; the default
/// is the paper's evaluation substrate (4-ary fat-tree, synthetic search
/// workload, 12-core Xeon power calibration, serial runtime).
class ScenarioBuilder {
 public:
  ScenarioBuilder& seed(std::uint64_t seed) {
    seed_ = seed;
    return *this;
  }
  ScenarioBuilder& fat_tree(int k) {
    fat_tree_k_ = k;
    leaf_spine_ = false;
    return *this;
  }
  ScenarioBuilder& leaf_spine(int leaves, int spines, int hosts_per_leaf) {
    leaf_spine_ = true;
    leaves_ = leaves;
    spines_ = spines;
    hosts_per_leaf_ = hosts_per_leaf;
    return *this;
  }
  ScenarioBuilder& workload(SyntheticWorkloadConfig config) {
    workload_ = config;
    return *this;
  }
  ScenarioBuilder& power_model(ServerPowerModel model) {
    power_ = model;
    return *this;
  }
  ScenarioBuilder& runtime(RuntimeConfig runtime) {
    runtime_ = runtime;
    return *this;
  }
  ScenarioBuilder& threads(int threads) {
    runtime_.threads = threads;
    return *this;
  }

  Scenario build() const;

 private:
  std::uint64_t seed_ = 1;
  int fat_tree_k_ = 4;
  bool leaf_spine_ = false;
  int leaves_ = 4;
  int spines_ = 4;
  int hosts_per_leaf_ = 4;
  SyntheticWorkloadConfig workload_;
  ServerPowerModel power_;
  RuntimeConfig runtime_;
};

}  // namespace eprons
