#include "core/plan_cache.h"

#include <cstring>
#include <deque>
#include <map>
#include <mutex>

#include "core/joint_optimizer.h"
#include "obs/telemetry.h"

namespace eprons {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void fnv_mix(std::uint64_t& h, std::uint64_t value) {
  for (int byte = 0; byte < 8; ++byte) {
    h ^= (value >> (byte * 8)) & 0xffu;
    h *= kFnvPrime;
  }
}

std::uint64_t double_bits(double value) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

void fnv_mix_mask(std::uint64_t& h, const std::vector<bool>& mask) {
  fnv_mix(h, static_cast<std::uint64_t>(mask.size()));
  std::uint64_t word = 0;
  int filled = 0;
  for (const bool bit : mask) {
    word = (word << 1) | (bit ? 1u : 0u);
    if (++filled == 64) {
      fnv_mix(h, word);
      word = 0;
      filled = 0;
    }
  }
  if (filled > 0) fnv_mix(h, word);
}

}  // namespace

PlanCacheKey make_plan_cache_key(std::uint64_t demand_fingerprint,
                                 std::uint64_t constraint_fingerprint,
                                 double k, double utilization) {
  PlanCacheKey key;
  key.demand_fingerprint = demand_fingerprint;
  key.constraint_fingerprint = constraint_fingerprint;
  key.k_bits = double_bits(k);
  key.utilization_bits = double_bits(utilization);
  return key;
}

std::uint64_t fingerprint_constraints(const std::vector<bool>& allowed_switches,
                                      const std::vector<bool>& blocked_links,
                                      double k_min) {
  std::uint64_t h = kFnvOffset;
  fnv_mix_mask(h, allowed_switches);
  fnv_mix_mask(h, blocked_links);
  fnv_mix(h, double_bits(k_min));
  return h;
}

struct PlanCache::Impl {
  explicit Impl(std::size_t cap) : capacity(cap) {}

  std::size_t capacity;
  mutable std::mutex mu;
  std::map<PlanCacheKey, JointPlan> entries;
  std::deque<PlanCacheKey> order;  // FIFO insertion order
};

PlanCache::PlanCache(std::size_t capacity)
    : impl_(std::make_unique<Impl>(capacity)) {}

PlanCache::~PlanCache() = default;
PlanCache::PlanCache(PlanCache&&) noexcept = default;
PlanCache& PlanCache::operator=(PlanCache&&) noexcept = default;

bool PlanCache::find(const PlanCacheKey& key, JointPlan* out) const {
  static obs::Counter& hits = obs::metrics().counter("plan_cache.hits");
  static obs::Counter& misses = obs::metrics().counter("plan_cache.misses");
  const std::lock_guard<std::mutex> lock(impl_->mu);
  const auto it = impl_->entries.find(key);
  if (it == impl_->entries.end()) {
    misses.add();
    return false;
  }
  hits.add();
  if (out != nullptr) *out = it->second;
  return true;
}

void PlanCache::insert(const PlanCacheKey& key, const JointPlan& plan) {
  static obs::Counter& evictions =
      obs::metrics().counter("plan_cache.evictions");
  if (impl_->capacity == 0) return;
  const std::lock_guard<std::mutex> lock(impl_->mu);
  if (impl_->entries.count(key) > 0) return;  // first insert wins
  if (impl_->entries.size() >= impl_->capacity) {
    impl_->entries.erase(impl_->order.front());
    impl_->order.pop_front();
    evictions.add();
  }
  impl_->entries.emplace(key, plan);
  impl_->order.push_back(key);
}

std::size_t PlanCache::size() const {
  const std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->entries.size();
}

std::size_t PlanCache::capacity() const { return impl_->capacity; }

}  // namespace eprons
