#include "core/trace_replay.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/telemetry.h"
#include "topo/aggregation.h"

namespace eprons {

const char* scheme_name(Scheme scheme) {
  switch (scheme) {
    case Scheme::NoPowerManagement: return "no-power-management";
    case Scheme::TimeTrader: return "timetrader";
    case Scheme::Eprons: return "eprons";
  }
  return "?";
}

TraceReplay::TraceReplay(const FatTree* topo,
                         const ServiceModel* service_model,
                         const ServerPowerModel* power_model,
                         TraceReplayConfig config)
    : topo_(topo),
      service_model_(service_model),
      power_model_(power_model),
      config_(std::move(config)) {}

FlowSet TraceReplay::background_at(double background_util, Rng& rng) const {
  FlowGenConfig gen;
  gen.num_hosts = topo_->num_hosts();
  gen.link_capacity = topo_->link_capacity();
  gen.hosts_per_edge = topo_->k() / 2;
  gen.exclude_host = config_.scenario.cluster.aggregator_host;
  return make_background_flows(gen, config_.background_flows, background_util,
                               /*jitter=*/0.1, rng);
}

CalibrationPoint TraceReplay::calibrate_point(Scheme scheme,
                                              double shape) const {
  // scheme_name() returns string literals, satisfying the tracer's static-
  // lifetime requirement.
  const obs::ScopedSpan span(obs::tracer(), scheme_name(scheme), "calibrate",
                             "shape", shape);
  CalibrationPoint point;
  point.shape = shape;
  const auto& tc = config_.trace;
  const double search_load =
      tc.search_trough + (tc.search_peak - tc.search_trough) * shape;
  point.utilization =
      std::max(0.02, config_.peak_utilization * search_load);
  point.background_util =
      tc.background_trough +
      (tc.background_peak - tc.background_trough) * shape;

  Rng rng(config_.seed + static_cast<std::uint64_t>(shape * 1000.0));
  const FlowSet background = background_at(point.background_util, rng);

  ScenarioConfig scenario = config_.scenario;
  scenario.cluster.target_utilization = point.utilization;

  const AggregationPolicies policies(topo_);
  const std::vector<bool> full = policies.policy(0).switch_on;

  switch (scheme) {
    case Scheme::NoPowerManagement:
    case Scheme::TimeTrader: {
      scenario.cluster.policy =
          scheme == Scheme::NoPowerManagement ? "max" : "timetrader";
      // No DCN power management: the full topology stays on.
      const ScenarioResult run = run_search_scenario(
          *topo_, *service_model_, *power_model_, background, scenario,
          &full);
      point.cpu_power_per_server = run.metrics.avg_cpu_power_per_server;
      point.network_power = run.metrics.network_power;
      point.active_switches = topo_->num_switches();
      point.subquery_miss_rate = run.metrics.subquery_miss_rate;
      break;
    }
    case Scheme::Eprons: {
      // The joint optimizer picks K (and thus the subnet) for this epoch.
      const JointOptimizer optimizer(topo_, service_model_, power_model_,
                                     config_.joint);
      PlanRequest request;
      request.background = &background;
      request.utilization = point.utilization;
      const JointPlan plan = optimizer.optimize(request);
      point.chosen_k = plan.k;
      point.plan_feasible = plan.feasible;
      point.predicted_total = plan.total_power;
      point.slack_total_p95 = plan.slack.total_p95;
      point.slack_total_p99 = plan.slack.total_p99;
      point.server_budget = plan.effective_server_budget;
      scenario.cluster.policy = "eprons";
      if (plan.feasible) {
        // Give the servers the budget the optimizer measured as available
        // after the network's p95 share.
        scenario.cluster.server_budget =
            std::min(scenario.cluster.latency_constraint,
                     plan.effective_server_budget);
      }
      // Simulate on the optimizer's placement: restrict routing to its
      // active subnet so the DES sees the same consolidation.
      const ScenarioResult run = run_search_scenario(
          *topo_, *service_model_, *power_model_, background, scenario,
          plan.placement.feasible ? &plan.placement.switch_on : &full);
      point.cpu_power_per_server = run.metrics.avg_cpu_power_per_server;
      point.network_power = run.metrics.network_power;
      point.active_switches = plan.placement.feasible
                                  ? plan.placement.active_switches
                                  : topo_->num_switches();
      point.subquery_miss_rate = run.metrics.subquery_miss_rate;
      break;
    }
  }
  return point;
}

namespace {

// Piecewise-linear interpolation over calibration points sorted by shape.
double interpolate(const std::vector<CalibrationPoint>& points, double shape,
                   double CalibrationPoint::*field) {
  if (points.empty()) return 0.0;
  if (shape <= points.front().shape) return points.front().*field;
  if (shape >= points.back().shape) return points.back().*field;
  for (std::size_t i = 1; i < points.size(); ++i) {
    if (shape <= points[i].shape) {
      const double t = (shape - points[i - 1].shape) /
                       (points[i].shape - points[i - 1].shape);
      return points[i - 1].*field +
             t * (points[i].*field - points[i - 1].*field);
    }
  }
  return points.back().*field;
}

// Network power switches in discrete steps; use the nearest point.
double nearest(const std::vector<CalibrationPoint>& points, double shape,
               double CalibrationPoint::*field) {
  double best = std::numeric_limits<double>::infinity();
  double value = 0.0;
  for (const CalibrationPoint& p : points) {
    const double d = std::abs(p.shape - shape);
    if (d < best) {
      best = d;
      value = p.*field;
    }
  }
  return value;
}

}  // namespace

ReplayResult TraceReplay::replay(Scheme scheme) const {
  const obs::ScopedSpan span(obs::tracer(), "replay", "replay");
  ReplayResult result;
  result.scheme = scheme;
  for (double shape : config_.calibration_shapes) {
    result.calibration.push_back(calibrate_point(scheme, shape));
  }
  if (obs::JsonlWriter* sink = obs::epoch_log()) {
    // One record per calibration point, in shape order: lets the same JSONL
    // pipeline that consumes control-loop epochs consume Fig. 15 runs.
    for (std::size_t i = 0; i < result.calibration.size(); ++i) {
      const CalibrationPoint& p = result.calibration[i];
      obs::EpochRecord record;
      record.source = "trace_replay";
      record.epoch = static_cast<int>(i);
      record.chosen_k = p.chosen_k;
      record.feasible = p.plan_feasible;
      record.wanted_switches = p.active_switches;
      record.actual_switches = p.active_switches;
      record.predicted_total_w = p.predicted_total;
      record.realized_network_w = p.network_power;
      record.slack_total_p95_us = p.slack_total_p95;
      record.slack_total_p99_us = p.slack_total_p99;
      record.server_budget_us = p.server_budget;
      record.utilization = p.utilization;
      sink->write(record);
    }
  }

  const std::vector<TracePoint> trace = make_diurnal_trace(config_.trace);
  const int hosts = topo_->num_hosts();
  const Power static_total =
      hosts * power_model_->config().static_power;
  const auto& tc = config_.trace;

  double sum_server = 0.0, sum_network = 0.0, sum_total = 0.0;
  result.peak_total_power = 0.0;
  result.min_total_power = std::numeric_limits<double>::infinity();

  for (const TracePoint& point : trace) {
    // Invert the trace point back to a diurnal shape value.
    const double span = tc.search_peak - tc.search_trough;
    const double shape = span <= 0.0
        ? 0.0
        : std::clamp((point.search_load - tc.search_trough) / span, 0.0, 1.0);

    MinutePower minute;
    minute.minute = point.minute;
    const Power cpu = interpolate(result.calibration, shape,
                                  &CalibrationPoint::cpu_power_per_server);
    minute.server_power = static_total + hosts * cpu;
    minute.network_power =
        nearest(result.calibration, shape, &CalibrationPoint::network_power);
    minute.total_power = minute.server_power + minute.network_power;
    result.series.push_back(minute);

    sum_server += minute.server_power;
    sum_network += minute.network_power;
    sum_total += minute.total_power;
    result.peak_total_power =
        std::max(result.peak_total_power, minute.total_power);
    result.min_total_power =
        std::min(result.min_total_power, minute.total_power);
  }

  const double n = static_cast<double>(result.series.size());
  if (n > 0) {
    result.average_server_power = sum_server / n;
    result.average_network_power = sum_network / n;
    result.average_total_power = sum_total / n;
  }
  return result;
}

TraceReplay::Savings TraceReplay::savings(const ReplayResult& baseline,
                                          const ReplayResult& result) {
  Savings out;
  auto pct = [](double base, double value) {
    return base <= 0.0 ? 0.0 : 100.0 * (base - value) / base;
  };
  out.server_pct =
      pct(baseline.average_server_power, result.average_server_power);
  out.network_pct =
      pct(baseline.average_network_power, result.average_network_power);
  out.total_pct =
      pct(baseline.average_total_power, result.average_total_power);

  // Per-minute peak saving: requires matching series lengths.
  const std::size_t n =
      std::min(baseline.series.size(), result.series.size());
  for (std::size_t i = 0; i < n; ++i) {
    out.peak_total_pct =
        std::max(out.peak_total_pct, pct(baseline.series[i].total_power,
                                         result.series[i].total_power));
  }
  return out;
}

}  // namespace eprons
