// The paper's section II consolidation procedure as a runnable component:
//
//   "i) measure the traffic statistics and predict future bandwidth demand;
//    ii) optimize the DCN power consumption by shifting flows ...;
//    iii) reconfigure the flow forwarding rules."
//
// Each epoch (10 min, polled every 2 s by the POX controller in the paper)
// the controller: feeds noisy per-flow rate observations to the
// 90th-percentile demand predictor, runs the joint optimizer on the
// *predicted* demands, and hands the resulting subnet to the transition
// controller (which applies the backup-path linger policy so the 72.52 s
// switch boot time rarely sits on the datapath).
#pragma once

#include "consolidate/transition.h"
#include "core/joint_optimizer.h"
#include "flow/demand_predictor.h"
#include "obs/jsonl.h"

namespace eprons {

struct EpochControllerConfig {
  JointOptimizerConfig joint;
  TransitionConfig transition;
  DemandPredictorConfig predictor;
  /// Rate observations per flow per epoch (10 min / 2 s polling = 300).
  int samples_per_epoch = 300;
  /// Multiplicative noise of each observation around the true rate
  /// (log-normal sigma), modeling measurement + traffic variability.
  double observation_sigma = 0.2;
  /// Worker threads for the per-epoch joint optimization; copied over
  /// `joint.runtime` when set to more than one thread. Epoch results are
  /// independent of this value.
  RuntimeConfig runtime;
  /// Per-epoch JSONL sink. When null, records go to the process-wide
  /// `obs::epoch_log()` sink if `--epoch-log` configured one (and are
  /// dropped otherwise).
  obs::JsonlWriter* epoch_log = nullptr;
};

struct EpochReport {
  int epoch = 0;
  double chosen_k = 1.0;
  bool feasible = false;
  int wanted_switches = 0;
  /// Switches actually on this epoch (includes lingering backups).
  int actual_switches = 0;
  TransitionStats transition;
  Power network_power = 0.0;      // actual mask * switch power
  Power predicted_total = 0.0;    // optimizer's estimate
  /// Mean ratio of predicted to true demand across flows (prediction
  /// conservatism; ~1.1-1.4 with a 90th-percentile predictor).
  double prediction_ratio = 0.0;
  /// Slack estimator round-trip tails for the chosen plan, us.
  SimTime slack_total_p95 = 0.0;
  SimTime slack_total_p99 = 0.0;
  /// Latency budget handed to the DVFS layer after network slack, us.
  SimTime server_budget = 0.0;
};

class EpochController {
 public:
  EpochController(const Topology* topo, const ServiceModel* service_model,
                  const ServerPowerModel* power_model,
                  EpochControllerConfig config = {});

  /// Runs one epoch against ground-truth background demands. The controller
  /// never sees `true_background` directly — only noisy rate samples.
  EpochReport run_epoch(const FlowSet& true_background, double utilization,
                        Rng& rng);

  const std::vector<bool>& current_mask() const {
    return transitions_.current_mask();
  }
  const TransitionController& transitions() const { return transitions_; }
  int epochs_run() const { return epoch_; }

 private:
  const Topology* topo_;
  const ServiceModel* service_model_;
  const ServerPowerModel* power_model_;
  EpochControllerConfig config_;
  DemandPredictor predictor_;
  TransitionController transitions_;
  /// Persistent so its thread pool survives across epochs.
  std::unique_ptr<JointOptimizer> optimizer_;
  int epoch_ = 0;
};

}  // namespace eprons
