// The paper's section II consolidation procedure as a runnable component:
//
//   "i) measure the traffic statistics and predict future bandwidth demand;
//    ii) optimize the DCN power consumption by shifting flows ...;
//    iii) reconfigure the flow forwarding rules."
//
// Each epoch (10 min, polled every 2 s by the POX controller in the paper)
// the controller: feeds noisy per-flow rate observations to the
// 90th-percentile demand predictor, runs the joint optimizer on the
// *predicted* demands, and hands the resulting subnet to the transition
// controller (which applies the backup-path linger policy so the 72.52 s
// switch boot time rarely sits on the datapath).
#pragma once

#include "consolidate/transition.h"
#include "core/joint_optimizer.h"
#include "flow/demand_predictor.h"
#include "obs/jsonl.h"

namespace eprons {

/// Emergency re-plan knobs (paper section IV-B: the POX controller polls
/// every 2 s, so faults are noticed at poll granularity, not epoch
/// granularity).
struct FaultRecoveryConfig {
  /// Failure-detection latency: one controller poll, us.
  SimTime poll_interval = sec(2.0);
  /// Additive K bump applied when the surviving subnet forces a cold
  /// re-plan (clamped to the optimizer's k_max): lost capacity erodes
  /// slack, so the controller reserves more headroom until the next full
  /// epoch re-optimizes from scratch.
  double k_bump = 1.0;
};

struct EpochControllerConfig {
  JointOptimizerConfig joint;
  TransitionConfig transition;
  DemandPredictorConfig predictor;
  FaultRecoveryConfig recovery;
  /// Rate observations per flow per epoch (10 min / 2 s polling = 300).
  int samples_per_epoch = 300;
  /// Multiplicative noise of each observation around the true rate
  /// (log-normal sigma), modeling measurement + traffic variability.
  double observation_sigma = 0.2;
  /// Worker threads for the per-epoch joint optimization; copied over
  /// `joint.runtime` when set to more than one thread. Epoch results are
  /// independent of this value.
  RuntimeConfig runtime;
  /// Per-epoch JSONL sink. When null, records go to the process-wide
  /// `obs::epoch_log()` sink if `--epoch-log` configured one (and are
  /// dropped otherwise).
  obs::JsonlWriter* epoch_log = nullptr;
  /// Consolidation strategy for the internal joint optimizer (greedy, MILP,
  /// or the hierarchical pod decomposition). Not owned; must outlive the
  /// controller. nullptr = the optimizer's default greedy.
  const Consolidator* consolidator = nullptr;
};

struct EpochReport {
  int epoch = 0;
  double chosen_k = 1.0;
  bool feasible = false;
  int wanted_switches = 0;
  /// Switches actually on this epoch (includes lingering backups).
  int actual_switches = 0;
  TransitionStats transition;
  Power network_power = 0.0;      // actual mask * switch power
  Power predicted_total = 0.0;    // optimizer's estimate
  /// Mean ratio of predicted to true demand across flows (prediction
  /// conservatism; ~1.1-1.4 with a 90th-percentile predictor).
  double prediction_ratio = 0.0;
  /// Slack estimator round-trip tails for the chosen plan, us.
  SimTime slack_total_p95 = 0.0;
  SimTime slack_total_p99 = 0.0;
  /// Latency budget handed to the DVFS layer after network slack, us.
  SimTime server_budget = 0.0;
};

/// Outcome of one emergency re-plan (see on_failure). All quantities are
/// *modeled* — derived from the poll interval, boot time, and query rate —
/// never from wall clock, so reports are bit-identical for any --threads.
struct RecoveryReport {
  int epoch = 0;
  /// A connected surviving subnet exists (hosts mutually reachable).
  bool connected = false;
  /// The optimizer produced a new plan (false when no epoch ran yet or the
  /// failure touched nothing the current plan uses).
  bool replanned = false;
  /// Recovery needed no cold boots: lingering backups + already-on
  /// switches absorbed the re-routed traffic.
  bool hot_recovery = false;
  double previous_k = 0.0;
  double chosen_k = 0.0;
  /// K was raised above the pre-failure value to buy back slack.
  bool k_bumped = false;
  /// Lingering backup switches promoted onto the datapath (no boot cost).
  int woken_backups = 0;
  /// Cold boots started by the recovery (each pays power_on_time).
  int emergency_boots = 0;
  /// Flows of the pre-failure plan whose path crossed a failed element.
  int flows_rerouted = 0;
  /// Of those, query (latency-sensitive request/reply) flows.
  int affected_query_flows = 0;
  /// Modeled detection-to-recovery window, us: one poll interval, plus the
  /// boot window when any cold boot was needed.
  SimTime time_to_replan = 0.0;
  /// Modeled queries arriving inside that window while any query path was
  /// down; every query fans out to all leaf servers, so one broken query
  /// path makes every in-flight query miss the SLA.
  double estimated_outage_violations = 0.0;
  int actual_switches = 0;
  Power network_power = 0.0;
};

class EpochController {
 public:
  EpochController(const Topology* topo, const ServiceModel* service_model,
                  const ServerPowerModel* power_model,
                  EpochControllerConfig config = {});

  /// Runs one epoch against ground-truth background demands. The controller
  /// never sees `true_background` directly — only noisy rate samples.
  /// While faults are active (on_failure was called and clear_faults was
  /// not), planning is restricted to the surviving subnet.
  EpochReport run_epoch(const FlowSet& true_background, double utilization,
                        Rng& rng);

  /// Emergency re-plan on a fault notification (the 2 s poll noticed
  /// `overlay`, not the 10-min epoch): re-runs the consolidator on the
  /// surviving subnet, preferring already-on switches — lingering backups
  /// act as a hot standby pool — and bumps K when only a cold re-plan
  /// (new boots, or shrunk capacity) can restore feasibility. The overlay
  /// is remembered until clear_faults(); subsequent run_epoch calls plan
  /// around it.
  RecoveryReport on_failure(const FailureOverlay& overlay);

  /// Forgets the active overlay: everything repaired.
  void clear_faults();
  bool faults_active() const { return faults_active_; }

  const std::vector<bool>& current_mask() const {
    return transitions_.current_mask();
  }
  const TransitionController& transitions() const { return transitions_; }
  int epochs_run() const { return epoch_; }

  /// The plan chosen by the most recent run_epoch/on_failure (valid only
  /// when has_plan()). The serving harness routes query flows and feeds its
  /// admission policies from this snapshot between epochs.
  const JointPlan& last_plan() const { return last_plan_; }
  bool has_plan() const { return have_plan_; }

 private:
  /// Wanted mask fallback: when the optimizer's plan cannot connect the
  /// hosts (or produced none), power every surviving switch.
  std::vector<bool> surviving_fallback_mask() const;

  const Topology* topo_;
  const ServiceModel* service_model_;
  const ServerPowerModel* power_model_;
  EpochControllerConfig config_;
  DemandPredictor predictor_;
  TransitionController transitions_;
  /// Persistent so its thread pool survives across epochs.
  std::unique_ptr<JointOptimizer> optimizer_;
  int epoch_ = 0;

  // Fault state (set by on_failure, cleared by clear_faults).
  bool faults_active_ = false;
  FailureOverlay active_overlay_;
  std::vector<bool> failed_switch_mask_;  // NodeId-indexed

  // Last-epoch snapshot the emergency path re-plans from: run_epoch's
  // predicted demands and the plan it chose.
  FlowSet last_predicted_;
  double last_utilization_ = 0.0;
  JointPlan last_plan_;
  bool have_plan_ = false;
};

}  // namespace eprons
