#include "core/attribution.h"

namespace eprons {

namespace {

void fill_server_side(const JointOptimizerConfig& config,
                      const JointPlan& plan, int hosts,
                      obs::AttributionRecord& record) {
  record.power.server_idle_w = plan.server_idle_w;
  record.power.server_dynamic_w = plan.server_dynamic_w;
  record.power.server_dvfs_residual_w = plan.server_dvfs_residual_w;
  record.power.server_total_w = plan.server_power_w;
  record.power.hosts = hosts;
  record.power.total_w =
      record.power.network_total_w + record.power.server_total_w;

  record.latency.constraint_us = config.latency_constraint;
  record.latency.network_p95_us = plan.slack.total_p95;
  record.latency.network_p99_us = plan.slack.total_p99;
  record.latency.request_p95_us = plan.slack.request_p95;
  record.latency.server_budget_us = plan.effective_server_budget;
  switch (plan.reject) {
    case PlanReject::None:
      record.latency.miss_charged_to = "";
      break;
    case PlanReject::BudgetExhausted:
      record.latency.miss_charged_to = "network";
      break;
    case PlanReject::PlacementInfeasible:
      record.latency.miss_charged_to = "placement";
      break;
    case PlanReject::DvfsInfeasible:
      record.latency.miss_charged_to = "server";
      break;
  }
}

}  // namespace

LayeredNetworkPower layered_network_power(const Graph& graph,
                                          const std::vector<bool>& switch_on,
                                          Power switch_power) {
  LayeredNetworkPower out;
  for (const Node& n : graph.nodes()) {
    const auto i = static_cast<std::size_t>(n.id);
    if (!is_switch_type(n.type) || i >= switch_on.size() || !switch_on[i]) {
      continue;
    }
    ++out.active_switches;
    switch (n.type) {
      case NodeType::EdgeSwitch: ++out.edge_switches; break;
      case NodeType::AggSwitch: ++out.agg_switches; break;
      case NodeType::CoreSwitch: ++out.core_switches; break;
      case NodeType::Host: break;
    }
  }
  out.edge_w = out.edge_switches * switch_power;
  out.agg_w = out.agg_switches * switch_power;
  out.core_w = out.core_switches * switch_power;
  out.total_w = (out.edge_w + out.agg_w) + out.core_w;
  return out;
}

obs::AttributionRecord make_plan_attribution(const JointOptimizerConfig& config,
                                             const JointPlan& plan,
                                             std::string source, int epoch) {
  obs::AttributionRecord record;
  record.source = std::move(source);
  record.epoch = epoch;
  record.chosen_k = plan.k;
  record.feasible = plan.feasible;

  const ConsolidationResult& p = plan.placement;
  record.power.edge_w = p.edge_power_w;
  record.power.agg_w = p.agg_power_w;
  record.power.core_w = p.core_power_w;
  record.power.link_w = p.link_power_w;
  // finalize_result defined plan.network_power as exactly this sum.
  record.power.network_total_w = plan.network_power;
  record.power.edge_switches = p.edge_switches;
  record.power.agg_switches = p.agg_switches;
  record.power.core_switches = p.core_switches;
  record.power.active_links = p.active_links;

  const int hosts = static_cast<int>(plan.request_flow.size());
  fill_server_side(config, plan, hosts, record);
  return record;
}

obs::AttributionRecord make_epoch_attribution(
    const Graph& graph, const JointOptimizerConfig& config,
    const JointPlan& plan, const std::vector<bool>& actual,
    const std::vector<bool>& wanted, std::string source, int epoch) {
  obs::AttributionRecord record;
  record.source = std::move(source);
  record.epoch = epoch;
  record.chosen_k = plan.k;
  record.feasible = plan.feasible;

  const Power switch_power = config.consolidation.switch_power;
  const LayeredNetworkPower net =
      layered_network_power(graph, actual, switch_power);
  record.power.edge_w = net.edge_w;
  record.power.agg_w = net.agg_w;
  record.power.core_w = net.core_w;
  record.power.link_w = 0.0;  // the realized mask tracks switches only
  record.power.network_total_w = net.total_w;
  record.power.edge_switches = net.edge_switches;
  record.power.agg_switches = net.agg_switches;
  record.power.core_switches = net.core_switches;
  record.power.active_links = 0;

  // Linger overhead: switches powered by the transition policy that the
  // plan did not ask for (backup paths held on to dodge a boot window).
  int linger = 0;
  for (const Node& n : graph.nodes()) {
    const auto i = static_cast<std::size_t>(n.id);
    if (!is_switch_type(n.type)) continue;
    const bool on = i < actual.size() && actual[i];
    const bool asked = i < wanted.size() && wanted[i];
    if (on && !asked) ++linger;
  }
  record.power.linger_switches = linger;
  record.power.linger_overhead_w = linger * switch_power;

  const int hosts = static_cast<int>(plan.request_flow.size());
  fill_server_side(config, plan, hosts, record);
  return record;
}

}  // namespace eprons
