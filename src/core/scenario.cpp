#include "core/scenario.h"

#include <stdexcept>
#include <utility>

#include "obs/telemetry.h"

namespace eprons {

FlowGenConfig Scenario::flow_gen(int aggregator_host) const {
  FlowGenConfig config;
  config.num_hosts = topo_->num_hosts();
  config.link_capacity = topo_->link_capacity();
  config.hosts_per_edge = topo_->hosts_per_access_switch();
  config.exclude_host = aggregator_host;
  return config;
}

JointOptimizer Scenario::optimizer(JointOptimizerConfig config,
                                   const Consolidator* consolidator) const {
  if (config.runtime.threads <= 1) config.runtime = runtime_;
  return JointOptimizer(topo_.get(), service_.get(), power_.get(),
                        std::move(config), consolidator);
}

EpochController Scenario::epoch_controller(EpochControllerConfig config) const {
  if (config.runtime.threads <= 1) config.runtime = runtime_;
  return EpochController(topo_.get(), service_.get(), power_.get(),
                         std::move(config));
}

TraceReplay Scenario::trace_replay(TraceReplayConfig config) const {
  if (!fat_tree_) {
    throw std::logic_error(
        "Scenario::trace_replay requires a fat-tree topology");
  }
  if (config.joint.runtime.threads <= 1) config.joint.runtime = runtime_;
  return TraceReplay(fat_tree_, service_.get(), power_.get(),
                     std::move(config));
}

ScenarioResult Scenario::run(const FlowSet& background,
                             const ScenarioConfig& config,
                             const std::vector<bool>* subnet) const {
  return run_search_scenario(*topo_, *service_, *power_, background, config,
                             subnet);
}

Scenario ScenarioBuilder::build() const {
  // Telemetry sinks ride on RuntimeConfig, so every bench/example that
  // passes runtime_from_cli(cli) through the builder gets --metrics-out /
  // --trace-out / --epoch-log / --log-level support with no further wiring.
  obs::configure_telemetry(runtime_);
  Scenario scenario;
  if (leaf_spine_) {
    scenario.topo_ =
        std::make_unique<LeafSpine>(leaves_, spines_, hosts_per_leaf_);
  } else {
    auto fat_tree = std::make_unique<FatTree>(fat_tree_k_);
    scenario.fat_tree_ = fat_tree.get();
    scenario.topo_ = std::move(fat_tree);
  }
  // Seeded exactly like the legacy bench fixture so a given seed keeps
  // producing the same service model as before the builder existed.
  Rng rng(seed_);
  scenario.service_ = std::make_unique<const ServiceModel>(
      make_search_service_model(workload_, rng));
  scenario.power_ = std::make_unique<const ServerPowerModel>(power_);
  scenario.runtime_ = runtime_;
  scenario.seed_ = seed_;
  return scenario;
}

}  // namespace eprons
