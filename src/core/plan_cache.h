// Seed-deterministic cache of evaluated joint plans.
//
// The K search and the emergency re-plan path repeatedly evaluate
// (demand set, constraint overlay, K, utilization) tuples; when the diurnal
// trace revisits a demand level — or a two-phase recovery re-plans under
// the same surviving subnet — the evaluated JointPlan can be reused
// verbatim. Keys are exact bit-for-bit fingerprints (no tolerance), so a
// hit returns precisely the plan a fresh evaluation would have produced
// for the same call history.
//
// Determinism contract (see docs/DETERMINISM.md): the cache itself is a
// plain FIFO map; determinism is the *caller's* job. JointOptimizer probes
// and inserts only from serial code (before the parallel K sweep and in
// the candidate-order reduction after it), so the cache's contents — and
// the plan_cache.hits/misses/evictions counters — are a pure function of
// the call sequence, never of the worker count.
#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace eprons {

struct JointPlan;

/// Exact-match cache key. `k_bits` / `utilization_bits` are the raw IEEE-754
/// bit patterns (two K values that differ in the last ulp are different
/// plans), the fingerprints come from `demand_fingerprint()` and
/// `fingerprint_constraints()`.
struct PlanCacheKey {
  std::uint64_t demand_fingerprint = 0;
  std::uint64_t constraint_fingerprint = 0;
  std::uint64_t k_bits = 0;
  std::uint64_t utilization_bits = 0;

  auto operator<=>(const PlanCacheKey&) const = default;
};

/// Builds a key from the natural-unit inputs (bit-casts the doubles).
PlanCacheKey make_plan_cache_key(std::uint64_t demand_fingerprint,
                                 std::uint64_t constraint_fingerprint,
                                 double k, double utilization);

/// Order-sensitive FNV-1a fingerprint of a constraint overlay (allowed
/// switches, blocked links, K floor). Empty masks hash differently from
/// all-true masks of any size, so "unconstrained" never collides with a
/// constrained call.
std::uint64_t fingerprint_constraints(const std::vector<bool>& allowed_switches,
                                      const std::vector<bool>& blocked_links,
                                      double k_min);

/// FIFO-evicting plan cache. Thread-safe: concurrent find() calls may race
/// each other, but callers that require deterministic hit/miss streams must
/// serialize probes and inserts (JointOptimizer does). Capacity 0 disables
/// caching entirely (every find misses, insert is a no-op).
class PlanCache {
 public:
  explicit PlanCache(std::size_t capacity = 64);
  ~PlanCache();

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;
  PlanCache(PlanCache&&) noexcept;
  PlanCache& operator=(PlanCache&&) noexcept;

  /// Copies the cached plan into `*out` and returns true on a hit.
  /// Increments `plan_cache.hits` / `plan_cache.misses`.
  bool find(const PlanCacheKey& key, JointPlan* out) const;

  /// Inserts a copy of `plan` under `key`. Duplicate keys are ignored (the
  /// first insert wins — by construction the same key maps to the same
  /// plan). When full, evicts the oldest entry in insertion order and
  /// increments `plan_cache.evictions`.
  void insert(const PlanCacheKey& key, const JointPlan& plan);

  std::size_t size() const;
  std::size_t capacity() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace eprons
