#include "core/epoch_controller.h"

#include <cmath>

#include "obs/telemetry.h"
#include "topo/aggregation.h"
#include "util/log.h"

namespace eprons {

EpochController::EpochController(const Topology* topo,
                                 const ServiceModel* service_model,
                                 const ServerPowerModel* power_model,
                                 EpochControllerConfig config)
    : topo_(topo),
      service_model_(service_model),
      power_model_(power_model),
      config_(std::move(config)),
      predictor_(config_.predictor),
      transitions_(&topo->graph(), config_.transition) {
  if (config_.runtime.threads > 1) {
    config_.joint.runtime = config_.runtime;
  }
  optimizer_ = std::make_unique<JointOptimizer>(topo_, service_model_,
                                                power_model_, config_.joint);
}

EpochReport EpochController::run_epoch(const FlowSet& true_background,
                                       double utilization, Rng& rng) {
  EpochReport report;
  report.epoch = epoch_++;
  const obs::ScopedSpan span(obs::tracer(), "epoch", "control", "epoch",
                             static_cast<double>(report.epoch));
  static obs::Counter& epochs_run = obs::metrics().counter("epoch.runs");
  static obs::Counter& infeasible_epochs =
      obs::metrics().counter("epoch.infeasible");
  static obs::Histogram& ratio_pct =
      obs::metrics().histogram("epoch.prediction_ratio_pct");
  epochs_run.add();

  // (i) Measure: noisy rate observations -> 90th percentile prediction.
  FlowSet predicted;
  double ratio_sum = 0.0;
  for (const Flow& flow : true_background.flows()) {
    for (int s = 0; s < config_.samples_per_epoch; ++s) {
      const double observed =
          flow.demand * rng.lognormal(0.0, config_.observation_sigma);
      predictor_.add_sample(flow.id, observed);
    }
    const Bandwidth demand = predictor_.predict(flow.id);
    predicted.add(flow.src_host, flow.dst_host, demand, flow.cls);
    if (flow.demand > 0.0) ratio_sum += demand / flow.demand;
  }
  report.prediction_ratio =
      true_background.empty()
          ? 0.0
          : ratio_sum / static_cast<double>(true_background.size());
  ratio_pct.observe(report.prediction_ratio * 100.0);
  EPRONS_LOG(Info) << "epoch " << report.epoch
                   << ": demand predictor conservatism ratio "
                   << report.prediction_ratio << " over "
                   << true_background.size() << " flows";

  // (ii) Optimize on the predicted demands.
  const JointPlan plan = optimizer_->optimize(predicted, utilization);
  report.chosen_k = plan.k;
  report.feasible = plan.feasible;
  report.predicted_total = plan.total_power;
  report.wanted_switches = plan.placement.active_switches;
  report.slack_total_p95 = plan.slack.total_p95;
  report.slack_total_p99 = plan.slack.total_p99;
  report.server_budget = plan.effective_server_budget;
  if (!plan.feasible) infeasible_epochs.add();

  // (iii) Reconfigure through the transition controller.
  const std::vector<bool>& previous = transitions_.current_mask();
  report.transition = plan_transition(topo_->graph(), previous,
                                      plan.placement.switch_on,
                                      config_.transition);
  const std::vector<bool>& actual =
      transitions_.step(plan.placement.switch_on);
  report.actual_switches = count_active_switches(topo_->graph(), actual);
  report.network_power =
      report.actual_switches * config_.joint.consolidation.switch_power;

  obs::EpochRecord record;
  record.source = "epoch_controller";
  record.epoch = report.epoch;
  record.chosen_k = report.chosen_k;
  record.feasible = report.feasible;
  record.wanted_switches = report.wanted_switches;
  record.actual_switches = report.actual_switches;
  record.predicted_total_w = report.predicted_total;
  record.realized_network_w = report.network_power;
  record.prediction_ratio = report.prediction_ratio;
  record.slack_total_p95_us = report.slack_total_p95;
  record.slack_total_p99_us = report.slack_total_p99;
  record.server_budget_us = report.server_budget;
  record.utilization = utilization;
  obs::JsonlWriter* sink =
      config_.epoch_log ? config_.epoch_log : obs::epoch_log();
  if (sink) sink->write(record);
  return report;
}

}  // namespace eprons
