#include "core/epoch_controller.h"

#include <algorithm>
#include <cmath>

#include "core/attribution.h"
#include "obs/telemetry.h"
#include "topo/aggregation.h"
#include "util/log.h"

namespace eprons {

namespace {

/// All hosts mutually reachable through `switch_on`, minus `overlay`.
bool hosts_connected(const Topology& topo, int aggregator_host,
                     const std::vector<bool>& switch_on,
                     const FailureOverlay* overlay) {
  std::vector<NodeId> targets;
  for (int h = 0; h < topo.num_hosts(); ++h) {
    if (h != aggregator_host) targets.push_back(topo.host(h));
  }
  return topo.graph().connected(topo.host(aggregator_host), targets,
                                switch_on, overlay);
}

// Emergency-recovery telemetry. Counters/histograms record *modeled*
// quantities (poll interval, boot window, query rate), never wall time, so
// snapshots stay bit-identical for any --threads.
struct FaultMetrics {
  obs::Counter& replans = obs::metrics().counter("fault.replans");
  obs::Counter& rerouted = obs::metrics().counter("fault.flows_rerouted");
  obs::Counter& emergency_boots =
      obs::metrics().counter("fault.emergency_boots");
  obs::Counter& outage_violations =
      obs::metrics().counter("fault.sla_violations_during_outage");
  obs::Histogram& time_to_replan =
      obs::metrics().histogram("fault.time_to_replan_us");

  static FaultMetrics& get() {
    static FaultMetrics m;
    return m;
  }
};

obs::FaultRecord make_fault_record(const RecoveryReport& report,
                                   const FailureOverlay& overlay) {
  obs::FaultRecord record;
  record.epoch = report.epoch;
  record.failed_switches = overlay.failed_nodes();
  record.failed_links = overlay.failed_links();
  record.connected = report.connected;
  record.hot_recovery = report.hot_recovery;
  record.replanned = report.replanned;
  record.chosen_k = report.chosen_k;
  record.k_bumped = report.k_bumped;
  record.woken_backups = report.woken_backups;
  record.emergency_boots = report.emergency_boots;
  record.flows_rerouted = report.flows_rerouted;
  record.time_to_replan_us = report.time_to_replan;
  record.estimated_outage_violations = report.estimated_outage_violations;
  return record;
}

}  // namespace

EpochController::EpochController(const Topology* topo,
                                 const ServiceModel* service_model,
                                 const ServerPowerModel* power_model,
                                 EpochControllerConfig config)
    : topo_(topo),
      service_model_(service_model),
      power_model_(power_model),
      config_(std::move(config)),
      predictor_(config_.predictor),
      transitions_(&topo->graph(), config_.transition) {
  if (config_.runtime.threads > 1) {
    config_.joint.runtime = config_.runtime;
  }
  optimizer_ = std::make_unique<JointOptimizer>(
      topo_, service_model_, power_model_, config_.joint,
      config_.consolidator);
}

EpochReport EpochController::run_epoch(const FlowSet& true_background,
                                       double utilization, Rng& rng) {
  EpochReport report;
  report.epoch = epoch_++;
  const obs::ScopedSpan span(obs::tracer(), "epoch", "control", "epoch",
                             static_cast<double>(report.epoch));
  static obs::Counter& epochs_run = obs::metrics().counter("epoch.runs");
  static obs::Counter& infeasible_epochs =
      obs::metrics().counter("epoch.infeasible");
  static obs::Histogram& ratio_pct =
      obs::metrics().histogram("epoch.prediction_ratio_pct");
  epochs_run.add();

  // (i) Measure: noisy rate observations -> 90th percentile prediction.
  FlowSet predicted;
  double ratio_sum = 0.0;
  for (const Flow& flow : true_background.flows()) {
    for (int s = 0; s < config_.samples_per_epoch; ++s) {
      const double observed =
          flow.demand * rng.lognormal(0.0, config_.observation_sigma);
      predictor_.add_sample(flow.id, observed);
    }
    const Bandwidth demand = predictor_.predict(flow.id);
    predicted.add(flow.src_host, flow.dst_host, demand, flow.cls);
    if (flow.demand > 0.0) ratio_sum += demand / flow.demand;
  }
  report.prediction_ratio =
      true_background.empty()
          ? 0.0
          : ratio_sum / static_cast<double>(true_background.size());
  ratio_pct.observe(report.prediction_ratio * 100.0);
  EPRONS_LOG(Info) << "epoch " << report.epoch
                   << ": demand predictor conservatism ratio "
                   << report.prediction_ratio << " over "
                   << true_background.size() << " flows";

  // (ii) Optimize on the predicted demands; while faults are active the
  // search is restricted to the surviving subnet.
  // The previous epoch's plan warm-starts this one (incremental planning,
  // when enabled): clean flows keep their routing, only the demand delta is
  // re-packed. Never under active faults — the constraint overlay changes
  // what "previous routing" even means there, so the emergency path plans
  // cold against the surviving subnet.
  const JointPlan* warm_previous =
      (have_plan_ && !faults_active_ &&
       config_.joint.incremental.enabled)
          ? &last_plan_
          : nullptr;
  JointPlan plan;
  obs::PlanExplainRecord explain;
  PlanRequest request;
  request.background = &predicted;
  request.utilization = utilization;
  request.explain = &explain;
  if (faults_active_) {
    request.constraints.allowed_switches = active_overlay_.surviving_switches();
    request.constraints.blocked_links = active_overlay_.down_link_mask();
  } else {
    request.previous = warm_previous;
  }
  plan = optimizer_->optimize(request);
  report.chosen_k = plan.k;
  report.feasible = plan.feasible;
  report.predicted_total = plan.total_power;
  report.slack_total_p95 = plan.slack.total_p95;
  report.slack_total_p99 = plan.slack.total_p99;
  report.server_budget = plan.effective_server_budget;
  if (!plan.feasible) infeasible_epochs.add();

  // (iii) Reconfigure through the transition controller. Under faults, a
  // plan that cannot connect the hosts (or an empty fallback plan) is
  // replaced by the whole surviving subnet — serving degraded beats
  // reporting a disconnected active mask.
  std::vector<bool> wanted = plan.placement.switch_on;
  if (faults_active_ &&
      (wanted.empty() ||
       !hosts_connected(*topo_, config_.joint.aggregator_host, wanted,
                        &active_overlay_))) {
    wanted = surviving_fallback_mask();
    EPRONS_LOG(Info) << "epoch " << report.epoch
                     << ": plan disconnected under faults; powering the "
                        "whole surviving subnet";
  }
  report.wanted_switches = count_active_switches(topo_->graph(), wanted);
  const std::vector<bool>& previous = transitions_.current_mask();
  report.transition = plan_transition(topo_->graph(), previous, wanted,
                                      config_.transition);
  const std::vector<bool>& actual = transitions_.step(
      wanted, faults_active_ ? &failed_switch_mask_ : nullptr);
  report.actual_switches = count_active_switches(topo_->graph(), actual);
  // Realized network power is *defined* as the per-layer fixed-order sum so
  // the attribution ledger's layer components sum to it bit-identically
  // (byte-identical to the old flat count * P under integral calibrations).
  const LayeredNetworkPower realized = layered_network_power(
      topo_->graph(), actual, config_.joint.consolidation.switch_power);
  report.network_power = realized.total_w;

  obs::EpochRecord record;
  record.source = "epoch_controller";
  record.epoch = report.epoch;
  record.chosen_k = report.chosen_k;
  record.feasible = report.feasible;
  record.wanted_switches = report.wanted_switches;
  record.actual_switches = report.actual_switches;
  record.predicted_total_w = report.predicted_total;
  record.realized_network_w = report.network_power;
  record.prediction_ratio = report.prediction_ratio;
  record.slack_total_p95_us = report.slack_total_p95;
  record.slack_total_p99_us = report.slack_total_p99;
  record.server_budget_us = report.server_budget;
  record.utilization = utilization;
  obs::JsonlWriter* sink =
      config_.epoch_log ? config_.epoch_log : obs::epoch_log();
  if (sink) {
    sink->write(record);
    // The per-epoch ledger: where every watt and microsecond went, plus
    // why the planner picked this K over every rejected candidate.
    sink->write(make_epoch_attribution(topo_->graph(), config_.joint, plan,
                                       actual, wanted, "epoch_controller",
                                       report.epoch));
    explain.source = "epoch_controller";
    explain.epoch = report.epoch;
    sink->write(explain);
  }

  // Snapshot for the emergency re-plan path: on_failure re-plans against
  // the demands this epoch planned with (the 2 s poll has no fresher ones).
  last_predicted_ = std::move(predicted);
  last_utilization_ = utilization;
  last_plan_ = std::move(plan);
  have_plan_ = true;
  return report;
}

RecoveryReport EpochController::on_failure(const FailureOverlay& overlay) {
  FaultMetrics& fm = FaultMetrics::get();
  const Graph& graph = topo_->graph();

  RecoveryReport report;
  report.epoch = epoch_ > 0 ? epoch_ - 1 : 0;
  report.previous_k = have_plan_ ? last_plan_.k : config_.joint.k_min;
  report.chosen_k = report.previous_k;

  if (!overlay.any_failed()) {
    // Everything repaired: back to unconstrained planning.
    clear_faults();
    report.connected = true;
    report.time_to_replan = config_.recovery.poll_interval;
    report.actual_switches =
        count_active_switches(graph, transitions_.current_mask());
    report.network_power =
        layered_network_power(graph, transitions_.current_mask(),
                              config_.joint.consolidation.switch_power)
            .total_w;
    return report;
  }

  faults_active_ = true;
  active_overlay_ = overlay;
  failed_switch_mask_.assign(graph.num_nodes(), false);
  for (const Node& n : graph.nodes()) {
    if (is_switch_type(n.type) && overlay.node_failed(n.id)) {
      failed_switch_mask_[static_cast<std::size_t>(n.id)] = true;
    }
  }

  std::vector<bool> all_on(graph.num_nodes(), true);
  report.connected = hosts_connected(*topo_, config_.joint.aggregator_host,
                                     all_on, &overlay);

  // Which of the current plan's flows lost their path?
  if (have_plan_) {
    std::vector<bool> is_query(last_plan_.flows.size(), false);
    for (const std::vector<FlowId>* ids :
         {&last_plan_.request_flow, &last_plan_.reply_flow}) {
      for (FlowId f : *ids) {
        if (f != kInvalidFlow) is_query[static_cast<std::size_t>(f)] = true;
      }
    }
    for (std::size_t i = 0; i < last_plan_.placement.flow_paths.size(); ++i) {
      const Path& path = last_plan_.placement.flow_paths[i];
      if (path.empty() || !overlay.blocks(path)) continue;
      ++report.flows_rerouted;
      if (i < is_query.size() && is_query[i]) ++report.affected_query_flows;
    }
  }

  // The shortcut below is only safe while the surviving active mask still
  // connects the hosts: after an infeasible fallback re-plan the stored
  // plan has no routable paths to diff against, so `flows_rerouted == 0`
  // alone cannot prove the failures (or a repair of a switch the fallback
  // left off) did not sever the datapath.
  bool datapath_intact = report.flows_rerouted == 0;
  if (have_plan_ && datapath_intact && report.connected) {
    std::vector<bool> projected = transitions_.current_mask();
    for (std::size_t i = 0;
         i < projected.size() && i < failed_switch_mask_.size(); ++i) {
      if (failed_switch_mask_[i]) projected[i] = false;
    }
    datapath_intact = hosts_connected(*topo_, config_.joint.aggregator_host,
                                      projected, &overlay);
  }

  if (!have_plan_ || datapath_intact) {
    // Nothing on the datapath was hit (an off switch crashed, or a
    // lingering backup): drop failed elements from the actual mask and
    // keep the plan. Detection still costs one poll interval.
    transitions_.apply_emergency(
        have_plan_ ? last_plan_.placement.switch_on : std::vector<bool>{},
        &failed_switch_mask_, nullptr);
    report.time_to_replan = config_.recovery.poll_interval;
    report.hot_recovery = true;
    report.actual_switches =
        count_active_switches(graph, transitions_.current_mask());
    report.network_power =
        layered_network_power(graph, transitions_.current_mask(),
                              config_.joint.consolidation.switch_power)
            .total_w;
    fm.time_to_replan.observe(report.time_to_replan);
    obs::JsonlWriter* sink =
        config_.epoch_log ? config_.epoch_log : obs::epoch_log();
    if (sink) sink->write(make_fault_record(report, overlay));
    return report;
  }

  report.replanned = true;
  fm.replans.add();
  const std::vector<bool> surviving = overlay.surviving_switches();
  const std::vector<bool> blocked = overlay.down_link_mask();
  const std::vector<bool> actual_before = transitions_.current_mask();
  const std::vector<bool> previous_wanted = last_plan_.placement.switch_on;

  // Phase 1 (hot): re-place on switches that are *already on* and alive —
  // the lingering backup pool plus the surviving datapath — so no boot
  // window sits between detection and recovery.
  PlanConstraints hot;
  hot.allowed_switches.assign(graph.num_nodes(), false);
  for (std::size_t i = 0; i < hot.allowed_switches.size(); ++i) {
    const bool alive = i < surviving.size() && surviving[i];
    const bool on = !graph.is_switch(static_cast<NodeId>(i)) ||
                    (i < actual_before.size() && actual_before[i]);
    hot.allowed_switches[i] = alive && on;
  }
  hot.blocked_links = blocked;
  PlanRequest hot_request;
  hot_request.background = &last_predicted_;
  hot_request.utilization = last_utilization_;
  hot_request.constraints = std::move(hot);
  JointPlan plan = optimizer_->optimize(hot_request);
  bool hot_feasible = plan.feasible;

  // Phase 2 (cold): the already-on pool is not enough — open the whole
  // surviving subnet and bump K to win back the slack the lost capacity
  // ate (section II: larger K reserves more headroom per flow).
  if (!hot_feasible) {
    PlanConstraints cold;
    cold.allowed_switches = surviving;
    cold.blocked_links = blocked;
    cold.k_min =
        std::min(last_plan_.k + config_.recovery.k_bump, config_.joint.k_max);
    PlanRequest cold_request;
    cold_request.background = &last_predicted_;
    cold_request.utilization = last_utilization_;
    cold_request.constraints = std::move(cold);
    plan = optimizer_->optimize(cold_request);
  }
  report.chosen_k = plan.k;
  report.k_bumped = plan.k > report.previous_k;

  std::vector<bool> wanted = plan.placement.switch_on;
  if (wanted.empty() ||
      !hosts_connected(*topo_, config_.joint.aggregator_host, wanted,
                       &overlay)) {
    wanted = surviving_fallback_mask();
  }
  for (const Node& n : graph.nodes()) {
    if (!is_switch_type(n.type)) continue;
    const auto i = static_cast<std::size_t>(n.id);
    const bool newly_wanted = i < wanted.size() && wanted[i] &&
                              !(i < previous_wanted.size() &&
                                previous_wanted[i]);
    if (newly_wanted && i < actual_before.size() && actual_before[i]) {
      ++report.woken_backups;  // a lingering backup promoted, boot-free
    }
  }
  int boots = 0;
  transitions_.apply_emergency(wanted, &failed_switch_mask_, &boots);
  report.emergency_boots = boots;
  report.hot_recovery = hot_feasible && boots == 0;
  // Modeled window, not wall time (determinism): the poll that noticed the
  // failure, plus the boot window if any switch had to cold-start.
  report.time_to_replan =
      config_.recovery.poll_interval +
      (boots > 0 ? config_.transition.power_on_time : 0.0);
  if (report.affected_query_flows > 0) {
    // Every query fans out to all leaf servers (partition/aggregate), so
    // one broken query path makes each arriving query miss the SLA.
    const double lambda = query_arrival_rate_per_us(
        *service_model_, power_model_->num_cores(), last_utilization_);
    report.estimated_outage_violations = lambda * report.time_to_replan;
  }
  report.actual_switches =
      count_active_switches(graph, transitions_.current_mask());
  report.network_power =
      layered_network_power(graph, transitions_.current_mask(),
                            config_.joint.consolidation.switch_power)
          .total_w;

  fm.rerouted.add(static_cast<std::uint64_t>(report.flows_rerouted));
  fm.emergency_boots.add(static_cast<std::uint64_t>(boots));
  fm.time_to_replan.observe(report.time_to_replan);
  fm.outage_violations.add(static_cast<std::uint64_t>(
      std::llround(report.estimated_outage_violations)));

  EPRONS_LOG(Info) << "fault recovery: " << overlay.failed_nodes()
                   << " switches / " << overlay.failed_links()
                   << " links down, " << report.flows_rerouted
                   << " flows rerouted, "
                   << (report.hot_recovery ? "hot" : "cold")
                   << " recovery with K=" << report.chosen_k << " in "
                   << report.time_to_replan << " us";

  obs::JsonlWriter* sink =
      config_.epoch_log ? config_.epoch_log : obs::epoch_log();
  if (sink) sink->write(make_fault_record(report, overlay));

  // Later failures diff against the recovered plan, not the broken one.
  last_plan_ = std::move(plan);
  return report;
}

void EpochController::clear_faults() {
  faults_active_ = false;
  active_overlay_ = FailureOverlay();
  failed_switch_mask_.assign(topo_->graph().num_nodes(), false);
}

std::vector<bool> EpochController::surviving_fallback_mask() const {
  if (faults_active_) return active_overlay_.surviving_switches();
  return std::vector<bool>(topo_->graph().num_nodes(), true);
}

}  // namespace eprons
