// Network slack estimation for the joint optimizer (section IV-A).
//
// "In real deployments, it would be hard to predict network latency based on
// current network conditions ... In EPRONS, we use a portion of the
// application queries to train our model." Our equivalent: Monte-Carlo
// sample the consolidated request/reply paths through the link latency
// model at the placement's offered load, yielding mean/p95 request latency
// and therefore the slack the server layer can borrow.
//
// Sampling is split over `shards` independent streams (each seeded from a
// per-shard Rng::split() of the config seed) so the work parallelizes
// without losing reproducibility: the estimate is a pure function of
// (seed, shards, samples_per_pair) and never of the worker count — the
// serial path runs the same shards in the same merge order.
#pragma once

#include <vector>

#include "consolidate/consolidation.h"
#include "net/path_latency.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace eprons {

struct SlackEstimate {
  /// Per-sub-request network latency over the request leg, us.
  SimTime request_mean = 0.0;
  SimTime request_p95 = 0.0;
  /// Round trip (request + reply legs), us.
  SimTime total_mean = 0.0;
  SimTime total_p95 = 0.0;
  SimTime total_p99 = 0.0;
};

struct SlackEstimatorConfig {
  int samples_per_pair = 400;
  /// Independent sampling shards; results depend on this (it is part of
  /// the seeding scheme), NOT on how many workers execute the shards.
  int shards = 8;
  LinkLatencyModel link_model;
  std::uint64_t seed = 99;
  RuntimeConfig runtime;
};

/// Samples latency over every (request, reply) flow-path pair given in
/// `request_flows` / `reply_flows` (parallel arrays of FlowIds into the
/// placement). Pairs with unrouted paths are skipped.
///
/// When `pool` is non-null the shards run on it; otherwise a pool is
/// created for the call when config.runtime.threads > 1, else the shards
/// run serially. All three modes return bit-identical estimates.
SlackEstimate estimate_network_slack(const Graph& graph,
                                     const ConsolidationResult& placement,
                                     const LinkUtilization& offered_load,
                                     const std::vector<FlowId>& request_flows,
                                     const std::vector<FlowId>& reply_flows,
                                     const SlackEstimatorConfig& config,
                                     ThreadPool* pool = nullptr);

}  // namespace eprons
