// Network slack estimation for the joint optimizer (section IV-A).
//
// "In real deployments, it would be hard to predict network latency based on
// current network conditions ... In EPRONS, we use a portion of the
// application queries to train our model." Our equivalent: Monte-Carlo
// sample the consolidated request/reply paths through the link latency
// model at the placement's offered load, yielding mean/p95 request latency
// and therefore the slack the server layer can borrow.
//
// Sampling is split over `shards` independent streams (each seeded from a
// per-shard Rng::split() of the config seed) so the work parallelizes
// without losing reproducibility: the estimate is a pure function of
// (seed, shards, samples_per_pair) and never of the worker count — the
// serial path runs the same shards in the same merge order.
//
// Draws come in ANTITHETIC PAIRS: one raw uniform per hop drives samples
// 2it (through u) and 2it+1 (through 1-u), halving RNG consumption while
// keeping every sample's marginal distribution exact, and the burst draws
// ride on their branch uniform via the composition trick (see
// LinkLatencyModel::combine_hop_pair). Iterations proceed in fixed blocks:
// each block pre-draws its exponential uniforms in (iteration, hop) order,
// batch-evaluates their logs, then combines per hop — drawing the burst
// and collision uniforms in the same (iteration, hop) order — so the whole
// scheme, block size included, is part of the result definition.
//
// Two samplers share that skeleton. The default (fast) path prepares each
// pair's per-hop constants once (net/path_latency.h PreparedHop) and runs
// the logs through the vectorized stats/fast_log block; the reference
// sampler re-derives the constants — two directed-utilization lookups per
// hop — on every iteration and takes scalar logs. Both consume the same
// RNG stream and produce the same bits (SIMD lanes run the identical IEEE
// op sequence); `reference_sampling` exists for differential tests and for
// bisecting a determinism regression (docs/DETERMINISM.md).
#pragma once

#include <vector>

#include "consolidate/consolidation.h"
#include "net/path_latency.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace eprons {

struct SlackEstimate {
  /// Per-sub-request network latency over the request leg, us.
  SimTime request_mean = 0.0;
  SimTime request_p95 = 0.0;
  /// Round trip (request + reply legs), us.
  SimTime total_mean = 0.0;
  SimTime total_p95 = 0.0;
  SimTime total_p99 = 0.0;
};

struct SlackEstimatorConfig {
  int samples_per_pair = 400;
  /// Independent sampling shards; results depend on this (it is part of
  /// the seeding scheme), NOT on how many workers execute the shards.
  int shards = 8;
  LinkLatencyModel link_model;
  std::uint64_t seed = 99;
  RuntimeConfig runtime;
};

/// The Monte-Carlo estimator behind one seam: single-shot and batch
/// callers share the same sharding, seeding and merge discipline, so any
/// future caller inherits the determinism contract instead of re-rolling
/// an ad-hoc sampling loop.
class SlackEstimator {
 public:
  explicit SlackEstimator(SlackEstimatorConfig config = {});

  const SlackEstimatorConfig& config() const { return config_; }

  /// One placement to estimate: latency is sampled over every routed
  /// (request, reply) flow-path pair given in `request_flows` /
  /// `reply_flows` (parallel arrays of FlowIds into the placement);
  /// pairs with unrouted paths are skipped. All pointees are borrowed for
  /// the duration of the call.
  struct Query {
    const ConsolidationResult* placement = nullptr;
    const LinkUtilization* offered_load = nullptr;
    const std::vector<FlowId>* request_flows = nullptr;
    const std::vector<FlowId>* reply_flows = nullptr;
  };

  /// Estimates one placement (routes through estimate_many, so single-shot
  /// callers exercise the same code path as the batch). When `pool` is
  /// non-null the shards run on it; otherwise a pool is created for the
  /// call when config.runtime.threads > 1, else the shards run serially.
  /// All modes — and both samplers — return bit-identical estimates.
  SlackEstimate estimate(const Query& query, ThreadPool* pool = nullptr,
                         bool reference_sampling = false) const;

  /// Batch entry point: estimates every query, parallelizing over
  /// (query, shard) units, so a K sweep with deduplicated placements keeps
  /// every worker busy even when only one unique placement remains. Each
  /// query is seeded exactly as a standalone estimate() — result i is
  /// bit-identical to estimate(queries[i]).
  std::vector<SlackEstimate> estimate_many(const std::vector<Query>& queries,
                                           ThreadPool* pool = nullptr,
                                           bool reference_sampling =
                                               false) const;

 private:
  SlackEstimatorConfig config_;
};

/// Single-shot compatibility wrapper over SlackEstimator::estimate (the
/// original free-function entry point; prefer the class for new callers).
SlackEstimate estimate_network_slack(const Graph& graph,
                                     const ConsolidationResult& placement,
                                     const LinkUtilization& offered_load,
                                     const std::vector<FlowId>& request_flows,
                                     const std::vector<FlowId>& reply_flows,
                                     const SlackEstimatorConfig& config,
                                     ThreadPool* pool = nullptr);

}  // namespace eprons
