// Network slack estimation for the joint optimizer (section IV-A).
//
// "In real deployments, it would be hard to predict network latency based on
// current network conditions ... In EPRONS, we use a portion of the
// application queries to train our model." Our equivalent: Monte-Carlo
// sample the consolidated request/reply paths through the link latency
// model at the placement's offered load, yielding mean/p95 request latency
// and therefore the slack the server layer can borrow.
#pragma once

#include <vector>

#include "consolidate/consolidation.h"
#include "net/path_latency.h"
#include "util/rng.h"

namespace eprons {

struct SlackEstimate {
  /// Per-sub-request network latency over the request leg, us.
  SimTime request_mean = 0.0;
  SimTime request_p95 = 0.0;
  /// Round trip (request + reply legs), us.
  SimTime total_mean = 0.0;
  SimTime total_p95 = 0.0;
  SimTime total_p99 = 0.0;
};

struct SlackEstimatorConfig {
  int samples_per_pair = 400;
  LinkLatencyModel link_model;
  std::uint64_t seed = 99;
};

/// Samples latency over every (request, reply) flow-path pair given in
/// `request_flows` / `reply_flows` (parallel arrays of FlowIds into the
/// placement). Pairs with unrouted paths are skipped.
SlackEstimate estimate_network_slack(const Graph& graph,
                                     const ConsolidationResult& placement,
                                     const LinkUtilization& offered_load,
                                     const std::vector<FlowId>& request_flows,
                                     const std::vector<FlowId>& reply_flows,
                                     const SlackEstimatorConfig& config);

}  // namespace eprons
