// The EPRONS joint optimizer (paper section IV, Fig. 7's "Optimizer").
//
// For each candidate scale factor K the optimizer: consolidates the traffic
// (greedy bin-packing at production scale, exactly as section IV-B
// prescribes), Monte-Carlo-estimates the network latency/slack of the
// resulting placement, predicts the server power achievable with the
// leftover budget, and finally picks the K minimizing predicted *total*
// data-center power among latency-feasible candidates. This is where
// "deliberately turn on more switches to let servers slow down" emerges:
// a larger K costs switches but buys server slack.
//
// The K search is the planner's hot path (every bench/diurnal epoch pays
// it), so with `runtime.threads > 1` all candidates are evaluated
// concurrently on an internal ThreadPool. Each plan_for_k is a pure
// function of its inputs (per-shard Rng::split() seeding in the slack
// estimator, no shared mutable state), so the chosen plan is bit-identical
// to the serial search for any thread count.
#pragma once

#include <memory>

#include "consolidate/greedy_consolidator.h"
#include "sim/search_cluster.h"
#include "core/plan_cache.h"
#include "core/server_power_predictor.h"
#include "core/slack_estimator.h"
#include "dvfs/service_model.h"
#include "power/server_power.h"
#include "topo/topology.h"
#include "util/thread_pool.h"

namespace eprons {

/// Incremental (epoch-to-epoch) planning knobs. Off by default: cold
/// searches stay byte-identical to the pre-incremental planner.
struct IncrementalPlanningConfig {
  /// Master switch for warm-started optimize() calls and the plan cache.
  bool enabled = false;
  /// Regression bound handed to the consolidator's warm-start path: an
  /// incremental pack may activate at most this many switches beyond the
  /// previous plan before the planner falls back to a cold re-pack.
  int max_extra_switches = 2;
  /// PlanCache capacity (evaluated plans retained, FIFO). 0 disables the
  /// cache while keeping warm-started consolidation.
  std::size_t plan_cache_capacity = 64;
};

struct JointOptimizerConfig {
  double k_min = 1.0;
  double k_max = 5.0;
  double k_step = 1.0;

  /// End-to-end tail latency constraint and its server share, us.
  SimTime latency_constraint = ms(30.0);
  SimTime server_budget = ms(25.0);

  ConsolidationConfig consolidation;
  /// Reserved demand per query flow direction, Mbps.
  Bandwidth query_request_demand = 10.0;
  Bandwidth query_reply_demand = 20.0;
  int aggregator_host = 0;

  SlackEstimatorConfig slack;
  ServerPowerPredictorConfig predictor;

  /// Worker threads for the K search (and, for serial searches, the slack
  /// estimator's shards). Results are independent of this value.
  RuntimeConfig runtime;

  IncrementalPlanningConfig incremental;
};

/// Extra constraints for one optimize() call, layered on top of the
/// configured ConsolidationConfig. The emergency re-plan path uses these to
/// restrict placement to the surviving subnet without mutating the
/// optimizer's configuration (optimize() stays const and thread-safe).
struct PlanConstraints {
  /// NodeId-indexed; when non-empty, replaces consolidation.allowed_switches
  /// (intersect before passing if both must hold).
  std::vector<bool> allowed_switches;
  /// LinkId-indexed; when non-empty, replaces consolidation.blocked_links.
  std::vector<bool> blocked_links;
  /// Raises the bottom of the K sweep — the recovery path bumps K when the
  /// surviving capacity erodes slack. 0 keeps the configured k_min.
  double k_min = 0.0;
};

struct JointPlan {
  bool feasible = false;
  double k = 1.0;
  ConsolidationResult placement;
  /// Query flow ids (host-indexed) within the planned flow set.
  std::vector<FlowId> request_flow;
  std::vector<FlowId> reply_flow;
  /// The flow set that was placed (background + query flows).
  FlowSet flows;
  SlackEstimate slack;
  ServerPowerPrediction server;
  /// Server time budget handed to the DVFS layer, us.
  SimTime effective_server_budget = 0.0;
  Power network_power = 0.0;
  Power total_power = 0.0;
};

class JointOptimizer {
 public:
  /// `consolidator` selects the placement strategy (greedy bin-packing by
  /// default; inject a MilpConsolidator for exact placement). The pointee
  /// must outlive the optimizer and be thread-safe (see Consolidator).
  JointOptimizer(const Topology* topo, const ServiceModel* service_model,
                 const ServerPowerModel* power_model,
                 JointOptimizerConfig config = {},
                 const Consolidator* consolidator = nullptr);

  const JointOptimizerConfig& config() const { return config_; }
  const Consolidator& consolidator() const { return *consolidator_; }

  /// Evaluates one candidate K (used directly by ablation benches).
  JointPlan plan_for_k(const FlowSet& background, double utilization,
                       double k) const;

  /// Full K search: minimum predicted total power among feasible plans.
  /// If no K is latency-feasible, returns the plan with the lowest
  /// predicted tail latency, marked infeasible. Candidates are evaluated
  /// in parallel when config.runtime.threads > 1; the result is
  /// bit-identical to the serial search.
  JointPlan optimize(const FlowSet& background, double utilization) const;

  /// As above, restricted by `constraints` (surviving subnet, blocked
  /// links, raised K floor) — the emergency re-plan entry point.
  JointPlan optimize(const FlowSet& background, double utilization,
                     const PlanConstraints& constraints) const;

  /// Incremental search: when `config().incremental.enabled` and `previous`
  /// is a feasible plan, first re-evaluates only the previous epoch's K
  /// with the consolidator warm-started from the previous routing (dirty
  /// flows re-packed, clean flows kept). If that single candidate is
  /// latency-feasible it short-circuits the full K sweep; otherwise the
  /// planner logs the fallback and runs the cold search. Evaluated plans
  /// land in (and are first looked up from) the PlanCache, so re-planning
  /// the same demands under the same constraints is a cache hit. A null
  /// `previous` — or incremental planning disabled — degrades to the cold
  /// search above.
  JointPlan optimize(const FlowSet& background, double utilization,
                     const PlanConstraints& constraints,
                     const JointPlan* previous) const;

 private:
  /// `slack_pool` parallelizes the slack estimator's shards;
  /// `serial_slack` forces shard-serial estimation (used when the K
  /// candidates themselves already occupy the pool). Neither affects the
  /// returned plan, only how fast it is computed. `constraints` may be
  /// null (unconstrained). `warm` (may be null) is forwarded to the
  /// consolidator's incremental entry point.
  JointPlan plan_impl(const FlowSet& background, double utilization,
                      double k, ThreadPool* slack_pool, bool serial_slack,
                      const PlanConstraints* constraints,
                      const WarmStartHint* warm) const;

  /// The cold full K sweep shared by every optimize() overload. `cache_key`
  /// (may be null) enables per-candidate PlanCache probes before the
  /// parallel region and candidate-order inserts after it.
  JointPlan cold_search(const FlowSet& background, double utilization,
                        const PlanConstraints& constraints,
                        const PlanCacheKey* cache_key) const;

  const Topology* topo_;
  const ServiceModel* service_model_;
  const ServerPowerModel* power_model_;
  JointOptimizerConfig config_;
  GreedyConsolidator default_consolidator_;
  const Consolidator* consolidator_;
  std::unique_ptr<ThreadPool> pool_;
  /// Probed/filled only from serial sections of optimize(), so its contents
  /// and counters are independent of the worker count.
  mutable PlanCache plan_cache_;
};

}  // namespace eprons
