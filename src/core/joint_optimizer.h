// The EPRONS joint optimizer (paper section IV, Fig. 7's "Optimizer").
//
// For each candidate scale factor K the optimizer: consolidates the traffic
// (greedy bin-packing at production scale, exactly as section IV-B
// prescribes), Monte-Carlo-estimates the network latency/slack of the
// resulting placement, predicts the server power achievable with the
// leftover budget, and finally picks the K minimizing predicted *total*
// data-center power among latency-feasible candidates. This is where
// "deliberately turn on more switches to let servers slow down" emerges:
// a larger K costs switches but buys server slack.
//
// The K search is the planner's hot path (every bench/diurnal epoch pays
// it), so it is engineered twice over:
//   * with `runtime.threads > 1` all candidates are evaluated concurrently
//     on an internal ThreadPool;
//   * the cold sweep's three traced hot spots each have a fast
//     implementation — batched prepared-path Monte-Carlo with per-shard
//     scratch (SlackEstimator), per-frequency CCDF lookup tables built
//     once at construction (dvfs/vp_table.h), and memoized per-pair path
//     enumeration shared across the K candidates (topo/path_catalog.h) —
//     plus placement deduplication: K candidates that consolidate to the
//     same routing share one slack estimate.
// Every fast path reproduces the reference arithmetic and RNG stream bit
// for bit, so the chosen plan is byte-identical for any thread count and
// any PlanRequest knob combination (asserted by tests/fastpath_test.cpp).
#pragma once

#include <memory>

#include "obs/attribution.h"
#include "consolidate/greedy_consolidator.h"
#include "sim/search_cluster.h"
#include "core/plan_cache.h"
#include "core/server_power_predictor.h"
#include "core/slack_estimator.h"
#include "dvfs/service_model.h"
#include "dvfs/vp_table.h"
#include "power/server_power.h"
#include "topo/path_catalog.h"
#include "topo/topology.h"
#include "util/thread_pool.h"

namespace eprons {

/// Incremental (epoch-to-epoch) planning knobs. Off by default: cold
/// searches stay byte-identical to the pre-incremental planner.
struct IncrementalPlanningConfig {
  /// Master switch for warm-started optimize() calls and the plan cache.
  bool enabled = false;
  /// Regression bound handed to the consolidator's warm-start path: an
  /// incremental pack may activate at most this many switches beyond the
  /// previous plan before the planner falls back to a cold re-pack.
  int max_extra_switches = 2;
  /// PlanCache capacity (evaluated plans retained, FIFO). 0 disables the
  /// cache while keeping warm-started consolidation.
  std::size_t plan_cache_capacity = 64;
};

struct JointOptimizerConfig {
  double k_min = 1.0;
  double k_max = 5.0;
  double k_step = 1.0;

  /// End-to-end tail latency constraint and its server share, us.
  SimTime latency_constraint = ms(30.0);
  SimTime server_budget = ms(25.0);

  ConsolidationConfig consolidation;
  /// Reserved demand per query flow direction, Mbps.
  Bandwidth query_request_demand = 10.0;
  Bandwidth query_reply_demand = 20.0;
  int aggregator_host = 0;

  SlackEstimatorConfig slack;
  ServerPowerPredictorConfig predictor;

  /// Worker threads for the K search (and, for serial searches, the slack
  /// estimator's shards). Results are independent of this value.
  RuntimeConfig runtime;

  IncrementalPlanningConfig incremental;
};

/// Extra constraints for one optimize() call, layered on top of the
/// configured ConsolidationConfig. The emergency re-plan path uses these to
/// restrict placement to the surviving subnet without mutating the
/// optimizer's configuration (optimize() stays const and thread-safe).
struct PlanConstraints {
  /// NodeId-indexed; when non-empty, replaces consolidation.allowed_switches
  /// (intersect before passing if both must hold).
  std::vector<bool> allowed_switches;
  /// LinkId-indexed; when non-empty, replaces consolidation.blocked_links.
  std::vector<bool> blocked_links;
  /// Raises the bottom of the K sweep — the recovery path bumps K when the
  /// surviving capacity erodes slack. 0 keeps the configured k_min.
  double k_min = 0.0;
};

/// Why finalize_plan classified a candidate infeasible (None = feasible).
enum class PlanReject {
  None = 0,
  /// Network slack consumed the whole latency constraint (no server
  /// budget left) — chargeable to the network layer.
  BudgetExhausted,
  /// Consolidation violated the safety margin or disconnected a pair —
  /// chargeable to placement.
  PlacementInfeasible,
  /// The server budget is unreachable even at f_max — chargeable to the
  /// server layer.
  DvfsInfeasible,
};

/// Stable JSONL token for a reject reason ("" for None).
const char* plan_reject_name(PlanReject reason);

struct JointPlan {
  bool feasible = false;
  PlanReject reject = PlanReject::None;
  double k = 1.0;
  ConsolidationResult placement;
  /// Query flow ids (host-indexed) within the planned flow set.
  std::vector<FlowId> request_flow;
  std::vector<FlowId> reply_flow;
  /// The flow set that was placed (background + query flows).
  FlowSet flows;
  SlackEstimate slack;
  ServerPowerPrediction server;
  /// Server time budget handed to the DVFS layer, us.
  SimTime effective_server_budget = 0.0;
  Power network_power = 0.0;
  /// Cluster-level server power components (hosts x the per-server
  /// prediction's components). `server_power_w` is *defined* as the
  /// fixed-order sum (idle + dynamic) + residual, and `total_power` as
  /// network_power + server_power_w, so the attribution ledger
  /// (obs/attribution.h) sums bit-identically to the headline totals.
  Power server_idle_w = 0.0;
  Power server_dynamic_w = 0.0;
  Power server_dvfs_residual_w = 0.0;
  Power server_power_w = 0.0;
  Power total_power = 0.0;
};

/// One planning request: everything optimize() needs for a call, plus
/// per-call knobs selecting the fast or the retained reference
/// implementation of each optimized subsystem. The knobs exist for
/// differential testing and for bisecting a determinism regression
/// (docs/DETERMINISM.md): every knob combination returns a byte-identical
/// JointPlan — only the wall-clock differs.
struct PlanRequest {
  /// The background (non-query) traffic to place. Required; not owned.
  const FlowSet* background = nullptr;
  /// Target per-core utilization (defined at f_max).
  double utilization = 0.0;
  /// Optional per-call constraints (surviving subnet, blocked links,
  /// raised K floor) — the emergency re-plan path fills these.
  PlanConstraints constraints;
  /// Previous epoch's plan for warm-started incremental planning (see
  /// IncrementalPlanningConfig); nullptr — or incremental planning
  /// disabled — runs the cold K sweep. Not owned.
  const JointPlan* previous = nullptr;
  /// Per-sample Monte-Carlo path walks instead of the batched
  /// prepared-path sampler, and a per-candidate slack estimate instead of
  /// the sweep's placement-deduplicated batch.
  bool use_reference_slack = false;
  /// Per-decision equivalent-work convolution lookups instead of the
  /// precomputed per-frequency CCDF tables.
  bool use_reference_dvfs = false;
  /// Per-call Topology::all_paths() enumeration instead of the memoized
  /// PathCatalog.
  bool use_reference_enumeration = false;
  /// When non-null, optimize() fills a structured explanation of the call:
  /// which path ran (cold sweep / warm re-evaluation / cache hit), the full
  /// candidate-K table with per-candidate power, violation probability and
  /// reject reason, and the consolidation on/off power delta. Purely an
  /// out-parameter — never changes the returned plan. Not owned.
  obs::PlanExplainRecord* explain = nullptr;
};

class JointOptimizer {
 public:
  /// `consolidator` selects the placement strategy (greedy bin-packing by
  /// default; inject a MilpConsolidator for exact placement). The pointee
  /// must outlive the optimizer and be thread-safe (see Consolidator).
  /// Construction eagerly builds the DVFS CCDF tables (one FFT batch per
  /// queue depth up to predictor.max_queue_depth).
  JointOptimizer(const Topology* topo, const ServiceModel* service_model,
                 const ServerPowerModel* power_model,
                 JointOptimizerConfig config = {},
                 const Consolidator* consolidator = nullptr);

  const JointOptimizerConfig& config() const { return config_; }
  const Consolidator& consolidator() const { return *consolidator_; }

  /// Evaluates one candidate K (used directly by ablation benches).
  JointPlan plan_for_k(const FlowSet& background, double utilization,
                       double k) const;

  /// The single planning entry point. Cold request (no usable `previous`):
  /// full K search, minimum predicted total power among feasible plans; if
  /// no K is latency-feasible, returns the plan with the lowest predicted
  /// tail latency, marked infeasible. With incremental planning enabled
  /// and a feasible `previous`, first re-evaluates only the previous
  /// epoch's K with the consolidator warm-started from the previous
  /// routing, short-circuiting the sweep when it is still feasible;
  /// evaluated plans land in (and are first looked up from) the PlanCache.
  /// Candidates are evaluated in parallel when config.runtime.threads > 1;
  /// the result is bit-identical for any thread count and any
  /// use_reference_* knob combination.
  JointPlan optimize(const PlanRequest& request) const;

  /// Deprecated compatibility shims over optimize(const PlanRequest&).
  [[deprecated("build a PlanRequest and call optimize(const PlanRequest&)")]]
  JointPlan optimize(const FlowSet& background, double utilization) const;
  [[deprecated("build a PlanRequest and call optimize(const PlanRequest&)")]]
  JointPlan optimize(const FlowSet& background, double utilization,
                     const PlanConstraints& constraints) const;
  [[deprecated("build a PlanRequest and call optimize(const PlanRequest&)")]]
  JointPlan optimize(const FlowSet& background, double utilization,
                     const PlanConstraints& constraints,
                     const JointPlan* previous) const;

 private:
  /// Background + query flows assembled once per optimize() call and
  /// shared (read-only) by every K candidate.
  struct Assembly;
  /// The PlanRequest escape hatches, threaded through the pipeline.
  struct ReferenceKnobs {
    bool slack = false;
    bool dvfs = false;
    bool enumeration = false;
  };

  Assembly assemble_flows(const FlowSet& background) const;

  /// Consolidates one candidate into `plan` (k, flows, placement,
  /// network_power). `constraints`/`warm` may be null.
  void consolidate_into(JointPlan& plan, const Assembly& assembly, double k,
                        const PlanConstraints* constraints,
                        const WarmStartHint* warm,
                        bool reference_enumeration) const;

  /// Offered load of the plan's placement at actual (unreserved) query
  /// rates — the slack estimator's input.
  LinkUtilization offered_load_for(const JointPlan& plan,
                                   double utilization) const;

  /// Budget split, server power prediction, feasibility classification and
  /// per-candidate telemetry; requires plan.slack to be filled in.
  void finalize_plan(JointPlan& plan, double utilization,
                     bool reference_dvfs) const;

  /// Cluster-level power roll-up from plan.server and plan.network_power:
  /// hosts x the per-server components, then the fixed-order sums that
  /// *define* server_power_w and total_power (attribution bit-exactness).
  void finalize_power_totals(JointPlan& plan) const;

  /// Fills the PlanExplain header fields shared by every optimize() path
  /// (chosen plan, consolidation on/off delta); candidates are appended by
  /// the caller.
  void explain_header(obs::PlanExplainRecord& explain, const char* path,
                      const JointPlan& chosen) const;

  /// Full per-candidate pipeline (consolidate + slack + finalize) for one
  /// K. `slack_pool` parallelizes the slack estimator's shards;
  /// `serial_slack` forces shard-serial estimation (used when the K
  /// candidates themselves already occupy the pool). Neither affects the
  /// returned plan, only how fast it is computed.
  JointPlan plan_impl(const Assembly& assembly, double utilization, double k,
                      ThreadPool* slack_pool, bool serial_slack,
                      const PlanConstraints* constraints,
                      const WarmStartHint* warm,
                      const ReferenceKnobs& knobs) const;

  /// The cold full K sweep. The fast shape consolidates all candidates,
  /// deduplicates identical placements, batch-estimates slack once per
  /// unique placement, then finalizes per candidate; with
  /// use_reference_slack the retained per-candidate pipeline runs instead.
  /// `cache_key` (may be null) enables per-candidate PlanCache probes
  /// before the parallel region and candidate-order inserts after it.
  JointPlan cold_search(const Assembly& assembly, const PlanRequest& request,
                        const PlanCacheKey* cache_key) const;

  const Topology* topo_;
  const ServiceModel* service_model_;
  const ServerPowerModel* power_model_;
  JointOptimizerConfig config_;
  GreedyConsolidator default_consolidator_;
  const Consolidator* consolidator_;
  std::unique_ptr<ThreadPool> pool_;
  /// Memoized per-pair path enumeration shared by every consolidate call
  /// (thread-safe; entries fill on first use).
  PathCatalog path_catalog_;
  /// Per-frequency CCDF tables for the predictor's frequency scan, built
  /// eagerly at construction — which also pre-warms the service model's
  /// convolution cache so the reference predictor path is read-only under
  /// the parallel sweep.
  std::unique_ptr<VpTable> vp_table_;
  /// Probed/filled only from serial sections of optimize(), so its contents
  /// and counters are independent of the worker count.
  mutable PlanCache plan_cache_;
};

}  // namespace eprons
