// The EPRONS joint optimizer (paper section IV, Fig. 7's "Optimizer").
//
// For each candidate scale factor K the optimizer: consolidates the traffic
// (greedy bin-packing at production scale, exactly as section IV-B
// prescribes), Monte-Carlo-estimates the network latency/slack of the
// resulting placement, predicts the server power achievable with the
// leftover budget, and finally picks the K minimizing predicted *total*
// data-center power among latency-feasible candidates. This is where
// "deliberately turn on more switches to let servers slow down" emerges:
// a larger K costs switches but buys server slack.
#pragma once

#include "consolidate/greedy_consolidator.h"
#include "sim/search_cluster.h"
#include "core/server_power_predictor.h"
#include "core/slack_estimator.h"
#include "dvfs/service_model.h"
#include "power/server_power.h"
#include "topo/topology.h"

namespace eprons {

struct JointOptimizerConfig {
  double k_min = 1.0;
  double k_max = 5.0;
  double k_step = 1.0;

  /// End-to-end tail latency constraint and its server share, us.
  SimTime latency_constraint = ms(30.0);
  SimTime server_budget = ms(25.0);

  ConsolidationConfig consolidation;
  /// Reserved demand per query flow direction, Mbps.
  Bandwidth query_request_demand = 10.0;
  Bandwidth query_reply_demand = 20.0;
  int aggregator_host = 0;

  SlackEstimatorConfig slack;
  ServerPowerPredictorConfig predictor;
};

struct JointPlan {
  bool feasible = false;
  double k = 1.0;
  ConsolidationResult placement;
  /// Query flow ids (host-indexed) within the planned flow set.
  std::vector<FlowId> request_flow;
  std::vector<FlowId> reply_flow;
  /// The flow set that was placed (background + query flows).
  FlowSet flows;
  SlackEstimate slack;
  ServerPowerPrediction server;
  /// Server time budget handed to the DVFS layer, us.
  SimTime effective_server_budget = 0.0;
  Power network_power = 0.0;
  Power total_power = 0.0;
};

class JointOptimizer {
 public:
  JointOptimizer(const Topology* topo, const ServiceModel* service_model,
                 const ServerPowerModel* power_model,
                 JointOptimizerConfig config = {});

  const JointOptimizerConfig& config() const { return config_; }

  /// Evaluates one candidate K (used directly by ablation benches).
  JointPlan plan_for_k(const FlowSet& background, double utilization,
                       double k) const;

  /// Full K search: minimum predicted total power among feasible plans.
  /// If no K is latency-feasible, returns the plan with the lowest
  /// predicted tail latency, marked infeasible.
  JointPlan optimize(const FlowSet& background, double utilization) const;

 private:
  const Topology* topo_;
  const ServiceModel* service_model_;
  const ServerPowerModel* power_model_;
  JointOptimizerConfig config_;
};

}  // namespace eprons
