// First-order analytical server power model for the joint optimizer
// (section IV-A: "we measure the server power consumption for different
// utilizations and tail latency constraints that may then be used to
// parameterize our model").
//
// Given a server time budget B (server SLA share + borrowed network slack)
// and a target utilization u (defined at f_max), the predictor:
//   1. estimates the expected queue depth a new request sees on a core
//      (M/M/c-lite: depth ~ u / (1 - u) capped), and the frequency a
//      statistical policy would pick so the equivalent request still meets
//      B with the target miss probability;
//   2. converts the slowdown into a busy fraction u * s(f) / s(f_max);
//   3. returns static + sum over cores of busy * P(f) + idle * P_idle.
//
// It deliberately trades accuracy for speed: the joint optimizer evaluates
// it once per (K, epoch); the full DES validates its decisions in the
// figure benches.
#pragma once

#include "dvfs/service_model.h"
#include "dvfs/vp_table.h"
#include "power/server_power.h"

namespace eprons {

/// The predictor's answer for one (utilization, budget) query.
///
/// `server_power` is *defined* as the fixed-order sum
/// (idle_w + dynamic_w) + dvfs_residual_w, so the attribution ledger's
/// per-component breakdown (obs/attribution.h) sums bit-identically to the
/// headline total — the total flows through the components, never the other
/// way around.
struct ServerPowerPrediction {
  /// Core frequency a statistical policy would settle on, GHz.
  Freq frequency = 0.0;
  /// Busy fraction per core after slowdown.
  double busy_fraction = 0.0;
  /// Violation probability achieved at the chosen frequency (1.0 when the
  /// budget is unreachable even at f_max).
  double achieved_vp = 1.0;
  /// Power of the server fully idle: platform static + clock-gated cores.
  Power idle_w = 0.0;
  /// Cost of the offered work at f_max: busy cores above the idle floor.
  Power dynamic_w = 0.0;
  /// Delta from running at `frequency` instead of f_max (negative when the
  /// DVFS slowdown saves power — the watts network slack bought).
  Power dvfs_residual_w = 0.0;
  /// Whole-server power: (idle_w + dynamic_w) + dvfs_residual_w, W.
  Power server_power = 0.0;
  /// True if even f_max cannot meet the budget at the target VP.
  bool budget_infeasible = false;
};

/// The decomposition of one server pinned at f_max with every core busy —
/// the "no power management" peak baseline, split into the same components
/// as predict() so infeasible-budget plans still carry a ledger.
ServerPowerPrediction peak_power_prediction(const ServerPowerModel& model,
                                            Freq f_max);

struct ServerPowerPredictorConfig {
  /// Acceptable per-request violation probability (the paper's 5%).
  double target_vp = 0.05;
  /// Queue-depth cap used in the equivalent-request estimate.
  std::size_t max_queue_depth = 8;
};

/// Closed-form stand-in for the DES on the joint optimizer's hot path:
/// answers "what would one server draw if it may take `budget` us per
/// request?" without simulating (section IV-A's parameterized model).
class ServerPowerPredictor {
 public:
  /// All pointees must outlive the predictor (not owned). `vp_table` (may
  /// be null) short-circuits the frequency scan through precomputed
  /// per-frequency CCDF tables (dvfs/vp_table.h); it must be built over
  /// `service_model`. With a table covering the estimated queue depth the
  /// scan does no convolution work at all; without one (or beyond its
  /// depth) the reference per-decision convolution lookup runs instead.
  /// Both paths pick the same frequency bit for bit.
  ServerPowerPredictor(const ServiceModel* service_model,
                       const ServerPowerModel* power_model,
                       ServerPowerPredictorConfig config = {},
                       const VpTable* vp_table = nullptr);

  /// Predicts power for one server at `utilization` (at f_max) with
  /// per-request server time budget `budget` us.
  ServerPowerPrediction predict(double utilization, SimTime budget) const;

 private:
  const ServiceModel* service_model_;
  const ServerPowerModel* power_model_;
  ServerPowerPredictorConfig config_;
  const VpTable* vp_table_;
};

}  // namespace eprons
