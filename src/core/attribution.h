// Builders bridging planner types (JointPlan, transition masks) to the
// primitive-only attribution records in obs/attribution.h.
//
// Two producers exist:
//   * make_plan_attribution — ledger for a *planned* subnet (benches that
//     call the optimizer directly): network side from the placement's
//     per-layer power fields, server side from the plan's cluster-level
//     component roll-up. No linger overhead (nothing realized yet).
//   * make_epoch_attribution — ledger for a *realized* epoch (the
//     controller after the transition step): network side re-derived from
//     the actually-powered switch mask via layered_network_power (lingering
//     backups included, and charged as linger overhead when the plan did
//     not want them), server side from the plan.
//
// Both inherit the bit-exactness contract documented in obs/attribution.h:
// every total they write *is* the fixed-order sum of the components they
// write next to it.
#pragma once

#include <string>
#include <vector>

#include "core/joint_optimizer.h"
#include "obs/attribution.h"
#include "topo/topology.h"

namespace eprons {

/// Per-layer active-switch counts and the fixed-order network power sum
/// over an actually-powered mask. Returns the headline network power
/// *defined* as ((edge + agg) + core) * components — the epoch
/// controller's realized_network_w is this value, so the ledger's layer
/// components sum to it bit-identically.
struct LayeredNetworkPower {
  int edge_switches = 0;
  int agg_switches = 0;
  int core_switches = 0;
  int active_switches = 0;
  Power edge_w = 0.0;
  Power agg_w = 0.0;
  Power core_w = 0.0;
  /// ((edge_w + agg_w) + core_w).
  Power total_w = 0.0;
};

LayeredNetworkPower layered_network_power(const Graph& graph,
                                          const std::vector<bool>& switch_on,
                                          Power switch_power);

/// Ledger for a plan fresh out of the optimizer (planned subnet).
obs::AttributionRecord make_plan_attribution(const JointOptimizerConfig& config,
                                             const JointPlan& plan,
                                             std::string source, int epoch);

/// Ledger for a realized epoch: `actual` is the powered mask after the
/// transition step, `wanted` the plan's mask (linger overhead = switches in
/// `actual` the plan did not ask for).
obs::AttributionRecord make_epoch_attribution(
    const Graph& graph, const JointOptimizerConfig& config,
    const JointPlan& plan, const std::vector<bool>& actual,
    const std::vector<bool>& wanted, std::string source, int epoch);

}  // namespace eprons
