#include "topo/fattree.h"

#include <stdexcept>

#include "util/strings.h"

namespace eprons {

FatTree::FatTree(int k, Bandwidth link_capacity)
    : k_(k), capacity_(link_capacity) {
  if (k < 2 || k % 2 != 0) {
    throw std::invalid_argument("fat-tree k must be even and >= 2");
  }
  const int half = k_ / 2;

  // Hosts, edge and agg switches, pod by pod.
  edges_.resize(static_cast<std::size_t>(k_));
  aggs_.resize(static_cast<std::size_t>(k_));
  for (int pod = 0; pod < k_; ++pod) {
    for (int i = 0; i < half; ++i) {
      edges_[static_cast<std::size_t>(pod)].push_back(graph_.add_node(
          NodeType::EdgeSwitch, pod, i, strformat("e%d_%d", pod, i)));
      aggs_[static_cast<std::size_t>(pod)].push_back(graph_.add_node(
          NodeType::AggSwitch, pod, i, strformat("a%d_%d", pod, i)));
    }
    for (int e = 0; e < half; ++e) {
      for (int h = 0; h < half; ++h) {
        const int host_index = pod * half * half + e * half + h;
        const NodeId hid = graph_.add_node(NodeType::Host, pod, host_index,
                                           strformat("h%d", host_index));
        hosts_.push_back(hid);
        graph_.add_link(hid, edges_[static_cast<std::size_t>(pod)]
                                   [static_cast<std::size_t>(e)],
                        capacity_);
      }
    }
    // Full bipartite edge <-> agg inside the pod.
    for (int e = 0; e < half; ++e) {
      for (int a = 0; a < half; ++a) {
        graph_.add_link(
            edges_[static_cast<std::size_t>(pod)][static_cast<std::size_t>(e)],
            aggs_[static_cast<std::size_t>(pod)][static_cast<std::size_t>(a)],
            capacity_);
      }
    }
  }

  // Core grid: core (row, col) links to agg `row` of every pod.
  cores_.resize(static_cast<std::size_t>(half));
  for (int row = 0; row < half; ++row) {
    for (int col = 0; col < half; ++col) {
      const NodeId cid = graph_.add_node(NodeType::CoreSwitch, -1,
                                         row * half + col,
                                         strformat("c%d_%d", row, col));
      cores_[static_cast<std::size_t>(row)].push_back(cid);
      for (int pod = 0; pod < k_; ++pod) {
        graph_.add_link(cid,
                        aggs_[static_cast<std::size_t>(pod)]
                             [static_cast<std::size_t>(row)],
                        capacity_);
      }
    }
  }
}

NodeId FatTree::host(int index) const {
  return hosts_.at(static_cast<std::size_t>(index));
}

NodeId FatTree::edge(int pod, int index) const {
  return edges_.at(static_cast<std::size_t>(pod))
      .at(static_cast<std::size_t>(index));
}

NodeId FatTree::agg(int pod, int index) const {
  return aggs_.at(static_cast<std::size_t>(pod))
      .at(static_cast<std::size_t>(index));
}

NodeId FatTree::core(int row, int col) const {
  return cores_.at(static_cast<std::size_t>(row))
      .at(static_cast<std::size_t>(col));
}

NodeId FatTree::core_flat(int index) const {
  const int half = k_ / 2;
  return core(index / half, index % half);
}

std::vector<bool> FatTree::pod_switch_mask(int pod) const {
  std::vector<bool> mask(static_cast<std::size_t>(graph_.num_nodes()), false);
  for (NodeId e : edges_.at(static_cast<std::size_t>(pod))) {
    mask[static_cast<std::size_t>(e)] = true;
  }
  for (NodeId a : aggs_.at(static_cast<std::size_t>(pod))) {
    mask[static_cast<std::size_t>(a)] = true;
  }
  return mask;
}

std::vector<Path> FatTree::all_paths(int src_host, int dst_host) const {
  if (src_host == dst_host) {
    throw std::invalid_argument("src and dst hosts must differ");
  }
  const int half = k_ / 2;
  const int hosts_per_pod = half * half;
  const int src_pod = src_host / hosts_per_pod;
  const int dst_pod = dst_host / hosts_per_pod;
  const int src_edge = (src_host % hosts_per_pod) / half;
  const int dst_edge = (dst_host % hosts_per_pod) / half;
  const NodeId s = host(src_host);
  const NodeId t = host(dst_host);

  std::vector<Path> paths;
  if (src_pod == dst_pod && src_edge == dst_edge) {
    paths.push_back({s, edge(src_pod, src_edge), t});
    return paths;
  }
  if (src_pod == dst_pod) {
    for (int a = 0; a < half; ++a) {
      paths.push_back(
          {s, edge(src_pod, src_edge), agg(src_pod, a), edge(dst_pod, dst_edge), t});
    }
    return paths;
  }
  for (int row = 0; row < half; ++row) {
    for (int col = 0; col < half; ++col) {
      paths.push_back({s, edge(src_pod, src_edge), agg(src_pod, row),
                       core(row, col), agg(dst_pod, row),
                       edge(dst_pod, dst_edge), t});
    }
  }
  return paths;
}

std::vector<Path> FatTree::active_paths(
    int src_host, int dst_host, const std::vector<bool>& switch_on) const {
  std::vector<Path> out;
  for (Path& path : all_paths(src_host, dst_host)) {
    bool ok = true;
    for (NodeId n : path) {
      if (graph_.is_switch(n) &&
          (static_cast<std::size_t>(n) >= switch_on.size() ||
           !switch_on[static_cast<std::size_t>(n)])) {
        ok = false;
        break;
      }
    }
    if (ok) out.push_back(std::move(path));
  }
  return out;
}

}  // namespace eprons
