// Two-tier leaf-spine (folded Clos) topology.
//
// Demonstrates the topology-independence claim of section IV-B: the same
// consolidation model, simulator, and joint optimizer run unchanged on this
// fabric. `leaves` access switches each attach `hosts_per_leaf` hosts and
// uplink to every one of `spines` spine switches; host pairs on different
// leaves have exactly `spines` equal-length paths.
#pragma once

#include <vector>

#include "topo/topology.h"

namespace eprons {

class LeafSpine final : public Topology {
 public:
  LeafSpine(int leaves, int spines, int hosts_per_leaf,
            Bandwidth link_capacity = 1000.0);

  int num_leaves() const { return leaves_; }
  int num_spines() const { return spines_; }
  int num_hosts() const override { return leaves_ * hosts_per_leaf_; }
  int num_switches() const override { return leaves_ + spines_; }
  Bandwidth link_capacity() const override { return capacity_; }
  int hosts_per_access_switch() const override { return hosts_per_leaf_; }

  const Graph& graph() const override { return graph_; }

  NodeId host(int index) const override;
  NodeId leaf(int index) const;
  NodeId spine(int index) const;
  int leaf_of_host(int host_index) const { return host_index / hosts_per_leaf_; }

  std::vector<Path> all_paths(int src_host, int dst_host) const override;
  std::vector<Path> active_paths(
      int src_host, int dst_host,
      const std::vector<bool>& switch_on) const override;

 private:
  int leaves_;
  int spines_;
  int hosts_per_leaf_;
  Bandwidth capacity_;
  Graph graph_;
  std::vector<NodeId> hosts_;
  std::vector<NodeId> leaf_ids_;
  std::vector<NodeId> spine_ids_;
};

}  // namespace eprons
