#include "topo/graph.h"

#include <deque>
#include <stdexcept>

namespace eprons {

const char* node_type_name(NodeType type) {
  switch (type) {
    case NodeType::Host: return "host";
    case NodeType::EdgeSwitch: return "edge";
    case NodeType::AggSwitch: return "agg";
    case NodeType::CoreSwitch: return "core";
  }
  return "?";
}

bool is_switch_type(NodeType type) { return type != NodeType::Host; }

NodeId Graph::add_node(NodeType type, int pod, int index, std::string name) {
  const NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(Node{id, type, pod, index, std::move(name)});
  adjacency_.emplace_back();
  return id;
}

LinkId Graph::add_link(NodeId a, NodeId b, Bandwidth capacity) {
  if (a < 0 || b < 0 || static_cast<std::size_t>(a) >= nodes_.size() ||
      static_cast<std::size_t>(b) >= nodes_.size() || a == b) {
    throw std::invalid_argument("bad link endpoints");
  }
  if (capacity <= 0.0) throw std::invalid_argument("link capacity must be > 0");
  if (find_link(a, b) != kInvalidLink) {
    throw std::invalid_argument("duplicate link");
  }
  const LinkId id = static_cast<LinkId>(links_.size());
  links_.push_back(Link{id, a, b, capacity});
  adjacency_[static_cast<std::size_t>(a)].push_back(id);
  adjacency_[static_cast<std::size_t>(b)].push_back(id);
  return id;
}

const std::vector<LinkId>& Graph::links_of(NodeId id) const {
  return adjacency_[static_cast<std::size_t>(id)];
}

NodeId Graph::other_end(LinkId link_id, NodeId from) const {
  const Link& l = link(link_id);
  if (l.a == from) return l.b;
  if (l.b == from) return l.a;
  throw std::invalid_argument("node not an endpoint of link");
}

LinkId Graph::find_link(NodeId a, NodeId b) const {
  for (LinkId lid : links_of(a)) {
    const Link& l = link(lid);
    if ((l.a == a && l.b == b) || (l.a == b && l.b == a)) return lid;
  }
  return kInvalidLink;
}

std::vector<NodeId> Graph::switches() const {
  std::vector<NodeId> out;
  for (const Node& n : nodes_) {
    if (is_switch_type(n.type)) out.push_back(n.id);
  }
  return out;
}

std::vector<NodeId> Graph::hosts() const {
  std::vector<NodeId> out;
  for (const Node& n : nodes_) {
    if (n.type == NodeType::Host) out.push_back(n.id);
  }
  return out;
}

std::vector<LinkId> Graph::path_links(const Path& path) const {
  std::vector<LinkId> out;
  if (path.size() < 2) return out;
  out.reserve(path.size() - 1);
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const LinkId lid = find_link(path[i], path[i + 1]);
    if (lid == kInvalidLink) {
      throw std::invalid_argument("path nodes not adjacent");
    }
    out.push_back(lid);
  }
  return out;
}

bool Graph::connected(NodeId source, const std::vector<NodeId>& targets,
                      const std::vector<bool>& switch_on) const {
  return connected(source, targets, switch_on, nullptr);
}

bool Graph::connected(NodeId source, const std::vector<NodeId>& targets,
                      const std::vector<bool>& switch_on,
                      const FailureOverlay* overlay) const {
  auto node_up = [&](NodeId id) {
    if (overlay && overlay->node_failed(id)) return false;
    const Node& n = node(id);
    if (!is_switch_type(n.type)) return true;
    return static_cast<std::size_t>(id) < switch_on.size() &&
           switch_on[static_cast<std::size_t>(id)];
  };
  std::vector<bool> seen(nodes_.size(), false);
  std::deque<NodeId> frontier;
  if (!node_up(source)) return targets.empty();
  seen[static_cast<std::size_t>(source)] = true;
  frontier.push_back(source);
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop_front();
    for (LinkId lid : links_of(u)) {
      if (overlay && overlay->link_down(lid)) continue;
      const NodeId v = other_end(lid, u);
      if (seen[static_cast<std::size_t>(v)] || !node_up(v)) continue;
      seen[static_cast<std::size_t>(v)] = true;
      frontier.push_back(v);
    }
  }
  for (NodeId t : targets) {
    if (!seen[static_cast<std::size_t>(t)]) return false;
  }
  return true;
}

FailureOverlay::FailureOverlay(const Graph* graph)
    : graph_(graph),
      node_fail_count_(graph->num_nodes(), 0),
      link_fail_count_(graph->num_links(), 0) {}

void FailureOverlay::fail_node(NodeId id) {
  if (++node_fail_count_[static_cast<std::size_t>(id)] == 1) ++failed_nodes_;
}

void FailureOverlay::repair_node(NodeId id) {
  int& count = node_fail_count_[static_cast<std::size_t>(id)];
  if (count == 0) return;  // repair without a matching failure: no-op
  if (--count == 0) --failed_nodes_;
}

void FailureOverlay::fail_link(LinkId id) {
  if (++link_fail_count_[static_cast<std::size_t>(id)] == 1) ++failed_links_;
}

void FailureOverlay::repair_link(LinkId id) {
  int& count = link_fail_count_[static_cast<std::size_t>(id)];
  if (count == 0) return;
  if (--count == 0) --failed_links_;
}

void FailureOverlay::clear() {
  std::fill(node_fail_count_.begin(), node_fail_count_.end(), 0);
  std::fill(link_fail_count_.begin(), link_fail_count_.end(), 0);
  failed_nodes_ = 0;
  failed_links_ = 0;
}

bool FailureOverlay::node_failed(NodeId id) const {
  return static_cast<std::size_t>(id) < node_fail_count_.size() &&
         node_fail_count_[static_cast<std::size_t>(id)] > 0;
}

bool FailureOverlay::link_failed(LinkId id) const {
  return static_cast<std::size_t>(id) < link_fail_count_.size() &&
         link_fail_count_[static_cast<std::size_t>(id)] > 0;
}

bool FailureOverlay::link_down(LinkId id) const {
  if (link_failed(id)) return true;
  const Link& l = graph_->link(id);
  return node_failed(l.a) || node_failed(l.b);
}

int FailureOverlay::down_links() const {
  int down = 0;
  for (const Link& l : graph_->links()) {
    if (link_down(l.id)) ++down;
  }
  return down;
}

bool FailureOverlay::blocks(const Path& path) const {
  if (!any_failed()) return false;
  for (NodeId n : path) {
    if (node_failed(n)) return true;
  }
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    if (link_down(graph_->find_link(path[i], path[i + 1]))) return true;
  }
  return false;
}

std::vector<bool> FailureOverlay::surviving_switches() const {
  std::vector<bool> mask(graph_->num_nodes(), false);
  for (const Node& n : graph_->nodes()) {
    mask[static_cast<std::size_t>(n.id)] = !node_failed(n.id);
  }
  return mask;
}

std::vector<bool> FailureOverlay::down_link_mask() const {
  std::vector<bool> mask(graph_->num_links(), false);
  for (const Link& l : graph_->links()) {
    mask[static_cast<std::size_t>(l.id)] = link_down(l.id);
  }
  return mask;
}

}  // namespace eprons
