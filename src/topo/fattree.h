// k-ary fat-tree topology builder (Al-Fares et al. construction).
//
// The paper's platform is a 4-ary fat-tree with 16 servers (section V-A):
// k pods, each with k/2 edge and k/2 aggregation switches; (k/2)^2 core
// switches; k/2 hosts per edge switch -> k^3/4 hosts total.
//
// Wiring convention (needed by the aggregation policies of Fig. 9):
// core switches are arranged in a (k/2) x (k/2) grid; core (i, j) connects
// to aggregation switch i of every pod. So cores with the same row index i
// form the uplink group of "agg row i".
#pragma once

#include <vector>

#include "topo/topology.h"

namespace eprons {

class FatTree final : public Topology {
 public:
  /// k must be even and >= 2. All links get `link_capacity` Mbps.
  explicit FatTree(int k, Bandwidth link_capacity = 1000.0);

  int k() const { return k_; }
  int num_pods() const { return k_; }
  int num_hosts() const override { return k_ * k_ * k_ / 4; }
  int num_core() const { return (k_ / 2) * (k_ / 2); }
  int num_agg() const { return k_ * (k_ / 2); }
  int num_edge() const { return k_ * (k_ / 2); }
  int num_switches() const override {
    return num_core() + num_agg() + num_edge();
  }
  Bandwidth link_capacity() const override { return capacity_; }
  int hosts_per_access_switch() const override { return k_ / 2; }

  const Graph& graph() const override { return graph_; }

  /// Node-id accessors. host index in [0, num_hosts); pod in [0, k);
  /// position indices in [0, k/2).
  NodeId host(int index) const override;
  NodeId edge(int pod, int index) const;
  NodeId agg(int pod, int index) const;
  /// Core grid accessors: row = which agg it uplinks, col = replica.
  NodeId core(int row, int col) const;
  NodeId core_flat(int index) const;  // index in [0, num_core)

  /// Hosts under one pod's k/2 edge switches: (k/2)^2.
  int hosts_per_pod() const { return (k_ / 2) * (k_ / 2); }

  int pod_of_host(int host_index) const { return host_index / hosts_per_pod(); }

  /// NodeId-indexed mask of the pod's edge and aggregation switches (cores
  /// belong to no pod). This is the allowed_switches restriction the
  /// hierarchical consolidator hands each per-pod solve.
  std::vector<bool> pod_switch_mask(int pod) const;

  /// Every loop-free shortest path between two distinct hosts:
  ///   same edge switch  -> 1 path (h, e, h')
  ///   same pod          -> k/2 paths via each agg switch
  ///   different pods    -> (k/2)^2 paths via each core switch
  std::vector<Path> all_paths(int src_host, int dst_host) const override;

  /// As all_paths, but keeps only paths whose switches are all `on`.
  /// `switch_on` is indexed by NodeId.
  std::vector<Path> active_paths(
      int src_host, int dst_host,
      const std::vector<bool>& switch_on) const override;

 private:
  int hosts_per_edge() const { return k_ / 2; }

  int k_;
  Bandwidth capacity_;
  Graph graph_;
  std::vector<NodeId> hosts_;
  std::vector<std::vector<NodeId>> edges_;  // [pod][index]
  std::vector<std::vector<NodeId>> aggs_;   // [pod][index]
  std::vector<std::vector<NodeId>> cores_;  // [row][col]
};

}  // namespace eprons
