// Undirected network graph with typed nodes and capacitated links.
//
// This is the substrate under the fat-tree builder, the consolidation LP
// (which views each undirected link as two directed arcs), and the
// flow-level latency model.
#pragma once

#include <string>
#include <vector>

#include "util/types.h"

namespace eprons {

enum class NodeType { Host, EdgeSwitch, AggSwitch, CoreSwitch };

const char* node_type_name(NodeType type);
bool is_switch_type(NodeType type);

struct Node {
  NodeId id = kInvalidNode;
  NodeType type = NodeType::Host;
  /// Pod index for pod-local nodes; -1 for core switches.
  int pod = -1;
  /// Position within its (type, pod) group.
  int index = 0;
  std::string name;
};

struct Link {
  LinkId id = kInvalidLink;
  NodeId a = kInvalidNode;
  NodeId b = kInvalidNode;
  Bandwidth capacity = 0.0;  // Mbps, per direction
};

/// A path is a node sequence; adjacent nodes must be linked.
using Path = std::vector<NodeId>;

class Graph {
 public:
  NodeId add_node(NodeType type, int pod, int index, std::string name);
  /// Adds an undirected link; returns its id. Endpoints must exist.
  LinkId add_link(NodeId a, NodeId b, Bandwidth capacity);

  std::size_t num_nodes() const { return nodes_.size(); }
  std::size_t num_links() const { return links_.size(); }
  const Node& node(NodeId id) const { return nodes_[static_cast<std::size_t>(id)]; }
  const Link& link(LinkId id) const { return links_[static_cast<std::size_t>(id)]; }
  const std::vector<Node>& nodes() const { return nodes_; }
  const std::vector<Link>& links() const { return links_; }

  /// Links incident to `id`.
  const std::vector<LinkId>& links_of(NodeId id) const;
  /// The other endpoint of `link` relative to `from`.
  NodeId other_end(LinkId link, NodeId from) const;
  /// Link between a and b, or kInvalidLink.
  LinkId find_link(NodeId a, NodeId b) const;

  bool is_switch(NodeId id) const { return is_switch_type(node(id).type); }

  /// All switch node ids (hosts excluded).
  std::vector<NodeId> switches() const;
  /// All host node ids.
  std::vector<NodeId> hosts() const;

  /// Converts a node path to the link ids it traverses. Throws if two
  /// consecutive nodes are not adjacent.
  std::vector<LinkId> path_links(const Path& path) const;

  /// True if every node in `targets` is reachable from `source` using only
  /// links whose both endpoints pass `node_ok` (hosts always pass).
  bool connected(NodeId source, const std::vector<NodeId>& targets,
                 const std::vector<bool>& switch_on) const;

 private:
  std::vector<Node> nodes_;
  std::vector<Link> links_;
  std::vector<std::vector<LinkId>> adjacency_;
};

}  // namespace eprons
