// Undirected network graph with typed nodes and capacitated links.
//
// This is the substrate under the fat-tree builder, the consolidation LP
// (which views each undirected link as two directed arcs), and the
// flow-level latency model.
#pragma once

#include <string>
#include <vector>

#include "util/types.h"

namespace eprons {

enum class NodeType { Host, EdgeSwitch, AggSwitch, CoreSwitch };

const char* node_type_name(NodeType type);
bool is_switch_type(NodeType type);

struct Node {
  NodeId id = kInvalidNode;
  NodeType type = NodeType::Host;
  /// Pod index for pod-local nodes; -1 for core switches.
  int pod = -1;
  /// Position within its (type, pod) group.
  int index = 0;
  std::string name;
};

struct Link {
  LinkId id = kInvalidLink;
  NodeId a = kInvalidNode;
  NodeId b = kInvalidNode;
  Bandwidth capacity = 0.0;  // Mbps, per direction
};

/// A path is a node sequence; adjacent nodes must be linked.
using Path = std::vector<NodeId>;

class FailureOverlay;

class Graph {
 public:
  NodeId add_node(NodeType type, int pod, int index, std::string name);
  /// Adds an undirected link; returns its id. Endpoints must exist.
  LinkId add_link(NodeId a, NodeId b, Bandwidth capacity);

  std::size_t num_nodes() const { return nodes_.size(); }
  std::size_t num_links() const { return links_.size(); }
  const Node& node(NodeId id) const { return nodes_[static_cast<std::size_t>(id)]; }
  const Link& link(LinkId id) const { return links_[static_cast<std::size_t>(id)]; }
  const std::vector<Node>& nodes() const { return nodes_; }
  const std::vector<Link>& links() const { return links_; }

  /// Links incident to `id`.
  const std::vector<LinkId>& links_of(NodeId id) const;
  /// The other endpoint of `link` relative to `from`.
  NodeId other_end(LinkId link, NodeId from) const;
  /// Link between a and b, or kInvalidLink.
  LinkId find_link(NodeId a, NodeId b) const;

  bool is_switch(NodeId id) const { return is_switch_type(node(id).type); }

  /// All switch node ids (hosts excluded).
  std::vector<NodeId> switches() const;
  /// All host node ids.
  std::vector<NodeId> hosts() const;

  /// Converts a node path to the link ids it traverses. Throws if two
  /// consecutive nodes are not adjacent.
  std::vector<LinkId> path_links(const Path& path) const;

  /// True if every node in `targets` is reachable from `source` using only
  /// links whose both endpoints pass `node_ok` (hosts always pass).
  bool connected(NodeId source, const std::vector<NodeId>& targets,
                 const std::vector<bool>& switch_on) const;

  /// As above, additionally skipping nodes/links failed in `overlay`
  /// (nullptr behaves like the overload without one).
  bool connected(NodeId source, const std::vector<NodeId>& targets,
                 const std::vector<bool>& switch_on,
                 const FailureOverlay* overlay) const;

 private:
  std::vector<Node> nodes_;
  std::vector<Link> links_;
  std::vector<std::vector<LinkId>> adjacency_;
};

/// Which nodes/links are currently *failed* — kept apart from Graph (the
/// physical wiring never changes) and from consolidation masks (which
/// encode the chosen power state, not availability). Failures are counted,
/// not flagged, so overlapping outages of the same element compose: the
/// element recovers only when every outstanding failure has been repaired,
/// and a repair restores exactly the capacity the matching failure removed.
/// A failed node takes every incident link down with it implicitly; those
/// links come back the moment the node is repaired unless they also failed
/// independently.
class FailureOverlay {
 public:
  FailureOverlay() = default;
  explicit FailureOverlay(const Graph* graph);

  void fail_node(NodeId id);
  void repair_node(NodeId id);
  void fail_link(LinkId id);
  void repair_link(LinkId id);
  void clear();

  bool node_failed(NodeId id) const;
  /// The link's own failure state (independent of its endpoints).
  bool link_failed(LinkId id) const;
  /// True when the link itself failed or either endpoint node has.
  bool link_down(LinkId id) const;

  bool any_failed() const { return failed_nodes_ + failed_links_ > 0; }
  int failed_nodes() const { return failed_nodes_; }
  int failed_links() const { return failed_links_; }
  /// Links unusable right now, including those implied by node failures.
  int down_links() const;

  /// True if any hop of `path` crosses a failed node or a down link.
  bool blocks(const Path& path) const;

  /// NodeId-indexed mask of surviving elements: hosts and non-failed
  /// switches true. Shaped for ConsolidationConfig::allowed_switches.
  std::vector<bool> surviving_switches() const;
  /// LinkId-indexed mask of down links (explicit or implied). Shaped for
  /// ConsolidationConfig::blocked_links.
  std::vector<bool> down_link_mask() const;

  const Graph* graph() const { return graph_; }

 private:
  const Graph* graph_ = nullptr;
  std::vector<int> node_fail_count_;
  std::vector<int> link_fail_count_;
  int failed_nodes_ = 0;
  int failed_links_ = 0;
};

}  // namespace eprons
