// Memoized, annotated path enumeration shared across planner calls.
//
// Topology::all_paths(src, dst) is a pure function of the wiring, yet the
// greedy packer re-enumerates it — and re-resolves every hop through
// Graph::find_link — once per flow per consolidate() call, i.e. once per K
// candidate per epoch. A PathCatalog enumerates each host pair exactly once
// (on first use, thread-safely) and precomputes the per-hop constants the
// consolidators need, so the K sweep's path work collapses to array reads.
//
// The cached list preserves Topology::all_paths order exactly; filtering it
// by an allowed-switch or blocked-link mask yields the same candidate
// sequence as Topology::active_paths followed by the blocked-link erase
// (both topologies implement active_paths as an order-preserving filter of
// all_paths). That order equivalence is what keeps catalog-backed packing
// byte-identical to reference enumeration (docs/DETERMINISM.md).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "topo/topology.h"

namespace eprons {

/// One enumerated path plus the per-hop/per-node constants consolidation
/// re-derives from the Graph on every visit.
struct CatalogPath {
  /// The node sequence, exactly as Topology::all_paths returned it.
  Path nodes;
  /// Per hop: directed-arc slot (LinkId * 2, +1 for the b->a direction) —
  /// the residual-capacity index the greedy packer charges.
  std::vector<std::uint32_t> arc_slots;
  /// Per hop: the undirected link id (blocked-link filtering, activation).
  std::vector<LinkId> links;
  /// Per hop: true when either endpoint is a host (such hops are charged
  /// the unscaled demand — no routing alternative exists there).
  std::vector<std::uint8_t> host_adjacent;
  /// The switch nodes on the path, in path order (subnet filtering and
  /// MinimizeSwitches scoring).
  std::vector<NodeId> switches;
};

class PathCatalog {
 public:
  /// The topology must outlive the catalog. Storage is sparse: one shard
  /// per source host, each a hash map keyed by destination, populated only
  /// for pairs actually planned. A k=32 fat-tree has 8192 hosts — a dense
  /// hosts x hosts entry table would be 67M slots before the first flow is
  /// placed; the sparse layout is O(hosts) empty shards up front and
  /// O(pairs used) thereafter.
  explicit PathCatalog(const Topology* topo);

  const Topology& topology() const { return *topo_; }

  /// The annotated all_paths(src_host, dst_host) list. First use per pair
  /// enumerates and annotates (a short shard-lock to find-or-create the
  /// entry, then a std::call_once fill); later uses — from any thread — are
  /// read-only map lookups plus a passed call_once. Host indices must be in
  /// [0, num_hosts).
  const std::vector<CatalogPath>& pair(int src_host, int dst_host) const;

 private:
  struct Entry {
    std::once_flag once;
    std::vector<CatalogPath> paths;
  };
  /// All destinations reachable from one source host. Entries are
  /// heap-pinned so the returned reference stays valid across rehashes.
  struct Shard {
    std::mutex mu;
    std::unordered_map<int, std::unique_ptr<Entry>> by_dst;
  };

  const Topology* topo_;
  int hosts_;
  mutable std::unique_ptr<Shard[]> shards_;  // hosts_ shards, indexed by src
};

}  // namespace eprons
