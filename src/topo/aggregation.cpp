#include "topo/aggregation.h"

#include <stdexcept>

namespace eprons {

AggregationPolicies::AggregationPolicies(const FatTree* topo) : topo_(topo) {}

int AggregationPolicies::max_level() const {
  // Turning off rows 1..k/2-1 gives levels 1..2*(k/2-1); the final level
  // prunes core row 0 down to a single switch. For k=4 this yields 3.
  return 2 * (topo_->k() / 2 - 1) + 1;
}

AggregationPolicy AggregationPolicies::policy(int level) const {
  if (level < 0 || level > max_level()) {
    throw std::out_of_range("aggregation level out of range");
  }
  const int half = topo_->k() / 2;
  const Graph& graph = topo_->graph();

  AggregationPolicy out;
  out.level = level;
  out.switch_on.assign(graph.num_nodes(), true);

  // Levels alternate: odd level 2r-1 turns off core row r, even level 2r
  // additionally turns off agg row r. Applied for rows half-1 down to 1.
  // The final level (max) turns off all but one core in row 0.
  int remaining = level;
  for (int row = half - 1; row >= 1 && remaining > 0; --row) {
    // Turn off core row `row`.
    for (int col = 0; col < half; ++col) {
      out.switch_on[static_cast<std::size_t>(topo_->core(row, col))] = false;
    }
    --remaining;
    if (remaining == 0) break;
    // Turn off agg row `row` in every pod.
    for (int pod = 0; pod < topo_->k(); ++pod) {
      out.switch_on[static_cast<std::size_t>(topo_->agg(pod, row))] = false;
    }
    --remaining;
  }
  if (remaining > 0) {
    // Final pruning: keep only core (0, 0).
    for (int col = 1; col < half; ++col) {
      out.switch_on[static_cast<std::size_t>(topo_->core(0, col))] = false;
    }
    --remaining;
  }

  out.active_switches = count_active_switches(graph, out.switch_on);
  return out;
}

std::vector<AggregationPolicy> AggregationPolicies::all() const {
  std::vector<AggregationPolicy> out;
  for (int level = 0; level <= max_level(); ++level) {
    out.push_back(policy(level));
  }
  return out;
}

int count_active_switches(const Graph& graph,
                          const std::vector<bool>& switch_on) {
  int count = 0;
  for (const Node& n : graph.nodes()) {
    if (is_switch_type(n.type) && switch_on[static_cast<std::size_t>(n.id)]) {
      ++count;
    }
  }
  return count;
}

}  // namespace eprons
