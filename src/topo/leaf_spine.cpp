#include "topo/leaf_spine.h"

#include <stdexcept>

#include "util/strings.h"

namespace eprons {

LeafSpine::LeafSpine(int leaves, int spines, int hosts_per_leaf,
                     Bandwidth link_capacity)
    : leaves_(leaves),
      spines_(spines),
      hosts_per_leaf_(hosts_per_leaf),
      capacity_(link_capacity) {
  if (leaves < 2 || spines < 1 || hosts_per_leaf < 1) {
    throw std::invalid_argument("leaf-spine needs >=2 leaves, >=1 spine, "
                                ">=1 host per leaf");
  }
  for (int l = 0; l < leaves_; ++l) {
    leaf_ids_.push_back(
        graph_.add_node(NodeType::EdgeSwitch, l, l, strformat("leaf%d", l)));
    for (int h = 0; h < hosts_per_leaf_; ++h) {
      const int index = l * hosts_per_leaf_ + h;
      const NodeId hid = graph_.add_node(NodeType::Host, l, index,
                                         strformat("h%d", index));
      hosts_.push_back(hid);
      graph_.add_link(hid, leaf_ids_.back(), capacity_);
    }
  }
  for (int s = 0; s < spines_; ++s) {
    spine_ids_.push_back(graph_.add_node(NodeType::CoreSwitch, -1, s,
                                         strformat("spine%d", s)));
    for (int l = 0; l < leaves_; ++l) {
      graph_.add_link(spine_ids_.back(), leaf_ids_[static_cast<std::size_t>(l)],
                      capacity_);
    }
  }
}

NodeId LeafSpine::host(int index) const {
  return hosts_.at(static_cast<std::size_t>(index));
}

NodeId LeafSpine::leaf(int index) const {
  return leaf_ids_.at(static_cast<std::size_t>(index));
}

NodeId LeafSpine::spine(int index) const {
  return spine_ids_.at(static_cast<std::size_t>(index));
}

std::vector<Path> LeafSpine::all_paths(int src_host, int dst_host) const {
  if (src_host == dst_host) {
    throw std::invalid_argument("src and dst hosts must differ");
  }
  const int src_leaf = leaf_of_host(src_host);
  const int dst_leaf = leaf_of_host(dst_host);
  const NodeId s = host(src_host);
  const NodeId t = host(dst_host);
  std::vector<Path> paths;
  if (src_leaf == dst_leaf) {
    paths.push_back({s, leaf(src_leaf), t});
    return paths;
  }
  paths.reserve(static_cast<std::size_t>(spines_));
  for (int sp = 0; sp < spines_; ++sp) {
    paths.push_back({s, leaf(src_leaf), spine(sp), leaf(dst_leaf), t});
  }
  return paths;
}

std::vector<Path> LeafSpine::active_paths(
    int src_host, int dst_host, const std::vector<bool>& switch_on) const {
  std::vector<Path> out;
  for (Path& path : all_paths(src_host, dst_host)) {
    bool ok = true;
    for (NodeId n : path) {
      if (graph_.is_switch(n) &&
          (static_cast<std::size_t>(n) >= switch_on.size() ||
           !switch_on[static_cast<std::size_t>(n)])) {
        ok = false;
        break;
      }
    }
    if (ok) out.push_back(std::move(path));
  }
  return out;
}

}  // namespace eprons
