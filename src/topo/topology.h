// Abstract multipath data-center topology.
//
// The paper notes its optimization model "is independent of the network
// topology" (section IV-B); this interface is what makes that true in
// code: consolidators, the simulator, and the joint optimizer only need a
// graph, host handles, and loop-free path enumeration. `FatTree` is the
// paper's evaluation topology; `LeafSpine` demonstrates portability.
#pragma once

#include <vector>

#include "topo/graph.h"

namespace eprons {

class Topology {
 public:
  virtual ~Topology() = default;

  virtual const Graph& graph() const = 0;
  virtual int num_hosts() const = 0;
  virtual int num_switches() const = 0;
  /// Uniform link capacity, Mbps (all paper topologies are homogeneous).
  virtual Bandwidth link_capacity() const = 0;
  /// NodeId of host `index` in [0, num_hosts).
  virtual NodeId host(int index) const = 0;
  /// Hosts attached to the same access switch as host 0, 1, ... — used by
  /// workload generators to spread elephants across access switches.
  virtual int hosts_per_access_switch() const = 0;

  /// Every loop-free shortest path between two distinct hosts.
  virtual std::vector<Path> all_paths(int src_host, int dst_host) const = 0;
  /// As all_paths, filtered to paths whose switches are all on.
  virtual std::vector<Path> active_paths(
      int src_host, int dst_host,
      const std::vector<bool>& switch_on) const = 0;
};

}  // namespace eprons
