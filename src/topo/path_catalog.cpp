#include "topo/path_catalog.h"

#include <stdexcept>
#include <utility>

namespace eprons {

PathCatalog::PathCatalog(const Topology* topo)
    : topo_(topo),
      hosts_(topo->num_hosts()),
      shards_(std::make_unique<Shard[]>(
          static_cast<std::size_t>(topo->num_hosts()))) {}

const std::vector<CatalogPath>& PathCatalog::pair(int src_host,
                                                  int dst_host) const {
  if (src_host < 0 || src_host >= hosts_ || dst_host < 0 ||
      dst_host >= hosts_) {
    throw std::out_of_range("PathCatalog::pair: host index out of range");
  }
  Shard& shard = shards_[static_cast<std::size_t>(src_host)];
  Entry* entry_ptr = nullptr;
  {
    const std::lock_guard<std::mutex> lock(shard.mu);
    std::unique_ptr<Entry>& slot = shard.by_dst[dst_host];
    if (slot == nullptr) slot = std::make_unique<Entry>();
    entry_ptr = slot.get();
  }
  Entry& entry = *entry_ptr;
  std::call_once(entry.once, [&] {
    const Graph& graph = topo_->graph();
    std::vector<CatalogPath> annotated;
    for (Path& path : topo_->all_paths(src_host, dst_host)) {
      CatalogPath cp;
      cp.nodes = std::move(path);
      const std::size_t hops = cp.nodes.size() < 2 ? 0 : cp.nodes.size() - 1;
      cp.arc_slots.reserve(hops);
      cp.links.reserve(hops);
      cp.host_adjacent.reserve(hops);
      for (std::size_t h = 0; h + 1 < cp.nodes.size(); ++h) {
        const LinkId lid = graph.find_link(cp.nodes[h], cp.nodes[h + 1]);
        const bool forward = graph.link(lid).a == cp.nodes[h];
        cp.arc_slots.push_back(static_cast<std::uint32_t>(lid) * 2 +
                               (forward ? 0u : 1u));
        cp.links.push_back(lid);
        cp.host_adjacent.push_back(!graph.is_switch(cp.nodes[h]) ||
                                   !graph.is_switch(cp.nodes[h + 1]));
      }
      for (NodeId n : cp.nodes) {
        if (graph.is_switch(n)) cp.switches.push_back(n);
      }
      annotated.push_back(std::move(cp));
    }
    entry.paths = std::move(annotated);
  });
  return entry.paths;
}

}  // namespace eprons
