// The four network aggregation policies of Fig. 9.
//
// "From Aggregation 0 to Aggregation 3, we gradually turn off the core-level
// switches and the corresponding aggregation-level switches." For a 4-ary
// fat-tree (4 core, 8 agg, 8 edge = 20 switches) our presets are:
//   Aggregation 0: everything on                      -> 20 switches
//   Aggregation 1: core row 1 off (cores c1_*)        -> 18 switches
//   Aggregation 2: additionally agg row 1 off         -> 14 switches
//   Aggregation 3: additionally one core of row 0 off -> 13 switches
// Every preset keeps all hosts mutually reachable (edge switches never turn
// off; agg/core row 0 always survives), matching the 13..19 active-switch
// range visible in Fig. 11(b).
#pragma once

#include <vector>

#include "topo/fattree.h"

namespace eprons {

struct AggregationPolicy {
  int level = 0;                 // 0 (full topology) .. max_level()
  std::vector<bool> switch_on;   // indexed by NodeId; hosts omitted from count
  int active_switches = 0;
};

class AggregationPolicies {
 public:
  explicit AggregationPolicies(const FatTree* topo);

  /// Highest defined level (3 for k=4; scales with k/2 rows for larger k).
  int max_level() const;

  /// Builds the ON/OFF switch mask for `level`. Throws on out-of-range.
  AggregationPolicy policy(int level) const;

  /// All levels 0..max_level().
  std::vector<AggregationPolicy> all() const;

 private:
  const FatTree* topo_;
};

/// Counts switches marked on in a mask (hosts ignored).
int count_active_switches(const Graph& graph,
                          const std::vector<bool>& switch_on);

}  // namespace eprons
