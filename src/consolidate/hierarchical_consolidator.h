// Hierarchical pod-decomposed consolidation for large fat-trees.
//
// The flat greedy/MILP instance treats the fabric as one bin-packing
// problem; at k=16 (1024 hosts, 320 switches) that is the scale ceiling.
// GreenDCN's observation is that the DCN energy problem decomposes along
// fat-tree regularity: intra-pod flows never leave their pod (their
// candidate paths touch only that pod's edge/aggregation switches), so
// each pod's consolidation is an independent sub-instance, and only the
// inter-pod flows need a fabric-wide solve. This consolidator composes an
// inner flat Consolidator (greedy by default, MILP works too) in three
// phases:
//
//   1. pod partition — split the flow set into per-pod intra-pod buckets
//      plus one inter-pod bucket, preserving relative flow order;
//   2. pod solve — run the inner consolidator per non-empty pod with
//      allowed_switches restricted to that pod's edge/agg mask. Pods are
//      link-disjoint, so the solves run in parallel on an internal thread
//      pool; each writes only its own slot, and the merge is serial in pod
//      order, so results are bit-identical for any thread count;
//   3. core solve + stitch — one inner solve over the inter-pod bucket
//      with the pod phases' arc loads pre-charged (committed_arc_load) and
//      the pod-lit switches marked free (preactivated_switches), then OR
//      the masks, scatter per-bucket paths back to original flow indices,
//      and finalize_result — which re-derives the per-layer counts from
//      the stitched mask, so the attribution exact-sum invariant
//      (network_power == ((edge+agg)+core)+link) holds by construction.
//
// The decomposition is an approximation: pod solves do not see the
// inter-pod flows that will later ride their edge->agg links, so the
// stitched plan can light marginally more switches than the flat solver
// (bench_ablation_hierarchy measures the gap). Constraint satisfaction is
// not approximate: every phase packs against the true residual capacities,
// so a feasible stitched plan respects the safety margin, allowed
// switches, and blocked links exactly as a flat plan does.
//
// Non-fat-tree topologies have no pod structure; consolidate() simply
// delegates to the inner consolidator.
#pragma once

#include <memory>

#include "consolidate/greedy_consolidator.h"
#include "util/thread_pool.h"

namespace eprons {

struct HierarchicalConsolidatorOptions {
  /// Worker threads for the per-pod solves (<= 1 = serial). Plans are
  /// bit-identical for any value — the pool only changes wall-clock.
  int threads = 1;
};

class HierarchicalConsolidator : public Consolidator {
 public:
  /// `inner` solves each pod and the core instance; nullptr = an internal
  /// GreedyConsolidator with default options. Not owned; must be
  /// thread-safe for concurrent calls (both stock consolidators are) and
  /// must outlive this object.
  explicit HierarchicalConsolidator(
      const Consolidator* inner = nullptr,
      HierarchicalConsolidatorOptions options = {});

  /// Consolidator interface; thread-safe for concurrent calls.
  ConsolidationResult consolidate(
      const Topology& topo, const FlowSet& flows,
      const ConsolidationConfig& config) const override;

  /// Warm start decomposes along the same partition: when the previous
  /// flow set has the same size and every index kept its bucket (same pod,
  /// or inter-pod both epochs), each phase gets a sub-hint carved from the
  /// previous placement and the inner consolidator's own keep/repack or
  /// incumbent-seeding logic applies per bucket. A partition-shape change
  /// falls back to a cold hierarchical solve.
  ConsolidationResult consolidate_incremental(
      const Topology& topo, const FlowSet& flows,
      const ConsolidationConfig& config,
      const WarmStartHint* warm) const override;

  const char* name() const override { return "hierarchical"; }

 private:
  const Consolidator& inner() const {
    return inner_ != nullptr ? *inner_ : fallback_;
  }

  ConsolidationResult solve(const FatTree& ft, const FlowSet& flows,
                            const ConsolidationConfig& config,
                            const WarmStartHint* warm) const;

  GreedyConsolidator fallback_;
  const Consolidator* inner_;
  HierarchicalConsolidatorOptions options_;
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace eprons
