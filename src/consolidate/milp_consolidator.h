// Exact latency-aware traffic consolidation via MILP (paper eqs. (2)-(9)).
//
// The paper's arc formulation uses flow-conservation variables f_i(u,v) with
// the unsplittable-path constraint (9) f_i(u,v) = K * d_i * Z_i(u,v). On a
// fat-tree, where every loop-free shortest path is enumerable (at most
// (k/2)^2 per flow), the equivalent and much smaller *path* formulation is:
//
//   minimize   sum_l X_l * l(u,v) + sum_u Y_u * s(u)   (+ N * Pserver)
//   s.t.       sum_p Z_{i,p} = 1                                  per flow
//              sum_{i,p uses arc a} K_i d_i Z_{i,p}
//                    <= (c - margin) * X_{link(a)}                per arc
//              X_l <= Y_u, X_l <= Y_v                             eq. (7)
//              Z, X, Y binary
//
// Constraint (8) (a switch with no active link turns off) is implied by the
// minimization objective. Constraint (5) (antisymmetry) is implicit in the
// per-directed-arc accounting. K enters as a fixed parameter; the joint
// optimizer searches K externally (section IV-B solves per-K models).
#pragma once

#include <atomic>

#include "consolidate/consolidation.h"
#include "lp/branch_and_bound.h"

namespace eprons {

struct MilpConsolidatorOptions {
  lp::MilpOptions milp;
};

class MilpConsolidator : public Consolidator {
 public:
  explicit MilpConsolidator(const Topology* topo = nullptr,
                            MilpConsolidatorOptions options = {});

  MilpConsolidator(const MilpConsolidator& other)
      : topo_(other.topo_),
        options_(other.options_),
        last_nodes_(other.last_nodes_.load()) {}
  MilpConsolidator& operator=(const MilpConsolidator& other) {
    topo_ = other.topo_;
    options_ = other.options_;
    last_nodes_.store(other.last_nodes_.load());
    return *this;
  }

  /// Consolidator interface: places all flows; `result.feasible` is false
  /// when demands cannot fit (or the node budget ran out with no
  /// incumbent).
  ConsolidationResult consolidate(
      const Topology& topo, const FlowSet& flows,
      const ConsolidationConfig& config) const override;

  /// Warm-started exact solve: the previous epoch's integer assignment
  /// (paths → Z, used links → X, their switches → Y) seeds the
  /// branch-and-bound incumbent so subtrees that cannot beat it are
  /// pruned immediately. The model itself is identical to the cold
  /// solve's, so the reported optimum never changes — only the nodes
  /// explored. A hint invalidated by the new demands (capacity, pinned
  /// switches) is rejected by the solver and the solve degrades to cold.
  ConsolidationResult consolidate_incremental(
      const Topology& topo, const FlowSet& flows,
      const ConsolidationConfig& config,
      const WarmStartHint* warm) const override;

  const char* name() const override { return "milp"; }

  /// Convenience form bound to the constructor topology.
  ConsolidationResult consolidate(const FlowSet& flows,
                                  const ConsolidationConfig& config) const;

  /// Branch-and-bound nodes used by the last consolidate() call.
  long long last_node_count() const { return last_nodes_.load(); }

 private:
  ConsolidationResult solve_impl(const Topology& topo, const FlowSet& flows,
                                 const ConsolidationConfig& config,
                                 const WarmStartHint* warm) const;

  const Topology* topo_;
  MilpConsolidatorOptions options_;
  mutable std::atomic<long long> last_nodes_{0};
};

}  // namespace eprons
