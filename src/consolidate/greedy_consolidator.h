// Greedy bin-packing consolidation heuristic (paper section IV-B).
//
// "In real deployment, we design the heuristic algorithm (similar to the
// greedy bin-packing algorithm in [2]) to accelerate the latency-aware
// traffic consolidation." ElasticTree's greedy bin-packer routes each flow
// on the leftmost subtree with sufficient residual capacity; ours
// additionally (a) inflates latency-sensitive demands by K before packing,
// and (b) prefers paths that activate the fewest *new* switches, breaking
// ties to the leftmost path — which is exactly what consolidation means.
//
// Flows are packed largest-scaled-demand first (classic first-fit
// decreasing), so elephants claim the left spine and mice fill gaps.
#pragma once

#include <atomic>

#include "consolidate/consolidation.h"

namespace eprons {

enum class PlacementObjective {
  /// Consolidate: fewest newly-activated switches (power minimization).
  MinimizeSwitches,
  /// Spread: lowest resulting bottleneck utilization (ECMP-like balancing
  /// across a pinned subnet, used when an aggregation policy fixes which
  /// switches are on and power no longer depends on routing).
  BalanceLoad,
};

struct GreedyConsolidatorOptions {
  /// When true and a flow fits on no path, fall back to the path with the
  /// most residual capacity and report the result infeasible=false but
  /// keep `overloaded=true` diagnostics; when false, give up immediately.
  bool best_effort_overflow = true;
  PlacementObjective objective = PlacementObjective::MinimizeSwitches;
};

class GreedyConsolidator : public Consolidator {
 public:
  explicit GreedyConsolidator(const Topology* topo = nullptr,
                              GreedyConsolidatorOptions options = {});

  GreedyConsolidator(const GreedyConsolidator& other)
      : topo_(other.topo_),
        options_(other.options_),
        last_overloaded_(other.last_overloaded_.load()) {}
  GreedyConsolidator& operator=(const GreedyConsolidator& other) {
    topo_ = other.topo_;
    options_ = other.options_;
    last_overloaded_.store(other.last_overloaded_.load());
    return *this;
  }

  /// Consolidator interface; thread-safe for concurrent calls.
  ConsolidationResult consolidate(
      const Topology& topo, const FlowSet& flows,
      const ConsolidationConfig& config) const override;

  /// Incremental pack: keeps the previous routing for flows the demand
  /// delta left clean (as long as the inherited path is still legal and
  /// fits at the new scaled demand) and re-packs only dirty flows.
  /// Falls back to a full cold re-pack when the incremental plan would
  /// overflow or activate more than `warm->max_extra_switches` switches
  /// beyond the previous plan (the regression bound), logging the
  /// fallback and counting it in `consolidate.warm_fallbacks`.
  ConsolidationResult consolidate_incremental(
      const Topology& topo, const FlowSet& flows,
      const ConsolidationConfig& config,
      const WarmStartHint* warm) const override;

  const char* name() const override { return "greedy"; }

  /// Convenience form bound to the constructor topology.
  ConsolidationResult consolidate(const FlowSet& flows,
                                  const ConsolidationConfig& config) const;

  /// True if the last consolidate() had to overflow some link beyond the
  /// safety margin (only possible with best_effort_overflow).
  bool last_overloaded() const { return last_overloaded_.load(); }

 private:
  const Topology* topo_;
  GreedyConsolidatorOptions options_;
  mutable std::atomic<bool> last_overloaded_{false};
};

}  // namespace eprons
