#include "consolidate/transition.h"

#include <algorithm>

#include "obs/telemetry.h"
#include "util/log.h"

namespace eprons {

TransitionStats plan_transition(const Graph& graph,
                                const std::vector<bool>& previous_on,
                                const std::vector<bool>& next_on,
                                const TransitionConfig& config) {
  TransitionStats stats;
  for (const Node& n : graph.nodes()) {
    if (!is_switch_type(n.type)) continue;
    const auto i = static_cast<std::size_t>(n.id);
    const bool was = i < previous_on.size() && previous_on[i];
    const bool want = i < next_on.size() && next_on[i];
    if (!was && want) ++stats.switches_to_boot;
    if (was && !want) ++stats.switches_to_off;
  }
  if (stats.switches_to_boot > 0) {
    stats.unavailable_window = config.power_on_time;
    // During the boot window the old subnet keeps carrying traffic while
    // the booting switches already draw power: the overhead is the boot
    // draw of the new switches, plus the switches scheduled to turn off
    // that must stay on until the handover completes.
    stats.overhead_energy =
        config.power_on_time *
        (stats.switches_to_boot * config.boot_power +
         stats.switches_to_off * config.switch_power);
  }
  return stats;
}

TransitionController::TransitionController(const Graph* graph,
                                           TransitionConfig config)
    : graph_(graph),
      config_(config),
      actual_on_(graph->num_nodes(), false),
      unused_epochs_(graph->num_nodes(), 0) {}

const std::vector<bool>& TransitionController::step(
    const std::vector<bool>& wanted_on, const std::vector<bool>* failed) {
  static obs::Counter& boot_count =
      obs::metrics().counter("transition.boots");
  static obs::Counter& linger_count =
      obs::metrics().counter("transition.linger_switch_epochs");
  ++epochs_;
  std::vector<bool> next = actual_on_;
  int boots = 0;
  int lingering = 0;
  for (const Node& n : graph_->nodes()) {
    const auto i = static_cast<std::size_t>(n.id);
    if (!is_switch_type(n.type)) {
      next[i] = i < wanted_on.size() && wanted_on[i];
      continue;
    }
    if (failed && i < failed->size() && (*failed)[i]) {
      next[i] = false;
      unused_epochs_[i] = 0;  // linger clock restarts once repaired
      continue;
    }
    const bool want = i < wanted_on.size() && wanted_on[i];
    if (want) {
      if (!actual_on_[i] && !first_epoch_) ++boots;
      next[i] = true;
      unused_epochs_[i] = 0;
    } else if (actual_on_[i]) {
      // Linger: stay on as a backup path for `linger_epochs` epochs.
      if (++unused_epochs_[i] > config_.linger_epochs) {
        next[i] = false;
        EPRONS_LOG(Debug) << "transition: epoch " << epochs_
                          << " powering off " << n.name << " after "
                          << config_.linger_epochs << " idle linger epochs";
      } else {
        lingering_energy_ += config_.epoch_length * config_.switch_power;
        ++lingering;
        EPRONS_LOG(Debug) << "transition: epoch " << epochs_ << " keeping "
                          << n.name << " lingering as a backup path ("
                          << unused_epochs_[i] << "/"
                          << config_.linger_epochs << " idle epochs)";
      }
    }
  }
  if (boots > 0) {
    boot_energy_ += config_.power_on_time * boots * config_.boot_power;
    total_boots_ += boots;
    boot_count.add(static_cast<std::uint64_t>(boots));
    EPRONS_LOG(Debug) << "transition: epoch " << epochs_ << " booting "
                      << boots << " switches ("
                      << config_.power_on_time * boots * config_.boot_power
                      << " J boot energy)";
  }
  if (lingering > 0) {
    linger_count.add(static_cast<std::uint64_t>(lingering));
  }
  first_epoch_ = false;
  actual_on_ = std::move(next);
  return actual_on_;
}

const std::vector<bool>& TransitionController::apply_emergency(
    const std::vector<bool>& wanted_on, const std::vector<bool>* failed,
    int* boots_out) {
  static obs::Counter& boot_count =
      obs::metrics().counter("transition.boots");
  int boots = 0;
  for (const Node& n : graph_->nodes()) {
    if (!is_switch_type(n.type)) continue;
    const auto i = static_cast<std::size_t>(n.id);
    if (failed && i < failed->size() && (*failed)[i]) {
      actual_on_[i] = false;
      unused_epochs_[i] = 0;
      continue;
    }
    const bool want = i < wanted_on.size() && wanted_on[i];
    if (want && !actual_on_[i]) {
      ++boots;
      actual_on_[i] = true;
      unused_epochs_[i] = 0;
      EPRONS_LOG(Debug) << "transition: emergency boot of " << n.name;
    }
    // Switches that are on but not wanted keep their state: the regular
    // epoch step owns the linger/power-off policy.
  }
  if (boots > 0) {
    boot_energy_ += config_.power_on_time * boots * config_.boot_power;
    total_boots_ += boots;
    boot_count.add(static_cast<std::uint64_t>(boots));
  }
  if (boots_out) *boots_out = boots;
  return actual_on_;
}

}  // namespace eprons
