#include "consolidate/hierarchical_consolidator.h"

#include <utility>
#include <vector>

#include "obs/telemetry.h"
#include "util/log.h"

namespace eprons {

namespace {

/// Bucket key per flow: the pod index for intra-pod flows, kInterBucket
/// for flows whose endpoints live in different pods.
constexpr int kInterBucket = -1;

int bucket_of(const FatTree& ft, const Flow& flow) {
  const int src_pod = ft.pod_of_host(flow.src_host);
  const int dst_pod = ft.pod_of_host(flow.dst_host);
  return src_pod == dst_pod ? src_pod : kInterBucket;
}

struct Partition {
  /// Original flow indices per pod, in flow-set order.
  std::vector<std::vector<std::size_t>> pod;
  /// Original indices of the inter-pod flows, in flow-set order.
  std::vector<std::size_t> inter;
};

Partition partition_flows(const FatTree& ft, const FlowSet& flows) {
  Partition part;
  part.pod.resize(static_cast<std::size_t>(ft.num_pods()));
  for (std::size_t i = 0; i < flows.size(); ++i) {
    const int bucket = bucket_of(ft, flows[i]);
    if (bucket == kInterBucket) {
      part.inter.push_back(i);
    } else {
      part.pod[static_cast<std::size_t>(bucket)].push_back(i);
    }
  }
  return part;
}

FlowSet subset(const FlowSet& flows, const std::vector<std::size_t>& indices) {
  FlowSet sub;
  for (std::size_t i : indices) {
    const Flow& f = flows[i];
    sub.add(f.src_host, f.dst_host, f.demand, f.cls);
  }
  return sub;
}

/// a := a AND b (b empty means "everything allowed" and leaves a alone).
void intersect_mask(std::vector<bool>& a, const std::vector<bool>& b) {
  if (b.empty()) return;
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = a[i] && i < b.size() && b[i];
  }
}

void merge_mask(std::vector<bool>& into, const std::vector<bool>& from) {
  if (into.size() < from.size()) into.resize(from.size(), false);
  for (std::size_t i = 0; i < from.size(); ++i) {
    if (from[i]) into[i] = true;
  }
}

/// Charges `flow` routed on `path` into the per-directed-arc committed
/// load, mirroring the packer's arc_need exactly: host-adjacent hops at
/// the unscaled demand, fabric hops at the K-scaled demand.
void charge_path(const Graph& graph, const Flow& flow, const Path& path,
                 double scale_factor_k, std::vector<Bandwidth>& committed) {
  for (std::size_t h = 0; h + 1 < path.size(); ++h) {
    const LinkId lid = graph.find_link(path[h], path[h + 1]);
    const bool forward = graph.link(lid).a == path[h];
    const bool host_adjacent =
        !graph.is_switch(path[h]) || !graph.is_switch(path[h + 1]);
    committed[static_cast<std::size_t>(lid) * 2 + (forward ? 0u : 1u)] +=
        host_adjacent ? flow.demand : flow.scaled_demand(scale_factor_k);
  }
}

/// The slice of a previous placement covering one bucket's flows, shaped
/// so WarmStartHint::usable() holds: flow_paths index-aligned with the
/// bucket's sub flow set. active_switches carries the bucket-local count
/// (the inner consolidator's advisory regression bound).
struct BucketHint {
  FlowSet previous_flows;
  ConsolidationResult previous;
  WarmStartHint hint;
};

void build_bucket_hint(const WarmStartHint& warm,
                       const std::vector<std::size_t>& indices,
                       int active_switches, BucketHint& out) {
  out.previous_flows = subset(*warm.previous_flows, indices);
  out.previous.feasible = warm.previous->feasible;
  out.previous.flow_paths.reserve(indices.size());
  for (std::size_t i : indices) {
    out.previous.flow_paths.push_back(warm.previous->flow_paths[i]);
  }
  out.previous.active_switches = active_switches;
  out.hint.previous_flows = &out.previous_flows;
  out.hint.previous = &out.previous;
  out.hint.max_extra_switches = warm.max_extra_switches;
}

int masked_active_switches(const Graph& graph, const std::vector<bool>& on,
                           const std::vector<bool>& mask) {
  int count = 0;
  for (const Node& n : graph.nodes()) {
    const auto i = static_cast<std::size_t>(n.id);
    if (is_switch_type(n.type) && i < on.size() && on[i] &&
        (mask.empty() || (i < mask.size() && mask[i]))) {
      ++count;
    }
  }
  return count;
}

}  // namespace

HierarchicalConsolidator::HierarchicalConsolidator(
    const Consolidator* inner, HierarchicalConsolidatorOptions options)
    : inner_(inner), options_(options) {
  if (options_.threads > 1) {
    pool_ = std::make_unique<ThreadPool>(options_.threads);
  }
}

ConsolidationResult HierarchicalConsolidator::consolidate(
    const Topology& topo, const FlowSet& flows,
    const ConsolidationConfig& config) const {
  const FatTree* ft = dynamic_cast<const FatTree*>(&topo);
  if (ft == nullptr) {
    // No pod structure to exploit; solve flat.
    return inner().consolidate(topo, flows, config);
  }
  return solve(*ft, flows, config, nullptr);
}

ConsolidationResult HierarchicalConsolidator::consolidate_incremental(
    const Topology& topo, const FlowSet& flows,
    const ConsolidationConfig& config, const WarmStartHint* warm) const {
  const FatTree* ft = dynamic_cast<const FatTree*>(&topo);
  if (ft == nullptr) {
    return inner().consolidate_incremental(topo, flows, config, warm);
  }
  if (warm == nullptr || !warm->usable() || flows.empty()) {
    return solve(*ft, flows, config, nullptr);
  }
  return solve(*ft, flows, config, warm);
}

ConsolidationResult HierarchicalConsolidator::solve(
    const FatTree& ft, const FlowSet& flows,
    const ConsolidationConfig& config, const WarmStartHint* warm) const {
  const obs::ScopedSpan span(obs::tracer(), "consolidate_hierarchical",
                             "planner", "k", config.scale_factor_k);
  static obs::Counter& calls =
      obs::metrics().counter("consolidate.hierarchical_calls");
  static obs::Counter& pod_solves =
      obs::metrics().counter("consolidate.hierarchical_pod_solves");
  static obs::Counter& warm_partition_misses =
      obs::metrics().counter("consolidate.hierarchical_warm_partition_miss");
  calls.add();

  const Graph& graph = ft.graph();
  const std::size_t pods = static_cast<std::size_t>(ft.num_pods());
  const Partition part = partition_flows(ft, flows);

  // Warm sub-hints only line up when every flow index kept its bucket.
  bool warm_ok =
      warm != nullptr && warm->usable() &&
      warm->previous_flows->size() == flows.size();
  if (warm_ok) {
    for (std::size_t i = 0; i < flows.size(); ++i) {
      if (bucket_of(ft, (*warm->previous_flows)[i]) !=
          bucket_of(ft, flows[i])) {
        warm_ok = false;
        warm_partition_misses.add();
        EPRONS_LOG(Debug) << "hierarchical warm-start dropped: flow " << i
                          << " changed pod bucket; cold decomposed solve";
        break;
      }
    }
  }

  // Phase 1+2: per-pod sub-instances. Pods are link-disjoint (intra-pod
  // candidate paths never leave the pod), so the solves are independent;
  // each iteration writes only its own slot and the merge below is serial
  // in pod order — bit-identical results for any thread count.
  std::vector<FlowSet> pod_flows(pods);
  std::vector<ConsolidationConfig> pod_configs(pods);
  std::vector<BucketHint> pod_hints(warm_ok ? pods : 0);
  for (std::size_t p = 0; p < pods; ++p) {
    if (part.pod[p].empty()) continue;
    pod_flows[p] = subset(flows, part.pod[p]);
    ConsolidationConfig sub = config;
    std::vector<bool> allowed = ft.pod_switch_mask(static_cast<int>(p));
    intersect_mask(allowed, config.allowed_switches);
    sub.allowed_switches = std::move(allowed);
    pod_configs[p] = std::move(sub);
    if (warm_ok) {
      build_bucket_hint(
          *warm, part.pod[p],
          masked_active_switches(graph, warm->previous->switch_on,
                                 pod_configs[p].allowed_switches),
          pod_hints[p]);
    }
  }

  std::vector<ConsolidationResult> pod_results(pods);
  parallel_for(pool_.get(), pods, [&](std::size_t p) {
    if (part.pod[p].empty()) return;
    pod_solves.add();
    pod_results[p] =
        warm_ok ? inner().consolidate_incremental(ft, pod_flows[p],
                                                  pod_configs[p],
                                                  &pod_hints[p].hint)
                : inner().consolidate(ft, pod_flows[p], pod_configs[p]);
  });

  // Serial merge in pod order: stitch masks and paths, charge every placed
  // pod path into the committed load the core phase packs around.
  ConsolidationResult result;
  result.switch_on.assign(static_cast<std::size_t>(graph.num_nodes()), false);
  result.link_on.assign(static_cast<std::size_t>(graph.num_links()), false);
  result.flow_paths.assign(flows.size(), {});
  for (const Node& n : graph.nodes()) {
    if (n.type == NodeType::Host) {
      result.switch_on[static_cast<std::size_t>(n.id)] = true;
    }
  }

  std::vector<Bandwidth> committed = config.committed_arc_load;
  committed.resize(static_cast<std::size_t>(graph.num_links()) * 2, 0.0);

  bool feasible = true;
  bool any_warm = false;
  for (std::size_t p = 0; p < pods; ++p) {
    if (part.pod[p].empty()) continue;
    const ConsolidationResult& pr = pod_results[p];
    feasible = feasible && pr.feasible;
    any_warm = any_warm || pr.warm_started;
    merge_mask(result.switch_on, pr.switch_on);
    merge_mask(result.link_on, pr.link_on);
    for (std::size_t j = 0; j < part.pod[p].size(); ++j) {
      const std::size_t orig = part.pod[p][j];
      if (j >= pr.flow_paths.size() || pr.flow_paths[j].size() < 2) continue;
      result.flow_paths[orig] = pr.flow_paths[j];
      charge_path(graph, flows[orig], pr.flow_paths[j],
                  config.scale_factor_k, committed);
    }
  }

  // Phase 3: the core-level instance over the inter-pod flows, packing
  // into the headroom the pod phases left and preferring switches they
  // already lit (zero marginal power).
  FlowSet inter_flows = subset(flows, part.inter);
  ConsolidationConfig core_config = config;
  core_config.committed_arc_load = std::move(committed);
  core_config.preactivated_switches = result.switch_on;
  BucketHint core_hint;
  if (warm_ok) {
    build_bucket_hint(*warm, part.inter, warm->previous->active_switches,
                      core_hint);
  }
  const ConsolidationResult core =
      warm_ok ? inner().consolidate_incremental(ft, inter_flows, core_config,
                                                &core_hint.hint)
              : inner().consolidate(ft, inter_flows, core_config);
  feasible = feasible && core.feasible;
  any_warm = any_warm || core.warm_started;
  merge_mask(result.switch_on, core.switch_on);
  merge_mask(result.link_on, core.link_on);
  for (std::size_t j = 0; j < part.inter.size(); ++j) {
    if (j >= core.flow_paths.size() || core.flow_paths[j].size() < 2) continue;
    result.flow_paths[part.inter[j]] = core.flow_paths[j];
  }

  result.feasible = feasible;
  result.warm_started = warm_ok && any_warm;
  // finalize_result re-derives the per-layer counts and defines
  // network_power as their fixed-order sum — the attribution exact-sum
  // invariant holds for the stitched plan exactly as for a flat one.
  finalize_result(graph, config, result);
  return result;
}

}  // namespace eprons
