// Paper-literal arc (flow-conservation) LP formulation of eqs. (2)-(8).
//
// This builds exactly the model of section IV-B: per-flow directed-arc
// variables f_i(u,v) with conservation (eq. 6), arc capacity gated by link
// ON variables (eq. 4), link-switch coupling (eq. 7), and the power
// objective (eq. 2). Solved as a *continuous relaxation* (X, Y in [0,1],
// flows splittable), it yields a lower bound on achievable network power —
// used in tests to sandwich the MILP/heuristic and in
// bench_micro_lp_vs_heuristic to reproduce the paper's "exact is too slow,
// heuristic is fast and near-optimal" observation.
//
// Antisymmetry (eq. 5) is handled by modeling each direction as its own
// nonnegative variable; the unsplittable constraint (eq. 9) is what the
// MILP adds back via path binaries.
#pragma once

#include "consolidate/consolidation.h"
#include "lp/simplex.h"

namespace eprons {

/// Outcome of solving the continuous arc-LP relaxation.
struct ArcLpResult {
  /// Simplex outcome; the bound below is meaningful only on Optimal.
  lp::SolveStatus status = lp::SolveStatus::Infeasible;
  /// Lower bound on network power (switch + link objective terms only).
  Power network_power_bound = 0.0;
  /// Relaxed activation levels, for diagnostics.
  std::vector<double> switch_activation;  // NodeId-indexed, 0..1
  /// Model size, for the paper's "exact is too slow" scaling story.
  int num_variables = 0;
  int num_rows = 0;
};

/// Builds and solves the relaxed eqs. (2)-(8) model on a fixed topology.
class ArcLpRelaxation {
 public:
  /// `topo` must outlive the relaxation (not owned).
  explicit ArcLpRelaxation(const Topology* topo);

  /// Solves the relaxation for `flows` at config's scale factor K;
  /// returns the network-power lower bound and per-switch activations.
  ArcLpResult solve(const FlowSet& flows,
                    const ConsolidationConfig& config) const;

  /// Builds the model without solving (size diagnostics / benches).
  lp::Model build_model(const FlowSet& flows,
                        const ConsolidationConfig& config) const;

 private:
  const Topology* topo_;
};

}  // namespace eprons
