#include "consolidate/arc_lp.h"

#include <vector>

#include "util/strings.h"

namespace eprons {

ArcLpRelaxation::ArcLpRelaxation(const Topology* topo) : topo_(topo) {}

lp::Model ArcLpRelaxation::build_model(const FlowSet& flows,
                                       const ConsolidationConfig& config) const {
  const Graph& graph = topo_->graph();
  lp::Model model(lp::Sense::Minimize);

  // Relaxed Y_u (switches) and X_l (links).
  std::vector<int> y_var(graph.num_nodes(), -1);
  for (const Node& n : graph.nodes()) {
    if (is_switch_type(n.type)) {
      y_var[static_cast<std::size_t>(n.id)] = model.add_variable(
          strformat("Y_%s", n.name.c_str()), 0.0, 1.0, config.switch_power);
    }
  }
  std::vector<int> x_var(graph.num_links(), -1);
  for (const Link& l : graph.links()) {
    x_var[static_cast<std::size_t>(l.id)] = model.add_variable(
        strformat("X_%d", l.id), 0.0, 1.0, config.link_power);
    for (NodeId end : {l.a, l.b}) {
      if (graph.is_switch(end)) {
        // Eq. (7): X_l <= Y_end.
        model.add_row(strformat("x%d_le_y", l.id), lp::RowType::LessEqual, 0.0,
                      {{x_var[static_cast<std::size_t>(l.id)], 1.0},
                       {y_var[static_cast<std::size_t>(end)], -1.0}});
      }
    }
  }

  // f_i(u,v): one nonnegative variable per flow per directed arc.
  // Index: flow * (2 * num_links) + link * 2 + (forward ? 0 : 1).
  const std::size_t arcs = graph.num_links() * 2;
  std::vector<int> f_var(flows.size() * arcs, -1);
  for (std::size_t i = 0; i < flows.size(); ++i) {
    for (const Link& l : graph.links()) {
      for (int dir = 0; dir < 2; ++dir) {
        f_var[i * arcs + static_cast<std::size_t>(l.id) * 2 +
              static_cast<std::size_t>(dir)] =
            model.add_variable(strformat("f%zu_l%d_d%d", i, l.id, dir), 0.0,
                               lp::kInfinity, 0.0);
      }
    }
  }
  auto f_of = [&](std::size_t flow, LinkId link, bool forward) {
    return f_var[flow * arcs + static_cast<std::size_t>(link) * 2 +
                 (forward ? 0u : 1u)];
  };

  // Eq. (6): conservation with demand K * d_i at source/sink.
  for (std::size_t i = 0; i < flows.size(); ++i) {
    const Flow& flow = flows[i];
    const double demand = flow.scaled_demand(config.scale_factor_k);
    const NodeId src = topo_->host(flow.src_host);
    const NodeId dst = topo_->host(flow.dst_host);
    for (const Node& n : graph.nodes()) {
      double rhs = 0.0;
      if (n.id == src) rhs = demand;
      if (n.id == dst) rhs = -demand;
      std::vector<lp::RowEntry> entries;
      for (LinkId lid : graph.links_of(n.id)) {
        const bool forward = graph.link(lid).a == n.id;  // n -> other
        entries.push_back({f_of(i, lid, forward), 1.0});     // outgoing
        entries.push_back({f_of(i, lid, !forward), -1.0});   // incoming
      }
      model.add_row(strformat("cons_f%zu_n%d", i, n.id), lp::RowType::Equal,
                    rhs, std::move(entries));
    }
  }

  // Eq. (4): per-arc capacity gated by X.
  for (const Link& l : graph.links()) {
    const Bandwidth usable = l.capacity - config.safety_margin;
    for (int dir = 0; dir < 2; ++dir) {
      std::vector<lp::RowEntry> entries;
      for (std::size_t i = 0; i < flows.size(); ++i) {
        entries.push_back({f_of(i, l.id, dir == 0), 1.0});
      }
      entries.push_back({x_var[static_cast<std::size_t>(l.id)], -usable});
      model.add_row(strformat("cap_l%d_d%d", l.id, dir),
                    lp::RowType::LessEqual, 0.0, std::move(entries));
    }
  }

  return model;
}

ArcLpResult ArcLpRelaxation::solve(const FlowSet& flows,
                                   const ConsolidationConfig& config) const {
  const lp::Model model = build_model(flows, config);
  ArcLpResult out;
  out.num_variables = model.num_variables();
  out.num_rows = model.num_rows();

  const lp::Solution sol = lp::SimplexSolver().solve(model);
  out.status = sol.status;
  if (sol.status != lp::SolveStatus::Optimal) return out;

  out.network_power_bound = sol.objective;
  const Graph& graph = topo_->graph();
  out.switch_activation.assign(graph.num_nodes(), 0.0);
  // Y variables were added first, in node order over switches.
  int idx = 0;
  for (const Node& n : graph.nodes()) {
    if (is_switch_type(n.type)) {
      out.switch_activation[static_cast<std::size_t>(n.id)] =
          sol.x[static_cast<std::size_t>(idx)];
      ++idx;
    }
  }
  return out;
}

}  // namespace eprons
