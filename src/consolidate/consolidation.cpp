#include "consolidate/consolidation.h"

#include <cstring>

namespace eprons {

namespace {

inline std::uint64_t fnv1a(std::uint64_t hash, std::uint64_t value) {
  for (int byte = 0; byte < 8; ++byte) {
    hash ^= (value >> (byte * 8)) & 0xffu;
    hash *= 1099511628211ull;
  }
  return hash;
}

inline std::uint64_t fnv1a(std::uint64_t hash, double value) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  return fnv1a(hash, bits);
}

}  // namespace

LinkUtilization ConsolidationResult::offered_load(const Graph& graph,
                                                  const FlowSet& flows) const {
  LinkUtilization load(&graph);
  for (std::size_t i = 0; i < flows.size(); ++i) {
    if (i >= flow_paths.size() || flow_paths[i].size() < 2) continue;
    load.add_path_load(flow_paths[i], flows[i].demand,
                       flows[i].cls == FlowClass::LatencyTolerant);
  }
  return load;
}

void finalize_result(const Graph& graph, const ConsolidationConfig& config,
                     ConsolidationResult& result) {
  result.active_switches = 0;
  result.active_links = 0;
  result.edge_switches = 0;
  result.agg_switches = 0;
  result.core_switches = 0;
  for (const Node& n : graph.nodes()) {
    if (!is_switch_type(n.type) ||
        !result.switch_on[static_cast<std::size_t>(n.id)]) {
      continue;
    }
    ++result.active_switches;
    switch (n.type) {
      case NodeType::EdgeSwitch: ++result.edge_switches; break;
      case NodeType::AggSwitch: ++result.agg_switches; break;
      case NodeType::CoreSwitch: ++result.core_switches; break;
      case NodeType::Host: break;
    }
  }
  for (const Link& l : graph.links()) {
    if (result.link_on[static_cast<std::size_t>(l.id)]) ++result.active_links;
  }
  // The headline network power is *defined* as the fixed-order sum of the
  // per-layer components so the attribution ledger sums bit-identically to
  // the total for any thread count (see obs/attribution.h).
  result.edge_power_w = result.edge_switches * config.switch_power;
  result.agg_power_w = result.agg_switches * config.switch_power;
  result.core_power_w = result.core_switches * config.switch_power;
  result.link_power_w = result.active_links * config.link_power;
  result.network_power =
      ((result.edge_power_w + result.agg_power_w) + result.core_power_w) +
      result.link_power_w;
}

std::uint64_t placement_fingerprint(const ConsolidationResult& result) {
  std::uint64_t hash = 14695981039346656037ull;
  hash = fnv1a(hash, static_cast<std::uint64_t>(result.feasible ? 1 : 0));
  hash = fnv1a(hash, static_cast<std::uint64_t>(result.switch_on.size()));
  for (std::size_t i = 0; i < result.switch_on.size(); ++i) {
    if (result.switch_on[i]) hash = fnv1a(hash, static_cast<std::uint64_t>(i));
  }
  hash = fnv1a(hash, static_cast<std::uint64_t>(result.link_on.size()));
  for (std::size_t i = 0; i < result.link_on.size(); ++i) {
    if (result.link_on[i]) hash = fnv1a(hash, static_cast<std::uint64_t>(i));
  }
  hash = fnv1a(hash, static_cast<std::uint64_t>(result.flow_paths.size()));
  for (const Path& path : result.flow_paths) {
    hash = fnv1a(hash, static_cast<std::uint64_t>(path.size()));
    for (NodeId n : path) hash = fnv1a(hash, static_cast<std::uint64_t>(n));
  }
  hash = fnv1a(hash, result.network_power);
  return hash;
}

void activate_path(const Graph& graph, const Path& path,
                   ConsolidationResult& result) {
  for (NodeId n : path) {
    result.switch_on[static_cast<std::size_t>(n)] = true;
  }
  for (LinkId l : graph.path_links(path)) {
    result.link_on[static_cast<std::size_t>(l)] = true;
  }
}

}  // namespace eprons
