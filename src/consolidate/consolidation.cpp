#include "consolidate/consolidation.h"

namespace eprons {

LinkUtilization ConsolidationResult::offered_load(const Graph& graph,
                                                  const FlowSet& flows) const {
  LinkUtilization load(&graph);
  for (std::size_t i = 0; i < flows.size(); ++i) {
    if (i >= flow_paths.size() || flow_paths[i].size() < 2) continue;
    load.add_path_load(flow_paths[i], flows[i].demand,
                       flows[i].cls == FlowClass::LatencyTolerant);
  }
  return load;
}

void finalize_result(const Graph& graph, const ConsolidationConfig& config,
                     ConsolidationResult& result) {
  result.active_switches = 0;
  result.active_links = 0;
  for (const Node& n : graph.nodes()) {
    if (is_switch_type(n.type) &&
        result.switch_on[static_cast<std::size_t>(n.id)]) {
      ++result.active_switches;
    }
  }
  for (const Link& l : graph.links()) {
    if (result.link_on[static_cast<std::size_t>(l.id)]) ++result.active_links;
  }
  result.network_power = result.active_switches * config.switch_power +
                         result.active_links * config.link_power;
}

void activate_path(const Graph& graph, const Path& path,
                   ConsolidationResult& result) {
  for (NodeId n : path) {
    result.switch_on[static_cast<std::size_t>(n)] = true;
  }
  for (LinkId l : graph.path_links(path)) {
    result.link_on[static_cast<std::size_t>(l)] = true;
  }
}

}  // namespace eprons
