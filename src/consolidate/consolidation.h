// Shared types for latency-aware traffic consolidation (paper section II/IV).
//
// A consolidator takes (topology, flow set, scale factor K, safety margin)
// and returns which switches/links stay on and which path each flow takes.
// Two implementations exist:
//   * MilpConsolidator  — exact, solves the paper's optimization model
//     (eqs. (2)-(9)) with path-choice binaries via branch-and-bound.
//   * GreedyConsolidator — the paper's production fallback ("heuristic
//     algorithm similar to the greedy bin-packing algorithm in [2]").
#pragma once

#include <vector>

#include "flow/flow.h"
#include "net/link_utilization.h"
#include "power/switch_power.h"
#include "topo/fattree.h"
#include "topo/topology.h"
#include "util/types.h"

namespace eprons {

struct ConsolidationConfig {
  /// Scale factor K (paper section II): latency-sensitive flow demands are
  /// inflated to K * demand before placement, reserving headroom.
  double scale_factor_k = 1.0;
  /// Reserved capacity per link, Mbps (Fig. 2 uses 50 Mbps on 1 Gbps links,
  /// limiting usable bandwidth to 950 Mbps).
  Bandwidth safety_margin = 50.0;
  /// Per-switch active power for the objective, W.
  Power switch_power = 36.0;
  /// Per-link active power for the objective, W.
  Power link_power = 0.0;
  /// When non-empty (NodeId-indexed), flows may only be routed through
  /// switches marked true — used to consolidate *within* a fixed
  /// aggregation-policy subnet (Fig. 9/10/13). Empty = whole topology.
  std::vector<bool> allowed_switches;
  /// When non-empty (LinkId-indexed), links marked true carry no traffic —
  /// the fault overlay's down links during an emergency re-plan. Empty =
  /// every link usable.
  std::vector<bool> blocked_links;
};

struct ConsolidationResult {
  bool feasible = false;
  /// NodeId-indexed; hosts are always true.
  std::vector<bool> switch_on;
  /// LinkId-indexed.
  std::vector<bool> link_on;
  /// Per flow (FlowSet order), the assigned node path. Empty if infeasible.
  std::vector<Path> flow_paths;
  int active_switches = 0;
  int active_links = 0;
  /// Network part of the objective: switches + links, W.
  Power network_power = 0.0;

  /// Builds per-link offered load from the *unscaled* flow demands routed
  /// on the chosen paths (K reserves capacity; actual traffic is 1x).
  LinkUtilization offered_load(const Graph& graph,
                               const FlowSet& flows) const;
};

/// Abstract consolidation strategy, mirroring the `Topology` interface:
/// the joint optimizer, the epoch controller, and the planning tools
/// program against this instead of hard-coding the greedy path, so exact
/// (MILP) and heuristic consolidation are interchangeable per scenario.
///
/// Implementations must be safe to call concurrently from multiple
/// threads on distinct arguments — the joint optimizer consolidates every
/// K candidate in parallel through one shared instance.
class Consolidator {
 public:
  virtual ~Consolidator() = default;

  virtual ConsolidationResult consolidate(
      const Topology& topo, const FlowSet& flows,
      const ConsolidationConfig& config) const = 0;

  /// Stable identifier for tables and logs ("greedy", "milp", ...).
  virtual const char* name() const = 0;
};

/// Fills active counts and network power from the masks.
void finalize_result(const Graph& graph, const ConsolidationConfig& config,
                     ConsolidationResult& result);

/// Marks every switch/link along `path` as on.
void activate_path(const Graph& graph, const Path& path,
                   ConsolidationResult& result);

}  // namespace eprons
