// Shared types for latency-aware traffic consolidation (paper section II/IV).
//
// A consolidator takes (topology, flow set, scale factor K, safety margin)
// and returns which switches/links stay on and which path each flow takes.
// Two implementations exist:
//   * MilpConsolidator  — exact, solves the paper's optimization model
//     (eqs. (2)-(9)) with path-choice binaries via branch-and-bound.
//   * GreedyConsolidator — the paper's production fallback ("heuristic
//     algorithm similar to the greedy bin-packing algorithm in [2]").
#pragma once

#include <cstdint>
#include <vector>

#include "flow/demand_delta.h"
#include "flow/flow.h"
#include "net/link_utilization.h"
#include "power/switch_power.h"
#include "topo/fattree.h"
#include "topo/topology.h"
#include "util/types.h"

namespace eprons {

class PathCatalog;

struct ConsolidationConfig {
  /// Scale factor K (paper section II): latency-sensitive flow demands are
  /// inflated to K * demand before placement, reserving headroom.
  double scale_factor_k = 1.0;
  /// Reserved capacity per link, Mbps (Fig. 2 uses 50 Mbps on 1 Gbps links,
  /// limiting usable bandwidth to 950 Mbps).
  Bandwidth safety_margin = 50.0;
  /// Per-switch active power for the objective, W.
  Power switch_power = 36.0;
  /// Per-link active power for the objective, W.
  Power link_power = 0.0;
  /// When non-empty (NodeId-indexed), flows may only be routed through
  /// switches marked true — used to consolidate *within* a fixed
  /// aggregation-policy subnet (Fig. 9/10/13). Empty = whole topology.
  std::vector<bool> allowed_switches;
  /// When non-empty (LinkId-indexed), links marked true carry no traffic —
  /// the fault overlay's down links during an emergency re-plan. Empty =
  /// every link usable.
  std::vector<bool> blocked_links;
  /// Optional memoized path enumeration (see topo/path_catalog.h), shared
  /// across consolidate() calls on the same topology — the joint optimizer
  /// wires its catalog in here for every K candidate. When set, the
  /// consolidators read annotated candidate paths from the catalog instead
  /// of re-enumerating (and re-resolving links) per call; the candidate
  /// order, and therefore every placement, is identical either way. Not
  /// owned; must be built over the same Topology passed to consolidate().
  const PathCatalog* path_catalog = nullptr;
  /// When non-empty (directed-arc-indexed: slot = LinkId*2 + direction, the
  /// same layout the greedy packer and the MILP capacity rows use), load in
  /// Mbps already committed on each arc by an *earlier* solve phase. The
  /// consolidator subtracts it from the usable capacity before placing its
  /// own flows. This is the composition hook the hierarchical consolidator
  /// uses: pod-phase placements charge the fabric arcs they ride, and the
  /// core phase packs the inter-pod flows into the remaining headroom. The
  /// values must already be K-scaled / host-adjacency-adjusted exactly as
  /// the packer would charge them.
  std::vector<Bandwidth> committed_arc_load;
  /// When non-empty (NodeId-indexed), switches marked true are already
  /// powered by an earlier solve phase: the objective treats them as free
  /// (zero marginal power) and they arrive pre-marked in the returned
  /// switch_on mask. Used by the hierarchical core phase so inter-pod flows
  /// prefer aggregation switches the pod phase already lit.
  std::vector<bool> preactivated_switches;
};

struct ConsolidationResult {
  bool feasible = false;
  /// NodeId-indexed; hosts are always true.
  std::vector<bool> switch_on;
  /// LinkId-indexed.
  std::vector<bool> link_on;
  /// Per flow (FlowSet order), the assigned node path. Empty if infeasible.
  std::vector<Path> flow_paths;
  int active_switches = 0;
  int active_links = 0;
  /// Active switches per fat-tree layer; sums to active_switches.
  int edge_switches = 0;
  int agg_switches = 0;
  int core_switches = 0;
  /// Power attributed per topology layer (`count * switch_power`) plus the
  /// link share (`active_links * link_power`). `network_power` is *defined*
  /// as the fixed-order sum ((edge + agg) + core) + links, so the
  /// attribution ledger's components always sum bit-identically to the
  /// headline total — no post-hoc decomposition, the total flows through
  /// the components.
  Power edge_power_w = 0.0;
  Power agg_power_w = 0.0;
  Power core_power_w = 0.0;
  Power link_power_w = 0.0;
  /// Network part of the objective: ((edge + agg) + core) + links, W.
  Power network_power = 0.0;
  /// True when this result came out of the incremental (warm-started)
  /// path of consolidate_incremental — false for cold packs, including a
  /// warm call that fell back to a full re-pack (see WarmStartHint).
  bool warm_started = false;

  /// Builds per-link offered load from the *unscaled* flow demands routed
  /// on the chosen paths (K reserves capacity; actual traffic is 1x).
  LinkUtilization offered_load(const Graph& graph,
                               const FlowSet& flows) const;
};

/// Warm-start hint for consolidate_incremental: the previous epoch's flow
/// set and the placement chosen for it. Implementations diff the new
/// demands against `previous_flows` (see flow/demand_delta.h) and reuse
/// the previous routing for clean flows, re-packing only the dirty ones.
///
/// The hint is advisory: a consolidator may ignore it (the default falls
/// back to a cold pack), and must fall back to a cold pack whenever the
/// incremental result would regress beyond `max_extra_switches`
/// newly-activated switches over the previous plan — the configurable
/// regression bound that keeps incremental plan quality pinned to the
/// cold planner's.
struct WarmStartHint {
  /// The flow set the previous placement routed. Must be non-null and
  /// index-aligned with `previous->flow_paths` for the hint to apply.
  const FlowSet* previous_flows = nullptr;
  /// The previous epoch's placement (any feasible ConsolidationResult).
  const ConsolidationResult* previous = nullptr;
  /// Regression bound: the incremental plan may activate at most this
  /// many switches beyond the previous plan's count before the
  /// consolidator abandons it for a full cold re-pack.
  int max_extra_switches = 2;

  /// True when the hint carries enough state to warm-start from.
  bool usable() const {
    return previous_flows != nullptr && previous != nullptr &&
           previous->flow_paths.size() == previous_flows->size();
  }
};

/// Abstract consolidation strategy, mirroring the `Topology` interface:
/// the joint optimizer, the epoch controller, and the planning tools
/// program against this instead of hard-coding the greedy path, so exact
/// (MILP) and heuristic consolidation are interchangeable per scenario.
///
/// Implementations must be safe to call concurrently from multiple
/// threads on distinct arguments — the joint optimizer consolidates every
/// K candidate in parallel through one shared instance.
class Consolidator {
 public:
  virtual ~Consolidator() = default;

  virtual ConsolidationResult consolidate(
      const Topology& topo, const FlowSet& flows,
      const ConsolidationConfig& config) const = 0;

  /// Warm-started consolidation: like consolidate(), but may reuse the
  /// previous epoch's routing for flows the demand delta left untouched.
  /// The returned plan must satisfy exactly the same constraints as a
  /// cold pack (safety margin, allowed switches, blocked links); only the
  /// work done — and, within the regression bound, the chosen paths — may
  /// differ. The base implementation ignores the hint.
  virtual ConsolidationResult consolidate_incremental(
      const Topology& topo, const FlowSet& flows,
      const ConsolidationConfig& config, const WarmStartHint* warm) const {
    (void)warm;
    return consolidate(topo, flows, config);
  }

  /// Stable identifier for tables and logs ("greedy", "milp", ...).
  virtual const char* name() const = 0;
};

/// Fills active counts and network power from the masks.
void finalize_result(const Graph& graph, const ConsolidationConfig& config,
                     ConsolidationResult& result);

/// 64-bit FNV-1a digest of a placement: feasibility, both masks, every
/// flow path, and the network power bits. Two results compare equal under
/// the determinism contract iff their fingerprints match, so tests, the
/// ablation bench, and CI diff plans across `--threads` by comparing this
/// one value instead of deep-comparing vectors.
std::uint64_t placement_fingerprint(const ConsolidationResult& result);

/// Marks every switch/link along `path` as on.
void activate_path(const Graph& graph, const Path& path,
                   ConsolidationResult& result);

}  // namespace eprons
