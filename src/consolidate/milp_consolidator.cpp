#include "consolidate/milp_consolidator.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

#include "obs/telemetry.h"
#include "util/strings.h"

namespace eprons {

MilpConsolidator::MilpConsolidator(const Topology* topo,
                                   MilpConsolidatorOptions options)
    : topo_(topo), options_(options) {}

ConsolidationResult MilpConsolidator::consolidate(
    const FlowSet& flows, const ConsolidationConfig& config) const {
  return consolidate(*topo_, flows, config);
}

ConsolidationResult MilpConsolidator::consolidate(
    const Topology& topo, const FlowSet& flows,
    const ConsolidationConfig& config) const {
  const obs::ScopedSpan span(obs::tracer(), "consolidate_milp", "planner",
                             "k", config.scale_factor_k);
  static obs::Counter& calls =
      obs::metrics().counter("consolidate.milp_calls");
  static obs::Counter& nodes =
      obs::metrics().counter("consolidate.milp_nodes");
  calls.add();

  const Graph& graph = topo.graph();
  ConsolidationResult result;
  result.switch_on.assign(graph.num_nodes(), false);
  result.link_on.assign(graph.num_links(), false);
  for (const Node& n : graph.nodes()) {
    if (n.type == NodeType::Host) {
      result.switch_on[static_cast<std::size_t>(n.id)] = true;
    }
  }
  if (flows.empty()) {
    result.feasible = true;
    result.flow_paths.clear();
    finalize_result(graph, config, result);
    return result;
  }

  lp::Model model(lp::Sense::Minimize);

  // Y_u per switch, X_l per link.
  std::vector<int> y_var(graph.num_nodes(), -1);
  for (const Node& n : graph.nodes()) {
    if (is_switch_type(n.type)) {
      const int y = model.add_binary(strformat("Y_%s", n.name.c_str()),
                                     config.switch_power);
      y_var[static_cast<std::size_t>(n.id)] = y;
      // Subnet restriction: pin disallowed switches off.
      if (!config.allowed_switches.empty() &&
          !config.allowed_switches[static_cast<std::size_t>(n.id)]) {
        model.variable(y).upper = 0.0;
      }
    }
  }
  std::vector<int> x_var(graph.num_links(), -1);
  for (const Link& l : graph.links()) {
    x_var[static_cast<std::size_t>(l.id)] =
        model.add_binary(strformat("X_%d", l.id), config.link_power);
    // Fault overlay: pin down links off. Capacity rows (and the z<=x rows
    // for zero-demand flows) then exclude every path crossing them.
    if (!config.blocked_links.empty() &&
        config.blocked_links[static_cast<std::size_t>(l.id)]) {
      model.variable(x_var[static_cast<std::size_t>(l.id)]).upper = 0.0;
    }
    // Eq. (7): a link can only be on if both switch endpoints are on.
    for (NodeId end : {l.a, l.b}) {
      if (graph.is_switch(end)) {
        model.add_row(strformat("link%d_needs_%s", l.id,
                                graph.node(end).name.c_str()),
                      lp::RowType::LessEqual, 0.0,
                      {{x_var[static_cast<std::size_t>(l.id)], 1.0},
                       {y_var[static_cast<std::size_t>(end)], -1.0}});
      }
    }
  }

  // Z_{i,p} per flow path, and per-directed-arc demand accumulation.
  // Directed arc key: (link id, forward?) where forward means a->b.
  std::map<std::pair<LinkId, bool>, std::vector<lp::RowEntry>> arc_demand;
  std::vector<std::vector<int>> z_vars(flows.size());
  std::vector<std::vector<Path>> flow_paths(flows.size());

  // As in the greedy heuristic, K reserves fabric headroom only: arcs
  // touching a host are charged the unscaled demand (no routing choice
  // exists there).
  for (std::size_t i = 0; i < flows.size(); ++i) {
    const Flow& flow = flows[i];
    flow_paths[i] = topo.all_paths(flow.src_host, flow.dst_host);
    const double scaled = flow.scaled_demand(config.scale_factor_k);
    std::vector<lp::RowEntry> choose;
    for (std::size_t p = 0; p < flow_paths[i].size(); ++p) {
      const int z = model.add_binary(
          strformat("Z_f%zu_p%zu", i, p), 0.0);
      z_vars[i].push_back(z);
      choose.push_back({z, 1.0});
      const Path& path = flow_paths[i][p];
      for (std::size_t h = 0; h + 1 < path.size(); ++h) {
        const LinkId lid = graph.find_link(path[h], path[h + 1]);
        const bool forward = graph.link(lid).a == path[h];
        const bool host_adjacent =
            !graph.is_switch(path[h]) || !graph.is_switch(path[h + 1]);
        const double arc_load = host_adjacent ? flow.demand : scaled;
        if (arc_load > 0.0) {
          arc_demand[{lid, forward}].push_back({z, arc_load});
        } else {
          // Zero-demand flows still require their path to be powered on.
          arc_demand[{lid, forward}];  // ensure the arc row exists
          model.add_row(strformat("f%zu_p%zu_on_%d", i, p, lid),
                        lp::RowType::LessEqual, 0.0,
                        {{z, 1.0},
                         {x_var[static_cast<std::size_t>(lid)], -1.0}});
        }
      }
    }
    // Eq. (6)+(9): exactly one path (unsplittable routing).
    model.add_row(strformat("route_f%zu", i), lp::RowType::Equal, 1.0,
                  std::move(choose));
  }

  // Eq. (4): per-directed-arc capacity gated by the link's X.
  for (auto& [arc, entries] : arc_demand) {
    if (entries.empty()) continue;
    const Link& l = graph.link(arc.first);
    const Bandwidth usable = l.capacity - config.safety_margin;
    std::vector<lp::RowEntry> row = entries;
    row.push_back({x_var[static_cast<std::size_t>(arc.first)], -usable});
    model.add_row(strformat("cap_l%d_%c", arc.first, arc.second ? 'f' : 'r'),
                  lp::RowType::LessEqual, 0.0, std::move(row));
  }

  lp::MilpSolver solver(options_.milp);
  const lp::Solution sol = solver.solve(model);
  last_nodes_.store(solver.last_node_count(), std::memory_order_relaxed);
  nodes.add(static_cast<std::uint64_t>(
      std::max<long long>(0, solver.last_node_count())));
  if (!sol.ok()) {
    result.feasible = false;
    return result;
  }

  result.feasible = true;
  result.flow_paths.resize(flows.size());
  for (std::size_t i = 0; i < flows.size(); ++i) {
    for (std::size_t p = 0; p < z_vars[i].size(); ++p) {
      if (sol.x[static_cast<std::size_t>(z_vars[i][p])] > 0.5) {
        result.flow_paths[i] = flow_paths[i][p];
        break;
      }
    }
  }
  // Derive masks from the chosen paths (not raw X/Y, which the solver could
  // leave on without traffic in degenerate zero-cost cases).
  for (const Path& path : result.flow_paths) {
    activate_path(graph, path, result);
  }
  finalize_result(graph, config, result);
  return result;
}

}  // namespace eprons
