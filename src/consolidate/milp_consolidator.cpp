#include "consolidate/milp_consolidator.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

#include "obs/telemetry.h"
#include "topo/path_catalog.h"
#include "util/log.h"
#include "util/strings.h"

namespace eprons {

namespace {

// The path-formulation MILP plus the variable maps needed to seed or
// extract a solution. Built identically by the cold and warm paths so a
// warm incumbent lines up with the model's variable order.
struct PathMilp {
  lp::Model model{lp::Sense::Minimize};
  std::vector<int> y_var;                  // per NodeId (-1 for hosts)
  std::vector<int> x_var;                  // per LinkId
  std::vector<std::vector<int>> z_vars;    // per flow, per candidate path
  std::vector<std::vector<Path>> flow_paths;
};

PathMilp build_path_milp(const Topology& topo, const FlowSet& flows,
                         const ConsolidationConfig& config) {
  const Graph& graph = topo.graph();
  PathMilp milp;
  lp::Model& model = milp.model;

  // Y_u per switch, X_l per link.
  milp.y_var.assign(graph.num_nodes(), -1);
  for (const Node& n : graph.nodes()) {
    if (is_switch_type(n.type)) {
      // Switches an earlier solve phase already powered are free here — the
      // hierarchical core phase should prefer pod-lit aggregation switches
      // over waking new ones.
      const std::size_t ni = static_cast<std::size_t>(n.id);
      const bool preactivated = ni < config.preactivated_switches.size() &&
                                config.preactivated_switches[ni];
      const int y = model.add_binary(strformat("Y_%s", n.name.c_str()),
                                     preactivated ? 0.0 : config.switch_power);
      milp.y_var[static_cast<std::size_t>(n.id)] = y;
      // Subnet restriction: pin disallowed switches off.
      if (!config.allowed_switches.empty() &&
          !config.allowed_switches[static_cast<std::size_t>(n.id)]) {
        model.variable(y).upper = 0.0;
      }
    }
  }
  milp.x_var.assign(graph.num_links(), -1);
  for (const Link& l : graph.links()) {
    milp.x_var[static_cast<std::size_t>(l.id)] =
        model.add_binary(strformat("X_%d", l.id), config.link_power);
    // Fault overlay: pin down links off. Capacity rows (and the z<=x rows
    // for zero-demand flows) then exclude every path crossing them.
    if (!config.blocked_links.empty() &&
        config.blocked_links[static_cast<std::size_t>(l.id)]) {
      model.variable(milp.x_var[static_cast<std::size_t>(l.id)]).upper = 0.0;
    }
    // Eq. (7): a link can only be on if both switch endpoints are on.
    for (NodeId end : {l.a, l.b}) {
      if (graph.is_switch(end)) {
        model.add_row(strformat("link%d_needs_%s", l.id,
                                graph.node(end).name.c_str()),
                      lp::RowType::LessEqual, 0.0,
                      {{milp.x_var[static_cast<std::size_t>(l.id)], 1.0},
                       {milp.y_var[static_cast<std::size_t>(end)], -1.0}});
      }
    }
  }

  // Z_{i,p} per flow path, and per-directed-arc demand accumulation.
  // Directed arc key: (link id, forward?) where forward means a->b.
  std::map<std::pair<LinkId, bool>, std::vector<lp::RowEntry>> arc_demand;
  milp.z_vars.resize(flows.size());
  milp.flow_paths.resize(flows.size());

  // As in the greedy heuristic, K reserves fabric headroom only: arcs
  // touching a host are charged the unscaled demand (no routing choice
  // exists there).
  for (std::size_t i = 0; i < flows.size(); ++i) {
    const Flow& flow = flows[i];
    // The memoized catalog (when wired in) carries the same enumeration in
    // the same order, with the per-hop link/direction lookups precomputed.
    const std::vector<CatalogPath>* cataloged =
        config.path_catalog != nullptr
            ? &config.path_catalog->pair(flow.src_host, flow.dst_host)
            : nullptr;
    if (cataloged != nullptr) {
      milp.flow_paths[i].reserve(cataloged->size());
      for (const CatalogPath& cp : *cataloged) {
        milp.flow_paths[i].push_back(cp.nodes);
      }
    } else {
      milp.flow_paths[i] = topo.all_paths(flow.src_host, flow.dst_host);
    }
    const double scaled = flow.scaled_demand(config.scale_factor_k);
    std::vector<lp::RowEntry> choose;
    for (std::size_t p = 0; p < milp.flow_paths[i].size(); ++p) {
      const int z = model.add_binary(
          strformat("Z_f%zu_p%zu", i, p), 0.0);
      milp.z_vars[i].push_back(z);
      choose.push_back({z, 1.0});
      const Path& path = milp.flow_paths[i][p];
      for (std::size_t h = 0; h + 1 < path.size(); ++h) {
        const LinkId lid = cataloged != nullptr
                               ? (*cataloged)[p].links[h]
                               : graph.find_link(path[h], path[h + 1]);
        const bool forward = cataloged != nullptr
                                 ? ((*cataloged)[p].arc_slots[h] & 1u) == 0u
                                 : graph.link(lid).a == path[h];
        const bool host_adjacent =
            cataloged != nullptr
                ? (*cataloged)[p].host_adjacent[h] != 0
                : !graph.is_switch(path[h]) || !graph.is_switch(path[h + 1]);
        const double arc_load = host_adjacent ? flow.demand : scaled;
        if (arc_load > 0.0) {
          arc_demand[{lid, forward}].push_back({z, arc_load});
        } else {
          // Zero-demand flows still require their path to be powered on.
          arc_demand[{lid, forward}];  // ensure the arc row exists
          model.add_row(strformat("f%zu_p%zu_on_%d", i, p, lid),
                        lp::RowType::LessEqual, 0.0,
                        {{z, 1.0},
                         {milp.x_var[static_cast<std::size_t>(lid)], -1.0}});
        }
      }
    }
    // Eq. (6)+(9): exactly one path (unsplittable routing).
    model.add_row(strformat("route_f%zu", i), lp::RowType::Equal, 1.0,
                  std::move(choose));
  }

  // Eq. (4): per-directed-arc capacity gated by the link's X. Load an
  // earlier solve phase committed on the arc shrinks the usable headroom
  // (possibly to zero or below, which pins every positive-demand path off
  // that arc).
  for (auto& [arc, entries] : arc_demand) {
    if (entries.empty()) continue;
    const Link& l = graph.link(arc.first);
    Bandwidth usable = l.capacity - config.safety_margin;
    const std::size_t slot =
        static_cast<std::size_t>(arc.first) * 2 + (arc.second ? 0 : 1);
    if (slot < config.committed_arc_load.size()) {
      usable -= config.committed_arc_load[slot];
    }
    std::vector<lp::RowEntry> row = entries;
    row.push_back({milp.x_var[static_cast<std::size_t>(arc.first)], -usable});
    model.add_row(strformat("cap_l%d_%c", arc.first, arc.second ? 'f' : 'r'),
                  lp::RowType::LessEqual, 0.0, std::move(row));
  }
  return milp;
}

/// The previous epoch's integer assignment expressed in this model's
/// variable order: one Z per flow (the inherited path when the delta left
/// the flow clean, the leftmost path otherwise), X for every link a chosen
/// path uses, Y for every switch those links touch. The solver validates
/// the vector against the model before adopting it, so a hint made stale
/// by shrunk capacity or pinned-off switches is simply ignored.
std::vector<double> build_incumbent_hint(const Graph& graph,
                                         const FlowSet& flows,
                                         const PathMilp& milp,
                                         const WarmStartHint& warm) {
  const DemandDelta delta = diff_demands(*warm.previous_flows, flows);
  std::vector<bool> dirty(flows.size(), false);
  for (FlowId i : delta.added) dirty[static_cast<std::size_t>(i)] = true;

  std::vector<double> hint(
      static_cast<std::size_t>(milp.model.num_variables()), 0.0);
  for (std::size_t i = 0; i < flows.size(); ++i) {
    const std::vector<Path>& candidates = milp.flow_paths[i];
    if (candidates.empty()) return {};  // model is infeasible anyway
    std::size_t chosen = 0;
    if (!dirty[i]) {
      const Path& previous_path = warm.previous->flow_paths[i];
      const auto it =
          std::find(candidates.begin(), candidates.end(), previous_path);
      if (it != candidates.end()) {
        chosen = static_cast<std::size_t>(it - candidates.begin());
      }
    }
    hint[static_cast<std::size_t>(milp.z_vars[i][chosen])] = 1.0;
    const Path& path = candidates[chosen];
    for (std::size_t h = 0; h + 1 < path.size(); ++h) {
      const LinkId lid = graph.find_link(path[h], path[h + 1]);
      hint[static_cast<std::size_t>(
          milp.x_var[static_cast<std::size_t>(lid)])] = 1.0;
      for (NodeId end : {graph.link(lid).a, graph.link(lid).b}) {
        if (graph.is_switch(end)) {
          hint[static_cast<std::size_t>(
              milp.y_var[static_cast<std::size_t>(end)])] = 1.0;
        }
      }
    }
  }
  return hint;
}

ConsolidationResult extract_solution(const Graph& graph, const FlowSet& flows,
                                     const ConsolidationConfig& config,
                                     const PathMilp& milp,
                                     const lp::Solution& sol) {
  ConsolidationResult result;
  result.switch_on.assign(graph.num_nodes(), false);
  result.link_on.assign(graph.num_links(), false);
  for (const Node& n : graph.nodes()) {
    if (n.type == NodeType::Host) {
      result.switch_on[static_cast<std::size_t>(n.id)] = true;
    }
  }
  for (std::size_t i = 0;
       i < config.preactivated_switches.size() && i < result.switch_on.size();
       ++i) {
    if (config.preactivated_switches[i]) result.switch_on[i] = true;
  }
  if (!sol.ok()) {
    result.feasible = false;
    return result;
  }
  result.feasible = true;
  result.flow_paths.resize(flows.size());
  for (std::size_t i = 0; i < flows.size(); ++i) {
    for (std::size_t p = 0; p < milp.z_vars[i].size(); ++p) {
      if (sol.x[static_cast<std::size_t>(milp.z_vars[i][p])] > 0.5) {
        result.flow_paths[i] = milp.flow_paths[i][p];
        break;
      }
    }
  }
  // Derive masks from the chosen paths (not raw X/Y, which the solver could
  // leave on without traffic in degenerate zero-cost cases).
  for (const Path& path : result.flow_paths) {
    activate_path(graph, path, result);
  }
  finalize_result(graph, config, result);
  return result;
}

ConsolidationResult empty_flows_result(const Graph& graph,
                                       const ConsolidationConfig& config) {
  ConsolidationResult result;
  result.switch_on.assign(graph.num_nodes(), false);
  result.link_on.assign(graph.num_links(), false);
  for (const Node& n : graph.nodes()) {
    if (n.type == NodeType::Host) {
      result.switch_on[static_cast<std::size_t>(n.id)] = true;
    }
  }
  for (std::size_t i = 0;
       i < config.preactivated_switches.size() && i < result.switch_on.size();
       ++i) {
    if (config.preactivated_switches[i]) result.switch_on[i] = true;
  }
  result.feasible = true;
  result.flow_paths.clear();
  finalize_result(graph, config, result);
  return result;
}

}  // namespace

MilpConsolidator::MilpConsolidator(const Topology* topo,
                                   MilpConsolidatorOptions options)
    : topo_(topo), options_(options) {}

ConsolidationResult MilpConsolidator::consolidate(
    const FlowSet& flows, const ConsolidationConfig& config) const {
  return consolidate(*topo_, flows, config);
}

ConsolidationResult MilpConsolidator::consolidate(
    const Topology& topo, const FlowSet& flows,
    const ConsolidationConfig& config) const {
  return solve_impl(topo, flows, config, nullptr);
}

ConsolidationResult MilpConsolidator::consolidate_incremental(
    const Topology& topo, const FlowSet& flows,
    const ConsolidationConfig& config, const WarmStartHint* warm) const {
  if (warm == nullptr || !warm->usable() || flows.empty()) {
    return consolidate(topo, flows, config);
  }
  return solve_impl(topo, flows, config, warm);
}

ConsolidationResult MilpConsolidator::solve_impl(
    const Topology& topo, const FlowSet& flows,
    const ConsolidationConfig& config, const WarmStartHint* warm) const {
  const obs::ScopedSpan span(obs::tracer(), "consolidate_milp", "planner",
                             "k", config.scale_factor_k);
  static obs::Counter& calls =
      obs::metrics().counter("consolidate.milp_calls");
  static obs::Counter& nodes =
      obs::metrics().counter("consolidate.milp_nodes");
  static obs::Counter& warm_seeded =
      obs::metrics().counter("consolidate.milp_warm_seeded");
  static obs::Counter& warm_rejected =
      obs::metrics().counter("consolidate.milp_warm_rejected");
  calls.add();

  const Graph& graph = topo.graph();
  if (flows.empty()) return empty_flows_result(graph, config);

  const PathMilp milp = build_path_milp(topo, flows, config);

  std::vector<double> hint;
  if (warm != nullptr) {
    hint = build_incumbent_hint(graph, flows, milp, *warm);
  }

  lp::MilpSolver solver(options_.milp);
  const lp::Solution sol =
      solver.solve(milp.model, hint.empty() ? nullptr : &hint);
  last_nodes_.store(solver.last_node_count(), std::memory_order_relaxed);
  nodes.add(static_cast<std::uint64_t>(
      std::max<long long>(0, solver.last_node_count())));
  if (warm != nullptr) {
    if (solver.last_warm_start_used()) {
      warm_seeded.add();
    } else {
      warm_rejected.add();
      EPRONS_LOG(Debug) << "milp warm-start incumbent rejected (stale or "
                           "infeasible under the new demands); cold solve";
    }
  }

  ConsolidationResult result = extract_solution(graph, flows, config, milp,
                                                sol);
  result.warm_started = warm != nullptr && solver.last_warm_start_used();
  return result;
}

}  // namespace eprons
