#include "consolidate/greedy_consolidator.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "obs/telemetry.h"

namespace eprons {

GreedyConsolidator::GreedyConsolidator(const Topology* topo,
                                       GreedyConsolidatorOptions options)
    : topo_(topo), options_(options) {}

ConsolidationResult GreedyConsolidator::consolidate(
    const FlowSet& flows, const ConsolidationConfig& config) const {
  return consolidate(*topo_, flows, config);
}

ConsolidationResult GreedyConsolidator::consolidate(
    const Topology& topo, const FlowSet& flows,
    const ConsolidationConfig& config) const {
  const obs::ScopedSpan span(obs::tracer(), "consolidate_greedy", "planner",
                             "k", config.scale_factor_k);
  static obs::Counter& calls =
      obs::metrics().counter("consolidate.greedy_calls");
  static obs::Counter& flows_placed =
      obs::metrics().counter("consolidate.flows_placed");
  static obs::Counter& overflows =
      obs::metrics().counter("consolidate.overflows");
  calls.add();

  const Graph& graph = topo.graph();
  // Tracked per call; a relaxed flag is enough for the diagnostic getter
  // and keeps concurrent consolidate() calls race-free.
  bool overloaded = false;

  ConsolidationResult result;
  result.switch_on.assign(graph.num_nodes(), false);
  result.link_on.assign(graph.num_links(), false);
  result.flow_paths.assign(flows.size(), {});
  for (const Node& n : graph.nodes()) {
    if (n.type == NodeType::Host) {
      result.switch_on[static_cast<std::size_t>(n.id)] = true;
    }
  }

  // Residual usable capacity per directed arc (2 slots per link).
  std::vector<Bandwidth> residual(graph.num_links() * 2, 0.0);
  for (const Link& l : graph.links()) {
    const Bandwidth usable = std::max(0.0, l.capacity - config.safety_margin);
    residual[static_cast<std::size_t>(l.id) * 2] = usable;
    residual[static_cast<std::size_t>(l.id) * 2 + 1] = usable;
  }
  auto arc_slot = [&](const Path& path, std::size_t hop) {
    const LinkId lid = graph.find_link(path[hop], path[hop + 1]);
    const bool forward = graph.link(lid).a == path[hop];
    return static_cast<std::size_t>(lid) * 2 + (forward ? 0 : 1);
  };

  // First-fit decreasing on scaled demand.
  std::vector<std::size_t> order(flows.size());
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return flows[a].scaled_demand(config.scale_factor_k) >
           flows[b].scaled_demand(config.scale_factor_k);
  });

  // K reserves headroom in the switching fabric; host access links have no
  // routing alternative, so they are checked at the flow's unscaled demand
  // (otherwise any fan-in of more than capacity/(K*demand) latency-
  // sensitive flows would be spuriously unplaceable).
  auto arc_need = [&](const Flow& flow, const Path& path, std::size_t hop) {
    const bool host_adjacent = !graph.is_switch(path[hop]) ||
                               !graph.is_switch(path[hop + 1]);
    return host_adjacent ? flow.demand
                         : flow.scaled_demand(config.scale_factor_k);
  };

  auto path_blocked = [&](const Path& path) {
    if (config.blocked_links.empty()) return false;
    for (std::size_t h = 0; h + 1 < path.size(); ++h) {
      const LinkId lid = graph.find_link(path[h], path[h + 1]);
      if (config.blocked_links[static_cast<std::size_t>(lid)]) return true;
    }
    return false;
  };

  for (std::size_t fi : order) {
    const Flow& flow = flows[fi];
    std::vector<Path> candidates =
        config.allowed_switches.empty()
            ? topo.all_paths(flow.src_host, flow.dst_host)
            : topo.active_paths(flow.src_host, flow.dst_host,
                                config.allowed_switches);
    if (!config.blocked_links.empty()) {
      candidates.erase(
          std::remove_if(candidates.begin(), candidates.end(), path_blocked),
          candidates.end());
    }
    if (candidates.empty()) {
      // The restricted subnet disconnects this pair entirely.
      overloaded = true;
      result.feasible = false;
      if (!options_.best_effort_overflow) {
        result.flow_paths.assign(flows.size(), {});
        overflows.add();
        return result;
      }
      continue;
    }

    // Pick the best feasible path. MinimizeSwitches: fewest newly-activated
    // switches (consolidation); BalanceLoad: lowest resulting bottleneck
    // utilization (spreading). Ties go to the leftmost path.
    std::size_t best = candidates.size();
    double best_score = std::numeric_limits<double>::max();
    for (std::size_t p = 0; p < candidates.size(); ++p) {
      const Path& path = candidates[p];
      bool fits = true;
      double min_headroom = std::numeric_limits<double>::infinity();
      for (std::size_t h = 0; h + 1 < path.size(); ++h) {
        const Bandwidth r = residual[arc_slot(path, h)];
        min_headroom = std::min(min_headroom, r - arc_need(flow, path, h));
        if (r + 1e-9 < arc_need(flow, path, h)) {
          fits = false;
          break;
        }
      }
      if (!fits) continue;
      double score;
      if (options_.objective == PlacementObjective::MinimizeSwitches) {
        int new_switches = 0;
        for (NodeId n : path) {
          if (graph.is_switch(n) &&
              !result.switch_on[static_cast<std::size_t>(n)]) {
            ++new_switches;
          }
        }
        score = new_switches;
      } else {
        // Most residual headroom after placement wins (negate: lower is
        // better).
        score = -min_headroom;
      }
      if (score < best_score - 1e-12) {
        best_score = score;
        best = p;
      }
    }

    if (best == candidates.size()) {
      if (!options_.best_effort_overflow) {
        result.feasible = false;
        result.flow_paths.assign(flows.size(), {});
        overflows.add();
        last_overloaded_.store(overloaded, std::memory_order_relaxed);
        return result;
      }
      // Overflow fallback: the path with the largest bottleneck residual.
      overloaded = true;
      Bandwidth best_bottleneck = -std::numeric_limits<double>::infinity();
      for (std::size_t p = 0; p < candidates.size(); ++p) {
        Bandwidth bottleneck = std::numeric_limits<double>::infinity();
        for (std::size_t h = 0; h + 1 < candidates[p].size(); ++h) {
          bottleneck =
              std::min(bottleneck, residual[arc_slot(candidates[p], h)]);
        }
        if (bottleneck > best_bottleneck) {
          best_bottleneck = bottleneck;
          best = p;
        }
      }
    }

    const Path& chosen = candidates[best];
    for (std::size_t h = 0; h + 1 < chosen.size(); ++h) {
      // May go negative on overflow.
      residual[arc_slot(chosen, h)] -= arc_need(flow, chosen, h);
    }
    result.flow_paths[fi] = chosen;
    activate_path(graph, chosen, result);
    flows_placed.add();
  }

  if (overloaded) overflows.add();
  last_overloaded_.store(overloaded, std::memory_order_relaxed);
  result.feasible = !overloaded;
  if (options_.best_effort_overflow && overloaded) {
    // Placement exists but violated the margin somewhere; callers treat
    // this as "infeasible at this K" for optimization purposes.
    result.feasible = false;
  }
  finalize_result(graph, config, result);
  return result;
}

}  // namespace eprons
