#include "consolidate/greedy_consolidator.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <numeric>

#include "obs/telemetry.h"
#include "topo/path_catalog.h"
#include "util/log.h"

namespace eprons {

namespace {

// Shared packing machinery for the cold and warm paths. One Packer is one
// consolidate() call: it owns the result masks and the per-arc residual
// capacities, and places flows one at a time with the FFD scoring rules.
// Everything is deterministic and single-threaded; concurrent
// consolidate() calls each build their own Packer.
struct Packer {
  const Topology& topo;
  const Graph& graph;
  const FlowSet& flows;
  const ConsolidationConfig& config;
  const GreedyConsolidatorOptions& options;

  ConsolidationResult result;
  /// Residual usable capacity per directed arc (2 slots per link).
  std::vector<Bandwidth> residual;
  bool overloaded = false;
  /// Set when !best_effort_overflow and a flow could not be placed; the
  /// caller returns an infeasible result with cleared paths.
  bool aborted = false;
  /// Scratch skip-mask over one pair's catalog paths (reused per place).
  std::vector<std::uint8_t> usable;

  Packer(const Topology& topo_in, const FlowSet& flows_in,
         const ConsolidationConfig& config_in,
         const GreedyConsolidatorOptions& options_in)
      : topo(topo_in),
        graph(topo_in.graph()),
        flows(flows_in),
        config(config_in),
        options(options_in) {
    result.switch_on.assign(graph.num_nodes(), false);
    result.link_on.assign(graph.num_links(), false);
    result.flow_paths.assign(flows.size(), {});
    for (const Node& n : graph.nodes()) {
      if (n.type == NodeType::Host) {
        result.switch_on[static_cast<std::size_t>(n.id)] = true;
      }
    }
    // Switches an earlier solve phase already powered cost nothing extra:
    // pre-marking them makes MinimizeSwitches score paths through them as
    // free, and they come back on in the returned mask.
    for (std::size_t i = 0;
         i < config.preactivated_switches.size() && i < result.switch_on.size();
         ++i) {
      if (config.preactivated_switches[i]) result.switch_on[i] = true;
    }
    residual.assign(graph.num_links() * 2, 0.0);
    for (const Link& l : graph.links()) {
      const Bandwidth usable =
          std::max(0.0, l.capacity - config.safety_margin);
      residual[static_cast<std::size_t>(l.id) * 2] = usable;
      residual[static_cast<std::size_t>(l.id) * 2 + 1] = usable;
    }
    // Load committed by an earlier phase eats into the usable headroom
    // before this pack places anything (may push an arc negative — no flow
    // fits there then, exactly as after an overflow placement).
    for (std::size_t slot = 0;
         slot < config.committed_arc_load.size() && slot < residual.size();
         ++slot) {
      residual[slot] -= config.committed_arc_load[slot];
    }
  }

  std::size_t arc_slot(const Path& path, std::size_t hop) const {
    const LinkId lid = graph.find_link(path[hop], path[hop + 1]);
    const bool forward = graph.link(lid).a == path[hop];
    return static_cast<std::size_t>(lid) * 2 + (forward ? 0 : 1);
  }

  // K reserves headroom in the switching fabric; host access links have no
  // routing alternative, so they are checked at the flow's unscaled demand
  // (otherwise any fan-in of more than capacity/(K*demand) latency-
  // sensitive flows would be spuriously unplaceable).
  Bandwidth arc_need(const Flow& flow, const Path& path,
                     std::size_t hop) const {
    const bool host_adjacent = !graph.is_switch(path[hop]) ||
                               !graph.is_switch(path[hop + 1]);
    return host_adjacent ? flow.demand
                         : flow.scaled_demand(config.scale_factor_k);
  }

  bool path_blocked(const Path& path) const {
    if (config.blocked_links.empty()) return false;
    for (std::size_t h = 0; h + 1 < path.size(); ++h) {
      const LinkId lid = graph.find_link(path[h], path[h + 1]);
      if (config.blocked_links[static_cast<std::size_t>(lid)]) return true;
    }
    return false;
  }

  bool path_allowed(const Path& path) const {
    if (config.allowed_switches.empty()) return true;
    for (NodeId n : path) {
      if (graph.is_switch(n) &&
          !config.allowed_switches[static_cast<std::size_t>(n)]) {
        return false;
      }
    }
    return true;
  }

  bool path_fits(const Flow& flow, const Path& path) const {
    for (std::size_t h = 0; h + 1 < path.size(); ++h) {
      if (residual[arc_slot(path, h)] + 1e-9 < arc_need(flow, path, h)) {
        return false;
      }
    }
    return true;
  }

  /// Flow indices in first-fit-decreasing order of scaled demand.
  std::vector<std::size_t> ffd_order() const {
    std::vector<std::size_t> order(flows.size());
    std::iota(order.begin(), order.end(), 0u);
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return flows[a].scaled_demand(config.scale_factor_k) >
                              flows[b].scaled_demand(config.scale_factor_k);
                     });
    return order;
  }

  /// Charges the flow's demand along `path` and turns the path on.
  void apply(std::size_t fi, const Path& path) {
    const Flow& flow = flows[fi];
    for (std::size_t h = 0; h + 1 < path.size(); ++h) {
      // May go negative on overflow.
      residual[arc_slot(path, h)] -= arc_need(flow, path, h);
    }
    result.flow_paths[fi] = path;
    activate_path(graph, path, result);
  }

  /// Charges the flow's demand along a catalog path and turns it on —
  /// apply() with every Graph lookup replaced by the precomputed arrays.
  void apply_cataloged(std::size_t fi, const CatalogPath& cp) {
    const Flow& flow = flows[fi];
    const Bandwidth scaled = flow.scaled_demand(config.scale_factor_k);
    for (std::size_t h = 0; h < cp.arc_slots.size(); ++h) {
      // May go negative on overflow.
      residual[cp.arc_slots[h]] -= cp.host_adjacent[h] ? flow.demand : scaled;
    }
    result.flow_paths[fi] = cp.nodes;
    for (NodeId n : cp.nodes) {
      result.switch_on[static_cast<std::size_t>(n)] = true;
    }
    for (LinkId l : cp.links) {
      result.link_on[static_cast<std::size_t>(l)] = true;
    }
  }

  /// place() against the memoized catalog: identical filtering, scoring and
  /// tie-break order as the enumerating path below — the mask skips exactly
  /// the paths active_paths() and the blocked-link erase would drop, and
  /// relative candidate order is preserved, so the same path wins.
  bool place_cataloged(std::size_t fi, obs::Counter& flows_placed) {
    const Flow& flow = flows[fi];
    const std::vector<CatalogPath>& cpaths =
        config.path_catalog->pair(flow.src_host, flow.dst_host);
    usable.assign(cpaths.size(), 1);
    std::size_t usable_count = 0;
    for (std::size_t p = 0; p < cpaths.size(); ++p) {
      const CatalogPath& cp = cpaths[p];
      bool ok = true;
      if (!config.allowed_switches.empty()) {
        for (NodeId n : cp.switches) {
          if (!config.allowed_switches[static_cast<std::size_t>(n)]) {
            ok = false;
            break;
          }
        }
      }
      if (ok && !config.blocked_links.empty()) {
        for (LinkId l : cp.links) {
          if (config.blocked_links[static_cast<std::size_t>(l)]) {
            ok = false;
            break;
          }
        }
      }
      usable[p] = ok ? 1 : 0;
      if (ok) ++usable_count;
    }
    if (usable_count == 0) {
      // The restricted subnet disconnects this pair entirely.
      overloaded = true;
      result.feasible = false;
      if (!options.best_effort_overflow) {
        aborted = true;
        return false;
      }
      return true;
    }

    const Bandwidth scaled = flow.scaled_demand(config.scale_factor_k);
    std::size_t best = cpaths.size();
    double best_score = std::numeric_limits<double>::max();
    for (std::size_t p = 0; p < cpaths.size(); ++p) {
      if (!usable[p]) continue;
      const CatalogPath& cp = cpaths[p];
      bool fits = true;
      double min_headroom = std::numeric_limits<double>::infinity();
      for (std::size_t h = 0; h < cp.arc_slots.size(); ++h) {
        const Bandwidth need = cp.host_adjacent[h] ? flow.demand : scaled;
        const Bandwidth r = residual[cp.arc_slots[h]];
        min_headroom = std::min(min_headroom, r - need);
        if (r + 1e-9 < need) {
          fits = false;
          break;
        }
      }
      if (!fits) continue;
      double score;
      if (options.objective == PlacementObjective::MinimizeSwitches) {
        int new_switches = 0;
        for (NodeId n : cp.switches) {
          if (!result.switch_on[static_cast<std::size_t>(n)]) ++new_switches;
        }
        score = new_switches;
      } else {
        score = -min_headroom;
      }
      if (score < best_score - 1e-12) {
        best_score = score;
        best = p;
      }
    }

    if (best == cpaths.size()) {
      if (!options.best_effort_overflow) {
        result.feasible = false;
        aborted = true;
        return false;
      }
      // Overflow fallback: the path with the largest bottleneck residual.
      overloaded = true;
      Bandwidth best_bottleneck = -std::numeric_limits<double>::infinity();
      for (std::size_t p = 0; p < cpaths.size(); ++p) {
        if (!usable[p]) continue;
        Bandwidth bottleneck = std::numeric_limits<double>::infinity();
        for (std::uint32_t slot : cpaths[p].arc_slots) {
          bottleneck = std::min(bottleneck, residual[slot]);
        }
        if (bottleneck > best_bottleneck) {
          best_bottleneck = bottleneck;
          best = p;
        }
      }
    }

    apply_cataloged(fi, cpaths[best]);
    flows_placed.add();
    return true;
  }

  /// Places one flow with the cold-path rules: enumerate candidate paths,
  /// score them (MinimizeSwitches or BalanceLoad), overflow-fallback when
  /// nothing fits. Returns false when the pack must be aborted
  /// (!best_effort_overflow and no candidate fits).
  bool place(std::size_t fi, obs::Counter& flows_placed) {
    if (config.path_catalog != nullptr) {
      return place_cataloged(fi, flows_placed);
    }
    const Flow& flow = flows[fi];
    std::vector<Path> candidates =
        config.allowed_switches.empty()
            ? topo.all_paths(flow.src_host, flow.dst_host)
            : topo.active_paths(flow.src_host, flow.dst_host,
                                config.allowed_switches);
    if (!config.blocked_links.empty()) {
      candidates.erase(
          std::remove_if(candidates.begin(), candidates.end(),
                         [&](const Path& p) { return path_blocked(p); }),
          candidates.end());
    }
    if (candidates.empty()) {
      // The restricted subnet disconnects this pair entirely.
      overloaded = true;
      result.feasible = false;
      if (!options.best_effort_overflow) {
        aborted = true;
        return false;
      }
      return true;
    }

    // Pick the best feasible path. MinimizeSwitches: fewest newly-activated
    // switches (consolidation); BalanceLoad: lowest resulting bottleneck
    // utilization (spreading). Ties go to the leftmost path.
    std::size_t best = candidates.size();
    double best_score = std::numeric_limits<double>::max();
    for (std::size_t p = 0; p < candidates.size(); ++p) {
      const Path& path = candidates[p];
      bool fits = true;
      double min_headroom = std::numeric_limits<double>::infinity();
      for (std::size_t h = 0; h + 1 < path.size(); ++h) {
        const Bandwidth r = residual[arc_slot(path, h)];
        min_headroom = std::min(min_headroom, r - arc_need(flow, path, h));
        if (r + 1e-9 < arc_need(flow, path, h)) {
          fits = false;
          break;
        }
      }
      if (!fits) continue;
      double score;
      if (options.objective == PlacementObjective::MinimizeSwitches) {
        int new_switches = 0;
        for (NodeId n : path) {
          if (graph.is_switch(n) &&
              !result.switch_on[static_cast<std::size_t>(n)]) {
            ++new_switches;
          }
        }
        score = new_switches;
      } else {
        // Most residual headroom after placement wins (negate: lower is
        // better).
        score = -min_headroom;
      }
      if (score < best_score - 1e-12) {
        best_score = score;
        best = p;
      }
    }

    if (best == candidates.size()) {
      if (!options.best_effort_overflow) {
        result.feasible = false;
        aborted = true;
        return false;
      }
      // Overflow fallback: the path with the largest bottleneck residual.
      overloaded = true;
      Bandwidth best_bottleneck = -std::numeric_limits<double>::infinity();
      for (std::size_t p = 0; p < candidates.size(); ++p) {
        Bandwidth bottleneck = std::numeric_limits<double>::infinity();
        for (std::size_t h = 0; h + 1 < candidates[p].size(); ++h) {
          bottleneck =
              std::min(bottleneck, residual[arc_slot(candidates[p], h)]);
        }
        if (bottleneck > best_bottleneck) {
          best_bottleneck = bottleneck;
          best = p;
        }
      }
    }

    apply(fi, candidates[best]);
    flows_placed.add();
    return true;
  }

  /// Counts switches the result activates (hosts excluded).
  int active_switch_count() const {
    int count = 0;
    for (const Node& n : graph.nodes()) {
      if (is_switch_type(n.type) &&
          result.switch_on[static_cast<std::size_t>(n.id)]) {
        ++count;
      }
    }
    return count;
  }
};

}  // namespace

GreedyConsolidator::GreedyConsolidator(const Topology* topo,
                                       GreedyConsolidatorOptions options)
    : topo_(topo), options_(options) {}

ConsolidationResult GreedyConsolidator::consolidate(
    const FlowSet& flows, const ConsolidationConfig& config) const {
  return consolidate(*topo_, flows, config);
}

ConsolidationResult GreedyConsolidator::consolidate(
    const Topology& topo, const FlowSet& flows,
    const ConsolidationConfig& config) const {
  const obs::ScopedSpan span(obs::tracer(), "consolidate_greedy", "planner",
                             "k", config.scale_factor_k);
  static obs::Counter& calls =
      obs::metrics().counter("consolidate.greedy_calls");
  static obs::Counter& flows_placed =
      obs::metrics().counter("consolidate.flows_placed");
  static obs::Counter& overflows =
      obs::metrics().counter("consolidate.overflows");
  calls.add();

  Packer packer(topo, flows, config, options_);

  // First-fit decreasing on scaled demand.
  for (std::size_t fi : packer.ffd_order()) {
    if (!packer.place(fi, flows_placed)) break;
  }

  if (packer.aborted) {
    packer.result.flow_paths.assign(flows.size(), {});
    overflows.add();
    last_overloaded_.store(packer.overloaded, std::memory_order_relaxed);
    return std::move(packer.result);
  }

  if (packer.overloaded) overflows.add();
  last_overloaded_.store(packer.overloaded, std::memory_order_relaxed);
  packer.result.feasible = !packer.overloaded;
  if (options_.best_effort_overflow && packer.overloaded) {
    // Placement exists but violated the margin somewhere; callers treat
    // this as "infeasible at this K" for optimization purposes.
    packer.result.feasible = false;
  }
  finalize_result(packer.graph, config, packer.result);
  return std::move(packer.result);
}

ConsolidationResult GreedyConsolidator::consolidate_incremental(
    const Topology& topo, const FlowSet& flows,
    const ConsolidationConfig& config, const WarmStartHint* warm) const {
  if (warm == nullptr || !warm->usable() || flows.empty()) {
    return consolidate(topo, flows, config);
  }
  const obs::ScopedSpan span(obs::tracer(), "consolidate_greedy_warm",
                             "planner", "k", config.scale_factor_k);
  static obs::Counter& warm_packs =
      obs::metrics().counter("consolidate.warm_packs");
  static obs::Counter& warm_fallbacks =
      obs::metrics().counter("consolidate.warm_fallbacks");
  static obs::Counter& flows_kept =
      obs::metrics().counter("consolidate.warm_flows_kept");
  static obs::Counter& flows_repacked =
      obs::metrics().counter("consolidate.warm_flows_repacked");
  static obs::Counter& flows_placed =
      obs::metrics().counter("consolidate.flows_placed");

  const DemandDelta delta = diff_demands(*warm->previous_flows, flows);

  // Dirty flows: added at their index (includes endpoint mismatches) or
  // with no routed previous path to inherit.
  std::vector<bool> dirty(flows.size(), false);
  for (FlowId i : delta.added) dirty[static_cast<std::size_t>(i)] = true;

  Packer packer(topo, flows, config, options_);

  // Keep phase: in FFD order, re-apply the previous routing to every clean
  // flow whose inherited path is still legal (allowed subnet, no blocked
  // link) and still fits at the new scaled demand. Resized flows keep
  // their path too when it still fits — that is the whole point of
  // incremental planning: a 1% demand wiggle re-routes nothing. Flows
  // whose inherited path fails any check join the dirty set.
  const std::vector<std::size_t> order = packer.ffd_order();
  std::uint64_t kept = 0;
  for (std::size_t fi : order) {
    if (dirty[fi]) continue;
    const Path& previous_path = warm->previous->flow_paths[fi];
    const Flow& flow = flows[fi];
    const bool inheritable =
        !previous_path.empty() && packer.path_allowed(previous_path) &&
        !packer.path_blocked(previous_path) &&
        packer.path_fits(flow, previous_path);
    if (inheritable) {
      packer.apply(fi, previous_path);
      flows_placed.add();
      ++kept;
    } else {
      dirty[fi] = true;
    }
  }

  // Re-pack phase: only the dirty flows, with the normal cold-path rules,
  // on top of the kept routing.
  std::uint64_t repacked = 0;
  for (std::size_t fi : order) {
    if (!dirty[fi]) continue;
    ++repacked;
    if (!packer.place(fi, flows_placed)) break;
  }

  // Regression bound: the incremental plan must stay within
  // max_extra_switches of the previous plan and must not have overflowed —
  // otherwise a full cold re-pack is both the quality reference and the
  // recovery path.
  const int active = packer.active_switch_count();
  const int bound = warm->previous->active_switches + warm->max_extra_switches;
  if (packer.aborted || packer.overloaded || active > bound) {
    warm_fallbacks.add();
    EPRONS_LOG(Info) << "greedy warm-start abandoned (active=" << active
                     << " bound=" << bound << " overloaded="
                     << (packer.overloaded ? "yes" : "no")
                     << "); falling back to a full re-pack";
    return consolidate(topo, flows, config);
  }

  warm_packs.add();
  flows_kept.add(kept);
  flows_repacked.add(repacked);
  last_overloaded_.store(false, std::memory_order_relaxed);
  packer.result.feasible = true;
  packer.result.warm_started = true;
  finalize_result(packer.graph, config, packer.result);
  EPRONS_LOG(Debug) << "greedy warm-start kept " << kept << " paths, "
                    << "re-packed " << repacked << " dirty flows ("
                    << delta.added.size() << " added, "
                    << delta.resized.size() << " resized, "
                    << delta.removed.size() << " removed)";
  return std::move(packer.result);
}

}  // namespace eprons
