// Switch ON/OFF transition modeling between consolidation epochs.
//
// Section IV-B: "we ignore the switch ON/OFF transition overheads because
// we use a software switch. However, our measurement on a HPE switch shows
// that the power-on time is about 72.52 sec. We can avoid the transition
// overheads by having 'backup' paths, as described in [5], or a novel
// hardware design with sleep states [2]."
//
// This module quantifies that choice. Given the previous and next epoch's
// active-switch masks it computes:
//   * which switches must boot / power off,
//   * the window during which newly-needed switches are still booting,
//   * the energy cost of two mitigation strategies:
//       - Cold       : turn switches on exactly when the new epoch needs
//                      them; traffic must keep using the old subnet for
//                      `power_on_time` (the boot window) — both subnets
//                      effectively draw power during the window.
//       - BackupPaths: never turn a switch off until it has been unused
//                      for `linger_epochs` epochs; boots become rare at the
//                      price of idling extra switches.
#pragma once

#include <vector>

#include "topo/graph.h"
#include "util/types.h"

namespace eprons {

struct TransitionConfig {
  /// Measured HPE E3800 power-on time (seconds -> us).
  SimTime power_on_time = sec(72.52);
  /// Active power of a switch while booting (assumed full draw).
  Power boot_power = 36.0;
  /// Steady active switch power.
  Power switch_power = 36.0;
  /// Epoch length between re-optimizations (10 min, section IV-B).
  SimTime epoch_length = sec(600.0);
  /// BackupPaths: epochs a switch stays on after last being needed.
  int linger_epochs = 1;
};

struct TransitionStats {
  int switches_to_boot = 0;
  int switches_to_off = 0;
  /// Time during which the new subnet is not fully available, us.
  SimTime unavailable_window = 0.0;
  /// Extra energy of the epoch versus an ideal instant transition, uJ.
  Energy overhead_energy = 0.0;
};

/// Diffs two NodeId-indexed masks (hosts ignored).
TransitionStats plan_transition(const Graph& graph,
                                const std::vector<bool>& previous_on,
                                const std::vector<bool>& next_on,
                                const TransitionConfig& config);

/// Stateful helper applying the BackupPaths linger policy across a sequence
/// of epochs: feed the *wanted* mask per epoch, get the *actual* mask (with
/// lingering switches) plus accumulated statistics.
class TransitionController {
 public:
  explicit TransitionController(const Graph* graph,
                                TransitionConfig config = {});

  /// Advances one epoch. Returns the mask actually powered this epoch.
  /// When `failed` is given (NodeId-indexed), failed switches are forced
  /// off regardless of wanted/linger state — a crashed switch cannot serve
  /// as a backup path, and its linger clock restarts on repair.
  const std::vector<bool>& step(const std::vector<bool>& wanted_on,
                                const std::vector<bool>* failed = nullptr);

  /// Mid-epoch emergency reconfiguration (does not advance the epoch
  /// counter or linger clocks): failed switches go off, switches newly
  /// wanted are powered (counting boots and boot energy for those that
  /// were actually off), everything else keeps its current state — a
  /// lingering backup stays on at zero extra boot cost, which is the whole
  /// point of the hot standby pool. Returns the updated actual mask;
  /// `boots_out` (optional) receives the number of cold boots incurred.
  const std::vector<bool>& apply_emergency(const std::vector<bool>& wanted_on,
                                           const std::vector<bool>* failed,
                                           int* boots_out = nullptr);

  const std::vector<bool>& current_mask() const { return actual_on_; }
  /// Total boots that incurred a boot window so far.
  int total_boots() const { return total_boots_; }
  /// Energy drawn beyond the wanted masks' ideal energy, uJ.
  Energy lingering_energy() const { return lingering_energy_; }
  /// Boot-window energy overhead so far, uJ.
  Energy boot_energy() const { return boot_energy_; }
  int epochs() const { return epochs_; }

 private:
  const Graph* graph_;
  TransitionConfig config_;
  std::vector<bool> actual_on_;
  std::vector<int> unused_epochs_;  // per node, since last wanted
  bool first_epoch_ = true;
  int total_boots_ = 0;
  Energy lingering_energy_ = 0.0;
  Energy boot_energy_ = 0.0;
  int epochs_ = 0;
};

}  // namespace eprons
