// Tiny command-line flag parser used by benches and examples.
//
//   Cli cli(argc, argv);
//   const double util = cli.get_double("util", 0.3);
//   const bool csv = cli.has_flag("csv");
// Accepts --name=value and bare --name boolean flags (the space-separated
// "--name value" form is deliberately unsupported: it is ambiguous with
// boolean flags followed by positionals).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "util/table.h"
#include "util/thread_pool.h"

namespace eprons {

class Cli {
 public:
  Cli(int argc, const char* const* argv);

  bool has_flag(const std::string& name) const;
  std::string get_string(const std::string& name,
                         const std::string& fallback) const;
  double get_double(const std::string& name, double fallback) const;
  long long get_int(const std::string& name, long long fallback) const;

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Names seen on the command line that were never queried; useful for
  /// catching typos in experiment scripts.
  std::vector<std::string> unused() const;

 private:
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> queried_;
  std::vector<std::string> positional_;
};

/// Shared runtime flags:
///   --threads[=N]      bare --threads uses the hardware concurrency,
///                      --threads=N pins the worker count; absent = serial.
///   --metrics-out=F    write the metrics-registry JSON snapshot to F.
///   --trace-out=F      write Chrome trace-event JSON (planner spans) to F.
///   --epoch-log=F      stream one JSONL record per planner epoch to F.
///   --log-level=L      debug|info|warn|error|off (overrides the
///                      EPRONS_LOG_LEVEL env var, which is applied here
///                      too).
/// The telemetry sinks take effect when the config reaches
/// obs::configure_telemetry — ScenarioBuilder::build() does this, so every
/// bench/example built on a Scenario gets them for free.
RuntimeConfig runtime_from_cli(const Cli& cli);

/// Shared output-format flags: --json wins over --csv; neither = pretty.
TableFormat table_format_from_cli(const Cli& cli);

/// The planner's retained reference paths, selectable per run. Mirrors the
/// PlanRequest use_reference_* knobs without depending on src/core, so the
/// flag set is declared once here and every bench/example picks up new
/// knobs for free (bench_common.h applies it to a PlanRequest).
struct ReferenceFlags {
  bool slack = false;        ///< per-sample Monte-Carlo path walks
  bool dvfs = false;         ///< per-decision equivalent-work convolution
  bool enumeration = false;  ///< per-call path enumeration (no catalog)
  bool any() const { return slack || dvfs || enumeration; }
};

/// Shared reference-path flags:
///   --reference-slack        reference slack estimation
///   --reference-dvfs         reference DVFS frequency scan
///   --reference-enumeration  reference path enumeration
///   --reference              all of the above
ReferenceFlags reference_flags_from_cli(const Cli& cli);

/// Open-loop serving flags shared by the serving bench/example (mirrors
/// ServingHarnessConfig without depending on src/serve — the serve layer
/// applies the values).
struct ServingFlags {
  double peak_qps = 40.0;      ///< --peak-qps: rate at the diurnal peak
  double horizon_s = 1800.0;   ///< --horizon: modeled seconds to serve
  double epoch_s = 600.0;      ///< --epoch-len: re-plan cadence, seconds
  double window_s = 60.0;      ///< --window: report window, seconds
  std::string admission = "always";  ///< --admission=always|token-bucket|...
  std::string shed = "never";        ///< --shed=never|deadline
  long long seed = 1;          ///< --serve-seed: arrival + harness streams
  double flash_per_hour = 1.0; ///< --flash-per-hour: flash-crowd intensity
  bool no_burst = false;       ///< --no-burst: disable burst noise
};

/// Shared serving flags (see ServingFlags member docs for the spellings).
ServingFlags serving_flags_from_cli(const Cli& cli);

}  // namespace eprons
