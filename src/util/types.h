// Core scalar types and unit conventions used across the EPRONS library.
//
// Conventions (documented once here, used everywhere):
//   * time        : double, microseconds (us)
//   * frequency   : double, GHz
//   * work        : double, CPU cycles
//   * bandwidth   : double, Mbps
//   * power       : double, Watts
//   * energy      : double, micro-Joules (Watts * us)
//
// With these units, a request of W cycles served at f GHz takes
// W / (f * 1000) microseconds (1 GHz == 1000 cycles / us).
#pragma once

#include <cstdint>
#include <limits>

namespace eprons {

/// Simulation time in microseconds.
using SimTime = double;

/// CPU frequency in GHz.
using Freq = double;

/// Amount of computational work in CPU cycles.
using Work = double;

/// Link / flow bandwidth in Mbps.
using Bandwidth = double;

/// Electrical power in Watts.
using Power = double;

/// Energy in micro-Joules (Watt-microseconds).
using Energy = double;

/// Cycles executed per microsecond at 1 GHz.
inline constexpr double kCyclesPerUsPerGHz = 1000.0;

/// Sentinel for "no time" / "unset deadline".
inline constexpr SimTime kNoTime = std::numeric_limits<double>::infinity();

/// Convert work at a frequency to service time (us).
constexpr SimTime work_to_time(Work cycles, Freq ghz) {
  return cycles / (ghz * kCyclesPerUsPerGHz);
}

/// Convert a service time (us) at a frequency back to work (cycles).
constexpr Work time_to_work(SimTime us, Freq ghz) {
  return us * ghz * kCyclesPerUsPerGHz;
}

/// Milliseconds to microseconds.
constexpr SimTime ms(double v) { return v * 1000.0; }

/// Seconds to microseconds.
constexpr SimTime sec(double v) { return v * 1e6; }

/// Microseconds to milliseconds (for reporting).
constexpr double to_ms(SimTime us) { return us / 1000.0; }

/// Identifier types. 32-bit indices are ample for our topologies.
using NodeId = std::int32_t;
using LinkId = std::int32_t;
using FlowId = std::int32_t;
using ServerId = std::int32_t;
using RequestId = std::int64_t;

inline constexpr NodeId kInvalidNode = -1;
inline constexpr LinkId kInvalidLink = -1;
inline constexpr FlowId kInvalidFlow = -1;

}  // namespace eprons
