// Minimal leveled logger. Thread-safe at the line level; writes to stderr.
//
// Usage:
//   EPRONS_LOG(Info) << "consolidated " << n << " flows";
// Levels below the global threshold compile to a cheap branch.
#pragma once

#include <mutex>
#include <sstream>
#include <string>

namespace eprons {

enum class LogLevel : int { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Global threshold; messages below it are discarded.
LogLevel log_threshold();
void set_log_threshold(LogLevel level);

const char* log_level_name(LogLevel level);

/// Parses "debug" | "info" | "warn" | "error" | "off" (case-insensitive).
/// Returns false (leaving `out` untouched) on anything else.
bool parse_log_level(const std::string& text, LogLevel& out);

/// Applies the EPRONS_LOG_LEVEL environment variable to the global
/// threshold, if set and valid. Returns true when a level was applied.
/// Called by the CLI plumbing so every bench/example honors the env var;
/// an explicit --log-level flag overrides it.
bool apply_log_level_from_env();

namespace detail {

/// Accumulates one log line and emits it (with a mutex) on destruction.
class LogLine {
 public:
  LogLine(LogLevel level, const char* file, int line);
  ~LogLine();
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace eprons

#define EPRONS_LOG(severity)                                              \
  if (::eprons::LogLevel::severity < ::eprons::log_threshold()) {         \
  } else                                                                  \
    ::eprons::detail::LogLine(::eprons::LogLevel::severity, __FILE__, __LINE__)
