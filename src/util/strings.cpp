#include "util/strings.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace eprons {

std::vector<std::string> split(std::string_view text, char delim) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(text.substr(start));
      break;
    }
    parts.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

std::string_view trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string strformat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

bool parse_double(std::string_view text, double& out) {
  const std::string buf(trim(text));
  if (buf.empty()) return false;
  char* end = nullptr;
  const double value = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) return false;
  out = value;
  return true;
}

bool parse_int(std::string_view text, long long& out) {
  const std::string buf(trim(text));
  if (buf.empty()) return false;
  char* end = nullptr;
  const long long value = std::strtoll(buf.c_str(), &end, 10);
  if (end != buf.c_str() + buf.size()) return false;
  out = value;
  return true;
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (char ch : text) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

std::string json_number(double value) {
  // JSON has no tokens for NaN or the infinities; `null` is the only value
  // every parser accepts. The old quoted-string forms type-confused numeric
  // columns downstream.
  if (value != value) return "null";
  if (value == std::numeric_limits<double>::infinity() ||
      value == -std::numeric_limits<double>::infinity()) {
    return "null";
  }
  // %.17g round-trips every finite double exactly, including negative zero
  // and subnormals (longest form, e.g. -4.9406564584124654e-324, is 24
  // chars).
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

}  // namespace eprons
