// Tabular output for benches and examples: aligned console tables and CSV.
//
// Every figure-reproduction bench prints the paper's series through this so
// output is uniform and machine-parsable with --csv.
#pragma once

#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace eprons {

/// One cell: string, integer, or floating point (printed with precision).
using Cell = std::variant<std::string, long long, double>;

/// Output encodings shared by every bench/example (--csv, --json flags).
enum class TableFormat { kPretty, kCsv, kJson };

class Table {
 public:
  explicit Table(std::vector<std::string> columns);

  /// Number of cells must equal the number of columns.
  void add_row(std::vector<Cell> row);

  std::size_t num_rows() const { return rows_.size(); }
  std::size_t num_cols() const { return columns_.size(); }
  const std::vector<std::string>& columns() const { return columns_; }
  const std::vector<Cell>& row(std::size_t i) const { return rows_[i]; }

  /// Floating-point cells are printed with this many significant decimals.
  void set_precision(int digits) { precision_ = digits; }

  /// Pretty-prints with aligned columns.
  void print(std::ostream& os) const;
  /// Emits RFC-4180-ish CSV (fields with commas/quotes are quoted).
  void print_csv(std::ostream& os) const;
  /// Emits a JSON array of one object per row, keyed by column name.
  /// Numeric cells keep full precision (the perf-trajectory harness
  /// ingests this; display rounding would lose information).
  void print_json(std::ostream& os) const;

  /// Dispatches on `csv`.
  void print(std::ostream& os, bool csv) const;
  /// Dispatches on `format`.
  void print(std::ostream& os, TableFormat format) const;

 private:
  std::string render_cell(const Cell& cell) const;

  std::vector<std::string> columns_;
  std::vector<std::vector<Cell>> rows_;
  int precision_ = 3;
};

}  // namespace eprons
