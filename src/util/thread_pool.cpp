#include "util/thread_pool.h"

#include <atomic>
#include <exception>

namespace eprons {

ThreadPool::ThreadPool(int threads) : num_threads_(threads < 1 ? 1 : threads) {
  workers_.reserve(static_cast<std::size_t>(num_threads_ - 1));
  for (int t = 1; t < num_threads_; ++t) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    jobs_.push(std::move(job));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !jobs_.empty(); });
      if (jobs_.empty()) return;  // stop_ set and queue drained
      job = std::move(jobs_.front());
      jobs_.pop();
    }
    job();
  }
}

namespace {

/// Shared state of one parallel_for batch. Participants (pool workers plus
/// the calling thread) race on `next` to claim indices; the batch is done
/// once `done` reaches n. Heap-allocated and shared so stray helper jobs
/// that wake after the caller returned still touch valid memory.
struct ForBatch {
  explicit ForBatch(std::size_t n, const std::function<void(std::size_t)>& f)
      : total(n), fn(f) {}

  void drain() {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= total) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex);
        if (!error) error = std::current_exception();
      }
      if (done.fetch_add(1, std::memory_order_acq_rel) + 1 == total) {
        std::lock_guard<std::mutex> lock(mutex);
        cv.notify_all();
      }
    }
  }

  const std::size_t total;
  const std::function<void(std::size_t)>& fn;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::mutex mutex;
  std::condition_variable cv;
  std::exception_ptr error;
};

}  // namespace

void parallel_for(ThreadPool* pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (!pool || pool->num_threads() <= 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  // The batch must outlive every helper job, including helpers that only
  // wake up after all indices are claimed; shared_ptr keeps it alive.
  // fn is borrowed by reference: the caller blocks until done == total and
  // late-waking helpers observe next >= total before ever touching fn.
  auto batch = std::make_shared<ForBatch>(n, fn);
  const std::size_t helpers =
      std::min(static_cast<std::size_t>(pool->num_threads() - 1), n - 1);
  for (std::size_t h = 0; h < helpers; ++h) {
    pool->submit([batch] { batch->drain(); });
  }
  batch->drain();  // the caller is a full participant — see nesting note

  {
    std::unique_lock<std::mutex> lock(batch->mutex);
    batch->cv.wait(lock, [&] {
      return batch->done.load(std::memory_order_acquire) == batch->total;
    });
  }
  if (batch->error) std::rethrow_exception(batch->error);
}

}  // namespace eprons
