#include "util/cli.h"

#include <thread>

#include "util/log.h"
#include "util/strings.h"

namespace eprons {

Cli::Cli(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!starts_with(arg, "--")) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    const std::size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      continue;
    }
    values_[arg] = "";  // bare boolean flag
  }
}

bool Cli::has_flag(const std::string& name) const {
  queried_[name] = true;
  return values_.count(name) > 0;
}

std::string Cli::get_string(const std::string& name,
                            const std::string& fallback) const {
  queried_[name] = true;
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

double Cli::get_double(const std::string& name, double fallback) const {
  queried_[name] = true;
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  double value = fallback;
  return parse_double(it->second, value) ? value : fallback;
}

long long Cli::get_int(const std::string& name, long long fallback) const {
  queried_[name] = true;
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  long long value = fallback;
  return parse_int(it->second, value) ? value : fallback;
}

RuntimeConfig runtime_from_cli(const Cli& cli) {
  RuntimeConfig runtime;
  if (cli.has_flag("threads")) {
    const long long requested = cli.get_int("threads", 0);
    if (requested > 0) {
      runtime.threads = static_cast<int>(requested);
    } else {
      const unsigned hw = std::thread::hardware_concurrency();
      runtime.threads = hw > 0 ? static_cast<int>(hw) : 1;
    }
  }
  // Telemetry sinks (see src/obs). The env var is applied first so an
  // explicit --log-level flag wins over EPRONS_LOG_LEVEL.
  runtime.metrics_out = cli.get_string("metrics-out", "");
  runtime.trace_out = cli.get_string("trace-out", "");
  runtime.epoch_log_out = cli.get_string("epoch-log", "");
  apply_log_level_from_env();
  runtime.log_level = cli.get_string("log-level", "");
  LogLevel level;
  if (!runtime.log_level.empty() &&
      !parse_log_level(runtime.log_level, level)) {
    EPRONS_LOG(Warn) << "unknown --log-level '" << runtime.log_level
                     << "' (want debug|info|warn|error|off); ignoring";
    runtime.log_level.clear();
  }
  return runtime;
}

TableFormat table_format_from_cli(const Cli& cli) {
  if (cli.has_flag("json")) return TableFormat::kJson;
  if (cli.has_flag("csv")) return TableFormat::kCsv;
  return TableFormat::kPretty;
}

ReferenceFlags reference_flags_from_cli(const Cli& cli) {
  ReferenceFlags flags;
  const bool all = cli.has_flag("reference");
  flags.slack = all || cli.has_flag("reference-slack");
  flags.dvfs = all || cli.has_flag("reference-dvfs");
  flags.enumeration = all || cli.has_flag("reference-enumeration");
  return flags;
}

ServingFlags serving_flags_from_cli(const Cli& cli) {
  ServingFlags flags;
  flags.peak_qps = cli.get_double("peak-qps", flags.peak_qps);
  flags.horizon_s = cli.get_double("horizon", flags.horizon_s);
  flags.epoch_s = cli.get_double("epoch-len", flags.epoch_s);
  flags.window_s = cli.get_double("window", flags.window_s);
  flags.admission = cli.get_string("admission", flags.admission);
  flags.shed = cli.get_string("shed", flags.shed);
  flags.seed = cli.get_int("serve-seed", flags.seed);
  flags.flash_per_hour =
      cli.get_double("flash-per-hour", flags.flash_per_hour);
  flags.no_burst = cli.has_flag("no-burst");
  return flags;
}

std::vector<std::string> Cli::unused() const {
  std::vector<std::string> names;
  for (const auto& [name, _] : values_) {
    if (!queried_.count(name)) names.push_back(name);
  }
  return names;
}

}  // namespace eprons
