// Deterministic pseudo-random number generation for reproducible experiments.
//
// We ship our own xoshiro256** implementation (public-domain algorithm by
// Blackman & Vigna) instead of std::mt19937 because (a) it is faster, (b) its
// stream-split semantics (jump()) let us give every simulated component an
// independent, deterministic stream from a single experiment seed.
#pragma once

#include <array>
#include <cstdint>

namespace eprons {

/// splitmix64: used to expand a single 64-bit seed into xoshiro state.
std::uint64_t splitmix64_next(std::uint64_t& state);

/// xoshiro256** PRNG. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the generator; identical seeds yield identical streams.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() { return next(); }

  /// Core generator step. Inline — this sits in the innermost statement of
  /// every sampler; pure integer ops, so inlining cannot change any bits.
  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Returns a new generator 2^128 steps ahead; use to derive independent
  /// streams for sub-components from one experiment seed.
  Rng split();

  /// Uniform double in [0, 1). Inline: one generator step and one exact
  /// multiply by 2^-53 (a single IEEE operation — nothing to contract).
  double uniform() {
    // 53 high bits -> double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Exponential with given mean (mean = 1/lambda).
  double exponential(double mean);
  /// Standard normal via Box-Muller (cached second variate).
  double normal(double mean = 0.0, double stddev = 1.0);
  /// Log-normal: exp(N(mu, sigma)).
  double lognormal(double mu, double sigma);
  /// Bounded Pareto on [lo, hi] with shape alpha.
  double bounded_pareto(double alpha, double lo, double hi);
  /// Bernoulli trial.
  bool bernoulli(double p);
  /// Poisson-distributed count (Knuth for small mean, PTRS-style rejection
  /// approximation via normal for large mean).
  std::int64_t poisson(double mean);

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  void jump();

  std::array<std::uint64_t, 4> s_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace eprons
