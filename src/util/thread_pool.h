// Deterministic parallel runtime for the planner hot paths.
//
// The joint optimizer and the slack estimator are embarrassingly parallel
// (independent K candidates; independently-seeded sampling shards), so a
// fixed-size pool plus a blocking parallel_for is all the machinery needed.
// Determinism contract: parallel_for(pool, n, fn) calls fn(i) exactly once
// for every i in [0, n) with each fn(i) writing only to its own slot, so
// results are a pure function of the iteration space — never of the worker
// count or the interleaving. Nested parallel_for calls are safe: the
// calling thread participates in draining its own batch, so a worker that
// starts an inner loop while every other worker is busy simply runs the
// whole inner loop itself instead of deadlocking.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <vector>

namespace eprons {

/// Execution-resource knobs threaded through the planner configs
/// (JointOptimizerConfig, SlackEstimatorConfig, EpochControllerConfig) and
/// exposed as --threads on every bench/example CLI. threads <= 1 means
/// fully serial execution with zero pool overhead.
///
/// The telemetry sinks ride along so one RuntimeConfig carries everything a
/// Scenario needs about *how* to run (vs. *what* to compute); they are
/// plain strings here so util stays dependency-free — src/obs interprets
/// them (obs::configure_telemetry), ScenarioBuilder applies them.
struct RuntimeConfig {
  int threads = 1;
  /// Metrics-registry JSON snapshot written at process exit ("" = off).
  std::string metrics_out;
  /// Chrome trace-event JSON (chrome://tracing / Perfetto) ("" = off).
  std::string trace_out;
  /// Per-epoch JSONL stream from EpochController/TraceReplay ("" = off).
  std::string epoch_log_out;
  /// Log threshold override: debug|info|warn|error|off ("" = keep).
  std::string log_level;
};

class ThreadPool {
 public:
  /// Spawns `threads - 1` workers (the caller of parallel_for is always the
  /// remaining participant). threads <= 1 spawns none.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// The configured parallelism (including the calling thread).
  int num_threads() const { return num_threads_; }

  /// Enqueues an arbitrary job. Used internally by parallel_for; exposed
  /// for callers that want fire-and-forget work (pair with their own
  /// completion tracking).
  void submit(std::function<void()> job);

 private:
  void worker_loop();

  int num_threads_ = 1;
  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> jobs_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Runs fn(0) .. fn(n-1), returning when all have completed. With a null
/// pool (or a single-thread pool, or n <= 1) this is a plain serial loop —
/// the serial and parallel paths execute the same calls, so any fn whose
/// iterations are independent yields bit-identical results either way.
/// The first exception thrown by any fn(i) is rethrown in the caller after
/// the whole batch has drained.
void parallel_for(ThreadPool* pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn);

}  // namespace eprons
