#include "util/table.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace eprons {

Table::Table(std::vector<std::string> columns) : columns_(std::move(columns)) {}

void Table::add_row(std::vector<Cell> row) {
  assert(row.size() == columns_.size() && "row arity mismatch");
  rows_.push_back(std::move(row));
}

std::string Table::render_cell(const Cell& cell) const {
  std::ostringstream os;
  if (std::holds_alternative<std::string>(cell)) {
    os << std::get<std::string>(cell);
  } else if (std::holds_alternative<long long>(cell)) {
    os << std::get<long long>(cell);
  } else {
    const double v = std::get<double>(cell);
    if (std::isfinite(v)) {
      os.setf(std::ios::fixed);
      os.precision(precision_);
      os << v;
    } else {
      os << (v > 0 ? "inf" : (v < 0 ? "-inf" : "nan"));
    }
  }
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(columns_.size());
  std::vector<std::vector<std::string>> rendered;
  rendered.reserve(rows_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
  }
  for (const auto& row : rows_) {
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      cells.push_back(render_cell(row[c]));
      widths[c] = std::max(widths[c], cells.back().size());
    }
    rendered.push_back(std::move(cells));
  }
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      os << cells[c];
      for (std::size_t pad = cells[c].size(); pad < widths[c]; ++pad) os << ' ';
    }
    os << '\n';
  };
  emit_row(columns_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  for (std::size_t i = 2; i < total; ++i) os << '-';
  os << '\n';
  for (const auto& cells : rendered) emit_row(cells);
}

void Table::print_csv(std::ostream& os) const {
  auto quote = [](const std::string& field) {
    if (field.find_first_of(",\"\n") == std::string::npos) return field;
    std::string out = "\"";
    for (char ch : field) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    os << (c ? "," : "") << quote(columns_[c]);
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c ? "," : "") << quote(render_cell(row[c]));
    }
    os << '\n';
  }
}

void Table::print_json(std::ostream& os) const {
  auto escape = [](const std::string& field) {
    std::string out;
    out.reserve(field.size() + 2);
    for (char ch : field) {
      switch (ch) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
          if (static_cast<unsigned char>(ch) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
            out += buf;
          } else {
            out += ch;
          }
      }
    }
    return out;
  };
  auto emit_cell = [&](const Cell& cell) {
    if (std::holds_alternative<std::string>(cell)) {
      os << '"' << escape(std::get<std::string>(cell)) << '"';
    } else if (std::holds_alternative<long long>(cell)) {
      os << std::get<long long>(cell);
    } else {
      const double v = std::get<double>(cell);
      if (std::isfinite(v)) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.17g", v);
        os << buf;
      } else {
        // JSON has no inf/nan literals; encode as strings.
        os << '"' << (v > 0 ? "inf" : (v < 0 ? "-inf" : "nan")) << '"';
      }
    }
  };
  os << "[\n";
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    os << "  {";
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      os << (c ? ", " : "") << '"' << escape(columns_[c]) << "\": ";
      emit_cell(rows_[r][c]);
    }
    os << (r + 1 < rows_.size() ? "},\n" : "}\n");
  }
  os << "]\n";
}

void Table::print(std::ostream& os, bool csv) const {
  if (csv) {
    print_csv(os);
  } else {
    print(os);
  }
}

void Table::print(std::ostream& os, TableFormat format) const {
  switch (format) {
    case TableFormat::kCsv: print_csv(os); break;
    case TableFormat::kJson: print_json(os); break;
    case TableFormat::kPretty: print(os); break;
  }
}

}  // namespace eprons
