#include "util/table.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "util/strings.h"

namespace eprons {

Table::Table(std::vector<std::string> columns) : columns_(std::move(columns)) {}

void Table::add_row(std::vector<Cell> row) {
  assert(row.size() == columns_.size() && "row arity mismatch");
  rows_.push_back(std::move(row));
}

std::string Table::render_cell(const Cell& cell) const {
  std::ostringstream os;
  if (std::holds_alternative<std::string>(cell)) {
    os << std::get<std::string>(cell);
  } else if (std::holds_alternative<long long>(cell)) {
    os << std::get<long long>(cell);
  } else {
    const double v = std::get<double>(cell);
    if (std::isfinite(v)) {
      os.setf(std::ios::fixed);
      os.precision(precision_);
      os << v;
    } else {
      os << (v > 0 ? "inf" : (v < 0 ? "-inf" : "nan"));
    }
  }
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(columns_.size());
  std::vector<std::vector<std::string>> rendered;
  rendered.reserve(rows_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
  }
  for (const auto& row : rows_) {
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      cells.push_back(render_cell(row[c]));
      widths[c] = std::max(widths[c], cells.back().size());
    }
    rendered.push_back(std::move(cells));
  }
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      os << cells[c];
      for (std::size_t pad = cells[c].size(); pad < widths[c]; ++pad) os << ' ';
    }
    os << '\n';
  };
  emit_row(columns_);
  // Rule width = rendered row width: the cell widths plus the two-space
  // separator between adjacent columns (none before the first).
  std::size_t rule = 0;
  for (std::size_t w : widths) rule += w;
  if (!widths.empty()) rule += 2 * (widths.size() - 1);
  for (std::size_t i = 0; i < rule; ++i) os << '-';
  os << '\n';
  for (const auto& cells : rendered) emit_row(cells);
}

void Table::print_csv(std::ostream& os) const {
  auto quote = [](const std::string& field) {
    if (field.find_first_of(",\"\n") == std::string::npos) return field;
    std::string out = "\"";
    for (char ch : field) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    os << (c ? "," : "") << quote(columns_[c]);
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c ? "," : "") << quote(render_cell(row[c]));
    }
    os << '\n';
  }
}

void Table::print_json(std::ostream& os) const {
  auto emit_cell = [&](const Cell& cell) {
    if (std::holds_alternative<std::string>(cell)) {
      os << '"' << json_escape(std::get<std::string>(cell)) << '"';
    } else if (std::holds_alternative<long long>(cell)) {
      os << std::get<long long>(cell);
    } else {
      os << json_number(std::get<double>(cell));
    }
  };
  os << "[\n";
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    os << "  {";
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      os << (c ? ", " : "") << '"' << json_escape(columns_[c]) << "\": ";
      emit_cell(rows_[r][c]);
    }
    os << (r + 1 < rows_.size() ? "},\n" : "}\n");
  }
  os << "]\n";
}

void Table::print(std::ostream& os, bool csv) const {
  if (csv) {
    print_csv(os);
  } else {
    print(os);
  }
}

void Table::print(std::ostream& os, TableFormat format) const {
  switch (format) {
    case TableFormat::kCsv: print_csv(os); break;
    case TableFormat::kJson: print_json(os); break;
    case TableFormat::kPretty: print(os); break;
  }
}

}  // namespace eprons
