#include "util/rng.h"

#include <cmath>

namespace eprons {

std::uint64_t splitmix64_next(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64_next(sm);
  // All-zero state is invalid for xoshiro; splitmix64 cannot produce four
  // zero outputs from any seed, but guard anyway.
  if (s_[0] == 0 && s_[1] == 0 && s_[2] == 0 && s_[3] == 0) s_[0] = 1;
}

void Rng::jump() {
  static constexpr std::uint64_t kJump[] = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
      0x39abdc4529b1661cULL};
  std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (std::uint64_t word : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (word & (std::uint64_t{1} << b)) {
        s0 ^= s_[0];
        s1 ^= s_[1];
        s2 ^= s_[2];
        s3 ^= s_[3];
      }
      next();
    }
  }
  s_ = {s0, s1, s2, s3};
}

Rng Rng::split() {
  Rng child = *this;  // copies current state
  jump();             // advance self past the child's future stream
  return child;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  // Rejection-free Lemire-style bounded draw would be fine; modulo bias for
  // span << 2^64 is negligible for simulation purposes, but avoid it anyway.
  std::uint64_t x, r;
  do {
    x = next();
    r = x % span;
  } while (x - r > ~std::uint64_t{0} - span + 1);
  return lo + static_cast<std::int64_t>(r);
}

double Rng::exponential(double mean) {
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u1, u2;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

double Rng::bounded_pareto(double alpha, double lo, double hi) {
  const double u = uniform();
  const double la = std::pow(lo, alpha);
  const double ha = std::pow(hi, alpha);
  return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
}

bool Rng::bernoulli(double p) { return uniform() < p; }

std::int64_t Rng::poisson(double mean) {
  if (mean <= 0.0) return 0;
  if (mean < 30.0) {
    const double limit = std::exp(-mean);
    double prod = uniform();
    std::int64_t n = 0;
    while (prod > limit) {
      prod *= uniform();
      ++n;
    }
    return n;
  }
  // Normal approximation with continuity correction; adequate for the large
  // per-epoch arrival counts we draw in trace generation.
  const double x = normal(mean, std::sqrt(mean));
  return x < 0.0 ? 0 : static_cast<std::int64_t>(x + 0.5);
}

}  // namespace eprons
