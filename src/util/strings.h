// Small string helpers shared by config parsing and table output.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace eprons {

/// Splits on a delimiter; empty fields are preserved.
std::vector<std::string> split(std::string_view text, char delim);

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view text);

/// True if `text` begins with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix);

/// printf-style formatting into a std::string.
std::string strformat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Parses a double / long; returns false on malformed input.
bool parse_double(std::string_view text, double& out);
bool parse_int(std::string_view text, long long& out);

}  // namespace eprons
