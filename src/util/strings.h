// Small string helpers shared by config parsing and table output.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace eprons {

/// Splits on a delimiter; empty fields are preserved.
std::vector<std::string> split(std::string_view text, char delim);

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view text);

/// True if `text` begins with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix);

/// printf-style formatting into a std::string.
std::string strformat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Parses a double / long; returns false on malformed input.
bool parse_double(std::string_view text, double& out);
bool parse_int(std::string_view text, long long& out);

/// Escapes a string for use inside a JSON string literal (quotes,
/// backslashes, control characters). Shared by Table::print_json and the
/// telemetry exporters so every JSON emitter in the repo escapes
/// identically.
std::string json_escape(std::string_view text);

/// Renders a double as a JSON value token: full %.17g precision for finite
/// values (round-trips exactly, including negative zero and subnormals),
/// `null` for NaN/±Inf (JSON has no literals for them, and quoted strings
/// type-confuse numeric columns).
std::string json_number(double value);

}  // namespace eprons
