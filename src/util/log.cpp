#include "util/log.h"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace eprons {

namespace {
std::atomic<int> g_threshold{static_cast<int>(LogLevel::Warn)};
std::mutex g_emit_mutex;
}  // namespace

LogLevel log_threshold() {
  return static_cast<LogLevel>(g_threshold.load(std::memory_order_relaxed));
}

void set_log_threshold(LogLevel level) {
  g_threshold.store(static_cast<int>(level), std::memory_order_relaxed);
}

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

bool parse_log_level(const std::string& text, LogLevel& out) {
  std::string lower;
  lower.reserve(text.size());
  for (char ch : text) {
    lower += static_cast<char>(std::tolower(static_cast<unsigned char>(ch)));
  }
  if (lower == "debug") out = LogLevel::Debug;
  else if (lower == "info") out = LogLevel::Info;
  else if (lower == "warn" || lower == "warning") out = LogLevel::Warn;
  else if (lower == "error") out = LogLevel::Error;
  else if (lower == "off" || lower == "none") out = LogLevel::Off;
  else return false;
  return true;
}

bool apply_log_level_from_env() {
  const char* env = std::getenv("EPRONS_LOG_LEVEL");
  if (!env) return false;
  LogLevel level;
  if (!parse_log_level(env, level)) return false;
  set_log_threshold(level);
  return true;
}

namespace detail {

LogLine::LogLine(LogLevel level, const char* file, int line) : level_(level) {
  // Keep only the basename to avoid long absolute paths in output.
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << '[' << log_level_name(level_) << "] " << base << ':' << line
          << ": ";
}

LogLine::~LogLine() {
  stream_ << '\n';
  const std::string text = stream_.str();
  std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::fputs(text.c_str(), stderr);
}

}  // namespace detail
}  // namespace eprons
