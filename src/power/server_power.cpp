#include "power/server_power.h"

#include <stdexcept>

namespace eprons {

ServerPowerModel::ServerPowerModel(ServerPowerConfig config)
    : config_(std::move(config)) {
  if (config_.num_cores <= 0) {
    throw std::invalid_argument("server needs at least one core");
  }
}

Power ServerPowerModel::core_power(bool active, Freq f) const {
  return active ? config_.core_curve.active_power(f) : config_.core_idle_power;
}

Power ServerPowerModel::server_power(int active_cores, Freq f) const {
  if (active_cores < 0) active_cores = 0;
  if (active_cores > config_.num_cores) active_cores = config_.num_cores;
  const int idle_cores = config_.num_cores - active_cores;
  return config_.static_power +
         active_cores * config_.core_curve.active_power(f) +
         idle_cores * config_.core_idle_power;
}

Power ServerPowerModel::peak_power() const {
  return server_power(config_.num_cores, config_.core_curve.f_max());
}

Power ServerPowerModel::idle_power() const { return server_power(0, 0.0); }

CoreEnergyMeter::CoreEnergyMeter(const ServerPowerModel* model)
    : model_(model) {}

void CoreEnergyMeter::advance(SimTime now) {
  if (start_ == kNoTime) {
    start_ = last_ = now;
    return;
  }
  if (now <= last_) return;
  const SimTime dt = now - last_;
  energy_ += model_->core_power(active_, freq_) * dt;
  if (active_) busy_time_ += dt;
  last_ = now;
}

void CoreEnergyMeter::reset(SimTime now) {
  start_ = last_ = now;
  energy_ = 0.0;
  busy_time_ = 0.0;
}

void CoreEnergyMeter::set_state(SimTime now, bool active, Freq f) {
  advance(now);
  active_ = active;
  freq_ = f;
}

Power CoreEnergyMeter::average_power() const {
  const SimTime span = total_time();
  return span > 0.0 ? energy_ / span : 0.0;
}

SimTime CoreEnergyMeter::total_time() const {
  return start_ == kNoTime ? 0.0 : last_ - start_;
}

}  // namespace eprons
