// Switch and link power models.
//
// Two calibrations from the paper:
//   * HPE E3800 J9574A measurement (Fig. 8): 97.5 W idle; going from 0 to
//     100% link utilization adds only 0.59 W (0.6% of idle) regardless of
//     2 vs 4 active ports -> treated as utilization-independent.
//   * The system-level experiments (Fig. 13/15 captions) use the 4-port
//     switch measurement from [23]: 36 W when active, 0 W when powered off.
#pragma once

#include "util/types.h"

namespace eprons {

struct SwitchPowerConfig {
  /// Power drawn while the switch is on, independent of traffic.
  Power active_power = 36.0;
  /// Additional power at 100% utilization (linearly interpolated).
  Power util_slope = 0.0;
  /// Per-active-port power; the LP's per-link term l(u,v) is twice this
  /// (a link keeps a port alive on both endpoints).
  Power port_power = 0.0;
};

class SwitchPowerModel {
 public:
  explicit SwitchPowerModel(SwitchPowerConfig config = {});

  /// The Fig. 8 HPE E3800 measurement calibration.
  static SwitchPowerModel hpe_e3800();
  /// The [23] 4-port model used in the paper's system-level results.
  static SwitchPowerModel reference_4port();

  const SwitchPowerConfig& config() const { return config_; }

  /// Power of one switch given its state and mean port utilization [0,1].
  Power switch_power(bool on, double utilization, int active_ports) const;

  /// Power attributable to one bidirectional link being active.
  Power link_power() const { return 2.0 * config_.port_power; }

 private:
  SwitchPowerConfig config_;
};

}  // namespace eprons
