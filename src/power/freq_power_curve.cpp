#include "power/freq_power_curve.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace eprons {

FreqPowerCurve::FreqPowerCurve(Freq f_min, Power p_min, Freq f_max,
                               Power p_max)
    : f_min_(f_min), f_max_(f_max) {
  if (!(f_min > 0.0) || !(f_max > f_min)) {
    throw std::invalid_argument("invalid frequency range");
  }
  if (!(p_max > p_min) || !(p_min > 0.0)) {
    throw std::invalid_argument("invalid power calibration points");
  }
  const double lo3 = f_min * f_min * f_min;
  const double hi3 = f_max * f_max * f_max;
  cube_coeff_ = (p_max - p_min) / (hi3 - lo3);
  p_static_ = p_min - cube_coeff_ * lo3;
  if (p_static_ < 0.0) p_static_ = 0.0;  // degenerate calibration guard
}

FreqPowerCurve FreqPowerCurve::xeon_e5_2697v2() {
  return FreqPowerCurve(/*f_min=*/1.2, /*p_min=*/1.4, /*f_max=*/2.7,
                        /*p_max=*/4.4);
}

Power FreqPowerCurve::active_power(Freq f) const {
  f = std::clamp(f, f_min_, f_max_);
  return p_static_ + cube_coeff_ * f * f * f;
}

std::vector<Freq> FreqPowerCurve::frequency_grid(double step_ghz) const {
  std::vector<Freq> grid;
  // Round the step count so 1.2..2.7 at 0.1 yields exactly 16 points.
  const int steps =
      static_cast<int>(std::round((f_max_ - f_min_) / step_ghz));
  grid.reserve(static_cast<std::size_t>(steps) + 1);
  for (int i = 0; i <= steps; ++i) {
    grid.push_back(std::min(f_max_, f_min_ + step_ghz * i));
  }
  return grid;
}

}  // namespace eprons
