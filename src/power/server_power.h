// Whole-server power model: per-core DVFS power + shared static power.
//
// Calibration (paper section V-A): 12-core CPU; the static power of the
// rest of the system (motherboard, memory, ...) is 20 W, taken from the
// dynamic/static ratio of a Huawei XH320 V2 server [22].
#pragma once

#include "power/freq_power_curve.h"
#include "util/types.h"

namespace eprons {

struct ServerPowerConfig {
  FreqPowerCurve core_curve = FreqPowerCurve::xeon_e5_2697v2();
  int num_cores = 12;
  /// Non-CPU platform power, always drawn while the server is on.
  Power static_power = 20.0;
  /// Power of a core that has no request to serve (clock-gated). The paper
  /// does not report this figure; we assume a deep-idle core draws a small
  /// fraction of its minimum-frequency active power. Identical across all
  /// compared policies, so relative savings are unaffected.
  Power core_idle_power = 0.5;
};

class ServerPowerModel {
 public:
  explicit ServerPowerModel(ServerPowerConfig config = {});

  const ServerPowerConfig& config() const { return config_; }
  const FreqPowerCurve& curve() const { return config_.core_curve; }
  int num_cores() const { return config_.num_cores; }

  /// Power of one core: active at `f`, or idle.
  Power core_power(bool active, Freq f) const;

  /// Server power given the count of active cores all running at `f`
  /// (remaining cores idle).
  Power server_power(int active_cores, Freq f) const;

  /// Peak server power (all cores at f_max); the "no power management"
  /// baseline reference for savings percentages.
  Power peak_power() const;

  /// Idle server power (all cores idle, platform on).
  Power idle_power() const;

 private:
  ServerPowerConfig config_;
};

/// Integrates core energy over time as the DVFS policy switches frequencies.
/// Call on every frequency / activity change; `finish` closes the interval.
class CoreEnergyMeter {
 public:
  explicit CoreEnergyMeter(const ServerPowerModel* model);

  /// Records state from `now` onward. Accumulates energy for the elapsed
  /// interval at the previous state first.
  void set_state(SimTime now, bool active, Freq f);

  /// Accumulates up to `now` without changing state.
  void advance(SimTime now);

  /// Zeroes accumulated energy/busy time and restarts the metering window
  /// at `now`, keeping the current activity state (used to discard warmup).
  void reset(SimTime now);

  Energy energy() const { return energy_; }
  /// Average power over [first set_state, last advance].
  Power average_power() const;
  SimTime busy_time() const { return busy_time_; }
  SimTime total_time() const;

 private:
  const ServerPowerModel* model_;
  SimTime start_ = kNoTime;
  SimTime last_ = 0.0;
  bool active_ = false;
  Freq freq_ = 0.0;
  Energy energy_ = 0.0;
  SimTime busy_time_ = 0.0;
};

}  // namespace eprons
