// Per-core DVFS power curve.
//
// Calibration (paper section V-A, "Power Evaluation"): a 12-core Xeon
// E5-2697 v2 measured at 4.4 W per core at the maximum frequency (2.7 GHz)
// and 1.4 W at the minimum (1.2 GHz), stepping in 100 MHz increments.
// We fit P(f) = P_static + c * f^3 through those two points (the classic
// dynamic-power cube law), which also lets callers query arbitrary grids.
#pragma once

#include <vector>

#include "util/types.h"

namespace eprons {

class FreqPowerCurve {
 public:
  /// Cube-law fit through (f_min, p_min) and (f_max, p_max).
  FreqPowerCurve(Freq f_min, Power p_min, Freq f_max, Power p_max);

  /// The paper's calibration: 1.2 GHz @ 1.4 W ... 2.7 GHz @ 4.4 W.
  static FreqPowerCurve xeon_e5_2697v2();

  Freq f_min() const { return f_min_; }
  Freq f_max() const { return f_max_; }

  /// Active power of one core running at frequency f (clamped to range).
  Power active_power(Freq f) const;

  /// The frequency-independent (leakage/uncore share) component of the fit.
  Power static_component() const { return p_static_; }

  /// The DVFS frequency grid: f_min..f_max in `step_ghz` increments
  /// (default 0.1 GHz = the paper's 100 MHz steps), ascending.
  std::vector<Freq> frequency_grid(double step_ghz = 0.1) const;

 private:
  Freq f_min_;
  Freq f_max_;
  Power p_static_;
  double cube_coeff_;
};

}  // namespace eprons
