#include "power/switch_power.h"

#include <algorithm>

namespace eprons {

SwitchPowerModel::SwitchPowerModel(SwitchPowerConfig config)
    : config_(config) {}

SwitchPowerModel SwitchPowerModel::hpe_e3800() {
  SwitchPowerConfig config;
  config.active_power = 97.5;
  config.util_slope = 0.59;
  config.port_power = 0.0;
  return SwitchPowerModel(config);
}

SwitchPowerModel SwitchPowerModel::reference_4port() {
  SwitchPowerConfig config;
  config.active_power = 36.0;
  config.util_slope = 0.0;
  config.port_power = 0.0;
  return SwitchPowerModel(config);
}

Power SwitchPowerModel::switch_power(bool on, double utilization,
                                     int active_ports) const {
  if (!on) return 0.0;
  utilization = std::clamp(utilization, 0.0, 1.0);
  const int ports = std::max(active_ports, 0);
  return config_.active_power + config_.util_slope * utilization +
         config_.port_power * ports;
}

}  // namespace eprons
