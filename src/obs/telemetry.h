// Process-wide telemetry context: one metrics registry, one span tracer,
// one optional per-epoch JSONL sink.
//
// Instrumented components (joint optimizer, slack estimator, consolidators,
// epoch controller, DES cluster) record into these globals so telemetry
// needs no pointer plumbing through planner configs. What *is* plumbed is
// the configuration: RuntimeConfig carries the sink paths (parsed from
// --metrics-out / --trace-out / --epoch-log / --log-level by
// runtime_from_cli), and ScenarioBuilder::build() calls
// configure_telemetry(), so every bench and example built on a Scenario
// gets telemetry for free. Outputs are flushed by an atexit hook (or
// explicitly via flush_telemetry()).
//
// Overhead: with no sinks configured, counters still count (wait-free
// relaxed adds — nanoseconds on the K-search hot path) and spans are inert
// single-load no-ops, so the planner's perf is within noise of an
// uninstrumented build (bench_micro_parallel_planner measures this).
#pragma once

#include "obs/jsonl.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace eprons::obs {

/// The process-wide registry / tracer. Created on first use, never
/// destroyed before atexit flushing.
MetricsRegistry& metrics();
Tracer& tracer();

/// The configured per-epoch JSONL sink, or nullptr when none. Components
/// with their own JsonlWriter override (EpochControllerConfig::epoch_log)
/// ignore this.
JsonlWriter* epoch_log();

/// Applies the telemetry fields of `runtime`: opens --metrics-out /
/// --trace-out / --epoch-log files, enables the tracer when a trace sink
/// exists, applies --log-level, and registers the atexit flush. Later
/// calls add sinks that were previously empty; they never close or
/// redirect an already-configured sink (so a bench constructing several
/// Scenarios from one Cli configures once).
void configure_telemetry(const RuntimeConfig& runtime);

/// Writes the metrics snapshot / trace JSON to the configured sinks now.
/// Idempotent per configuration; the atexit hook calls this too.
void flush_telemetry();

}  // namespace eprons::obs
