#include "obs/trace.h"

#include <ostream>

#include "util/strings.h"

namespace eprons::obs {

namespace {

std::uint64_t next_tracer_id() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

std::uint32_t thread_trace_id() {
  static std::atomic<std::uint32_t> next{1};
  thread_local const std::uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

// One-entry thread-local cache of (tracer id + generation) -> buffer, so
// record() avoids the registration mutex after a thread's first event.
// Keyed by id rather than pointer so a new Tracer reusing a dead one's
// address cannot alias a stale buffer.
struct BufferCache {
  std::uint64_t key = 0;
  std::vector<TraceEvent>* buffer = nullptr;
};
thread_local BufferCache t_buffer_cache;

}  // namespace

Tracer::Tracer()
    : id_(next_tracer_id()), epoch_(std::chrono::steady_clock::now()) {}

void Tracer::set_enabled(bool enabled) {
  if (enabled && !enabled_.load(std::memory_order_relaxed)) {
    epoch_ = std::chrono::steady_clock::now();
  }
  enabled_.store(enabled, std::memory_order_relaxed);
}

double Tracer::now_us() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

Tracer::Buffer* Tracer::thread_buffer() {
  const std::uint64_t key =
      (id_ << 16) ^ generation_.load(std::memory_order_acquire);
  if (t_buffer_cache.key != key) {
    std::lock_guard<std::mutex> lock(mutex_);
    buffers_.push_back(std::make_unique<Buffer>());
    t_buffer_cache.key = key;
    t_buffer_cache.buffer = buffers_.back().get();
  }
  return t_buffer_cache.buffer;
}

void Tracer::record(TraceEvent event) {
  if (!enabled()) return;
  event.tid = thread_trace_id();
  thread_buffer()->push_back(event);
}

std::size_t Tracer::num_events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  for (const auto& buffer : buffers_) n += buffer->size();
  return n;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  buffers_.clear();
  // Invalidate every thread's cached buffer pointer.
  generation_.fetch_add(1, std::memory_order_release);
}

void Tracer::write_json(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mutex_);
  os << "{\"traceEvents\": [\n";
  bool first = true;
  for (const auto& buffer : buffers_) {
    for (const TraceEvent& e : *buffer) {
      os << (first ? "" : ",\n");
      os << "{\"name\": \"" << json_escape(e.name) << "\", \"cat\": \""
         << json_escape(e.cat) << "\", \"ph\": \"X\", \"pid\": 1, \"tid\": "
         << e.tid << ", \"ts\": " << json_number(e.ts_us)
         << ", \"dur\": " << json_number(e.dur_us);
      if (e.arg_name) {
        os << ", \"args\": {\"" << json_escape(e.arg_name)
           << "\": " << json_number(e.arg_value) << "}";
      }
      os << "}";
      first = false;
    }
  }
  os << "\n], \"displayTimeUnit\": \"ms\"}\n";
}

ScopedSpan::ScopedSpan(Tracer& tracer, const char* name, const char* cat,
                       const char* arg_name, double arg_value) {
  if (!tracer.enabled()) return;
  tracer_ = &tracer;
  event_.name = name;
  event_.cat = cat;
  event_.arg_name = arg_name;
  event_.arg_value = arg_value;
  event_.ts_us = tracer.now_us();
}

ScopedSpan::~ScopedSpan() {
  if (!tracer_) return;
  event_.dur_us = tracer_->now_us() - event_.ts_us;
  tracer_->record(event_);
}

}  // namespace eprons::obs
