// Per-epoch JSONL export for the Fig. 7 control loop.
//
// One JSON object per line, one line per planner epoch — the format every
// log-ingestion pipeline (jq, pandas.read_json(lines=True), Vector, ...)
// consumes directly. EpochController streams a record per control epoch;
// TraceReplay streams one per DES calibration point. Records carry the
// quantities the paper's evaluation reasons about: chosen K, feasibility,
// switches wanted vs. actually powered, predicted vs. realized power, the
// demand predictor's conservatism ratio, and the slack estimator's tails.
#pragma once

#include <iosfwd>
#include <mutex>
#include <string>

namespace eprons::obs {

struct AttributionRecord;   // obs/attribution.h
struct PlanExplainRecord;   // obs/attribution.h

struct EpochRecord {
  /// Producer tag: "epoch_controller" | "trace_replay".
  const char* source = "epoch_controller";
  int epoch = 0;
  double chosen_k = 0.0;
  bool feasible = false;
  int wanted_switches = 0;
  int actual_switches = 0;
  /// Optimizer's predicted total power vs. the power actually drawn by the
  /// realized subnet (watts).
  double predicted_total_w = 0.0;
  double realized_network_w = 0.0;
  /// Mean predicted/true demand ratio (demand predictor conservatism).
  double prediction_ratio = 0.0;
  /// Slack estimator round-trip tails for the chosen plan, us.
  double slack_total_p95_us = 0.0;
  double slack_total_p99_us = 0.0;
  /// Server budget handed to the DVFS layer, us.
  double server_budget_us = 0.0;
  /// Operating point.
  double utilization = 0.0;
};

/// One emergency re-plan triggered by a fault notification, interleaved
/// with EpochRecords in the same JSONL stream ("source" disambiguates).
struct FaultRecord {
  const char* source = "fault_recovery";
  /// Epoch during which the failure was noticed.
  int epoch = 0;
  int failed_switches = 0;
  int failed_links = 0;
  /// Whether a connected surviving subnet exists at all.
  bool connected = false;
  /// Recovery served entirely by already-on switches (lingering backups).
  bool hot_recovery = false;
  bool replanned = false;
  double chosen_k = 0.0;
  bool k_bumped = false;
  /// Lingering backup switches promoted onto the datapath.
  int woken_backups = 0;
  /// Cold boots the recovery had to start (each costs power_on_time).
  int emergency_boots = 0;
  int flows_rerouted = 0;
  /// Modeled detection-to-recovery window, us (poll interval, plus the
  /// boot window when any cold boot was needed).
  double time_to_replan_us = 0.0;
  /// Modeled queries arriving inside that window while query paths were
  /// down — each misses the SLA.
  double estimated_outage_violations = 0.0;
};

/// One serving report window from the open-loop harness (serve/), on the
/// same JSONL stream as EpochRecords ("source" disambiguates). Counts are
/// per window, not cumulative; the conservation invariant
/// arrivals == admitted + shed + dropped holds exactly per record.
struct ServingWindowRecord {
  const char* source = "serving_window";
  int window = 0;
  /// Planner epoch in effect during the window.
  int epoch = 0;
  double window_start_us = 0.0;
  double window_end_us = 0.0;
  /// Mean offered rate over the window (from the arrival generator's exact
  /// integrated rate), queries/s.
  double offered_qps = 0.0;
  long long arrivals = 0;
  long long admitted = 0;
  /// Admitted but parked in the dispatch queue at least once.
  long long queued = 0;
  /// Shed at admission (policy said no).
  long long shed = 0;
  /// Dropped at admission: the dispatch queue was full.
  long long dropped = 0;
  /// Admitted earlier but dropped stale from the dispatch queue by the
  /// ShedPolicy before issue (subset of a previous window's `admitted`, so
  /// deliberately outside the arrivals == admitted + shed + dropped
  /// conservation check).
  long long late_shed = 0;
  long long completed = 0;
  /// Sub-queries whose replies landed this window (completed queries
  /// contribute num_isns each; the counter advances as replies arrive).
  long long subqueries = 0;
  /// Sub-queries exceeding the latency constraint — the paper's SLA object
  /// (matches ClusterMetrics::subquery_miss_rate), counted against
  /// `subqueries`, not `completed`.
  long long sla_misses = 0;
  /// End-to-end latency of completions in the window, us (0 when none).
  double latency_p50_us = 0.0;
  double latency_p95_us = 0.0;
  double latency_p99_us = 0.0;
  /// Total modeled energy spent in the window over admitted queries, J
  /// (0 when nothing was admitted).
  double energy_per_admitted_j = 0.0;
  /// In-flight queries that paid a plan-transition penalty this window.
  long long transition_penalized = 0;
};

/// Serializes `record` as a single JSON object line (no trailing spaces,
/// '\n'-terminated). Field order is fixed, output is deterministic.
std::string to_jsonl(const EpochRecord& record);
std::string to_jsonl(const FaultRecord& record);
std::string to_jsonl(const ServingWindowRecord& record);

/// Streams records to an ostream, one line each. Thread-safe at the line
/// level; the stream is borrowed and must outlive the writer.
class JsonlWriter {
 public:
  explicit JsonlWriter(std::ostream* os) : os_(os) {}

  void write(const EpochRecord& record);
  void write(const FaultRecord& record);
  void write(const ServingWindowRecord& record);
  void write(const AttributionRecord& record);
  void write(const PlanExplainRecord& record);
  /// Writes one pre-serialized JSONL line (must be '\n'-terminated) under
  /// the same line-level lock — for record types serialized elsewhere.
  void write_raw(const std::string& line);
  std::size_t records_written() const;

 private:
  void write_line(const std::string& line);

  std::ostream* os_;
  mutable std::mutex mutex_;
  std::size_t records_ = 0;
};

}  // namespace eprons::obs
