#include "obs/attribution.h"

#include "util/strings.h"

namespace eprons::obs {

namespace {

void append_field(std::string& out, const char* name, double value) {
  out += ", \"";
  out += name;
  out += "\": ";
  out += json_number(value);
}

void append_field(std::string& out, const char* name, int value) {
  out += ", \"";
  out += name;
  out += "\": ";
  out += std::to_string(value);
}

void append_field(std::string& out, const char* name, bool value) {
  out += ", \"";
  out += name;
  out += "\": ";
  out += value ? "true" : "false";
}

void append_field(std::string& out, const char* name,
                  const std::string& value) {
  out += ", \"";
  out += name;
  out += "\": \"";
  out += json_escape(value);
  out += "\"";
}

}  // namespace

std::string to_jsonl(const AttributionRecord& r) {
  std::string out = "{\"source\": \"attribution\"";
  append_field(out, "producer", r.source);
  append_field(out, "epoch", r.epoch);
  append_field(out, "chosen_k", r.chosen_k);
  append_field(out, "feasible", r.feasible);
  // Power ledger. The *_total_w fields are the producers' headline totals;
  // the components sum to them bit-identically by construction.
  append_field(out, "edge_w", r.power.edge_w);
  append_field(out, "agg_w", r.power.agg_w);
  append_field(out, "core_w", r.power.core_w);
  append_field(out, "link_w", r.power.link_w);
  append_field(out, "network_total_w", r.power.network_total_w);
  append_field(out, "linger_overhead_w", r.power.linger_overhead_w);
  append_field(out, "edge_switches", r.power.edge_switches);
  append_field(out, "agg_switches", r.power.agg_switches);
  append_field(out, "core_switches", r.power.core_switches);
  append_field(out, "active_links", r.power.active_links);
  append_field(out, "linger_switches", r.power.linger_switches);
  append_field(out, "server_idle_w", r.power.server_idle_w);
  append_field(out, "server_dynamic_w", r.power.server_dynamic_w);
  append_field(out, "server_dvfs_residual_w", r.power.server_dvfs_residual_w);
  append_field(out, "server_total_w", r.power.server_total_w);
  append_field(out, "hosts", r.power.hosts);
  append_field(out, "total_w", r.power.total_w);
  // Latency ledger.
  append_field(out, "constraint_us", r.latency.constraint_us);
  append_field(out, "network_p95_us", r.latency.network_p95_us);
  append_field(out, "network_p99_us", r.latency.network_p99_us);
  append_field(out, "request_p95_us", r.latency.request_p95_us);
  append_field(out, "server_budget_us", r.latency.server_budget_us);
  append_field(out, "miss_charged_to", r.latency.miss_charged_to);
  out += "}\n";
  return out;
}

std::string to_jsonl(const PlanExplainRecord& r) {
  std::string out = "{\"source\": \"plan_explain\"";
  append_field(out, "producer", r.source);
  append_field(out, "epoch", r.epoch);
  append_field(out, "path", r.path);
  append_field(out, "chosen_k", r.chosen_k);
  append_field(out, "feasible", r.feasible);
  append_field(out, "chosen_total_w", r.chosen_total_w);
  append_field(out, "consolidation_on_w", r.consolidation_on_w);
  append_field(out, "consolidation_off_w", r.consolidation_off_w);
  out += ", \"candidates\": [";
  for (std::size_t i = 0; i < r.candidates.size(); ++i) {
    const PlanCandidateExplain& c = r.candidates[i];
    out += i == 0 ? "{" : ", {";
    out += "\"k\": " + json_number(c.k);
    append_field(out, "feasible", c.feasible);
    append_field(out, "from_cache", c.from_cache);
    append_field(out, "reject_reason", c.reject_reason);
    append_field(out, "total_w", c.total_w);
    append_field(out, "network_w", c.network_w);
    append_field(out, "server_w", c.server_w);
    append_field(out, "violation_probability", c.violation_probability);
    append_field(out, "slack_p95_us", c.slack_p95_us);
    append_field(out, "server_budget_us", c.server_budget_us);
    append_field(out, "active_switches", c.active_switches);
    out += "}";
  }
  out += "]}\n";
  return out;
}

}  // namespace eprons::obs
