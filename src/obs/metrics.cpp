#include "obs/metrics.h"

#include <cassert>
#include <cmath>
#include <ostream>

#include "util/strings.h"

namespace eprons::obs {

std::size_t metric_shard_index() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t shard =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return shard;
}

std::uint64_t Counter::value() const {
  // Merge in fixed shard order; u64 addition is exact and commutative, so
  // the result is independent of which thread incremented which shard.
  std::uint64_t total = 0;
  for (const Cell& cell : shards_) {
    total += cell.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::reset() {
  for (Cell& cell : shards_) cell.value.store(0, std::memory_order_relaxed);
}

namespace {

// Lock-free monotone update of an atomic double (min or max).
template <typename Better>
void atomic_extreme(std::atomic<double>& slot, double v, Better better) {
  double current = slot.load(std::memory_order_relaxed);
  while (better(v, current) &&
         !slot.compare_exchange_weak(current, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

std::size_t Histogram::bucket_index(double v) {
  if (!(v >= 1.0)) return 0;  // negatives, NaN, and [0, 1) land in bucket 0
  const int exp = std::ilogb(v);  // floor(log2(v)) for finite v >= 1
  const std::size_t b = static_cast<std::size_t>(exp) + 1;
  return b < kBuckets ? b : kBuckets - 1;
}

double Histogram::bucket_lower(std::size_t b) {
  return b == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(b) - 1);
}

double Histogram::bucket_upper(std::size_t b) {
  return std::ldexp(1.0, static_cast<int>(b));
}

void Histogram::observe(double v) {
  Shard& shard = shards_[metric_shard_index()];
  shard.buckets[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
  atomic_extreme(shard.min, v, [](double a, double b) { return a < b; });
  atomic_extreme(shard.max, v, [](double a, double b) { return a > b; });
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot out;
  for (const Shard& shard : shards_) {
    for (std::size_t b = 0; b < kBuckets; ++b) {
      const std::uint64_t n = shard.buckets[b].load(std::memory_order_relaxed);
      out.buckets[b] += n;
      out.count += n;
    }
    out.min = std::min(out.min, shard.min.load(std::memory_order_relaxed));
    out.max = std::max(out.max, shard.max.load(std::memory_order_relaxed));
  }
  return out;
}

void Histogram::reset() {
  for (Shard& shard : shards_) {
    for (auto& b : shard.buckets) b.store(0, std::memory_order_relaxed);
    shard.min.store(std::numeric_limits<double>::infinity(),
                    std::memory_order_relaxed);
    shard.max.store(-std::numeric_limits<double>::infinity(),
                    std::memory_order_relaxed);
  }
}

double HistogramSnapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::min(std::max(q, 0.0), 1.0);
  // Rank of the q-quantile, 1-based; ceil so quantile(1.0) is the last.
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(count))));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    seen += buckets[b];
    if (seen >= rank) {
      // Clamp to the observed range so single-valued histograms report the
      // value itself rather than a bucket edge.
      return std::min(std::max(Histogram::bucket_upper(b), min), max);
    }
  }
  return max;
}

Percentiles HistogramSnapshot::percentiles() const {
  Percentiles out;
  if (count == 0) return out;
  // Nearest-rank (1-based, rank = ceil(q*n)) for the three standard
  // quantiles, resolved in one cumulative pass over the buckets.
  const double n = static_cast<double>(count);
  const std::uint64_t ranks[3] = {
      std::max<std::uint64_t>(
          1, static_cast<std::uint64_t>(std::ceil(0.50 * n))),
      std::max<std::uint64_t>(
          1, static_cast<std::uint64_t>(std::ceil(0.95 * n))),
      std::max<std::uint64_t>(
          1, static_cast<std::uint64_t>(std::ceil(0.99 * n))),
  };
  double* slots[3] = {&out.p50, &out.p95, &out.p99};
  std::size_t next = 0;
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < buckets.size() && next < 3; ++b) {
    seen += buckets[b];
    while (next < 3 && seen >= ranks[next]) {
      *slots[next] = std::min(std::max(Histogram::bucket_upper(b), min), max);
      ++next;
    }
  }
  for (; next < 3; ++next) *slots[next] = max;
  return out;
}

void MetricsSnapshot::write_json(std::ostream& os) const {
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    os << (first ? "\n" : ",\n") << "    \"" << json_escape(name)
       << "\": " << value;
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges) {
    os << (first ? "\n" : ",\n") << "    \"" << json_escape(name)
       << "\": " << json_number(value);
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, hist] : histograms) {
    os << (first ? "\n" : ",\n") << "    \"" << json_escape(name) << "\": {"
       << "\"count\": " << hist.count;
    if (hist.count > 0) {
      const Percentiles pct = hist.percentiles();
      os << ", \"min\": " << json_number(hist.min)
         << ", \"max\": " << json_number(hist.max)
         << ", \"p50\": " << json_number(pct.p50)
         << ", \"p95\": " << json_number(pct.p95)
         << ", \"p99\": " << json_number(pct.p99)
         << ", \"buckets\": [";
      bool first_bucket = true;
      for (std::size_t b = 0; b < hist.buckets.size(); ++b) {
        if (hist.buckets[b] == 0) continue;
        os << (first_bucket ? "" : ", ") << "["
           << json_number(Histogram::bucket_lower(b)) << ", "
           << hist.buckets[b] << "]";
        first_bucket = false;
      }
      os << "]";
    }
    os << "}";
    first = false;
  }
  os << (first ? "" : "\n  ") << "}\n}\n";
}

namespace {

template <typename Map, typename MapB, typename MapC>
auto& find_or_create(Map& map, const MapB& other1, const MapC& other2,
                     std::string_view name) {
  auto it = map.find(name);
  if (it == map.end()) {
    assert(other1.find(name) == other1.end() &&
           other2.find(name) == other2.end() &&
           "metric name already used for a different kind");
    (void)other1;
    (void)other2;
    it = map.emplace(std::string(name),
                     std::make_unique<typename Map::mapped_type::element_type>())
             .first;
  }
  return *it->second;
}

}  // namespace

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return find_or_create(counters_, gauges_, histograms_, name);
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return find_or_create(gauges_, counters_, histograms_, name);
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return find_or_create(histograms_, counters_, gauges_, name);
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot out;
  for (const auto& [name, c] : counters_) out.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) out.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) {
    out.histograms[name] = h->snapshot();
  }
  return out;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [_, c] : counters_) c->reset();
  for (auto& [_, g] : gauges_) g->reset();
  for (auto& [_, h] : histograms_) h->reset();
}

}  // namespace eprons::obs
