#include "obs/telemetry.h"

#include <cstdlib>
#include <fstream>
#include <memory>

#include "util/log.h"

namespace eprons::obs {

namespace {

// Intentionally leaked so the atexit flush (and worker threads that might
// record during static destruction) never race tear-down.
struct TelemetryState {
  std::mutex mutex;
  std::string metrics_path;
  std::string trace_path;
  std::unique_ptr<std::ofstream> epoch_stream;
  std::unique_ptr<JsonlWriter> epoch_writer;
  bool atexit_registered = false;
};

TelemetryState& state() {
  static TelemetryState* s = new TelemetryState;
  return *s;
}

}  // namespace

MetricsRegistry& metrics() {
  static MetricsRegistry* r = new MetricsRegistry;
  return *r;
}

Tracer& tracer() {
  static Tracer* t = new Tracer;
  return *t;
}

JsonlWriter* epoch_log() {
  TelemetryState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  return s.epoch_writer.get();
}

void configure_telemetry(const RuntimeConfig& runtime) {
  if (!runtime.log_level.empty()) {
    LogLevel level;
    if (parse_log_level(runtime.log_level, level)) {
      set_log_threshold(level);
    }
  }

  TelemetryState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  if (s.metrics_path.empty()) s.metrics_path = runtime.metrics_out;
  if (s.trace_path.empty()) s.trace_path = runtime.trace_out;
  if (!s.trace_path.empty()) tracer().set_enabled(true);
  if (!s.epoch_writer && !runtime.epoch_log_out.empty()) {
    auto stream = std::make_unique<std::ofstream>(runtime.epoch_log_out);
    if (stream->good()) {
      s.epoch_stream = std::move(stream);
      s.epoch_writer = std::make_unique<JsonlWriter>(s.epoch_stream.get());
    } else {
      EPRONS_LOG(Error) << "cannot open --epoch-log file '"
                        << runtime.epoch_log_out << "'";
    }
  }
  const bool any_sink = !s.metrics_path.empty() || !s.trace_path.empty() ||
                        s.epoch_writer != nullptr;
  if (any_sink && !s.atexit_registered) {
    s.atexit_registered = true;
    std::atexit(flush_telemetry);
  }
}

void flush_telemetry() {
  TelemetryState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  if (!s.metrics_path.empty()) {
    std::ofstream out(s.metrics_path);
    if (out.good()) {
      metrics().snapshot().write_json(out);
    } else {
      EPRONS_LOG(Error) << "cannot open --metrics-out file '"
                        << s.metrics_path << "'";
    }
  }
  if (!s.trace_path.empty()) {
    std::ofstream out(s.trace_path);
    if (out.good()) {
      tracer().write_json(out);
    } else {
      EPRONS_LOG(Error) << "cannot open --trace-out file '" << s.trace_path
                        << "'";
    }
  }
  if (s.epoch_stream) s.epoch_stream->flush();
}

}  // namespace eprons::obs
