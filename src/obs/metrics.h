// Metrics registry: named counters, gauges, and fixed-log-bucket
// histograms for the planner and simulator.
//
// Design constraints, in order:
//   1. Stay off the parallel K-search hot path: updates are wait-free
//      relaxed atomics on thread-sharded cells (no lock, no false sharing
//      on counters), so instrumenting plan_for_k costs nanoseconds.
//   2. Determinism: a snapshot must be bit-identical for any worker count.
//      Shards are merged in fixed shard order, and every merge is an exact
//      commutative-associative operation — u64 sums, u64 bucket counts,
//      double min/max — never a floating-point sum (whose value would
//      depend on which shard sampled what). Corollary: metrics record
//      *logical* quantities (counts, chosen K, slack values); *temporal*
//      quantities (durations) belong to the span tracer (obs/trace.h).
//   3. Cheap name lookup: registration takes a mutex, so call sites cache
//      the returned reference (`static Counter& c = ...counter("x");`);
//      references stay valid for the registry's lifetime.
//
// Naming scheme: dot-separated `<subsystem>.<quantity>[_<unit>]`, e.g.
// `planner.k_candidates`, `slack.samples`, `sim.subqueries`. See DESIGN.md
// "Observability".
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace eprons::obs {

/// Fixed shard count. Threads map onto shards by a process-wide sequential
/// thread id (mod kMetricShards); several threads may share a shard (the
/// cells are atomic), but the merged value never depends on the mapping.
inline constexpr std::size_t kMetricShards = 16;

/// Process-wide sequential id of the calling thread, assigned on first use.
std::size_t metric_shard_index();

/// Monotonic u64 counter. add() is wait-free; value() merges shards.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    shards_[metric_shard_index()].value.fetch_add(n,
                                                  std::memory_order_relaxed);
  }
  std::uint64_t value() const;
  void reset();

 private:
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> value{0};
  };
  std::array<Cell, kMetricShards> shards_;
};

/// Last-write-wins double. Deterministic only when set from serial code
/// (e.g. the K-search reduction, the epoch loop) — never set a gauge from
/// inside a parallel_for body.
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

struct HistogramSnapshot;

/// Fixed-log-bucket histogram of non-negative doubles. Bucket b counts
/// values in [2^(b-1), 2^b), bucket 0 everything below 1.0; 64 buckets
/// cover any magnitude the planner produces. Per-value cost: one relaxed
/// fetch_add plus two CAS-free min/max updates on the caller's shard.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  void observe(double v);
  HistogramSnapshot snapshot() const;
  void reset();

  /// Bucket that `v` falls into.
  static std::size_t bucket_index(double v);
  /// Inclusive lower bound of bucket `b` (0.0 for bucket 0).
  static double bucket_lower(std::size_t b);
  /// Exclusive upper bound of bucket `b`.
  static double bucket_upper(std::size_t b);

 private:
  struct alignas(64) Shard {
    std::array<std::atomic<std::uint64_t>, kBuckets> buckets{};
    std::atomic<double> min{std::numeric_limits<double>::infinity()};
    std::atomic<double> max{-std::numeric_limits<double>::infinity()};
  };
  std::array<Shard, kMetricShards> shards_;
};

/// The standard latency summary triple, extracted with exact nearest-rank
/// semantics (rank = ceil(q * n), 1-based) so every consumer — JSON
/// snapshots, bench tables, reports — quotes the same numbers.
struct Percentiles {
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

struct HistogramSnapshot {
  std::uint64_t count = 0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  std::array<std::uint64_t, Histogram::kBuckets> buckets{};

  /// Upper bound of the bucket holding the q-quantile (0 when empty).
  /// Computed from bucket counts only, so it is exactly reproducible.
  double quantile(double q) const;

  /// Nearest-rank p50/p95/p99 in one bucket pass; identical to calling
  /// quantile(0.50/0.95/0.99) but does not rescan per quantile.
  Percentiles percentiles() const;
};

/// Deterministic, name-sorted view of a registry (std::map orders keys).
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  /// One JSON object: {"counters": {...}, "gauges": {...},
  /// "histograms": {...}}. Byte-identical for identical snapshots.
  void write_json(std::ostream& os) const;
};

class MetricsRegistry {
 public:
  /// Returns the metric with this name, creating it on first use. The
  /// reference stays valid for the registry's lifetime; cache it at the
  /// call site. A name identifies one metric kind — asking for a counter
  /// named like an existing gauge is a programming error (asserted).
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  MetricsSnapshot snapshot() const;
  /// Zeroes all values; registered metrics (and cached references) stay.
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace eprons::obs
