// Per-epoch energy & SLA attribution ledger (the observability layer of
// EPRONS's headline decompositions: joint server+network savings, and
// "sometimes turning on an extra switch saves total power").
//
// The scalar totals the epoch JSONL already carries (`predicted_total_w`,
// `realized_network_w`, `server_budget_us`) say *that* a watt was spent or
// a microsecond of budget consumed — these records say *where*: which
// fat-tree layer (edge/agg/core), which device class (switch/link/server),
// which server component (idle floor / dynamic work / DVFS residual), and
// which side of the latency budget (network slack vs. server service time).
//
// Hard invariant — components sum bit-identically to the totals:
//   network_total_w == ((edge_w + agg_w) + core_w) + link_w
//   server_total_w  == (server_idle_w + server_dynamic_w)
//                        + server_dvfs_residual_w
//   total_w         == network_total_w + server_total_w
// for any --threads value. This is *not* a post-hoc decomposition with a
// closing residual: the producers (consolidate/consolidation.cpp's
// finalize_result, core/server_power_predictor.cpp, the epoch controller's
// realized-power accounting) *define* their headline totals as exactly
// these fixed-order sums, so the ledger cannot drift from the totals — the
// totals flow through the components. tests/attribution_test.cpp asserts
// the byte-identity across seeds and thread counts; tools/eprons_report.py
// --check re-verifies it on every emitted JSONL artifact (the %.17g JSON
// encoding round-trips doubles exactly, so the check survives the trip
// through text).
//
// These types live in obs (which depends only on util) and therefore carry
// primitives only; core/attribution.h builds them from planner types.
#pragma once

#include <string>
#include <vector>

namespace eprons::obs {

/// Where every watt of one epoch went. All fields in watts unless noted.
struct PowerAttribution {
  // -- Network side, per fat-tree layer (device class: switch). ----------
  double edge_w = 0.0;
  double agg_w = 0.0;
  double core_w = 0.0;
  /// Device class: link (0 under the default calibration's 0 W links).
  double link_w = 0.0;
  /// network_total_w == ((edge_w + agg_w) + core_w) + link_w, bit-exact.
  double network_total_w = 0.0;
  /// Of the active switches, those kept on only by the linger policy
  /// (lingering backups / boot-avoidance) rather than wanted by the plan —
  /// the transition machinery's power overhead. Informational slice of the
  /// layer totals above, not an extra term of the sum.
  double linger_overhead_w = 0.0;

  int edge_switches = 0;
  int agg_switches = 0;
  int core_switches = 0;
  int active_links = 0;
  int linger_switches = 0;

  // -- Server side, per component (device class: server). ----------------
  /// Power the fleet would draw fully idle: platform static + clock-gated
  /// cores. The floor consolidation cannot touch without server shutdown.
  double server_idle_w = 0.0;
  /// Cost of the offered work at f_max (busy cores above idle).
  double server_dynamic_w = 0.0;
  /// Delta from running at the DVFS-chosen frequency instead of f_max;
  /// negative when slowing down saves power — the watts the network slack
  /// bought. This is the paper's joint-optimization term.
  double server_dvfs_residual_w = 0.0;
  /// server_total_w == (server_idle_w + server_dynamic_w)
  ///                     + server_dvfs_residual_w, bit-exact.
  double server_total_w = 0.0;
  int hosts = 0;

  /// total_w == network_total_w + server_total_w, bit-exact.
  double total_w = 0.0;
};

/// Where the end-to-end latency budget of one epoch went, and — when the
/// SLA is missed — which layer the miss is chargeable to. Times in us.
struct LatencyAttribution {
  /// The end-to-end SLA.
  double constraint_us = 0.0;
  /// Network share: p95 of the round-trip network slack estimate.
  double network_p95_us = 0.0;
  double network_p99_us = 0.0;
  /// Request-direction share of the p95 (the per-hop breakdown's first
  /// leg; reply = network_p95_us - request_p95_us).
  double request_p95_us = 0.0;
  /// Server share: constraint - network p95 (what DVFS may spend).
  double server_budget_us = 0.0;
  /// Layer chargeable for an SLA miss: "" when feasible, else "network"
  /// (slack consumed the whole constraint), "server" (budget unreachable
  /// even at f_max) or "placement" (consolidation violated the margin).
  std::string miss_charged_to;
};

/// One epoch ledger line (source "attribution" in the JSONL stream).
struct AttributionRecord {
  /// Producer tag, e.g. "epoch_controller" | "bench_fig13".
  std::string source = "epoch_controller";
  int epoch = 0;
  double chosen_k = 0.0;
  bool feasible = false;
  PowerAttribution power;
  LatencyAttribution latency;
};

/// One row of the planner's candidate-K table.
struct PlanCandidateExplain {
  double k = 0.0;
  bool feasible = false;
  /// Returned from the PlanCache instead of being evaluated.
  bool from_cache = false;
  /// "" for feasible candidates; else "budget_exhausted" |
  /// "placement_infeasible" | "dvfs_infeasible".
  std::string reject_reason;
  double total_w = 0.0;
  double network_w = 0.0;
  double server_w = 0.0;
  /// Predictor's achieved per-request violation probability at the chosen
  /// frequency (1.0 when the budget is unreachable).
  double violation_probability = 0.0;
  double slack_p95_us = 0.0;
  double server_budget_us = 0.0;
  int active_switches = 0;
};

/// Why the planner chose what it chose (source "plan_explain").
struct PlanExplainRecord {
  std::string source = "epoch_controller";
  int epoch = 0;
  /// Which optimize() path produced the plan: "cold" (full K sweep),
  /// "warm" (previous-K re-evaluation short-circuit), "cache_hit".
  std::string path = "cold";
  double chosen_k = 0.0;
  bool feasible = false;
  double chosen_total_w = 0.0;
  /// Consolidation on/off delta: network power of the chosen placement vs.
  /// the all-switches-on baseline it was consolidated down from.
  double consolidation_on_w = 0.0;
  double consolidation_off_w = 0.0;
  /// Every candidate the sweep evaluated (or fetched from cache), in
  /// candidate order. The warm/cache paths carry a single row.
  std::vector<PlanCandidateExplain> candidates;
};

/// Serializes one record as a single '\n'-terminated JSON object line with
/// fixed field order (same contract as obs/jsonl.h).
std::string to_jsonl(const AttributionRecord& record);
std::string to_jsonl(const PlanExplainRecord& record);

}  // namespace eprons::obs
