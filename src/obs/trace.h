// Phase tracer: RAII scoped timers emitting Chrome trace-event JSON.
//
// The output loads directly into chrome://tracing or https://ui.perfetto.dev
// and shows the planner's phases — per-K consolidation, slack Monte-Carlo
// shards, server power prediction, transition decisions, sim epochs — laid
// out per thread over time. Every span is a complete "X" event (begin time
// + duration in one record), so the file is valid even if spans from
// different threads interleave arbitrarily.
//
// Cost model: when disabled (the default) a ScopedSpan is one relaxed
// atomic load; when enabled it is two steady_clock reads plus an append to
// a per-thread buffer (no lock on the hot path — buffers are registered
// once per thread under a mutex and merged only at write_json time).
//
// Span names and categories must be string literals (or otherwise outlive
// the tracer): events store the pointers, not copies.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <vector>

namespace eprons::obs {

struct TraceEvent {
  const char* name = "";
  const char* cat = "planner";
  double ts_us = 0.0;   // since tracer epoch
  double dur_us = 0.0;
  std::uint32_t tid = 0;
  /// Optional single numeric argument (arg_name == nullptr means none).
  const char* arg_name = nullptr;
  double arg_value = 0.0;
};

class Tracer {
 public:
  Tracer();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  /// Enabling (re)starts the trace epoch; timestamps are relative to it.
  void set_enabled(bool enabled);

  void record(TraceEvent event);

  /// Chrome trace-event JSON: {"traceEvents": [...]} with only complete
  /// ("X") events. Call at a quiescent point (no spans in flight on other
  /// threads); the flush points used here — process exit, end of a run —
  /// satisfy this.
  void write_json(std::ostream& os) const;

  /// Drops all recorded events (buffers of live threads are re-registered
  /// lazily on their next record()).
  void clear();

  std::size_t num_events() const;

  /// Microseconds since the trace epoch.
  double now_us() const;

 private:
  using Buffer = std::vector<TraceEvent>;
  Buffer* thread_buffer();

  const std::uint64_t id_;  // distinguishes tracer instances across TLS caches
  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Buffer>> buffers_;
  std::atomic<std::uint64_t> generation_{0};  // bumped by clear()
};

/// Times a scope and records it as one complete event on destruction.
/// Inert (a single relaxed load) when the tracer is disabled at
/// construction time.
class ScopedSpan {
 public:
  ScopedSpan(Tracer& tracer, const char* name, const char* cat = "planner")
      : ScopedSpan(tracer, name, cat, nullptr, 0.0) {}
  ScopedSpan(Tracer& tracer, const char* name, const char* cat,
             const char* arg_name, double arg_value);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  Tracer* tracer_ = nullptr;  // null = disabled, destructor is a no-op
  TraceEvent event_;
};

}  // namespace eprons::obs
