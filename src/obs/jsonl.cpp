#include "obs/jsonl.h"

#include <ostream>

#include "obs/attribution.h"
#include "util/strings.h"

namespace eprons::obs {

std::string to_jsonl(const EpochRecord& r) {
  std::string out = "{";
  out += "\"source\": \"" + json_escape(r.source) + "\"";
  out += ", \"epoch\": " + std::to_string(r.epoch);
  out += ", \"chosen_k\": " + json_number(r.chosen_k);
  out += std::string(", \"feasible\": ") + (r.feasible ? "true" : "false");
  out += ", \"wanted_switches\": " + std::to_string(r.wanted_switches);
  out += ", \"actual_switches\": " + std::to_string(r.actual_switches);
  out += ", \"predicted_total_w\": " + json_number(r.predicted_total_w);
  out += ", \"realized_network_w\": " + json_number(r.realized_network_w);
  out += ", \"prediction_ratio\": " + json_number(r.prediction_ratio);
  out += ", \"slack_total_p95_us\": " + json_number(r.slack_total_p95_us);
  out += ", \"slack_total_p99_us\": " + json_number(r.slack_total_p99_us);
  out += ", \"server_budget_us\": " + json_number(r.server_budget_us);
  out += ", \"utilization\": " + json_number(r.utilization);
  out += "}\n";
  return out;
}

std::string to_jsonl(const FaultRecord& r) {
  std::string out = "{";
  out += "\"source\": \"" + json_escape(r.source) + "\"";
  out += ", \"epoch\": " + std::to_string(r.epoch);
  out += ", \"failed_switches\": " + std::to_string(r.failed_switches);
  out += ", \"failed_links\": " + std::to_string(r.failed_links);
  out += std::string(", \"connected\": ") + (r.connected ? "true" : "false");
  out += std::string(", \"hot_recovery\": ") +
         (r.hot_recovery ? "true" : "false");
  out += std::string(", \"replanned\": ") + (r.replanned ? "true" : "false");
  out += ", \"chosen_k\": " + json_number(r.chosen_k);
  out += std::string(", \"k_bumped\": ") + (r.k_bumped ? "true" : "false");
  out += ", \"woken_backups\": " + std::to_string(r.woken_backups);
  out += ", \"emergency_boots\": " + std::to_string(r.emergency_boots);
  out += ", \"flows_rerouted\": " + std::to_string(r.flows_rerouted);
  out += ", \"time_to_replan_us\": " + json_number(r.time_to_replan_us);
  out += ", \"estimated_outage_violations\": " +
         json_number(r.estimated_outage_violations);
  out += "}\n";
  return out;
}

std::string to_jsonl(const ServingWindowRecord& r) {
  std::string out = "{";
  out += "\"source\": \"" + json_escape(r.source) + "\"";
  out += ", \"window\": " + std::to_string(r.window);
  out += ", \"epoch\": " + std::to_string(r.epoch);
  out += ", \"window_start_us\": " + json_number(r.window_start_us);
  out += ", \"window_end_us\": " + json_number(r.window_end_us);
  out += ", \"offered_qps\": " + json_number(r.offered_qps);
  out += ", \"arrivals\": " + std::to_string(r.arrivals);
  out += ", \"admitted\": " + std::to_string(r.admitted);
  out += ", \"queued\": " + std::to_string(r.queued);
  out += ", \"shed\": " + std::to_string(r.shed);
  out += ", \"dropped\": " + std::to_string(r.dropped);
  out += ", \"late_shed\": " + std::to_string(r.late_shed);
  out += ", \"completed\": " + std::to_string(r.completed);
  out += ", \"subqueries\": " + std::to_string(r.subqueries);
  out += ", \"sla_misses\": " + std::to_string(r.sla_misses);
  out += ", \"latency_p50_us\": " + json_number(r.latency_p50_us);
  out += ", \"latency_p95_us\": " + json_number(r.latency_p95_us);
  out += ", \"latency_p99_us\": " + json_number(r.latency_p99_us);
  out += ", \"energy_per_admitted_j\": " + json_number(r.energy_per_admitted_j);
  out += ", \"transition_penalized\": " +
         std::to_string(r.transition_penalized);
  out += "}\n";
  return out;
}

void JsonlWriter::write(const EpochRecord& record) {
  write_line(to_jsonl(record));
}

void JsonlWriter::write(const ServingWindowRecord& record) {
  write_line(to_jsonl(record));
}

void JsonlWriter::write(const FaultRecord& record) {
  write_line(to_jsonl(record));
}

void JsonlWriter::write(const AttributionRecord& record) {
  write_line(to_jsonl(record));
}

void JsonlWriter::write(const PlanExplainRecord& record) {
  write_line(to_jsonl(record));
}

void JsonlWriter::write_raw(const std::string& line) { write_line(line); }

void JsonlWriter::write_line(const std::string& line) {
  std::lock_guard<std::mutex> lock(mutex_);
  (*os_) << line;
  os_->flush();  // streaming: each epoch is visible as soon as it happens
  ++records_;
}

std::size_t JsonlWriter::records_written() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return records_;
}

}  // namespace eprons::obs
