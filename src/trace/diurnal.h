// Diurnal 24-hour workload trace generation (paper Fig. 14).
//
// The paper replays a Wikipedia request trace [21] whose search load and
// background traffic both follow a strong day/night pattern. That trace is
// not redistributable, so we synthesize one with the same shape read off
// Fig. 14: search load swinging between ~20% and 100% of peak and
// background traffic between ~10% and ~55% of link bandwidth, peaking
// mid-day, with minute-level noise. One sample per minute over 24 h.
#pragma once

#include <vector>

#include "util/rng.h"

namespace eprons {

struct DiurnalTraceConfig {
  int minutes = 24 * 60;
  /// Search load as a fraction of the provisioned peak (drives server
  /// utilization: utilization = search_load * peak_utilization).
  double search_trough = 0.20;
  double search_peak = 1.00;
  /// Background traffic as a fraction of link bandwidth.
  double background_trough = 0.10;
  double background_peak = 0.55;
  /// Minute of day at which load peaks (Fig. 14 peaks mid-trace).
  int peak_minute = 780;
  /// Multiplicative minute-level noise (std dev, fraction of value).
  double noise = 0.04;
  std::uint64_t seed = 7;
};

struct TracePoint {
  int minute = 0;
  /// Fraction of peak search load in [0, 1].
  double search_load = 0.0;
  /// Background traffic as a fraction of link bandwidth in [0, 1].
  double background_util = 0.0;
};

std::vector<TracePoint> make_diurnal_trace(const DiurnalTraceConfig& config);

/// Peak-normalized diurnal curve value at `minute` (no noise), in [0, 1].
double diurnal_shape(const DiurnalTraceConfig& config, int minute);

}  // namespace eprons
