#include "trace/diurnal.h"

#include <algorithm>
#include <cmath>

namespace eprons {

double diurnal_shape(const DiurnalTraceConfig& config, int minute) {
  // Cosine day/night curve peaking at peak_minute: 1 at the peak, 0 at the
  // opposite side of the day.
  const double phase = 2.0 * M_PI *
                       static_cast<double>(minute - config.peak_minute) /
                       static_cast<double>(config.minutes);
  return 0.5 + 0.5 * std::cos(phase);
}

std::vector<TracePoint> make_diurnal_trace(const DiurnalTraceConfig& config) {
  Rng rng(config.seed);
  std::vector<TracePoint> trace;
  trace.reserve(static_cast<std::size_t>(config.minutes));
  for (int m = 0; m < config.minutes; ++m) {
    const double shape = diurnal_shape(config, m);
    TracePoint point;
    point.minute = m;
    point.search_load =
        config.search_trough +
        (config.search_peak - config.search_trough) * shape;
    point.background_util =
        config.background_trough +
        (config.background_peak - config.background_trough) * shape;
    if (config.noise > 0.0) {
      point.search_load *= std::max(0.0, rng.normal(1.0, config.noise));
      point.background_util *= std::max(0.0, rng.normal(1.0, config.noise));
    }
    point.search_load = std::clamp(point.search_load, 0.0, 1.0);
    point.background_util = std::clamp(point.background_util, 0.0, 1.0);
    trace.push_back(point);
  }
  return trace;
}

}  // namespace eprons
