#include "flow/flow.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace eprons {

const char* flow_class_name(FlowClass cls) {
  switch (cls) {
    case FlowClass::LatencySensitive: return "latency-sensitive";
    case FlowClass::LatencyTolerant: return "latency-tolerant";
  }
  return "?";
}

FlowId FlowSet::add(int src_host, int dst_host, Bandwidth demand,
                    FlowClass cls) {
  if (src_host == dst_host) {
    throw std::invalid_argument("flow endpoints must differ");
  }
  if (demand < 0.0) throw std::invalid_argument("negative demand");
  const FlowId id = static_cast<FlowId>(flows_.size());
  flows_.push_back(Flow{id, src_host, dst_host, demand, cls});
  return id;
}

Bandwidth FlowSet::total_demand(double k) const {
  Bandwidth total = 0.0;
  for (const Flow& f : flows_) total += f.scaled_demand(k);
  return total;
}

std::size_t FlowSet::count(FlowClass cls) const {
  std::size_t n = 0;
  for (const Flow& f : flows_) {
    if (f.cls == cls) ++n;
  }
  return n;
}

FlowSet make_background_flows(const FlowGenConfig& config, int count,
                              double utilization_of_capacity, double jitter,
                              Rng& rng) {
  if (count > config.num_hosts) count = config.num_hosts;
  if (count <= 0) return FlowSet{};
  const int hpe = config.hosts_per_edge > 0 ? config.hosts_per_edge : 1;
  const int num_edges = (config.num_hosts + hpe - 1) / hpe;

  // Edge-major source order: first one host from every edge switch, then
  // the second host of every edge, ... so up to `num_edges` elephants hit
  // distinct edge uplinks.
  std::vector<int> sources;
  sources.reserve(static_cast<std::size_t>(count));
  for (int offset = 0; offset < hpe && static_cast<int>(sources.size()) < count;
       ++offset) {
    for (int edge = 0;
         edge < num_edges && static_cast<int>(sources.size()) < count;
         ++edge) {
      const int host = edge * hpe + offset;
      const bool excluded = config.exclude_host >= 0 &&
                            host / hpe == config.exclude_host / hpe;
      if (host < config.num_hosts && !excluded) sources.push_back(host);
    }
  }
  // Destinations: half the host space away (a different pod on a fat-tree),
  // so no host receives two elephants either.
  std::vector<int> targets(sources.size());
  std::vector<char> taken(static_cast<std::size_t>(config.num_hosts), 0);
  for (std::size_t i = 0; i < sources.size(); ++i) {
    int dst = (sources[i] + config.num_hosts / 2) % config.num_hosts;
    // Keep destinations unique and off the excluded edge group so no host
    // downlink carries two elephants.
    while (dst == sources[i] || taken[static_cast<std::size_t>(dst)] ||
           (config.exclude_host >= 0 &&
            dst / hpe == config.exclude_host / hpe)) {
      dst = (dst + 1) % config.num_hosts;
    }
    taken[static_cast<std::size_t>(dst)] = 1;
    targets[i] = dst;
  }

  FlowSet flows;
  for (std::size_t i = 0; i < sources.size(); ++i) {
    double fraction = utilization_of_capacity;
    if (jitter > 0.0) {
      fraction *= rng.uniform(1.0 - jitter, 1.0 + jitter);
    }
    if (fraction < 0.0) fraction = 0.0;
    flows.add(sources[i], targets[i], fraction * config.link_capacity,
              FlowClass::LatencyTolerant);
  }
  return flows;
}

void add_query_flows(FlowSet& flows, int aggregator_host, int num_hosts,
                     Bandwidth request_demand, Bandwidth reply_demand) {
  for (int h = 0; h < num_hosts; ++h) {
    if (h == aggregator_host) continue;
    flows.add(aggregator_host, h, request_demand, FlowClass::LatencySensitive);
    flows.add(h, aggregator_host, reply_demand, FlowClass::LatencySensitive);
  }
}

}  // namespace eprons
