#include "flow/demand_delta.h"

#include <cstring>

namespace eprons {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void fnv_mix(std::uint64_t& h, std::uint64_t v) {
  for (int byte = 0; byte < 8; ++byte) {
    h ^= (v >> (byte * 8)) & 0xffull;
    h *= kFnvPrime;
  }
}

std::uint64_t double_bits(double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

}  // namespace

std::uint64_t demand_fingerprint(const FlowSet& flows) {
  std::uint64_t h = kFnvOffset;
  fnv_mix(h, static_cast<std::uint64_t>(flows.size()));
  for (const Flow& f : flows.flows()) {
    fnv_mix(h, static_cast<std::uint64_t>(static_cast<std::uint32_t>(f.src_host)));
    fnv_mix(h, static_cast<std::uint64_t>(static_cast<std::uint32_t>(f.dst_host)));
    fnv_mix(h, static_cast<std::uint64_t>(f.cls));
    fnv_mix(h, double_bits(f.demand));
  }
  return h;
}

DemandDelta diff_demands(const FlowSet& previous, const FlowSet& next) {
  DemandDelta delta;
  delta.previous_fingerprint = demand_fingerprint(previous);
  delta.next_fingerprint = demand_fingerprint(next);

  const std::size_t overlap = std::min(previous.size(), next.size());
  for (std::size_t i = 0; i < overlap; ++i) {
    const Flow& p = previous[i];
    const Flow& n = next[i];
    if (p.src_host != n.src_host || p.dst_host != n.dst_host ||
        p.cls != n.cls) {
      delta.removed.push_back(static_cast<FlowId>(i));
      delta.added.push_back(static_cast<FlowId>(i));
    } else if (p.demand != n.demand) {
      delta.resized.push_back(static_cast<FlowId>(i));
    } else {
      ++delta.unchanged;
    }
  }
  for (std::size_t i = overlap; i < previous.size(); ++i) {
    delta.removed.push_back(static_cast<FlowId>(i));
  }
  for (std::size_t i = overlap; i < next.size(); ++i) {
    delta.added.push_back(static_cast<FlowId>(i));
  }
  return delta;
}

}  // namespace eprons
