// Flow records and traffic matrices for the consolidation layer.
//
// The paper's traffic mix (section II): long-lived latency-tolerant
// "elephant" background flows plus latency-sensitive search request/reply
// flows between the aggregator and the index-serving nodes. Consolidation
// treats each as a (src, dst, bandwidth demand, class) record; the scale
// factor K (section II) multiplies the demand of latency-sensitive flows.
#pragma once

#include <string>
#include <vector>

#include "util/rng.h"
#include "util/types.h"

namespace eprons {

enum class FlowClass {
  /// Search queries and replies; bandwidth demand is scaled by K.
  LatencySensitive,
  /// Elephant background transfers; never scaled.
  LatencyTolerant,
};

const char* flow_class_name(FlowClass cls);

struct Flow {
  FlowId id = kInvalidFlow;
  int src_host = -1;
  int dst_host = -1;
  /// Predicted bandwidth demand for the next epoch, Mbps.
  Bandwidth demand = 0.0;
  FlowClass cls = FlowClass::LatencyTolerant;

  /// Effective demand after scale-factor inflation (only latency-sensitive
  /// flows are inflated; K >= 1).
  Bandwidth scaled_demand(double k) const {
    return cls == FlowClass::LatencySensitive ? demand * k : demand;
  }
};

/// A consistent set of flows to be placed by the consolidation optimizer.
class FlowSet {
 public:
  FlowId add(int src_host, int dst_host, Bandwidth demand, FlowClass cls);

  std::size_t size() const { return flows_.size(); }
  bool empty() const { return flows_.empty(); }
  const Flow& operator[](std::size_t i) const { return flows_[i]; }
  const std::vector<Flow>& flows() const { return flows_; }

  /// Sum of (scaled) demands, Mbps.
  Bandwidth total_demand(double k = 1.0) const;
  std::size_t count(FlowClass cls) const;

 private:
  std::vector<Flow> flows_;
};

/// Generators for the paper's workload shapes.
struct FlowGenConfig {
  int num_hosts = 16;
  /// Elephant flows: demand expressed as a fraction of link capacity.
  Bandwidth link_capacity = 1000.0;
  /// Hosts per edge switch (k/2 on a k-ary fat-tree); used to spread
  /// elephant sources across edge switches.
  int hosts_per_edge = 2;
  /// Host whose whole edge-switch group is excluded from elephant
  /// endpoints (set to the aggregator host: its edge downlinks must carry
  /// the full query-reply fan-in, which elephants would saturate).
  int exclude_host = -1;
};

/// `count` background elephants, each with demand =
/// `utilization_of_capacity` * capacity (+/- jitter fraction). Sources
/// cycle across edge switches and destinations sit half the host space
/// away, so "X% background traffic" means ~X% utilization on the links the
/// elephants use — one elephant per edge uplink per direction until count
/// exceeds the edge count — matching the paper's notion of background
/// load and keeping instances placeable below the safety margin.
FlowSet make_background_flows(const FlowGenConfig& config, int count,
                              double utilization_of_capacity, double jitter,
                              Rng& rng);

/// Partition-aggregate query flows: for aggregator host `agg`, one
/// request flow agg->isn and one reply flow isn->agg per other host.
/// Replies are typically larger than requests (fan-in of result lists).
void add_query_flows(FlowSet& flows, int aggregator_host, int num_hosts,
                     Bandwidth request_demand, Bandwidth reply_demand);

}  // namespace eprons
