// Epoch-to-epoch demand diffing for the incremental planning layer.
//
// Diurnal traces change only a few flows per epoch, yet a cold planner
// re-routes the whole flow set every time. DemandDelta captures exactly
// what changed between two consecutive FlowSets — added, removed, and
// resized flows — plus a stable fingerprint of each set, so the
// consolidators can re-pack only the dirty flows (greedy), seed the MILP
// incumbent, and key the PlanCache on the demand snapshot.
//
// Flows are matched positionally: the epoch controller rebuilds its
// predicted FlowSet from the same ground-truth flows in the same order
// every epoch, so index i in the previous set corresponds to index i in
// the next set whenever (src, dst, class) agree. A mismatch at an index
// is conservatively treated as one removal plus one addition.
#pragma once

#include <cstdint>

#include "flow/flow.h"

namespace eprons {

/// Order-sensitive 64-bit fingerprint of a FlowSet: FNV-1a over every
/// flow's (src, dst, class, demand bit pattern). A pure function of the
/// flow records — identical across runs, platforms, and thread counts —
/// so it can serve as a cache key and as a cheap "did demand change?"
/// test between epochs.
std::uint64_t demand_fingerprint(const FlowSet& flows);

/// The difference between two consecutive epoch snapshots.
struct DemandDelta {
  std::uint64_t previous_fingerprint = 0;
  std::uint64_t next_fingerprint = 0;

  /// Indices into the *next* set with no positional match in the previous
  /// set (new flows, or endpoint/class mismatches at their index).
  std::vector<FlowId> added;
  /// Indices into the *previous* set whose flow disappeared (or whose
  /// index now holds a different endpoint pair / class).
  std::vector<FlowId> removed;
  /// Indices (valid in both sets) where endpoints and class match but the
  /// demand changed.
  std::vector<FlowId> resized;
  /// Flows identical in both sets.
  std::size_t unchanged = 0;

  bool identical() const {
    return added.empty() && removed.empty() && resized.empty();
  }

  /// Dirty flows (added + resized) as a fraction of the next set's size;
  /// 0 when the next set is empty. The "1% churn" of a diurnal epoch.
  double churn_fraction(std::size_t next_size) const {
    if (next_size == 0) return 0.0;
    return static_cast<double>(added.size() + resized.size()) /
           static_cast<double>(next_size);
  }
};

/// Positional diff of `previous` vs `next` (see file comment for the
/// matching rule). Deterministic: index lists are ascending.
DemandDelta diff_demands(const FlowSet& previous, const FlowSet& next);

}  // namespace eprons
