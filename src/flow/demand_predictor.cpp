#include "flow/demand_predictor.h"

namespace eprons {

DemandPredictor::DemandPredictor(DemandPredictorConfig config)
    : config_(config) {}

void DemandPredictor::add_sample(FlowId flow, Bandwidth rate) {
  auto [it, inserted] =
      windows_.try_emplace(flow, WindowedPercentile(config_.window));
  it->second.add(rate);
}

Bandwidth DemandPredictor::predict(FlowId flow) const {
  const auto it = windows_.find(flow);
  if (it == windows_.end() || it->second.empty()) return 0.0;
  return it->second.quantile(config_.percentile);
}

std::size_t DemandPredictor::sample_count(FlowId flow) const {
  const auto it = windows_.find(flow);
  return it == windows_.end() ? 0 : it->second.count();
}

void DemandPredictor::forget(FlowId flow) { windows_.erase(flow); }

void DemandPredictor::clear() { windows_.clear(); }

}  // namespace eprons
