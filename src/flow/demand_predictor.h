// Per-flow bandwidth demand prediction (paper section II, step i).
//
// "The 90th %tile traffic data rate of the last epoch is used to predict the
// flow's bandwidth demand in the next epoch [3] ... we incorporate a safety
// margin for the required link capacity."
//
// The predictor keeps a bounded window of rate samples per flow; the
// consolidation layer queries the 90th percentile at each re-optimization
// epoch. The safety margin is applied to *link capacity* (not demand) by
// the consolidation algorithms, mirroring Fig. 2's "950 Mbps available".
#pragma once

#include <unordered_map>
#include <vector>

#include "stats/percentile.h"
#include "util/types.h"

namespace eprons {

struct DemandPredictorConfig {
  /// Percentile of last-epoch samples used as next-epoch demand.
  double percentile = 0.90;
  /// Samples retained per flow (one epoch's worth at the polling cadence;
  /// the paper's POX controller polls every 2 s over a 10 min epoch).
  std::size_t window = 300;
};

class DemandPredictor {
 public:
  explicit DemandPredictor(DemandPredictorConfig config = {});

  /// Records an observed data-rate sample (Mbps) for a flow.
  void add_sample(FlowId flow, Bandwidth rate);

  /// Predicted next-epoch demand: the configured percentile of the window.
  /// Unknown flows predict 0 (they contribute no reservation).
  Bandwidth predict(FlowId flow) const;

  /// Number of samples currently held for a flow.
  std::size_t sample_count(FlowId flow) const;

  /// Drops state for flows that ended.
  void forget(FlowId flow);
  void clear();

 private:
  DemandPredictorConfig config_;
  std::unordered_map<FlowId, WindowedPercentile> windows_;
};

}  // namespace eprons
