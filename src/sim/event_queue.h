// Discrete-event simulation core: a time-ordered event queue.
//
// Events at equal timestamps fire in scheduling order (a monotonically
// increasing sequence number breaks ties), which keeps runs deterministic
// for a fixed seed — a hard requirement for reproducible experiments.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/types.h"

namespace eprons {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedules `callback` at absolute time `when` (>= now; earlier times
  /// are clamped to now to tolerate round-off in callers).
  void schedule(SimTime when, Callback callback);
  /// Schedules `callback` `delay` after now.
  void schedule_in(SimTime delay, Callback callback);

  SimTime now() const { return now_; }
  bool empty() const { return heap_.empty(); }
  std::size_t pending() const { return heap_.size(); }

  /// Runs the earliest event; returns false if none remain.
  bool step();

  /// Runs events until the queue empties or the next event is after `end`;
  /// `now()` is left at min(end, last event time... ) — precisely: at the
  /// last executed event, or `end` if execution reached it.
  void run_until(SimTime end);

  /// Runs everything (use only with workloads that naturally terminate).
  void run_all();

 private:
  struct Entry {
    SimTime when;
    std::uint64_t seq;
    Callback callback;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace eprons
