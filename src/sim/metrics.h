// Run-level metrics for cluster simulations: latency percentiles, SLA miss
// rates, power breakdowns.
#pragma once

#include "stats/percentile.h"
#include "util/types.h"

namespace eprons {

struct LatencyStats {
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
  std::size_t count = 0;
};

LatencyStats summarize(const PercentileEstimator& estimator);

struct ClusterMetrics {
  /// End-to-end query latency (aggregator fan-out to last reply), us.
  LatencyStats query_latency;
  /// Per-subquery network latency (request + reply hops), us.
  LatencyStats network_latency;
  /// Per-subquery server residence time (queue + service), us.
  LatencyStats server_latency;
  /// Per-subquery end-to-end latency (issue to reply arrival), us. This is
  /// the paper's SLA object: the tail latency of individual search
  /// requests at the ISNs.
  LatencyStats subquery_latency;
  /// Fraction of queries (max over the fan-out) exceeding the constraint.
  double query_miss_rate = 0.0;
  /// Fraction of sub-requests exceeding the constraint (the SLA miss rate).
  double subquery_miss_rate = 0.0;

  /// Average CPU power per server (cores only), W.
  Power avg_cpu_power_per_server = 0.0;
  /// Average total server power (cores + static), W.
  Power avg_server_power = 0.0;
  /// Whole-cluster server power (all servers), W.
  Power total_server_power = 0.0;
  /// Network power of the active subnet, W.
  Power network_power = 0.0;
  /// total_server_power + network_power.
  Power total_system_power = 0.0;

  /// Measured mean core busy fraction across all servers.
  double measured_core_utilization = 0.0;

  std::size_t queries_completed = 0;
  std::size_t subqueries_completed = 0;

  /// Queries refused at issue time because max_inflight_queries was reached
  /// (open-loop saturation guard; 0 in closed bench scenarios and whenever
  /// the bound is disabled).
  std::size_t queries_overflowed = 0;

  // Fault-injection accounting (all zero without a fault timeline).
  /// Query flows moved onto an alternate surviving path mid-run.
  std::size_t flows_rerouted = 0;
  /// Sub-queries dropped because no surviving path existed when issued
  /// (each is charged the drop penalty and counted as an SLA miss).
  std::size_t subqueries_dropped = 0;
  /// SLA misses recorded while any failure was outstanding (dropped
  /// sub-queries plus organic misses during the outage window).
  std::size_t outage_sla_misses = 0;
};

}  // namespace eprons
