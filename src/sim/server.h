// Simulated multi-core server with per-core request queues and a DVFS
// policy driving each core's frequency.
//
// Mechanics: a request carries its actual drawn work W (cycles). The core
// retires work at the model's effective rate for its current frequency;
// the policy is re-consulted at every arrival and departure instant
// (section III-B's decision points), after which the pending completion
// event is rescheduled. EPRONS-Server additionally keeps the *waiting*
// portion of the queue in earliest-deadline-first order.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "dvfs/policy.h"
#include "power/server_power.h"
#include "sim/event_queue.h"
#include "util/types.h"

namespace eprons {

/// A request as the simulator tracks it (the policy sees QueuedRequest).
struct ServerRequest {
  QueuedRequest meta;
  Work work = 0.0;  // actual drawn work, hidden from policies
  /// End-to-end bookkeeping owned by the caller (opaque tag, e.g. query id).
  std::int64_t tag = 0;
  /// Measured request-leg network latency (the latency monitor's sample);
  /// carried through so completion handlers can report full network time.
  SimTime net_request_latency = 0.0;
};

struct ServerCompletion {
  ServerRequest request;
  SimTime completed_at = 0.0;
};

class SimServer {
 public:
  using CompletionHandler = std::function<void(const ServerCompletion&)>;
  using PolicyFactory =
      std::function<std::unique_ptr<DvfsPolicy>(const ServiceModel*)>;

  /// One DvfsPolicy instance is created per core (policies are stateful).
  SimServer(EventQueue* events, const ServiceModel* service_model,
            const ServerPowerModel* power_model,
            const PolicyFactory& policy_factory,
            CompletionHandler on_complete);

  /// Enqueues on the least-loaded core (fewest queued requests).
  void submit(const ServerRequest& request);

  /// Completion feedback for feedback policies (TimeTrader): forwarded to
  /// the policy of the core that served the request.
  void report_latency(int core, SimTime now, SimTime latency,
                      SimTime constraint);

  /// ECN-style congestion signal broadcast to every core's policy.
  void signal_network_congestion(bool congested);

  int num_cores() const { return static_cast<int>(cores_.size()); }
  std::size_t queue_length(int core) const;
  std::size_t total_queued() const;

  /// Flushes energy meters up to `now` (call before reading power).
  void sync_energy(SimTime now);
  /// Restarts all energy meters at `now` (discards warmup energy).
  void reset_energy(SimTime now);
  Energy total_cpu_energy() const;
  /// Mean CPU power (cores only, no platform static) over the metered span.
  Power average_cpu_power() const;
  /// Mean busy fraction across cores (measured utilization).
  double average_core_utilization() const;

  /// Core that served the most recent completion (set during the
  /// CompletionHandler callback).
  int last_completion_core() const { return last_completion_core_; }

 private:
  struct Core {
    std::unique_ptr<DvfsPolicy> policy;
    std::vector<ServerRequest> queue;  // [0] in service
    CoreEnergyMeter meter;
    Freq freq = 0.0;
    Work done = 0.0;            // work retired on queue[0]
    SimTime last_progress = 0.0;
    std::uint64_t epoch = 0;    // invalidates stale completion events

    explicit Core(const ServerPowerModel* power) : meter(power) {}
  };

  void advance_progress(Core& core, SimTime now);
  void reselect_and_schedule(int core_index, bool at_departure);
  void complete_head(int core_index, std::uint64_t epoch);
  std::vector<QueuedRequest> snapshot(const Core& core) const;

  EventQueue* events_;
  const ServiceModel* service_model_;
  const ServerPowerModel* power_model_;
  CompletionHandler on_complete_;
  std::vector<Core> cores_;
  int last_completion_core_ = -1;
};

}  // namespace eprons
