#include "sim/search_cluster.h"

#include <algorithm>
#include <stdexcept>

#include "consolidate/greedy_consolidator.h"
#include "obs/telemetry.h"
#include "topo/aggregation.h"
#include "util/log.h"

namespace eprons {

SearchCluster::SearchCluster(const SearchClusterConfig& config,
                             const SearchClusterInputs& inputs)
    : config_(config),
      inputs_(inputs),
      rng_(config.seed),
      latency_(inputs.offered_load, inputs.link_model) {
  ecn_window_ = WindowedPercentile(config_.ecn_window);
  if (!inputs_.topo || !inputs_.service_model || !inputs_.power_model ||
      !inputs_.placement || !inputs_.offered_load) {
    throw std::invalid_argument("search cluster inputs incomplete");
  }
  const int hosts = inputs_.topo->num_hosts();
  if (config_.aggregator_host < 0 || config_.aggregator_host >= hosts) {
    throw std::invalid_argument("aggregator host out of range");
  }
  if (config_.server_budget > config_.latency_constraint) {
    throw std::invalid_argument("server budget exceeds latency constraint");
  }

  // Arrival rate from the utilization target: every query puts one
  // sub-request (mean service s at f_max) on each ISN, which has C cores.
  //   u = lambda * s / C  =>  lambda = u * C / s     (queries per us)
  const SimTime mean_service = inputs_.service_model->mean_service_time(
      inputs_.service_model->config().f_max);
  arrival_rate_ = config_.target_utilization *
                  inputs_.power_model->num_cores() / mean_service;

  if (inputs_.fault_timeline && !inputs_.fault_timeline->empty()) {
    faults_ = std::make_unique<FaultCursor>(&inputs_.topo->graph(),
                                            inputs_.fault_timeline);
    request_down_.assign(static_cast<std::size_t>(hosts), 0);
    reply_down_.assign(static_cast<std::size_t>(hosts), 0);
  }

  servers_.reserve(static_cast<std::size_t>(hosts));
  for (int h = 0; h < hosts; ++h) {
    auto handler = [this, h](const ServerCompletion& completion) {
      on_subquery_complete(h, completion);
    };
    auto factory = [this](const ServiceModel* model) {
      return make_policy(config_.policy, model, config_.target_vp);
    };
    servers_.push_back(std::make_unique<SimServer>(
        &events_, inputs_.service_model, inputs_.power_model, factory,
        handler));
  }
}

Path SearchCluster::path_for(FlowId flow) const {
  const auto& paths = inputs_.placement->flow_paths;
  if (flow < 0 || static_cast<std::size_t>(flow) >= paths.size() ||
      paths[static_cast<std::size_t>(flow)].size() < 2) {
    throw std::invalid_argument("query flow has no routed path");
  }
  return paths[static_cast<std::size_t>(flow)];
}

const Path& SearchCluster::effective_path(FlowId flow) const {
  if (faults_) {
    const auto it = path_override_.find(flow);
    if (it != path_override_.end()) return it->second;
  }
  const auto& paths = inputs_.placement->flow_paths;
  if (flow < 0 || static_cast<std::size_t>(flow) >= paths.size() ||
      paths[static_cast<std::size_t>(flow)].size() < 2) {
    throw std::invalid_argument("query flow has no routed path");
  }
  return paths[static_cast<std::size_t>(flow)];
}

SimTime SearchCluster::drop_penalty() const {
  return config_.fault_drop_penalty > 0.0 ? config_.fault_drop_penalty
                                          : 2.0 * config_.latency_constraint;
}

void SearchCluster::recompute_query_paths() {
  const FailureOverlay& overlay = faults_->overlay();
  const int agg = config_.aggregator_host;
  // Deterministic per-flow rule: keep the planned path while it survives
  // (so a repair restores it exactly), else the leftmost surviving path of
  // the active subnet, else mark the flow down. Ordered host-by-host so
  // the reroute count is identical for any run.
  auto update = [&](FlowId flow, int src_host, int dst_host,
                    std::vector<char>& down, std::size_t slot) {
    const Path& planned = path_for(flow);
    if (!overlay.blocks(planned)) {
      down[slot] = 0;
      path_override_.erase(flow);
      return;
    }
    const std::vector<Path> candidates = inputs_.topo->active_paths(
        src_host, dst_host, inputs_.placement->switch_on);
    for (const Path& candidate : candidates) {
      if (overlay.blocks(candidate)) continue;
      const auto it = path_override_.find(flow);
      if (it == path_override_.end() || it->second != candidate) {
        path_override_[flow] = candidate;
        ++flows_rerouted_;
      }
      down[slot] = 0;
      return;
    }
    down[slot] = 1;
    path_override_.erase(flow);
  };
  for (int h = 0; h < inputs_.topo->num_hosts(); ++h) {
    if (h == agg) continue;
    const auto slot = static_cast<std::size_t>(h);
    update(inputs_.request_flow[slot], agg, h, request_down_, slot);
    update(inputs_.reply_flow[slot], h, agg, reply_down_, slot);
  }
}

void SearchCluster::schedule_next_fault() {
  if (!faults_ || faults_->exhausted()) return;
  const SimTime when = std::max(faults_->next_time(), events_.now());
  events_.schedule(when, [this] {
    faults_->advance_to(events_.now());
    recompute_query_paths();
    schedule_next_fault();
  });
}

void SearchCluster::schedule_next_arrival() {
  const SimTime gap = rng_.exponential(1.0 / arrival_rate_);
  events_.schedule_in(gap, [this] {
    issue_query();
    schedule_next_arrival();
  });
}

void SearchCluster::issue_query() {
  if (config_.max_inflight_queries > 0 &&
      inflight_.size() >= config_.max_inflight_queries) {
    // Saturation guard: refuse before touching the RNG or the query
    // counter, so a bounded run's accepted-query stream is a prefix-stable
    // subsequence of the unbounded run's.
    ++queries_overflowed_;
    return;
  }
  const SimTime now = events_.now();
  const RequestId query = next_query_++;
  const int hosts = inputs_.topo->num_hosts();
  inflight_[query] = PendingQuery{now, hosts - 1, now};

  const SimTime network_budget =
      config_.latency_constraint - config_.server_budget;
  const SimTime request_budget =
      network_budget * config_.request_budget_fraction;

  for (int h = 0; h < hosts; ++h) {
    if (h == config_.aggregator_host) continue;
    if (faults_ && request_down_[static_cast<std::size_t>(h)]) {
      // No surviving path to this ISN: the sub-query is dropped and
      // charged the timeout penalty (always an SLA miss).
      ++subqueries_dropped_;
      events_.schedule_in(drop_penalty(), [this, query] {
        complete_subquery(query, 0.0, 0.0, /*dropped=*/true);
      });
      continue;
    }
    const Path request_path =
        effective_path(inputs_.request_flow[static_cast<std::size_t>(h)]);
    const SimTime net_req = latency_.sample_latency(request_path, rng_);

    ServerRequest request;
    request.meta.id = next_subrequest_++;
    request.tag = query;
    request.net_request_latency = net_req;
    request.work = std::max(1.0, inputs_.service_model->work().sample(rng_));

    events_.schedule_in(net_req, [this, h, request]() mutable {
      const SimTime arrival = events_.now();
      const SimTime network_budget_total =
          config_.latency_constraint - config_.server_budget;
      const SimTime req_budget =
          network_budget_total * config_.request_budget_fraction;
      request.meta.arrival = arrival;
      request.meta.deadline_server = arrival + config_.server_budget;
      // Latency monitor: only unused *request* budget is donated as slack.
      const SimTime slack =
          std::max(0.0, req_budget - request.net_request_latency);
      request.meta.deadline_with_slack =
          request.meta.deadline_server + slack;
      servers_[static_cast<std::size_t>(h)]->submit(request);
    });
    (void)request_budget;
  }
}

SimTime SearchCluster::reply_transmission_time() const {
  const NodeId agg = inputs_.topo->host(config_.aggregator_host);
  const LinkId downlink = inputs_.topo->graph().links_of(agg).front();
  const Bandwidth capacity = inputs_.topo->graph().link(downlink).capacity;
  return config_.reply_bytes * 8.0 / capacity;  // bits / Mbps == us
}

SimTime SearchCluster::effective_warmup() const {
  if (config_.auto_warmup && config_.policy == "timetrader") {
    return std::max(config_.warmup, config_.feedback_warmup);
  }
  return config_.warmup;
}

void SearchCluster::on_subquery_complete(int isn_host,
                                         const ServerCompletion& completion) {
  const SimTime now = completion.completed_at;
  if (faults_ && reply_down_[static_cast<std::size_t>(isn_host)]) {
    // The reply leg is severed: the aggregator times the sub-query out.
    ++subqueries_dropped_;
    const RequestId dropped_query = completion.request.tag;
    events_.schedule(now + drop_penalty(), [this, dropped_query] {
      complete_subquery(dropped_query, 0.0, 0.0, /*dropped=*/true);
    });
    return;
  }
  const Path reply_path =
      effective_path(inputs_.reply_flow[static_cast<std::size_t>(isn_host)]);
  SimTime net_rep = latency_.sample_latency(reply_path, rng_);
  if (config_.model_incast) {
    // The reply queues behind other replies converging on the aggregator's
    // downlink (partition-aggregate incast), then serializes.
    const SimTime tx = reply_transmission_time();
    const SimTime start =
        std::max(now + net_rep, agg_downlink_busy_until_);
    agg_downlink_busy_until_ = start + tx;
    net_rep = (start + tx) - now;
  }
  const SimTime reply_arrival = now + net_rep;

  const RequestId query = completion.request.tag;
  const SimTime server_time = now - completion.request.meta.arrival;
  const SimTime net_total = completion.request.net_request_latency + net_rep;

  // ECN monitor: compare recent network tails against the network budget
  // and broadcast congestion transitions to the servers. The quantile is
  // re-evaluated every ecn_check_stride samples (sorting the window per
  // completion would dominate the simulation).
  if (config_.ecn_monitor) {
    ecn_window_.add(net_total);
    if (++ecn_samples_ % kEcnCheckStride == 0) {
      const SimTime net_budget =
          config_.latency_constraint - config_.server_budget;
      const bool congested =
          ecn_window_.quantile(0.95) > config_.ecn_threshold * net_budget;
      if (congested != ecn_congested_) {
        ecn_congested_ = congested;
        for (auto& server : servers_) {
          server->signal_network_congestion(congested);
        }
      }
    }
  }

  // Feedback for TimeTrader-style policies: this sub-request's end-to-end
  // latency vs the end-to-end constraint.
  const auto it = inflight_.find(query);
  if (it != inflight_.end()) {
    const SimTime subquery_e2e = reply_arrival - it->second.issued;
    servers_[static_cast<std::size_t>(isn_host)]->report_latency(
        servers_[static_cast<std::size_t>(isn_host)]->last_completion_core(),
        now, subquery_e2e, config_.latency_constraint);
  }

  events_.schedule(reply_arrival, [this, query, server_time, net_total] {
    complete_subquery(query, net_total, server_time, /*dropped=*/false);
  });
}

void SearchCluster::complete_subquery(RequestId query, SimTime net_total,
                                      SimTime server_time, bool dropped) {
  const SimTime now2 = events_.now();
  const bool measured = now2 >= effective_warmup();
  if (measured && !dropped) {
    network_latency_.add(net_total);
    server_latency_.add(server_time);
    ++subqueries_done_;
  }
  const auto entry = inflight_.find(query);
  if (entry == inflight_.end()) return;
  if (measured) {
    const SimTime sub_e2e = now2 - entry->second.issued;
    subquery_latency_.add(sub_e2e);
    if (sub_e2e > config_.latency_constraint) {
      ++subquery_misses_;
      // An outage miss: the sub-query was dropped outright, or missed
      // while at least one failure was outstanding.
      if (dropped || (faults_ && faults_->overlay().any_failed())) {
        ++outage_misses_;
      }
    }
  }
  entry->second.last_reply = now2;
  if (--entry->second.outstanding == 0) {
    const SimTime e2e = now2 - entry->second.issued;
    if (entry->second.issued >= effective_warmup()) {
      query_latency_.add(e2e);
      ++queries_done_;
      if (e2e > config_.latency_constraint) ++query_misses_;
    }
    inflight_.erase(entry);
  }
}

ClusterMetrics SearchCluster::run() {
  const obs::ScopedSpan span(obs::tracer(), "sim_run", "sim", "utilization",
                             config_.target_utilization);
  const SimTime warmup = effective_warmup();
  schedule_next_arrival();
  if (faults_) schedule_next_fault();
  events_.run_until(warmup);
  for (auto& server : servers_) server->reset_energy(events_.now());
  events_.run_until(warmup + config_.duration);

  const SimTime end = events_.now();
  ClusterMetrics metrics;
  Power cpu_total = 0.0;
  double util_total = 0.0;
  int isn_count = 0;
  for (int h = 0; h < inputs_.topo->num_hosts(); ++h) {
    auto& server = servers_[static_cast<std::size_t>(h)];
    server->sync_energy(end);
    cpu_total += server->average_cpu_power();
    if (h != config_.aggregator_host) {
      util_total += server->average_core_utilization();
      ++isn_count;
    }
  }
  const int hosts = inputs_.topo->num_hosts();
  const Power static_total =
      hosts * inputs_.power_model->config().static_power;

  metrics.query_latency = summarize(query_latency_);
  metrics.subquery_latency = summarize(subquery_latency_);
  metrics.network_latency = summarize(network_latency_);
  metrics.server_latency = summarize(server_latency_);
  metrics.query_miss_rate =
      queries_done_ == 0
          ? 0.0
          : static_cast<double>(query_misses_) / queries_done_;
  metrics.subquery_miss_rate =
      subquery_latency_.count() == 0
          ? 0.0
          : static_cast<double>(subquery_misses_) / subquery_latency_.count();
  metrics.avg_cpu_power_per_server = cpu_total / hosts;
  metrics.avg_server_power =
      metrics.avg_cpu_power_per_server +
      inputs_.power_model->config().static_power;
  metrics.total_server_power = cpu_total + static_total;
  metrics.network_power = inputs_.network_power;
  metrics.total_system_power =
      metrics.total_server_power + metrics.network_power;
  metrics.measured_core_utilization =
      isn_count == 0 ? 0.0 : util_total / isn_count;
  metrics.queries_completed = queries_done_;
  metrics.subqueries_completed = subqueries_done_;
  metrics.queries_overflowed = queries_overflowed_;
  metrics.flows_rerouted = flows_rerouted_;
  metrics.subqueries_dropped = subqueries_dropped_;
  metrics.outage_sla_misses = outage_misses_;

  // Aggregated once per run (not per DES event) so the event loop stays
  // untouched; the totals themselves are seed-deterministic.
  static obs::Counter& sim_runs = obs::metrics().counter("sim.runs");
  static obs::Counter& sim_queries = obs::metrics().counter("sim.queries");
  static obs::Counter& sim_subqueries =
      obs::metrics().counter("sim.subqueries");
  static obs::Counter& sim_query_misses =
      obs::metrics().counter("sim.query_misses");
  static obs::Counter& sim_subquery_misses =
      obs::metrics().counter("sim.subquery_misses");
  sim_runs.add();
  sim_queries.add(static_cast<std::uint64_t>(queries_done_));
  sim_subqueries.add(static_cast<std::uint64_t>(subqueries_done_));
  sim_query_misses.add(static_cast<std::uint64_t>(query_misses_));
  sim_subquery_misses.add(static_cast<std::uint64_t>(subquery_misses_));
  if (faults_) {
    static obs::Counter& sim_rerouted =
        obs::metrics().counter("fault.flows_rerouted");
    static obs::Counter& sim_dropped =
        obs::metrics().counter("fault.flows_dropped");
    static obs::Counter& sim_outage_misses =
        obs::metrics().counter("fault.sla_violations_during_outage");
    sim_rerouted.add(static_cast<std::uint64_t>(flows_rerouted_));
    sim_dropped.add(static_cast<std::uint64_t>(subqueries_dropped_));
    sim_outage_misses.add(static_cast<std::uint64_t>(outage_misses_));
  }
  return metrics;
}

double query_arrival_rate_per_us(const ServiceModel& service_model,
                                 int cores, double utilization) {
  const SimTime mean_service =
      service_model.mean_service_time(service_model.config().f_max);
  return utilization * cores / mean_service;
}

Bandwidth query_stream_rate(double lambda_per_us, double bytes) {
  return lambda_per_us * bytes * 8.0;
}

LinkUtilization scenario_offered_load(const Graph& graph,
                                      const ConsolidationResult& placement,
                                      const FlowSet& flows,
                                      const std::vector<FlowId>& request_flow,
                                      const std::vector<FlowId>& reply_flow,
                                      Bandwidth request_rate,
                                      Bandwidth reply_rate) {
  std::vector<char> is_request(flows.size(), 0), is_reply(flows.size(), 0);
  for (FlowId id : request_flow) {
    if (id >= 0) is_request[static_cast<std::size_t>(id)] = 1;
  }
  for (FlowId id : reply_flow) {
    if (id >= 0) is_reply[static_cast<std::size_t>(id)] = 1;
  }
  LinkUtilization load(&graph);
  for (std::size_t i = 0; i < flows.size(); ++i) {
    if (i >= placement.flow_paths.size() ||
        placement.flow_paths[i].size() < 2) {
      continue;
    }
    Bandwidth rate = flows[i].demand;
    if (is_request[i]) rate = request_rate;
    if (is_reply[i]) rate = reply_rate;
    const bool bursty = flows[i].cls == FlowClass::LatencyTolerant;
    load.add_path_load(placement.flow_paths[i], rate, bursty);
  }
  return load;
}

ScenarioResult run_search_scenario(const Topology& topo,
                                   const ServiceModel& service_model,
                                   const ServerPowerModel& power_model,
                                   const FlowSet& background,
                                   const ScenarioConfig& config,
                                   const std::vector<bool>* subnet) {
  // Assemble the flow set: background first, then query request/reply flows
  // for the fixed aggregator.
  FlowSet flows;
  for (const Flow& f : background.flows()) {
    flows.add(f.src_host, f.dst_host, f.demand, f.cls);
  }
  const int hosts = topo.num_hosts();
  std::vector<FlowId> request_flow(static_cast<std::size_t>(hosts),
                                   kInvalidFlow);
  std::vector<FlowId> reply_flow(static_cast<std::size_t>(hosts),
                                 kInvalidFlow);
  for (int h = 0; h < hosts; ++h) {
    if (h == config.cluster.aggregator_host) continue;
    request_flow[static_cast<std::size_t>(h)] =
        flows.add(config.cluster.aggregator_host, h,
                  config.query_request_demand, FlowClass::LatencySensitive);
    reply_flow[static_cast<std::size_t>(h)] =
        flows.add(h, config.cluster.aggregator_host,
                  config.query_reply_demand, FlowClass::LatencySensitive);
  }

  ConsolidationConfig consolidation = config.consolidation;
  GreedyConsolidatorOptions placement_options;
  if (subnet) {
    // A pinned subnet fixes network power; spread traffic across it
    // (ECMP-like) instead of consolidating further.
    consolidation.allowed_switches = *subnet;
    placement_options.objective = PlacementObjective::BalanceLoad;
  }
  const GreedyConsolidator consolidator(&topo, placement_options);
  ScenarioResult result;
  result.placement = consolidator.consolidate(flows, consolidation);
  result.placement_feasible = result.placement.feasible;

  const double lambda = query_arrival_rate_per_us(
      service_model, power_model.num_cores(),
      config.cluster.target_utilization);
  const LinkUtilization load = scenario_offered_load(
      topo.graph(), result.placement, flows, request_flow, reply_flow,
      query_stream_rate(lambda, config.cluster.request_bytes),
      query_stream_rate(lambda, config.cluster.reply_bytes));

  SearchClusterInputs inputs;
  inputs.topo = &topo;
  inputs.service_model = &service_model;
  inputs.power_model = &power_model;
  inputs.placement = &result.placement;
  inputs.request_flow = std::move(request_flow);
  inputs.reply_flow = std::move(reply_flow);
  inputs.offered_load = &load;
  // Network power: a pinned subnet keeps all its switches on regardless of
  // routed flows; free consolidation pays only for what it activated.
  if (subnet) {
    inputs.network_power =
        count_active_switches(topo.graph(), *subnet) * config.switch_power;
  } else {
    inputs.network_power =
        result.placement.active_switches * config.switch_power;
  }
  inputs.fault_timeline = config.fault_timeline;

  SearchCluster cluster(config.cluster, inputs);
  result.metrics = cluster.run();
  return result;
}

}  // namespace eprons
