#include "sim/metrics.h"

namespace eprons {

LatencyStats summarize(const PercentileEstimator& estimator) {
  LatencyStats stats;
  stats.count = estimator.count();
  if (stats.count == 0) return stats;
  stats.mean = estimator.mean();
  stats.p50 = estimator.quantile(0.50);
  stats.p95 = estimator.quantile(0.95);
  stats.p99 = estimator.quantile(0.99);
  stats.max = estimator.max();
  return stats;
}

}  // namespace eprons
