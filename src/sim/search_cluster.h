// Partition-aggregate search cluster simulation (the paper's section V-A
// "search engine simulator", rebuilt as a discrete-event simulation).
//
// One host acts as the aggregator; every user query fans out one sub-query
// to each of the other N-1 index-serving nodes (ISNs). Sub-requests and
// sub-replies traverse the network paths chosen by the consolidation layer
// and sample latency from the utilization-dependent link model; each ISN
// runs the configured DVFS policy. A query completes when the last reply
// reaches the aggregator.
//
// Deadline plumbing (section IV-A + Fig. 7): the end-to-end SLA constraint
// L splits into a server budget and a network budget; the network budget
// splits between request and reply. The latency monitor measures each
// sub-request's actual network latency l_req and hands the server
//
//   deadline_server     = arrival + server_budget
//   deadline_with_slack = arrival + server_budget
//                         + max(0, request_net_budget - l_req)
//
// "To be more conservative, we only use the request slack" — the reply
// budget is never borrowed.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "consolidate/consolidation.h"
#include "dvfs/policies.h"
#include "fault/fault_injector.h"
#include "net/path_latency.h"
#include "power/server_power.h"
#include "sim/event_queue.h"
#include "sim/metrics.h"
#include "sim/server.h"
#include "topo/topology.h"
#include "util/rng.h"

namespace eprons {

struct SearchClusterConfig {
  /// DVFS policy on every ISN: "max" | "rubik" | "rubik+" | "eprons" |
  /// "timetrader".
  std::string policy = "eprons";
  double target_vp = 0.05;

  /// End-to-end tail latency constraint L, us (Fig. 12 default: 30 ms).
  SimTime latency_constraint = ms(30.0);
  /// Server-side budget, us (Fig. 12 default: 25 ms).
  SimTime server_budget = ms(25.0);
  /// Fraction of the remaining network budget allotted to the request leg.
  double request_budget_fraction = 0.5;

  /// Target mean core utilization on the ISNs (sets the query arrival rate).
  double target_utilization = 0.3;

  /// Which host aggregates (the paper picks one; ISNs are the rest).
  int aggregator_host = 0;

  /// Model reply incast: the aggregator's edge downlink serializes the
  /// fan-in of replies (partition-aggregate incast). Reply transmission
  /// time is reply_bytes * 8 / downlink capacity; cross-traffic queueing on
  /// the hops themselves is already covered by the link latency model.
  bool model_incast = true;
  double reply_bytes = 2000.0;
  /// Sub-request message size (for offered-load accounting only).
  double request_bytes = 1000.0;

  /// ECN monitor: the cluster tracks recent per-request network latency;
  /// when its p95 exceeds `ecn_threshold` x the network budget, servers
  /// receive a congestion signal (drives TimeTrader's conservatism).
  bool ecn_monitor = true;
  double ecn_threshold = 1.0;
  std::size_t ecn_window = 500;

  /// Latency charged to a sub-query issued (or replied) while its flow has
  /// no surviving path: the query times out and is retried out-of-band.
  /// 0 means 2 x latency_constraint (always an SLA miss).
  SimTime fault_drop_penalty = 0.0;

  /// Open-loop saturation guard: maximum queries simultaneously in flight
  /// (fanned out, replies pending). The closed bench scenarios are
  /// self-limiting, but an open-loop arrival stream above the service rate
  /// would otherwise grow the pending-query map without bound; with the
  /// guard, a query arriving at the bound is refused and counted in
  /// ClusterMetrics::queries_overflowed. 0 = unbounded (legacy behavior).
  std::size_t max_inflight_queries = 0;

  SimTime warmup = sec(2.0);
  SimTime duration = sec(20.0);
  /// Feedback policies converge slowly (TimeTrader adjusts every 5 s);
  /// when true the warmup is extended to `feedback_warmup` for them.
  bool auto_warmup = true;
  SimTime feedback_warmup = sec(300.0);
  std::uint64_t seed = 1;
};

struct SearchClusterInputs {
  const Topology* topo = nullptr;
  const ServiceModel* service_model = nullptr;
  const ServerPowerModel* power_model = nullptr;
  /// Per-ISN request/reply paths + subnet; from a consolidator. Background
  /// flow load must already be included in `offered_load`.
  const ConsolidationResult* placement = nullptr;
  /// Query flow ids within the placement's FlowSet: request_flow[h] is the
  /// aggregator->h flow, reply_flow[h] the h->aggregator flow (index by
  /// host id; aggregator slots unused).
  std::vector<FlowId> request_flow;
  std::vector<FlowId> reply_flow;
  /// Link load to drive the latency model (background + query demands).
  const LinkUtilization* offered_load = nullptr;
  LinkLatencyModel link_model;
  /// Network power reported in metrics (computed by the caller from the
  /// placement and switch power model).
  Power network_power = 0.0;
  /// Optional fault timeline (from generate_fault_schedule) replayed
  /// inside the DES: query flows crossing failed elements are rerouted
  /// onto surviving paths of the active subnet, or dropped when none
  /// exists. Null = healthy run (bit-identical to pre-fault behavior).
  const std::vector<FaultTransition>* fault_timeline = nullptr;
};

class SearchCluster {
 public:
  SearchCluster(const SearchClusterConfig& config,
                const SearchClusterInputs& inputs);

  /// Runs warmup + measurement; returns aggregate metrics.
  ClusterMetrics run();

  /// Query arrival rate (queries/us) implied by the target utilization.
  double arrival_rate() const { return arrival_rate_; }

 private:
  struct PendingQuery {
    SimTime issued = 0.0;
    int outstanding = 0;
    SimTime last_reply = 0.0;
  };

  void issue_query();
  void schedule_next_arrival();
  void on_subquery_complete(int isn_host, const ServerCompletion& completion);
  Path path_for(FlowId flow) const;
  SimTime effective_warmup() const;

  /// Reply-arrival bookkeeping shared by real replies and fault drops.
  void complete_subquery(RequestId query, SimTime net_total,
                         SimTime server_time, bool dropped);
  /// The flow's current path: its fault-reroute override, else the plan's.
  const Path& effective_path(FlowId flow) const;
  /// Re-derives per-flow routes/down flags from the current overlay state.
  void recompute_query_paths();
  void schedule_next_fault();
  SimTime drop_penalty() const;

  /// Serialization delay of one reply crossing the aggregator's edge
  /// downlink, accounting for residual capacity after background load.
  SimTime reply_transmission_time() const;

  SearchClusterConfig config_;
  SearchClusterInputs inputs_;
  EventQueue events_;
  Rng rng_;
  PathLatencyEstimator latency_;
  std::vector<std::unique_ptr<SimServer>> servers_;  // index by host id

  double arrival_rate_ = 0.0;  // queries per us
  RequestId next_query_ = 0;
  RequestId next_subrequest_ = 0;
  std::unordered_map<RequestId, PendingQuery> inflight_;
  std::size_t queries_overflowed_ = 0;

  // Fault replay state (unused when inputs.fault_timeline is null).
  std::unique_ptr<FaultCursor> faults_;
  std::unordered_map<FlowId, Path> path_override_;
  std::vector<char> request_down_;  // by host id
  std::vector<char> reply_down_;
  std::size_t flows_rerouted_ = 0;
  std::size_t subqueries_dropped_ = 0;
  std::size_t outage_misses_ = 0;

  SimTime agg_downlink_busy_until_ = 0.0;
  static constexpr std::size_t kEcnCheckStride = 128;
  WindowedPercentile ecn_window_{500};
  std::size_t ecn_samples_ = 0;
  bool ecn_congested_ = false;

  // Measurement (samples recorded only after warmup).
  PercentileEstimator query_latency_;
  PercentileEstimator subquery_latency_;
  PercentileEstimator network_latency_;
  PercentileEstimator server_latency_;
  std::size_t queries_done_ = 0;
  std::size_t query_misses_ = 0;
  std::size_t subqueries_done_ = 0;
  std::size_t subquery_misses_ = 0;
};

/// Convenience one-call runner used by benches: consolidates background +
/// query flows, wires the inputs, runs the cluster. `background` flows are
/// placed together with the query flows by the greedy consolidator at the
/// given K (or along a fixed aggregation-policy subnet when `subnet` is
/// non-null, in which case consolidation routes within that subnet).
struct ScenarioConfig {
  SearchClusterConfig cluster;
  ConsolidationConfig consolidation;
  /// Demand reserved per query flow direction, Mbps.
  Bandwidth query_request_demand = 10.0;
  Bandwidth query_reply_demand = 20.0;
  /// Per-switch power for metrics, W.
  Power switch_power = 36.0;
  /// Optional fault timeline replayed inside the DES (see
  /// SearchClusterInputs::fault_timeline). Must outlive the run.
  const std::vector<FaultTransition>* fault_timeline = nullptr;
};

struct ScenarioResult {
  ClusterMetrics metrics;
  ConsolidationResult placement;
  bool placement_feasible = false;
};

/// Query arrival rate (queries per us) implied by a utilization target:
/// u = lambda * mean_service(f_max) / cores.
double query_arrival_rate_per_us(const ServiceModel& service_model,
                                 int cores, double utilization);

/// Actual average rate of a per-query message stream, Mbps:
/// lambda (1/us) * bytes * 8 bits == bits/us == Mbps.
Bandwidth query_stream_rate(double lambda_per_us, double bytes);

/// Offered load for the latency model: background flows at their demands,
/// query flows at their *actual* average rates (reservations via the scale
/// factor K affect placement only, mirroring the paper: K reserves
/// headroom, real traffic stays 1x).
LinkUtilization scenario_offered_load(const Graph& graph,
                                      const ConsolidationResult& placement,
                                      const FlowSet& flows,
                                      const std::vector<FlowId>& request_flow,
                                      const std::vector<FlowId>& reply_flow,
                                      Bandwidth request_rate,
                                      Bandwidth reply_rate);

ScenarioResult run_search_scenario(const Topology& topo,
                                   const ServiceModel& service_model,
                                   const ServerPowerModel& power_model,
                                   const FlowSet& background,
                                   const ScenarioConfig& config,
                                   const std::vector<bool>* subnet = nullptr);

}  // namespace eprons
