#include "sim/event_queue.h"

#include <utility>

namespace eprons {

void EventQueue::schedule(SimTime when, Callback callback) {
  if (when < now_) when = now_;
  heap_.push(Entry{when, next_seq_++, std::move(callback)});
}

void EventQueue::schedule_in(SimTime delay, Callback callback) {
  schedule(now_ + (delay > 0.0 ? delay : 0.0), std::move(callback));
}

bool EventQueue::step() {
  if (heap_.empty()) return false;
  // priority_queue::top() is const; the callback must be moved out before
  // pop, so copy the entry (callbacks are cheap shared closures).
  Entry entry = heap_.top();
  heap_.pop();
  now_ = entry.when;
  entry.callback();
  return true;
}

void EventQueue::run_until(SimTime end) {
  while (!heap_.empty() && heap_.top().when <= end) {
    step();
  }
  if (now_ < end) now_ = end;
}

void EventQueue::run_all() {
  while (step()) {
  }
}

}  // namespace eprons
