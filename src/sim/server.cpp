#include "sim/server.h"

#include <algorithm>
#include <cassert>
#include <limits>

#include "obs/telemetry.h"

namespace eprons {

SimServer::SimServer(EventQueue* events, const ServiceModel* service_model,
                     const ServerPowerModel* power_model,
                     const PolicyFactory& policy_factory,
                     CompletionHandler on_complete)
    : events_(events),
      service_model_(service_model),
      power_model_(power_model),
      on_complete_(std::move(on_complete)) {
  cores_.reserve(static_cast<std::size_t>(power_model->num_cores()));
  for (int i = 0; i < power_model->num_cores(); ++i) {
    cores_.emplace_back(power_model);
    cores_.back().policy = policy_factory(service_model);
    // Start metering immediately so idle power before the first request is
    // charged (servers draw idle power from t=0).
    cores_.back().meter.set_state(events_->now(), /*active=*/false, 0.0);
  }
}

std::size_t SimServer::queue_length(int core) const {
  return cores_[static_cast<std::size_t>(core)].queue.size();
}

std::size_t SimServer::total_queued() const {
  std::size_t total = 0;
  for (const Core& core : cores_) total += core.queue.size();
  return total;
}

void SimServer::advance_progress(Core& core, SimTime now) {
  if (!core.queue.empty() && core.freq > 0.0) {
    core.done += service_model_->work_capacity(now - core.last_progress,
                                               core.freq);
    // Round-off can push `done` past the actual work just before the
    // completion event fires; clamp so the residual stays nonnegative.
    core.done = std::min(core.done, core.queue.front().work);
  }
  core.last_progress = now;
}

std::vector<QueuedRequest> SimServer::snapshot(const Core& core) const {
  std::vector<QueuedRequest> view;
  view.reserve(core.queue.size());
  for (const ServerRequest& r : core.queue) view.push_back(r.meta);
  return view;
}

void SimServer::reselect_and_schedule(int core_index, bool at_departure) {
  Core& core = cores_[static_cast<std::size_t>(core_index)];
  const SimTime now = events_->now();
  ++core.epoch;  // cancel any pending completion event

  if (core.queue.empty()) {
    core.freq = 0.0;
    core.meter.set_state(now, /*active=*/false, 0.0);
    return;
  }

  // EDF policies reorder the *waiting* requests; the in-service head stays.
  if (core.policy->reorder_edf() && core.queue.size() > 2) {
    std::stable_sort(core.queue.begin() + 1, core.queue.end(),
                     [](const ServerRequest& a, const ServerRequest& b) {
                       return a.meta.deadline_with_slack <
                              b.meta.deadline_with_slack;
                     });
  }

  const std::vector<QueuedRequest> view = snapshot(core);
  const Work done = at_departure ? 0.0 : core.done;
  core.freq = core.policy->select_frequency(
      now, std::span<const QueuedRequest>(view), done);
  core.meter.set_state(now, /*active=*/true, core.freq);
  // DES hot path: a single wait-free relaxed add per DVFS decision.
  static obs::Counter& freq_selections =
      obs::metrics().counter("sim.dvfs_selections");
  freq_selections.add();

  const Work remaining = core.queue.front().work - core.done;
  const SimTime finish =
      now + service_model_->service_time(std::max(remaining, 0.0), core.freq);
  const std::uint64_t epoch = core.epoch;
  events_->schedule(finish,
                    [this, core_index, epoch] { complete_head(core_index, epoch); });
}

void SimServer::complete_head(int core_index, std::uint64_t epoch) {
  Core& core = cores_[static_cast<std::size_t>(core_index)];
  if (core.epoch != epoch) return;  // superseded by a newer schedule
  const SimTime now = events_->now();
  advance_progress(core, now);
  assert(!core.queue.empty());

  ServerCompletion completion;
  completion.request = core.queue.front();
  completion.completed_at = now;
  core.queue.erase(core.queue.begin());
  core.done = 0.0;

  reselect_and_schedule(core_index, /*at_departure=*/true);

  last_completion_core_ = core_index;
  if (on_complete_) on_complete_(completion);
}

void SimServer::submit(const ServerRequest& request) {
  // Least-loaded core, ties to the lowest index.
  std::size_t best = 0;
  std::size_t best_len = std::numeric_limits<std::size_t>::max();
  for (std::size_t i = 0; i < cores_.size(); ++i) {
    if (cores_[i].queue.size() < best_len) {
      best_len = cores_[i].queue.size();
      best = i;
    }
  }
  Core& core = cores_[best];
  const SimTime now = events_->now();
  advance_progress(core, now);
  const bool was_idle = core.queue.empty();
  core.queue.push_back(request);
  if (was_idle) core.done = 0.0;
  reselect_and_schedule(static_cast<int>(best), /*at_departure=*/was_idle);
}

void SimServer::report_latency(int core, SimTime now, SimTime latency,
                               SimTime constraint) {
  if (core < 0 || core >= num_cores()) return;
  cores_[static_cast<std::size_t>(core)].policy->on_request_complete(
      now, latency, constraint);
}

void SimServer::signal_network_congestion(bool congested) {
  for (Core& core : cores_) core.policy->on_network_congestion(congested);
}

void SimServer::sync_energy(SimTime now) {
  for (Core& core : cores_) core.meter.advance(now);
}

void SimServer::reset_energy(SimTime now) {
  for (Core& core : cores_) core.meter.reset(now);
}

Energy SimServer::total_cpu_energy() const {
  Energy total = 0.0;
  for (const Core& core : cores_) total += core.meter.energy();
  return total;
}

Power SimServer::average_cpu_power() const {
  Power total = 0.0;
  for (const Core& core : cores_) total += core.meter.average_power();
  return total;
}

double SimServer::average_core_utilization() const {
  double total = 0.0;
  int counted = 0;
  for (const Core& core : cores_) {
    const SimTime span = core.meter.total_time();
    if (span > 0.0) {
      total += core.meter.busy_time() / span;
      ++counted;
    }
  }
  return counted == 0 ? 0.0 : total / counted;
}

}  // namespace eprons
