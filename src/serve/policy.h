// Pluggable serving policies: admission, shedding, and routing hints.
//
// The interfaces mirror the kv_cache_sim exemplar's shape — the serving
// harness owns the DES and calls out to small policy objects at three
// decision points, so new policies never touch `src/sim` or the harness:
//
//   * AdmissionPolicy::decide — at each arrival: admit (dispatch or queue)
//     or shed at the door.
//   * ShedPolicy::should_shed — when a queued query reaches the head of the
//     dispatch queue: drop it late (stale) or issue it.
//   * RoutingHint::choose_aggregator — which host fronts the fan-out (the
//     DES currently models one aggregator; the hook exists so multi-front
//     policies slot in without an interface break).
//
// Policies see the planner through PolicySnapshot — a plain-value copy of
// the chosen JointPlan's serving-relevant numbers, refreshed on every epoch
// boundary — so a policy consulting "the planner's predicted slack" reads
// epoch-stable state and stays deterministic for any `--threads`.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "util/types.h"

namespace eprons {

/// Epoch-stable view of the planner's chosen plan, refreshed by the harness
/// after each EpochController::run_epoch.
struct PolicySnapshot {
  int epoch = -1;
  bool have_plan = false;
  bool feasible = false;
  double chosen_k = 0.0;
  /// Network round-trip slack tails from the plan's Monte-Carlo estimate, us.
  SimTime slack_total_p95 = 0.0;
  SimTime slack_total_p99 = 0.0;
  /// Server-side budget after network slack, us (the DVFS layer's target).
  SimTime effective_server_budget = 0.0;
  /// End-to-end SLA the plan was optimized against, us.
  SimTime latency_constraint = 0.0;
  Power predicted_total_w = 0.0;
};

/// Per-arrival context handed to AdmissionPolicy::decide.
struct AdmissionContext {
  SimTime now = 0.0;
  /// Instantaneous offered rate from the arrival generator, queries/s.
  double offered_rate_qps = 0.0;
  /// Queries currently fanned out in the DES.
  int inflight = 0;
  /// Queries waiting in the dispatch queue.
  int queued = 0;
  /// Dispatch-queue capacity (admitting past it drops the oldest wait).
  int queue_limit = 0;
  /// The harness's estimate of the sustainable service rate, queries/s
  /// (cores * hosts / mean service time at the planned frequency).
  double sustainable_rate_qps = 0.0;
  const PolicySnapshot* plan = nullptr;
};

/// Context for a late-shed check when a queued query is about to dispatch.
struct ShedContext {
  SimTime now = 0.0;
  /// When the query was admitted into the dispatch queue.
  SimTime enqueue_time = 0.0;
  SimTime waited = 0.0;
  const PolicySnapshot* plan = nullptr;
};

enum class AdmissionDecision { Admit, Shed };

class AdmissionPolicy {
 public:
  virtual ~AdmissionPolicy() = default;
  virtual AdmissionDecision decide(const AdmissionContext& ctx) = 0;
  /// Epoch boundary notification (refill budgets, re-read the plan, ...).
  virtual void on_epoch(const PolicySnapshot& snapshot) { (void)snapshot; }
  virtual const char* name() const = 0;
};

class ShedPolicy {
 public:
  virtual ~ShedPolicy() = default;
  /// True = drop the queued query instead of issuing it.
  virtual bool should_shed(const ShedContext& ctx) = 0;
  virtual void on_epoch(const PolicySnapshot& snapshot) { (void)snapshot; }
  virtual const char* name() const = 0;
};

class RoutingHint {
 public:
  virtual ~RoutingHint() = default;
  /// Host index fronting the fan-out for this query.
  virtual int choose_aggregator(const AdmissionContext& ctx) = 0;
  virtual const char* name() const = 0;
};

/// Tuning shared by the built-in policies (serve/policies.h); factories take
/// the whole struct so CLI plumbing stays one flag per knob.
struct PolicyConfig {
  /// token-bucket: sustained admission rate, queries/s. 0 = derive from the
  /// harness's sustainable_rate_qps each epoch.
  double bucket_rate_qps = 0.0;
  /// token-bucket: burst capacity, tokens.
  double bucket_burst = 32.0;
  /// token-bucket: additionally shed when the dispatch queue holds more
  /// than this many queries (0 = no queue bound).
  int queue_bound = 64;
  /// sla-aware: shed when expected wait exceeds margin * the planner's
  /// effective server budget.
  double sla_margin = 1.0;
  /// deadline shed: drop queued queries older than this fraction of the
  /// latency constraint.
  double deadline_fraction = 0.5;
};

/// Factories, selectable by name from util/cli (--admission=, --shed=,
/// --routing=). Unknown names throw std::invalid_argument listing the
/// built-ins.
std::unique_ptr<AdmissionPolicy> make_admission_policy(
    const std::string& name, const PolicyConfig& config = {});
std::unique_ptr<ShedPolicy> make_shed_policy(const std::string& name,
                                             const PolicyConfig& config = {});
std::unique_ptr<RoutingHint> make_routing_hint(const std::string& name,
                                               const PolicyConfig& config = {});

/// "always, token-bucket, sla-aware" etc., for CLI error messages.
const char* admission_policy_names();
const char* shed_policy_names();
const char* routing_hint_names();

}  // namespace eprons
