#include "serve/serving_harness.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "dvfs/policies.h"
#include "obs/telemetry.h"
#include "serve/policies.h"
#include "util/log.h"

namespace eprons {
namespace {

constexpr double kUsPerSecond = 1.0e6;
constexpr double kUsPerMinute = 60.0e6;
constexpr double kUjPerJoule = 1.0e6;

}  // namespace

ServingHarness::ServingHarness(const Topology* topo,
                               const ServiceModel* service_model,
                               const ServerPowerModel* power_model,
                               ServingHarnessConfig config)
    : topo_(topo),
      service_model_(service_model),
      power_model_(power_model),
      config_(std::move(config)),
      ctrl_rng_(0),
      bg_rng_(0),
      sim_rng_(0),
      offered_load_(&topo->graph()) {
  if (!topo_ || !service_model_ || !power_model_) {
    throw std::invalid_argument("serving harness inputs incomplete");
  }
  const int hosts = topo_->num_hosts();
  if (config_.aggregator_host < 0 || config_.aggregator_host >= hosts) {
    throw std::invalid_argument("aggregator host out of range");
  }
  if (config_.max_inflight <= 0 || config_.queue_limit < 0) {
    throw std::invalid_argument("serving bounds must be positive");
  }

  // Fixed split order (docs/DETERMINISM.md): controller observations,
  // background draws, DES sampling. The arrival stream has its own seed
  // inside ArrivalStreamConfig.
  Rng base(config_.seed);
  ctrl_rng_ = base.split();
  bg_rng_ = base.split();
  sim_rng_ = base.split();

  if (config_.sink != nullptr) config_.epoch.epoch_log = config_.sink;
  arrivals_ = std::make_unique<ArrivalGenerator>(config_.arrivals);
  controller_ = std::make_unique<EpochController>(topo_, service_model_,
                                                  power_model_, config_.epoch);
  admission_ = make_admission_policy(config_.admission, config_.policy);
  shed_ = make_shed_policy(config_.shed, config_.policy);
  routing_ = make_routing_hint(config_.routing, config_.policy);

  const SimTime mean_service =
      service_model_->mean_service_time(service_model_->config().f_max);
  sustainable_rate_qps_ =
      power_model_->num_cores() / mean_service * kUsPerSecond;

  servers_.reserve(static_cast<std::size_t>(hosts));
  for (int h = 0; h < hosts; ++h) {
    auto handler = [this, h](const ServerCompletion& completion) {
      on_subquery_complete(h, completion);
    };
    auto factory = [this](const ServiceModel* model) {
      return make_policy(config_.server_policy, model, config_.target_vp);
    };
    servers_.push_back(std::make_unique<SimServer>(
        &events_, service_model_, power_model_, factory, handler));
  }
  request_path_.resize(static_cast<std::size_t>(hosts));
  reply_path_.resize(static_cast<std::size_t>(hosts));
}

ServingHarness::~ServingHarness() = default;

AdmissionContext ServingHarness::admission_context(SimTime now) const {
  AdmissionContext ctx;
  ctx.now = now;
  ctx.offered_rate_qps = arrivals_->rate_at(now) * kUsPerSecond;
  ctx.inflight = static_cast<int>(inflight_.size());
  ctx.queued = static_cast<int>(dispatch_queue_.size());
  ctx.queue_limit = config_.queue_limit;
  ctx.sustainable_rate_qps = sustainable_rate_qps_;
  ctx.plan = &snapshot_;
  return ctx;
}

void ServingHarness::adopt_plan_paths() {
  const JointPlan& plan = controller_->last_plan();
  const auto& paths = plan.placement.flow_paths;
  bool changed = false;
  for (int h = 0; h < topo_->num_hosts(); ++h) {
    if (h == config_.aggregator_host) continue;
    const auto slot = static_cast<std::size_t>(h);
    auto planned = [&](FlowId flow) -> const Path* {
      if (flow < 0 || static_cast<std::size_t>(flow) >= paths.size() ||
          paths[static_cast<std::size_t>(flow)].size() < 2) {
        return nullptr;
      }
      return &paths[static_cast<std::size_t>(flow)];
    };
    const Path* req =
        slot < plan.request_flow.size() ? planned(plan.request_flow[slot])
                                        : nullptr;
    const Path* rep =
        slot < plan.reply_flow.size() ? planned(plan.reply_flow[slot])
                                      : nullptr;
    if (req != nullptr && *req != request_path_[slot]) {
      if (!request_path_[slot].empty()) changed = true;
      request_path_[slot] = *req;
    }
    if (rep != nullptr && *rep != reply_path_[slot]) {
      if (!reply_path_[slot].empty()) changed = true;
      reply_path_[slot] = *rep;
    }
    if (request_path_[slot].size() < 2 || reply_path_[slot].size() < 2) {
      throw std::runtime_error("serving plan left a query flow unrouted");
    }
  }

  if (changed && config_.reconfig_penalty > 0.0) {
    // Reprogramming forwarding rules under traffic: every query currently
    // in flight straddles the reconfiguration and pays the penalty once.
    for (auto& [id, pending] : inflight_) {
      if (pending.penalized) continue;
      pending.penalty += config_.reconfig_penalty;
      pending.penalized = true;
      ++window_.transition_penalized;
      ++report_.transition_penalized;
    }
  }
  // New epoch: queries issued from here on may be penalized by the *next*
  // transition.
  for (auto& [id, pending] : inflight_) pending.penalized = false;
}

void ServingHarness::begin_epoch() {
  const SimTime now = events_.now();
  accrue_fixed_energy(now);
  ++epoch_index_;

  // Diurnal operating point at the epoch start.
  const double day = config_.arrivals.diurnal.minutes * kUsPerMinute;
  double pos = std::fmod(now + config_.arrivals.diurnal_start, day);
  if (pos < 0.0) pos += day;
  const int minute = std::min(config_.arrivals.diurnal.minutes - 1,
                              static_cast<int>(pos / kUsPerMinute));
  const double shape = diurnal_shape(config_.arrivals.diurnal, minute);
  const double bg_level =
      config_.arrivals.diurnal.background_trough +
      (config_.arrivals.diurnal.background_peak -
       config_.arrivals.diurnal.background_trough) *
          shape;
  const FlowSet background =
      make_background_flows(config_.flow_gen, config_.background_flows,
                            bg_level, config_.background_jitter, bg_rng_);

  // Planner utilization input from the arrival stream's expected rate over
  // the coming epoch: u = lambda * mean_service / cores (per ISN — every
  // query lands one subquery on each ISN).
  const SimTime epoch_len = config_.epoch.transition.epoch_length;
  const SimTime epoch_end =
      std::min(now + epoch_len, config_.arrivals.horizon);
  const double expected =
      arrivals_->integrated_rate(now, std::max(epoch_end, now + 1.0));
  const double lambda =
      epoch_end > now ? expected / (epoch_end - now) : 0.0;  // per us
  const SimTime mean_service =
      service_model_->mean_service_time(service_model_->config().f_max);
  const double utilization =
      std::clamp(lambda * mean_service / power_model_->num_cores(),
                 config_.min_utilization, config_.max_utilization);

  const EpochReport report =
      controller_->run_epoch(background, utilization, ctrl_rng_);
  if (!controller_->has_plan()) {
    throw std::runtime_error("epoch controller produced no plan");
  }
  const JointPlan& plan = controller_->last_plan();

  adopt_plan_paths();

  // Offered load for the latency model: the plan's placement at the
  // arrival stream's actual expected message rates.
  offered_load_ = scenario_offered_load(
      topo_->graph(), plan.placement, plan.flows, plan.request_flow,
      plan.reply_flow, query_stream_rate(lambda, config_.request_bytes),
      query_stream_rate(lambda, config_.reply_bytes));
  latency_ =
      std::make_unique<PathLatencyEstimator>(&offered_load_,
                                             LinkLatencyModel{});
  network_power_w_ = report.network_power;

  snapshot_.epoch = epoch_index_;
  snapshot_.have_plan = true;
  snapshot_.feasible = plan.feasible;
  snapshot_.chosen_k = plan.k;
  snapshot_.slack_total_p95 = report.slack_total_p95;
  snapshot_.slack_total_p99 = report.slack_total_p99;
  snapshot_.effective_server_budget = plan.effective_server_budget;
  snapshot_.latency_constraint = config_.epoch.joint.latency_constraint;
  snapshot_.predicted_total_w = report.predicted_total;
  admission_->on_epoch(snapshot_);
  shed_->on_epoch(snapshot_);

  EPRONS_LOG(Info) << "serving epoch " << epoch_index_ << ": lambda "
                   << lambda * kUsPerSecond << " qps, utilization "
                   << utilization << ", K " << plan.k
                   << (plan.feasible ? "" : " (infeasible)");
}

void ServingHarness::schedule_next_arrival() {
  const SimTime when = arrivals_->next();
  if (when >= config_.arrivals.horizon) return;  // kNoTime past horizon
  events_.schedule(when, [this] {
    on_arrival();
    schedule_next_arrival();
  });
}

void ServingHarness::on_arrival() {
  const SimTime now = events_.now();
  ++window_.arrivals;
  ++report_.arrivals;

  const AdmissionContext ctx = admission_context(now);
  if (admission_->decide(ctx) == AdmissionDecision::Shed) {
    ++window_.shed;
    ++report_.shed;
    return;
  }
  if (static_cast<int>(inflight_.size()) < config_.max_inflight) {
    ++window_.admitted;
    ++report_.admitted;
    fan_out(now);
    return;
  }
  if (static_cast<int>(dispatch_queue_.size()) >= config_.queue_limit) {
    ++window_.dropped;
    ++report_.dropped;
    return;
  }
  ++window_.admitted;
  ++report_.admitted;
  ++window_.queued;
  ++report_.queued;
  dispatch_queue_.push_back(QueuedArrival{now});
}

void ServingHarness::fan_out(SimTime arrived) {
  const SimTime now = events_.now();
  const RequestId query = next_query_++;
  const int hosts = topo_->num_hosts();
  PendingQuery pending;
  pending.arrived = arrived;
  pending.issued = now;
  pending.outstanding = hosts - 1;
  pending.epoch_issued = epoch_index_;
  inflight_[query] = pending;

  const SimTime constraint = config_.epoch.joint.latency_constraint;
  const SimTime server_budget =
      snapshot_.effective_server_budget > 0.0
          ? snapshot_.effective_server_budget
          : config_.epoch.joint.server_budget;
  const SimTime network_budget = std::max(0.0, constraint - server_budget);
  const SimTime request_budget = network_budget * 0.5;

  (void)routing_->choose_aggregator(admission_context(now));
  for (int h = 0; h < hosts; ++h) {
    if (h == config_.aggregator_host) continue;
    const SimTime net_req =
        latency_->sample_latency(request_path_[static_cast<std::size_t>(h)],
                                 sim_rng_);
    ServerRequest request;
    request.meta.id = next_subrequest_++;
    request.tag = static_cast<std::int64_t>(query);
    request.net_request_latency = net_req;
    request.work = std::max(1.0, service_model_->work().sample(sim_rng_));

    events_.schedule_in(net_req, [this, h, request, server_budget,
                                  request_budget]() mutable {
      const SimTime arrival = events_.now();
      request.meta.arrival = arrival;
      request.meta.deadline_server = arrival + server_budget;
      const SimTime slack =
          std::max(0.0, request_budget - request.net_request_latency);
      request.meta.deadline_with_slack = request.meta.deadline_server + slack;
      servers_[static_cast<std::size_t>(h)]->submit(request);
    });
  }
}

void ServingHarness::drain_dispatch_queue() {
  const SimTime now = events_.now();
  while (!dispatch_queue_.empty() &&
         static_cast<int>(inflight_.size()) < config_.max_inflight) {
    const QueuedArrival head = dispatch_queue_.front();
    ShedContext ctx;
    ctx.now = now;
    ctx.enqueue_time = head.enqueued;
    ctx.waited = now - head.enqueued;
    ctx.plan = &snapshot_;
    if (shed_->should_shed(ctx)) {
      dispatch_queue_.pop_front();
      ++window_.late_shed;
      ++report_.late_shed;
      continue;
    }
    dispatch_queue_.pop_front();
    fan_out(head.enqueued);
  }
}

SimTime ServingHarness::reply_transmission_time() const {
  const NodeId agg = topo_->host(config_.aggregator_host);
  const LinkId downlink = topo_->graph().links_of(agg).front();
  const Bandwidth capacity = topo_->graph().link(downlink).capacity;
  return config_.reply_bytes * 8.0 / capacity;  // bits / Mbps == us
}

void ServingHarness::on_subquery_complete(int isn_host,
                                          const ServerCompletion& completion) {
  const SimTime now = completion.completed_at;
  SimTime net_rep = latency_->sample_latency(
      reply_path_[static_cast<std::size_t>(isn_host)], sim_rng_);
  if (config_.model_incast) {
    const SimTime tx = reply_transmission_time();
    const SimTime start = std::max(now + net_rep, agg_downlink_busy_until_);
    agg_downlink_busy_until_ = start + tx;
    net_rep = (start + tx) - now;
  }
  const RequestId query = static_cast<RequestId>(completion.request.tag);
  events_.schedule(now + net_rep, [this, query] { finish_subquery(query); });
}

void ServingHarness::finish_subquery(RequestId query) {
  const auto entry = inflight_.find(query);
  if (entry == inflight_.end()) return;
  const SimTime now = events_.now();

  // The SLA object is the per-sub-request tail (the paper's violation
  // probability), measured from fan-out to reply arrival, matching
  // ClusterMetrics::subquery_miss_rate in the closed-loop DES. The
  // query-level max-over-fan-out only feeds the latency percentiles.
  ++window_.subqueries;
  ++report_.subqueries_completed;
  if (now - entry->second.issued > config_.epoch.joint.latency_constraint) {
    ++window_.sla_misses;
    ++report_.sla_misses;
  }

  if (--entry->second.outstanding > 0) return;

  const SimTime e2e = (now - entry->second.arrived) + entry->second.penalty;
  inflight_.erase(entry);

  ++window_.completed;
  ++report_.completed;
  window_latency_.add(e2e);
  total_latency_.add(e2e);
  drain_dispatch_queue();
}

void ServingHarness::accrue_fixed_energy(SimTime now) {
  const double hosts = static_cast<double>(topo_->num_hosts());
  const double static_w = power_model_->config().static_power;
  fixed_energy_uj_ +=
      (static_w * hosts + network_power_w_) * (now - energy_mark_);
  energy_mark_ = now;
}

void ServingHarness::emit_window(SimTime window_end) {
  accrue_fixed_energy(window_end);
  double cpu_uj = 0.0;
  for (auto& server : servers_) {
    server->sync_energy(window_end);
    cpu_uj += server->total_cpu_energy();
  }
  const double window_cpu_uj = cpu_uj - cpu_energy_mark_uj_;
  cpu_energy_mark_uj_ = cpu_uj;
  const double window_energy_j =
      (window_cpu_uj + fixed_energy_uj_) / kUjPerJoule;
  fixed_energy_uj_ = 0.0;
  report_.total_energy_j += window_energy_j;

  window_.window = window_index_;
  window_.epoch = epoch_index_;
  window_.window_start_us = window_start_;
  window_.window_end_us = window_end;
  const SimTime span = window_end - window_start_;
  window_.offered_qps =
      span > 0.0
          ? arrivals_->integrated_rate(window_start_, window_end) / span *
                kUsPerSecond
          : 0.0;
  window_.latency_p50_us = window_latency_.quantile(0.50);
  window_.latency_p95_us = window_latency_.quantile(0.95);
  window_.latency_p99_us = window_latency_.quantile(0.99);
  window_.energy_per_admitted_j =
      window_.admitted > 0
          ? window_energy_j / static_cast<double>(window_.admitted)
          : 0.0;

  obs::JsonlWriter* sink =
      config_.sink != nullptr ? config_.sink : obs::epoch_log();
  if (sink != nullptr) sink->write(window_);
  report_.windows.push_back(window_);

  // Reset per-window state.
  window_ = obs::ServingWindowRecord{};
  window_latency_.clear();
  window_start_ = window_end;
  ++window_index_;
}

ServingReport ServingHarness::run() {
  const obs::ScopedSpan span(obs::tracer(), "serving_run", "serve",
                             "horizon_s",
                             config_.arrivals.horizon / kUsPerSecond);
  const SimTime horizon = config_.arrivals.horizon;
  const SimTime epoch_len = config_.epoch.transition.epoch_length;
  const SimTime window_len = config_.report_window;
  if (epoch_len <= 0.0 || window_len <= 0.0 || horizon <= 0.0) {
    throw std::invalid_argument("serving horizon/epoch/window must be > 0");
  }

  begin_epoch();  // epoch 0 plans before the first arrival
  schedule_next_arrival();

  SimTime t = 0.0;
  int next_epoch = 1;
  int next_window = 1;
  while (t < horizon) {
    const SimTime epoch_at = next_epoch * epoch_len;
    const SimTime window_at = next_window * window_len;
    const SimTime target = std::min({epoch_at, window_at, horizon});
    events_.run_until(target);
    t = target;
    if (t == window_at || t == horizon) {
      emit_window(t);
      next_window = static_cast<int>(t / window_len) + 1;
    }
    if (t == epoch_at && t < horizon) {
      begin_epoch();
      ++next_epoch;
    }
  }

  report_.epochs = controller_->epochs_run();
  report_.latency = summarize(total_latency_);
  report_.energy_per_admitted_j =
      report_.admitted > 0
          ? report_.total_energy_j / static_cast<double>(report_.admitted)
          : 0.0;

  static obs::Counter& serve_runs = obs::metrics().counter("serve.runs");
  static obs::Counter& serve_arrivals =
      obs::metrics().counter("serve.arrivals");
  static obs::Counter& serve_admitted =
      obs::metrics().counter("serve.admitted");
  static obs::Counter& serve_shed = obs::metrics().counter("serve.shed");
  static obs::Counter& serve_dropped =
      obs::metrics().counter("serve.dropped");
  static obs::Counter& serve_completed =
      obs::metrics().counter("serve.completed");
  serve_runs.add();
  serve_arrivals.add(static_cast<std::uint64_t>(report_.arrivals));
  serve_admitted.add(static_cast<std::uint64_t>(report_.admitted));
  serve_shed.add(static_cast<std::uint64_t>(report_.shed));
  serve_dropped.add(static_cast<std::uint64_t>(report_.dropped));
  serve_completed.add(static_cast<std::uint64_t>(report_.completed));
  return report_;
}

}  // namespace eprons
