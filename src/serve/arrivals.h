// Open-loop arrival streams for the serving harness.
//
// The ROADMAP's serving-mode north star needs traffic that looks like
// "millions of users" rather than a closed bench loop: a diurnal baseline
// (reusing trace/diurnal's Fig. 14 shape), short bursty rate excursions,
// and rare flash-crowd events that multiply the arrival rate for minutes.
// The generator composes the three into one time-varying rate
//
//   lambda(t) = peak_rate * diurnal_level(t) * burst_factor(t)
//               * flash_factor(t)
//
// and draws an inhomogeneous Poisson process from it by Lewis-Shedler
// thinning against the precomputed rate ceiling.
//
// Determinism contract (docs/DETERMINISM.md): one seed expands into three
// dedicated Rng::split streams — flash-crowd placement, burst timeline,
// arrival thinning — consumed in fixed construction order. The burst and
// flash timelines are materialized up front, so rate_at()/integrated_rate()
// are pure functions of the config and the stream of arrival times is
// byte-identical for any `--threads` value (generation is serial; the
// planner's worker count never touches these streams).
#pragma once

#include <vector>

#include "trace/diurnal.h"
#include "util/rng.h"
#include "util/types.h"

namespace eprons {

/// Markov-modulated burst noise: the rate is multiplied by `multiplier`
/// while a burst is on; on/off dwell times are exponential.
struct BurstNoiseConfig {
  bool enabled = true;
  /// Rate multiplier while a burst is active (>= 1).
  double multiplier = 1.8;
  /// Mean burst duration, us.
  SimTime mean_on = sec(20.0);
  /// Mean gap between bursts, us.
  SimTime mean_off = sec(120.0);
};

/// Flash crowds: rare events that ramp the rate up to `magnitude` x the
/// baseline, hold it, then ramp back down. The envelope is piecewise
/// linear, so the composed rate integrates exactly (integrated_rate()).
struct FlashCrowdConfig {
  bool enabled = true;
  /// Expected events per modeled hour (the count is Poisson over the
  /// horizon; 0 disables without touching the stream split order).
  double events_per_hour = 1.0;
  /// Peak multiplier drawn from a bounded Pareto on [min, max].
  double magnitude_min = 3.0;
  double magnitude_max = 8.0;
  double magnitude_alpha = 1.5;
  /// Linear ramp-up / full-magnitude hold / linear ramp-down, us.
  SimTime ramp = sec(30.0);
  SimTime hold = sec(90.0);
  SimTime decay = sec(180.0);
};

struct ArrivalStreamConfig {
  /// Modeled serving horizon, us (next() returns kNoTime past it).
  SimTime horizon = sec(7200.0);
  /// Arrival rate at the diurnal peak (burst/flash factors at 1),
  /// queries per second.
  double peak_rate_qps = 40.0;
  /// Diurnal baseline shape; search_trough/search_peak bound the level and
  /// the noiseless minute-level shape is evaluated directly (noise is the
  /// burst process's job here).
  DiurnalTraceConfig diurnal;
  /// Offset into the diurnal day at t = 0, us (e.g. start mid-morning).
  SimTime diurnal_start = 0.0;
  BurstNoiseConfig burst;
  FlashCrowdConfig flash;
  std::uint64_t seed = 1;
};

/// One placed flash-crowd event (piecewise-linear envelope).
struct FlashCrowdEvent {
  SimTime start = 0.0;
  SimTime ramp = 0.0;
  SimTime hold = 0.0;
  SimTime decay = 0.0;
  /// Peak rate multiplier at full envelope (>= 1).
  double magnitude = 1.0;

  SimTime end() const { return start + ramp + hold + decay; }
  /// Envelope value in [0, 1] at absolute time `t`.
  double envelope(SimTime t) const;
};

class ArrivalGenerator {
 public:
  explicit ArrivalGenerator(const ArrivalStreamConfig& config);

  /// Next arrival time (strictly increasing), or kNoTime once the horizon
  /// is exhausted.
  SimTime next();

  /// Instantaneous arrival rate, queries per us. Pure function of the
  /// config (timelines are fixed at construction).
  double rate_at(SimTime t) const;

  /// Exact integral of rate_at over [a, b] (expected arrivals in the
  /// window): the rate is piecewise linear between breakpoints, so the
  /// midpoint rule per piece is exact.
  double integrated_rate(SimTime a, SimTime b) const;

  /// The thinning ceiling, queries per us (rate_at(t) <= max_rate()).
  double max_rate() const { return max_rate_; }

  const ArrivalStreamConfig& config() const { return config_; }
  /// Placed flash-crowd events, sorted by start time.
  const std::vector<FlashCrowdEvent>& flash_events() const {
    return flash_events_;
  }
  /// Burst on/off toggle times: bursts are active on
  /// [toggles[2i], toggles[2i+1]).
  const std::vector<SimTime>& burst_toggles() const { return burst_toggles_; }

 private:
  /// Diurnal level in [search_trough, search_peak] at absolute time `t`
  /// (piecewise constant per trace minute).
  double diurnal_level(SimTime t) const;
  double burst_factor(SimTime t) const;
  double flash_factor(SimTime t) const;
  /// Sorted breakpoints of the piecewise-linear rate within [a, b].
  void collect_breakpoints(SimTime a, SimTime b,
                           std::vector<SimTime>* out) const;

  ArrivalStreamConfig config_;
  std::vector<FlashCrowdEvent> flash_events_;
  std::vector<SimTime> burst_toggles_;
  double max_rate_ = 0.0;  // queries per us
  Rng thin_rng_;
  SimTime t_ = 0.0;
  bool exhausted_ = false;
};

}  // namespace eprons
