#include "serve/policies.h"

#include <algorithm>
#include <stdexcept>

namespace eprons {

AdmissionDecision TokenBucketPolicy::decide(const AdmissionContext& ctx) {
  // Refill from the configured rate, or track the harness's sustainable
  // rate when the config leaves it at 0 (auto).
  double rate = refill_rate_;
  if (config_.bucket_rate_qps > 0.0) {
    rate = config_.bucket_rate_qps / 1.0e6;
  } else if (rate <= 0.0) {
    rate = ctx.sustainable_rate_qps / 1.0e6;
  }
  const SimTime dt = ctx.now - last_refill_;
  if (dt > 0.0) {
    tokens_ = std::min(config_.bucket_burst, tokens_ + rate * dt);
    last_refill_ = ctx.now;
  }
  if (config_.queue_bound > 0 && ctx.queued >= config_.queue_bound) {
    return AdmissionDecision::Shed;
  }
  if (tokens_ < 1.0) return AdmissionDecision::Shed;
  tokens_ -= 1.0;
  return AdmissionDecision::Admit;
}

void TokenBucketPolicy::on_epoch(const PolicySnapshot& snapshot) {
  (void)snapshot;
  // The auto refill rate re-derives from the next arrival's context (the
  // sustainable rate may change with the plan's frequency choice); nothing
  // to do beyond clearing the cached value.
  if (config_.bucket_rate_qps <= 0.0) refill_rate_ = 0.0;
}

AdmissionDecision SlaAwareAdmissionPolicy::decide(const AdmissionContext& ctx) {
  if (ctx.plan == nullptr || !ctx.plan->have_plan ||
      ctx.sustainable_rate_qps <= 0.0) {
    return AdmissionDecision::Admit;  // nothing to consult yet
  }
  // Expected wait for this query: the backlog ahead of it drained at the
  // sustainable rate. Compare against what the planner left for the server
  // side of the SLA.
  const double backlog = static_cast<double>(ctx.inflight + ctx.queued + 1);
  const SimTime expected_wait =
      backlog / (ctx.sustainable_rate_qps / 1.0e6);
  double margin = config_.sla_margin;
  if (!ctx.plan->feasible) margin *= 0.5;
  const SimTime budget = ctx.plan->effective_server_budget > 0.0
                             ? ctx.plan->effective_server_budget
                             : ctx.plan->latency_constraint;
  return expected_wait > margin * budget ? AdmissionDecision::Shed
                                         : AdmissionDecision::Admit;
}

bool DeadlineShedPolicy::should_shed(const ShedContext& ctx) {
  const SimTime constraint =
      ctx.plan != nullptr && ctx.plan->latency_constraint > 0.0
          ? ctx.plan->latency_constraint
          : ms(30.0);
  return ctx.waited > config_.deadline_fraction * constraint;
}

std::unique_ptr<AdmissionPolicy> make_admission_policy(
    const std::string& name, const PolicyConfig& config) {
  if (name == "always") return std::make_unique<AlwaysAdmitPolicy>();
  if (name == "token-bucket") {
    return std::make_unique<TokenBucketPolicy>(config);
  }
  if (name == "sla-aware") {
    return std::make_unique<SlaAwareAdmissionPolicy>(config);
  }
  throw std::invalid_argument("unknown admission policy '" + name +
                              "' (built-ins: " + admission_policy_names() +
                              ")");
}

std::unique_ptr<ShedPolicy> make_shed_policy(const std::string& name,
                                             const PolicyConfig& config) {
  if (name == "never") return std::make_unique<NeverShedPolicy>();
  if (name == "deadline") return std::make_unique<DeadlineShedPolicy>(config);
  throw std::invalid_argument("unknown shed policy '" + name +
                              "' (built-ins: " + shed_policy_names() + ")");
}

std::unique_ptr<RoutingHint> make_routing_hint(const std::string& name,
                                               const PolicyConfig& config) {
  (void)config;
  if (name == "static") return std::make_unique<StaticRoutingHint>();
  throw std::invalid_argument("unknown routing hint '" + name +
                              "' (built-ins: " + routing_hint_names() + ")");
}

const char* admission_policy_names() {
  return "always, token-bucket, sla-aware";
}
const char* shed_policy_names() { return "never, deadline"; }
const char* routing_hint_names() { return "static"; }

}  // namespace eprons
