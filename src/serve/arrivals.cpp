#include "serve/arrivals.h"

#include <algorithm>
#include <cmath>

namespace eprons {
namespace {

constexpr double kUsPerSecond = 1.0e6;
constexpr double kUsPerMinute = 60.0e6;

}  // namespace

double FlashCrowdEvent::envelope(SimTime t) const {
  const double dt = t - start;
  if (dt < 0.0 || dt >= ramp + hold + decay) return 0.0;
  if (dt < ramp) return ramp > 0.0 ? dt / ramp : 1.0;
  if (dt < ramp + hold) return 1.0;
  const double into_decay = dt - ramp - hold;
  return decay > 0.0 ? 1.0 - into_decay / decay : 0.0;
}

ArrivalGenerator::ArrivalGenerator(const ArrivalStreamConfig& config)
    : config_(config), thin_rng_(0) {
  // Fixed split order — the determinism contract. Each composed process
  // owns a stream, so toggling one process never perturbs the others.
  Rng base(config_.seed);
  Rng flash_rng = base.split();
  Rng burst_rng = base.split();
  thin_rng_ = base.split();

  if (config_.flash.enabled && config_.flash.events_per_hour > 0.0 &&
      config_.horizon > 0.0) {
    const double hours = config_.horizon / (3600.0 * kUsPerSecond);
    const std::int64_t count =
        flash_rng.poisson(config_.flash.events_per_hour * hours);
    std::vector<SimTime> starts;
    starts.reserve(static_cast<std::size_t>(count));
    for (std::int64_t i = 0; i < count; ++i) {
      starts.push_back(flash_rng.uniform(0.0, config_.horizon));
    }
    std::sort(starts.begin(), starts.end());
    flash_events_.reserve(starts.size());
    for (SimTime start : starts) {
      FlashCrowdEvent event;
      event.start = start;
      event.ramp = config_.flash.ramp;
      event.hold = config_.flash.hold;
      event.decay = config_.flash.decay;
      event.magnitude = flash_rng.bounded_pareto(config_.flash.magnitude_alpha,
                                                 config_.flash.magnitude_min,
                                                 config_.flash.magnitude_max);
      flash_events_.push_back(event);
    }
  }

  if (config_.burst.enabled && config_.burst.multiplier > 1.0) {
    // Alternating off/on dwell times; the walk starts in the off state, so
    // toggles[2i] opens a burst and toggles[2i+1] closes it. A trailing odd
    // toggle means the last burst runs to the horizon.
    SimTime t = 0.0;
    bool on = false;
    while (true) {
      t += burst_rng.exponential(on ? config_.burst.mean_on
                                    : config_.burst.mean_off);
      if (t >= config_.horizon) break;
      burst_toggles_.push_back(t);
      on = !on;
    }
  }

  // Thinning ceiling: every factor at its maximum. Flash excursions are
  // additive in (magnitude - 1), so overlapping events stay under the sum.
  double flash_excess = 0.0;
  for (const FlashCrowdEvent& event : flash_events_) {
    flash_excess += event.magnitude - 1.0;
  }
  const double burst_peak =
      (config_.burst.enabled && config_.burst.multiplier > 1.0)
          ? config_.burst.multiplier
          : 1.0;
  max_rate_ = (config_.peak_rate_qps / kUsPerSecond) *
              config_.diurnal.search_peak * burst_peak * (1.0 + flash_excess);
}

double ArrivalGenerator::diurnal_level(SimTime t) const {
  const double day = config_.diurnal.minutes * kUsPerMinute;
  double pos = std::fmod(t + config_.diurnal_start, day);
  if (pos < 0.0) pos += day;
  const int minute = std::min(config_.diurnal.minutes - 1,
                              static_cast<int>(pos / kUsPerMinute));
  const double shape = diurnal_shape(config_.diurnal, minute);
  return config_.diurnal.search_trough +
         (config_.diurnal.search_peak - config_.diurnal.search_trough) * shape;
}

double ArrivalGenerator::burst_factor(SimTime t) const {
  // Toggles are sorted; an odd number of toggles at or before t means a
  // burst is open.
  const auto it =
      std::upper_bound(burst_toggles_.begin(), burst_toggles_.end(), t);
  const std::size_t crossed =
      static_cast<std::size_t>(it - burst_toggles_.begin());
  return (crossed % 2 == 1) ? config_.burst.multiplier : 1.0;
}

double ArrivalGenerator::flash_factor(SimTime t) const {
  double factor = 1.0;
  for (const FlashCrowdEvent& event : flash_events_) {
    if (event.start > t) break;  // sorted by start
    factor += (event.magnitude - 1.0) * event.envelope(t);
  }
  return factor;
}

double ArrivalGenerator::rate_at(SimTime t) const {
  if (t < 0.0 || t >= config_.horizon) return 0.0;
  return (config_.peak_rate_qps / kUsPerSecond) * diurnal_level(t) *
         burst_factor(t) * flash_factor(t);
}

void ArrivalGenerator::collect_breakpoints(SimTime a, SimTime b,
                                           std::vector<SimTime>* out) const {
  out->clear();
  out->push_back(a);
  out->push_back(b);
  // Diurnal minute boundaries (rate is constant within a minute).
  const double first_minute = std::ceil(a / kUsPerMinute);
  for (double m = first_minute; m * kUsPerMinute < b; m += 1.0) {
    out->push_back(m * kUsPerMinute);
  }
  for (SimTime toggle : burst_toggles_) {
    if (toggle > a && toggle < b) out->push_back(toggle);
  }
  for (const FlashCrowdEvent& event : flash_events_) {
    const SimTime edges[4] = {event.start, event.start + event.ramp,
                              event.start + event.ramp + event.hold,
                              event.end()};
    for (SimTime edge : edges) {
      if (edge > a && edge < b) out->push_back(edge);
    }
  }
  std::sort(out->begin(), out->end());
  out->erase(std::unique(out->begin(), out->end()), out->end());
}

double ArrivalGenerator::integrated_rate(SimTime a, SimTime b) const {
  a = std::max(a, 0.0);
  b = std::min(b, config_.horizon);
  if (b <= a) return 0.0;
  std::vector<SimTime> points;
  collect_breakpoints(a, b, &points);
  // Between consecutive breakpoints every factor is constant except the
  // flash envelopes, which are linear — so the rate is linear and the
  // midpoint rule is exact. Midpoints are strictly inside each piece, which
  // also sidesteps step-factor ambiguity at the breakpoints themselves.
  double total = 0.0;
  for (std::size_t i = 0; i + 1 < points.size(); ++i) {
    const SimTime lo = points[i];
    const SimTime hi = points[i + 1];
    const SimTime mid = lo + (hi - lo) / 2.0;
    total += rate_at(mid) * (hi - lo);
  }
  return total;
}

SimTime ArrivalGenerator::next() {
  if (exhausted_) return kNoTime;
  // Lewis-Shedler thinning: candidate gaps from the homogeneous ceiling
  // process, accepted with probability rate(t)/max_rate.
  while (true) {
    if (max_rate_ <= 0.0) {
      exhausted_ = true;
      return kNoTime;
    }
    t_ += thin_rng_.exponential(1.0 / max_rate_);
    if (t_ >= config_.horizon) {
      exhausted_ = true;
      return kNoTime;
    }
    if (thin_rng_.uniform() * max_rate_ < rate_at(t_)) return t_;
  }
}

}  // namespace eprons
