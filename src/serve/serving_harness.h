// Open-loop serving harness: long-running DES serving driven by an
// ArrivalGenerator, re-planned by the EpochController on epoch boundaries.
//
// The closed bench scenarios (sim/search_cluster) derive their arrival
// rate from a utilization target — the load can never outrun the servers.
// This harness inverts the coupling for the ROADMAP's serving-mode goal:
// arrivals come from an external open-loop stream (diurnal x burst x
// flash-crowd, serve/arrivals.h) and are never gated on completions, so
// overload is a real state the policy layer (serve/policy.h) must manage.
//
// Per query: AdmissionPolicy -> fan out to every ISN (or park in a bounded
// dispatch queue when max_inflight is reached; ShedPolicy may drop stale
// entries at dispatch time) -> per-subquery network latency from the
// current plan's paths -> SimServer DVFS service -> reply + incast
// serialization at the aggregator -> query completes on the last reply.
//
// Per epoch (transition.epoch_length): the harness derives the planner's
// utilization input from the arrival stream's exact integrated rate, draws
// the epoch's background flows from the diurnal background level, runs
// EpochController::run_epoch (which emits its usual EpochRecord /
// attribution / explain JSONL), adopts the new plan's query-flow paths,
// and charges `reconfig_penalty` to queries in flight across a path
// change — the modeled cost of reprogramming forwarding rules under
// traffic. Per report window it emits a ServingWindowRecord on the same
// sink (p50/p95/p99, admit/queue/shed/drop counts, energy per admitted
// query).
//
// Determinism: the DES is serial; `--threads` only parallelizes the
// planner inside run_epoch, which is bit-identical for any worker count —
// so the whole serving log is byte-identical across thread counts.
#pragma once

#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/epoch_controller.h"
#include "net/path_latency.h"
#include "obs/jsonl.h"
#include "serve/arrivals.h"
#include "serve/policy.h"
#include "sim/event_queue.h"
#include "sim/metrics.h"
#include "sim/server.h"

namespace eprons {

struct ServingHarnessConfig {
  ArrivalStreamConfig arrivals;
  /// Epoch planning loop; `transition.epoch_length` sets the re-plan
  /// cadence. The harness overrides `epoch.epoch_log` with `sink` when one
  /// is given.
  EpochControllerConfig epoch;
  /// Background-flow generator matched to the topology (Scenario::flow_gen).
  FlowGenConfig flow_gen;
  /// Elephant count and demand jitter per epoch; the demand level follows
  /// the diurnal background curve.
  int background_flows = 6;
  double background_jitter = 0.1;

  /// Policy selection (serve/policies.h built-ins, by name).
  std::string admission = "always";
  std::string shed = "never";
  std::string routing = "static";
  PolicyConfig policy;

  /// DVFS policy on every ISN.
  std::string server_policy = "eprons";
  double target_vp = 0.05;

  /// Fan-out concurrency bound: queries simultaneously in flight. Arrivals
  /// beyond it park in the dispatch queue (capacity `queue_limit`; a full
  /// queue drops at the door).
  int max_inflight = 64;
  int queue_limit = 256;

  /// Serving report window, us (one ServingWindowRecord each).
  SimTime report_window = sec(60.0);

  /// Latency charged to every query in flight across an epoch boundary
  /// that changed its fan-out paths (forwarding-rule reprogramming), us.
  SimTime reconfig_penalty = ms(2.0);

  /// Planner utilization input derived from the arrival stream is clamped
  /// to [min_utilization, max_utilization].
  double min_utilization = 0.02;
  double max_utilization = 0.90;

  /// Query message sizes (offered-load accounting + incast serialization).
  double request_bytes = 1000.0;
  double reply_bytes = 2000.0;
  bool model_incast = true;
  int aggregator_host = 0;

  /// Harness-internal streams (DES sampling, background draws, controller
  /// observations) — independent of arrivals.seed.
  std::uint64_t seed = 1;

  /// JSONL sink for serving windows AND the controller's epoch records.
  /// Null = the process-wide `obs::epoch_log()` sink (--epoch-log).
  obs::JsonlWriter* sink = nullptr;
};

struct ServingReport {
  long long arrivals = 0;
  long long admitted = 0;
  long long queued = 0;
  long long shed = 0;
  long long dropped = 0;
  long long late_shed = 0;
  long long completed = 0;
  long long subqueries_completed = 0;
  /// Sub-queries over the latency constraint — the paper's SLA object
  /// (ClusterMetrics::subquery_miss_rate); rate = sla_misses /
  /// subqueries_completed.
  long long sla_misses = 0;
  long long transition_penalized = 0;
  int epochs = 0;
  /// End-to-end latency over all completed queries, us.
  LatencyStats latency;
  /// Modeled energy over the whole run (CPU + server static + network), J.
  double total_energy_j = 0.0;
  double energy_per_admitted_j = 0.0;
  std::vector<obs::ServingWindowRecord> windows;
};

class ServingHarness {
 public:
  ServingHarness(const Topology* topo, const ServiceModel* service_model,
                 const ServerPowerModel* power_model,
                 ServingHarnessConfig config);
  ~ServingHarness();

  /// Runs the full horizon; emits one ServingWindowRecord per window on
  /// the sink and returns the aggregate report.
  ServingReport run();

  /// Cluster-sustainable query rate at f_max, queries/s: each query puts
  /// one subquery on every ISN, so the binding resource is one ISN's cores.
  double sustainable_rate_qps() const { return sustainable_rate_qps_; }

 private:
  struct PendingQuery {
    SimTime arrived = 0.0;   // admission time (includes queue wait in e2e)
    SimTime issued = 0.0;    // fan-out time (subquery SLA is measured here)
    int outstanding = 0;
    int epoch_issued = 0;
    SimTime penalty = 0.0;   // accrued plan-transition cost
    bool penalized = false;
  };
  struct QueuedArrival {
    SimTime enqueued = 0.0;
  };

  void begin_epoch();
  void adopt_plan_paths();
  void schedule_next_arrival();
  void on_arrival();
  void fan_out(SimTime arrived);
  void drain_dispatch_queue();
  void on_subquery_complete(int isn_host, const ServerCompletion& completion);
  void finish_subquery(RequestId query);
  void emit_window(SimTime window_end);
  /// Accrues (static + network) energy at the current power level up to
  /// `now` — call before the network power changes and before windows.
  void accrue_fixed_energy(SimTime now);
  SimTime reply_transmission_time() const;
  AdmissionContext admission_context(SimTime now) const;

  const Topology* topo_;
  const ServiceModel* service_model_;
  const ServerPowerModel* power_model_;
  ServingHarnessConfig config_;

  EventQueue events_;
  std::vector<std::unique_ptr<SimServer>> servers_;  // by host id
  std::unique_ptr<ArrivalGenerator> arrivals_;
  std::unique_ptr<EpochController> controller_;
  std::unique_ptr<AdmissionPolicy> admission_;
  std::unique_ptr<ShedPolicy> shed_;
  std::unique_ptr<RoutingHint> routing_;

  Rng ctrl_rng_;  // epoch-controller observation noise
  Rng bg_rng_;    // background-flow draws
  Rng sim_rng_;   // DES latency/work sampling

  // Plan-derived state, refreshed each epoch.
  PolicySnapshot snapshot_;
  std::vector<Path> request_path_;  // by host id (aggregator slot empty)
  std::vector<Path> reply_path_;
  LinkUtilization offered_load_;
  std::unique_ptr<PathLatencyEstimator> latency_;
  Power network_power_w_ = 0.0;
  int epoch_index_ = -1;

  double sustainable_rate_qps_ = 0.0;

  // Serving state.
  RequestId next_query_ = 0;
  RequestId next_subrequest_ = 0;
  std::unordered_map<RequestId, PendingQuery> inflight_;
  std::deque<QueuedArrival> dispatch_queue_;
  SimTime agg_downlink_busy_until_ = 0.0;

  // Window + total accounting.
  obs::ServingWindowRecord window_;
  SimTime window_start_ = 0.0;
  int window_index_ = 0;
  PercentileEstimator window_latency_;
  PercentileEstimator total_latency_;
  double fixed_energy_uj_ = 0.0;   // static + network, since window start
  double cpu_energy_mark_uj_ = 0.0;
  SimTime energy_mark_ = 0.0;
  ServingReport report_;
};

}  // namespace eprons
