// Built-in serving policies (see serve/policy.h for the interfaces).
#pragma once

#include "serve/policy.h"

namespace eprons {

/// Admits everything: the open-loop baseline. Overload shows up as queue
/// growth and dispatch-queue drops rather than sheds.
class AlwaysAdmitPolicy : public AdmissionPolicy {
 public:
  AdmissionDecision decide(const AdmissionContext&) override {
    return AdmissionDecision::Admit;
  }
  const char* name() const override { return "always"; }
};

/// Classic token bucket with a queue bound. Tokens refill at
/// `bucket_rate_qps` (or, when 0, at the sustainable service rate the
/// harness derives from the current plan each epoch) up to `bucket_burst`;
/// an arrival needing a token from an empty bucket — or arriving to an
/// over-bound dispatch queue — is shed.
class TokenBucketPolicy : public AdmissionPolicy {
 public:
  explicit TokenBucketPolicy(const PolicyConfig& config)
      : config_(config), tokens_(config.bucket_burst) {}

  AdmissionDecision decide(const AdmissionContext& ctx) override;
  void on_epoch(const PolicySnapshot& snapshot) override;
  const char* name() const override { return "token-bucket"; }

 private:
  PolicyConfig config_;
  double tokens_;
  /// queries per us; <= 0 means "derive from ctx.sustainable_rate_qps".
  double refill_rate_ = 0.0;
  SimTime last_refill_ = 0.0;
};

/// Sheds when the expected wait (backlog over sustainable rate) would eat
/// the planner's remaining server budget: expected_wait >
/// sla_margin * effective_server_budget. When the planner reports the epoch
/// infeasible, the margin tightens to half — the plan already predicts SLA
/// misses, so the policy sheds earlier to protect admitted queries.
class SlaAwareAdmissionPolicy : public AdmissionPolicy {
 public:
  explicit SlaAwareAdmissionPolicy(const PolicyConfig& config)
      : config_(config) {}

  AdmissionDecision decide(const AdmissionContext& ctx) override;
  const char* name() const override { return "sla-aware"; }

 private:
  PolicyConfig config_;
};

/// Never sheds from the queue.
class NeverShedPolicy : public ShedPolicy {
 public:
  bool should_shed(const ShedContext&) override { return false; }
  const char* name() const override { return "never"; }
};

/// Drops queued queries whose wait already spent `deadline_fraction` of the
/// end-to-end latency constraint — they would miss the SLA anyway, so the
/// servers' time is better spent on fresher queries.
class DeadlineShedPolicy : public ShedPolicy {
 public:
  explicit DeadlineShedPolicy(const PolicyConfig& config) : config_(config) {}

  bool should_shed(const ShedContext& ctx) override;
  const char* name() const override { return "deadline"; }

 private:
  PolicyConfig config_;
};

/// The DES's single configured aggregator host.
class StaticRoutingHint : public RoutingHint {
 public:
  int choose_aggregator(const AdmissionContext&) override { return 0; }
  const char* name() const override { return "static"; }
};

}  // namespace eprons
