// Percentile / tail-latency estimation.
//
// SLAs in the paper are 95th-percentile tail latencies; the latency monitor
// and TimeTrader's feedback loop both need streaming percentile estimates.
#pragma once

#include <cstddef>
#include <deque>
#include <vector>

namespace eprons {

/// Exact percentile over all recorded samples. O(1) insert; quantile queries
/// sort lazily. Suitable for end-of-run reporting.
class PercentileEstimator {
 public:
  void add(double sample);
  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  /// p in [0,1]; nearest-rank (ceil) convention. Returns 0 when empty.
  double quantile(double p) const;
  double mean() const;
  double max() const;
  double min() const;
  void clear();

  const std::vector<double>& samples() const { return samples_; }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

/// Sliding-window percentile over the most recent `capacity` samples;
/// used by feedback controllers (TimeTrader) that react to recent tails.
class WindowedPercentile {
 public:
  explicit WindowedPercentile(std::size_t capacity);

  void add(double sample);
  std::size_t count() const { return window_.size(); }
  bool empty() const { return window_.empty(); }
  double quantile(double p) const;
  void clear();

 private:
  std::size_t capacity_;
  std::deque<double> window_;
};

/// Welford online mean/variance plus min/max; cheap per-sample bookkeeping.
class OnlineStats {
 public:
  void add(double sample);
  std::size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;
  void clear();

  /// Merges another accumulator (parallel reduction friendly).
  void merge(const OnlineStats& other);

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace eprons
