// Discretized probability distributions on a uniform grid.
//
// This is the statistical substrate of EPRONS-Server: per-request *work*
// (CPU cycles) is modeled as a discretized PDF; "equivalent requests" (paper
// section III-A) are convolutions of such PDFs; violation probabilities are
// CCDF lookups (section III-B, Fig. 5).
//
// Grid convention: mass p(i) sits at value offset + i * step. All pairwise
// operations require identical `step` (checked); offsets may differ.
#pragma once

#include <cstddef>
#include <vector>

#include "util/rng.h"

namespace eprons {

class DiscreteDistribution {
 public:
  DiscreteDistribution() = default;

  /// Takes ownership of probability masses; normalizes them to sum to 1.
  /// Requires step > 0 and at least one strictly positive mass.
  DiscreteDistribution(double offset, double step, std::vector<double> pmf);

  /// Builds an empirical distribution from samples, binned on [min, max]
  /// into `bins` equal cells (values at bin centers).
  static DiscreteDistribution from_samples(const std::vector<double>& samples,
                                           std::size_t bins);

  /// All mass at a single point (degenerate distribution).
  static DiscreteDistribution point_mass(double value, double step);

  bool empty() const { return pmf_.empty(); }
  double offset() const { return offset_; }
  double step() const { return step_; }
  std::size_t size() const { return pmf_.size(); }
  const std::vector<double>& pmf() const { return pmf_; }

  /// Largest value carrying mass (offset + (size-1)*step).
  double max_value() const;
  /// Smallest value carrying mass.
  double min_value() const { return offset_; }

  double mean() const;
  double variance() const;
  double stddev() const;

  /// P[X <= x], with linear interpolation between grid points.
  double cdf(double x) const;
  /// P[X > x] == 1 - cdf(x). This is the violation probability primitive.
  double ccdf(double x) const;
  /// Smallest x with P[X <= x] >= p (p in [0,1]).
  double quantile(double p) const;

  /// Distribution of X + Y for independent X, Y (FFT convolution).
  /// This is the "equivalent request" operation. Steps must match.
  DiscreteDistribution convolve(const DiscreteDistribution& other) const;

  /// Conditional remaining distribution: given that `done` work has already
  /// completed without the request finishing, distribution of X - done
  /// restricted to X > done. Used at request *arrival* instants for the
  /// in-service residual (paper section III-B). If all mass is <= done,
  /// returns a point mass at zero.
  DiscreteDistribution conditional_remaining(double done) const;

  /// Drops trailing/leading bins whose total mass is below `eps` and
  /// renormalizes; keeps convolution sizes bounded in long queues.
  DiscreteDistribution truncated(double eps = 1e-9) const;

  /// Draws one sample (inverse-CDF on the grid with intra-bin jitter).
  double sample(Rng& rng) const;

 private:
  void normalize();

  double offset_ = 0.0;
  double step_ = 1.0;
  std::vector<double> pmf_;
  // Cached CDF (same indexing as pmf_): cdf_[i] = P[X <= offset + i*step].
  std::vector<double> cdf_;
};

}  // namespace eprons
