#include "stats/percentile.h"

#include <algorithm>
#include <cmath>

namespace eprons {

void PercentileEstimator::add(double sample) {
  samples_.push_back(sample);
  sorted_ = false;
}

double PercentileEstimator::quantile(double p) const {
  if (samples_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  p = std::clamp(p, 0.0, 1.0);
  // Nearest-rank: smallest value with at least ceil(p*n) samples <= it.
  const auto n = samples_.size();
  std::size_t rank = static_cast<std::size_t>(
      std::ceil(p * static_cast<double>(n)));
  if (rank == 0) rank = 1;
  if (rank > n) rank = n;
  return samples_[rank - 1];
}

double PercentileEstimator::mean() const {
  if (samples_.empty()) return 0.0;
  double total = 0.0;
  for (double s : samples_) total += s;
  return total / static_cast<double>(samples_.size());
}

double PercentileEstimator::max() const {
  if (samples_.empty()) return 0.0;
  return *std::max_element(samples_.begin(), samples_.end());
}

double PercentileEstimator::min() const {
  if (samples_.empty()) return 0.0;
  return *std::min_element(samples_.begin(), samples_.end());
}

void PercentileEstimator::clear() {
  samples_.clear();
  sorted_ = true;
}

WindowedPercentile::WindowedPercentile(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void WindowedPercentile::add(double sample) {
  window_.push_back(sample);
  if (window_.size() > capacity_) window_.pop_front();
}

double WindowedPercentile::quantile(double p) const {
  if (window_.empty()) return 0.0;
  std::vector<double> sorted(window_.begin(), window_.end());
  std::sort(sorted.begin(), sorted.end());
  p = std::clamp(p, 0.0, 1.0);
  std::size_t rank = static_cast<std::size_t>(
      std::ceil(p * static_cast<double>(sorted.size())));
  if (rank == 0) rank = 1;
  if (rank > sorted.size()) rank = sorted.size();
  return sorted[rank - 1];
}

void WindowedPercentile::clear() { window_.clear(); }

void OnlineStats::add(double sample) {
  if (count_ == 0) {
    min_ = max_ = sample;
  } else {
    min_ = std::min(min_, sample);
    max_ = std::max(max_, sample);
  }
  ++count_;
  const double delta = sample - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (sample - mean_);
}

double OnlineStats::variance() const {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double OnlineStats::min() const { return count_ ? min_ : 0.0; }
double OnlineStats::max() const { return count_ ? max_ : 0.0; }

void OnlineStats::clear() {
  count_ = 0;
  mean_ = m2_ = min_ = max_ = 0.0;
}

void OnlineStats::merge(const OnlineStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double total = static_cast<double>(count_ + other.count_);
  const double delta = other.mean_ - mean_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) / total;
  mean_ += delta * static_cast<double>(other.count_) / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
}

}  // namespace eprons
