#include "stats/distribution.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "stats/fft.h"

namespace eprons {

DiscreteDistribution::DiscreteDistribution(double offset, double step,
                                           std::vector<double> pmf)
    : offset_(offset), step_(step), pmf_(std::move(pmf)) {
  if (step_ <= 0.0) throw std::invalid_argument("distribution step must be > 0");
  for (double& p : pmf_) {
    if (p < 0.0) p = 0.0;  // tolerate tiny negative round-off from callers
  }
  normalize();
}

void DiscreteDistribution::normalize() {
  const double total = std::accumulate(pmf_.begin(), pmf_.end(), 0.0);
  if (total <= 0.0) {
    throw std::invalid_argument("distribution must carry positive mass");
  }
  cdf_.resize(pmf_.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < pmf_.size(); ++i) {
    pmf_[i] /= total;
    acc += pmf_[i];
    cdf_[i] = acc;
  }
  cdf_.back() = 1.0;  // pin against round-off
}

DiscreteDistribution DiscreteDistribution::from_samples(
    const std::vector<double>& samples, std::size_t bins) {
  if (samples.empty()) throw std::invalid_argument("no samples");
  if (bins == 0) throw std::invalid_argument("bins must be > 0");
  const auto [lo_it, hi_it] = std::minmax_element(samples.begin(), samples.end());
  const double lo = *lo_it;
  double hi = *hi_it;
  if (hi <= lo) hi = lo + 1.0;  // degenerate sample set: one wide bin
  const double step = (hi - lo) / static_cast<double>(bins);
  std::vector<double> pmf(bins, 0.0);
  for (double s : samples) {
    auto idx = static_cast<std::size_t>((s - lo) / step);
    if (idx >= bins) idx = bins - 1;
    pmf[idx] += 1.0;
  }
  // Values live at bin centers.
  return DiscreteDistribution(lo + step / 2.0, step, std::move(pmf));
}

DiscreteDistribution DiscreteDistribution::point_mass(double value,
                                                      double step) {
  return DiscreteDistribution(value, step, {1.0});
}

double DiscreteDistribution::max_value() const {
  return offset_ + static_cast<double>(pmf_.size() - 1) * step_;
}

double DiscreteDistribution::mean() const {
  double m = 0.0;
  for (std::size_t i = 0; i < pmf_.size(); ++i) {
    m += pmf_[i] * (offset_ + static_cast<double>(i) * step_);
  }
  return m;
}

double DiscreteDistribution::variance() const {
  const double m = mean();
  double v = 0.0;
  for (std::size_t i = 0; i < pmf_.size(); ++i) {
    const double x = offset_ + static_cast<double>(i) * step_;
    v += pmf_[i] * (x - m) * (x - m);
  }
  return v;
}

double DiscreteDistribution::stddev() const { return std::sqrt(variance()); }

double DiscreteDistribution::cdf(double x) const {
  if (pmf_.empty()) return 0.0;
  if (x < offset_) return 0.0;
  const double pos = (x - offset_) / step_;
  if (pos >= static_cast<double>(pmf_.size() - 1)) return 1.0;
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  const double c_lo = cdf_[lo];
  const double c_hi = cdf_[lo + 1];
  return c_lo + frac * (c_hi - c_lo);
}

double DiscreteDistribution::ccdf(double x) const { return 1.0 - cdf(x); }

double DiscreteDistribution::quantile(double p) const {
  if (pmf_.empty()) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), p);
  const auto idx = static_cast<std::size_t>(it - cdf_.begin());
  if (idx >= pmf_.size()) return max_value();
  return offset_ + static_cast<double>(idx) * step_;
}

DiscreteDistribution DiscreteDistribution::convolve(
    const DiscreteDistribution& other) const {
  if (std::abs(step_ - other.step_) > 1e-12 * std::max(step_, other.step_)) {
    throw std::invalid_argument("convolve requires matching grid steps");
  }
  std::vector<double> out = eprons::convolve(pmf_, other.pmf_);
  return DiscreteDistribution(offset_ + other.offset_, step_, std::move(out));
}

DiscreteDistribution DiscreteDistribution::conditional_remaining(
    double done) const {
  if (done <= offset_) {
    // Nothing observed yet beyond the minimum: just shift support.
    return DiscreteDistribution(offset_ - done, step_, pmf_);
  }
  // Keep bins with value strictly greater than `done`.
  const auto first =
      static_cast<std::size_t>(std::ceil((done - offset_) / step_ + 1e-9));
  if (first >= pmf_.size()) {
    return point_mass(0.0, step_);
  }
  std::vector<double> tail(pmf_.begin() + static_cast<std::ptrdiff_t>(first),
                           pmf_.end());
  const double mass = std::accumulate(tail.begin(), tail.end(), 0.0);
  if (mass <= 0.0) return point_mass(0.0, step_);
  const double new_offset = offset_ + static_cast<double>(first) * step_ - done;
  return DiscreteDistribution(new_offset, step_, std::move(tail));
}

DiscreteDistribution DiscreteDistribution::truncated(double eps) const {
  if (pmf_.empty()) return *this;
  std::size_t first = 0;
  double head = 0.0;
  while (first + 1 < pmf_.size() && head + pmf_[first] < eps) {
    head += pmf_[first];
    ++first;
  }
  std::size_t last = pmf_.size();
  double tail = 0.0;
  while (last > first + 1 && tail + pmf_[last - 1] < eps) {
    tail += pmf_[last - 1];
    --last;
  }
  std::vector<double> kept(pmf_.begin() + static_cast<std::ptrdiff_t>(first),
                           pmf_.begin() + static_cast<std::ptrdiff_t>(last));
  return DiscreteDistribution(offset_ + static_cast<double>(first) * step_,
                              step_, std::move(kept));
}

double DiscreteDistribution::sample(Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  auto idx = static_cast<std::size_t>(it - cdf_.begin());
  if (idx >= pmf_.size()) idx = pmf_.size() - 1;
  const double base = offset_ + static_cast<double>(idx) * step_;
  // Jitter within the bin so sampled values are not quantized to the grid.
  return base + (rng.uniform() - 0.5) * step_;
}

}  // namespace eprons
