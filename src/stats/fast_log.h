// Deterministic elementwise natural logarithm for Monte-Carlo hot loops.
//
// std::log is the slack estimator's single most expensive instruction (one
// call per exponential draw, ~2x the cost of the RNG itself), and its
// bit-level results are owned by whatever libm the host links — two builds
// against different glibc versions may disagree in the last ulp. fast_log
// replaces it on the sampling hot path with the classic fdlibm/musl
// algorithm compiled into this repo: argument reduction to [sqrt(2)/2,
// sqrt(2)) by exponent surgery, then a degree-14 odd polynomial in
// s = f/(2+f). Accuracy is < 1 ulp over the full domain we use it on —
// statistically indistinguishable from libm for sampling purposes — and
// the result is a pure function of the input bits and this source file,
// which makes the determinism contract self-contained.
//
// Contract: the input must be a positive, finite, NORMAL double (the
// sampler feeds it uniforms from (0, 1], whose smallest value 2^-53 is
// comfortably normal). Zeros, subnormals, infinities and NaNs are not
// handled — callers own the rejection loop.
//
// fast_log.cpp is compiled with -ffp-contract=off so no call site can see
// an FMA-fused variant: every caller in the process observes the one
// compiled sequence of IEEE operations, which is what lets the fast and
// reference samplers (and any future vectorized batch) agree bit for bit.
#pragma once

#include <cstddef>

namespace eprons {

/// Natural log of a positive finite normal double; < 1 ulp error.
double fast_log(double x);

/// Two independent fast_log evaluations in one call: *lx = fast_log(x),
/// *ly = fast_log(y), bit-identical to two scalar calls. The pair sampler
/// feeds it the antithetic uniforms (u, 1-u); evaluating both in one body
/// lets the two dependency chains interleave in the pipeline, which is
/// nearly the price of one.
void fast_log_pair(double x, double y, double* lx, double* ly);

/// Elementwise fast_log over a block: out[i] = fast_log(x[i]). In-place
/// (out == x) is allowed. The loop body is branchless, so the compiler
/// vectorizes it even at the baseline x86-64 target (SSE2) — roughly
/// halving the per-log cost versus the scalar call — and SIMD lanes
/// execute the identical IEEE operation sequence, so every element is
/// bit-identical to the scalar fast_log(x[i]) (asserted by the
/// differential tests). This is the slack estimator's inner log.
void fast_log_block(const double* x, double* out, std::size_t n);

/// Antithetic variant: lg_e[i] = fast_log(x[i]), lg_o[i] =
/// fast_log(1.0 - x[i]) in a single vectorized pass (the subtraction is
/// one exact IEEE op, so the results match the two-call spelling bit for
/// bit). In-place (lg_e == x) is allowed. Feeds the slack estimator's
/// paired exponential draws without materializing the 1-x buffer.
void fast_log_block_antithetic(const double* x, double* lg_e, double* lg_o,
                               std::size_t n);

}  // namespace eprons
