#include "stats/fast_log.h"

#include <cstdint>
#include <cstring>

namespace eprons {

namespace {

// Coefficients from fdlibm's e_log.c (Sun Microsystems, freely
// redistributable); the same minimax polynomial musl and glibc's generic
// path ship. ln2 is split hi/lo so k*ln2 keeps full precision.
constexpr double kLn2Hi = 6.93147180369123816490e-01;
constexpr double kLn2Lo = 1.90821492927058770002e-10;
constexpr double kLg1 = 6.666666666666735130e-01;
constexpr double kLg2 = 3.999999999940941908e-01;
constexpr double kLg3 = 2.857142874366239149e-01;
constexpr double kLg4 = 2.222219843214978396e-01;
constexpr double kLg5 = 1.818357216161805012e-01;
constexpr double kLg6 = 1.531383769920937332e-01;
constexpr double kLg7 = 1.479819860511658591e-01;

}  // namespace

namespace {

// The whole algorithm, forced inline so fast_log_pair's two copies live in
// one function body and the compiler interleaves their dependency chains.
[[gnu::always_inline]] inline double log_impl(double x) {
  // x = 2^k * m with m in [sqrt(2)/2, sqrt(2)): shift the biased exponent
  // so the mantissa cut happens at sqrt(2) instead of 2.
  std::uint64_t bits;
  std::memcpy(&bits, &x, sizeof(bits));
  bits += 0x3ff0000000000000ull - 0x3fe6a09e00000000ull;
  const int k =
      static_cast<int>(static_cast<std::int64_t>(bits >> 52)) - 0x3ff;
  bits = (bits & 0x000fffffffffffffull) + 0x3fe6a09e00000000ull;
  double m;
  std::memcpy(&m, &bits, sizeof(m));

  // log(m) = log((2+f)/(2-f')) expansion: s = f/(2+f), f = m-1;
  // log(m) = 2s + 2/3 s^3 + ... , evaluated as f - hfsq + s*(hfsq+R).
  const double f = m - 1.0;
  const double hfsq = 0.5 * f * f;
  const double s = f / (2.0 + f);
  const double z = s * s;
  const double w = z * z;
  const double t1 = w * (kLg2 + w * (kLg4 + w * kLg6));
  const double t2 = z * (kLg1 + w * (kLg3 + w * (kLg5 + w * kLg7)));
  const double r = t2 + t1;
  const double dk = static_cast<double>(k);
  return s * (hfsq + r) + dk * kLn2Lo - hfsq + f + dk * kLn2Hi;
}

}  // namespace

double fast_log(double x) { return log_impl(x); }

void fast_log_pair(double x, double y, double* lx, double* ly) {
  *lx = log_impl(x);
  *ly = log_impl(y);
}

// The block loops carry target_clones so the runtime dispatcher can pick a
// 4-wide AVX2 body on hosts that have it while the build itself stays at
// the portable baseline. Bit-exactness is unaffected: every clone runs the
// identical sequence of IEEE double operations per lane (packed divide/
// multiply/add lanes equal their scalar counterparts exactly, and
// -ffp-contract=off on this file forbids FMA fusion in every clone), so
// all clones — and the scalar fast_log — agree bit for bit.
[[gnu::target_clones("avx2", "default")]]
void fast_log_block(const double* x, double* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = log_impl(x[i]);
}

[[gnu::target_clones("avx2", "default")]]
void fast_log_block_antithetic(const double* x, double* lg_e, double* lg_o,
                               std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const double u = x[i];
    lg_e[i] = log_impl(u);
    lg_o[i] = log_impl(1.0 - u);
  }
}

}  // namespace eprons
