// Iterative radix-2 FFT used for fast convolution of work distributions.
//
// EPRONS-Server computes "equivalent request" distributions as convolutions
// of per-request work PDFs (paper section III-A/C); the paper reports ~20us
// per FFT convolution, which bench_micro_overheads reproduces.
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

namespace eprons {

/// Smallest power of two >= n (n >= 1).
std::size_t next_pow2(std::size_t n);

/// In-place radix-2 Cooley-Tukey FFT. data.size() must be a power of two.
/// inverse=true applies the inverse transform including the 1/N scaling.
void fft(std::vector<std::complex<double>>& data, bool inverse);

/// Linear convolution of two real sequences via FFT.
/// Result size is a.size() + b.size() - 1. Small negative values produced by
/// round-off are clamped to zero (inputs are probability masses).
std::vector<double> convolve(const std::vector<double>& a,
                             const std::vector<double>& b);

/// Direct O(n*m) convolution; reference implementation for testing and for
/// very short sequences where FFT setup costs dominate.
std::vector<double> convolve_direct(const std::vector<double>& a,
                                    const std::vector<double>& b);

}  // namespace eprons
