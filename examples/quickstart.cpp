// Quickstart: the complete EPRONS pipeline in ~50 lines.
//
// Builds a 4-ary fat-tree data center and a synthetic search workload from
// one seed via ScenarioBuilder, lets the joint optimizer pick the scale
// factor K, then validates the plan by simulating the cluster with
// EPRONS-Server DVFS on every index node.
//
//   ./quickstart [--util=0.3] [--background=0.2] [--seed=1] [--threads=4]
#include <algorithm>
#include <cstdio>

#include "core/scenario.h"
#include "util/cli.h"

using namespace eprons;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const double utilization = cli.get_double("util", 0.3);
  const double background_util = cli.get_double("background", 0.2);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));

  // 1. The substrate: 16 servers on a 4-ary fat-tree (1 Gbps links), a
  //    synthetic search-engine service-time distribution (stands in for
  //    the paper's Xapian-over-Wikipedia measurements), and the 12-core
  //    Xeon power calibration — all derived from one seed.
  const Scenario scn = ScenarioBuilder()
                           .seed(seed)
                           .fat_tree(4)
                           .runtime(runtime_from_cli(cli))
                           .build();

  // 2. Background elephants sharing the fabric with the search traffic.
  Rng rng(seed);
  const FlowSet background =
      make_background_flows(scn.flow_gen(), 8, background_util, 0.1, rng);

  // 3. Joint optimization: pick the scale factor K that minimizes
  //    predicted total (server + network) power under the 30 ms SLA.
  const JointOptimizer optimizer = scn.optimizer();
  PlanRequest request;
  request.background = &background;
  request.utilization = utilization;
  const JointPlan plan = optimizer.optimize(request);
  std::printf("joint plan: K=%.0f  active switches=%d  network=%.0f W  "
              "predicted total=%.0f W  feasible=%s\n",
              plan.k, plan.placement.active_switches, plan.network_power,
              plan.total_power, plan.feasible ? "yes" : "no");

  // 4. Validate with the discrete-event simulator: EPRONS-Server DVFS on
  //    every ISN, traffic on the optimizer's placement.
  ScenarioConfig scenario;
  scenario.cluster.policy = "eprons";
  scenario.cluster.target_utilization = utilization;
  scenario.cluster.duration = sec(10.0);
  scenario.cluster.seed = seed;
  if (plan.feasible) {
    // The optimizer already measured the network's share of the SLA; hand
    // the servers exactly the remaining budget.
    scenario.cluster.server_budget =
        std::min(scenario.cluster.latency_constraint,
                 plan.effective_server_budget);
  }
  const std::vector<bool>* subnet =
      plan.placement.feasible ? &plan.placement.switch_on : nullptr;
  const ScenarioResult result = scn.run(background, scenario, subnet);

  const ClusterMetrics& m = result.metrics;
  std::printf("simulated:  cpu/server=%.2f W  total system=%.0f W\n",
              m.avg_cpu_power_per_server, m.total_system_power);
  std::printf("latency:    request p95=%.2f ms (SLA 30 ms)  miss=%.2f%%  "
              "network p95=%.2f ms\n",
              to_ms(m.subquery_latency.p95), 100.0 * m.subquery_miss_rate,
              to_ms(m.network_latency.p95));
  std::printf("throughput: %zu queries, measured core utilization %.1f%%\n",
              m.queries_completed, 100.0 * m.measured_core_utilization);
  return 0;
}
