// Joint diurnal planning: run the EPRONS optimizer across a synthetic
// 24-hour trace and watch it resize the network epoch by epoch.
//
// Uses the fast analytical predictor (no DES), so the whole day plans in
// seconds; bench_fig15_diurnal_savings does the DES-validated version.
//
//   ./joint_diurnal --epoch=10 --peak-util=0.5 --csv [--threads=4]
#include <iostream>

#include "core/scenario.h"
#include "trace/diurnal.h"
#include "util/cli.h"
#include "util/table.h"

using namespace eprons;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const int epoch_minutes = static_cast<int>(cli.get_int("epoch", 60));
  const double peak_util = cli.get_double("peak-util", 0.5);
  const TableFormat fmt = table_format_from_cli(cli);

  const Scenario scn =
      ScenarioBuilder()
          .seed(static_cast<std::uint64_t>(cli.get_int("seed", 7)))
          .fat_tree(4)
          .runtime(runtime_from_cli(cli))
          .build();

  JointOptimizerConfig joint_config;
  joint_config.slack.samples_per_pair = 200;
  const JointOptimizer optimizer = scn.optimizer(joint_config);

  DiurnalTraceConfig trace_config;
  const auto trace = make_diurnal_trace(trace_config);

  Table table({"minute", "search_load", "bg_util", "K", "switches",
               "network_W", "server_W_each", "predicted_total_W",
               "feasible"});
  table.set_precision(2);

  for (std::size_t i = 0; i < trace.size();
       i += static_cast<std::size_t>(epoch_minutes)) {
    const TracePoint& point = trace[i];
    const double utilization = std::max(0.02, peak_util * point.search_load);

    Rng flow_rng(1000 + i);
    FlowGenConfig gen = scn.flow_gen();
    gen.exclude_host = -1;  // keep the legacy all-hosts elephant mix
    const FlowSet background = make_background_flows(
        gen, 10, point.background_util, 0.1, flow_rng);

    PlanRequest request;
    request.background = &background;
    request.utilization = utilization;
    const JointPlan plan = optimizer.optimize(request);
    table.add_row({static_cast<long long>(point.minute), point.search_load,
                   point.background_util, plan.k,
                   static_cast<long long>(plan.placement.active_switches),
                   plan.network_power, plan.server.server_power,
                   plan.total_power,
                   std::string(plan.feasible ? "yes" : "no")});
  }
  table.print(std::cout, fmt);
  return 0;
}
