// Consolidation planner: explore latency-aware traffic consolidation on a
// k-ary fat-tree from the command line.
//
// Generates (or uses the Fig. 2) flow mix, runs every registered
// Consolidator implementation (the greedy heuristic and — for small
// instances — the exact MILP) through the shared interface, and prints the
// chosen subnet, the per-flow paths, and the network power at each scale
// factor K.
//
//   ./consolidation_planner --flows=6 --background=0.3 --kmax=4 --exact
//   ./consolidation_planner --fig2
#include <cstdio>
#include <string>
#include <vector>

#include "consolidate/greedy_consolidator.h"
#include "consolidate/milp_consolidator.h"
#include "obs/telemetry.h"
#include "topo/fattree.h"
#include "util/cli.h"
#include "util/table.h"

#include <iostream>

using namespace eprons;

namespace {

std::string path_to_string(const Graph& graph, const Path& path) {
  std::string out;
  for (std::size_t i = 0; i < path.size(); ++i) {
    if (i) out += "-";
    out += graph.node(path[i]).name;
  }
  return out.empty() ? "(unrouted)" : out;
}

FlowSet fig2_flows() {
  FlowSet flows;
  flows.add(0, 12, 900.0, FlowClass::LatencyTolerant);
  flows.add(1, 13, 20.0, FlowClass::LatencySensitive);
  flows.add(2, 14, 20.0, FlowClass::LatencySensitive);
  return flows;
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  // No Scenario here, so apply the telemetry/log flags directly.
  obs::configure_telemetry(runtime_from_cli(cli));
  const int k = static_cast<int>(cli.get_int("k", 4));
  const int kmax = static_cast<int>(cli.get_int("kmax", 3));
  const bool exact = cli.has_flag("exact") || cli.has_flag("fig2");
  const TableFormat fmt = table_format_from_cli(cli);

  const FatTree topo(k);

  FlowSet flows;
  if (cli.has_flag("fig2")) {
    flows = fig2_flows();
  } else {
    Rng rng(static_cast<std::uint64_t>(cli.get_int("seed", 3)));
    FlowGenConfig gen;
    gen.num_hosts = topo.num_hosts();
    flows = make_background_flows(
        gen, static_cast<int>(cli.get_int("flows", 6)),
        cli.get_double("background", 0.3), 0.2, rng);
    // A latency-sensitive pair so K has something to scale.
    flows.add(0, topo.num_hosts() - 1, 20.0, FlowClass::LatencySensitive);
    flows.add(topo.num_hosts() - 1, 0, 20.0, FlowClass::LatencySensitive);
  }

  std::printf("fat-tree k=%d: %d hosts, %d switches; %zu flows "
              "(%zu latency-sensitive)\n\n",
              k, topo.num_hosts(), topo.num_switches(), flows.size(),
              flows.count(FlowClass::LatencySensitive));

  Table summary({"K", "method", "feasible", "active_switches", "network_W"});

  // Both planners implement the abstract Consolidator interface, so the
  // sweep below is written once against the base class; dropping in a new
  // placement strategy only requires adding it to this list.
  const GreedyConsolidator greedy;
  const MilpConsolidator milp;
  std::vector<const Consolidator*> planners = {&greedy};
  if (exact) planners.push_back(&milp);

  for (int scale = 1; scale <= kmax; ++scale) {
    ConsolidationConfig config;
    config.scale_factor_k = scale;

    for (const Consolidator* planner : planners) {
      const ConsolidationResult result =
          planner->consolidate(topo, flows, config);
      summary.add_row({static_cast<long long>(scale),
                       std::string(planner->name()),
                       std::string(result.feasible ? "yes" : "no"),
                       static_cast<long long>(result.active_switches),
                       result.network_power});
      if (exact && planner == &milp && result.feasible && scale <= 3) {
        std::printf("K=%d exact paths:\n", scale);
        for (std::size_t i = 0; i < flows.size(); ++i) {
          std::printf(
              "  flow %zu (%s, %.0f Mbps): %s\n", i,
              flow_class_name(flows[i].cls), flows[i].demand,
              path_to_string(topo.graph(), result.flow_paths[i]).c_str());
        }
      }
    }
  }
  std::printf("\n");
  summary.print(std::cout, fmt);
  return 0;
}
