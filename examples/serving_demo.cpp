// Open-loop serving demo: a 2-hour modeled diurnal serving run with burst
// noise and flash crowds, re-planned by the EpochController every epoch,
// with a selectable admission policy.
//
//   ./serving_demo [--peak-qps=40] [--horizon=7200] [--epoch-len=600]
//       [--window=120] [--admission=sla-aware] [--shed=deadline]
//       [--threads=4] [--epoch-log=serving.jsonl]
//
// With --epoch-log the run streams one JSONL record per planner epoch
// (epoch_controller / attribution / plan_explain) interleaved with one
// serving_window record per report window — feed the file to
// tools/eprons_report.py for the serving section.
#include <iostream>

#include "core/scenario.h"
#include "serve/serving_harness.h"
#include "util/cli.h"
#include "util/table.h"

using namespace eprons;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const TableFormat fmt = table_format_from_cli(cli);
  const ServingFlags serve = serving_flags_from_cli(cli);
  const double horizon_s = cli.get_double("horizon", 7200.0);

  const Scenario scn = ScenarioBuilder()
                           .seed(static_cast<std::uint64_t>(
                               cli.get_int("seed", 1)))
                           .fat_tree(4)
                           .runtime(runtime_from_cli(cli))
                           .build();

  ServingHarnessConfig config;
  config.arrivals.horizon = sec(horizon_s);
  config.arrivals.peak_rate_qps = serve.peak_qps;
  config.arrivals.seed = static_cast<std::uint64_t>(serve.seed);
  config.arrivals.flash.events_per_hour = serve.flash_per_hour;
  config.arrivals.burst.enabled = !serve.no_burst;
  config.arrivals.diurnal_start = 9.0 * 3600.0 * 1.0e6;  // start 09:00
  config.epoch.transition.epoch_length = sec(serve.epoch_s);
  config.epoch.joint.slack.samples_per_pair = 150;
  config.epoch.runtime = runtime_from_cli(cli);
  config.flow_gen = scn.flow_gen();
  config.report_window = sec(serve.window_s);
  config.admission = serve.admission;
  config.shed = serve.shed;
  config.seed = static_cast<std::uint64_t>(serve.seed);

  ServingHarness harness(&scn.topology(), &scn.service_model(),
                         &scn.power_model(), config);
  const ServingReport report = harness.run();

  std::printf("open-loop serving: %.0f s modeled, admission=%s shed=%s\n\n",
              horizon_s, serve.admission.c_str(), serve.shed.c_str());

  Table table({"window", "epoch", "offered_qps", "arrivals", "admitted",
               "shed", "dropped", "p50_ms", "p99_ms", "J/query"});
  table.set_precision(2);
  for (const auto& w : report.windows) {
    table.add_row({static_cast<long long>(w.window),
                   static_cast<long long>(w.epoch), w.offered_qps,
                   static_cast<long long>(w.arrivals),
                   static_cast<long long>(w.admitted),
                   static_cast<long long>(w.shed),
                   static_cast<long long>(w.dropped + w.late_shed),
                   w.latency_p50_us / 1000.0, w.latency_p99_us / 1000.0,
                   w.energy_per_admitted_j});
  }
  table.print(std::cout, fmt);

  std::printf(
      "\ntotals: %lld arrivals, %lld admitted, %lld shed, %lld dropped, "
      "%lld late-shed, %lld completed over %d epochs\n",
      report.arrivals, report.admitted, report.shed, report.dropped,
      report.late_shed, report.completed, report.epochs);
  std::printf("subquery SLA miss rate: %.2f%% (%lld of %lld)\n",
              report.subqueries_completed > 0
                  ? 100.0 * static_cast<double>(report.sla_misses) /
                        static_cast<double>(report.subqueries_completed)
                  : 0.0,
              report.sla_misses, report.subqueries_completed);
  std::printf("latency p50/p95/p99: %.2f / %.2f / %.2f ms\n",
              to_ms(report.latency.p50), to_ms(report.latency.p95),
              to_ms(report.latency.p99));
  std::printf("energy: %.1f J total, %.3f J per admitted query\n",
              report.total_energy_j, report.energy_per_admitted_j);
  std::printf("sustainable rate at f_max: %.1f qps\n",
              harness.sustainable_rate_qps());
  return 0;
}
