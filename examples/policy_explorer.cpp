// Policy explorer: head-to-head DVFS policy comparison on the simulated
// search cluster at a chosen operating point.
//
//   ./policy_explorer --util=0.4 --constraint=30 --server-budget=25
//   ./policy_explorer --policies=eprons,rubik+ --duration=20 --csv
#include <iostream>
#include <string>
#include <vector>

#include "core/scenario.h"
#include "topo/aggregation.h"
#include "util/cli.h"
#include "util/strings.h"
#include "util/table.h"

using namespace eprons;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const double utilization = cli.get_double("util", 0.3);
  const double constraint_ms = cli.get_double("constraint", 30.0);
  const double server_budget_ms = cli.get_double("server-budget", 25.0);
  const double background_util = cli.get_double("background", 0.2);
  const double duration_s = cli.get_double("duration", 10.0);
  const TableFormat fmt = table_format_from_cli(cli);

  std::vector<std::string> policies =
      split(cli.get_string("policies", "max,timetrader,rubik,rubik+,eprons"),
            ',');

  const Scenario scn =
      ScenarioBuilder()
          .seed(static_cast<std::uint64_t>(cli.get_int("seed", 1)))
          .fat_tree(4)
          .runtime(runtime_from_cli(cli))
          .build();
  Rng rng(scn.seed());
  const FlowSet background =
      make_background_flows(scn.flow_gen(), 8, background_util, 0.1, rng);

  // Server-only comparison: no network power management (full topology),
  // matching the paper's Fig. 12 setup.
  const AggregationPolicies agg(scn.fat_tree());
  const auto full = agg.policy(0).switch_on;

  Table table({"policy", "cpu_W_per_server", "p95_request_ms", "miss_rate",
               "measured_util", "queries"});
  table.set_precision(3);
  for (const std::string& policy : policies) {
    ScenarioConfig scenario;
    scenario.cluster.policy = policy;
    scenario.cluster.target_utilization = utilization;
    scenario.cluster.latency_constraint = ms(constraint_ms);
    scenario.cluster.server_budget = ms(server_budget_ms);
    scenario.cluster.duration = sec(duration_s);
    scenario.cluster.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
    const ScenarioResult result = scn.run(background, scenario, &full);
    const ClusterMetrics& m = result.metrics;
    table.add_row({policy, m.avg_cpu_power_per_server,
                   to_ms(m.subquery_latency.p95), m.subquery_miss_rate,
                   m.measured_core_utilization,
                   static_cast<long long>(m.queries_completed)});
  }
  table.print(std::cout, fmt);
  return 0;
}
