// Epoch controller demo: the paper's section II consolidation procedure
// (measure -> predict -> optimize -> reconfigure) running across a rising
// and falling load ramp, with the backup-path transition policy hiding the
// 72.52 s switch boot time.
//
//   ./epoch_controller_demo [--epochs=12] [--linger=1] [--csv] [--threads=4]
#include <iostream>

#include "core/scenario.h"
#include "util/cli.h"
#include "util/table.h"

using namespace eprons;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const int epochs = static_cast<int>(cli.get_int("epochs", 12));
  const TableFormat fmt = table_format_from_cli(cli);

  const Scenario scn =
      ScenarioBuilder()
          .seed(static_cast<std::uint64_t>(cli.get_int("seed", 3)))
          .fat_tree(4)
          .runtime(runtime_from_cli(cli))
          .build();

  EpochControllerConfig config;
  config.transition.linger_epochs =
      static_cast<int>(cli.get_int("linger", 1));
  config.joint.slack.samples_per_pair = 150;
  EpochController controller = scn.epoch_controller(config);

  Table table({"epoch", "bg_util", "server_util", "K", "pred_ratio",
               "wanted_sw", "actual_sw", "boots", "network_W", "feasible"});
  table.set_precision(2);

  Rng rng(9);
  for (int e = 0; e < epochs; ++e) {
    // Triangle ramp: load climbs to mid-day then falls.
    const double phase =
        1.0 - std::abs(2.0 * e / std::max(1, epochs - 1) - 1.0);
    const double bg = 0.05 + 0.45 * phase;
    const double util = 0.05 + 0.45 * phase;

    const FlowGenConfig gen = scn.flow_gen();
    Rng flow_rng(100 + e);
    const FlowSet background = make_background_flows(gen, 6, bg, 0.1, flow_rng);

    const EpochReport report = controller.run_epoch(background, util, rng);
    table.add_row({static_cast<long long>(e), bg, util, report.chosen_k,
                   report.prediction_ratio,
                   static_cast<long long>(report.wanted_switches),
                   static_cast<long long>(report.actual_switches),
                   static_cast<long long>(report.transition.switches_to_boot),
                   report.network_power,
                   std::string(report.feasible ? "yes" : "no")});
  }
  table.print(std::cout, fmt);
  std::printf("\ntotal boots: %d, lingering energy: %.2f Wh\n",
              controller.transitions().total_boots(),
              controller.transitions().lingering_energy() / 3.6e9);
  return 0;
}
