// Ablation: switch ON/OFF transition overheads across a diurnal day.
//
// Section IV-B measures a 72.52 s power-on time for a real HPE switch and
// proposes 'backup paths' [5] to hide it. This bench replays the diurnal
// trace through the epoch controller (measure -> predict -> optimize ->
// reconfigure every 10 min) with linger policies 0 (cold boots on the
// datapath), 1, and 3 epochs, reporting boots, unavailable windows, and
// the energy cost of lingering backups vs booting.
#include "bench_common.h"
#include "core/epoch_controller.h"
#include "trace/diurnal.h"

using namespace eprons;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const TableFormat fmt = table_format_from_cli(cli);
  bench::print_header(
      "Ablation — transition overheads and backup-path linger policy",
      "72.52 s switch boots; backup paths trade idle-switch energy for "
      "availability (section IV-B)");

  const Scenario scn = bench::make_scenario(cli);
  const DiurnalTraceConfig trace_config;
  const auto trace = make_diurnal_trace(trace_config);
  const int epoch_minutes = 10;  // the paper's re-optimization period

  Table t({"linger_epochs", "boots", "boot_energy_Wh", "linger_energy_Wh",
           "total_overhead_Wh", "mean_switches"});
  t.set_precision(2);

  for (int linger : {0, 1, 3}) {
    EpochControllerConfig config;
    config.transition.linger_epochs = linger;
    config.transition.epoch_length = sec(60.0 * epoch_minutes);
    config.joint.slack.samples_per_pair = 120;
    config.samples_per_epoch = 60;
    EpochController controller = scn.epoch_controller(config);
    Rng rng(77);
    long long switch_epochs = 0;
    int epochs = 0;
    for (std::size_t m = 0; m < trace.size();
         m += static_cast<std::size_t>(epoch_minutes)) {
      const TracePoint& point = trace[m];
      const FlowGenConfig gen = scn.flow_gen();
      Rng flow_rng(2000 + m);
      const FlowSet background = make_background_flows(
          gen, 6, point.background_util, 0.1, flow_rng);
      const double util = std::max(0.02, 0.5 * point.search_load);
      const EpochReport report = controller.run_epoch(background, util, rng);
      switch_epochs += report.actual_switches;
      ++epochs;
    }
    // Energy in Wh: uJ -> Wh is / 3.6e9... our Energy is W*us: /3.6e9 = Wh.
    const double to_wh = 1.0 / 3.6e9;
    const double boot_wh = controller.transitions().boot_energy() * to_wh;
    const double linger_wh =
        controller.transitions().lingering_energy() * to_wh;
    t.add_row({static_cast<long long>(linger),
               static_cast<long long>(controller.transitions().total_boots()),
               boot_wh, linger_wh, boot_wh + linger_wh,
               static_cast<double>(switch_epochs) / epochs});
  }
  t.print(std::cout, fmt);
  std::printf("\nlinger=0 boots switches on the datapath (each adds a "
              "72.52 s window where the new subnet is not ready); larger "
              "linger trades idle-switch energy for availability.\n");
  return 0;
}
