// Fig. 13: total system power vs request tail-latency constraint under the
// four aggregation policies, at 1% / 20% / 50% background traffic
// (30% server utilization, 36 W switches, 12-core CPUs, 20 W static).
//
// Paper shape: (a) at 1% background every aggregation nearly meets every
// constraint and aggregation 3 is cheapest; (b) at 20%, aggregation 3
// cannot support constraints below ~29 ms — and between ~29-31 ms turning
// a switch *on* (aggregation 2) lowers TOTAL power because servers gain
// slack; (c) at 50%, aggregation 3 is out and aggregation 2 needs > 31 ms.
#include "bench_common.h"
#include "core/attribution.h"
#include "obs/telemetry.h"
#include "sim/search_cluster.h"
#include "topo/aggregation.h"

using namespace eprons;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const TableFormat fmt = table_format_from_cli(cli);
  const double duration_s = cli.get_double("duration", 6.0);
  bench::print_header(
      "Fig. 13 — total system power vs constraint, by aggregation policy",
      "higher aggregation saves switches but steals server slack; at "
      "20-50% background the tightest constraints favor turning switches "
      "back ON (aggregation 2 beats 3)");

  const Scenario scn = bench::make_scenario(cli);
  const AggregationPolicies policies(scn.fat_tree());
  const std::vector<double> constraints = {19, 22, 25, 28, 31, 34, 37, 40};
  // An operating point "meets" the SLA if the request miss rate stays near
  // the 5% budget; beyond this the row shows "-" like the paper's missing
  // points.
  const double miss_budget = cli.get_double("miss-budget", 0.08);

  for (double bg : {0.01, 0.20, 0.50}) {
    std::printf("background traffic %.0f%%\n", bg * 100.0);
    std::vector<std::string> cols = {"scheme"};
    for (double c : constraints) cols.push_back(strformat("%.0fms", c));
    Table table(std::move(cols));
    table.set_precision(0);

    Rng bg_rng(400 + static_cast<std::uint64_t>(bg * 100));
    const FlowSet background =
        make_background_flows(scn.flow_gen(), 6, bg, 0.1, bg_rng);

    // Baseline: no power management (full topology, max frequency).
    {
      std::vector<Cell> row{std::string("no-power-mgmt")};
      const auto full = policies.policy(0).switch_on;
      ScenarioConfig scenario;
      scenario.cluster.policy = "max";
      scenario.cluster.target_utilization = 0.3;
      scenario.cluster.duration = sec(duration_s);
      scenario.cluster.warmup = sec(1.0);
      const auto result =
          scn.run(background, scenario, &full);
      for (std::size_t i = 0; i < constraints.size(); ++i) {
        row.push_back(result.metrics.total_system_power);
      }
      table.add_row(std::move(row));
    }

    // EPRONS joint optimizer: per constraint, search K (subnet + server
    // budget split) for the minimum *predicted* total power. This is the
    // planner's answer to the same question the fixed-aggregation rows
    // answer by simulation — and the row that exercises consolidation,
    // slack estimation, and K-candidate spans for --trace-out.
    {
      std::vector<Cell> row{std::string("joint optimizer")};
      // With --epoch-log, every (background, constraint) cell becomes one
      // "epoch" in the JSONL stream: an attribution ledger line (per-layer
      // power components summing bit-identically to the plan's totals) and
      // a plan_explain line (the candidate-K table with reject reasons).
      static int cell_epoch = 0;
      obs::JsonlWriter* sink = obs::epoch_log();
      for (double c : constraints) {
        JointOptimizerConfig joint;
        joint.latency_constraint = ms(c);
        joint.server_budget = ms(c - 5.0);
        obs::PlanExplainRecord explain;
        PlanRequest request;
        request.background = &background;
        request.utilization = 0.3;
        request.explain = &explain;
        const JointPlan plan = scn.optimizer(joint).optimize(request);
        if (sink) {
          sink->write(make_plan_attribution(joint, plan, "bench_fig13",
                                            cell_epoch));
          explain.source = "bench_fig13";
          explain.epoch = cell_epoch;
          sink->write(explain);
          ++cell_epoch;
        }
        if (!plan.feasible) {
          row.push_back(std::string("-"));  // no K meets this constraint
        } else {
          row.push_back(plan.total_power);
        }
      }
      table.add_row(std::move(row));
    }

    for (int level = 0; level <= 3; ++level) {
      std::vector<Cell> row{strformat("aggregation %d", level)};
      const auto subnet = policies.policy(level).switch_on;
      for (double c : constraints) {
        ScenarioConfig scenario;
        scenario.cluster.policy = "eprons";
        scenario.cluster.target_utilization = 0.3;
        scenario.cluster.latency_constraint = ms(c);
        scenario.cluster.server_budget = ms(c - 5.0);
        scenario.cluster.duration = sec(duration_s);
        scenario.cluster.warmup = sec(1.0);
        const auto result =
            scn.run(background, scenario, &subnet);
        if (result.metrics.subquery_miss_rate > miss_budget) {
          row.push_back(std::string("-"));  // constraint not supportable
        } else {
          row.push_back(result.metrics.total_system_power);
        }
      }
      table.add_row(std::move(row));
    }
    table.print(std::cout, fmt);
    std::printf("\n");
  }
  return 0;
}
