// Fig. 11: the scale factor K trades network tail latency for switches.
//
// (a) Larger K -> lower tail network latency (e.g. at 50% background the
//     tail drops to ~4.75 ms at K=4 in the paper).
// (b) Larger K -> more active switches (13..19 of 20 for k=4).
// (c) #switches vs tail latency: each point is one K; K trades one for
//     the other, the best K sits nearest the origin.
#include "bench_common.h"
#include "sim/search_cluster.h"

using namespace eprons;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const TableFormat fmt = table_format_from_cli(cli);
  const double duration_s = cli.get_double("duration", 8.0);
  bench::print_header(
      "Fig. 11 — scale factor K vs tail latency and active switches",
      "larger K: lower network tail, more switches (13-19 active); the "
      "knee of the (switches, tail) curve picks the operating K");

  const Scenario scn = bench::make_scenario(cli);
  const std::vector<double> backgrounds = {0.05, 0.10, 0.20, 0.30, 0.50};

  struct Point {
    double tail_ms = 0.0;
    int switches = 0;
  };
  std::vector<std::vector<Point>> grid(backgrounds.size());

  for (std::size_t b = 0; b < backgrounds.size(); ++b) {
    for (int k = 1; k <= 5; ++k) {
      Rng rng(200 + static_cast<std::uint64_t>(b));
      const FlowSet background = make_background_flows(
          FlowGenConfig{}, 8, backgrounds[b], 0.1, rng);
      ScenarioConfig scenario;
      scenario.cluster.policy = "max";
      scenario.cluster.target_utilization = 0.3;
      scenario.cluster.duration = sec(duration_s);
      scenario.cluster.warmup = sec(1.0);
      scenario.consolidation.scale_factor_k = k;
      const auto result =
          scn.run(background, scenario);  // free consolidation
      grid[b].push_back(Point{to_ms(result.metrics.network_latency.p95),
                              result.placement.active_switches});
    }
  }

  std::printf("(a) 95th tail network latency (ms) vs K\n");
  Table a({"K", "bg_5%", "bg_10%", "bg_20%", "bg_30%", "bg_50%"});
  a.set_precision(2);
  for (int k = 1; k <= 5; ++k) {
    std::vector<Cell> row{static_cast<long long>(k)};
    for (std::size_t b = 0; b < backgrounds.size(); ++b) {
      row.push_back(grid[b][static_cast<std::size_t>(k - 1)].tail_ms);
    }
    a.add_row(std::move(row));
  }
  a.print(std::cout, fmt);

  std::printf("\n(b) active switches vs K\n");
  Table bt({"K", "bg_5%", "bg_10%", "bg_20%", "bg_30%", "bg_50%"});
  for (int k = 1; k <= 5; ++k) {
    std::vector<Cell> row{static_cast<long long>(k)};
    for (std::size_t b = 0; b < backgrounds.size(); ++b) {
      row.push_back(static_cast<long long>(
          grid[b][static_cast<std::size_t>(k - 1)].switches));
    }
    bt.add_row(std::move(row));
  }
  bt.print(std::cout, fmt);

  std::printf("\n(c) (active switches, tail ms) per K at 50%% background\n");
  Table c({"K", "active_switches", "tail_ms"});
  c.set_precision(2);
  for (int k = 1; k <= 5; ++k) {
    const Point& p = grid.back()[static_cast<std::size_t>(k - 1)];
    c.add_row({static_cast<long long>(k),
               static_cast<long long>(p.switches), p.tail_ms});
  }
  c.print(std::cout, fmt);
  return 0;
}
