// Microbenchmark: cold vs incremental (warm-started) epoch planning.
//
// A diurnal controller re-plans every epoch, but between epochs only a
// sliver of the demand matrix actually moves (~1% of flows resize). The
// incremental planner exploits that: it diffs the demands against the
// previous epoch (flow/demand_delta.h), re-evaluates only the previous
// epoch's K with the consolidator warm-started from the previous routing,
// and short-circuits the full K sweep when that single candidate stays
// feasible. Evaluated plans land in the PlanCache, so replaying a demand
// level is a pure cache hit.
//
// This bench drives a sequence of low-churn epochs through three planners
// and checks, per epoch, that the warm plan equals the cold plan exactly
// (same K, same switch set, same predicted power — the regression bound at
// work) while being >= `--min-speedup` (default 3) times faster at the
// median. (The bar was 5x against the pre-fast-path cold sweep; the cold
// baseline is now ~6x faster itself, so 1 warm candidate vs 9 batched cold
// candidates lands near 4.5-5x — the bar guards the warm path's own
// regressions, not the old baseline.) The `cached` row replays the same
// epochs against the already-filled cache. All rows are bit-identical for
// any --threads value; CI diffs the --json --no-timing output across
// thread counts.
//
//   ./bench_micro_incremental_planner [--epochs=10] [--flows=48]
//       [--samples=400] [--reps=3] [--min-speedup=3] [--no-timing]
//       [--threads=N] [--csv|--json]
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <vector>

#include "bench_common.h"
#include "core/joint_optimizer.h"

using namespace eprons;

namespace {

/// The epoch demand sequence: each epoch resizes exactly one background
/// flow of the previous epoch by a deterministic ~1% wiggle (cumulative, so
/// consecutive epochs differ in exactly one flow). The planner also places
/// two query flows per host, so one resize out of background+query flows is
/// ~1% churn on the standard scenario.
std::vector<FlowSet> epoch_sequence(const FlowSet& base, int epochs) {
  std::vector<FlowSet> sequence;
  std::vector<double> demands(base.size());
  for (std::size_t i = 0; i < base.size(); ++i) demands[i] = base[i].demand;
  for (int e = 0; e < epochs; ++e) {
    if (e > 0) {
      const std::size_t resized =
          (static_cast<std::size_t>(e) - 1) % base.size();
      demands[resized] *= 1.0 + 0.01 + 0.001 * (e % 3);
    }
    FlowSet flows;
    for (std::size_t i = 0; i < base.size(); ++i) {
      flows.add(base[i].src_host, base[i].dst_host, demands[i], base[i].cls);
    }
    sequence.push_back(std::move(flows));
  }
  return sequence;
}

bool plans_identical(const JointPlan& a, const JointPlan& b) {
  return a.feasible == b.feasible && a.k == b.k &&
         a.placement.switch_on == b.placement.switch_on &&
         a.placement.active_switches == b.placement.active_switches &&
         a.network_power == b.network_power &&
         a.total_power == b.total_power;
}

double median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

struct ModeResult {
  std::vector<double> epoch_ms;
  std::vector<JointPlan> plans;
};

/// Runs the epoch sequence through `optimizer`. When `warm`, each epoch
/// hands the previous epoch's plan to the incremental optimize() overload
/// (epoch 0 always plans cold). `reps` re-times each epoch and keeps the
/// best; the *first* rep's plan chains into the next epoch.
ModeResult run_epochs(const JointOptimizer& optimizer,
                      const std::vector<FlowSet>& epochs, double utilization,
                      bool warm, int reps) {
  ModeResult result;
  const JointPlan* previous = nullptr;
  for (const FlowSet& flows : epochs) {
    double best_ms = 1e300;
    JointPlan plan;
    for (int r = 0; r < reps; ++r) {
      PlanRequest request;
      request.background = &flows;
      request.utilization = utilization;
      if (warm) request.previous = previous;
      const auto start = std::chrono::steady_clock::now();
      JointPlan p = optimizer.optimize(request);
      const auto stop = std::chrono::steady_clock::now();
      best_ms = std::min(
          best_ms,
          std::chrono::duration<double, std::milli>(stop - start).count());
      if (r == 0) plan = std::move(p);
    }
    result.epoch_ms.push_back(best_ms);
    result.plans.push_back(std::move(plan));
    previous = &result.plans.back();
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const TableFormat fmt = table_format_from_cli(cli);
  const int epochs = static_cast<int>(cli.get_int("epochs", 10));
  const int flows_n = static_cast<int>(cli.get_int("flows", 48));
  const int reps = static_cast<int>(cli.get_int("reps", 3));
  const double min_speedup = cli.get_double("min-speedup", 3.0);
  const bool no_timing = cli.has_flag("no-timing");
  bench::print_header(
      "Micro — incremental epoch planning (warm-start + plan cache)",
      "n/a (implementation microbenchmark: identical plans to the cold "
      "K sweep on ~1%-churn epochs, >=3x faster at the median)");

  const Scenario scn = bench::make_scenario(cli);
  Rng bg_rng(42);
  const FlowSet base =
      make_background_flows(scn.flow_gen(), flows_n, 0.05, 0.1, bg_rng);
  const double utilization = 0.3;

  const std::vector<FlowSet> epoch_flows = epoch_sequence(base, epochs);

  JointOptimizerConfig config;
  config.k_step = 0.5;  // 9 candidates per cold sweep: the warm path's win
  config.slack.samples_per_pair = static_cast<int>(cli.get_int("samples", 400));

  JointOptimizerConfig cold_cfg = config;
  const JointOptimizer cold_opt = scn.optimizer(cold_cfg);
  const ModeResult cold =
      run_epochs(cold_opt, epoch_flows, utilization, /*warm=*/false, reps);

  // The warm pass times each epoch exactly once: a repeat of the same epoch
  // would hit the plan cache and measure cache lookups, not warm packing
  // (that is the `cached` row's job).
  JointOptimizerConfig warm_cfg = config;
  warm_cfg.incremental.enabled = true;
  const JointOptimizer warm_opt = scn.optimizer(warm_cfg);
  const ModeResult warm =
      run_epochs(warm_opt, epoch_flows, utilization, /*warm=*/true, 1);
  // Replay against the now-filled PlanCache: every epoch is a cache hit.
  const ModeResult cached =
      run_epochs(warm_opt, epoch_flows, utilization, /*warm=*/true, reps);

  // Per-epoch equality: the incremental plan must match the cold sweep's.
  bool all_identical = true;
  int kept_epochs = 0;
  for (int e = 0; e < epochs; ++e) {
    const bool same =
        plans_identical(cold.plans[static_cast<std::size_t>(e)],
                        warm.plans[static_cast<std::size_t>(e)]) &&
        plans_identical(cold.plans[static_cast<std::size_t>(e)],
                        cached.plans[static_cast<std::size_t>(e)]);
    all_identical = all_identical && same;
    if (warm.plans[static_cast<std::size_t>(e)].placement.warm_started) {
      ++kept_epochs;
    }
  }

  // Steady-state medians exclude epoch 0 (the warm planner's first epoch
  // has no previous plan and legitimately pays the full cold sweep).
  auto steady = [](const std::vector<double>& ms) {
    return median(std::vector<double>(ms.begin() + 1, ms.end()));
  };
  const double cold_ms = steady(cold.epoch_ms);
  const double warm_ms = steady(warm.epoch_ms);
  const double cached_ms = steady(cached.epoch_ms);
  const double warm_speedup = warm_ms > 0.0 ? cold_ms / warm_ms : 0.0;
  const double cached_speedup = cached_ms > 0.0 ? cold_ms / cached_ms : 0.0;

  const JointPlan& last_cold = cold.plans.back();
  const JointPlan& last_warm = warm.plans.back();
  const JointPlan& last_cached = cached.plans.back();

  Table table({"mode", "median_ms", "speedup", "K", "total_W", "switches",
               "warm_epochs", "plans_match"});
  table.set_precision(2);
  auto row = [&](const char* mode, double ms, double speedup,
                 const JointPlan& plan, int warm_count) {
    table.add_row({std::string(mode), no_timing ? 0.0 : ms,
                   no_timing ? 0.0 : speedup, plan.k, plan.total_power,
                   static_cast<long long>(plan.placement.active_switches),
                   static_cast<long long>(warm_count),
                   std::string(all_identical ? "yes" : "NO")});
  };
  row("cold", cold_ms, 1.0, last_cold, 0);
  row("warm", warm_ms, warm_speedup, last_warm, kept_epochs);
  row("cached", cached_ms, cached_speedup, last_cached, kept_epochs);
  table.print(std::cout, fmt);

  if (!all_identical) {
    std::printf("\nFAIL: incremental plan differs from the cold K sweep\n");
    return EXIT_FAILURE;
  }
  if (kept_epochs < epochs - 1) {
    std::printf("\nFAIL: warm short-circuit engaged on %d/%d eligible "
                "epochs\n",
                kept_epochs, epochs - 1);
    return EXIT_FAILURE;
  }
  if (!no_timing && warm_speedup < min_speedup) {
    std::printf("\nFAIL: warm speedup %.2fx below the %.2fx bar\n",
                warm_speedup, min_speedup);
    return EXIT_FAILURE;
  }
  std::printf("\nincremental plans identical to cold plans on all %d epochs"
              "%s\n",
              epochs,
              no_timing ? "" : " (speedup bar met)");
  return EXIT_SUCCESS;
}
