// Ablation: topology independence (paper section IV-B claim).
//
// "Our optimization model is independent of the network topology." The
// same consolidators and joint optimizer run unchanged on a two-tier
// leaf-spine fabric; this bench compares consolidation behavior and the
// K trade-off across a 4-ary fat-tree and a 4-leaf/4-spine Clos carrying
// the same logical workload.
#include "bench_common.h"
#include "consolidate/greedy_consolidator.h"
#include "core/joint_optimizer.h"
#include "topo/leaf_spine.h"

using namespace eprons;

namespace {

void sweep(const Scenario& scn, const char* name, TableFormat fmt) {
  const Topology& topo = scn.topology();
  std::printf("%s: %d hosts, %d switches\n", name, topo.num_hosts(),
              topo.num_switches());
  FlowGenConfig gen = scn.flow_gen();
  Rng rng(11);
  const FlowSet background = make_background_flows(gen, 6, 0.3, 0.1, rng);

  const JointOptimizer optimizer = scn.optimizer();
  Table t({"K", "feasible", "active_switches", "net_p95_ms",
           "predicted_total_W"});
  t.set_precision(2);
  for (double k = 1.0; k <= 4.0; k += 1.0) {
    const JointPlan plan = optimizer.plan_for_k(background, 0.3, k);
    t.add_row({k, std::string(plan.feasible ? "yes" : "no"),
               static_cast<long long>(plan.placement.active_switches),
               to_ms(plan.slack.total_p95), plan.total_power});
  }
  t.print(std::cout, fmt);
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const TableFormat fmt = table_format_from_cli(cli);
  bench::print_header(
      "Ablation — topology independence (fat-tree vs leaf-spine)",
      "the consolidation model runs unchanged on any multipath fabric "
      "(section IV-B)");

  SyntheticWorkloadConfig wl;
  wl.samples = 30000;
  wl.bins = 256;
  const RuntimeConfig runtime = runtime_from_cli(cli);

  const Scenario fat_tree = ScenarioBuilder()
                                .seed(1)
                                .fat_tree(4)
                                .workload(wl)
                                .runtime(runtime)
                                .build();
  sweep(fat_tree, "4-ary fat-tree", fmt);

  const Scenario leaf_spine = ScenarioBuilder()
                                  .seed(1)
                                  .leaf_spine(4, 4, 4)  // 16 hosts, 8 switches
                                  .workload(wl)
                                  .runtime(runtime)
                                  .build();
  sweep(leaf_spine, "4-leaf / 4-spine Clos", fmt);
  return 0;
}
